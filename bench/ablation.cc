// Ablation study of TurboFlux's design choices (DESIGN.md E16):
//
//  A1 — incremental DCG maintenance vs recomputing the DCG from scratch
//       after every update (what a naive realization of the edge
//       transition model would cost);
//  A2 — cost-based matching order (explicit-path statistics, Section 4.1)
//       vs a plain BFS order of the query tree;
//  A3 — storage: DCG edges vs SJ-Tree partial-solution slots on the same
//       query set (the Figure 3 trade-off).

#include <cstdio>
#include <iostream>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/harness/runner.h"
#include "turboflux/harness/table.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "size", "ops"});
  double scale = flags.GetDouble("scale", 0.5);
  int64_t num_queries = flags.GetInt("queries", 6);
  int64_t timeout_ms = flags.GetInt("timeout_ms", 4000);
  uint64_t seed = flags.GetInt("seed", 42);
  int64_t size = flags.GetInt("size", 6);
  size_t rebuild_ops = static_cast<size_t>(flags.GetInt("ops", 200));

  workload::Dataset dataset = MakeLsBenchDataset(scale, 0.10, 0.0, seed);
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = static_cast<size_t>(size);
  qc.count = static_cast<size_t>(num_queries);
  qc.seed = seed;
  std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);
  std::printf("Ablations on LSBench tree queries of size %lld "
              "(scale=%.2f, %zu queries)\n\n",
              static_cast<long long>(size), scale, queries.size());

  // --- A1: incremental maintenance vs rebuild-per-update ---
  {
    std::printf("A1: incremental DCG maintenance vs rebuild per update "
                "(first %zu stream ops)\n", rebuild_ops);
    Table table({"query", "incremental", "rebuild/update", "speedup"});
    workload::Dataset truncated = dataset;
    TruncateStream(truncated, rebuild_ops);
    for (size_t i = 0; i < queries.size(); ++i) {
      TurboFluxEngine engine;
      CountingSink sink;
      if (!engine.Init(queries[i], truncated.initial, sink,
                       Deadline::AfterMillis(timeout_ms))) {
        continue;
      }
      Stopwatch inc_watch;
      for (const UpdateOp& op : truncated.stream) {
        (void)engine.ApplyUpdate(op, sink, Deadline::Infinite());
      }
      double incremental = inc_watch.ElapsedSeconds();
      // Rebuild cost: one from-scratch DCG construction per update on the
      // final graph (a lower bound for the naive strategy, which would
      // also re-run the search).
      Stopwatch rb_watch;
      size_t rebuilds = std::min<size_t>(truncated.stream.size(), 32);
      for (size_t r = 0; r < rebuilds; ++r) {
        Dcg fresh = engine.RebuildDcgFromScratch();
        (void)fresh;
      }
      double rebuild = rb_watch.ElapsedSeconds() /
                       static_cast<double>(std::max<size_t>(rebuilds, 1)) *
                       static_cast<double>(truncated.stream.size());
      std::string qname = "Q";
      qname += std::to_string(i);
      table.AddRow({qname, Table::FormatSeconds(incremental),
                    Table::FormatSeconds(rebuild),
                    Table::FormatRatio(rebuild / std::max(incremental,
                                                          1e-9))});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  // --- A2: cost-based vs BFS matching order ---
  {
    std::printf("A2: cost-based matching order vs BFS order\n");
    Table table({"query", "cost-based", "bfs-order", "bfs/cost"});
    for (size_t i = 0; i < queries.size(); ++i) {
      double secs[2] = {0, 0};
      bool ok = true;
      for (int variant = 0; variant < 2; ++variant) {
        TurboFluxOptions options;
        options.order_policy =
            variant == 0 ? TurboFluxOptions::OrderPolicy::kCostBased
                         : TurboFluxOptions::OrderPolicy::kBfs;
        TurboFluxEngine engine(options);
        CountingSink sink;
        RunOptions run_options;
        run_options.timeout_ms = timeout_ms;
        RunResult r = RunContinuous(engine, queries[i], dataset.initial,
                                    dataset.stream, sink, run_options);
        if (r.timed_out) {
          ok = false;
          break;
        }
        secs[variant] = r.stream_seconds;
      }
      if (!ok) continue;
      std::string qname = "Q";
      qname += std::to_string(i);
      table.AddRow({qname, Table::FormatSeconds(secs[0]),
                    Table::FormatSeconds(secs[1]),
                    Table::FormatRatio(secs[1] / std::max(secs[0], 1e-9))});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  // --- A3: storage trade-off (Figure 3) ---
  {
    std::printf("A3: storage trade-off, DCG vs SJ-Tree materialization\n");
    ExperimentOptions options;
    options.timeout_ms = timeout_ms;
    ApplyStreamingFlags(flags, options);
    QuerySetResult tf =
        RunQuerySet(EngineKind::kTurboFlux, dataset, queries, options);
    QuerySetResult sj =
        RunQuerySet(EngineKind::kSjTree, dataset, queries, options);
    Table table({"engine", "avg intermediate size", "avg cost"});
    table.AddRow({"TurboFlux",
                  Table::FormatCount(tf.aggregate.mean_peak_intermediate),
                  Table::FormatSeconds(tf.aggregate.mean_stream_seconds)});
    table.AddRow({"SJ-Tree",
                  Table::FormatCount(sj.aggregate.mean_peak_intermediate),
                  Table::FormatSeconds(sj.aggregate.mean_stream_seconds)});
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
