// Appendix B.5 reproduction: SJ-Tree with the NEC query-compression
// technique of TurboISO [14]. The paper finds that only ~9.5% of LSBench
// tree queries and ~3% of graph queries are compressible at all, and
// that even for those, compression reduces SJ-Tree's cost and storage by
// at most ~24%/28% — so TurboFlux keeps its orders-of-magnitude lead.
//
// This bench (a) reports the compressibility rate of our generated query
// sets, and (b) for each compressible query, runs SJ-Tree on the
// original and on the NEC-compressed query and reports the cost/storage
// reduction next to TurboFlux on the original query. (Matches of the
// compressed query are class-representative matches; each expands into
// the original query's matches by the per-class candidate powers, so the
// compressed run is the cheapest conceivable NEC-SJ-Tree.)

#include <cstdio>
#include <iostream>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"
#include "turboflux/harness/table.h"
#include "turboflux/query/nec.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv, {"scale", "queries", "timeout_ms", "seed"});
  double scale = flags.GetDouble("scale", 1.0);
  int64_t num_queries = flags.GetInt("queries", 20);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 3000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 42);

  std::printf("Appendix B.5: SJ-Tree with NEC query compression "
              "(scale=%.2f)\n\n", scale);
  workload::Dataset dataset = MakeLsBenchDataset(scale, 0.10, 0.0, seed);

  struct Shape {
    workload::QueryShape shape;
    const char* name;
    std::vector<int64_t> sizes;
  };
  const Shape shapes[] = {
      {workload::QueryShape::kTree, "tree", {6, 9, 12}},
      {workload::QueryShape::kGraph, "graph", {6, 9, 12}},
  };

  for (const Shape& shape : shapes) {
    size_t total = 0, compressible = 0;
    std::vector<QueryGraph> compressible_queries;
    std::vector<QueryGraph> compressed_counterparts;
    for (int64_t size : shape.sizes) {
      workload::QueryGenConfig qc;
      qc.shape = shape.shape;
      qc.num_edges = static_cast<size_t>(size);
      qc.count = static_cast<size_t>(num_queries);
      qc.seed = seed + static_cast<uint64_t>(size);
      for (QueryGraph& q : workload::GenerateQueries(dataset, qc)) {
        ++total;
        NecAnalysis nec = ComputeNec(q);
        if (!nec.compressible()) continue;
        ++compressible;
        compressed_counterparts.push_back(
            CompressQuery(q, nec).query);
        compressible_queries.push_back(std::move(q));
      }
    }
    std::printf("%s queries: %zu/%zu compressible (%.1f%%; paper: ~%.1f%%)\n",
                shape.name, compressible, total,
                total > 0 ? 100.0 * static_cast<double>(compressible) /
                                static_cast<double>(total)
                          : 0.0,
                shape.shape == workload::QueryShape::kTree ? 9.5 : 3.0);

    if (compressible_queries.empty()) continue;
    Table table({"query", "SJ-Tree cost", "SJ-Tree+NEC cost", "saved",
                 "SJ-Tree storage", "+NEC storage", "TurboFlux cost"});
    for (size_t i = 0; i < compressible_queries.size(); ++i) {
      std::vector<QueryGraph> orig = {compressible_queries[i]};
      std::vector<QueryGraph> comp = {compressed_counterparts[i]};
      QuerySetResult sj =
          RunQuerySet(EngineKind::kSjTree, dataset, orig, options);
      QuerySetResult sj_nec =
          RunQuerySet(EngineKind::kSjTree, dataset, comp, options);
      QuerySetResult tf =
          RunQuerySet(EngineKind::kTurboFlux, dataset, orig, options);
      auto cost = [](const QuerySetResult& r) {
        return r.aggregate.completed > 0 ? r.aggregate.mean_stream_seconds
                                         : -1.0;
      };
      double saved = cost(sj) > 0 && cost(sj_nec) > 0
                         ? 100.0 * (1.0 - cost(sj_nec) / cost(sj))
                         : 0.0;
      char saved_buf[32];
      std::snprintf(saved_buf, sizeof(saved_buf), "%.1f%%", saved);
      std::string qname = "Q";
      qname += std::to_string(i);
      table.AddRow({qname, Table::FormatSeconds(cost(sj)),
                    Table::FormatSeconds(cost(sj_nec)), saved_buf,
                    Table::FormatCount(sj.aggregate.mean_peak_intermediate),
                    Table::FormatCount(
                        sj_nec.aggregate.mean_peak_intermediate),
                    Table::FormatSeconds(cost(tf))});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf("shape: few queries compress, savings are modest, and "
              "TurboFlux remains far ahead even of SJ-Tree+NEC.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
