#include "common/experiment.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>

#include "turboflux/baseline/graphflow.h"
#include "turboflux/baseline/inc_iso_mat.h"
#include "turboflux/baseline/sj_tree.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/harness/runner.h"
#include "turboflux/symbi/symbi.h"
#include "turboflux/harness/table.h"
#include "turboflux/workload/lsbench.h"
#include "turboflux/workload/netflow.h"

namespace turboflux {
namespace bench {

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTurboFlux:
      return "TurboFlux";
    case EngineKind::kSymBi:
      return "SymBi";
    case EngineKind::kSjTree:
      return "SJ-Tree";
    case EngineKind::kGraphflow:
      return "Graphflow";
    case EngineKind::kIncIsoMat:
      return "IncIsoMat";
  }
  return "?";
}

std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind,
                                             MatchSemantics semantics,
                                             int64_t threads) {
  switch (kind) {
    case EngineKind::kTurboFlux: {
      TurboFluxOptions options;
      options.semantics = semantics;
      options.threads = threads > 1 ? static_cast<size_t>(threads) : 1;
      return std::make_unique<TurboFluxEngine>(options);
    }
    case EngineKind::kSymBi: {
      symbi::SymBiOptions options;
      options.semantics = semantics;
      return std::make_unique<symbi::SymBiEngine>(options);
    }
    case EngineKind::kSjTree: {
      SjTreeOptions options;
      options.semantics = semantics;
      // Memory fuse: cap the notorious blow-up rather than OOM-ing the
      // host; hitting the cap counts as a timeout (the paper's SJ-Tree
      // runs hit a 2h wall instead).
      options.max_tuples = 20u * 1000 * 1000;
      return std::make_unique<SjTreeEngine>(options);
    }
    case EngineKind::kGraphflow: {
      GraphflowOptions options;
      options.semantics = semantics;
      return std::make_unique<GraphflowEngine>(options);
    }
    case EngineKind::kIncIsoMat: {
      IncIsoMatOptions options;
      options.semantics = semantics;
      return std::make_unique<IncIsoMatEngine>(options);
    }
  }
  return nullptr;
}

void ApplyStreamingFlags(const Flags& flags, ExperimentOptions& options) {
  options.threads = flags.Threads();
  options.batch = flags.Batch();
  options.stats_json = flags.StatsJson();
  // `--threads` implies batching: a window of 1 op cannot be parallelized,
  // so give the batched path something to chew on unless overridden.
  if (options.threads > 1 && options.batch <= 1) options.batch = 64;
}

namespace {

// Process-wide per-engine accumulation for the --stats_json artifact.
// Counters sum and histograms bucket-merge across every run the binary
// executes, so the final file reflects the whole figure, not just the last
// query set.
std::map<std::string, obs::StatsSnapshot>& GlobalEngineStats() {
  static std::map<std::string, obs::StatsSnapshot> stats;
  return stats;
}

// Rewrites the artifact wholesale (latest accumulation wins), so a crash
// mid-figure still leaves a parseable file from the last completed set.
void WriteStatsArtifact(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  f << "{\n  \"engines\": {";
  bool first = true;
  for (const auto& [name, snap] : GlobalEngineStats()) {
    f << (first ? "\n" : ",\n") << "    \"" << name
      << "\": " << snap.ToJson();
    first = false;
  }
  f << "\n  }\n}\n";
  if (!f.flush()) {
    std::fprintf(stderr, "warning: cannot write stats artifact %s\n",
                 path.c_str());
  }
}

}  // namespace

workload::Dataset MakeLsBenchDataset(double scale, double stream_fraction,
                                     double deletion_rate, uint64_t seed) {
  workload::LsBenchConfig config;
  config.num_users = static_cast<uint64_t>(1000 * scale);
  config.seed = seed;
  workload::StreamConfig sc;
  sc.stream_fraction = stream_fraction;
  sc.deletion_rate = deletion_rate;
  sc.seed = seed + 1;
  return workload::BuildDataset(workload::GenerateLsBench(config), sc);
}

workload::Dataset MakeNetflowDataset(double scale, double stream_fraction,
                                     double deletion_rate, uint64_t seed) {
  // Backbone traces are sparse: many hosts, few flows per host (the
  // paper's Netflow has ~18M triples over an anonymized IP universe).
  workload::NetflowConfig config;
  config.num_hosts = static_cast<uint64_t>(8000 * scale);
  config.num_flows = static_cast<uint64_t>(40000 * scale);
  config.seed = seed;
  workload::StreamConfig sc;
  sc.stream_fraction = stream_fraction;
  sc.deletion_rate = deletion_rate;
  sc.seed = seed + 1;
  return workload::BuildDataset(workload::GenerateNetflow(config), sc);
}

void TruncateStream(workload::Dataset& dataset, size_t ops) {
  if (dataset.stream.size() <= ops) return;
  dataset.stream.resize(ops);
  dataset.final_graph = dataset.initial;
  dataset.stream_insertions.clear();
  for (const UpdateOp& op : dataset.stream) {
    if (ApplyUpdate(dataset.final_graph, op) && op.IsInsert()) {
      dataset.stream_insertions.push_back(op);
    }
  }
}

QuerySetResult RunQuerySet(EngineKind engine_kind,
                           const workload::Dataset& dataset,
                           const std::vector<QueryGraph>& queries,
                           const ExperimentOptions& options) {
  QuerySetResult out;
  out.aggregate = Aggregate0(EngineName(engine_kind));
  for (const QueryGraph& q : queries) {
    std::unique_ptr<ContinuousEngine> engine =
        MakeEngine(engine_kind, options.semantics, options.threads);
    CountingSink sink;
    RunOptions run_options;
    run_options.timeout_ms = options.timeout_ms;
    run_options.batch_size = options.batch;
    run_options.collect_stats = !options.stats_json.empty();
    RunResult r = RunContinuous(*engine, q, dataset.initial, dataset.stream,
                                sink, run_options);
    Accumulate(out.aggregate, r);
    out.per_query_seconds.push_back(
        r.timed_out || r.unsupported ? -1.0 : r.stream_seconds);
    if (r.stats) {
      GlobalEngineStats()[EngineName(engine_kind)].MergeFrom(*r.stats);
    }
  }
  if (!options.stats_json.empty()) WriteStatsArtifact(options.stats_json);
  return out;
}

std::vector<uint64_t> QuerySelectivities(const workload::Dataset& dataset,
                                         const std::vector<QueryGraph>&
                                             queries,
                                         int64_t timeout_ms) {
  std::vector<uint64_t> out;
  for (const QueryGraph& q : queries) {
    TurboFluxEngine engine;
    CountingSink sink;
    RunOptions run_options;
    run_options.timeout_ms = timeout_ms;
    run_options.subtract_graph_update_cost = false;
    RunResult r = RunContinuous(engine, q, dataset.initial, dataset.stream,
                                sink, run_options);
    out.push_back(r.timed_out ? 0 : r.positive_matches);
  }
  return out;
}

FigureReport::FigureReport(std::string x_label)
    : x_label_(std::move(x_label)) {}

void FigureReport::AddRow(const std::string& x_value, EngineKind kind,
                          const QuerySetResult& result) {
  rows_.push_back({x_value, kind, result});
}

void FigureReport::Print() const {
  Table table({x_label_, "engine", "avg cost(M(dg,q))", "avg int. size",
               "completed", "timeout", "pos", "neg"});
  for (const Row& row : rows_) {
    const Aggregate& a = row.result.aggregate;
    table.AddRow(
        {row.x, EngineName(row.kind),
         a.completed > 0 ? Table::FormatSeconds(a.mean_stream_seconds)
                         : "n/a",
         a.completed > 0 ? Table::FormatCount(a.mean_peak_intermediate)
                         : "n/a",
         std::to_string(a.completed),
         std::to_string(a.timed_out + a.unsupported),
         Table::FormatCount(static_cast<double>(a.total_positive)),
         Table::FormatCount(static_cast<double>(a.total_negative))});
  }
  table.Print(std::cout);

  // Pairwise speedups vs TurboFlux per x value, over queries both
  // completed (timed-out queries are excluded, as in the paper).
  for (const Row& row : rows_) {
    if (row.kind == EngineKind::kTurboFlux) continue;
    const Row* tf = nullptr;
    for (const Row& cand : rows_) {
      if (cand.kind == EngineKind::kTurboFlux && cand.x == row.x) tf = &cand;
    }
    if (tf == nullptr) continue;
    std::vector<double> other, mine;
    size_t n = std::min(row.result.per_query_seconds.size(),
                        tf->result.per_query_seconds.size());
    for (size_t i = 0; i < n; ++i) {
      double a = row.result.per_query_seconds[i];
      double b = tf->result.per_query_seconds[i];
      if (a < 0 || b < 0) continue;
      other.push_back(a);
      mine.push_back(b);
    }
    double geo = MeanRatio(other, mine);
    double sum_other = 0, sum_mine = 0;
    for (double s : other) sum_other += s;
    for (double s : mine) sum_mine += s;
    // The paper's headline factors are ratios of the *average* costs
    // (Figure 6a etc.); the geometric mean of per-query ratios is shown
    // alongside as a skew-robust view.
    if (geo > 0 && sum_mine > 0) {
      std::printf("  [%s=%s] TurboFlux outperforms %s by %.2fx "
                  "(avg-cost ratio; geo mean %.2fx over %zu common "
                  "queries)\n",
                  x_label_.c_str(), row.x.c_str(), EngineName(row.kind),
                  sum_other / sum_mine, geo, mine.size());
    }
  }
  std::printf("\n");
}

void PrintScatter(const std::string& title,
                  const std::vector<double>& turboflux_seconds,
                  const std::vector<double>& other_seconds,
                  const std::string& other_name) {
  std::printf("# scatter: %s (columns: query, TurboFlux_sec, %s_sec)\n",
              title.c_str(), other_name.c_str());
  size_t n = std::min(turboflux_seconds.size(), other_seconds.size());
  size_t above = 0, total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (turboflux_seconds[i] < 0 || other_seconds[i] < 0) continue;
    std::printf("  q%-4zu %12.6f %12.6f\n", i, turboflux_seconds[i],
                other_seconds[i]);
    ++total;
    if (other_seconds[i] >= turboflux_seconds[i]) ++above;
  }
  std::printf("  -> TurboFlux at least as fast on %zu/%zu queries\n\n",
              above, total);
}

}  // namespace bench
}  // namespace turboflux
