#ifndef TURBOFLUX_BENCH_COMMON_EXPERIMENT_H_
#define TURBOFLUX_BENCH_COMMON_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "turboflux/harness/engine.h"
#include "turboflux/harness/metrics.h"
#include "turboflux/query/query_graph.h"
#include "turboflux/workload/query_gen.h"
#include "turboflux/workload/stream_builder.h"

namespace turboflux {
namespace bench {

/// Engines evaluated in the paper, plus the SymBi sibling engine
/// (DESIGN.md §3.13).
enum class EngineKind { kTurboFlux, kSymBi, kSjTree, kGraphflow,
                        kIncIsoMat };

const char* EngineName(EngineKind kind);

/// `threads` > 1 enables TurboFlux's parallel batched-update path (other
/// engines ignore it and stay sequential).
std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind,
                                             MatchSemantics semantics,
                                             int64_t threads = 1);

/// Scaled-down stand-ins for the paper's datasets (Section 5.1). `scale`
/// multiplies the default size (1.0 = the default laptop-size dataset);
/// the paper's 0.1M/1M/10M-user LSBench series maps to scale 1/10/100 of
/// which the benches use 0.5/1/2 by default to stay fast.
workload::Dataset MakeLsBenchDataset(double scale, double stream_fraction,
                                     double deletion_rate, uint64_t seed);
workload::Dataset MakeNetflowDataset(double scale, double stream_fraction,
                                     double deletion_rate, uint64_t seed);

/// Truncates the dataset's stream to at most `ops` operations, rebuilding
/// the final graph and the insertion list so query generation stays
/// consistent with what actually streams.
void TruncateStream(workload::Dataset& dataset, size_t ops);

/// Result of one engine over one query set.
struct QuerySetResult {
  Aggregate aggregate;
  std::vector<double> per_query_seconds;  // -1 for timeout/unsupported
};

struct ExperimentOptions {
  int64_t timeout_ms = 2000;
  MatchSemantics semantics = MatchSemantics::kHomomorphism;
  /// Worker threads for TurboFlux's ApplyBatch path (1 = the paper's
  /// sequential model); ignored by the baseline engines.
  int64_t threads = 1;
  /// Update-window size handed to ApplyBatch per call; 1 streams ops one
  /// ApplyUpdate at a time. Output is identical either way.
  int64_t batch = 1;
  /// When non-empty, every run collects an observability snapshot and the
  /// process-wide per-engine accumulation is rewritten to this JSON file
  /// after each query set — the machine-readable perf-trajectory artifact
  /// reproduce_all.sh collects (DESIGN.md §3.8).
  std::string stats_json;
};

/// Fills `threads`/`batch`/`stats_json` from the implicit
/// `--threads`/`--batch`/`--stats_json` flags (and the THREADS/BATCH/
/// STATS_DIR environment, via reproduce_all.sh).
void ApplyStreamingFlags(const Flags& flags, ExperimentOptions& options);

/// Runs `engine_kind` over every query; prints nothing.
QuerySetResult RunQuerySet(EngineKind engine_kind,
                           const workload::Dataset& dataset,
                           const std::vector<QueryGraph>& queries,
                           const ExperimentOptions& options);

/// Per-query positive-match counts (selectivity), via TurboFlux.
std::vector<uint64_t> QuerySelectivities(const workload::Dataset& dataset,
                                         const std::vector<QueryGraph>&
                                             queries,
                                         int64_t timeout_ms);

/// Prints the standard figure table: one row per (x-value, engine) with
/// avg cost(M(Δg,q)), avg intermediate size, timeouts, and the TurboFlux
/// speedup factor.
class FigureReport {
 public:
  explicit FigureReport(std::string x_label);

  void AddRow(const std::string& x_value, EngineKind kind,
              const QuerySetResult& result);
  /// Prints the table plus "TurboFlux outperforms X by N times" lines
  /// computed pairwise on commonly-completed queries.
  void Print() const;

 private:
  struct Row {
    std::string x;
    EngineKind kind;
    QuerySetResult result;
  };
  std::string x_label_;
  std::vector<Row> rows_;
};

/// Prints per-query scatter pairs (Figures 6c/6d, 7c/7d).
void PrintScatter(const std::string& title,
                  const std::vector<double>& turboflux_seconds,
                  const std::vector<double>& other_seconds,
                  const std::string& other_name);

}  // namespace bench
}  // namespace turboflux

#endif  // TURBOFLUX_BENCH_COMMON_EXPERIMENT_H_
