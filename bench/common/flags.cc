#include "common/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace turboflux {
namespace bench {

Flags::Flags(int argc, char** argv, const std::vector<std::string>& known) {
  std::vector<std::string> all_known = known;
  all_known.push_back("threads");
  all_known.push_back("batch");
  all_known.push_back("stats_json");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    std::string key = eq == std::string::npos ? body : body.substr(0, eq);
    std::string value = eq == std::string::npos ? "1" : body.substr(eq + 1);
    if (std::find(all_known.begin(), all_known.end(), key) ==
        all_known.end()) {
      std::fprintf(stderr, "unknown flag --%s; known flags:", key.c_str());
      for (const std::string& k : all_known)
        std::fprintf(stderr, " --%s", k.c_str());
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    values_.emplace_back(key, value);
  }
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  for (const auto& [k, v] : values_) {
    if (k == key) return std::strtoll(v.c_str(), nullptr, 10);
  }
  return default_value;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  for (const auto& [k, v] : values_) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  return default_value;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  for (const auto& [k, v] : values_) {
    if (k == key) return v != "0" && v != "false";
  }
  return default_value;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  for (const auto& [k, v] : values_) {
    if (k == key) return v;
  }
  return default_value;
}

std::vector<int64_t> Flags::GetIntList(
    const std::string& key, std::vector<int64_t> default_value) const {
  for (const auto& [k, v] : values_) {
    if (k != key) continue;
    std::vector<int64_t> out;
    size_t pos = 0;
    while (pos < v.size()) {
      size_t comma = v.find(',', pos);
      if (comma == std::string::npos) comma = v.size();
      out.push_back(std::strtoll(v.substr(pos, comma - pos).c_str(),
                                 nullptr, 10));
      pos = comma + 1;
    }
    return out;
  }
  return default_value;
}

}  // namespace bench
}  // namespace turboflux
