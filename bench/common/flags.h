#ifndef TURBOFLUX_BENCH_COMMON_FLAGS_H_
#define TURBOFLUX_BENCH_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace turboflux {
namespace bench {

/// Minimal `--key=value` command-line parser shared by the figure
/// binaries. Unknown flags abort with a usage message so typos do not
/// silently run the default experiment.
///
/// Three fleet-wide flags are implicitly known by every binary, so
/// scripts/reproduce_all.sh can pass them uniformly:
///   --threads=N     worker threads for TurboFlux's parallel batched path
///                   (other engines stay sequential);
///   --batch=K       update-window size fed to ApplyBatch per call;
///   --stats_json=F  accumulate per-engine observability snapshots
///                   (DESIGN.md §3.8) into the JSON artifact F.
/// Binaries that predate a flag simply ignore it. The defaults
/// (threads=1, batch=1, no stats) reproduce the paper's sequential
/// one-op-at-a-time model exactly.
class Flags {
 public:
  Flags(int argc, char** argv, const std::vector<std::string>& known);

  /// The implicit `--threads` / `--batch` values (defaults 1/1).
  int64_t Threads() const { return GetInt("threads", 1); }
  int64_t Batch() const { return GetInt("batch", 1); }
  /// The implicit `--stats_json` artifact path ("" = no stats).
  std::string StatsJson() const { return GetString("stats_json", ""); }

  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  /// Comma-separated integer list, e.g. `--sizes=3,6,9,12`.
  std::vector<int64_t> GetIntList(const std::string& key,
                                  std::vector<int64_t> default_value) const;

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

}  // namespace bench
}  // namespace turboflux

#endif  // TURBOFLUX_BENCH_COMMON_FLAGS_H_
