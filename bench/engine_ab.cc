// Engine A/B (ISSUE 9, DESIGN.md §3.13): TurboFlux vs SymBi over
// identical LSBench workloads. Both engines answer the same queries over
// the same g0/Δg, so the interesting axes are work (consulted candidates:
// engine.search_states, plus seeds and evals) and wall-clock, alongside a
// per-query match-count agreement check — a cheap standing differential.
//
//   engine_ab [--scale=F] [--queries=N] [--timeout_ms=N] [--seed=N]
//             [--out=BENCH_9.json]
//
// With --out the machine-readable comparison is (re)written as JSON (the
// committed BENCH_9.json artifact); either way a human-readable summary
// table goes to stdout.

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "common/experiment.h"
#include "common/flags.h"
#include "turboflux/harness/runner.h"
#include "turboflux/obs/stats.h"

namespace turboflux {
namespace bench {
namespace {

struct Workload {
  std::string name;
  workload::QueryShape shape;
  double deletion_rate;
  double stream_fraction;
  double keep_full_labels;
};

/// Sentinel in the per-query match digests for a timed-out run; agreement
/// only compares queries both engines completed.
constexpr uint64_t kTimedOut = ~0ull;

/// Per-engine totals over one workload's query set.
struct EngineTotals {
  double stream_seconds = 0.0;
  double init_seconds = 0.0;
  uint64_t initial = 0;
  uint64_t positive = 0;
  uint64_t negative = 0;
  uint64_t search_seeds = 0;
  uint64_t search_states = 0;
  uint64_t insert_evals = 0;
  uint64_t delete_evals = 0;
  size_t peak_intermediate = 0;
  size_t timeouts = 0;
};

EngineTotals RunEngine(EngineKind kind, const workload::Dataset& dataset,
                       const std::vector<QueryGraph>& queries,
                       int64_t timeout_ms,
                       std::vector<uint64_t>* per_query_matches) {
  EngineTotals t;
  for (const QueryGraph& q : queries) {
    std::unique_ptr<ContinuousEngine> engine =
        MakeEngine(kind, MatchSemantics::kHomomorphism);
    DiscardSink sink;
    RunOptions options;
    options.timeout_ms = timeout_ms;
    options.subtract_graph_update_cost = false;
    RunResult r = RunContinuous(*engine, q, dataset.initial,
                                dataset.stream, sink, options);
    if (r.timed_out || r.unsupported) {
      ++t.timeouts;
      per_query_matches->push_back(kTimedOut);
      continue;
    }
    t.stream_seconds += r.raw_stream_seconds;
    t.init_seconds += r.init_seconds;
    t.initial += r.initial_matches;
    t.positive += r.positive_matches;
    t.negative += r.negative_matches;
    if (r.peak_intermediate > t.peak_intermediate) {
      t.peak_intermediate = r.peak_intermediate;
    }
    per_query_matches->push_back(r.initial_matches * 1000003ull +
                                 r.positive_matches * 1009ull +
                                 r.negative_matches);
    if (const obs::EngineStats* s = engine->engine_stats()) {
      t.search_seeds += s->search_seeds.value();
      t.search_states += s->search_states.value();
      t.insert_evals += s->insert_evals.value();
      t.delete_evals += s->delete_evals.value();
    }
  }
  return t;
}

void EmitEngineJson(std::ostream& out, const char* indent,
                    const EngineTotals& t) {
  out << "{\n"
      << indent << "  \"stream_seconds\": " << t.stream_seconds << ",\n"
      << indent << "  \"init_seconds\": " << t.init_seconds << ",\n"
      << indent << "  \"initial_matches\": " << t.initial << ",\n"
      << indent << "  \"positive_matches\": " << t.positive << ",\n"
      << indent << "  \"negative_matches\": " << t.negative << ",\n"
      << indent << "  \"search_seeds\": " << t.search_seeds << ",\n"
      << indent << "  \"search_states\": " << t.search_states << ",\n"
      << indent << "  \"insert_evals\": " << t.insert_evals << ",\n"
      << indent << "  \"delete_evals\": " << t.delete_evals << ",\n"
      << indent << "  \"peak_intermediate\": " << t.peak_intermediate
      << ",\n"
      << indent << "  \"timeouts\": " << t.timeouts << "\n"
      << indent << "}";
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "out"});
  double scale = flags.GetDouble("scale", 1.0);
  int64_t num_queries = flags.GetInt("queries", 8);
  int64_t timeout_ms = flags.GetInt("timeout_ms", 5000);
  uint64_t seed = flags.GetInt("seed", 42);
  std::string out_path = flags.GetString("out", "");

  const std::vector<Workload> workloads = {
      {"lsbench_tree_insert", workload::QueryShape::kTree, 0.0, 0.10, 0.6},
      {"lsbench_cyclic_insert", workload::QueryShape::kGraph, 0.0, 0.10,
       0.6},
      {"lsbench_tree_churn", workload::QueryShape::kTree, 0.30, 0.15,
       0.9},
  };

  std::printf("Engine A/B: TurboFlux vs SymBi (scale=%.2f, %lld queries "
              "of 6 edges per workload)\n\n",
              scale, static_cast<long long>(num_queries));

  struct Row {
    Workload workload;
    EngineTotals turboflux, symbi;
    bool agree;
  };
  std::vector<Row> rows;
  for (const Workload& w : workloads) {
    workload::Dataset dataset = MakeLsBenchDataset(
        scale, w.stream_fraction, w.deletion_rate, seed);
    workload::QueryGenConfig qc;
    qc.shape = w.shape;
    qc.num_edges = 6;
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + 7;
    qc.keep_full_labels = w.keep_full_labels;
    std::vector<QueryGraph> queries =
        workload::GenerateQueries(dataset, qc);

    std::vector<uint64_t> tf_matches, sym_matches;
    Row row;
    row.workload = w;
    row.turboflux = RunEngine(EngineKind::kTurboFlux, dataset, queries,
                              timeout_ms, &tf_matches);
    row.symbi = RunEngine(EngineKind::kSymBi, dataset, queries, timeout_ms,
                          &sym_matches);
    row.agree = tf_matches.size() == sym_matches.size();
    for (size_t i = 0; row.agree && i < tf_matches.size(); ++i) {
      if (tf_matches[i] == kTimedOut || sym_matches[i] == kTimedOut) {
        continue;
      }
      row.agree = tf_matches[i] == sym_matches[i];
    }
    rows.push_back(row);

    std::printf("%-22s %-10s states=%-10llu seeds=%-9llu %.3fs%s\n",
                w.name.c_str(), "TurboFlux",
                static_cast<unsigned long long>(row.turboflux.search_states),
                static_cast<unsigned long long>(row.turboflux.search_seeds),
                row.turboflux.stream_seconds,
                row.turboflux.timeouts ? " TIMEOUTS" : "");
    std::printf("%-22s %-10s states=%-10llu seeds=%-9llu %.3fs%s%s\n",
                "", "SymBi",
                static_cast<unsigned long long>(row.symbi.search_states),
                static_cast<unsigned long long>(row.symbi.search_seeds),
                row.symbi.stream_seconds,
                row.symbi.timeouts ? " TIMEOUTS" : "",
                row.agree ? "" : "  MATCH-COUNT MISMATCH");
  }

  bool all_agree = true;
  for (const Row& row : rows) all_agree = all_agree && row.agree;
  std::printf("\nmatch-count agreement: %s\n",
              all_agree ? "yes" : "NO — engines disagree, investigate");

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    out << "{\n"
        << "  \"bench\": \"engine_ab_turboflux_vs_symbi\",\n"
        << "  \"description\": \"Same LSBench workloads through both "
           "production engines (DESIGN.md 3.13). search_states counts "
           "consulted candidate states during enumeration; the DCS's "
           "bidirectional (top-down AND bottom-up) filtering is why SymBi "
           "consults fewer on the filtering-heavy workloads. Match counts "
           "per query are cross-checked (match_agreement).\",\n"
        << "  \"config\": {\n"
        << "    \"dataset\": \"lsbench\",\n"
        << "    \"scale\": " << scale << ",\n"
        << "    \"queries_per_workload\": " << num_queries << ",\n"
        << "    \"query_edges\": 6,\n"
        << "    \"seed\": " << seed << ",\n"
        << "    \"timeout_ms\": " << timeout_ms << ",\n"
        << "    \"stats_compiled\": "
        << (obs::kStatsCompiled ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"match_agreement\": " << (all_agree ? "true" : "false")
        << ",\n"
        << "  \"workloads\": [";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << (i ? ",\n" : "\n") << "    {\n"
          << "      \"name\": \"" << row.workload.name << "\",\n"
          << "      \"deletion_rate\": " << row.workload.deletion_rate
          << ",\n"
          << "      \"stream_fraction\": " << row.workload.stream_fraction
          << ",\n"
          << "      \"keep_full_labels\": "
          << row.workload.keep_full_labels << ",\n"
          << "      \"turboflux\": ";
      EmitEngineJson(out, "      ", row.turboflux);
      out << ",\n      \"symbi\": ";
      EmitEngineJson(out, "      ", row.symbi);
      out << "\n    }";
    }
    out << "\n  ]\n}\n";
    if (!out.flush()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return all_agree ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
