// Figure 1 / Figure 2 reproduction: the paper's motivating example. A
// query with a high-fanout star and a selective tail is run over the
// reconstructed g0 and the two updates Δo1 and Δo2. We report, per graph
// version, the DCG size (Figure 2c-e: 213/214/215 edges in the paper;
// 212/213/214 here because our ChooseStartQVertex roots at u1 and so
// stores one artificial edge instead of two) against SJ-Tree's
// materialized partial-solution slots (Figure 2b: 11,311 -> 22,613), and
// the positive matches of each update (0 for Δo1, 200 for Δo2).

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/experiment.h"
#include "turboflux/baseline/sj_tree.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/harness/table.h"

namespace turboflux {
namespace bench {
namespace {

constexpr Label kA = 0, kB = 1, kC = 2, kG = 3, kD = 4;

int Main() {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{kA});
  QVertexId u1 = q.AddVertex(LabelSet{kB});
  QVertexId u2 = q.AddVertex(LabelSet{kC});
  QVertexId u3 = q.AddVertex(LabelSet{kG});
  q.AddEdge(u0, 0, u1);
  q.AddEdge(u1, 0, u2);
  q.AddEdge(u1, 0, u3);
  QVertexId u4 = q.AddVertex(LabelSet{kD});
  q.AddEdge(u3, 0, u4);

  Graph g0;
  VertexId v0 = g0.AddVertex(LabelSet{kA});
  VertexId v1 = g0.AddVertex(LabelSet{kA});
  VertexId v2 = g0.AddVertex(LabelSet{kB});
  VertexId first_c = g0.AddVertex(LabelSet{kC});
  for (int i = 1; i < 100; ++i) g0.AddVertex(LabelSet{kC});
  VertexId first_g = g0.AddVertex(LabelSet{kG});
  for (int i = 1; i < 110; ++i) g0.AddVertex(LabelSet{kG});
  VertexId v414 = g0.AddVertex(LabelSet{kD});
  g0.AddEdge(v0, 0, v2);
  for (int i = 0; i < 100; ++i) g0.AddEdge(v2, 0, first_c + i);
  for (int i = 0; i < 110; ++i) g0.AddEdge(v2, 0, first_g + i);
  std::vector<VertexId> decoy_g;
  for (int i = 0; i < 4; ++i) decoy_g.push_back(g0.AddVertex(LabelSet{kG}));
  for (int i = 0; i < 200; ++i) {
    VertexId d = g0.AddVertex(LabelSet{kD});
    g0.AddEdge(decoy_g[i % 4], 0, d);
  }
  UpdateOp delta1 = UpdateOp::Insert(v1, 0, v2);
  UpdateOp delta2 = UpdateOp::Insert(first_g, 0, v414);

  TurboFluxEngine tf;
  SjTreeEngine sj;
  CountingSink tf_init, sj_init;
  tf.Init(q, g0, tf_init, Deadline::Infinite());
  sj.Init(q, g0, sj_init, Deadline::Infinite());

  Table table({"graph", "update", "positive", "DCG edges (TurboFlux)",
               "partial-solution slots (SJ-Tree)", "ratio"});
  auto add_row = [&](const std::string& name, const std::string& upd,
                     uint64_t pos) {
    table.AddRow({name, upd, std::to_string(pos),
                  std::to_string(tf.IntermediateSize()),
                  std::to_string(sj.IntermediateSize()),
                  Table::FormatRatio(
                      static_cast<double>(sj.IntermediateSize()) /
                      static_cast<double>(tf.IntermediateSize()))});
  };
  add_row("g0", "(init)", tf_init.positive());

  CountingSink tf1, sj1;
  (void)tf.ApplyUpdate(delta1, tf1, Deadline::Infinite());
  (void)sj.ApplyUpdate(delta1, sj1, Deadline::Infinite());
  add_row("g1", "do1=+(v1,v2)", tf1.positive());

  CountingSink tf2, sj2;
  (void)tf.ApplyUpdate(delta2, tf2, Deadline::Infinite());
  (void)sj.ApplyUpdate(delta2, sj2, Deadline::Infinite());
  add_row("g2", "do2=+(v104,v414)", tf2.positive());

  std::printf("Figure 1/2: running example -- DCG vs SJ-Tree storage\n");
  table.Print(std::cout);
  std::printf(
      "\npaper: do1 -> 0 matches, do2 -> 200 matches; DCG stays O(100)\n"
      "edges while SJ-Tree stores 10^4-10^5 partial-solution slots.\n");
  bool shape_ok = tf1.positive() == 0 && tf2.positive() == 200 &&
                  sj1.positive() == 0 && sj2.positive() == 200 &&
                  sj.IntermediateSize() > 10 * tf.IntermediateSize();
  std::printf("shape check: %s\n", shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main() { return turboflux::bench::Main(); }
