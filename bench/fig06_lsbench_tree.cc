// Figure 6 reproduction: LSBench tree queries of size 3/6/9/12.
//
//  * 6a: average cost(M(Δg,q)) for TurboFlux vs SJ-Tree vs Graphflow;
//  * 6b: average intermediate-result size, TurboFlux vs SJ-Tree;
//  * 6c/6d (--scatter): per-query time pairs.
//
// Expected shape: TurboFlux wins on every query; SJ-Tree and Graphflow
// trail by 1-3 orders of magnitude (the paper reports 77-379x over
// SJ-Tree and 515-1276x over Graphflow at full scale); SJ-Tree's
// intermediate results dwarf the DCG.

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "sizes", "scatter"});
  double scale = flags.GetDouble("scale", 2.0);
  int64_t num_queries = flags.GetInt("queries", 8);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 3000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 42);
  std::vector<int64_t> sizes = flags.GetIntList("sizes", {3, 6, 9, 12});
  bool scatter = flags.GetBool("scatter", false);

  std::printf("Figure 6: LSBench tree queries (scale=%.2f, %lld queries "
              "per size, timeout %lldms)\n",
              scale, static_cast<long long>(num_queries),
              static_cast<long long>(options.timeout_ms));
  workload::Dataset dataset = MakeLsBenchDataset(scale, 0.10, 0.0, seed);
  std::printf("dataset: |V|=%zu |E(g0)|=%zu |dg|=%zu\n\n",
              dataset.initial.VertexCount(), dataset.initial.EdgeCount(),
              dataset.stream.size());

  FigureReport report("size");
  for (int64_t size : sizes) {
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kTree;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(size);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);

    QuerySetResult tf =
        RunQuerySet(EngineKind::kTurboFlux, dataset, queries, options);
    QuerySetResult sj =
        RunQuerySet(EngineKind::kSjTree, dataset, queries, options);
    QuerySetResult gf =
        RunQuerySet(EngineKind::kGraphflow, dataset, queries, options);
    std::string x = std::to_string(size);
    report.AddRow(x, EngineKind::kTurboFlux, tf);
    report.AddRow(x, EngineKind::kSjTree, sj);
    report.AddRow(x, EngineKind::kGraphflow, gf);
    if (scatter) {
      PrintScatter("Fig 6c size " + x, tf.per_query_seconds,
                   sj.per_query_seconds, "SJ-Tree");
      PrintScatter("Fig 6d size " + x, tf.per_query_seconds,
                   gf.per_query_seconds, "Graphflow");
    }
  }
  report.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
