// Figure 7 reproduction: LSBench graph (cyclic) queries of size 6/9/12.
// Same measurements as Figure 6; expected shape: TurboFlux still wins
// (the paper reports 21-115x over SJ-Tree, 91-240x over Graphflow), with
// more baseline timeouts than the tree-query experiment.

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "sizes", "scatter"});
  double scale = flags.GetDouble("scale", 2.0);
  int64_t num_queries = flags.GetInt("queries", 8);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 3000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 42);
  std::vector<int64_t> sizes = flags.GetIntList("sizes", {6, 9, 12});
  bool scatter = flags.GetBool("scatter", false);

  std::printf("Figure 7: LSBench graph (cyclic) queries (scale=%.2f)\n",
              scale);
  workload::Dataset dataset = MakeLsBenchDataset(scale, 0.10, 0.0, seed);
  std::printf("dataset: |V|=%zu |E(g0)|=%zu |dg|=%zu\n\n",
              dataset.initial.VertexCount(), dataset.initial.EdgeCount(),
              dataset.stream.size());

  FigureReport report("size");
  for (int64_t size : sizes) {
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kGraph;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(size);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);
    if (queries.empty()) {
      std::printf("(no cyclic queries of size %lld found; skipping)\n",
                  static_cast<long long>(size));
      continue;
    }

    QuerySetResult tf =
        RunQuerySet(EngineKind::kTurboFlux, dataset, queries, options);
    QuerySetResult sj =
        RunQuerySet(EngineKind::kSjTree, dataset, queries, options);
    QuerySetResult gf =
        RunQuerySet(EngineKind::kGraphflow, dataset, queries, options);
    std::string x = std::to_string(size);
    report.AddRow(x, EngineKind::kTurboFlux, tf);
    report.AddRow(x, EngineKind::kSjTree, sj);
    report.AddRow(x, EngineKind::kGraphflow, gf);
    if (scatter) {
      PrintScatter("Fig 7c size " + x, tf.per_query_seconds,
                   sj.per_query_seconds, "SJ-Tree");
      PrintScatter("Fig 7d size " + x, tf.per_query_seconds,
                   gf.per_query_seconds, "Graphflow");
    }
  }
  report.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
