// Figure 8 reproduction: varying the insertion rate (the fraction of the
// triple stream that forms Δg) from 2% to 10% on LSBench tree queries of
// size 6. Expected shape: all engines scale linearly in the stream
// length; TurboFlux stays 2-3 orders of magnitude ahead (the paper
// reports up to 175x over SJ-Tree and 805x over Graphflow at rate 10%).

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "rates", "size"});
  double scale = flags.GetDouble("scale", 2.0);
  int64_t num_queries = flags.GetInt("queries", 8);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 3000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 42);
  std::vector<int64_t> rates = flags.GetIntList("rates", {2, 4, 6, 8, 10});
  int64_t size = flags.GetInt("size", 6);

  std::printf("Figure 8: varying insertion rate, LSBench tree queries of "
              "size %lld (scale=%.2f)\n\n",
              static_cast<long long>(size), scale);

  FigureReport report("ins.rate%");
  for (int64_t rate : rates) {
    workload::Dataset dataset =
        MakeLsBenchDataset(scale, static_cast<double>(rate) / 100.0, 0.0,
                           seed);
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kTree;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(rate);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);

    std::string x = std::to_string(rate);
    report.AddRow(x, EngineKind::kTurboFlux,
                  RunQuerySet(EngineKind::kTurboFlux, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kSjTree,
                  RunQuerySet(EngineKind::kSjTree, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kGraphflow,
                  RunQuerySet(EngineKind::kGraphflow, dataset, queries,
                              options));
  }
  report.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
