// Figure 9 reproduction: varying the dataset size with a fixed update
// stream. The paper scales LSBench from 0.1M to 10M users; we scale the
// laptop-size dataset by 0.5x/1x/2x (override with --scales). Expected
// shape: TurboFlux and SJ-Tree are flat-ish in the initial-graph size
// (they maintain incremental state), while Graphflow degrades because
// each delta join runs against an ever larger graph.

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"queries", "timeout_ms", "seed", "scales", "size"});
  int64_t num_queries = flags.GetInt("queries", 8);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 3000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 42);
  // Scale percentages of the default dataset: 50%, 100%, 200%.
  std::vector<int64_t> scales = flags.GetIntList("scales", {50, 100, 200});
  int64_t size = flags.GetInt("size", 6);

  std::printf("Figure 9: varying dataset size, fixed-size update stream, "
              "LSBench tree queries of size %lld\n\n",
              static_cast<long long>(size));

  // Fix the absolute stream length across scales (the paper fixes Δg and
  // grows g0): generate each dataset with a stream fraction that yields
  // roughly the same stream size as the 100% dataset.
  const double base_fraction = 0.10;
  FigureReport report("scale%");
  for (int64_t pct : scales) {
    double scale = static_cast<double>(pct) / 100.0;
    double fraction = base_fraction / scale;
    if (fraction > 0.5) fraction = 0.5;
    workload::Dataset dataset =
        MakeLsBenchDataset(scale, fraction, 0.0, seed);
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kTree;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(pct);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);
    std::printf("scale %lld%%: |E(g0)|=%zu |dg|=%zu\n",
                static_cast<long long>(pct), dataset.initial.EdgeCount(),
                dataset.stream.size());

    std::string x = std::to_string(pct);
    report.AddRow(x, EngineKind::kTurboFlux,
                  RunQuerySet(EngineKind::kTurboFlux, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kSjTree,
                  RunQuerySet(EngineKind::kSjTree, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kGraphflow,
                  RunQuerySet(EngineKind::kGraphflow, dataset, queries,
                              options));
  }
  std::printf("\n");
  report.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
