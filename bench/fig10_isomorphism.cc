// Figure 10 (Appendix B.1) reproduction: subgraph-isomorphism semantics
// on LSBench tree and graph queries. Expected shape: the injectivity
// constraint shrinks intermediate results, narrowing — but not closing —
// the gaps (the paper reports 56-115x over SJ-Tree and 275-1118x over
// Graphflow for tree queries; 14-64x and 49-72x for graph queries).

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv, {"scale", "queries", "timeout_ms", "seed"});
  double scale = flags.GetDouble("scale", 2.0);
  int64_t num_queries = flags.GetInt("queries", 8);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 3000);
  ApplyStreamingFlags(flags, options);
  options.semantics = MatchSemantics::kIsomorphism;
  uint64_t seed = flags.GetInt("seed", 42);

  std::printf("Figure 10: subgraph-isomorphism semantics, LSBench "
              "(scale=%.2f)\n\n", scale);
  workload::Dataset dataset = MakeLsBenchDataset(scale, 0.10, 0.0, seed);

  struct Config {
    workload::QueryShape shape;
    const char* name;
    std::vector<int64_t> sizes;
  };
  const Config configs[] = {
      {workload::QueryShape::kTree, "tree", {3, 6, 9, 12}},
      {workload::QueryShape::kGraph, "graph", {6, 9, 12}},
  };

  for (const Config& config : configs) {
    std::printf("-- %s queries --\n", config.name);
    FigureReport report("size");
    for (int64_t size : config.sizes) {
      workload::QueryGenConfig qc;
      qc.shape = config.shape;
      qc.num_edges = static_cast<size_t>(size);
      qc.count = static_cast<size_t>(num_queries);
      qc.seed = seed + static_cast<uint64_t>(size);
      std::vector<QueryGraph> queries =
          workload::GenerateQueries(dataset, qc);
      if (queries.empty()) continue;
      std::string x = std::to_string(size);
      report.AddRow(x, EngineKind::kTurboFlux,
                    RunQuerySet(EngineKind::kTurboFlux, dataset, queries,
                                options));
      report.AddRow(x, EngineKind::kSjTree,
                    RunQuerySet(EngineKind::kSjTree, dataset, queries,
                                options));
      report.AddRow(x, EngineKind::kGraphflow,
                    RunQuerySet(EngineKind::kGraphflow, dataset, queries,
                                options));
    }
    report.Print();
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
