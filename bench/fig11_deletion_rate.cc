// Figure 11 (Appendix B.2) reproduction: varying the deletion rate
// (#deletions / #insertions) from 2% to 10% at a fixed 6% insertion
// rate. SJ-Tree is excluded — the original system does not support
// deletion. Expected shape: TurboFlux's time grows mildly with the
// deletion rate (deletions trigger upward clearing) while Graphflow is
// flat-to-decreasing (deletions shrink its input), and TurboFlux stays
// about two orders of magnitude faster; the average intermediate size is
// nearly constant.

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "rates", "size"});
  double scale = flags.GetDouble("scale", 2.0);
  int64_t num_queries = flags.GetInt("queries", 8);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 3000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 42);
  std::vector<int64_t> rates = flags.GetIntList("rates", {2, 4, 6, 8, 10});
  int64_t size = flags.GetInt("size", 6);

  std::printf("Figure 11: varying deletion rate (insertion rate fixed at "
              "6%%), LSBench tree queries of size %lld\n\n",
              static_cast<long long>(size));

  FigureReport report("del.rate%");
  for (int64_t rate : rates) {
    workload::Dataset dataset = MakeLsBenchDataset(
        scale, 0.06, static_cast<double>(rate) / 100.0, seed);
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kTree;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(rate);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);

    std::string x = std::to_string(rate);
    report.AddRow(x, EngineKind::kTurboFlux,
                  RunQuerySet(EngineKind::kTurboFlux, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kGraphflow,
                  RunQuerySet(EngineKind::kGraphflow, dataset, queries,
                              options));
  }
  report.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
