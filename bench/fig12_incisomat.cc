// Figure 12 (Appendix B.3) reproduction: TurboFlux vs IncIsoMat. The
// paper runs just two size-6 tree queries — the ones with the minimum
// and maximum TurboFlux cost — over a 10,000-insertion stream (12a) and
// a mix of 10,000 insertions + 600 deletions (12b), because IncIsoMat is
// too slow for anything larger. Expected shape: TurboFlux ahead by many
// orders of magnitude (the paper reports up to 2,214,086x).

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "size", "ops"});
  double scale = flags.GetDouble("scale", 0.3);
  int64_t num_queries = flags.GetInt("queries", 8);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 5000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 42);
  int64_t size = flags.GetInt("size", 6);
  size_t ops = static_cast<size_t>(flags.GetInt("ops", 1000));

  std::printf("Figure 12: TurboFlux vs IncIsoMat (scale=%.2f, stream "
              "truncated to %zu ops)\n\n", scale, ops);

  for (double deletion_rate : {0.0, 0.06}) {
    workload::Dataset dataset =
        MakeLsBenchDataset(scale, 0.10, deletion_rate, seed);
    TruncateStream(dataset, ops);

    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kTree;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed;
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);
    if (queries.size() < 2) {
      std::printf("not enough queries generated\n");
      return 1;
    }

    // Pick the min- and max-cost queries under TurboFlux, as the paper
    // does.
    QuerySetResult probe =
        RunQuerySet(EngineKind::kTurboFlux, dataset, queries, options);
    size_t qmin = 0, qmax = 0;
    for (size_t i = 1; i < probe.per_query_seconds.size(); ++i) {
      if (probe.per_query_seconds[i] < 0) continue;
      if (probe.per_query_seconds[i] < probe.per_query_seconds[qmin]) {
        qmin = i;
      }
      if (probe.per_query_seconds[i] > probe.per_query_seconds[qmax]) {
        qmax = i;
      }
    }
    std::vector<QueryGraph> picked = {queries[qmin], queries[qmax]};

    std::printf("-- %s stream (%zu ops) --\n",
                deletion_rate == 0.0 ? "insertion-only (Fig 12a)"
                                     : "mixed insert/delete (Fig 12b)",
                dataset.stream.size());
    FigureReport report("query");
    const char* names[2] = {"Q(min)", "Q(max)"};
    for (int i = 0; i < 2; ++i) {
      std::vector<QueryGraph> one = {picked[i]};
      report.AddRow(names[i], EngineKind::kTurboFlux,
                    RunQuerySet(EngineKind::kTurboFlux, dataset, one,
                                options));
      report.AddRow(names[i], EngineKind::kIncIsoMat,
                    RunQuerySet(EngineKind::kIncIsoMat, dataset, one,
                                options));
    }
    report.Print();
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
