// Figure 13 (Appendix B.4) reproduction: Netflow tree queries of size
// 3/6/9/12. Netflow has eight edge labels and *no* vertex labels, so
// queries are non-selective and the baselines' intermediate results
// explode (the paper: 100/100 SJ-Tree and 72/100 Graphflow timeouts at
// size 12; TurboFlux at least 45,886x / 69,221x faster on the queries
// that finish). Expected shape here: many baseline timeouts, TurboFlux
// completes everything.

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "sizes"});
  double scale = flags.GetDouble("scale", 1.0);
  int64_t num_queries = flags.GetInt("queries", 4);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 1500);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 7);
  std::vector<int64_t> sizes = flags.GetIntList("sizes", {3, 6, 9, 12});

  std::printf("Figure 13: Netflow tree queries (scale=%.2f)\n", scale);
  workload::Dataset dataset = MakeNetflowDataset(scale, 0.10, 0.0, seed);
  std::printf("dataset: |V|=%zu |E(g0)|=%zu |dg|=%zu, 8 edge labels, "
              "no vertex labels\n\n",
              dataset.initial.VertexCount(), dataset.initial.EdgeCount(),
              dataset.stream.size());

  FigureReport report("size");
  for (int64_t size : sizes) {
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kTree;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(size);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);
    std::string x = std::to_string(size);
    report.AddRow(x, EngineKind::kTurboFlux,
                  RunQuerySet(EngineKind::kTurboFlux, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kSjTree,
                  RunQuerySet(EngineKind::kSjTree, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kGraphflow,
                  RunQuerySet(EngineKind::kGraphflow, dataset, queries,
                              options));
  }
  report.Print();
  std::printf("note: rows where every engine times out are enumeration-bound\n"
              "(millions of positives per query); rerun with --timeout_ms=20000\n"
              "--queries=2 to see TurboFlux complete them while the baselines\n"
              "still time out (Appendix B.4).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
