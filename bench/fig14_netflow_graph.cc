// Figure 14 (Appendix B.4) reproduction: Netflow graph (cyclic) queries
// of size 6/9/12. Expected shape: TurboFlux finishes all sizes within
// the budget while the baselines mostly time out (the paper reports
// TurboFlux finishing within 10 minutes on a >1M-insert stream).

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "sizes"});
  double scale = flags.GetDouble("scale", 1.0);
  int64_t num_queries = flags.GetInt("queries", 4);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 1500);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 7);
  std::vector<int64_t> sizes = flags.GetIntList("sizes", {6, 9, 12});

  std::printf("Figure 14: Netflow graph (cyclic) queries (scale=%.2f)\n\n",
              scale);
  workload::Dataset dataset = MakeNetflowDataset(scale, 0.10, 0.0, seed);

  FigureReport report("size");
  for (int64_t size : sizes) {
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kGraph;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(size);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);
    if (queries.empty()) {
      std::printf("(no cyclic queries of size %lld found; skipping)\n",
                  static_cast<long long>(size));
      continue;
    }
    std::string x = std::to_string(size);
    report.AddRow(x, EngineKind::kTurboFlux,
                  RunQuerySet(EngineKind::kTurboFlux, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kSjTree,
                  RunQuerySet(EngineKind::kSjTree, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kGraphflow,
                  RunQuerySet(EngineKind::kGraphflow, dataset, queries,
                              options));
  }
  report.Print();
  std::printf("note: rows where every engine times out are enumeration-bound\n"
              "(millions of positives per query); rerun with --timeout_ms=20000\n"
              "--queries=2 to see TurboFlux complete them while the baselines\n"
              "still time out (Appendix B.4).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
