// Figure 16 (Appendix B.6) reproduction: Netflow *binary-tree* queries
// in the style of the SJ-Tree paper's query set (sizes 4..14 there; 4,
// 8, 12 by default here). Expected shape: TurboFlux ahead of SJ-Tree and
// Graphflow on every completed query (the paper reports up to 1,052x and
// 92,245x respectively), with baseline timeouts on the larger sizes.

#include <cstdio>
#include <string>

#include "common/experiment.h"
#include "common/flags.h"

namespace turboflux {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"scale", "queries", "timeout_ms", "seed", "sizes"});
  double scale = flags.GetDouble("scale", 1.0);
  int64_t num_queries = flags.GetInt("queries", 6);
  ExperimentOptions options;
  options.timeout_ms = flags.GetInt("timeout_ms", 2000);
  ApplyStreamingFlags(flags, options);
  uint64_t seed = flags.GetInt("seed", 7);
  std::vector<int64_t> sizes = flags.GetIntList("sizes", {4, 8, 12});

  std::printf("Figure 16: Netflow binary-tree queries from [7]'s query "
              "style (scale=%.2f)\n\n", scale);
  workload::Dataset dataset = MakeNetflowDataset(scale, 0.10, 0.0, seed);

  FigureReport report("size");
  for (int64_t size : sizes) {
    workload::QueryGenConfig qc;
    qc.shape = workload::QueryShape::kBinaryTree;
    qc.num_edges = static_cast<size_t>(size);
    qc.count = static_cast<size_t>(num_queries);
    qc.seed = seed + static_cast<uint64_t>(size);
    std::vector<QueryGraph> queries = workload::GenerateQueries(dataset, qc);
    if (queries.empty()) continue;
    std::string x = std::to_string(size);
    report.AddRow(x, EngineKind::kTurboFlux,
                  RunQuerySet(EngineKind::kTurboFlux, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kSjTree,
                  RunQuerySet(EngineKind::kSjTree, dataset, queries,
                              options));
    report.AddRow(x, EngineKind::kGraphflow,
                  RunQuerySet(EngineKind::kGraphflow, dataset, queries,
                              options));
  }
  report.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
