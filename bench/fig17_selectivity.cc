// Figure 17 (Appendix C) reproduction: the selectivity distribution
// (number of positive matches over the whole insertion stream) of every
// query set, printed as a stacked-bar-style histogram over the paper's
// eight ranges. Expected shape: tree queries span a wide selectivity
// range; cyclic queries are more selective; Netflow queries have more
// results than LSBench; path/binary-tree query styles skew selective.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/experiment.h"
#include "common/flags.h"
#include "turboflux/harness/table.h"

namespace turboflux {
namespace bench {
namespace {

// The paper's eight selectivity buckets.
const uint64_t kBucketEdges[] = {0, 10, 100, 1000, 10000, 100000, 1000000,
                                 10000000};

std::vector<size_t> Histogram(const std::vector<uint64_t>& counts) {
  std::vector<size_t> buckets(8, 0);
  for (uint64_t c : counts) {
    size_t b = 0;
    while (b + 1 < 8 && c >= kBucketEdges[b + 1]) ++b;
    ++buckets[b];
  }
  return buckets;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv, {"scale", "queries", "timeout_ms", "seed"});
  double scale = flags.GetDouble("scale", 0.7);
  int64_t num_queries = flags.GetInt("queries", 10);
  int64_t timeout_ms = flags.GetInt("timeout_ms", 2000);
  uint64_t seed = flags.GetInt("seed", 42);

  std::printf("Figure 17: selectivity distribution of the query sets "
              "(positive matches over the stream)\n\n");

  workload::Dataset lsbench = MakeLsBenchDataset(scale, 0.10, 0.0, seed);
  workload::Dataset netflow = MakeNetflowDataset(scale, 0.10, 0.0, seed);

  struct Row {
    const char* name;
    const workload::Dataset* dataset;
    workload::QueryShape shape;
    std::vector<int64_t> sizes;
  };
  const Row rows[] = {
      {"LSBench tree (17a)", &lsbench, workload::QueryShape::kTree,
       {3, 6, 9, 12}},
      {"LSBench graph (17b)", &lsbench, workload::QueryShape::kGraph,
       {6, 9, 12}},
      {"Netflow tree (17c)", &netflow, workload::QueryShape::kTree,
       {3, 6, 9, 12}},
      {"Netflow graph (17d)", &netflow, workload::QueryShape::kGraph,
       {6, 9, 12}},
      {"Netflow path [7] (17e)", &netflow, workload::QueryShape::kPath,
       {3, 4, 5}},
      {"Netflow btree [7] (17f)", &netflow,
       workload::QueryShape::kBinaryTree, {4, 8, 12}},
  };

  Table table({"query set", "queries", "[0,10)", "[10,1e2)", "[1e2,1e3)",
               "[1e3,1e4)", "[1e4,1e5)", "[1e5,1e6)", "[1e6,1e7)",
               ">=1e7"});
  for (const Row& row : rows) {
    std::vector<uint64_t> counts;
    for (int64_t size : row.sizes) {
      workload::QueryGenConfig qc;
      qc.shape = row.shape;
      qc.num_edges = static_cast<size_t>(size);
      qc.count = static_cast<size_t>(num_queries);
      qc.seed = seed + static_cast<uint64_t>(size);
      std::vector<QueryGraph> queries =
          workload::GenerateQueries(*row.dataset, qc);
      std::vector<uint64_t> sel =
          QuerySelectivities(*row.dataset, queries, timeout_ms);
      counts.insert(counts.end(), sel.begin(), sel.end());
    }
    std::vector<size_t> buckets = Histogram(counts);
    std::vector<std::string> cells = {row.name, std::to_string(counts.size())};
    for (size_t b : buckets) cells.push_back(std::to_string(b));
    table.AddRow(cells);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) { return turboflux::bench::Main(argc, argv); }
