// Micro-benchmarks (google-benchmark) of the core primitives:
//
//  * dynamic graph edge insert/probe/delete;
//  * DCG state transitions;
//  * BuildDCG over growing data graphs — Lemma 4.1 predicts
//    O(|E(g)| * |V(q)|), i.e. roughly linear per-edge time as |E| grows;
//  * one InsertEdgeAndEval step on a warm LSBench-like engine;
//  * ApplyBatch throughput on an embarrassingly-parallel insert-heavy
//    stream (pass --threads=N --batch=K; see main below).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/experiment.h"
#include "turboflux/common/rng.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/graph/node_graph.h"
#include "turboflux/obs/stats.h"
#include "turboflux/workload/query_gen.h"

namespace turboflux {
namespace bench {

// Set by main() from --threads / --batch before benchmark::Initialize
// (google-benchmark rejects flags it does not know about).
int64_t g_threads = 1;
int64_t g_batch = 64;

namespace {

void BM_GraphAddRemoveEdge(benchmark::State& state) {
  Graph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(1);
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(1000));
    VertexId b = static_cast<VertexId>(rng.NextBounded(1000));
    if (g.AddEdge(a, 0, b)) {
      benchmark::DoNotOptimize(g.EdgeCount());
      g.RemoveEdge(a, 0, b);
    }
  }
}
BENCHMARK(BM_GraphAddRemoveEdge);

void BM_GraphHasEdge(benchmark::State& state) {
  Graph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
              static_cast<VertexId>(rng.NextBounded(1000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g.HasEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
                  static_cast<VertexId>(rng.NextBounded(1000))));
  }
}
BENCHMARK(BM_GraphHasEdge);

// Layout A/B twins of the two Graph primitives above, on the preserved
// node-based layout (legacy::NodeGraph) — same op sequences, so
// BM_Graph* / BM_NodeGraph* pairs isolate the §3.11 layout effect.
void BM_NodeGraphAddRemoveEdge(benchmark::State& state) {
  legacy::NodeGraph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(1);
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(1000));
    VertexId b = static_cast<VertexId>(rng.NextBounded(1000));
    if (g.AddEdge(a, 0, b)) {
      benchmark::DoNotOptimize(g.EdgeCount());
      g.RemoveEdge(a, 0, b);
    }
  }
}
BENCHMARK(BM_NodeGraphAddRemoveEdge);

void BM_NodeGraphHasEdge(benchmark::State& state) {
  legacy::NodeGraph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
              static_cast<VertexId>(rng.NextBounded(1000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g.HasEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
                  static_cast<VertexId>(rng.NextBounded(1000))));
  }
}
BENCHMARK(BM_NodeGraphHasEdge);

// One DCG edge lifecycle: N->I->E->I->N plus the bitmap updates.
void BM_DcgTransitionCycle(benchmark::State& state) {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  q.AddEdge(u0, 0, u1);
  QueryStats stats;
  stats.edge_matches.assign(1, 1);
  stats.vertex_matches.assign(2, 1);
  QueryTree tree = QueryTree::Build(q, u0, stats);
  Dcg dcg;
  dcg.Reset(16, tree);
  for (auto _ : state) {
    dcg.SetState(0, 1, 1, DcgState::kImplicit);
    dcg.SetState(0, 1, 1, DcgState::kExplicit);
    dcg.SetState(0, 1, 1, DcgState::kImplicit);
    dcg.SetState(0, 1, 1, DcgState::kNull);
    benchmark::DoNotOptimize(dcg.EdgeCount());
  }
}
BENCHMARK(BM_DcgTransitionCycle);

// Lemma 4.1: full-DCG construction over a data graph of |E| edges; the
// reported items_per_second should stay roughly flat as |E| grows.
void BM_BuildDcgScaling(benchmark::State& state) {
  double scale = static_cast<double>(state.range(0)) / 100.0;
  workload::Dataset ds = MakeLsBenchDataset(scale, 0.10, 0.0, 11);
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = 6;
  qc.count = 1;
  qc.seed = 5;
  std::vector<QueryGraph> queries = workload::GenerateQueries(ds, qc);
  if (queries.empty()) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    TurboFluxEngine engine;
    CountingSink sink;
    engine.Init(queries[0], ds.initial, sink, Deadline::Infinite());
    benchmark::DoNotOptimize(engine.dcg().EdgeCount());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.initial.EdgeCount()));
  state.counters["edges"] = static_cast<double>(ds.initial.EdgeCount());
}
BENCHMARK(BM_BuildDcgScaling)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// Steady-state insertion cost on a warm engine.
void BM_InsertEdgeAndEval(benchmark::State& state) {
  workload::Dataset ds = MakeLsBenchDataset(0.5, 0.10, 0.0, 13);
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = 6;
  qc.count = 1;
  qc.seed = 17;
  std::vector<QueryGraph> queries = workload::GenerateQueries(ds, qc);
  if (queries.empty() || ds.stream.empty()) {
    state.SkipWithError("no query/stream generated");
    return;
  }
  // The benchmark loop may need more iterations than the stream has
  // ops, so cycle: apply every insertion, then delete them all in
  // reverse, and repeat — every iteration is a real state change.
  UpdateStream ops;
  for (const UpdateOp& op : ds.stream) {
    if (op.IsInsert()) ops.push_back(op);
  }
  size_t inserts = ops.size();
  for (size_t i = inserts; i > 0; --i) {
    const UpdateOp& op = ops[i - 1];
    ops.push_back(UpdateOp::Delete(op.from, op.label, op.to));
  }
  TurboFluxEngine engine;
  CountingSink sink;
  engine.Init(queries[0], ds.initial, sink, Deadline::Infinite());
  size_t i = 0;
  for (auto _ : state) {
    (void)engine.ApplyUpdate(ops[i], sink, Deadline::Infinite());
    i = (i + 1) % ops.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertEdgeAndEval);

// Batched-update throughput on an embarrassingly parallel workload:
// kClusters independent star clusters, each a hub (vertex label 1) with
// kFanout leaf children (label 2, edge label 1) and kParents parent
// vertices (label 0). The stream inserts parent->hub edges (edge label
// 0) round-robin across clusters, so any window of up to kClusters
// consecutive ops is conflict-free under the batch scheduler; each
// insert completes kFanout^2 (= 576) homomorphic matches of the query
//   u0 -0-> u1, u1 -1-> u2, u1 -1-> u3
// which makes the per-op cost search-dominated (the regime where the
// parallel path pays off). Inserts are followed by the matching deletes
// in reverse so the benchmark loop cycles with no net state growth.
// Compare `--threads=1` vs `--threads=4 --batch=64` (EXPERIMENTS.md).
void BM_ApplyBatch(benchmark::State& state) {
  const size_t kClusters = 256, kFanout = 24, kParents = 8;
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  QVertexId u2 = q.AddVertex(LabelSet{2});
  QVertexId u3 = q.AddVertex(LabelSet{2});
  q.AddEdge(u0, 0, u1);
  q.AddEdge(u1, 1, u2);
  q.AddEdge(u1, 1, u3);

  Graph g;
  std::vector<VertexId> hubs(kClusters);
  std::vector<std::vector<VertexId>> parents(kClusters);
  for (size_t c = 0; c < kClusters; ++c) {
    hubs[c] = g.AddVertex(LabelSet{1});
    for (size_t f = 0; f < kFanout; ++f) {
      g.AddEdge(hubs[c], 1, g.AddVertex(LabelSet{2}));
    }
    for (size_t p = 0; p < kParents; ++p) {
      parents[c].push_back(g.AddVertex(LabelSet{0}));
    }
  }

  UpdateStream ops;
  for (size_t p = 0; p < kParents; ++p) {
    for (size_t c = 0; c < kClusters; ++c) {
      ops.push_back(UpdateOp::Insert(parents[c][p], 0, hubs[c]));
    }
  }
  size_t inserts = ops.size();
  for (size_t i = inserts; i > 0; --i) {
    const UpdateOp& op = ops[i - 1];
    ops.push_back(UpdateOp::Delete(op.from, op.label, op.to));
  }

  TurboFluxOptions options;
  options.threads = g_threads > 1 ? static_cast<size_t>(g_threads) : 1;
  TurboFluxEngine engine(options);
  CountingSink sink;
  engine.Init(q, g, sink, Deadline::Infinite());

  const size_t batch = g_batch > 0 ? static_cast<size_t>(g_batch) : 1;
  size_t i = 0;
  int64_t total_ops = 0;
  for (auto _ : state) {
    size_t n = std::min(batch, ops.size() - i);
    std::span<const UpdateOp> window(ops.data() + i, n);
    (void)engine.ApplyBatch(window, sink, Deadline::Infinite());
    total_ops += static_cast<int64_t>(n);
    i += n;
    if (i == ops.size()) i = 0;
  }
  state.SetItemsProcessed(total_ops);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_ApplyBatch)->Unit(benchmark::kMillisecond);

}  // namespace

// --- Pinned single-op latency config (`--pinned_json=FILE`) ---
//
// A deterministic, benchmark-library-free measurement of single-op
// ApplyUpdate latency on a warm engine, across three dataset scales and
// insert/delete/mixed op mixes. Every latency is recorded twice: into a
// PR 3 log2-bucket HistogramData (what the CI perf-smoke gate compares,
// with its at-most-2x bucket over-estimate) and as an exact nanosecond
// sample (what BENCH_<n>.json layout comparisons report, since a log2
// bucket cannot resolve a 1.5x layout win). The workload, query, seeds,
// and op caps are pinned so two builds of this file measure the same op
// sequence; scripts/perf_smoke.py compares the output against the
// committed BENCH_7.json baseline.

namespace {

struct PinnedMixResult {
  double scale = 0;
  std::string mix;
  std::string engine = "turboflux";
  obs::HistogramData hist;
  std::vector<uint64_t> samples;  // exact ns per op, measurement order
};

/// The lowercase names scripts/perf_smoke.py keys rows by (its default
/// for rows without an "engine" field is "turboflux").
const char* PinnedEngineName(EngineKind kind) {
  return kind == EngineKind::kSymBi ? "symbi" : "turboflux";
}

uint64_t ExactPercentile(std::vector<uint64_t> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = p * static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(rank + 0.5)];
}

void MeasureOps(ContinuousEngine& engine, const std::vector<UpdateOp>& ops,
                double scale, const char* mix, const char* engine_name,
                std::vector<PinnedMixResult>& out) {
  PinnedMixResult r;
  r.scale = scale;
  r.mix = mix;
  r.engine = engine_name;
  r.samples.reserve(ops.size());
  CountingSink sink;
  for (const UpdateOp& op : ops) {
    Stopwatch watch;
    (void)engine.ApplyUpdate(op, sink, Deadline::Infinite());
    double seconds = watch.ElapsedSeconds();
    uint64_t ns =
        seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
    r.hist.Record(ns);
    r.samples.push_back(ns);
  }
  out.push_back(std::move(r));
}

// One engine per (scale, mix) tuple so every mix starts from the same
// warm state regardless of which mixes ran before it.
void RunPinnedScale(EngineKind kind, double scale,
                    std::vector<PinnedMixResult>& out) {
  const char* engine_name = PinnedEngineName(kind);
  constexpr size_t kOpsCap = 2000;
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = 6;
  qc.count = 1;
  qc.seed = 17;

  // Insert mix: the stream's first kOpsCap insertions; delete mix: the
  // same edges removed in reverse (so every delete hits a present edge).
  workload::Dataset ds = MakeLsBenchDataset(scale, 0.20, 0.0, 13);
  std::vector<QueryGraph> queries = workload::GenerateQueries(ds, qc);
  if (queries.empty()) return;
  std::vector<UpdateOp> inserts;
  for (const UpdateOp& op : ds.stream) {
    if (op.IsInsert()) inserts.push_back(op);
    if (inserts.size() >= kOpsCap) break;
  }
  std::vector<UpdateOp> deletes;
  for (size_t i = inserts.size(); i > 0; --i) {
    const UpdateOp& op = inserts[i - 1];
    deletes.push_back(UpdateOp::Delete(op.from, op.label, op.to));
  }
  {
    std::unique_ptr<ContinuousEngine> engine =
        MakeEngine(kind, MatchSemantics::kHomomorphism);
    CountingSink sink;
    engine->Init(queries[0], ds.initial, sink, Deadline::Infinite());
    MeasureOps(*engine, inserts, scale, "insert", engine_name, out);
    MeasureOps(*engine, deletes, scale, "delete", engine_name, out);
  }

  // Mixed mix: a 30%-deletion stream over the same dataset seed.
  workload::Dataset mixed = MakeLsBenchDataset(scale, 0.20, 0.30, 13);
  std::vector<QueryGraph> mqueries = workload::GenerateQueries(mixed, qc);
  if (mqueries.empty()) return;
  std::vector<UpdateOp> mops;
  for (const UpdateOp& op : mixed.stream) {
    mops.push_back(op);
    if (mops.size() >= kOpsCap) break;
  }
  std::unique_ptr<ContinuousEngine> engine =
      MakeEngine(kind, MatchSemantics::kHomomorphism);
  CountingSink sink;
  engine->Init(mqueries[0], mixed.initial, sink, Deadline::Infinite());
  MeasureOps(*engine, mops, scale, "mixed", engine_name, out);
}

void AppendJsonNumber(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

int RunPinnedConfig(const std::string& path, const std::string& layout,
                    const std::string& engines) {
  std::vector<EngineKind> kinds;
  if (engines.find("turboflux") != std::string::npos) {
    kinds.push_back(EngineKind::kTurboFlux);
  }
  if (engines.find("symbi") != std::string::npos) {
    kinds.push_back(EngineKind::kSymBi);
  }
  if (kinds.empty()) {
    std::fprintf(stderr,
                 "micro_ops: --engines takes a comma list of "
                 "turboflux,symbi; got %s\n",
                 engines.c_str());
    return 1;
  }
  std::vector<PinnedMixResult> results;
  const double scales[] = {0.25, 0.5, 1.0};
  for (EngineKind kind : kinds) {
    for (double s : scales) RunPinnedScale(kind, s, results);
  }

  std::string json = "{\n  \"bench\": \"micro_ops_pinned\",\n";
  json += "  \"layout\": \"" + layout + "\",\n";
  json +=
      "  \"config\": {\"dataset\": \"lsbench\", \"scales\": [0.25, 0.5, "
      "1.0], \"stream_fraction\": 0.2, \"dataset_seed\": 13, "
      "\"query_edges\": 6, \"query_seed\": 17, \"ops_cap\": 2000},\n";
  json += "  \"engine_ops\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const PinnedMixResult& r = results[i];
    json += "    {\"scale\": ";
    AppendJsonNumber(json, r.scale);
    json += ", \"mix\": \"" + r.mix + "\"";
    json += ", \"engine\": \"" + r.engine + "\"";
    json += ", \"ops\": " + std::to_string(r.samples.size());
    json += ", \"hist_p50_ns\": " + std::to_string(r.hist.Percentile(0.50));
    json += ", \"hist_p99_ns\": " + std::to_string(r.hist.Percentile(0.99));
    json += ", \"p50_ns\": " + std::to_string(ExactPercentile(r.samples, 0.50));
    json += ", \"p90_ns\": " + std::to_string(ExactPercentile(r.samples, 0.90));
    json += ", \"p99_ns\": " + std::to_string(ExactPercentile(r.samples, 0.99));
    json += ", \"mean_ns\": ";
    AppendJsonNumber(json, r.hist.Mean());
    json += "}";
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::ofstream out(path, std::ios::binary);
  out << json;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "micro_ops: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("%s", json.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

// BENCHMARK_MAIN rejects unrecognized flags, so strip --threads/--batch
// into globals before handing argv to google-benchmark.
int main(int argc, char** argv) {
  std::string pinned_json;
  std::string layout_name = "current";
  std::string pinned_engines = "turboflux";
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      turboflux::bench::g_threads = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      turboflux::bench::g_batch = std::atoll(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--pinned_json=", 14) == 0) {
      pinned_json = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--layout_name=", 14) == 0) {
      layout_name = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--engines=", 10) == 0) {
      pinned_engines = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--stats_json=", 13) == 0) {
      // Fleet-wide flag from reproduce_all.sh; microbenchmarks measure
      // wall time only, so the stats artifact does not apply here.
    } else {
      filtered.push_back(argv[i]);
    }
  }
  if (!pinned_json.empty()) {
    return turboflux::bench::RunPinnedConfig(pinned_json, layout_name,
                                             pinned_engines);
  }
  int fargc = static_cast<int>(filtered.size());
  benchmark::Initialize(&fargc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(fargc, filtered.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
