// Micro-benchmarks (google-benchmark) of the core primitives:
//
//  * dynamic graph edge insert/probe/delete;
//  * DCG state transitions;
//  * BuildDCG over growing data graphs — Lemma 4.1 predicts
//    O(|E(g)| * |V(q)|), i.e. roughly linear per-edge time as |E| grows;
//  * one InsertEdgeAndEval step on a warm LSBench-like engine;
//  * ApplyBatch throughput on an embarrassingly-parallel insert-heavy
//    stream (pass --threads=N --batch=K; see main below).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "common/experiment.h"
#include "turboflux/common/rng.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/workload/query_gen.h"

namespace turboflux {
namespace bench {

// Set by main() from --threads / --batch before benchmark::Initialize
// (google-benchmark rejects flags it does not know about).
int64_t g_threads = 1;
int64_t g_batch = 64;

namespace {

void BM_GraphAddRemoveEdge(benchmark::State& state) {
  Graph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(1);
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(1000));
    VertexId b = static_cast<VertexId>(rng.NextBounded(1000));
    if (g.AddEdge(a, 0, b)) {
      benchmark::DoNotOptimize(g.EdgeCount());
      g.RemoveEdge(a, 0, b);
    }
  }
}
BENCHMARK(BM_GraphAddRemoveEdge);

void BM_GraphHasEdge(benchmark::State& state) {
  Graph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
              static_cast<VertexId>(rng.NextBounded(1000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g.HasEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
                  static_cast<VertexId>(rng.NextBounded(1000))));
  }
}
BENCHMARK(BM_GraphHasEdge);

// One DCG edge lifecycle: N->I->E->I->N plus the bitmap updates.
void BM_DcgTransitionCycle(benchmark::State& state) {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  q.AddEdge(u0, 0, u1);
  QueryStats stats;
  stats.edge_matches.assign(1, 1);
  stats.vertex_matches.assign(2, 1);
  QueryTree tree = QueryTree::Build(q, u0, stats);
  Dcg dcg;
  dcg.Reset(16, tree);
  for (auto _ : state) {
    dcg.SetState(0, 1, 1, DcgState::kImplicit);
    dcg.SetState(0, 1, 1, DcgState::kExplicit);
    dcg.SetState(0, 1, 1, DcgState::kImplicit);
    dcg.SetState(0, 1, 1, DcgState::kNull);
    benchmark::DoNotOptimize(dcg.EdgeCount());
  }
}
BENCHMARK(BM_DcgTransitionCycle);

// Lemma 4.1: full-DCG construction over a data graph of |E| edges; the
// reported items_per_second should stay roughly flat as |E| grows.
void BM_BuildDcgScaling(benchmark::State& state) {
  double scale = static_cast<double>(state.range(0)) / 100.0;
  workload::Dataset ds = MakeLsBenchDataset(scale, 0.10, 0.0, 11);
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = 6;
  qc.count = 1;
  qc.seed = 5;
  std::vector<QueryGraph> queries = workload::GenerateQueries(ds, qc);
  if (queries.empty()) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    TurboFluxEngine engine;
    CountingSink sink;
    engine.Init(queries[0], ds.initial, sink, Deadline::Infinite());
    benchmark::DoNotOptimize(engine.dcg().EdgeCount());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.initial.EdgeCount()));
  state.counters["edges"] = static_cast<double>(ds.initial.EdgeCount());
}
BENCHMARK(BM_BuildDcgScaling)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// Steady-state insertion cost on a warm engine.
void BM_InsertEdgeAndEval(benchmark::State& state) {
  workload::Dataset ds = MakeLsBenchDataset(0.5, 0.10, 0.0, 13);
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = 6;
  qc.count = 1;
  qc.seed = 17;
  std::vector<QueryGraph> queries = workload::GenerateQueries(ds, qc);
  if (queries.empty() || ds.stream.empty()) {
    state.SkipWithError("no query/stream generated");
    return;
  }
  // The benchmark loop may need more iterations than the stream has
  // ops, so cycle: apply every insertion, then delete them all in
  // reverse, and repeat — every iteration is a real state change.
  UpdateStream ops;
  for (const UpdateOp& op : ds.stream) {
    if (op.IsInsert()) ops.push_back(op);
  }
  size_t inserts = ops.size();
  for (size_t i = inserts; i > 0; --i) {
    const UpdateOp& op = ops[i - 1];
    ops.push_back(UpdateOp::Delete(op.from, op.label, op.to));
  }
  TurboFluxEngine engine;
  CountingSink sink;
  engine.Init(queries[0], ds.initial, sink, Deadline::Infinite());
  size_t i = 0;
  for (auto _ : state) {
    (void)engine.ApplyUpdate(ops[i], sink, Deadline::Infinite());
    i = (i + 1) % ops.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertEdgeAndEval);

// Batched-update throughput on an embarrassingly parallel workload:
// kClusters independent star clusters, each a hub (vertex label 1) with
// kFanout leaf children (label 2, edge label 1) and kParents parent
// vertices (label 0). The stream inserts parent->hub edges (edge label
// 0) round-robin across clusters, so any window of up to kClusters
// consecutive ops is conflict-free under the batch scheduler; each
// insert completes kFanout^2 (= 576) homomorphic matches of the query
//   u0 -0-> u1, u1 -1-> u2, u1 -1-> u3
// which makes the per-op cost search-dominated (the regime where the
// parallel path pays off). Inserts are followed by the matching deletes
// in reverse so the benchmark loop cycles with no net state growth.
// Compare `--threads=1` vs `--threads=4 --batch=64` (EXPERIMENTS.md).
void BM_ApplyBatch(benchmark::State& state) {
  const size_t kClusters = 256, kFanout = 24, kParents = 8;
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  QVertexId u2 = q.AddVertex(LabelSet{2});
  QVertexId u3 = q.AddVertex(LabelSet{2});
  q.AddEdge(u0, 0, u1);
  q.AddEdge(u1, 1, u2);
  q.AddEdge(u1, 1, u3);

  Graph g;
  std::vector<VertexId> hubs(kClusters);
  std::vector<std::vector<VertexId>> parents(kClusters);
  for (size_t c = 0; c < kClusters; ++c) {
    hubs[c] = g.AddVertex(LabelSet{1});
    for (size_t f = 0; f < kFanout; ++f) {
      g.AddEdge(hubs[c], 1, g.AddVertex(LabelSet{2}));
    }
    for (size_t p = 0; p < kParents; ++p) {
      parents[c].push_back(g.AddVertex(LabelSet{0}));
    }
  }

  UpdateStream ops;
  for (size_t p = 0; p < kParents; ++p) {
    for (size_t c = 0; c < kClusters; ++c) {
      ops.push_back(UpdateOp::Insert(parents[c][p], 0, hubs[c]));
    }
  }
  size_t inserts = ops.size();
  for (size_t i = inserts; i > 0; --i) {
    const UpdateOp& op = ops[i - 1];
    ops.push_back(UpdateOp::Delete(op.from, op.label, op.to));
  }

  TurboFluxOptions options;
  options.threads = g_threads > 1 ? static_cast<size_t>(g_threads) : 1;
  TurboFluxEngine engine(options);
  CountingSink sink;
  engine.Init(q, g, sink, Deadline::Infinite());

  const size_t batch = g_batch > 0 ? static_cast<size_t>(g_batch) : 1;
  size_t i = 0;
  int64_t total_ops = 0;
  for (auto _ : state) {
    size_t n = std::min(batch, ops.size() - i);
    std::span<const UpdateOp> window(ops.data() + i, n);
    (void)engine.ApplyBatch(window, sink, Deadline::Infinite());
    total_ops += static_cast<int64_t>(n);
    i += n;
    if (i == ops.size()) i = 0;
  }
  state.SetItemsProcessed(total_ops);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_ApplyBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace turboflux

// BENCHMARK_MAIN rejects unrecognized flags, so strip --threads/--batch
// into globals before handing argv to google-benchmark.
int main(int argc, char** argv) {
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      turboflux::bench::g_threads = std::atoll(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      turboflux::bench::g_batch = std::atoll(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--stats_json=", 13) == 0) {
      // Fleet-wide flag from reproduce_all.sh; microbenchmarks measure
      // wall time only, so the stats artifact does not apply here.
    } else {
      filtered.push_back(argv[i]);
    }
  }
  int fargc = static_cast<int>(filtered.size());
  benchmark::Initialize(&fargc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(fargc, filtered.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
