// Micro-benchmarks (google-benchmark) of the core primitives:
//
//  * dynamic graph edge insert/probe/delete;
//  * DCG state transitions;
//  * BuildDCG over growing data graphs — Lemma 4.1 predicts
//    O(|E(g)| * |V(q)|), i.e. roughly linear per-edge time as |E| grows;
//  * one InsertEdgeAndEval step on a warm LSBench-like engine.

#include <benchmark/benchmark.h>

#include "common/experiment.h"
#include "turboflux/common/rng.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/workload/query_gen.h"

namespace turboflux {
namespace bench {
namespace {

void BM_GraphAddRemoveEdge(benchmark::State& state) {
  Graph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(1);
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(1000));
    VertexId b = static_cast<VertexId>(rng.NextBounded(1000));
    if (g.AddEdge(a, 0, b)) {
      benchmark::DoNotOptimize(g.EdgeCount());
      g.RemoveEdge(a, 0, b);
    }
  }
}
BENCHMARK(BM_GraphAddRemoveEdge);

void BM_GraphHasEdge(benchmark::State& state) {
  Graph g;
  for (int i = 0; i < 1000; ++i) g.AddVertex(LabelSet{0});
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
              static_cast<VertexId>(rng.NextBounded(1000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g.HasEdge(static_cast<VertexId>(rng.NextBounded(1000)), 0,
                  static_cast<VertexId>(rng.NextBounded(1000))));
  }
}
BENCHMARK(BM_GraphHasEdge);

// One DCG edge lifecycle: N->I->E->I->N plus the bitmap updates.
void BM_DcgTransitionCycle(benchmark::State& state) {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  q.AddEdge(u0, 0, u1);
  QueryStats stats;
  stats.edge_matches.assign(1, 1);
  stats.vertex_matches.assign(2, 1);
  QueryTree tree = QueryTree::Build(q, u0, stats);
  Dcg dcg;
  dcg.Reset(16, tree);
  for (auto _ : state) {
    dcg.SetState(0, 1, 1, DcgState::kImplicit);
    dcg.SetState(0, 1, 1, DcgState::kExplicit);
    dcg.SetState(0, 1, 1, DcgState::kImplicit);
    dcg.SetState(0, 1, 1, DcgState::kNull);
    benchmark::DoNotOptimize(dcg.EdgeCount());
  }
}
BENCHMARK(BM_DcgTransitionCycle);

// Lemma 4.1: full-DCG construction over a data graph of |E| edges; the
// reported items_per_second should stay roughly flat as |E| grows.
void BM_BuildDcgScaling(benchmark::State& state) {
  double scale = static_cast<double>(state.range(0)) / 100.0;
  workload::Dataset ds = MakeLsBenchDataset(scale, 0.10, 0.0, 11);
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = 6;
  qc.count = 1;
  qc.seed = 5;
  std::vector<QueryGraph> queries = workload::GenerateQueries(ds, qc);
  if (queries.empty()) {
    state.SkipWithError("no query generated");
    return;
  }
  for (auto _ : state) {
    TurboFluxEngine engine;
    CountingSink sink;
    engine.Init(queries[0], ds.initial, sink, Deadline::Infinite());
    benchmark::DoNotOptimize(engine.dcg().EdgeCount());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.initial.EdgeCount()));
  state.counters["edges"] = static_cast<double>(ds.initial.EdgeCount());
}
BENCHMARK(BM_BuildDcgScaling)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// Steady-state insertion cost on a warm engine.
void BM_InsertEdgeAndEval(benchmark::State& state) {
  workload::Dataset ds = MakeLsBenchDataset(0.5, 0.10, 0.0, 13);
  workload::QueryGenConfig qc;
  qc.shape = workload::QueryShape::kTree;
  qc.num_edges = 6;
  qc.count = 1;
  qc.seed = 17;
  std::vector<QueryGraph> queries = workload::GenerateQueries(ds, qc);
  if (queries.empty() || ds.stream.empty()) {
    state.SkipWithError("no query/stream generated");
    return;
  }
  // The benchmark loop may need more iterations than the stream has
  // ops, so cycle: apply every insertion, then delete them all in
  // reverse, and repeat — every iteration is a real state change.
  UpdateStream ops;
  for (const UpdateOp& op : ds.stream) {
    if (op.IsInsert()) ops.push_back(op);
  }
  size_t inserts = ops.size();
  for (size_t i = inserts; i > 0; --i) {
    const UpdateOp& op = ops[i - 1];
    ops.push_back(UpdateOp::Delete(op.from, op.label, op.to));
  }
  TurboFluxEngine engine;
  CountingSink sink;
  engine.Init(queries[0], ds.initial, sink, Deadline::Infinite());
  size_t i = 0;
  for (auto _ : state) {
    engine.ApplyUpdate(ops[i], sink, Deadline::Infinite());
    i = (i + 1) % ops.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertEdgeAndEval);

}  // namespace
}  // namespace bench
}  // namespace turboflux

BENCHMARK_MAIN();
