// Multi-query serving scalability (DESIGN.md §3.10): per-update cost of
// serving N standing queries over one LSBench stream, naive fan-out (one
// independent TurboFluxEngine — and thus one private graph copy — per
// query, every query evaluated on every update) vs the multi::QuerySet
// serving layer (one shared graph, per-update routing, signature
// sharing).
//
//   multi_query_scaling [--counts=1,10,100,1000] [--ops=N] [--scale=F]
//                       [--num_edges=K] [--overlap=F] [--dup=F] [--skew=F]
//                       [--churn_every=K] [--out=BENCH_6.json]
//                       [--threads=N] [--batch=K] [--stats_json=F]
//
// For every query count the bench checks per-query match totals are
// IDENTICAL between the two serving layers (the differential suite pins
// the full match streams; this is the cheap end-to-end guard), then
// reports per-op seconds and the consulted-evals counters — the naive
// layer consults every query on every op, the QuerySet only the routed
// ones, which is where the sublinear scaling comes from.
//
// The largest count additionally runs a registration-churn scenario:
// half the queries start registered and the rest rotate in (one
// Register + one Deregister every --churn_every ops) while the stream
// runs, timing online registration against a live graph.
//
// --out writes the machine-readable artifact (canonical committed copy:
// BENCH_6.json at the repo root).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/experiment.h"
#include "common/flags.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/multi/query_set.h"

namespace turboflux {
namespace bench {
namespace {

struct PerQueryCounts {
  std::vector<std::pair<uint64_t, uint64_t>> counts;  // (positive, negative)

  void Note(uint32_t id, bool positive) {
    if (id >= counts.size()) counts.resize(id + 1, {0, 0});
    if (positive) {
      ++counts[id].first;
    } else {
      ++counts[id].second;
    }
  }
};

/// Adapter routing one engine's untagged matches to a shared per-query
/// tally — the glue that lets N independent engines stand in for the
/// naive one-engine-per-query baseline.
class TaggedSink : public MatchSink {
 public:
  TaggedSink(uint32_t id, PerQueryCounts* counts)
      : id_(id), counts_(counts) {}
  void OnMatch(bool positive, const Mapping&) override {
    counts_->Note(id_, positive);
  }

 private:
  uint32_t id_;
  PerQueryCounts* counts_;
};

class SetSink : public multi::QuerySet::Sink {
 public:
  void OnMatch(multi::QueryId query, bool positive, const Mapping&) override {
    counts.Note(query, positive);
  }
  PerQueryCounts counts;
};

struct PointResult {
  size_t queries = 0;
  size_t runtimes = 0;
  size_t routing_keys = 0;
  size_t ops = 0;
  double naive_init_seconds = 0;
  double naive_stream_seconds = 0;
  uint64_t naive_consulted = 0;
  double set_register_seconds = 0;
  double set_stream_seconds = 0;
  uint64_t set_consulted = 0;
  bool totals_equal = false;
  bool ok = false;
};

PointResult RunPoint(const workload::Dataset& dataset,
                     const std::vector<QueryGraph>& queries,
                     const ExperimentOptions& options) {
  PointResult r;
  r.queries = queries.size();
  r.ops = dataset.stream.size();
  Deadline deadline = Deadline::Infinite();

  // Naive fan-out baseline: one independent engine (private graph copy)
  // per query; every engine evaluates every update.
  PerQueryCounts naive_counts;
  {
    std::vector<std::unique_ptr<TurboFluxEngine>> engines;
    std::vector<TaggedSink> sinks;
    engines.reserve(queries.size());
    sinks.reserve(queries.size());
    for (uint32_t i = 0; i < queries.size(); ++i) {
      engines.push_back(std::make_unique<TurboFluxEngine>());
      sinks.emplace_back(i, &naive_counts);
    }
    Stopwatch init;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!engines[i]->Init(queries[i], dataset.initial, sinks[i], deadline)) {
        return r;
      }
    }
    r.naive_init_seconds = init.ElapsedSeconds();
    Stopwatch stream;
    for (const UpdateOp& op : dataset.stream) {
      for (size_t i = 0; i < engines.size(); ++i) {
        if (!engines[i]->ApplyUpdate(op, sinks[i], deadline)) return r;
      }
    }
    r.naive_stream_seconds = stream.ElapsedSeconds();
    // The naive layer evaluates every registered query on every op.
    r.naive_consulted =
        static_cast<uint64_t>(queries.size()) * dataset.stream.size();
  }

  // QuerySet serving layer.
  SetSink set_sink;
  {
    multi::QuerySetOptions set_options;
    set_options.threads =
        options.threads > 1 ? static_cast<size_t>(options.threads) : 1;
    multi::QuerySet set(set_options);
    set.Bind(dataset.initial);
    Stopwatch reg;
    for (const QueryGraph& q : queries) {
      multi::QueryId id = 0;
      if (!set.Register(q, set_sink, deadline, &id).ok()) return r;
    }
    r.set_register_seconds = reg.ElapsedSeconds();
    const size_t window = options.batch > 1
                              ? static_cast<size_t>(options.batch)
                              : 1;
    Stopwatch stream;
    for (size_t i = 0; i < dataset.stream.size(); i += window) {
      const size_t n = std::min(window, dataset.stream.size() - i);
      Status st = set.ApplyBatch(
          std::span<const UpdateOp>(dataset.stream.data() + i, n), set_sink,
          deadline);
      if (!st.ok()) return r;
    }
    r.set_stream_seconds = stream.ElapsedSeconds();
    r.set_consulted = set.ConsultedEvals();
    r.runtimes = set.RuntimeCount();
    obs::StatsSnapshot snap;
    set.AppendStats(snap);
    r.routing_keys = static_cast<size_t>(snap.Value("queryset.routing_keys"));
    // --stats_json: the largest point overwrites, so the artifact carries
    // the full per-query cost attribution of the biggest fleet.
    if (!options.stats_json.empty()) {
      std::ofstream f(options.stats_json, std::ios::trunc);
      f << snap.ToJson() << "\n";
    }
  }

  // End-to-end guard: per-query totals must agree exactly.
  size_t n = std::max(naive_counts.counts.size(),
                      set_sink.counts.counts.size());
  naive_counts.counts.resize(n, {0, 0});
  set_sink.counts.counts.resize(n, {0, 0});
  r.totals_equal = naive_counts.counts == set_sink.counts.counts;
  r.ok = true;
  return r;
}

struct ChurnResult {
  size_t ops = 0;
  size_t registrations = 0;
  size_t deregistrations = 0;
  double stream_seconds = 0;
  double register_seconds = 0;
  bool ok = false;
};

/// Half the queries start registered; the rest rotate in one at a time
/// (register the next pending, deregister the oldest live) every
/// `churn_every` ops, against the live mid-stream graph.
ChurnResult RunChurn(const workload::Dataset& dataset,
                     const std::vector<QueryGraph>& queries,
                     size_t churn_every, const ExperimentOptions& options) {
  ChurnResult r;
  r.ops = dataset.stream.size();
  if (queries.empty() || churn_every == 0) return r;
  Deadline deadline = Deadline::Infinite();

  multi::QuerySetOptions set_options;
  set_options.threads =
      options.threads > 1 ? static_cast<size_t>(options.threads) : 1;
  multi::QuerySet set(set_options);
  set.Bind(dataset.initial);
  SetSink sink;

  std::vector<multi::QueryId> live;
  size_t next = 0;
  const size_t initial = std::max<size_t>(1, queries.size() / 2);
  for (; next < initial; ++next) {
    multi::QueryId id = 0;
    if (!set.Register(queries[next], sink, deadline, &id).ok()) return r;
    live.push_back(id);
  }

  // Mid-stream churn time is timed separately so the reported stream
  // seconds cover only update application.
  double churn_seconds = 0;
  Stopwatch stream;
  for (size_t i = 0; i < dataset.stream.size(); ++i) {
    Status st = set.ApplyUpdate(dataset.stream[i], sink, deadline);
    if (st.code() == StatusCode::kDeadlineExceeded) return r;
    if ((i + 1) % churn_every == 0) {
      Stopwatch w;
      multi::QueryId id = 0;
      if (!set.Register(queries[next % queries.size()], sink, deadline, &id)
               .ok()) {
        return r;
      }
      ++next;
      live.push_back(id);
      if (live.size() > 1) {
        if (!set.Deregister(live.front()).ok()) return r;
        live.erase(live.begin());
        ++r.deregistrations;
      }
      churn_seconds += w.ElapsedSeconds();
      ++r.registrations;
    }
  }
  r.stream_seconds = stream.ElapsedSeconds() - churn_seconds;
  r.register_seconds = churn_seconds;
  r.ok = true;
  return r;
}

double PerOp(double seconds, size_t ops) {
  return ops == 0 ? 0.0 : seconds / static_cast<double>(ops);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              {"counts", "ops", "scale", "num_edges", "overlap", "dup",
               "skew", "keep_full", "churn_every", "out", "seed"});
  std::vector<int64_t> counts =
      flags.GetIntList("counts", {1, 10, 100, 1000});
  const size_t ops = static_cast<size_t>(flags.GetInt("ops", 400));
  const double scale = flags.GetDouble("scale", 0.5);
  const size_t num_edges = static_cast<size_t>(flags.GetInt("num_edges", 4));
  const double overlap = flags.GetDouble("overlap", 0.5);
  const double dup = flags.GetDouble("dup", 0.2);
  const double skew = flags.GetDouble("skew", 0.0);
  const size_t churn_every =
      static_cast<size_t>(flags.GetInt("churn_every", 25));
  const std::string out_path = flags.GetString("out", "");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  ExperimentOptions options;
  ApplyStreamingFlags(flags, options);

  workload::Dataset dataset =
      MakeLsBenchDataset(scale, /*stream_fraction=*/0.3,
                         /*deletion_rate=*/0.15, seed);
  TruncateStream(dataset, ops);
  std::printf("dataset: |V|=%zu stream=%zu ops\n",
              dataset.initial.VertexCount(), dataset.stream.size());

  const size_t max_count = static_cast<size_t>(
      *std::max_element(counts.begin(), counts.end()));
  workload::QuerySetGenConfig gen;
  gen.base.shape = workload::QueryShape::kTree;
  gen.base.num_edges = num_edges;
  gen.base.count = max_count;
  gen.base.seed = seed + 17;
  // Standing query fleets skew selective (alert patterns, not analytics);
  // mostly-full label sets keep per-query match volume realistic.
  gen.base.keep_full_labels = flags.GetDouble("keep_full", 0.85);
  gen.prefix_overlap = overlap;
  gen.duplicate_fraction = dup;
  gen.label_skew = skew;
  std::vector<QueryGraph> all_queries =
      workload::GenerateQuerySet(dataset, gen);
  std::printf("generated %zu/%zu queries (overlap=%.2f dup=%.2f "
              "skew=%.2f)\n\n",
              all_queries.size(), max_count, overlap, dup, skew);
  if (all_queries.empty()) {
    std::fprintf(stderr, "query generation produced nothing; dataset too "
                         "small for the recipe\n");
    return 1;
  }

  std::vector<PointResult> points;
  for (int64_t count : counts) {
    size_t n = std::min(static_cast<size_t>(count), all_queries.size());
    std::vector<QueryGraph> queries(all_queries.begin(),
                                    all_queries.begin() + n);
    PointResult p = RunPoint(dataset, queries, options);
    points.push_back(p);
    if (!p.ok) {
      std::printf("N=%zu FAILED\n", n);
      continue;
    }
    std::printf(
        "N=%-5zu runtimes=%-5zu naive: %8.2f us/op (consulted %8llu)  "
        "queryset: %8.2f us/op (consulted %8llu)  "
        "consult-ratio %.2fx  totals %s\n",
        p.queries, p.runtimes, PerOp(p.naive_stream_seconds, p.ops) * 1e6,
        static_cast<unsigned long long>(p.naive_consulted),
        PerOp(p.set_stream_seconds, p.ops) * 1e6,
        static_cast<unsigned long long>(p.set_consulted),
        p.set_consulted > 0 ? static_cast<double>(p.naive_consulted) /
                                  static_cast<double>(p.set_consulted)
                            : 0.0,
        p.totals_equal ? "EQUAL" : "MISMATCH");
  }

  ChurnResult churn = RunChurn(dataset, all_queries, churn_every, options);
  if (churn.ok) {
    std::printf(
        "\nchurn: %zu ops, %zu mid-stream registrations "
        "(%zu deregistrations), stream %.3fs, avg online register %.3f ms\n",
        churn.ops, churn.registrations, churn.deregistrations,
        churn.stream_seconds,
        churn.registrations > 0
            ? churn.register_seconds * 1e3 /
                  static_cast<double>(churn.registrations)
            : 0.0);
  }

  bool all_equal = true;
  bool all_ok = true;
  for (const PointResult& p : points) {
    all_equal = all_equal && p.totals_equal;
    all_ok = all_ok && p.ok;
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::trunc);
    f << "{\n  \"bench\": \"multi_query_scaling\",\n";
    f << "  \"dataset\": {\"workload\": \"lsbench\", \"scale\": " << scale
      << ", \"ops\": " << dataset.stream.size() << "},\n";
    f << "  \"generator\": {\"num_edges\": " << num_edges
      << ", \"prefix_overlap\": " << overlap
      << ", \"duplicate_fraction\": " << dup << ", \"label_skew\": " << skew
      << ", \"generated\": " << all_queries.size() << "},\n";
    f << "  \"threads\": " << options.threads << ",\n";
    f << "  \"points\": [";
    for (size_t i = 0; i < points.size(); ++i) {
      const PointResult& p = points[i];
      f << (i == 0 ? "\n" : ",\n");
      f << "    {\"queries\": " << p.queries
        << ", \"runtimes\": " << p.runtimes
        << ", \"routing_keys\": " << p.routing_keys << ",\n"
        << "     \"naive_per_op_seconds\": "
        << PerOp(p.naive_stream_seconds, p.ops)
        << ", \"naive_consulted_evals\": " << p.naive_consulted << ",\n"
        << "     \"queryset_per_op_seconds\": "
        << PerOp(p.set_stream_seconds, p.ops)
        << ", \"queryset_consulted_evals\": " << p.set_consulted << ",\n"
        << "     \"naive_init_seconds\": " << p.naive_init_seconds
        << ", \"queryset_register_seconds\": " << p.set_register_seconds
        << ",\n     \"match_totals_equal\": "
        << (p.totals_equal ? "true" : "false")
        << ", \"ok\": " << (p.ok ? "true" : "false") << "}";
    }
    f << "\n  ],\n";
    f << "  \"churn\": {\"ok\": " << (churn.ok ? "true" : "false")
      << ", \"ops\": " << churn.ops
      << ", \"registrations\": " << churn.registrations
      << ", \"deregistrations\": " << churn.deregistrations
      << ", \"stream_seconds\": " << churn.stream_seconds
      << ", \"register_seconds\": " << churn.register_seconds << "}\n";
    f << "}\n";
    if (!f.flush()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  return all_ok && all_equal ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace turboflux

int main(int argc, char** argv) {
  return turboflux::bench::Main(argc, argv);
}
