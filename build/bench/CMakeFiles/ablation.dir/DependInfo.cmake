
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation.cc" "bench/CMakeFiles/ablation.dir/ablation.cc.o" "gcc" "bench/CMakeFiles/ablation.dir/ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
