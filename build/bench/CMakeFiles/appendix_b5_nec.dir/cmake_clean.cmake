file(REMOVE_RECURSE
  "CMakeFiles/appendix_b5_nec.dir/appendix_b5_nec.cc.o"
  "CMakeFiles/appendix_b5_nec.dir/appendix_b5_nec.cc.o.d"
  "appendix_b5_nec"
  "appendix_b5_nec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_b5_nec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
