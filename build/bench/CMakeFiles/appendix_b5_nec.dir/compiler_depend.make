# Empty compiler generated dependencies file for appendix_b5_nec.
# This may be replaced when dependencies are built.
