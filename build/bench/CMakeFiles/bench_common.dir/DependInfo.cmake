
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common/experiment.cc" "bench/CMakeFiles/bench_common.dir/common/experiment.cc.o" "gcc" "bench/CMakeFiles/bench_common.dir/common/experiment.cc.o.d"
  "/root/repo/bench/common/flags.cc" "bench/CMakeFiles/bench_common.dir/common/flags.cc.o" "gcc" "bench/CMakeFiles/bench_common.dir/common/flags.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turboflux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
