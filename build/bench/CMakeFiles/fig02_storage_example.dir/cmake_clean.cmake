file(REMOVE_RECURSE
  "CMakeFiles/fig02_storage_example.dir/fig02_storage_example.cc.o"
  "CMakeFiles/fig02_storage_example.dir/fig02_storage_example.cc.o.d"
  "fig02_storage_example"
  "fig02_storage_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_storage_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
