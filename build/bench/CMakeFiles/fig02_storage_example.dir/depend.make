# Empty dependencies file for fig02_storage_example.
# This may be replaced when dependencies are built.
