file(REMOVE_RECURSE
  "CMakeFiles/fig06_lsbench_tree.dir/fig06_lsbench_tree.cc.o"
  "CMakeFiles/fig06_lsbench_tree.dir/fig06_lsbench_tree.cc.o.d"
  "fig06_lsbench_tree"
  "fig06_lsbench_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_lsbench_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
