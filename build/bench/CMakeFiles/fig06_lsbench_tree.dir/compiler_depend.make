# Empty compiler generated dependencies file for fig06_lsbench_tree.
# This may be replaced when dependencies are built.
