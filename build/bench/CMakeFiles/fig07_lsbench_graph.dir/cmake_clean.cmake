file(REMOVE_RECURSE
  "CMakeFiles/fig07_lsbench_graph.dir/fig07_lsbench_graph.cc.o"
  "CMakeFiles/fig07_lsbench_graph.dir/fig07_lsbench_graph.cc.o.d"
  "fig07_lsbench_graph"
  "fig07_lsbench_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_lsbench_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
