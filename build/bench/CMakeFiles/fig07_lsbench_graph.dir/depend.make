# Empty dependencies file for fig07_lsbench_graph.
# This may be replaced when dependencies are built.
