# Empty compiler generated dependencies file for fig08_insertion_rate.
# This may be replaced when dependencies are built.
