file(REMOVE_RECURSE
  "CMakeFiles/fig09_dataset_size.dir/fig09_dataset_size.cc.o"
  "CMakeFiles/fig09_dataset_size.dir/fig09_dataset_size.cc.o.d"
  "fig09_dataset_size"
  "fig09_dataset_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dataset_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
