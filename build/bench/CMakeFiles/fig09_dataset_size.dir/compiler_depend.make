# Empty compiler generated dependencies file for fig09_dataset_size.
# This may be replaced when dependencies are built.
