file(REMOVE_RECURSE
  "CMakeFiles/fig10_isomorphism.dir/fig10_isomorphism.cc.o"
  "CMakeFiles/fig10_isomorphism.dir/fig10_isomorphism.cc.o.d"
  "fig10_isomorphism"
  "fig10_isomorphism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_isomorphism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
