# Empty dependencies file for fig10_isomorphism.
# This may be replaced when dependencies are built.
