file(REMOVE_RECURSE
  "CMakeFiles/fig11_deletion_rate.dir/fig11_deletion_rate.cc.o"
  "CMakeFiles/fig11_deletion_rate.dir/fig11_deletion_rate.cc.o.d"
  "fig11_deletion_rate"
  "fig11_deletion_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_deletion_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
