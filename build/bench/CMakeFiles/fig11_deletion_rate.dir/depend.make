# Empty dependencies file for fig11_deletion_rate.
# This may be replaced when dependencies are built.
