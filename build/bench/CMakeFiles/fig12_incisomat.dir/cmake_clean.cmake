file(REMOVE_RECURSE
  "CMakeFiles/fig12_incisomat.dir/fig12_incisomat.cc.o"
  "CMakeFiles/fig12_incisomat.dir/fig12_incisomat.cc.o.d"
  "fig12_incisomat"
  "fig12_incisomat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_incisomat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
