# Empty dependencies file for fig12_incisomat.
# This may be replaced when dependencies are built.
