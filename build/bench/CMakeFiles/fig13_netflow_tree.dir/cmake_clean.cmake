file(REMOVE_RECURSE
  "CMakeFiles/fig13_netflow_tree.dir/fig13_netflow_tree.cc.o"
  "CMakeFiles/fig13_netflow_tree.dir/fig13_netflow_tree.cc.o.d"
  "fig13_netflow_tree"
  "fig13_netflow_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_netflow_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
