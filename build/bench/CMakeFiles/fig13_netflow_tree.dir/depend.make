# Empty dependencies file for fig13_netflow_tree.
# This may be replaced when dependencies are built.
