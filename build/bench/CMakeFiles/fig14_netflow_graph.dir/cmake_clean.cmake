file(REMOVE_RECURSE
  "CMakeFiles/fig14_netflow_graph.dir/fig14_netflow_graph.cc.o"
  "CMakeFiles/fig14_netflow_graph.dir/fig14_netflow_graph.cc.o.d"
  "fig14_netflow_graph"
  "fig14_netflow_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_netflow_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
