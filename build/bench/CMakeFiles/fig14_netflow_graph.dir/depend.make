# Empty dependencies file for fig14_netflow_graph.
# This may be replaced when dependencies are built.
