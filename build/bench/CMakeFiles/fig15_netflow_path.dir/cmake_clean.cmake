file(REMOVE_RECURSE
  "CMakeFiles/fig15_netflow_path.dir/fig15_netflow_path.cc.o"
  "CMakeFiles/fig15_netflow_path.dir/fig15_netflow_path.cc.o.d"
  "fig15_netflow_path"
  "fig15_netflow_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_netflow_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
