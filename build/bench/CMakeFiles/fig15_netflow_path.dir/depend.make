# Empty dependencies file for fig15_netflow_path.
# This may be replaced when dependencies are built.
