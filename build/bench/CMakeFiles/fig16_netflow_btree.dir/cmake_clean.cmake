file(REMOVE_RECURSE
  "CMakeFiles/fig16_netflow_btree.dir/fig16_netflow_btree.cc.o"
  "CMakeFiles/fig16_netflow_btree.dir/fig16_netflow_btree.cc.o.d"
  "fig16_netflow_btree"
  "fig16_netflow_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_netflow_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
