# Empty dependencies file for fig16_netflow_btree.
# This may be replaced when dependencies are built.
