file(REMOVE_RECURSE
  "CMakeFiles/fig17_selectivity.dir/fig17_selectivity.cc.o"
  "CMakeFiles/fig17_selectivity.dir/fig17_selectivity.cc.o.d"
  "fig17_selectivity"
  "fig17_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
