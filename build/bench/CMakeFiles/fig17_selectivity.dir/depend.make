# Empty dependencies file for fig17_selectivity.
# This may be replaced when dependencies are built.
