file(REMOVE_RECURSE
  "CMakeFiles/cyber_intrusion.dir/cyber_intrusion.cpp.o"
  "CMakeFiles/cyber_intrusion.dir/cyber_intrusion.cpp.o.d"
  "cyber_intrusion"
  "cyber_intrusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyber_intrusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
