# Empty dependencies file for cyber_intrusion.
# This may be replaced when dependencies are built.
