
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turboflux/baseline/graphflow.cc" "src/CMakeFiles/turboflux_baseline.dir/turboflux/baseline/graphflow.cc.o" "gcc" "src/CMakeFiles/turboflux_baseline.dir/turboflux/baseline/graphflow.cc.o.d"
  "/root/repo/src/turboflux/baseline/inc_iso_mat.cc" "src/CMakeFiles/turboflux_baseline.dir/turboflux/baseline/inc_iso_mat.cc.o" "gcc" "src/CMakeFiles/turboflux_baseline.dir/turboflux/baseline/inc_iso_mat.cc.o.d"
  "/root/repo/src/turboflux/baseline/sj_tree.cc" "src/CMakeFiles/turboflux_baseline.dir/turboflux/baseline/sj_tree.cc.o" "gcc" "src/CMakeFiles/turboflux_baseline.dir/turboflux/baseline/sj_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turboflux_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
