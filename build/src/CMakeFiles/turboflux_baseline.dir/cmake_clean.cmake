file(REMOVE_RECURSE
  "CMakeFiles/turboflux_baseline.dir/turboflux/baseline/graphflow.cc.o"
  "CMakeFiles/turboflux_baseline.dir/turboflux/baseline/graphflow.cc.o.d"
  "CMakeFiles/turboflux_baseline.dir/turboflux/baseline/inc_iso_mat.cc.o"
  "CMakeFiles/turboflux_baseline.dir/turboflux/baseline/inc_iso_mat.cc.o.d"
  "CMakeFiles/turboflux_baseline.dir/turboflux/baseline/sj_tree.cc.o"
  "CMakeFiles/turboflux_baseline.dir/turboflux/baseline/sj_tree.cc.o.d"
  "libturboflux_baseline.a"
  "libturboflux_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
