file(REMOVE_RECURSE
  "libturboflux_baseline.a"
)
