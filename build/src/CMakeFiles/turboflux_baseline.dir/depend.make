# Empty dependencies file for turboflux_baseline.
# This may be replaced when dependencies are built.
