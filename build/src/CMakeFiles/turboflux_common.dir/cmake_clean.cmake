file(REMOVE_RECURSE
  "CMakeFiles/turboflux_common.dir/turboflux/common/label_set.cc.o"
  "CMakeFiles/turboflux_common.dir/turboflux/common/label_set.cc.o.d"
  "CMakeFiles/turboflux_common.dir/turboflux/common/match.cc.o"
  "CMakeFiles/turboflux_common.dir/turboflux/common/match.cc.o.d"
  "CMakeFiles/turboflux_common.dir/turboflux/common/rng.cc.o"
  "CMakeFiles/turboflux_common.dir/turboflux/common/rng.cc.o.d"
  "libturboflux_common.a"
  "libturboflux_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
