file(REMOVE_RECURSE
  "libturboflux_common.a"
)
