# Empty compiler generated dependencies file for turboflux_common.
# This may be replaced when dependencies are built.
