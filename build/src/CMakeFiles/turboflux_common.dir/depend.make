# Empty dependencies file for turboflux_common.
# This may be replaced when dependencies are built.
