
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turboflux/core/dcg.cc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/dcg.cc.o" "gcc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/dcg.cc.o.d"
  "/root/repo/src/turboflux/core/matching_order.cc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/matching_order.cc.o" "gcc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/matching_order.cc.o.d"
  "/root/repo/src/turboflux/core/multi_query.cc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/multi_query.cc.o" "gcc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/multi_query.cc.o.d"
  "/root/repo/src/turboflux/core/turboflux.cc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/turboflux.cc.o" "gcc" "src/CMakeFiles/turboflux_core.dir/turboflux/core/turboflux.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turboflux_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
