file(REMOVE_RECURSE
  "CMakeFiles/turboflux_core.dir/turboflux/core/dcg.cc.o"
  "CMakeFiles/turboflux_core.dir/turboflux/core/dcg.cc.o.d"
  "CMakeFiles/turboflux_core.dir/turboflux/core/matching_order.cc.o"
  "CMakeFiles/turboflux_core.dir/turboflux/core/matching_order.cc.o.d"
  "CMakeFiles/turboflux_core.dir/turboflux/core/multi_query.cc.o"
  "CMakeFiles/turboflux_core.dir/turboflux/core/multi_query.cc.o.d"
  "CMakeFiles/turboflux_core.dir/turboflux/core/turboflux.cc.o"
  "CMakeFiles/turboflux_core.dir/turboflux/core/turboflux.cc.o.d"
  "libturboflux_core.a"
  "libturboflux_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
