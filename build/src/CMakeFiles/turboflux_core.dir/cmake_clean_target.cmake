file(REMOVE_RECURSE
  "libturboflux_core.a"
)
