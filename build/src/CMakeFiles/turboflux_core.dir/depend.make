# Empty dependencies file for turboflux_core.
# This may be replaced when dependencies are built.
