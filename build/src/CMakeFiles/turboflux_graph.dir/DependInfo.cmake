
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turboflux/graph/graph.cc" "src/CMakeFiles/turboflux_graph.dir/turboflux/graph/graph.cc.o" "gcc" "src/CMakeFiles/turboflux_graph.dir/turboflux/graph/graph.cc.o.d"
  "/root/repo/src/turboflux/graph/graph_io.cc" "src/CMakeFiles/turboflux_graph.dir/turboflux/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/turboflux_graph.dir/turboflux/graph/graph_io.cc.o.d"
  "/root/repo/src/turboflux/graph/update_stream.cc" "src/CMakeFiles/turboflux_graph.dir/turboflux/graph/update_stream.cc.o" "gcc" "src/CMakeFiles/turboflux_graph.dir/turboflux/graph/update_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
