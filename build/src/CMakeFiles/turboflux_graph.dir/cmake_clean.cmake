file(REMOVE_RECURSE
  "CMakeFiles/turboflux_graph.dir/turboflux/graph/graph.cc.o"
  "CMakeFiles/turboflux_graph.dir/turboflux/graph/graph.cc.o.d"
  "CMakeFiles/turboflux_graph.dir/turboflux/graph/graph_io.cc.o"
  "CMakeFiles/turboflux_graph.dir/turboflux/graph/graph_io.cc.o.d"
  "CMakeFiles/turboflux_graph.dir/turboflux/graph/update_stream.cc.o"
  "CMakeFiles/turboflux_graph.dir/turboflux/graph/update_stream.cc.o.d"
  "libturboflux_graph.a"
  "libturboflux_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
