file(REMOVE_RECURSE
  "libturboflux_graph.a"
)
