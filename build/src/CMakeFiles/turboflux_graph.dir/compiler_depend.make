# Empty compiler generated dependencies file for turboflux_graph.
# This may be replaced when dependencies are built.
