
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turboflux/harness/metrics.cc" "src/CMakeFiles/turboflux_harness.dir/turboflux/harness/metrics.cc.o" "gcc" "src/CMakeFiles/turboflux_harness.dir/turboflux/harness/metrics.cc.o.d"
  "/root/repo/src/turboflux/harness/runner.cc" "src/CMakeFiles/turboflux_harness.dir/turboflux/harness/runner.cc.o" "gcc" "src/CMakeFiles/turboflux_harness.dir/turboflux/harness/runner.cc.o.d"
  "/root/repo/src/turboflux/harness/table.cc" "src/CMakeFiles/turboflux_harness.dir/turboflux/harness/table.cc.o" "gcc" "src/CMakeFiles/turboflux_harness.dir/turboflux/harness/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turboflux_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
