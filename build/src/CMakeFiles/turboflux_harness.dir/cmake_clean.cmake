file(REMOVE_RECURSE
  "CMakeFiles/turboflux_harness.dir/turboflux/harness/metrics.cc.o"
  "CMakeFiles/turboflux_harness.dir/turboflux/harness/metrics.cc.o.d"
  "CMakeFiles/turboflux_harness.dir/turboflux/harness/runner.cc.o"
  "CMakeFiles/turboflux_harness.dir/turboflux/harness/runner.cc.o.d"
  "CMakeFiles/turboflux_harness.dir/turboflux/harness/table.cc.o"
  "CMakeFiles/turboflux_harness.dir/turboflux/harness/table.cc.o.d"
  "libturboflux_harness.a"
  "libturboflux_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
