file(REMOVE_RECURSE
  "libturboflux_harness.a"
)
