# Empty dependencies file for turboflux_harness.
# This may be replaced when dependencies are built.
