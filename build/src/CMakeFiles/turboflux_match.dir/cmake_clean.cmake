file(REMOVE_RECURSE
  "CMakeFiles/turboflux_match.dir/turboflux/match/static_matcher.cc.o"
  "CMakeFiles/turboflux_match.dir/turboflux/match/static_matcher.cc.o.d"
  "CMakeFiles/turboflux_match.dir/turboflux/match/wco_matcher.cc.o"
  "CMakeFiles/turboflux_match.dir/turboflux/match/wco_matcher.cc.o.d"
  "libturboflux_match.a"
  "libturboflux_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
