file(REMOVE_RECURSE
  "libturboflux_match.a"
)
