# Empty compiler generated dependencies file for turboflux_match.
# This may be replaced when dependencies are built.
