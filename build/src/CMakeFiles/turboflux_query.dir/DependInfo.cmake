
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turboflux/query/nec.cc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/nec.cc.o" "gcc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/nec.cc.o.d"
  "/root/repo/src/turboflux/query/query_graph.cc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_graph.cc.o" "gcc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_graph.cc.o.d"
  "/root/repo/src/turboflux/query/query_io.cc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_io.cc.o" "gcc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_io.cc.o.d"
  "/root/repo/src/turboflux/query/query_stats.cc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_stats.cc.o" "gcc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_stats.cc.o.d"
  "/root/repo/src/turboflux/query/query_tree.cc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_tree.cc.o" "gcc" "src/CMakeFiles/turboflux_query.dir/turboflux/query/query_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
