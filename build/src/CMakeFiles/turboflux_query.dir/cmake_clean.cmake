file(REMOVE_RECURSE
  "CMakeFiles/turboflux_query.dir/turboflux/query/nec.cc.o"
  "CMakeFiles/turboflux_query.dir/turboflux/query/nec.cc.o.d"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_graph.cc.o"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_graph.cc.o.d"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_io.cc.o"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_io.cc.o.d"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_stats.cc.o"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_stats.cc.o.d"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_tree.cc.o"
  "CMakeFiles/turboflux_query.dir/turboflux/query/query_tree.cc.o.d"
  "libturboflux_query.a"
  "libturboflux_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
