file(REMOVE_RECURSE
  "libturboflux_query.a"
)
