# Empty compiler generated dependencies file for turboflux_query.
# This may be replaced when dependencies are built.
