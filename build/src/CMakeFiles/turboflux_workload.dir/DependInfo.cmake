
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turboflux/workload/lsbench.cc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/lsbench.cc.o" "gcc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/lsbench.cc.o.d"
  "/root/repo/src/turboflux/workload/netflow.cc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/netflow.cc.o" "gcc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/netflow.cc.o.d"
  "/root/repo/src/turboflux/workload/query_gen.cc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/query_gen.cc.o.d"
  "/root/repo/src/turboflux/workload/schema.cc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/schema.cc.o" "gcc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/schema.cc.o.d"
  "/root/repo/src/turboflux/workload/stream_builder.cc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/stream_builder.cc.o" "gcc" "src/CMakeFiles/turboflux_workload.dir/turboflux/workload/stream_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
