file(REMOVE_RECURSE
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/lsbench.cc.o"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/lsbench.cc.o.d"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/netflow.cc.o"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/netflow.cc.o.d"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/query_gen.cc.o"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/query_gen.cc.o.d"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/schema.cc.o"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/schema.cc.o.d"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/stream_builder.cc.o"
  "CMakeFiles/turboflux_workload.dir/turboflux/workload/stream_builder.cc.o.d"
  "libturboflux_workload.a"
  "libturboflux_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboflux_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
