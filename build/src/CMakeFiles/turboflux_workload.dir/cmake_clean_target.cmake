file(REMOVE_RECURSE
  "libturboflux_workload.a"
)
