# Empty dependencies file for turboflux_workload.
# This may be replaced when dependencies are built.
