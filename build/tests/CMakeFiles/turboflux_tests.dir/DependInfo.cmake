
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bench_flags.cc" "tests/CMakeFiles/turboflux_tests.dir/test_bench_flags.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_bench_flags.cc.o.d"
  "/root/repo/tests/test_dcg.cc" "tests/CMakeFiles/turboflux_tests.dir/test_dcg.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_dcg.cc.o.d"
  "/root/repo/tests/test_dcg_invariants.cc" "tests/CMakeFiles/turboflux_tests.dir/test_dcg_invariants.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_dcg_invariants.cc.o.d"
  "/root/repo/tests/test_deadline.cc" "tests/CMakeFiles/turboflux_tests.dir/test_deadline.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_deadline.cc.o.d"
  "/root/repo/tests/test_engine_misc.cc" "tests/CMakeFiles/turboflux_tests.dir/test_engine_misc.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_engine_misc.cc.o.d"
  "/root/repo/tests/test_experiment_shapes.cc" "tests/CMakeFiles/turboflux_tests.dir/test_experiment_shapes.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_experiment_shapes.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/turboflux_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_graph_io.cc" "tests/CMakeFiles/turboflux_tests.dir/test_graph_io.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_graph_io.cc.o.d"
  "/root/repo/tests/test_graphflow.cc" "tests/CMakeFiles/turboflux_tests.dir/test_graphflow.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_graphflow.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/turboflux_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_inc_iso_mat.cc" "tests/CMakeFiles/turboflux_tests.dir/test_inc_iso_mat.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_inc_iso_mat.cc.o.d"
  "/root/repo/tests/test_integration_workload.cc" "tests/CMakeFiles/turboflux_tests.dir/test_integration_workload.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_integration_workload.cc.o.d"
  "/root/repo/tests/test_label_set.cc" "tests/CMakeFiles/turboflux_tests.dir/test_label_set.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_label_set.cc.o.d"
  "/root/repo/tests/test_large_property.cc" "tests/CMakeFiles/turboflux_tests.dir/test_large_property.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_large_property.cc.o.d"
  "/root/repo/tests/test_match.cc" "tests/CMakeFiles/turboflux_tests.dir/test_match.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_match.cc.o.d"
  "/root/repo/tests/test_matching_order.cc" "tests/CMakeFiles/turboflux_tests.dir/test_matching_order.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_matching_order.cc.o.d"
  "/root/repo/tests/test_multi_query.cc" "tests/CMakeFiles/turboflux_tests.dir/test_multi_query.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_multi_query.cc.o.d"
  "/root/repo/tests/test_nec.cc" "tests/CMakeFiles/turboflux_tests.dir/test_nec.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_nec.cc.o.d"
  "/root/repo/tests/test_oracle_property.cc" "tests/CMakeFiles/turboflux_tests.dir/test_oracle_property.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_oracle_property.cc.o.d"
  "/root/repo/tests/test_paper_examples.cc" "tests/CMakeFiles/turboflux_tests.dir/test_paper_examples.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_paper_examples.cc.o.d"
  "/root/repo/tests/test_query_gen.cc" "tests/CMakeFiles/turboflux_tests.dir/test_query_gen.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_query_gen.cc.o.d"
  "/root/repo/tests/test_query_graph.cc" "tests/CMakeFiles/turboflux_tests.dir/test_query_graph.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_query_graph.cc.o.d"
  "/root/repo/tests/test_query_io.cc" "tests/CMakeFiles/turboflux_tests.dir/test_query_io.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_query_io.cc.o.d"
  "/root/repo/tests/test_query_stats.cc" "tests/CMakeFiles/turboflux_tests.dir/test_query_stats.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_query_stats.cc.o.d"
  "/root/repo/tests/test_query_tree.cc" "tests/CMakeFiles/turboflux_tests.dir/test_query_tree.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_query_tree.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/turboflux_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sj_tree.cc" "tests/CMakeFiles/turboflux_tests.dir/test_sj_tree.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_sj_tree.cc.o.d"
  "/root/repo/tests/test_static_matcher.cc" "tests/CMakeFiles/turboflux_tests.dir/test_static_matcher.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_static_matcher.cc.o.d"
  "/root/repo/tests/test_turboflux_basic.cc" "tests/CMakeFiles/turboflux_tests.dir/test_turboflux_basic.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_turboflux_basic.cc.o.d"
  "/root/repo/tests/test_turboflux_delete.cc" "tests/CMakeFiles/turboflux_tests.dir/test_turboflux_delete.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_turboflux_delete.cc.o.d"
  "/root/repo/tests/test_turboflux_nontree.cc" "tests/CMakeFiles/turboflux_tests.dir/test_turboflux_nontree.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_turboflux_nontree.cc.o.d"
  "/root/repo/tests/test_update_stream.cc" "tests/CMakeFiles/turboflux_tests.dir/test_update_stream.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_update_stream.cc.o.d"
  "/root/repo/tests/test_wco_matcher.cc" "tests/CMakeFiles/turboflux_tests.dir/test_wco_matcher.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_wco_matcher.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/turboflux_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/test_workload.cc.o.d"
  "/root/repo/tests/testutil.cc" "tests/CMakeFiles/turboflux_tests.dir/testutil.cc.o" "gcc" "tests/CMakeFiles/turboflux_tests.dir/testutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turboflux_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
