# Empty dependencies file for turboflux_tests.
# This may be replaced when dependencies are built.
