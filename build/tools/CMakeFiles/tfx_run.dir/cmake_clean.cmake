file(REMOVE_RECURSE
  "CMakeFiles/tfx_run.dir/tfx_run.cc.o"
  "CMakeFiles/tfx_run.dir/tfx_run.cc.o.d"
  "tfx_run"
  "tfx_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfx_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
