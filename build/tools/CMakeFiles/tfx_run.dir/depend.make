# Empty dependencies file for tfx_run.
# This may be replaced when dependencies are built.
