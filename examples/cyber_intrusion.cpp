// Cyber-security monitoring (the paper's network-traffic motivation,
// Section 1): detect a multi-stage intrusion in live Netflow-style
// traffic. The pattern is a classic lateral-movement chain — an external
// host scans a gateway, the gateway connects to an internal server, and
// the server exfiltrates back to the same external host — expressed as a
// cyclic query over the Netflow generator's unlabeled-vertex /
// edge-labeled traffic stream.
//
//   run: ./build/examples/cyber_intrusion

#include <cstdio>

#include "turboflux/core/turboflux.h"
#include "turboflux/workload/netflow.h"

using namespace turboflux;
using turboflux::workload::GenerateNetflow;
using turboflux::workload::NetflowConfig;
using turboflux::workload::TemporalGraph;

namespace {

// Traffic classes = edge labels (the generator emits 8; we use three).
constexpr EdgeLabel kScan = 0, kSsh = 1, kExfil = 2;

class IncidentSink : public MatchSink {
 public:
  void OnMatch(bool positive, const Mapping& m) override {
    if (positive) {
      ++incidents_;
      if (incidents_ <= 5) {
        std::printf("  INCIDENT #%zu: lateral movement %s\n", incidents_,
                    MappingToString(m).c_str());
      }
    } else {
      ++cleared_;
    }
  }
  size_t incidents() const { return incidents_; }
  size_t cleared() const { return cleared_; }

 private:
  size_t incidents_ = 0;
  size_t cleared_ = 0;
};

}  // namespace

int main() {
  // Query: external -[scan]-> gateway -[ssh]-> server -[exfil]-> external.
  QueryGraph query;
  QVertexId external = query.AddVertex(LabelSet{});
  QVertexId gateway = query.AddVertex(LabelSet{});
  QVertexId server = query.AddVertex(LabelSet{});
  query.AddEdge(external, kScan, gateway);
  query.AddEdge(gateway, kSsh, server);
  query.AddEdge(server, kExfil, external);

  // Background traffic from the Netflow generator.
  NetflowConfig config;
  config.num_hosts = 600;
  config.num_flows = 20000;
  TemporalGraph traffic = GenerateNetflow(config);
  Graph g0 = traffic.vertices;
  size_t split = traffic.edges.size() * 9 / 10;
  for (size_t i = 0; i < split; ++i) {
    g0.AddEdge(traffic.edges[i].from, traffic.edges[i].label,
               traffic.edges[i].to);
  }

  TurboFluxEngine engine;
  IncidentSink sink;
  if (!engine.Init(query, g0, sink, Deadline::Infinite())) return 1;
  std::printf("baseline traffic loaded: %zu flows, %zu incidents already "
              "present, DCG %zu edges\n",
              g0.EdgeCount(), sink.incidents(), engine.IntermediateSize());

  // Live tail of the trace, with one planted intrusion in the middle and
  // a firewall block (edge deletion) afterwards.
  UpdateStream live;
  for (size_t i = split; i < traffic.edges.size(); ++i) {
    live.push_back(UpdateOp::Insert(traffic.edges[i].from,
                                    traffic.edges[i].label,
                                    traffic.edges[i].to));
  }
  VertexId attacker = 590, gw = 591, srv = 592;  // unpopular hosts
  live.insert(live.begin() + static_cast<long>(live.size() / 2),
              {UpdateOp::Insert(attacker, kScan, gw),
               UpdateOp::Insert(gw, kSsh, srv),
               UpdateOp::Insert(srv, kExfil, attacker)});
  live.push_back(UpdateOp::Delete(gw, kSsh, srv));  // firewall kill

  size_t before = sink.incidents();
  std::printf("monitoring %zu live flows...\n", live.size());
  for (const UpdateOp& op : live) {
    if (!engine.ApplyUpdate(op, sink, Deadline::Infinite())) return 1;
  }
  std::printf("done: %zu new incidents (>=1 expected), %zu incident "
              "patterns cleared by the firewall rule\n",
              sink.incidents() - before, sink.cleared());
  return sink.incidents() > before && sink.cleared() > 0 ? 0 : 1;
}
