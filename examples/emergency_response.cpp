// Emergency monitoring (the paper's third motivation, Section 1): worm
// spread in a phone/computer network can be modeled as a query graph. A
// worm signature here is a cascade: an infected machine contacts two
// distinct peers over the same exploit port within the monitored window,
// and one of those peers contacts a third. Demonstrates the multi::QuerySet
// serving layer: several signatures monitored simultaneously over one
// shared graph and one stream.
//
//   run: ./build/examples/emergency_response

#include <cstdio>

#include "turboflux/common/rng.h"
#include "turboflux/multi/query_set.h"

using namespace turboflux;

namespace {

constexpr EdgeLabel kExploit = 0, kHttp = 1, kDns = 2;

class OpsConsole : public multi::QuerySet::Sink {
 public:
  void OnMatch(multi::QueryId query, bool positive, const Mapping&) override {
    if (positive) {
      ++alerts_[query];
    }
  }
  size_t alerts(multi::QueryId q) const { return alerts_[q]; }

 private:
  size_t alerts_[8] = {};
};

}  // namespace

int main() {
  // Signature 1: two-hop worm cascade a -> b -> c over the exploit port.
  QueryGraph cascade;
  {
    QVertexId a = cascade.AddVertex(LabelSet{});
    QVertexId b = cascade.AddVertex(LabelSet{});
    QVertexId c = cascade.AddVertex(LabelSet{});
    cascade.AddEdge(a, kExploit, b);
    cascade.AddEdge(b, kExploit, c);
  }
  // Signature 2: fan-out — one machine exploiting two peers.
  QueryGraph fanout;
  {
    QVertexId a = fanout.AddVertex(LabelSet{});
    QVertexId b = fanout.AddVertex(LabelSet{});
    QVertexId c = fanout.AddVertex(LabelSet{});
    fanout.AddEdge(a, kExploit, b);
    fanout.AddEdge(a, kExploit, c);
  }
  // Signature 3: beaconing loop — exploit followed by a DNS callback.
  QueryGraph beacon;
  {
    QVertexId a = beacon.AddVertex(LabelSet{});
    QVertexId b = beacon.AddVertex(LabelSet{});
    beacon.AddEdge(a, kExploit, b);
    beacon.AddEdge(b, kDns, a);
  }

  // Benign background network: HTTP and DNS chatter among 300 machines.
  const size_t kHosts = 300;
  Graph g0;
  for (size_t i = 0; i < kHosts; ++i) g0.AddVertex(LabelSet{});
  Rng rng(77);
  for (int i = 0; i < 3000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(kHosts));
    VertexId b = static_cast<VertexId>(rng.NextBounded(kHosts));
    if (a == b) continue;
    g0.AddEdge(a, rng.NextBool(0.7) ? kHttp : kDns, b);
  }

  OpsConsole console;
  multi::QuerySet set;
  set.Bind(g0);
  multi::QueryId q_cascade = 0, q_fanout = 0, q_beacon = 0;
  if (!set.Register(cascade, console, Deadline::Infinite(), &q_cascade).ok() ||
      !set.Register(fanout, console, Deadline::Infinite(), &q_fanout).ok() ||
      !set.Register(beacon, console, Deadline::Infinite(), &q_beacon).ok()) {
    return 1;
  }
  std::printf("monitoring %zu machines with 3 signatures; total DCG %zu "
              "edges\n", kHosts, set.IntermediateSize());

  // Live traffic with a simulated worm outbreak: patient zero exploits
  // two machines, one of which exploits a third and phones home.
  UpdateStream live;
  for (int i = 0; i < 500; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(kHosts));
    VertexId b = static_cast<VertexId>(rng.NextBounded(kHosts));
    if (a == b) continue;
    live.push_back(UpdateOp::Insert(a, kHttp, b));
  }
  VertexId zero = 13, first = 42, second = 99, third = 7;
  live.push_back(UpdateOp::Insert(zero, kExploit, first));
  live.push_back(UpdateOp::Insert(zero, kExploit, second));   // fan-out
  live.push_back(UpdateOp::Insert(first, kExploit, third));   // cascade
  live.push_back(UpdateOp::Insert(third, kDns, first));       // beacon

  for (const UpdateOp& op : live) {
    Status st = set.ApplyUpdate(op, console, Deadline::Infinite());
    if (st.code() == StatusCode::kDeadlineExceeded) return 1;
  }
  std::printf("alerts: cascade=%zu fan-out=%zu beacon=%zu (each >=1 "
              "expected)\n",
              console.alerts(q_cascade), console.alerts(q_fanout),
              console.alerts(q_beacon));
  bool ok = console.alerts(q_cascade) >= 1 &&
            console.alerts(q_fanout) >= 1 && console.alerts(q_beacon) >= 1;
  return ok ? 0 : 1;
}
