// Fraud-ring detection (the paper's banking motivation, Section 1):
// fraudsters organize into rings, detectable as cycles of money
// transfers among accounts that share identity attributes. We register a
// ring-shaped query — account -> account -> account -> back, where two
// of the accounts share a phone number — over a synthetic transaction
// stream and alert in real time as rings complete.
//
//   run: ./build/examples/fraud_detection

#include <cstdio>

#include "turboflux/common/rng.h"
#include "turboflux/core/turboflux.h"

using namespace turboflux;

namespace {

constexpr Label kAccount = 0, kPhone = 1;
constexpr EdgeLabel kTransfer = 0, kUsesPhone = 1;

class AlertSink : public MatchSink {
 public:
  void OnMatch(bool positive, const Mapping& m) override {
    if (!positive) return;  // only alert on new rings
    ++alerts_;
    if (alerts_ <= 5) {
      std::printf("  ALERT #%zu: fraud ring %s\n", alerts_,
                  MappingToString(m).c_str());
    }
  }
  size_t alerts() const { return alerts_; }

 private:
  size_t alerts_ = 0;
};

}  // namespace

int main() {
  // Query: a 3-cycle of transfers where the first and last account share
  // a phone (a classic synthetic-identity signal).
  QueryGraph query;
  QVertexId a0 = query.AddVertex(LabelSet{kAccount});
  QVertexId a1 = query.AddVertex(LabelSet{kAccount});
  QVertexId a2 = query.AddVertex(LabelSet{kAccount});
  QVertexId phone = query.AddVertex(LabelSet{kPhone});
  query.AddEdge(a0, kTransfer, a1);
  query.AddEdge(a1, kTransfer, a2);
  query.AddEdge(a2, kTransfer, a0);  // the ring closes
  query.AddEdge(a0, kUsesPhone, phone);
  query.AddEdge(a2, kUsesPhone, phone);  // shared identity attribute

  // Synthetic world: accounts, phones, an initial transfer history, then
  // a live stream in which we plant a few rings.
  const size_t kAccounts = 400, kPhones = 120;
  Graph g0;
  for (size_t i = 0; i < kAccounts; ++i) g0.AddVertex(LabelSet{kAccount});
  for (size_t i = 0; i < kPhones; ++i) g0.AddVertex(LabelSet{kPhone});
  Rng rng(2024);
  auto account = [&](uint64_t i) { return static_cast<VertexId>(i); };
  auto phone_v = [&](uint64_t i) {
    return static_cast<VertexId>(kAccounts + i);
  };
  for (size_t i = 0; i < kAccounts; ++i) {
    g0.AddEdge(account(i), kUsesPhone, phone_v(rng.NextBounded(kPhones)));
  }
  for (int i = 0; i < 1500; ++i) {
    g0.AddEdge(account(rng.NextBounded(kAccounts)), kTransfer,
               account(rng.NextBounded(kAccounts)));
  }

  // Isomorphism semantics: ring members must be *distinct* accounts
  // (homomorphism would also flag a degenerate self-transfer).
  TurboFluxOptions options;
  options.semantics = MatchSemantics::kIsomorphism;
  TurboFluxEngine engine(options);
  AlertSink sink;
  if (!engine.Init(query, g0, sink, Deadline::Infinite())) return 1;
  std::printf("monitoring %zu accounts; DCG has %zu edges after init\n",
              kAccounts, engine.IntermediateSize());

  // Live stream: mostly random transfers, plus three planted rings whose
  // members share a phone.
  UpdateStream stream;
  for (int ring = 0; ring < 3; ++ring) {
    VertexId x = account(rng.NextBounded(kAccounts));
    VertexId y = account(rng.NextBounded(kAccounts));
    VertexId z = account(rng.NextBounded(kAccounts));
    if (x == y || y == z || x == z) continue;
    VertexId shared = phone_v(rng.NextBounded(kPhones));
    stream.push_back(UpdateOp::Insert(x, kUsesPhone, shared));
    stream.push_back(UpdateOp::Insert(z, kUsesPhone, shared));
    for (int noise = 0; noise < 200; ++noise) {
      stream.push_back(UpdateOp::Insert(account(rng.NextBounded(kAccounts)),
                                        kTransfer,
                                        account(rng.NextBounded(kAccounts))));
    }
    stream.push_back(UpdateOp::Insert(x, kTransfer, y));
    stream.push_back(UpdateOp::Insert(y, kTransfer, z));
    stream.push_back(UpdateOp::Insert(z, kTransfer, x));  // ring completes
  }

  std::printf("streaming %zu transactions...\n", stream.size());
  for (const UpdateOp& op : stream) {
    if (!engine.ApplyUpdate(op, sink, Deadline::Infinite())) return 1;
  }
  std::printf("done: %zu ring alerts (>=3 expected from the planted "
              "rings)\n", sink.alerts());
  return sink.alerts() >= 3 ? 0 : 1;
}
