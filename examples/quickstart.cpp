// Quickstart: the smallest complete TurboFlux program.
//
// We register a 3-vertex path query over a tiny labeled graph, then feed
// a stream of edge insertions and deletions; the engine reports each
// positive match the moment the pattern completes and each negative
// match the moment it breaks.
//
//   build:  cmake --build build --target quickstart
//   run:    ./build/examples/quickstart

#include <cstdio>

#include "turboflux/core/turboflux.h"

using namespace turboflux;

namespace {

// Prints every match the engine reports.
class PrintSink : public MatchSink {
 public:
  void OnMatch(bool positive, const Mapping& m) override {
    std::printf("  %s match %s\n", positive ? "POSITIVE" : "NEGATIVE",
                MappingToString(m).c_str());
  }
};

}  // namespace

int main() {
  // Vertex labels and edge labels are small integers; wrap them in
  // enum-like constants for readability.
  constexpr Label kPerson = 0, kAccount = 1, kMerchant = 2;
  constexpr EdgeLabel kOwns = 0, kPaysTo = 1;

  // Query: person -[owns]-> account -[paysTo]-> merchant.
  QueryGraph query;
  QVertexId person = query.AddVertex(LabelSet{kPerson});
  QVertexId account = query.AddVertex(LabelSet{kAccount});
  QVertexId merchant = query.AddVertex(LabelSet{kMerchant});
  query.AddEdge(person, kOwns, account);
  query.AddEdge(account, kPaysTo, merchant);

  // Initial data graph: the person already owns the account.
  Graph g0;
  VertexId alice = g0.AddVertex(LabelSet{kPerson});
  VertexId acct = g0.AddVertex(LabelSet{kAccount});
  VertexId shop = g0.AddVertex(LabelSet{kMerchant});
  g0.AddEdge(alice, kOwns, acct);

  TurboFluxEngine engine;
  PrintSink sink;
  std::printf("initializing (no complete matches in g0 yet):\n");
  if (!engine.Init(query, g0, sink, Deadline::Infinite())) return 1;

  std::printf("insert account -> merchant payment:\n");
  (void)engine.ApplyUpdate(UpdateOp::Insert(acct, kPaysTo, shop), sink,
                           Deadline::Infinite());

  std::printf("delete the ownership edge (match breaks):\n");
  (void)engine.ApplyUpdate(UpdateOp::Delete(alice, kOwns, acct), sink,
                           Deadline::Infinite());

  std::printf("DCG currently stores %zu intermediate edges\n",
              engine.IntermediateSize());
  return 0;
}
