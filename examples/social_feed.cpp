// Social-media stream monitoring (the paper's social-network motivation,
// Section 1): over the LSBench-like generator's stream, watch for
// "trending among friends" events — a user will want a notification when
// a friend likes a post that carries a tag the user subscribes to via a
// channel the post appeared in. Demonstrates using the workload library
// together with the engine, and compares TurboFlux's cost to rerunning a
// static matcher from scratch.
//
//   run: ./build/examples/social_feed

#include <cstdio>

#include "turboflux/core/turboflux.h"
#include "turboflux/match/static_matcher.h"
#include "turboflux/workload/lsbench.h"
#include "turboflux/workload/stream_builder.h"

using namespace turboflux;
using namespace turboflux::workload;

int main() {
  LsBenchVocabulary voc = MakeLsBenchVocabulary();

  // Query: user -[knows]-> friend -[likes]-> post -[postedIn]-> channel,
  // with the user subscribed to that channel.
  QueryGraph query;
  QVertexId user = query.AddVertex(LabelSet{voc.user});
  QVertexId friend_v = query.AddVertex(LabelSet{voc.user});
  QVertexId post = query.AddVertex(LabelSet{voc.post});
  QVertexId channel = query.AddVertex(LabelSet{voc.channel});
  query.AddEdge(user, voc.knows, friend_v);
  query.AddEdge(friend_v, voc.likes, post);
  query.AddEdge(post, voc.posted_in, channel);
  query.AddEdge(user, voc.subscribes, channel);

  LsBenchConfig config;
  config.num_users = 500;
  StreamConfig sc;
  sc.stream_fraction = 0.10;
  Dataset dataset = BuildDataset(GenerateLsBench(config), sc);
  std::printf("LSBench-like stream: |V|=%zu |E(g0)|=%zu |dg|=%zu\n",
              dataset.initial.VertexCount(), dataset.initial.EdgeCount(),
              dataset.stream.size());

  TurboFluxEngine engine;
  CountingSink sink;
  Stopwatch init_watch;
  if (!engine.Init(query, dataset.initial, sink, Deadline::Infinite())) {
    return 1;
  }
  std::printf("init: %.3fs, %llu notifications already due, DCG %zu "
              "edges\n", init_watch.ElapsedSeconds(),
              static_cast<unsigned long long>(sink.positive()),
              engine.IntermediateSize());

  sink.Reset();
  Stopwatch stream_watch;
  for (const UpdateOp& op : dataset.stream) {
    if (!engine.ApplyUpdate(op, sink, Deadline::Infinite())) return 1;
  }
  double incremental = stream_watch.ElapsedSeconds();
  std::printf("stream: %.3fs for %zu updates -> %llu new notifications "
              "(%.1f us/update)\n",
              incremental, dataset.stream.size(),
              static_cast<unsigned long long>(sink.positive()),
              1e6 * incremental /
                  static_cast<double>(dataset.stream.size()));

  // What re-running a static matcher on every update would cost,
  // extrapolated from one full evaluation (the naive recompute strategy
  // the paper rules out in Section 1).
  Stopwatch full_watch;
  StaticMatcher matcher(dataset.final_graph, query, {});
  uint64_t total = matcher.CountAll();
  double one_pass = full_watch.ElapsedSeconds();
  std::printf("naive recompute: one full evaluation takes %.3fs (finds "
              "%llu matches); per-update recomputation would cost ~%.0fx "
              "TurboFlux's whole-stream time\n",
              one_pass, static_cast<unsigned long long>(total),
              one_pass * static_cast<double>(dataset.stream.size()) /
                  (incremental > 0 ? incremental : 1e-9));
  return 0;
}
