// Fuzz target: serve wire-protocol framing and payload parsing
// (serve/protocol.h). Exercises FrameDecoder against arbitrary byte
// streams fed in attacker-chosen chunk sizes, then throws every decoded
// payload at ParseRequest/ParseResponse.
//
// Invariants checked (abort() on violation so the fuzzer minimizes):
//   - Feed/Next never read out of bounds or allocate beyond
//     kMaxFrameBytes for a declared frame (ASan enforces the former).
//   - A poisoned decoder stays poisoned and stops yielding frames.
//   - buffered() never exceeds what was fed.
//   - A payload ParseRequest accepts must survive an
//     EncodeRequest -> ParseRequest round trip.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "turboflux/serve/protocol.h"

using turboflux::Status;
using turboflux::serve::FrameDecoder;
using turboflux::serve::Request;
using turboflux::serve::Response;

namespace {

void CheckRequestRoundTrip(const std::string& payload) {
  Request req;
  if (!turboflux::serve::ParseRequest(payload, &req).ok()) return;
  const std::string encoded = turboflux::serve::EncodeRequest(req);
  Request again;
  if (!turboflux::serve::ParseRequest(encoded, &again).ok()) abort();
  if (again.kind != req.kind || again.channel != req.channel ||
      again.seq != req.seq || again.ops.size() != req.ops.size()) {
    abort();
  }
}

void CheckResponseRoundTrip(const std::string& payload) {
  Response resp;
  if (!turboflux::serve::ParseResponse(payload, &resp).ok()) return;
  const std::string encoded = turboflux::serve::EncodeResponse(resp);
  Response again;
  if (!turboflux::serve::ParseResponse(encoded, &again).ok()) abort();
  if (again.kind != resp.kind || again.seq != resp.seq ||
      again.matches.size() != resp.matches.size()) {
    abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // The first byte picks the chunk size so the corpus can exercise both
  // byte-at-a-time reassembly and whole-buffer feeds.
  const size_t chunk = size == 0 ? 1 : (data[0] % 64) + 1;
  FrameDecoder decoder;
  size_t fed = 0;
  bool poisoned = false;
  for (size_t off = 0; off < input.size(); off += chunk) {
    const std::string_view piece = input.substr(off, chunk);
    decoder.Feed(piece);
    fed += piece.size();
    if (decoder.buffered() > fed) abort();
    std::string payload;
    while (decoder.Next(&payload)) {
      if (poisoned) abort();  // frames after poisoning
      CheckRequestRoundTrip(payload);
      CheckResponseRoundTrip(payload);
    }
    poisoned = poisoned || !decoder.status().ok();
  }

  // The raw input is also a candidate payload line in its own right.
  CheckRequestRoundTrip(std::string(input));
  CheckResponseRoundTrip(std::string(input));
  return 0;
}
