// Fuzz target: text ingestion parsers (graph/graph_io.h) — ReadGraph and
// ReadStream, strict and lenient, with and without the IoOptions limits
// the serve ingestion path relies on.
//
// Invariants checked (abort() on violation):
//   - No crash/OOM on arbitrary text: vertex and label limits must bound
//     allocations even when the input declares absurd ids.
//   - Strict mode rejects anything lenient mode skips: a strict-OK input
//     must be lenient-OK with zero skipped records.
//   - A graph accepted strict must survive a WriteGraph -> ReadGraph
//     round trip with identical vertex/edge counts (same for streams).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "turboflux/graph/graph.h"
#include "turboflux/graph/graph_io.h"
#include "turboflux/graph/update_stream.h"

using turboflux::Graph;
using turboflux::IoOptions;
using turboflux::IoStats;
using turboflux::Status;
using turboflux::UpdateStream;

namespace {

// Bound id-space allocations: a `v 4000000000` line must fail parsing,
// not reserve 4 G vertex slots.
IoOptions Limits() {
  IoOptions o;
  o.max_vertices = 1 << 16;
  o.vertex_label_limit = 1 << 10;
  o.edge_label_limit = 1 << 10;
  return o;
}

void FuzzGraph(const std::string& text) {
  Graph strict;
  IoStats strict_stats;
  std::istringstream in(text);
  const Status st = ReadGraph(in, &strict, Limits(), &strict_stats);

  Graph lenient;
  IoStats lenient_stats;
  IoOptions lenient_opts = Limits();
  lenient_opts.lenient = true;
  std::istringstream in2(text);
  const Status st2 = ReadGraph(in2, &lenient, lenient_opts, &lenient_stats);

  if (st.ok()) {
    if (!st2.ok() || lenient_stats.skipped != 0) abort();
    std::ostringstream out;
    WriteGraph(strict, out);
    Graph again;
    std::istringstream in3(out.str());
    if (!ReadGraph(in3, &again, Limits()).ok()) abort();
    if (again.VertexCount() != strict.VertexCount() ||
        again.EdgeCount() != strict.EdgeCount()) {
      abort();
    }
  }
}

void FuzzStream(const std::string& text) {
  UpdateStream strict;
  std::istringstream in(text);
  const Status st = ReadStream(in, &strict, Limits());

  UpdateStream lenient;
  IoStats lenient_stats;
  IoOptions lenient_opts = Limits();
  lenient_opts.lenient = true;
  std::istringstream in2(text);
  const Status st2 = ReadStream(in2, &lenient, lenient_opts, &lenient_stats);

  if (st.ok()) {
    if (!st2.ok() || lenient_stats.skipped != 0) abort();
    if (lenient.size() != strict.size()) abort();
    std::ostringstream out;
    WriteStream(strict, out);
    UpdateStream again;
    std::istringstream in3(out.str());
    if (!ReadStream(in3, &again, Limits()).ok()) abort();
    if (again.size() != strict.size()) abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  FuzzGraph(text);
  FuzzStream(text);
  return 0;
}
