// Standalone corpus-replay driver, linked into the fuzz harnesses when
// TFX_LIBFUZZER is OFF (any compiler, no sanitizer runtime required).
// Each argument is a corpus file or a directory of them; every input is
// run through LLVMFuzzerTestOneInput once. The FuzzCorpus ctest gates use
// this driver so the committed corpora are replayed on every platform;
// coverage-guided fuzzing swaps this file for libFuzzer's own main via
// -fsanitize=fuzzer.
//
// Exit status: 0 when every input ran, 2 on usage or I/O error. A
// violated harness invariant abort()s, which ctest reports as failure.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "fuzz: cannot read " << path << "\n";
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " CORPUS_FILE_OR_DIR...\n";
    return 2;
  }
  size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg = argv[i];
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& f : files) {
        if (!RunFile(f)) return 2;
        ++ran;
      }
    } else {
      if (!RunFile(arg)) return 2;
      ++ran;
    }
  }
  std::cerr << "fuzz: " << ran << " inputs replayed clean\n";
  return 0;
}
