// Fuzz target: CRC32 section framing (common/serialize.h) — the substrate
// every checkpoint format (TFXC/TFXQ/TFXS) is built on.
//
// Input layout: the first 4 bytes (little-endian) are the tag
// ReadSection expects; the rest is the byte stream to parse. Committed
// seeds use matching tags so the happy path stays covered; the fuzzer
// mutates both sides.
//
// Invariants checked (abort() on violation):
//   - ReadSection never crashes or over-allocates on corrupt size fields
//     (kMaxSectionBytes guard; ASan catches the rest).
//   - A section ReadSection accepts must survive a WriteSection ->
//     ReadSection round trip bit-for-bit.
//   - The bounds-checked bin::Reader never reads past the payload.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "turboflux/common/serialize.h"

namespace bin = turboflux::bin;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 4) return 0;
  uint32_t tag = 0;
  for (int i = 0; i < 4; ++i) tag |= uint32_t{data[i]} << (8 * i);
  const std::string stream(reinterpret_cast<const char*>(data + 4), size - 4);

  std::istringstream in(stream);
  std::string payload;
  const turboflux::Status st = bin::ReadSection(in, tag, &payload);
  if (st.ok()) {
    // Round trip: re-framing the accepted payload must parse back equal.
    std::ostringstream out;
    if (!bin::WriteSection(out, tag, payload).ok()) abort();
    std::istringstream again(out.str());
    std::string payload2;
    if (!bin::ReadSection(again, tag, &payload2).ok()) abort();
    if (payload2 != payload) abort();

    // Drain the payload through the bounds-checked reader; every getter
    // must fail cleanly at exhaustion instead of reading past the end.
    bin::Reader r(payload);
    uint8_t u8;
    uint32_t u32;
    uint64_t u64;
    while (!r.exhausted()) {
      const size_t before = r.remaining();
      if (!r.GetU64(&u64) && !r.GetU32(&u32) && !r.GetU8(&u8)) break;
      if (r.remaining() >= before) abort();
    }
    uint32_t n;
    (void)r.GetLength(&n, 1 << 20);
  }

  // A second section may follow; parse it too (checkpoints are fixed
  // sequences of sections).
  std::string rest;
  (void)bin::ReadSection(in, tag, &rest);
  return 0;
}
