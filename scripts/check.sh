#!/usr/bin/env bash
# One-shot local static-analysis gate (DESIGN.md §3.9) — the same checks
# the CI static-analysis job runs, degraded gracefully when a tool is not
# installed (the container ships GCC only; Clang adds the thread-safety
# analysis and clang-tidy/clang-format add their gates).
#
#   scripts/check.sh                 # build + tfx_lint + tfx_analyze +
#                                    # fuzz smoke + tidy + format
#   scripts/check.sh --format-only   # just the format check
#   scripts/check.sh --base REF      # diff base for the format check
#                                    # (default: origin/main, then HEAD)
#
# Exit status is nonzero when any *available* check fails; missing tools
# are reported as SKIPPED and do not fail the gate.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-check}"
BASE=""
FORMAT_ONLY=0

while [ $# -gt 0 ]; do
  case "$1" in
    --format-only) FORMAT_ONLY=1 ;;
    --base) shift; BASE="$1" ;;
    --base=*) BASE="${1#--base=}" ;;
    *) echo "usage: $0 [--format-only] [--base REF]" >&2; exit 2 ;;
  esac
  shift
done

FAILED=0
note()  { printf '== %s\n' "$*"; }
skip()  { printf 'SKIPPED: %s\n' "$*"; }
fail()  { printf 'FAILED: %s\n' "$*"; FAILED=1; }

format_check() {
  if ! command -v clang-format >/dev/null 2>&1; then
    skip "clang-format not installed"
    return
  fi
  local base="$BASE"
  if [ -z "$base" ]; then
    if git -C "$ROOT" rev-parse --verify -q origin/main >/dev/null; then
      base=origin/main
    else
      base=HEAD
    fi
  fi
  note "clang-format (changed files vs $base)"
  local files
  files=$(git -C "$ROOT" diff --name-only --diff-filter=ACMR "$base" -- \
            '*.h' '*.cc' '*.cpp' | sed "s|^|$ROOT/|")
  if [ -z "$files" ]; then
    echo "no changed C++ files"
    return
  fi
  # shellcheck disable=SC2086
  if ! clang-format --dry-run -Werror $files; then
    fail "clang-format (run: clang-format -i <files>)"
  fi
}

if [ "$FORMAT_ONLY" = 1 ]; then
  format_check
  exit $FAILED
fi

# --- 1. Build, with the strictest compiler available -----------------------
# Clang adds -Wthread-safety -Werror=thread-safety (see CMakeLists.txt);
# both compilers enforce -Werror=unused-result over [[nodiscard]] Status.
CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Debug -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)
if command -v clang++ >/dev/null 2>&1; then
  note "build (clang++, thread-safety analysis armed)"
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER=clang++)
else
  note "build (g++ — thread-safety analysis needs clang++)"
fi
if ! cmake -B "$BUILD_DIR" -S "$ROOT" "${CMAKE_ARGS[@]}" >/dev/null; then
  fail "cmake configure"
  exit 1
fi
if ! cmake --build "$BUILD_DIR" -j"$(nproc)"; then
  fail "build"
  exit 1
fi
if ! command -v clang++ >/dev/null 2>&1; then
  skip "thread-safety analysis (install clang to run it locally)"
fi

# --- 2. tfx_lint over the whole tree ---------------------------------------
note "tfx_lint"
if ! "$BUILD_DIR/tools/tfx_lint" -p "$BUILD_DIR/compile_commands.json" \
     --root "$ROOT"; then
  fail "tfx_lint"
fi

# --- 3. tfx_analyze: semantic tier + lock-order graph -----------------------
note "tfx_analyze (semantic tier; graph: $BUILD_DIR/lock_order.dot)"
if ! "$BUILD_DIR/tools/tfx_analyze" -p "$BUILD_DIR/compile_commands.json" \
     --root "$ROOT" --lock-graph "$BUILD_DIR/lock_order.dot"; then
  fail "tfx_analyze"
fi

# --- 4. Fuzz smoke: replay corpora, then ~30s of fuzzing if libFuzzer ------
note "fuzz corpora replay"
for t in frame_decoder section_reader graph_io; do
  if ! "$BUILD_DIR/fuzz/fuzz_$t" "$ROOT/tests/corpus/$t"; then
    fail "fuzz corpus replay ($t)"
  fi
done
if command -v clang++ >/dev/null 2>&1; then
  note "fuzz smoke (libFuzzer, 10s per target)"
  FUZZ_DIR="$BUILD_DIR-fuzz"
  if cmake -B "$FUZZ_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug \
       -DCMAKE_CXX_COMPILER=clang++ -DTFX_LIBFUZZER=ON \
       -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-sanitize-recover=all" \
       >/dev/null &&
     cmake --build "$FUZZ_DIR" -j"$(nproc)" \
       --target fuzz_frame_decoder fuzz_section_reader fuzz_graph_io; then
    for t in frame_decoder section_reader graph_io; do
      if ! "$FUZZ_DIR/fuzz/fuzz_$t" -seed=1 -max_total_time=10 \
           -max_len=65536 "$ROOT/tests/corpus/$t"; then
        fail "fuzz smoke ($t)"
      fi
    done
  else
    fail "fuzz smoke build"
  fi
else
  skip "coverage-guided fuzz smoke (install clang for libFuzzer)"
fi

# --- 5. clang-tidy ----------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy (curated zero-warning baseline)"
  RUNNER=""
  for c in run-clang-tidy run-clang-tidy-18 run-clang-tidy-17 \
           run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14; do
    if command -v "$c" >/dev/null 2>&1; then RUNNER="$c"; break; fi
  done
  REPORT="$BUILD_DIR/clang-tidy-report.txt"
  if [ -n "$RUNNER" ]; then
    "$RUNNER" -p "$BUILD_DIR" -quiet \
      "$ROOT/(src|tools|tests|bench|examples)/.*" >"$REPORT" 2>/dev/null
  else
    # Fallback: sequential clang-tidy over the compilation database.
    git -C "$ROOT" ls-files '*.cc' '*.cpp' | sed "s|^|$ROOT/|" |
      xargs -r clang-tidy -p "$BUILD_DIR" --quiet >"$REPORT" 2>/dev/null
  fi
  if grep -qE "warning:|error:" "$REPORT"; then
    grep -E "warning:|error:" "$REPORT" | head -50
    fail "clang-tidy (full report: $REPORT)"
  else
    echo "clang-tidy clean"
  fi
else
  skip "clang-tidy not installed"
fi

# --- 6. Format check --------------------------------------------------------
format_check

[ $FAILED = 0 ] && note "all available checks passed"
exit $FAILED
