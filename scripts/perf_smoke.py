#!/usr/bin/env python3
"""CI perf-smoke gate (ROADMAP item 4, DESIGN.md §3.11).

Compares a fresh `micro_ops --pinned_json=...` run against the committed
BENCH_7.json baseline and fails on latency regression. The comparison uses
the PR 3 log2-bucket histogram percentiles (hist_p50_ns / hist_p99_ns):
bucket upper bounds quantize away scheduler jitter, so a failure means the
measured op latency moved at least one power of two past a generous
multiple of the baseline — a real regression, not CI-runner noise. Exact
percentiles are printed for humans but never gated on.

Usage:
    perf_smoke.py --fresh pinned.json [--baseline BENCH_7.json]
                  [--threshold 4.0]

Exit status 0 when every (scale, mix) row passes, 1 otherwise.
"""

import argparse
import json
import sys

GATED_KEYS = ("hist_p50_ns", "hist_p99_ns")
REPORT_KEYS = ("p50_ns", "p90_ns", "p99_ns", "mean_ns")


def row_key(row):
    """(scale, mix, engine); rows predating the engine field (the whole
    BENCH_7.json baseline) are TurboFlux rows."""
    return (row["scale"], row["mix"], row.get("engine", "turboflux"))


def baseline_rows(doc):
    """Baseline rows keyed by (scale, mix, engine).

    Accepts either the committed A/B artifact (rows carry a 'csr' object —
    the reworked layout is what CI runs, so that is the comparison side)
    or a raw pinned run (flat rows), so the gate can be repointed at any
    future BENCH_<n>.json without a format change.
    """
    rows = {}
    for row in doc["engine_ops"]:
        side = row.get("csr", row)
        rows[row_key(row)] = (side, row["ops"])
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="pinned JSON written by micro_ops --pinned_json")
    parser.add_argument("--baseline", default="BENCH_7.json")
    parser.add_argument("--threshold", type=float, default=4.0,
                        help="fail when fresh hist percentile exceeds "
                             "baseline * threshold (default: 4.0)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = baseline_rows(json.load(f))
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = []
    seen = set()
    for row in fresh["engine_ops"]:
        key = row_key(row)
        if key not in baseline:
            # Rows from engines the baseline does not cover (e.g. a
            # `--engines=turboflux,symbi` run against the TurboFlux-only
            # BENCH_7.json) are informational, never gated: a missing
            # baseline row is only a failure for the baseline's engine.
            if any(b[2] == key[2] for b in baseline):
                failures.append(f"{key}: not in baseline {args.baseline}")
            else:
                exact = ", ".join(f"{k}={row[k]}" for k in REPORT_KEYS)
                print(f"scale={key[0]} mix={key[1]} engine={key[2]}: "
                      f"no baseline, reporting only [{exact}]")
            continue
        seen.add(key)
        base, base_ops = baseline[key]
        if row["ops"] != base_ops:
            failures.append(
                f"{key}: op count drifted ({row['ops']} vs {base_ops}) — "
                "the pinned config changed; regenerate the baseline")
            continue
        verdicts = []
        for k in GATED_KEYS:
            limit = base[k] * args.threshold
            ok = row[k] <= limit
            verdicts.append(f"{k} {row[k]} vs {base[k]} "
                            f"(limit {limit:.0f}) {'ok' if ok else 'FAIL'}")
            if not ok:
                failures.append(f"{key}: {k} regressed: "
                                f"{row[k]} > {base[k]} * {args.threshold}")
        exact = ", ".join(f"{k}={row[k]}" for k in REPORT_KEYS)
        print(f"scale={key[0]} mix={key[1]} engine={key[2]}: "
              f"{'; '.join(verdicts)} [{exact}]")
    missing = set(baseline) - seen
    if missing:
        failures.append(f"fresh run is missing rows: {sorted(missing)}")

    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nperf smoke passed: {len(seen)} rows within "
          f"{args.threshold}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
