#!/bin/sh
# Reproduces the whole evaluation: builds, runs the test suite, then every
# figure bench. Outputs land in test_output.txt and bench_output.txt at
# the repository root. Expect ~20-40 minutes on a laptop.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
(for b in build/bench/*; do
   [ -x "$b" ] && [ -f "$b" ] && echo "=== $b ===" && "$b"
 done) 2>&1 | tee bench_output.txt
