#!/bin/sh
# Reproduces the whole evaluation: builds, runs the test suite, then every
# figure bench. Outputs land in test_output.txt and bench_output.txt at
# the repository root. Expect ~20-40 minutes on a laptop.
#
# THREADS=N (and optionally BATCH=K) in the environment are forwarded to
# every figure binary as --threads=N --batch=K, enabling TurboFlux's
# parallel batched-update path. Defaults (1/1) reproduce the paper's
# sequential model; outputs are identical either way.
#
# STATS_DIR=dir additionally passes --stats_json=dir/<bench>.stats.json to
# every figure binary, producing one machine-readable per-engine counter/
# latency artifact per bench (DESIGN.md §3.8) — the perf trajectory of the
# whole reproduction.
set -e
cd "$(dirname "$0")/.."
THREADS="${THREADS:-1}"
BATCH="${BATCH:-1}"
STATS_DIR="${STATS_DIR:-}"
BENCH_FLAGS="--threads=$THREADS --batch=$BATCH"
if [ -n "$STATS_DIR" ]; then mkdir -p "$STATS_DIR"; fi
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
(for b in build/bench/*; do
   if [ -x "$b" ] && [ -f "$b" ]; then
     STATS_FLAG=""
     if [ -n "$STATS_DIR" ]; then
       STATS_FLAG="--stats_json=$STATS_DIR/$(basename "$b").stats.json"
     fi
     echo "=== $b $BENCH_FLAGS $STATS_FLAG ==="
     "$b" $BENCH_FLAGS $STATS_FLAG
   fi
 done) 2>&1 | tee bench_output.txt
