#!/bin/sh
# Reproduces the whole evaluation: builds, runs the test suite, then every
# figure bench. Outputs land in test_output.txt and bench_output.txt at
# the repository root. Expect ~20-40 minutes on a laptop.
#
# THREADS=N (and optionally BATCH=K) in the environment are forwarded to
# every figure binary as --threads=N --batch=K, enabling TurboFlux's
# parallel batched-update path. Defaults (1/1) reproduce the paper's
# sequential model; outputs are identical either way.
set -e
cd "$(dirname "$0")/.."
THREADS="${THREADS:-1}"
BATCH="${BATCH:-1}"
BENCH_FLAGS="--threads=$THREADS --batch=$BATCH"
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
(for b in build/bench/*; do
   [ -x "$b" ] && [ -f "$b" ] && echo "=== $b $BENCH_FLAGS ===" \
     && "$b" $BENCH_FLAGS
 done) 2>&1 | tee bench_output.txt
