#include "turboflux/baseline/graphflow.h"

#include <cassert>
#include <limits>

#include "turboflux/match/static_matcher.h"

namespace turboflux {

GraphflowEngine::GraphflowEngine(GraphflowOptions options)
    : options_(options) {}

std::string GraphflowEngine::name() const {
  return options_.semantics == MatchSemantics::kIsomorphism ? "Graphflow-iso"
                                                            : "Graphflow";
}

bool GraphflowEngine::Init(const QueryGraph& q, const Graph& g0,
                           MatchSink& sink, Deadline deadline) {
  assert(q.VertexCount() > 0 && q.EdgeCount() > 0 && q.IsConnected());
  q_ = &q;
  g_ = g0;
  m_.assign(q.VertexCount(), kNullVertex);
  mapped_.assign(q.VertexCount(), false);
  dead_ = false;
  has_updated_edge_ = false;
  stats_.Reset();
  // Initial matches of g0 (a one-off static evaluation).
  StaticMatchOptions opts;
  opts.semantics = options_.semantics;
  StaticMatcher matcher(g_, q, opts);
  if (!matcher.FindAll(sink, deadline)) {
    dead_ = true;
    return false;
  }
  return true;
}

bool GraphflowEngine::ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                  Deadline deadline) {
  assert(q_ != nullptr && !dead_);
  deadline_ = &deadline;
  if (op.IsInsert()) {
    stats_.ops_insert.Inc();
    if (g_.AddEdge(op.from, op.label, op.to)) {
      stats_.insert_evals.Inc();
      EvalUpdate(op.from, op.label, op.to, /*positive=*/true, sink);
    }
  } else {
    stats_.ops_delete.Inc();
    if (g_.HasEdge(op.from, op.label, op.to)) {
      // Negative matches are those using the edge in the pre-deletion
      // graph; evaluate first, then delete.
      stats_.delete_evals.Inc();
      EvalUpdate(op.from, op.label, op.to, /*positive=*/false, sink);
      g_.RemoveEdge(op.from, op.label, op.to);
    }
  }
  deadline_ = nullptr;
  if (deadline.ExpiredNow()) {
    dead_ = true;
    return false;
  }
  return true;
}

void GraphflowEngine::EvalUpdate(VertexId v, EdgeLabel l, VertexId v2,
                                 bool positive, MatchSink& sink) {
  has_updated_edge_ = true;
  upd_from_ = v;
  upd_label_ = l;
  upd_to_ = v2;
  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  for (const QEdge& qe : q_->edges()) {
    if (!q_->EdgeMatches(qe, g_, v, l, v2)) continue;
    if (qe.from == qe.to && v != v2) continue;
    if (iso && qe.from != qe.to && v == v2) continue;
    m_[qe.from] = v;
    m_[qe.to] = v2;
    mapped_[qe.from] = mapped_[qe.to] = true;
    // Verify every *other* query edge already fixed by the seed mapping
    // (reverse, parallel, and self-loop edges between the endpoints).
    bool seed_ok = true;
    for (const QEdge& other : q_->edges()) {
      if (other.id == qe.id) continue;
      if (m_[other.from] == kNullVertex || m_[other.to] == kNullVertex) {
        continue;
      }
      if (!g_.HasEdge(m_[other.from], other.label, m_[other.to])) {
        seed_ok = false;
        break;
      }
    }
    if (seed_ok) {
      stats_.search_seeds.Inc();
      ExtendSeed(qe.id, positive, sink);
    }
    m_[qe.from] = m_[qe.to] = kNullVertex;
    mapped_[qe.from] = mapped_[qe.to] = false;
    if (deadline_->Expired()) break;
  }
  has_updated_edge_ = false;
}

void GraphflowEngine::ExtendSeed(QEdgeId eq, bool positive, MatchSink& sink) {
  size_t matched = 0;
  for (bool b : mapped_) matched += b ? 1 : 0;
  Extend(matched, eq, positive, sink);
}

bool GraphflowEngine::EdgesToMappedOk(QVertexId u, VertexId v) const {
  for (QEdgeId e : q_->OutEdgeIds(u)) {
    const QEdge& qe = q_->edge(e);
    VertexId w = qe.to == u ? v : m_[qe.to];
    if (w == kNullVertex) continue;
    if (!g_.HasEdge(v, qe.label, w)) return false;
  }
  for (QEdgeId e : q_->InEdgeIds(u)) {
    const QEdge& qe = q_->edge(e);
    if (qe.from == u) continue;  // self-loop, already checked above
    VertexId w = m_[qe.from];
    if (w == kNullVertex) continue;
    if (!g_.HasEdge(w, qe.label, v)) return false;
  }
  return true;
}

void GraphflowEngine::Extend(size_t matched_count, QEdgeId eq, bool positive,
                             MatchSink& sink) {
  if (deadline_->Expired()) return;
  stats_.search_states.Inc();
  if (matched_count == q_->VertexCount()) {
    Report(eq, positive, sink);
    return;
  }

  // Generic Join: pick the unmapped query vertex (adjacent to a mapped
  // one) with the smallest candidate-set bound; its candidates come from
  // the smallest adjacency list among its mapped neighbours.
  QVertexId best_u = kNullQVertex;
  size_t best_size = std::numeric_limits<size_t>::max();
  bool best_out = true;  // direction of the anchor adjacency scan
  VertexId best_base = kNullVertex;
  EdgeLabel best_label = 0;

  for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
    if (mapped_[u]) continue;
    for (QEdgeId e : q_->InEdgeIds(u)) {
      const QEdge& qe = q_->edge(e);
      if (qe.from == u || !mapped_[qe.from]) continue;
      size_t size = g_.OutDegree(m_[qe.from]);
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_out = true;
        best_base = m_[qe.from];
        best_label = qe.label;
      }
    }
    for (QEdgeId e : q_->OutEdgeIds(u)) {
      const QEdge& qe = q_->edge(e);
      if (qe.to == u || !mapped_[qe.to]) continue;
      size_t size = g_.InDegree(m_[qe.to]);
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_out = false;
        best_base = m_[qe.to];
        best_label = qe.label;
      }
    }
  }
  assert(best_u != kNullQVertex);  // query is connected

  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  const std::vector<AdjEntry>& adj =
      best_out ? g_.OutEdges(best_base) : g_.InEdges(best_base);
  for (const AdjEntry& a : adj) {
    if (a.label != best_label) continue;
    VertexId x = a.other;
    if (!q_->VertexMatches(best_u, g_, x)) continue;
    if (iso && MappingContains(m_, x)) continue;
    if (!EdgesToMappedOk(best_u, x)) continue;
    m_[best_u] = x;
    mapped_[best_u] = true;
    Extend(matched_count + 1, eq, positive, sink);
    m_[best_u] = kNullVertex;
    mapped_[best_u] = false;
    if (deadline_->Expired()) return;
  }
}

void GraphflowEngine::Report(QEdgeId eq, bool positive, MatchSink& sink) {
  // Total-order duplicate elimination: among all query edges this solution
  // maps onto the updated data edge, only the maximum (insertion) /
  // minimum (deletion) one reports.
  if (has_updated_edge_) {
    for (const QEdge& qe : q_->edges()) {
      if (qe.id == eq) continue;
      if (m_[qe.from] == upd_from_ && qe.label == upd_label_ &&
          m_[qe.to] == upd_to_) {
        if (positive && qe.id > eq) return;
        if (!positive && qe.id < eq) return;
      }
    }
  }
  (positive ? stats_.matches_positive : stats_.matches_negative).Inc();
  sink.OnMatch(positive, m_);
}

}  // namespace turboflux
