#include "turboflux/baseline/graphflow.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "turboflux/common/galloping.h"
#include "turboflux/match/static_matcher.h"

namespace turboflux {

GraphflowEngine::GraphflowEngine(GraphflowOptions options)
    : options_(options) {}

std::string GraphflowEngine::name() const {
  return options_.semantics == MatchSemantics::kIsomorphism ? "Graphflow-iso"
                                                            : "Graphflow";
}

// --- Sorted adjacency mirrors ---

std::pair<const VertexId*, size_t> GraphflowEngine::LabelSpan(
    const SortedAdj& adj, EdgeLabel l) {
  auto lo = std::lower_bound(adj.labels.begin(), adj.labels.end(), l);
  auto hi = std::upper_bound(lo, adj.labels.end(), l);
  const size_t offset = static_cast<size_t>(lo - adj.labels.begin());
  return {adj.others.data() + offset, static_cast<size_t>(hi - lo)};
}

void GraphflowEngine::MirrorInsert(SortedAdj& adj, EdgeLabel l, VertexId v) {
  const size_t lo = static_cast<size_t>(
      std::lower_bound(adj.labels.begin(), adj.labels.end(), l) -
      adj.labels.begin());
  const size_t hi = static_cast<size_t>(
      std::upper_bound(adj.labels.begin() + static_cast<ptrdiff_t>(lo),
                       adj.labels.end(), l) -
      adj.labels.begin());
  const size_t pos = static_cast<size_t>(
      std::lower_bound(adj.others.begin() + static_cast<ptrdiff_t>(lo),
                       adj.others.begin() + static_cast<ptrdiff_t>(hi), v) -
      adj.others.begin());
  adj.labels.insert(adj.labels.begin() + static_cast<ptrdiff_t>(pos), l);
  adj.others.insert(adj.others.begin() + static_cast<ptrdiff_t>(pos), v);
}

void GraphflowEngine::MirrorErase(SortedAdj& adj, EdgeLabel l, VertexId v) {
  const size_t lo = static_cast<size_t>(
      std::lower_bound(adj.labels.begin(), adj.labels.end(), l) -
      adj.labels.begin());
  const size_t hi = static_cast<size_t>(
      std::upper_bound(adj.labels.begin() + static_cast<ptrdiff_t>(lo),
                       adj.labels.end(), l) -
      adj.labels.begin());
  const size_t pos = static_cast<size_t>(
      std::lower_bound(adj.others.begin() + static_cast<ptrdiff_t>(lo),
                       adj.others.begin() + static_cast<ptrdiff_t>(hi), v) -
      adj.others.begin());
  assert(pos < hi && adj.others[pos] == v && adj.labels[pos] == l);
  adj.labels.erase(adj.labels.begin() + static_cast<ptrdiff_t>(pos));
  adj.others.erase(adj.others.begin() + static_cast<ptrdiff_t>(pos));
}

void GraphflowEngine::RebuildMirrors() {
  sorted_out_.assign(g_.VertexCount(), {});
  sorted_in_.assign(g_.VertexCount(), {});
  std::vector<std::pair<EdgeLabel, VertexId>> entries;
  auto fill = [&entries](SortedAdj& adj, Graph::AdjView view) {
    entries.clear();
    entries.reserve(view.size());
    for (const AdjEntry& e : view) entries.emplace_back(e.label, e.other);
    std::sort(entries.begin(), entries.end());
    adj.labels.reserve(entries.size());
    adj.others.reserve(entries.size());
    for (const auto& [l, v] : entries) {
      adj.labels.push_back(l);
      adj.others.push_back(v);
    }
  };
  for (VertexId v = 0; v < g_.VertexCount(); ++v) {
    fill(sorted_out_[v], g_.OutEdges(v));
    fill(sorted_in_[v], g_.InEdges(v));
  }
}

bool GraphflowEngine::Init(const QueryGraph& q, const Graph& g0,
                           MatchSink& sink, Deadline deadline) {
  assert(q.VertexCount() > 0 && q.EdgeCount() > 0 && q.IsConnected());
  q_ = &q;
  g_ = g0;
  RebuildMirrors();
  cand_bufs_.assign(q.VertexCount() + 1, {});
  m_.assign(q.VertexCount(), kNullVertex);
  mapped_.assign(q.VertexCount(), false);
  dead_ = false;
  has_updated_edge_ = false;
  stats_.Reset();
  // Initial matches of g0 (a one-off static evaluation).
  StaticMatchOptions opts;
  opts.semantics = options_.semantics;
  StaticMatcher matcher(g_, q, opts);
  if (!matcher.FindAll(sink, deadline)) {
    dead_ = true;
    return false;
  }
  return true;
}

bool GraphflowEngine::ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                  Deadline deadline) {
  assert(q_ != nullptr && !dead_);
  deadline_ = &deadline;
  if (op.IsInsert()) {
    stats_.ops_insert.Inc();
    if (g_.AddEdge(op.from, op.label, op.to)) {
      MirrorInsert(sorted_out_[op.from], op.label, op.to);
      MirrorInsert(sorted_in_[op.to], op.label, op.from);
      stats_.insert_evals.Inc();
      EvalUpdate(op.from, op.label, op.to, /*positive=*/true, sink);
    }
  } else {
    stats_.ops_delete.Inc();
    if (g_.HasEdge(op.from, op.label, op.to)) {
      // Negative matches are those using the edge in the pre-deletion
      // graph; evaluate first, then delete (mirrors included).
      stats_.delete_evals.Inc();
      EvalUpdate(op.from, op.label, op.to, /*positive=*/false, sink);
      g_.RemoveEdge(op.from, op.label, op.to);
      MirrorErase(sorted_out_[op.from], op.label, op.to);
      MirrorErase(sorted_in_[op.to], op.label, op.from);
    }
  }
  deadline_ = nullptr;
  if (deadline.ExpiredNow()) {
    dead_ = true;
    return false;
  }
  return true;
}

void GraphflowEngine::EvalUpdate(VertexId v, EdgeLabel l, VertexId v2,
                                 bool positive, MatchSink& sink) {
  has_updated_edge_ = true;
  upd_from_ = v;
  upd_label_ = l;
  upd_to_ = v2;
  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  for (const QEdge& qe : q_->edges()) {
    if (!q_->EdgeMatches(qe, g_, v, l, v2)) continue;
    if (qe.from == qe.to && v != v2) continue;
    if (iso && qe.from != qe.to && v == v2) continue;
    m_[qe.from] = v;
    m_[qe.to] = v2;
    mapped_[qe.from] = mapped_[qe.to] = true;
    // Verify every *other* query edge already fixed by the seed mapping
    // (reverse, parallel, and self-loop edges between the endpoints).
    if (MappedEdgesSatisfied(*q_, g_, m_, qe.id)) {
      stats_.search_seeds.Inc();
      ExtendSeed(qe.id, positive, sink);
    }
    m_[qe.from] = m_[qe.to] = kNullVertex;
    mapped_[qe.from] = mapped_[qe.to] = false;
    if (deadline_->Expired()) break;
  }
  has_updated_edge_ = false;
}

void GraphflowEngine::ExtendSeed(QEdgeId eq, bool positive, MatchSink& sink) {
  size_t matched = 0;
  for (bool b : mapped_) matched += b ? 1 : 0;
  Extend(matched, eq, positive, sink);
}

bool GraphflowEngine::SelfLoopsOk(QVertexId u, VertexId v) const {
  // Non-self constraints to mapped vertices are enforced by the candidate
  // intersection in Extend; self-loop query edges remain per-candidate.
  for (QEdgeId e : q_->OutEdgeIds(u)) {
    const QEdge& qe = q_->edge(e);
    if (qe.to == u && !g_.HasEdge(v, qe.label, v)) return false;
  }
  return true;
}

void GraphflowEngine::Extend(size_t matched_count, QEdgeId eq, bool positive,
                             MatchSink& sink) {
  if (deadline_->Expired()) return;
  stats_.search_states.Inc();
  if (matched_count == q_->VertexCount()) {
    Report(eq, positive, sink);
    return;
  }

  // Generic Join: pick the unmapped query vertex (adjacent to a mapped
  // one) with the smallest candidate-set bound. The sorted mirrors make
  // the bound label-exact (the run length, not the whole degree).
  QVertexId best_u = kNullQVertex;
  QEdgeId best_e = 0;  // the anchor's query edge; skipped when filtering
  size_t best_size = std::numeric_limits<size_t>::max();
  bool best_out = true;  // direction of the anchor adjacency run
  VertexId best_base = kNullVertex;
  EdgeLabel best_label = 0;

  for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
    if (mapped_[u]) continue;
    for (QEdgeId e : q_->InEdgeIds(u)) {
      const QEdge& qe = q_->edge(e);
      if (qe.from == u || !mapped_[qe.from]) continue;
      size_t size = LabelSpan(sorted_out_[m_[qe.from]], qe.label).second;
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_e = e;
        best_out = true;
        best_base = m_[qe.from];
        best_label = qe.label;
      }
    }
    for (QEdgeId e : q_->OutEdgeIds(u)) {
      const QEdge& qe = q_->edge(e);
      if (qe.to == u || !mapped_[qe.to]) continue;
      size_t size = LabelSpan(sorted_in_[m_[qe.to]], qe.label).second;
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_e = e;
        best_out = false;
        best_base = m_[qe.to];
        best_label = qe.label;
      }
    }
  }
  assert(best_u != kNullQVertex);  // query is connected

  // Candidate set: the anchor's sorted run, narrowed by galloping
  // intersection against every other mapped neighbour's run — replacing
  // the per-candidate HasEdge probes of the scan-and-filter approach.
  std::vector<VertexId>& buf = cand_bufs_[matched_count];
  {
    auto [data, n] = LabelSpan(
        best_out ? sorted_out_[best_base] : sorted_in_[best_base],
        best_label);
    buf.assign(data, data + n);
  }
  size_t ncand = buf.size();
  for (QEdgeId e : q_->InEdgeIds(best_u)) {
    if (ncand == 0) break;
    const QEdge& qe = q_->edge(e);
    if (e == best_e || qe.from == best_u || !mapped_[qe.from]) continue;
    auto [data, n] = LabelSpan(sorted_out_[m_[qe.from]], qe.label);
    ncand = GallopFilterInPlace(buf.data(), ncand, data, n);
  }
  for (QEdgeId e : q_->OutEdgeIds(best_u)) {
    if (ncand == 0) break;
    const QEdge& qe = q_->edge(e);
    if (e == best_e || qe.to == best_u || !mapped_[qe.to]) continue;
    auto [data, n] = LabelSpan(sorted_in_[m_[qe.to]], qe.label);
    ncand = GallopFilterInPlace(buf.data(), ncand, data, n);
  }

  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  for (size_t i = 0; i < ncand; ++i) {
    const VertexId x = buf[i];
    if (!q_->VertexMatches(best_u, g_, x)) continue;
    if (iso && MappingContains(m_, x)) continue;
    if (!SelfLoopsOk(best_u, x)) continue;
    m_[best_u] = x;
    mapped_[best_u] = true;
    Extend(matched_count + 1, eq, positive, sink);
    m_[best_u] = kNullVertex;
    mapped_[best_u] = false;
    if (deadline_->Expired()) return;
  }
}

void GraphflowEngine::Report(QEdgeId eq, bool positive, MatchSink& sink) {
  // Total-order duplicate elimination: among all query edges this solution
  // maps onto the updated data edge, only the maximum (insertion) /
  // minimum (deletion) one reports.
  if (has_updated_edge_) {
    for (const QEdge& qe : q_->edges()) {
      if (qe.id == eq) continue;
      if (m_[qe.from] == upd_from_ && qe.label == upd_label_ &&
          m_[qe.to] == upd_to_) {
        if (positive && qe.id > eq) return;
        if (!positive && qe.id < eq) return;
      }
    }
  }
  (positive ? stats_.matches_positive : stats_.matches_negative).Inc();
  sink.OnMatch(positive, m_);
}

}  // namespace turboflux
