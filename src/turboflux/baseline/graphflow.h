#ifndef TURBOFLUX_BASELINE_GRAPHFLOW_H_
#define TURBOFLUX_BASELINE_GRAPHFLOW_H_

#include <string>
#include <utility>
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/harness/engine.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

struct GraphflowOptions {
  MatchSemantics semantics = MatchSemantics::kHomomorphism;
};

/// The Graphflow baseline (Kankanamge et al., SIGMOD'17; Section 2.2):
/// stateless delta evaluation by worst-case-optimal join. For each query
/// edge (u, u') matching the updated data edge (v, v'), it evaluates
/// subgraph matching from the partial solution {(u,v), (u',v')} by
/// extending one query vertex at a time; the candidate set of each
/// extension is the intersection of the adjacency lists of its already
/// matched neighbours (Generic Join). No intermediate results are
/// maintained, so every update pays the full join cost, but storage is
/// zero.
///
/// Deletions are evaluated against the pre-deletion graph, producing
/// negative matches. Duplicate elimination uses the same total order over
/// query edges as TurboFlux.
class GraphflowEngine : public ContinuousEngine {
 public:
  explicit GraphflowEngine(GraphflowOptions options = {});

  bool Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
            Deadline deadline) override;
  bool ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                   Deadline deadline) override;
  size_t IntermediateSize() const override { return 0; }
  std::string name() const override;
  const obs::EngineStats* engine_stats() const override { return &stats_; }

  const Graph& graph() const { return g_; }

 private:
  /// Sorted adjacency mirror of one vertex/direction (DESIGN.md §3.11):
  /// parallel (label, neighbor) arrays sorted by (label, neighbor), so a
  /// label's neighbors form one contiguous ascending VertexId run directly
  /// usable by the galloping intersection primitives. (label, neighbor)
  /// pairs are unique per direction — Graph rejects duplicate edges.
  struct SortedAdj {
    std::vector<EdgeLabel> labels;
    std::vector<VertexId> others;
  };

  /// The contiguous sorted neighbor run of `adj` under label `l`.
  static std::pair<const VertexId*, size_t> LabelSpan(const SortedAdj& adj,
                                                      EdgeLabel l);
  static void MirrorInsert(SortedAdj& adj, EdgeLabel l, VertexId v);
  static void MirrorErase(SortedAdj& adj, EdgeLabel l, VertexId v);
  /// Rebuilds both mirrors from g_ (Init).
  void RebuildMirrors();

  /// Runs one seeded Generic Join: m_ already maps qe's endpoints.
  void ExtendSeed(QEdgeId eq, bool positive, MatchSink& sink);
  void Extend(size_t matched_count, QEdgeId eq, bool positive,
              MatchSink& sink);
  bool SelfLoopsOk(QVertexId u, VertexId v) const;
  void Report(QEdgeId eq, bool positive, MatchSink& sink);
  void EvalUpdate(VertexId v, EdgeLabel l, VertexId v2, bool positive,
                  MatchSink& sink);

  GraphflowOptions options_;
  const QueryGraph* q_ = nullptr;
  Graph g_;
  // Sorted mirrors of g_'s adjacency, maintained under every update; the
  // extension step reads candidates from these, never from g_ directly.
  std::vector<SortedAdj> sorted_out_;
  std::vector<SortedAdj> sorted_in_;
  // Per-depth candidate buffers (index = matched_count) so the recursive
  // intersection never allocates once warm.
  std::vector<std::vector<VertexId>> cand_bufs_;
  Mapping m_;
  std::vector<bool> mapped_;

  VertexId upd_from_ = kNullVertex;
  EdgeLabel upd_label_ = 0;
  VertexId upd_to_ = kNullVertex;
  bool has_updated_edge_ = false;

  Deadline* deadline_ = nullptr;
  bool dead_ = false;
  obs::EngineStats stats_;  // stream-phase counters; Init matches are not
                            // seeded searches and are left uncounted
};

}  // namespace turboflux

#endif  // TURBOFLUX_BASELINE_GRAPHFLOW_H_
