#include "turboflux/baseline/inc_iso_mat.h"

#include <cassert>
#include <deque>
#include <unordered_set>

#include "turboflux/match/static_matcher.h"

namespace turboflux {

IncIsoMatEngine::IncIsoMatEngine(IncIsoMatOptions options)
    : options_(options) {}

std::string IncIsoMatEngine::name() const {
  return options_.semantics == MatchSemantics::kIsomorphism ? "IncIsoMat-iso"
                                                            : "IncIsoMat";
}

bool IncIsoMatEngine::Init(const QueryGraph& q, const Graph& g0,
                           MatchSink& sink, Deadline deadline) {
  assert(q.VertexCount() > 0 && q.EdgeCount() > 0 && q.IsConnected());
  q_ = &q;
  g_ = g0;
  diameter_ = q.UndirectedDiameter();
  dead_ = false;
  stats_.Reset();
  StaticMatchOptions opts;
  opts.semantics = options_.semantics;
  StaticMatcher matcher(g_, q, opts);
  if (!matcher.FindAll(sink, deadline)) {
    dead_ = true;
    return false;
  }
  return true;
}

IncIsoMatEngine::ExtractedSubgraph IncIsoMatEngine::ExtractAffected(
    VertexId v, VertexId v2) const {
  ExtractedSubgraph sub;
  // Vertices reachable within the query diameter from either endpoint,
  // pruned to those whose labels can match some query vertex (the paper's
  // label-based reduction of g').
  auto can_match = [&](VertexId x) {
    for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
      if (q_->VertexMatches(u, g_, x)) return true;
    }
    return false;
  };

  std::vector<size_t> dist(g_.VertexCount(), SIZE_MAX);
  std::deque<VertexId> queue;
  for (VertexId s : {v, v2}) {
    if (dist[s] == SIZE_MAX) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  std::vector<VertexId> included;
  while (!queue.empty()) {
    VertexId x = queue.front();
    queue.pop_front();
    if (can_match(x)) included.push_back(x);
    if (dist[x] == diameter_) continue;
    auto visit = [&](VertexId y) {
      if (dist[y] == SIZE_MAX) {
        dist[y] = dist[x] + 1;
        queue.push_back(y);
      }
    };
    for (const AdjEntry& e : g_.OutEdges(x)) visit(e.other);
    for (const AdjEntry& e : g_.InEdges(x)) visit(e.other);
  }

  std::vector<VertexId> to_sub(g_.VertexCount(), kNullVertex);
  for (VertexId x : included) {
    to_sub[x] = sub.graph.AddVertex(g_.labels(x));
    sub.original_id.push_back(x);
  }
  for (VertexId x : included) {
    for (const AdjEntry& e : g_.OutEdges(x)) {
      if (to_sub[e.other] != kNullVertex) {
        sub.graph.AddEdge(to_sub[x], e.label, to_sub[e.other]);
      }
    }
  }
  return sub;
}

bool IncIsoMatEngine::DiffAndReport(const ExtractedSubgraph& sub,
                                    VertexId sub_from, EdgeLabel label,
                                    VertexId sub_to, bool positive,
                                    MatchSink& sink, Deadline& deadline) {
  StaticMatchOptions opts;
  opts.semantics = options_.semantics;

  // Matches without the updated edge.
  Graph without = sub.graph;
  without.RemoveEdge(sub_from, label, sub_to);
  CollectingSink before;
  StaticMatcher matcher_without(without, *q_, opts);
  if (!matcher_without.FindAll(before, deadline)) return false;

  std::unordered_set<uint64_t> before_hashes;
  std::vector<Mapping> before_list;
  for (const auto& r : before.records()) {
    before_hashes.insert(HashMapping(r.mapping));
    before_list.push_back(r.mapping);
  }

  // Matches with the updated edge; emit those absent before (exact
  // comparison behind the hash filter).
  CollectingSink after;
  StaticMatcher matcher_with(sub.graph, *q_, opts);
  if (!matcher_with.FindAll(after, deadline)) return false;

  stats_.search_seeds.Inc();
  Mapping remapped(q_->VertexCount(), kNullVertex);
  for (const auto& r : after.records()) {
    uint64_t h = HashMapping(r.mapping);
    bool seen = false;
    if (before_hashes.count(h) != 0) {
      for (const Mapping& b : before_list) {
        if (b == r.mapping) {
          seen = true;
          break;
        }
      }
    }
    if (seen) continue;
    for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
      remapped[u] = sub.original_id[r.mapping[u]];
    }
    (positive ? stats_.matches_positive : stats_.matches_negative).Inc();
    sink.OnMatch(positive, remapped);
  }
  return true;
}

bool IncIsoMatEngine::ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                  Deadline deadline) {
  assert(q_ != nullptr && !dead_);
  // An update whose edge cannot match any query edge cannot change M.
  auto relevant = [&]() {
    for (const QEdge& qe : q_->edges()) {
      if (q_->EdgeMatches(qe, g_, op.from, op.label, op.to)) return true;
    }
    return false;
  };

  if (op.IsInsert()) {
    stats_.ops_insert.Inc();
    if (!g_.AddEdge(op.from, op.label, op.to)) return true;  // duplicate
    if (!relevant()) return true;
    stats_.insert_evals.Inc();
    ExtractedSubgraph sub = ExtractAffected(op.from, op.to);
    std::vector<VertexId> to_sub(g_.VertexCount(), kNullVertex);
    for (VertexId i = 0; i < sub.original_id.size(); ++i) {
      to_sub[sub.original_id[i]] = i;
    }
    // Both endpoints matched the label filter (the edge matches a query
    // edge), so they are present in the subgraph.
    if (!DiffAndReport(sub, to_sub[op.from], op.label, to_sub[op.to],
                       /*positive=*/true, sink, deadline)) {
      dead_ = true;
      return false;
    }
  } else {
    stats_.ops_delete.Inc();
    if (!g_.HasEdge(op.from, op.label, op.to)) return true;
    if (relevant()) {
      stats_.delete_evals.Inc();
      ExtractedSubgraph sub = ExtractAffected(op.from, op.to);
      std::vector<VertexId> to_sub(g_.VertexCount(), kNullVertex);
      for (VertexId i = 0; i < sub.original_id.size(); ++i) {
        to_sub[sub.original_id[i]] = i;
      }
      if (!DiffAndReport(sub, to_sub[op.from], op.label, to_sub[op.to],
                         /*positive=*/false, sink, deadline)) {
        dead_ = true;
        return false;
      }
    }
    g_.RemoveEdge(op.from, op.label, op.to);
  }
  return true;
}

}  // namespace turboflux
