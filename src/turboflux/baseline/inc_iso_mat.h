#ifndef TURBOFLUX_BASELINE_INC_ISO_MAT_H_
#define TURBOFLUX_BASELINE_INC_ISO_MAT_H_

#include <string>
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/harness/engine.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

struct IncIsoMatOptions {
  MatchSemantics semantics = MatchSemantics::kHomomorphism;
};

/// The IncIsoMat baseline (Fan et al., SIGMOD'11; Section 2.2): a
/// repeated-search method with no maintained state. For each update on
/// edge (v, v'), it extracts the affected subgraph g' — every data vertex
/// within the query's undirected diameter of v or v' (pruned to vertices
/// whose labels can match some query vertex), plus the edges among them —
/// then runs full subgraph matching on g' with and without the updated
/// edge and reports the set difference.
class IncIsoMatEngine : public ContinuousEngine {
 public:
  explicit IncIsoMatEngine(IncIsoMatOptions options = {});

  bool Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
            Deadline deadline) override;
  bool ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                   Deadline deadline) override;
  size_t IntermediateSize() const override { return 0; }
  std::string name() const override;
  const obs::EngineStats* engine_stats() const override { return &stats_; }

  const Graph& graph() const { return g_; }

 private:
  /// Extracts the diameter-bounded affected subgraph around {v, v2}.
  /// Returns the subgraph plus, per subgraph vertex, its original id.
  struct ExtractedSubgraph {
    Graph graph;
    std::vector<VertexId> original_id;
  };
  ExtractedSubgraph ExtractAffected(VertexId v, VertexId v2) const;

  /// Emits M(with) - M(without) into `sink` with the given sign, mapping
  /// vertex ids back to the full graph. Returns false on deadline expiry.
  bool DiffAndReport(const ExtractedSubgraph& sub, VertexId sub_from,
                     EdgeLabel label, VertexId sub_to, bool positive,
                     MatchSink& sink, Deadline& deadline);

  IncIsoMatOptions options_;
  const QueryGraph* q_ = nullptr;
  Graph g_;
  size_t diameter_ = 0;

  bool dead_ = false;
  obs::EngineStats stats_;  // search_seeds = affected-subgraph evaluations;
                            // per-state counts stay 0 (StaticMatcher is
                            // opaque to the engine)
};

}  // namespace turboflux

#endif  // TURBOFLUX_BASELINE_INC_ISO_MAT_H_
