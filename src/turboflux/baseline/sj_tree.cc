#include "turboflux/baseline/sj_tree.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "turboflux/query/query_stats.h"

namespace turboflux {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

SjTreeEngine::SjTreeEngine(SjTreeOptions options) : options_(options) {}

std::string SjTreeEngine::name() const {
  return options_.semantics == MatchSemantics::kIsomorphism ? "SJ-Tree-iso"
                                                            : "SJ-Tree";
}

uint64_t SjTreeEngine::KeyHash(const Tuple& t,
                               const std::vector<QVertexId>& key) const {
  uint64_t h = 0x12345678;
  for (QVertexId u : key) h = HashCombine(h, t[u]);
  return h;
}

uint64_t SjTreeEngine::TupleHash(const Tuple& t, uint64_t cover_mask) const {
  uint64_t h = cover_mask;
  for (QVertexId u = 0; u < t.size(); ++u) {
    if ((cover_mask >> u) & 1) h = HashCombine(h, t[u]);
  }
  return h;
}

bool SjTreeEngine::IsDuplicate(const Node& node, const Tuple& t,
                               uint64_t hash) const {
  auto range = node.dedup.equal_range(hash);
  for (auto it = range.first; it != range.second; ++it) {
    const Tuple& other = node.tuples[it->second];
    bool equal = true;
    for (QVertexId u = 0; u < t.size() && equal; ++u) {
      if ((node.cover_mask >> u) & 1) equal = t[u] == other[u];
    }
    if (equal) return true;
  }
  return false;
}

bool SjTreeEngine::Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
                        Deadline deadline) {
  assert(q.VertexCount() > 0 && q.EdgeCount() > 0 && q.IsConnected());
  q_ = &q;
  dead_ = false;
  budget_blown_ = false;
  stored_tuples_ = 0;
  stored_vertex_slots_ = 0;
  stats_.Reset();

  // Selectivity-based left-deep decomposition: order query edges by
  // ascending matching-data-edge count, keeping every prefix connected.
  QueryStats stats = ComputeQueryStats(q, g0);
  const size_t m = q.EdgeCount();
  edge_order_.clear();
  std::vector<bool> used(m, false);
  uint64_t covered = 0;
  for (size_t step = 0; step < m; ++step) {
    QEdgeId best = kNullQEdge;
    for (QEdgeId e = 0; e < m; ++e) {
      if (used[e]) continue;
      const QEdge& qe = q.edge(e);
      bool connected = covered == 0 || ((covered >> qe.from) & 1) ||
                       ((covered >> qe.to) & 1);
      if (!connected) continue;
      if (best == kNullQEdge ||
          stats.edge_matches[e] < stats.edge_matches[best]) {
        best = e;
      }
    }
    assert(best != kNullQEdge);
    used[best] = true;
    edge_order_.push_back(best);
    covered |= (uint64_t{1} << q.edge(best).from);
    covered |= (uint64_t{1} << q.edge(best).to);
  }

  // Covers and join keys. prefixes_[i] covers edges e_0..e_i; its join key
  // (shared with leaves_[i+1]) is the intersection of that cover with
  // e_{i+1}'s endpoints.
  leaves_.assign(m, Node{});
  prefixes_.assign(m, Node{});
  uint64_t prefix_cover = 0;
  for (size_t i = 0; i < m; ++i) {
    const QEdge& qe = q.edge(edge_order_[i]);
    uint64_t edge_cover =
        (uint64_t{1} << qe.from) | (uint64_t{1} << qe.to);
    leaves_[i].cover_mask = edge_cover;
    prefix_cover |= edge_cover;
    prefixes_[i].cover_mask = prefix_cover;
  }
  for (size_t i = 0; i + 1 < m; ++i) {
    const QEdge& next = q.edge(edge_order_[i + 1]);
    std::vector<QVertexId> key;
    uint64_t shared = prefixes_[i].cover_mask & leaves_[i + 1].cover_mask;
    for (QVertexId u = 0; u < q.VertexCount(); ++u) {
      if ((shared >> u) & 1) key.push_back(u);
    }
    assert(!key.empty());  // prefixes are connected
    (void)next;
    prefixes_[i].join_key = key;
    leaves_[i + 1].join_key = key;
  }

  // Materialize g0 by replaying its edges as insertions; matches of g0
  // surface as (initial) positive matches.
  g_ = Graph();
  for (VertexId v = 0; v < g0.VertexCount(); ++v) g_.AddVertex(g0.labels(v));
  deadline_ = &deadline;
  for (VertexId v = 0; v < g0.VertexCount() && !dead_; ++v) {
    for (const AdjEntry& e : g0.OutEdges(v)) {
      g_.AddEdge(v, e.label, e.other);
      UpdateOp op = UpdateOp::Insert(v, e.label, e.other);
      for (size_t i = 0; i < edge_order_.size(); ++i) {
        const QEdge& qe = q.edge(edge_order_[i]);
        if (!q.EdgeMatches(qe, g_, op.from, op.label, op.to)) continue;
        if (qe.from == qe.to && op.from != op.to) continue;
        Tuple t(q.VertexCount(), kNullVertex);
        t[qe.from] = op.from;
        t[qe.to] = op.to;
        if (options_.semantics == MatchSemantics::kIsomorphism &&
            qe.from != qe.to && op.from == op.to) {
          continue;
        }
        if (!InsertEdgeMatch(i, t, sink)) {
          dead_ = true;
          break;
        }
      }
      if (dead_) break;
    }
  }
  deadline_ = nullptr;
  stats_.intermediate_size.Set(stored_vertex_slots_);
  stats_.peak_intermediate.SetMax(stored_vertex_slots_);
  return !dead_;
}

bool SjTreeEngine::ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                               Deadline deadline) {
  assert(q_ != nullptr && !dead_);
  if (!op.IsInsert()) {
    // The original SJ-Tree has no deletion support; the runner screens
    // streams with SupportsDeletion(), but fail safe here too.
    stats_.ops_delete.Inc();
    dead_ = true;
    return false;
  }
  stats_.ops_insert.Inc();
  if (!g_.AddEdge(op.from, op.label, op.to)) return true;  // duplicate
  stats_.insert_evals.Inc();
  deadline_ = &deadline;
  for (size_t i = 0; i < edge_order_.size(); ++i) {
    const QEdge& qe = q_->edge(edge_order_[i]);
    if (!q_->EdgeMatches(qe, g_, op.from, op.label, op.to)) continue;
    if (qe.from == qe.to && op.from != op.to) continue;
    if (options_.semantics == MatchSemantics::kIsomorphism &&
        qe.from != qe.to && op.from == op.to) {
      continue;
    }
    Tuple t(q_->VertexCount(), kNullVertex);
    t[qe.from] = op.from;
    t[qe.to] = op.to;
    if (!InsertEdgeMatch(i, t, sink)) {
      dead_ = true;
      break;
    }
  }
  deadline_ = nullptr;
  stats_.intermediate_size.Set(stored_vertex_slots_);
  stats_.peak_intermediate.SetMax(stored_vertex_slots_);
  return !dead_;
}

bool SjTreeEngine::CheckBudget() {
  if (deadline_ != nullptr && deadline_->Expired()) return false;
  if (options_.max_tuples != 0 && stored_tuples_ > options_.max_tuples) {
    budget_blown_ = true;
    return false;
  }
  return true;
}

bool SjTreeEngine::InsertEdgeMatch(size_t slot, const Tuple& t,
                                   MatchSink& sink) {
  if (!CheckBudget()) return false;
  stats_.search_seeds.Inc();
  if (slot == 0) return AddToPrefix(0, t, sink);

  Node& leaf = leaves_[slot];
  // Generate-and-discard: skip duplicate leaf tuples.
  uint64_t th = TupleHash(t, leaf.cover_mask);
  if (IsDuplicate(leaf, t, th)) return true;
  leaf.dedup.emplace(th, leaf.tuples.size());
  leaf.tuples.push_back(t);
  leaf.index.emplace(KeyHash(t, leaf.join_key), leaf.tuples.size() - 1);
  ++stored_tuples_;
  stored_vertex_slots_ +=
      static_cast<size_t>(std::popcount(leaf.cover_mask));

  // Join the new leaf tuple with the sibling prefix slot-1.
  Node& sibling = prefixes_[slot - 1];
  uint64_t kh = KeyHash(t, leaf.join_key);
  auto range = sibling.index.equal_range(kh);
  // Collect candidate indices first: AddToPrefix can grow sibling tables
  // at other slots but not this one (cascades only go upward); still,
  // snapshot for clarity.
  std::vector<size_t> candidates;
  for (auto it = range.first; it != range.second; ++it) {
    candidates.push_back(it->second);
  }
  for (size_t idx : candidates) {
    if (!MergeAndDescend(slot, sibling.tuples[idx], t, sink)) return false;
  }
  return true;
}

bool SjTreeEngine::MergeAndDescend(size_t prefix_idx, const Tuple& a,
                                   const Tuple& b, MatchSink& sink) {
  stats_.search_states.Inc();
  // Verify consistency on the overlap and merge.
  Tuple merged(q_->VertexCount(), kNullVertex);
  for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
    VertexId av = a[u];
    VertexId bv = b[u];
    if (av != kNullVertex && bv != kNullVertex && av != bv) return true;
    merged[u] = av != kNullVertex ? av : bv;
  }
  if (options_.semantics == MatchSemantics::kIsomorphism) {
    for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
      if (merged[u] == kNullVertex) continue;
      for (QVertexId w = u + 1; w < q_->VertexCount(); ++w) {
        if (merged[w] == merged[u]) return true;
      }
    }
  }
  return AddToPrefix(prefix_idx, std::move(merged), sink);
}

bool SjTreeEngine::AddToPrefix(size_t i, Tuple t, MatchSink& sink) {
  if (!CheckBudget()) return false;
  Node& node = prefixes_[i];
  uint64_t th = TupleHash(t, node.cover_mask);
  if (IsDuplicate(node, t, th)) return true;  // generate-and-discard
  node.dedup.emplace(th, node.tuples.size());

  const bool is_root = i + 1 == prefixes_.size();
  if (is_root) {
    // Complete solution. The root table is still materialized (SJ-Tree
    // stores results at every node).
    stats_.matches_positive.Inc();
    sink.OnMatch(true, t);
  }
  node.tuples.push_back(t);
  if (!is_root) {
    node.index.emplace(KeyHash(t, node.join_key), node.tuples.size() - 1);
  }
  ++stored_tuples_;
  stored_vertex_slots_ +=
      static_cast<size_t>(std::popcount(node.cover_mask));
  if (is_root) return true;

  // Cascade: join the new prefix tuple with the next leaf.
  Node& next_leaf = leaves_[i + 1];
  uint64_t kh = KeyHash(node.tuples.back(), node.join_key);
  auto range = next_leaf.index.equal_range(kh);
  std::vector<size_t> candidates;
  for (auto it = range.first; it != range.second; ++it) {
    candidates.push_back(it->second);
  }
  const Tuple base = node.tuples.back();  // copy: node.tuples may grow
  for (size_t idx : candidates) {
    if (!MergeAndDescend(i + 1, base, next_leaf.tuples[idx], sink)) {
      return false;
    }
  }
  return true;
}

}  // namespace turboflux
