#ifndef TURBOFLUX_BASELINE_SJ_TREE_H_
#define TURBOFLUX_BASELINE_SJ_TREE_H_

#include <cstdint>
#include <string>
#include <unordered_map>  // tfx-lint: allow(hot-path-map): SJ-tree baseline fidelity
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/harness/engine.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

struct SjTreeOptions {
  MatchSemantics semantics = MatchSemantics::kHomomorphism;
  /// Hard cap on stored partial-solution tuples, a memory fuse for the
  /// baseline's notorious intermediate-result blow-up (0 = unlimited).
  /// Hitting the cap makes the current ApplyUpdate report a timeout.
  size_t max_tuples = 0;
};

/// The SJ-Tree baseline (Choudhury et al., EDBT'15; Section 2.2): a
/// left-deep subgraph-join tree. The query's edges are ordered by
/// selectivity into a connected sequence e_0..e_{m-1}; leaf node i
/// materializes all data edges matching e_i, and prefix node i
/// materializes all partial solutions of the subquery {e_0..e_i}. A new
/// data edge matching leaf i joins with prefix i-1's hash table; each new
/// prefix-i tuple then joins with leaf i+1's table, cascading to the root,
/// whose new tuples are the positive matches.
///
/// Storage is the sum over nodes of (#tuples x #query vertices covered),
/// the metric Figures 6b/7b report. Duplicate partial solutions are
/// discarded before insertion (the paper's generate-and-discard).
///
/// The original system supports insertions only (Appendix B.2), so
/// SupportsDeletion() is false.
class SjTreeEngine : public ContinuousEngine {
 public:
  explicit SjTreeEngine(SjTreeOptions options = {});

  bool Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
            Deadline deadline) override;
  bool ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                   Deadline deadline) override;
  size_t IntermediateSize() const override { return stored_vertex_slots_; }
  bool SupportsDeletion() const override { return false; }
  std::string name() const override;
  const obs::EngineStats* engine_stats() const override { return &stats_; }

  const Graph& graph() const { return g_; }
  /// The selectivity-ordered query-edge sequence (for tests).
  const std::vector<QEdgeId>& edge_order() const { return edge_order_; }
  size_t StoredTuples() const { return stored_tuples_; }

 private:
  /// A partial solution: mapping restricted to the node's cover
  /// (kNullVertex elsewhere), stored as a full |V(q)|-wide row.
  using Tuple = std::vector<VertexId>;

  struct Node {
    uint64_t cover_mask = 0;            // query vertices covered
    std::vector<QVertexId> join_key;    // key vertices shared with sibling
    std::vector<Tuple> tuples;
    std::unordered_multimap<uint64_t, size_t> index;  // key hash -> tuple idx
    // Generate-and-discard support: tuple hash -> tuple indices, verified
    // by exact comparison (a hash collision must not discard a distinct
    // tuple).
    std::unordered_multimap<uint64_t, size_t> dedup;
  };

  uint64_t KeyHash(const Tuple& t, const std::vector<QVertexId>& key) const;
  uint64_t TupleHash(const Tuple& t, uint64_t cover_mask) const;
  bool IsDuplicate(const Node& node, const Tuple& t, uint64_t hash) const;

  bool InsertEdgeMatch(size_t slot, const Tuple& t, MatchSink& sink);
  bool AddToPrefix(size_t i, Tuple t, MatchSink& sink);
  bool MergeAndDescend(size_t prefix_idx, const Tuple& a, const Tuple& b,
                       MatchSink& sink);
  bool CheckBudget();

  SjTreeOptions options_;
  const QueryGraph* q_ = nullptr;
  Graph g_;
  std::vector<QEdgeId> edge_order_;   // e_0..e_{m-1}, connected prefixes
  std::vector<Node> leaves_;          // per slot i: matches of edge e_i
  std::vector<Node> prefixes_;        // per slot i: solutions of e_0..e_i
  size_t stored_tuples_ = 0;
  size_t stored_vertex_slots_ = 0;

  Deadline* deadline_ = nullptr;
  bool dead_ = false;
  bool budget_blown_ = false;
  obs::EngineStats stats_;  // search_seeds = matching leaf insertions,
                            // search_states = join attempts
};

}  // namespace turboflux

#endif  // TURBOFLUX_BASELINE_SJ_TREE_H_
