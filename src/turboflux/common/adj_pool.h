#ifndef TURBOFLUX_COMMON_ADJ_POOL_H_
#define TURBOFLUX_COMMON_ADJ_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace turboflux {

/// A lightweight read-only view over a contiguous run of `T` — what
/// AdjPool hands out instead of a `const std::vector<T>&`. Supports the
/// subset of the vector API the engine's read paths use (range-for,
/// size/empty, indexing, equality), so call sites compile unchanged.
///
/// Lifetime: a Span is invalidated by ANY mutation of the owning pool
/// (push may relocate the list, and compaction moves every list). The
/// engine's evaluation paths only read the graph between mutations — data
/// graph updates happen strictly at op boundaries, and `ApplyBatch`
/// phase-1 replicas own private copies — so holding a Span across one
/// evaluation is safe by the same argument that made the old
/// `const std::vector&` returns safe.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit from a vector, so oracle/test code can compare directly.
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  friend bool operator==(const Span& a, const Span& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// A CSR-style pool of growable lists backed by one contiguous slab
/// (DESIGN.md §3.11). Each list is a {offset, size, capacity} span into
/// the slab; appends are O(1) amortized (a full list relocates to the
/// slab tail with doubled capacity, leaving its old span as a dead hole),
/// removals are O(size) swap-with-last or order-preserving erases, and an
/// epoch-based compaction rebuilds the slab — preserving per-list entry
/// order exactly — whenever dead+slack space outweighs live entries, so
/// memory stays bounded under delete-heavy streams.
///
/// Entry order within a list is exactly the order produced by the same
/// sequence of PushBack/SwapRemove/ErasePreserving calls on a
/// `std::vector<T>` — compaction never reorders — which is what keeps
/// Graph::Serialize byte-identical to the old vector-of-vectors layout.
template <typename T>
class AdjPool {
 public:
  AdjPool() = default;

  /// Appends a new empty list; returns its dense index.
  size_t AddList() {
    spans_.push_back(ListSpan{0, 0, 0});
    return spans_.size() - 1;
  }

  size_t ListCount() const { return spans_.size(); }
  size_t Size(size_t list) const { return spans_[list].size; }
  bool Empty(size_t list) const { return spans_[list].size == 0; }

  Span<T> View(size_t list) const {
    const ListSpan& s = spans_[list];
    return Span<T>(slab_.data() + s.offset, s.size);
  }

  const T& At(size_t list, size_t i) const {
    return slab_[spans_[list].offset + i];
  }

  void PushBack(size_t list, const T& value) {
    ListSpan& s = spans_[list];
    if (s.size == s.capacity) Relocate(list);
    slab_[spans_[list].offset + spans_[list].size] = value;
    ++spans_[list].size;
    ++live_;
    MaybeCompact();
  }

  /// Removes the first entry matching `pred` by overwriting it with the
  /// last entry (the old Graph::RemoveAdjEntry semantics). Returns false
  /// if no entry matched.
  template <typename Pred>
  bool SwapRemove(size_t list, Pred pred) {
    ListSpan& s = spans_[list];
    T* base = slab_.data() + s.offset;
    for (size_t i = 0; i < s.size; ++i) {
      if (pred(base[i])) {
        base[i] = base[s.size - 1];
        --s.size;
        --live_;
        MaybeCompact();
        return true;
      }
    }
    return false;
  }

  /// Removes the first entry matching `pred`, shifting the tail left
  /// (vector::erase semantics, order-preserving). Returns false if no
  /// entry matched.
  template <typename Pred>
  bool ErasePreserving(size_t list, Pred pred) {
    ListSpan& s = spans_[list];
    T* base = slab_.data() + s.offset;
    for (size_t i = 0; i < s.size; ++i) {
      if (pred(base[i])) {
        for (size_t j = i + 1; j < s.size; ++j) base[j - 1] = base[j];
        --s.size;
        --live_;
        MaybeCompact();
        return true;
      }
    }
    return false;
  }

  void Clear() {
    slab_.clear();
    slab_.shrink_to_fit();
    spans_.clear();
    live_ = 0;
    epoch_ = 0;
  }

  /// Live entries across all lists.
  size_t LiveEntries() const { return live_; }
  /// Slab slots not holding a live entry (relocation holes + slack).
  size_t DeadSlots() const { return slab_.size() - live_; }
  /// Heap bytes held by the slab and the span directory.
  size_t MemoryBytes() const {
    return slab_.capacity() * sizeof(T) + spans_.capacity() * sizeof(ListSpan);
  }
  /// Number of compactions performed so far.
  uint64_t Epoch() const { return epoch_; }

  /// Rebuilds the slab with every list packed at exact capacity, in list
  /// order, preserving entry order. Public so tests can force an epoch.
  void Compact() {
    std::vector<T> packed;
    packed.reserve(live_);
    for (ListSpan& s : spans_) {
      uint32_t offset = static_cast<uint32_t>(packed.size());
      const T* base = slab_.data() + s.offset;
      packed.insert(packed.end(), base, base + s.size);
      s.offset = offset;
      s.capacity = s.size;
    }
    slab_ = std::move(packed);
    ++epoch_;
  }

  /// Internal-consistency check for tests: spans in-bounds, live count
  /// matches, no two spans overlap. Empty string when consistent.
  std::string CheckConsistency() const {
    size_t live = 0;
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    for (const ListSpan& s : spans_) {
      if (s.size > s.capacity) return "adj_pool: size exceeds capacity";
      if (static_cast<size_t>(s.offset) + s.capacity > slab_.size()) {
        return "adj_pool: span out of slab bounds";
      }
      live += s.size;
      if (s.capacity > 0) ranges.emplace_back(s.offset, s.offset + s.capacity);
    }
    if (live != live_) return "adj_pool: live count mismatch";
    std::sort(ranges.begin(), ranges.end());
    for (size_t i = 1; i < ranges.size(); ++i) {
      if (ranges[i].first < ranges[i - 1].second) {
        return "adj_pool: overlapping spans";
      }
    }
    return "";
  }

 private:
  struct ListSpan {
    uint32_t offset;
    uint32_t size;
    uint32_t capacity;
  };

  static constexpr uint32_t kMinListCapacity = 4;
  // Compaction fires when the slab holds more dead slots than live
  // entries and is at least this big — small pools never bother.
  static constexpr size_t kCompactMinSlots = 4096;

  void Relocate(size_t list) {
    ListSpan& s = spans_[list];
    uint32_t new_capacity =
        s.capacity == 0 ? kMinListCapacity : s.capacity * 2;
    uint32_t new_offset = static_cast<uint32_t>(slab_.size());
    slab_.resize(slab_.size() + new_capacity);
    // resize may reallocate, so re-read the base pointers afterwards.
    const T* old_base = slab_.data() + s.offset;
    T* new_base = slab_.data() + new_offset;
    for (size_t i = 0; i < s.size; ++i) new_base[i] = old_base[i];
    s.offset = new_offset;
    s.capacity = new_capacity;
  }

  void MaybeCompact() {
    if (slab_.size() >= kCompactMinSlots && DeadSlots() > live_) Compact();
  }

  std::vector<T> slab_;
  std::vector<ListSpan> spans_;
  size_t live_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_ADJ_POOL_H_
