#ifndef TURBOFLUX_COMMON_ARENA_H_
#define TURBOFLUX_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace turboflux {

/// A bump allocator for per-op scratch (DESIGN.md §3.11): SubgraphSearch
/// frames, DCG clear/transition worklists, intermediate match vectors.
/// Allocation is a pointer bump; nothing is freed individually — the
/// engine calls Reset() once per update, which recycles every block (the
/// blocks themselves are kept, so a warm engine stops touching malloc on
/// the hot path entirely). Blocks grow geometrically, capped so one
/// pathological op cannot pin unbounded memory forever: Reset() releases
/// all but the first block when the arena ballooned past the retain cap.
///
/// Not thread-safe; `ApplyBatch` phase-1 replicas each own their engine
/// copy and with it their own arena.
class Arena {
 public:
  static constexpr size_t kInitialBlockBytes = 1 << 16;  // 64 KiB
  /// Reset() keeps at most this much capacity across ops.
  static constexpr size_t kRetainBytes = 1 << 22;  // 4 MiB

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` objects of trivially-destructible `T`.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is recycled without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) return current_;
    uintptr_t p = reinterpret_cast<uintptr_t>(current_);
    uintptr_t aligned = (p + (align - 1)) & ~(static_cast<uintptr_t>(align) - 1);
    if (aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
      NewBlock(bytes + align);
      p = reinterpret_cast<uintptr_t>(current_);
      aligned = (p + (align - 1)) & ~(static_cast<uintptr_t>(align) - 1);
    }
    current_ = reinterpret_cast<char*>(aligned + bytes);
    used_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Recycles all blocks; O(1) unless the arena overgrew kRetainBytes,
  /// in which case the overflow blocks are released back to the heap.
  void Reset() {
    if (capacity_ > kRetainBytes && blocks_.size() > 1) {
      capacity_ = blocks_.front().size;
      blocks_.resize(1);
    }
    block_index_ = 0;
    if (!blocks_.empty()) {
      current_ = blocks_[0].data.get();
      end_ = current_ + blocks_[0].size;
    }
    used_ = 0;
  }

  /// Bytes handed out since the last Reset (excludes alignment padding).
  size_t UsedBytes() const { return used_; }
  /// Total bytes held from the heap.
  size_t CapacityBytes() const { return capacity_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  void NewBlock(size_t min_bytes) {
    // After Reset, earlier-allocated blocks are reused before new ones.
    while (block_index_ + 1 < blocks_.size()) {
      ++block_index_;
      Block& b = blocks_[block_index_];
      if (b.size >= min_bytes) {
        current_ = b.data.get();
        end_ = current_ + b.size;
        return;
      }
    }
    size_t size = blocks_.empty() ? kInitialBlockBytes : capacity_;
    while (size < min_bytes) size *= 2;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    block_index_ = blocks_.size() - 1;
    capacity_ += size;
    current_ = blocks_.back().data.get();
    end_ = current_ + size;
  }

  std::vector<Block> blocks_;
  size_t block_index_ = 0;
  char* current_ = nullptr;
  char* end_ = nullptr;
  size_t used_ = 0;
  size_t capacity_ = 0;
};

/// A fixed-capacity LIFO stack of `T` carved from an Arena — the shape the
/// engine's recursive scratch uses (DCG clear worklists, search frames).
/// push/pop are raw pointer bumps with a debug-only capacity check.
template <typename T>
class ArenaStack {
 public:
  ArenaStack(Arena& arena, size_t capacity)
      : data_(arena.AllocateArray<T>(capacity)), capacity_(capacity) {}

  void Push(const T& v) { data_[size_++] = v; }
  T Pop() { return data_[--size_]; }
  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }
  size_t Capacity() const { return capacity_; }
  const T* data() const { return data_; }

 private:
  T* data_;
  size_t size_ = 0;
  size_t capacity_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_ARENA_H_
