#ifndef TURBOFLUX_COMMON_DEADLINE_H_
#define TURBOFLUX_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace turboflux {

/// A cooperative wall-clock deadline. Long-running operations call
/// Expired() periodically and unwind when it returns true; reading the
/// clock is amortized over kCheckInterval calls so the check is cheap
/// enough for inner loops.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  Deadline() : when_(Clock::time_point::max()), infinite_(true) {}

  static Deadline Infinite() { return Deadline(); }

  static Deadline After(std::chrono::milliseconds budget) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + budget;
    return d;
  }

  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  /// True once the deadline has passed. Only actually reads the clock every
  /// kCheckInterval calls; once expired, stays expired.
  bool Expired() {
    if (infinite_) return false;
    if (expired_) return true;
    if (++calls_ % kCheckInterval != 0) return false;
    expired_ = Clock::now() >= when_;
    return expired_;
  }

  /// Reads the clock immediately (no amortization).
  bool ExpiredNow() {
    if (infinite_) return false;
    if (!expired_) expired_ = Clock::now() >= when_;
    return expired_;
  }

  bool infinite() const { return infinite_; }

 private:
  static constexpr uint32_t kCheckInterval = 256;

  Clock::time_point when_;
  bool infinite_ = false;
  bool expired_ = false;
  uint32_t calls_ = 0;
};

/// A simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Deadline::Clock::now()) {}

  void Reset() { start_ = Deadline::Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Deadline::Clock::now() - start_)
        .count();
  }

 private:
  Deadline::Clock::time_point start_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_DEADLINE_H_
