#ifndef TURBOFLUX_COMMON_DEADLINE_H_
#define TURBOFLUX_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace turboflux {

/// A cooperative wall-clock deadline. Long-running operations call
/// Expired() periodically and unwind when it returns true; reading the
/// clock is amortized over kCheckInterval calls so the check is cheap
/// enough for inner loops.
///
/// Pause compensation (DESIGN.md §3.12): steady_clock keeps advancing
/// while the process is frozen (SIGSTOP, container freeze, debugger), so
/// without correction a long-suspended server would expire every in-flight
/// deadline the instant it resumes. A detector that notices the freeze
/// (serve::PauseDetector, or any caller) reports it via NotePause(); each
/// Deadline snapshots the global pause credit at creation and treats
/// credit accumulated *after* that point as extra budget. Credit noted
/// before a deadline was created never extends it.
///
/// Thread safety (DESIGN.md §3.9): a single Deadline instance may be
/// polled concurrently from multiple threads (the parallel batch executor
/// shares one deadline across workers). The amortization counter and the
/// sticky expired bit are atomics with relaxed ordering — expiry is a
/// monotone flag, so the worst case of a relaxed race is one extra clock
/// read. This type is intentionally lock-free rather than Mutex-guarded:
/// Expired() sits in the engine's innermost search loops. Copying is not
/// atomic (when_/infinite_ are plain fields); copy-from a shared instance
/// is safe while others poll it, but assign-to a Deadline only before
/// handing it to other threads (test_sync_stress.cc exercises both under
/// TSan).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  Deadline() : when_(Clock::time_point::max()), infinite_(true) {}

  // Copies reset the amortization counter so the copy's *first* Expired()
  // call reads the clock: a near-expired deadline copied into a fresh
  // operation must not defer its first clock read by up to kCheckInterval
  // calls (the copy inherits none of the original's polling history).
  // The pause-credit snapshot IS inherited: the copy stands in for the
  // same logical operation, so pauses before the original was created
  // must not extend the copy either.
  Deadline(const Deadline& other)
      : when_(other.when_),
        infinite_(other.infinite_),
        credit_at_create_(other.credit_at_create_),
        expired_(other.expired_.load(std::memory_order_relaxed)),
        calls_(kCheckInterval - 1) {}

  Deadline& operator=(const Deadline& other) {
    when_ = other.when_;
    infinite_ = other.infinite_;
    credit_at_create_ = other.credit_at_create_;
    expired_.store(other.expired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    calls_.store(kCheckInterval - 1, std::memory_order_relaxed);
    return *this;
  }

  static Deadline Infinite() { return Deadline(); }

  static Deadline After(std::chrono::milliseconds budget) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + budget;
    d.credit_at_create_ = pause_credit_ns_.load(std::memory_order_relaxed);
    return d;
  }

  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  /// True once the deadline has passed. Only actually reads the clock every
  /// kCheckInterval calls; once expired, stays expired.
  [[nodiscard]] bool Expired() {
    if (infinite_) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    uint32_t n = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % kCheckInterval != 0) return false;
    if (Clock::now() >= EffectiveWhen()) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Reads the clock immediately (no amortization).
  [[nodiscard]] bool ExpiredNow() {
    if (infinite_) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (Clock::now() >= EffectiveWhen()) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Reports a wall-clock pause (process freeze, machine suspend) of the
  /// given duration. Every *live* deadline created before the pause gains
  /// the duration as extra budget; deadlines created afterwards are
  /// unaffected. Monotone and global — there is no way (and no need) to
  /// take credit back. Thread-safe; typically called by a heartbeat
  /// thread (serve::PauseDetector) when it observes a scheduling gap.
  ///
  /// Limitation: the credit only helps a deadline that has not yet been
  /// *observed* expired — a poll that lands after resume but before the
  /// detector runs still latches the sticky expired bit. The detector's
  /// cadence bounds that window.
  static void NotePause(std::chrono::nanoseconds pause) {
    if (pause.count() > 0) {
      pause_credit_ns_.fetch_add(pause.count(), std::memory_order_relaxed);
    }
  }

  /// Total pause credit ever noted, in nanoseconds (observability/tests).
  static int64_t TotalPauseCreditNanos() {
    return pause_credit_ns_.load(std::memory_order_relaxed);
  }

  /// Wall-clock time left before expiry, saturating at zero. Infinite
  /// deadlines report milliseconds::max(). Reads the clock (no
  /// amortization); intended for progress reporting and for callers
  /// deciding whether a recovery attempt is still worth starting.
  [[nodiscard]] std::chrono::milliseconds Remaining() const {
    if (infinite_) return std::chrono::milliseconds::max();
    if (expired_.load(std::memory_order_relaxed)) {
      return std::chrono::milliseconds(0);
    }
    Clock::time_point now = Clock::now();
    Clock::time_point when = EffectiveWhen();
    if (now >= when) return std::chrono::milliseconds(0);
    return std::chrono::duration_cast<std::chrono::milliseconds>(when - now);
  }

  bool infinite() const { return infinite_; }

 private:
  static constexpr uint32_t kCheckInterval = 256;

  /// The nominal expiry point pushed out by every pause noted since this
  /// deadline was created.
  Clock::time_point EffectiveWhen() const {
    int64_t credit = pause_credit_ns_.load(std::memory_order_relaxed) -
                     credit_at_create_;
    if (credit <= 0) return when_;
    return when_ + std::chrono::nanoseconds(credit);
  }

  // Process-wide monotone pause credit, in nanoseconds.
  static inline std::atomic<int64_t> pause_credit_ns_{0};

  Clock::time_point when_;
  bool infinite_ = false;
  int64_t credit_at_create_ = 0;
  std::atomic<bool> expired_{false};
  std::atomic<uint32_t> calls_{0};
};

/// A simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Deadline::Clock::now()) {}

  void Reset() { start_ = Deadline::Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Deadline::Clock::now() - start_)
        .count();
  }

 private:
  Deadline::Clock::time_point start_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_DEADLINE_H_
