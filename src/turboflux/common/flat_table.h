#ifndef TURBOFLUX_COMMON_FLAT_TABLE_H_
#define TURBOFLUX_COMMON_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "turboflux/common/adj_pool.h"
#include "turboflux/common/types.h"

namespace turboflux {

/// Flat open-addressing map from a packed (from, to) vertex-pair key to
/// the labels of the parallel edges between them — the probe path behind
/// `Graph::HasEdge` / `EdgeLabelsBetween` / `IsJoinable` (DESIGN.md
/// §3.11). Replaces `std::unordered_map<uint64_t, std::vector<EdgeLabel>>`:
/// one power-of-two bucket array, linear probing, and the single-label
/// common case stored inline in the bucket so a probe is one cache line
/// with no pointer chase. Pairs with 2+ parallel labels (rare) spill to an
/// overflow side table of small vectors recycled through a free list.
///
/// Semantics match the old map exactly where observable: label lists keep
/// insertion order, Remove erases order-preservingly (this order feeds
/// workload::query_gen's deterministic edge sampling), and a list that
/// empties leaves a tombstone that rehash sweeps away. The table rehashes
/// up at 7/8 occupancy (full + tombstones) and rehashes DOWN when live
/// keys drop below 1/8 of capacity, so delete-heavy streams cannot pin
/// memory at the high-water mark.
class FlatPairTable {
 public:
  /// View of one pair's labels; invalidated by any mutation of the table.
  using LabelView = Span<EdgeLabel>;

  FlatPairTable() = default;

  static uint64_t MakeKey(VertexId from, VertexId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }
  static VertexId KeyFrom(uint64_t key) {
    return static_cast<VertexId>(key >> 32);
  }
  static VertexId KeyTo(uint64_t key) {
    return static_cast<VertexId>(key & 0xffffffffu);
  }

  /// Labels for `key`; empty view when the pair has no edges.
  LabelView Find(uint64_t key) const {
    if (buckets_.empty()) return LabelView();
    size_t i = FindBucket(key);
    if (i == kNotFound) return LabelView();
    const Bucket& b = buckets_[i];
    if (b.state == kFullInline) return LabelView(&b.inline_label, 1);
    return LabelView(overflow_[b.overflow].data(), overflow_[b.overflow].size());
  }

  bool Contains(uint64_t key, EdgeLabel label) const {
    LabelView labels = Find(key);
    for (EdgeLabel l : labels) {
      if (l == label) return true;
    }
    return false;
  }

  /// Appends `label` to the pair's list. Returns false (no change) if the
  /// (key, label) combination is already present.
  bool Add(uint64_t key, EdgeLabel label) {
    if (Contains(key, label)) return false;
    GrowIfNeeded();
    size_t i = ProbeForInsert(key);
    Bucket& b = buckets_[i];
    if (b.state == kEmpty || b.state == kTombstone) {
      if (b.state == kTombstone) --tombstones_;
      b.key = key;
      b.state = kFullInline;
      b.inline_label = label;
      ++size_;
      return true;
    }
    if (b.state == kFullInline) {
      uint32_t slot = AcquireOverflowSlot();
      PushOverflow(slot, b.inline_label);
      PushOverflow(slot, label);
      b.state = kFullOverflow;
      b.overflow = slot;
      return true;
    }
    PushOverflow(b.overflow, label);
    return true;
  }

  /// Order-preserving erase of `label` from the pair's list; the bucket
  /// becomes a tombstone when the list empties. Returns false if absent.
  bool Remove(uint64_t key, EdgeLabel label) {
    if (buckets_.empty()) return false;
    size_t i = FindBucket(key);
    if (i == kNotFound) return false;
    Bucket& b = buckets_[i];
    if (b.state == kFullInline) {
      if (b.inline_label != label) return false;
      b.state = kTombstone;
      ++tombstones_;
      --size_;
      ShrinkIfNeeded();
      return true;
    }
    std::vector<EdgeLabel>& labels = overflow_[b.overflow];
    for (size_t j = 0; j < labels.size(); ++j) {
      if (labels[j] == label) {
        labels.erase(labels.begin() + static_cast<ptrdiff_t>(j));
        if (labels.size() == 1) {
          b.inline_label = labels[0];
          ReleaseOverflowSlot(b.overflow);
          b.state = kFullInline;
        }
        return true;
      }
    }
    return false;
  }

  void Clear() {
    buckets_.clear();
    buckets_.shrink_to_fit();
    overflow_.clear();
    overflow_.shrink_to_fit();
    overflow_free_.clear();
    overflow_label_capacity_ = 0;
    size_ = 0;
    tombstones_ = 0;
    rehashes_ = 0;
  }

  /// Calls `fn(key, LabelView)` for every live pair, in bucket order
  /// (unspecified and layout-dependent — callers must not let this order
  /// become observable; see tfx_lint's unordered-emission check).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Bucket& b : buckets_) {
      if (b.state == kFullInline) {
        fn(b.key, LabelView(&b.inline_label, 1));
      } else if (b.state == kFullOverflow) {
        fn(b.key, LabelView(overflow_[b.overflow].data(),
                            overflow_[b.overflow].size()));
      }
    }
  }

  /// Number of live keys (pairs with at least one label).
  size_t PairCount() const { return size_; }
  size_t TombstoneCount() const { return tombstones_; }
  size_t BucketCapacity() const { return buckets_.size(); }
  uint64_t RehashCount() const { return rehashes_; }
  /// O(1): the engine samples this per update op for the layout gauges,
  /// so overflow-buffer capacity is tracked incrementally, never summed.
  size_t MemoryBytes() const {
    return buckets_.capacity() * sizeof(Bucket) +
           overflow_.capacity() * sizeof(std::vector<EdgeLabel>) +
           overflow_free_.capacity() * sizeof(uint32_t) +
           overflow_label_capacity_ * sizeof(EdgeLabel);
  }

  /// Internal-consistency check for tests: probe reachability of every
  /// live key, overflow slot sanity, size/tombstone recounts. Empty string
  /// when consistent.
  std::string CheckConsistency() const {
    size_t live = 0, tombs = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      const Bucket& b = buckets_[i];
      if (b.state == kTombstone) ++tombs;
      if (b.state != kFullInline && b.state != kFullOverflow) continue;
      ++live;
      if (b.state == kFullOverflow) {
        if (b.overflow >= overflow_.size()) {
          return "flat_table: overflow index out of range";
        }
        if (overflow_[b.overflow].size() < 2) {
          return "flat_table: overflow list below inline threshold";
        }
      }
      if (FindBucket(b.key) != i) return "flat_table: key not probe-reachable";
    }
    if (live != size_) return "flat_table: size mismatch";
    if (tombs != tombstones_) return "flat_table: tombstone count mismatch";
    size_t label_capacity = 0;
    for (const std::vector<EdgeLabel>& v : overflow_) {
      label_capacity += v.capacity();
    }
    if (label_capacity != overflow_label_capacity_) {
      return "flat_table: overflow capacity tracking drifted";
    }
    return "";
  }

 private:
  enum BucketState : uint8_t {
    kEmpty = 0,
    kTombstone = 1,
    kFullInline = 2,
    kFullOverflow = 3,
  };

  struct Bucket {
    uint64_t key = 0;
    EdgeLabel inline_label = 0;
    uint32_t overflow = 0;
    uint8_t state = kEmpty;
  };

  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinBuckets = 16;

  // splitmix64 finalizer: the raw key is two vertex ids packed into one
  // word, so low-entropy id patterns need thorough mixing before masking.
  static size_t Hash(uint64_t key) {
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<size_t>(key);
  }

  size_t Mask() const { return buckets_.size() - 1; }

  /// Index of the full bucket holding `key`, or kNotFound.
  size_t FindBucket(uint64_t key) const {
    size_t i = Hash(key) & Mask();
    while (true) {
      const Bucket& b = buckets_[i];
      if (b.state == kEmpty) return kNotFound;
      if (b.state != kTombstone && b.key == key) return i;
      i = (i + 1) & Mask();
    }
  }

  /// Index to insert `key` at: its existing full bucket, else the first
  /// tombstone or empty slot in its probe chain.
  size_t ProbeForInsert(uint64_t key) {
    size_t i = Hash(key) & Mask();
    size_t first_tombstone = kNotFound;
    while (true) {
      Bucket& b = buckets_[i];
      if (b.state == kEmpty) {
        return first_tombstone != kNotFound ? first_tombstone : i;
      }
      if (b.state == kTombstone) {
        if (first_tombstone == kNotFound) first_tombstone = i;
      } else if (b.key == key) {
        return i;
      }
      i = (i + 1) & Mask();
    }
  }

  void PushOverflow(uint32_t slot, EdgeLabel label) {
    std::vector<EdgeLabel>& v = overflow_[slot];
    const size_t before = v.capacity();
    v.push_back(label);
    overflow_label_capacity_ += v.capacity() - before;
  }

  uint32_t AcquireOverflowSlot() {
    if (!overflow_free_.empty()) {
      uint32_t slot = overflow_free_.back();
      overflow_free_.pop_back();
      return slot;
    }
    overflow_.emplace_back();
    return static_cast<uint32_t>(overflow_.size() - 1);
  }

  void ReleaseOverflowSlot(uint32_t slot) {
    overflow_[slot].clear();
    overflow_free_.push_back(slot);
  }

  void GrowIfNeeded() {
    if (buckets_.empty()) {
      Rehash(kMinBuckets);
      return;
    }
    // 7/8 occupancy counting tombstones: a tombstone-saturated table
    // rehashes at the same capacity, purging the tombstones.
    if ((size_ + tombstones_ + 1) * 8 > buckets_.size() * 7) {
      Rehash(size_ * 4 >= buckets_.size() ? buckets_.size() * 2
                                          : buckets_.size());
    }
  }

  void ShrinkIfNeeded() {
    if (buckets_.size() > kMinBuckets && size_ * 8 < buckets_.size()) {
      size_t target = buckets_.size();
      while (target > kMinBuckets && size_ * 4 < target) target /= 2;
      Rehash(target);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_capacity, Bucket{});
    tombstones_ = 0;
    ++rehashes_;
    for (const Bucket& b : old) {
      if (b.state != kFullInline && b.state != kFullOverflow) continue;
      size_t i = Hash(b.key) & Mask();
      while (buckets_[i].state != kEmpty) i = (i + 1) & Mask();
      buckets_[i] = b;
    }
  }

  std::vector<Bucket> buckets_;
  std::vector<std::vector<EdgeLabel>> overflow_;
  std::vector<uint32_t> overflow_free_;
  // Sum of overflow_[i].capacity() — kept incrementally for MemoryBytes.
  size_t overflow_label_capacity_ = 0;
  size_t size_ = 0;
  size_t tombstones_ = 0;
  uint64_t rehashes_ = 0;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_FLAT_TABLE_H_
