#ifndef TURBOFLUX_COMMON_GALLOPING_H_
#define TURBOFLUX_COMMON_GALLOPING_H_

#include <cstddef>

namespace turboflux {

/// Sorted-list primitives for worst-case-optimal-style candidate
/// intersection (DESIGN.md §3.11). Used by the Graphflow baseline's
/// extension step: instead of probing HasEdge per candidate per
/// constraint, candidates and constraint adjacencies are kept as sorted
/// runs and intersected with exponential (galloping) search, which is
/// O(small * log(large)) when sizes are skewed — the common case when one
/// mapped vertex has few neighbors and another is a hub.

/// First index i in sorted [data, data+size) with data[i] >= target
/// (lower bound), found by doubling probes from `hint` then binary search.
template <typename T>
size_t GallopLowerBound(const T* data, size_t size, size_t hint, T target) {
  size_t lo = hint;
  size_t step = 1;
  size_t hi = hint;
  while (hi < size && data[hi] < target) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > size) hi = size;
  // Binary search in (lo-1, hi]; invariant: data[lo-1] < target <= data[hi].
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// True iff `target` occurs in the sorted run [data, data+size).
template <typename T>
bool GallopContains(const T* data, size_t size, T target) {
  size_t i = GallopLowerBound(data, size, 0, target);
  return i < size && data[i] == target;
}

/// Intersects two sorted runs into `out` (caller-sized to >= min(na, nb));
/// returns the number of results. Gallops through the longer run so the
/// cost is near-linear in the shorter one.
template <typename T>
size_t GallopIntersect(const T* a, size_t na, const T* b, size_t nb, T* out) {
  if (na > nb) {
    return GallopIntersect(b, nb, a, na, out);
  }
  size_t n = 0;
  size_t bi = 0;
  for (size_t ai = 0; ai < na; ++ai) {
    bi = GallopLowerBound(b, nb, bi, a[ai]);
    if (bi == nb) break;
    if (b[bi] == a[ai]) {
      out[n++] = a[ai];
      ++bi;
    }
  }
  return n;
}

/// In-place filter of the sorted run [io, io+n) to elements also present
/// in sorted [b, b+nb); returns the new size.
template <typename T>
size_t GallopFilterInPlace(T* io, size_t n, const T* b, size_t nb) {
  size_t kept = 0;
  size_t bi = 0;
  for (size_t i = 0; i < n; ++i) {
    bi = GallopLowerBound(b, nb, bi, io[i]);
    if (bi == nb) break;
    if (b[bi] == io[i]) {
      io[kept++] = io[i];
      ++bi;
    }
  }
  return kept;
}

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_GALLOPING_H_
