#include "turboflux/common/label_set.h"

#include <algorithm>

namespace turboflux {

LabelSet::LabelSet(std::initializer_list<Label> labels)
    : LabelSet(std::vector<Label>(labels)) {}

LabelSet::LabelSet(std::vector<Label> labels) : labels_(std::move(labels)) {
  std::sort(labels_.begin(), labels_.end());
  labels_.erase(std::unique(labels_.begin(), labels_.end()), labels_.end());
}

void LabelSet::Insert(Label label) {
  auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) labels_.insert(it, label);
}

bool LabelSet::Contains(Label label) const {
  return std::binary_search(labels_.begin(), labels_.end(), label);
}

bool LabelSet::IsSubsetOf(const LabelSet& other) const {
  return std::includes(other.labels_.begin(), other.labels_.end(),
                       labels_.begin(), labels_.end());
}

std::string LabelSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(labels_[i]);
  }
  out += "}";
  return out;
}

}  // namespace turboflux
