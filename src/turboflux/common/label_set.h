#ifndef TURBOFLUX_COMMON_LABEL_SET_H_
#define TURBOFLUX_COMMON_LABEL_SET_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "turboflux/common/types.h"

namespace turboflux {

/// A small sorted set of vertex labels. The common case is zero labels
/// (wildcard, used by unlabeled datasets such as Netflow) or one label, so
/// the representation is a sorted, deduplicated vector.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<Label> labels);
  explicit LabelSet(std::vector<Label> labels);

  LabelSet(const LabelSet&) = default;
  LabelSet& operator=(const LabelSet&) = default;
  LabelSet(LabelSet&&) = default;
  LabelSet& operator=(LabelSet&&) = default;

  /// Adds a label; no-op if already present.
  void Insert(Label label);

  bool Contains(Label label) const;

  /// True iff every label in this set is also in `other`. An empty set is a
  /// subset of everything, which makes unlabeled query vertices wildcards.
  bool IsSubsetOf(const LabelSet& other) const;

  bool empty() const { return labels_.empty(); }
  size_t size() const { return labels_.size(); }
  const std::vector<Label>& labels() const { return labels_; }

  /// First label, or `fallback` when empty. Convenient for generators and
  /// statistics that want a representative label.
  Label FirstOr(Label fallback) const {
    return labels_.empty() ? fallback : labels_.front();
  }

  std::string ToString() const;

  friend bool operator==(const LabelSet& a, const LabelSet& b) {
    return a.labels_ == b.labels_;
  }

 private:
  std::vector<Label> labels_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_LABEL_SET_H_
