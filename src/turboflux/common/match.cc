#include "turboflux/common/match.h"

namespace turboflux {

bool MappingContains(const Mapping& m, VertexId v) {
  for (VertexId mapped : m) {
    if (mapped == v) return true;
  }
  return false;
}

std::string MappingToString(const Mapping& m) {
  std::string out = "[";
  for (size_t i = 0; i < m.size(); ++i) {
    if (i > 0) out += " ";
    out += "u";
    out += std::to_string(i);
    out += "->";
    if (m[i] == kNullVertex) {
      out += "?";
    } else {
      out += "v";
      out += std::to_string(m[i]);
    }
  }
  out += "]";
  return out;
}

uint64_t HashMapping(const Mapping& m) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (VertexId v : m) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::unordered_map<std::string, int> CollectingSink::ToMultiset() const {
  std::unordered_map<std::string, int> multiset;
  for (const Record& r : records_) {
    std::string key = (r.positive ? "+" : "-") + MappingToString(r.mapping);
    ++multiset[key];
  }
  return multiset;
}

}  // namespace turboflux
