#ifndef TURBOFLUX_COMMON_MATCH_H_
#define TURBOFLUX_COMMON_MATCH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "turboflux/common/types.h"

namespace turboflux {

/// A (possibly partial) homomorphism m : V(q) -> V(g). Indexed by query
/// vertex id; unmapped query vertices hold kNullVertex.
using Mapping = std::vector<VertexId>;

/// Returns true iff `v` already appears as the image of some query vertex.
/// Used for the injectivity check under subgraph-isomorphism semantics.
bool MappingContains(const Mapping& m, VertexId v);

std::string MappingToString(const Mapping& m);

/// Stable 64-bit hash of a complete mapping.
uint64_t HashMapping(const Mapping& m);

/// Receives positive/negative matches as they are discovered. A positive
/// match is an element of M(g_i, q) - M(g_{i-1}, q); a negative match is an
/// element of M(g_{i-1}, q) - M(g_i, q) (Definition 3).
class MatchSink {
 public:
  virtual ~MatchSink() = default;

  /// Called once per reported match. `m` is only valid for the duration of
  /// the call; implementations that retain it must copy.
  virtual void OnMatch(bool positive, const Mapping& m) = 0;
};

/// Drops every match; used when an engine replays updates purely for
/// their state effect.
class DiscardSink : public MatchSink {
 public:
  void OnMatch(bool, const Mapping&) override {}
};

/// Counts matches without retaining them.
class CountingSink : public MatchSink {
 public:
  void OnMatch(bool positive, const Mapping&) override {
    if (positive) {
      ++positive_;
    } else {
      ++negative_;
    }
  }

  uint64_t positive() const { return positive_; }
  uint64_t negative() const { return negative_; }
  uint64_t total() const { return positive_ + negative_; }

  void Reset() { positive_ = negative_ = 0; }

 private:
  uint64_t positive_ = 0;
  uint64_t negative_ = 0;
};

/// Retains all matches; used by tests and examples. Provides a multiset
/// view so engines can be compared irrespective of report order.
class CollectingSink : public MatchSink {
 public:
  struct Record {
    bool positive;
    Mapping mapping;
  };

  void OnMatch(bool positive, const Mapping& m) override {
    records_.push_back({positive, m});
  }

  const std::vector<Record>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

  /// Multiset of (sign, mapping) as counts keyed by a canonical string.
  /// Two engines report the same matches iff their multisets are equal.
  std::unordered_map<std::string, int> ToMultiset() const;

 private:
  std::vector<Record> records_;
};

/// Fans a match out to two sinks (e.g., counting plus collecting).
class TeeSink : public MatchSink {
 public:
  TeeSink(MatchSink* a, MatchSink* b) : a_(a), b_(b) {}

  void OnMatch(bool positive, const Mapping& m) override {
    a_->OnMatch(positive, m);
    b_->OnMatch(positive, m);
  }

 private:
  MatchSink* a_;
  MatchSink* b_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_MATCH_H_
