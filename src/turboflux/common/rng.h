#ifndef TURBOFLUX_COMMON_RNG_H_
#define TURBOFLUX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace turboflux {

/// Deterministic pseudo-random number generator (splitmix64-seeded
/// xoshiro256**). All workload generators use this so datasets and query
/// sets are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

  /// Picks a random element index from a non-empty container size.
  size_t NextIndex(size_t size) { return static_cast<size_t>(NextBounded(size)); }

 private:
  uint64_t state_[4];
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with exponent s, using an
/// inverted-CDF table. Rank 0 is the most popular element. Workload
/// generators use this for the heavy-tailed popularity of users, posts, and
/// IP addresses.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_RNG_H_
