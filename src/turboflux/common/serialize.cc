#include "turboflux/common/serialize.h"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>

namespace turboflux {
namespace bin {

void PutU8(std::string& buf, uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

void PutU32(std::string& buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool Reader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool Reader::GetLength(uint32_t* n, uint64_t max_elems) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (len > max_elems) return false;
  *n = len;
  return true;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteSection(std::ostream& out, uint32_t tag,
                    const std::string& payload) {
  std::string header;
  PutU32(header, tag);
  PutU64(header, payload.size());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::string footer;
  PutU32(footer, Crc32(payload));
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  if (!out) return Status::IoError("short write while emitting section");
  return Status::Ok();
}

Status ReadSection(std::istream& in, uint32_t expected_tag,
                   std::string* payload) {
  char header[12];
  in.read(header, sizeof(header));
  if (in.gcount() != sizeof(header)) {
    return Status::Corruption("truncated section header");
  }
  Reader hr(std::string_view(header, sizeof(header)));
  uint32_t tag = 0;
  uint64_t size = 0;
  hr.GetU32(&tag);
  hr.GetU64(&size);
  if (tag != expected_tag) {
    return Status::Corruption("unexpected section tag " + std::to_string(tag) +
                              " (want " + std::to_string(expected_tag) + ")");
  }
  if (size > kMaxSectionBytes) {
    return Status::Corruption("absurd section size " + std::to_string(size));
  }
  payload->resize(size);
  if (size > 0) {
    in.read(payload->data(), static_cast<std::streamsize>(size));
    if (static_cast<uint64_t>(in.gcount()) != size) {
      return Status::Corruption("truncated section payload");
    }
  }
  char footer[4];
  in.read(footer, sizeof(footer));
  if (in.gcount() != sizeof(footer)) {
    return Status::Corruption("truncated section checksum");
  }
  Reader fr(std::string_view(footer, sizeof(footer)));
  uint32_t stored_crc = 0;
  fr.GetU32(&stored_crc);
  if (stored_crc != Crc32(*payload)) {
    return Status::Corruption("section checksum mismatch (tag " +
                              std::to_string(tag) + ")");
  }
  return Status::Ok();
}

}  // namespace bin
}  // namespace turboflux
