#ifndef TURBOFLUX_COMMON_SERIALIZE_H_
#define TURBOFLUX_COMMON_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "turboflux/common/status.h"

namespace turboflux {
namespace bin {

/// Little-endian binary encoding primitives plus CRC32-framed sections —
/// the substrate of the checkpoint format (DESIGN.md §3.7). Writers append
/// to a std::string payload; the bounds-checked Reader never reads past
/// the payload, so corrupted length fields fail cleanly instead of
/// crashing.

void PutU8(std::string& buf, uint8_t v);
void PutU32(std::string& buf, uint32_t v);
void PutU64(std::string& buf, uint64_t v);

/// Bounds-checked cursor over an encoded payload. Every Get returns false
/// (leaving the output untouched) once the payload is exhausted.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);

  /// Reads a u32 length field and fails unless at least that many bytes
  /// remain AND the length is at most `max_elems` (corruption guard for
  /// element-count fields).
  bool GetLength(uint32_t* n, uint64_t max_elems);

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
uint32_t Crc32(std::string_view data);

/// Section framing: tag (u32), payload size (u64), payload bytes, CRC32 of
/// the payload (u32). A checkpoint is a fixed header followed by a fixed
/// sequence of sections.
Status WriteSection(std::ostream& out, uint32_t tag,
                    const std::string& payload);

/// Reads one section and verifies its tag and checksum. On any mismatch
/// (wrong tag, truncated stream, CRC failure, absurd size) returns a
/// kCorruption/kIoError status and leaves `payload` unspecified.
Status ReadSection(std::istream& in, uint32_t expected_tag,
                   std::string* payload);

/// Cap on a single section's payload; a corrupted size field larger than
/// this is reported as corruption instead of attempting the allocation.
inline constexpr uint64_t kMaxSectionBytes = uint64_t{1} << 34;  // 16 GiB

}  // namespace bin
}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_SERIALIZE_H_
