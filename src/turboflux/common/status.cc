#include "turboflux/common/status.h"

namespace turboflux {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (line_ != 0) {
    out += " (line ";
    out += std::to_string(line_);
    out += ")";
  }
  return out;
}

}  // namespace turboflux
