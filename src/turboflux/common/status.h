#ifndef TURBOFLUX_COMMON_STATUS_H_
#define TURBOFLUX_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace turboflux {

/// Canonical error space for every fallible, non-deadline operation in the
/// repository (snapshot IO, parsers, update validation). Kept deliberately
/// small; see DESIGN.md §3.5/§3.7.
enum class StatusCode : uint8_t {
  kOk = 0,
  /// The caller supplied something structurally wrong (bad flag value,
  /// malformed record, unparsable number).
  kInvalidArgument = 1,
  /// An id or label is outside the valid universe (vertex id >= |V|,
  /// label above the declared alphabet).
  kOutOfRange = 2,
  /// The referenced entity does not exist (deleting an absent edge).
  kNotFound = 3,
  /// Stored bytes fail validation: bad magic, checksum mismatch,
  /// truncated section, or internally inconsistent structures.
  kCorruption = 4,
  /// The underlying stream/file could not be read or written.
  kIoError = 5,
  /// A cooperative deadline expired mid-operation.
  kDeadlineExceeded = 6,
  /// The operation is not valid in the current engine state.
  kFailedPrecondition = 7,
  /// The snapshot (or file) is a format version this build cannot read.
  kUnsupportedVersion = 8,
};

const char* StatusCodeName(StatusCode code);

/// A status-or-error result in the absl::Status mold, minus the
/// dependency: a code plus a human-readable message, and an optional
/// 1-based input line number for parser errors (0 = not applicable).
///
/// [[nodiscard]] at class scope: silently dropping a Status return is a
/// compile error (-Werror=unused-result) everywhere in the tree — an
/// ignored restore or checkpoint failure is exactly the silent-corruption
/// bug class DESIGN.md §3.9 exists to prevent. Intentionally-discarded
/// results (rare; e.g. best-effort cleanup) must say so with a
/// `(void)` cast.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }

  static Status Error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  static Status InvalidArgument(std::string message) {
    return Error(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Error(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Error(StatusCode::kNotFound, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Error(StatusCode::kCorruption, std::move(message));
  }
  static Status IoError(std::string message) {
    return Error(StatusCode::kIoError, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Error(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Error(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status UnsupportedVersion(std::string message) {
    return Error(StatusCode::kUnsupportedVersion, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// 1-based line of the input that caused a parse error; 0 when the
  /// error is not tied to a line.
  size_t line() const { return line_; }

  /// Returns a copy of this status annotated with an input line number.
  Status AtLine(size_t line) const {
    Status s = *this;
    s.line_ = line;
    return s;
  }

  /// "OK" or "CORRUPTION: bad checksum (line 12)".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_ &&
           a.line_ == b.line_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  size_t line_ = 0;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_STATUS_H_
