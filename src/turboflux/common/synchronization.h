#ifndef TURBOFLUX_COMMON_SYNCHRONIZATION_H_
#define TURBOFLUX_COMMON_SYNCHRONIZATION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "turboflux/common/thread_annotations.h"

// Annotated synchronization primitives (DESIGN.md §3.9).
//
// Thin wrappers over the standard primitives that carry Clang Thread
// Safety attributes, so a Clang build with `-Wthread-safety` proves at
// compile time that every GUARDED_BY member is only touched under its
// mutex. They add no state and no overhead beyond std::mutex /
// std::condition_variable; the value is purely that the analysis can
// see the acquire/release points.
//
// This header is the only file in the repository allowed to name
// std::mutex / std::lock_guard / std::condition_variable directly —
// `tfx_lint` (check `raw-sync`) rejects raw uses anywhere else.
//
// Usage:
//
//   class Queue {
//    public:
//     void Push(int v) EXCLUDES(mu_) {
//       {
//         MutexLock lock(mu_);
//         items_.push_back(v);
//       }
//       cv_.NotifyOne();
//     }
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     std::vector<int> items_ GUARDED_BY(mu_);
//   };

namespace turboflux {

/// A non-reentrant mutual-exclusion lock, annotated as a capability.
/// Prefer MutexLock over manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis and the reader) that the caller holds
  /// this mutex on a path the analysis cannot follow. No runtime check.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope lock for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the
/// mutex, blocks, and reacquires it before returning — exactly
/// std::condition_variable semantics, but the REQUIRES annotation makes
/// "the mutex must be held" a compile-time contract. Spurious wakeups
/// are possible; always wait in a `while (!condition)` loop so the
/// guarded predicate is re-checked under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still logically holds `mu`
  }

  /// Wait bounded by `timeout`. Returns false on timeout, true on a
  /// notification (or spurious wakeup — re-check the predicate either
  /// way). The ingestion service uses this for drain pacing and bounded
  /// ack waits; like Wait, the mutex is held again when this returns.
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_SYNCHRONIZATION_H_
