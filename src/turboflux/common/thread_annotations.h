#ifndef TURBOFLUX_COMMON_THREAD_ANNOTATIONS_H_
#define TURBOFLUX_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attributes (DESIGN.md §3.9).
//
// These macros expand to Clang's `thread_safety` attributes when the
// compiler supports them and to nothing otherwise, so the tree compiles
// identically under GCC while Clang builds (the CI `static-analysis`
// job) verify lock discipline at compile time with
// `-Wthread-safety -Werror=thread-safety`.
//
// Conventions:
//  * every member protected by a turboflux::Mutex is tagged
//    GUARDED_BY(mu_) at its declaration;
//  * private helpers that expect the caller to hold the lock are tagged
//    REQUIRES(mu_); public methods that must NOT be called with the lock
//    held (they take it themselves, or call back into user code) are
//    tagged EXCLUDES(mu_);
//  * raw std::mutex / std::lock_guard are banned outside
//    common/synchronization.h — `tfx_lint` enforces this (check
//    `raw-sync`), because the analysis only sees locks acquired through
//    annotated wrappers.
//
// The spellings follow Abseil's thread_annotations.h so the idiom is
// recognizable; only the macros this repository actually uses are
// defined.

#if defined(__clang__) && (!defined(SWIG))
#define TFX_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define TFX_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) TFX_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) TFX_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) TFX_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY TFX_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  TFX_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
#endif

#endif  // TURBOFLUX_COMMON_THREAD_ANNOTATIONS_H_
