#ifndef TURBOFLUX_COMMON_TYPES_H_
#define TURBOFLUX_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace turboflux {

/// Identifier of a data-graph vertex.
using VertexId = uint32_t;

/// Identifier of a query-graph vertex. Query graphs are tiny (at most
/// kMaxQueryVertices vertices), but we use a full word for convenience.
using QVertexId = uint32_t;

/// A vertex label. Vertices carry *sets* of labels (see LabelSet); a query
/// vertex u matches a data vertex v when L(u) is a subset of L(v).
using Label = uint32_t;

/// An edge label. Edges carry exactly one label, matched exactly.
using EdgeLabel = uint32_t;

/// Identifier of a query edge. Doubles as the total order used for
/// duplicate elimination in SubgraphSearch (Algorithm 7).
using QEdgeId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kNullVertex = std::numeric_limits<VertexId>::max();

/// The artificial start vertex v_s* of the DCG (Section 3.1). It is never
/// stored in the data graph; it appears only as the source of the incoming
/// DCG edge (v_s*, u_s, v_s) of every start data vertex.
inline constexpr VertexId kArtificialVertex = kNullVertex - 1;

/// Sentinel for "no query vertex".
inline constexpr QVertexId kNullQVertex = std::numeric_limits<QVertexId>::max();

/// Sentinel for "no query edge" (e.g., when reporting initial matches).
inline constexpr QEdgeId kNullQEdge = std::numeric_limits<QEdgeId>::max();

/// Upper bound on query-graph size: child-coverage bitmaps in the DCG are
/// single 64-bit words indexed by query vertex id.
inline constexpr QVertexId kMaxQueryVertices = 64;

/// Matching semantics (Definition 1 and Appendix B.1). Subgraph isomorphism
/// is graph homomorphism plus the injectivity constraint.
enum class MatchSemantics {
  kHomomorphism,
  kIsomorphism,
};

}  // namespace turboflux

#endif  // TURBOFLUX_COMMON_TYPES_H_
