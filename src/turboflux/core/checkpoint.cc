// Checkpoint/Restore: crash-consistent binary snapshots of the full engine
// state (DESIGN.md §3.7).
//
// Layout: magic "TFXC", format version (u32), then CRC32-framed sections in
// fixed order — meta (stream position + semantics), query graph, spanning
// tree, data graph, DCG, matching-order state. Anything derivable from
// those (dedup ranks, seed indexes, start vertices, DCG bitmaps/counters)
// is recomputed on restore; anything whose *order* is observable through
// match enumeration (both graph adjacency directions, DCG node lists, the
// matching order itself) is stored verbatim so a restored engine reproduces
// the original's subsequent match stream byte-for-byte.

#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/serialize.h"
#include "turboflux/core/turboflux.h"

namespace turboflux {

namespace {

constexpr char kMagic[4] = {'T', 'F', 'X', 'C'};
constexpr uint32_t kFormatVersion = 1;

// Section tags (arbitrary distinct constants), in write order.
enum SectionTag : uint32_t {
  kSectionMeta = 0x4154454d,    // "META"
  kSectionQuery = 0x47595251,   // "QRYG"
  kSectionTree = 0x45455254,    // "TREE"
  kSectionGraph = 0x48505247,   // "GRPH"
  kSectionDcg = 0x31474344,     // "DCG1"
  kSectionEngine = 0x53474e45,  // "ENGS"
};

}  // namespace

Status TurboFluxEngine::Checkpoint(std::ostream& out) const {
  if (q_ == nullptr) {
    return Status::FailedPrecondition("Checkpoint before Init");
  }
  if (dead_) {
    return Status::FailedPrecondition(
        "engine is dead; a snapshot would capture partial state");
  }
  Stopwatch watch;
  const std::streampos start_pos = out.tellp();

  out.write(kMagic, sizeof(kMagic));
  std::string hdr;
  bin::PutU32(hdr, kFormatVersion);
  out.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));

  Status st = WriteStateSections(out, /*include_graph=*/true);
  if (!st.ok()) return st;

  out.flush();
  if (!out) return Status::IoError("checkpoint stream write failed");
  stats_.checkpoints.Inc();
  stats_.checkpoint_seconds.RecordSeconds(watch.ElapsedSeconds());
  if (const std::streampos end_pos = out.tellp();
      start_pos != std::streampos(-1) && end_pos != std::streampos(-1)) {
    stats_.checkpoint_bytes.Inc(static_cast<uint64_t>(end_pos - start_pos));
  }
  return Status::Ok();
}

Status TurboFluxEngine::WriteStateSections(std::ostream& out,
                                           bool include_graph) const {
  if (q_ == nullptr) {
    return Status::FailedPrecondition("WriteStateSections before Init");
  }
  const QueryGraph& q = *q_;

  std::string meta;
  bin::PutU64(meta, applied_ops_);
  bin::PutU8(meta,
             options_.semantics == MatchSemantics::kIsomorphism ? 1 : 0);
  bin::PutU8(
      meta,
      options_.order_policy == TurboFluxOptions::OrderPolicy::kBfs ? 1 : 0);
  Status st = bin::WriteSection(out, kSectionMeta, meta);
  if (!st.ok()) return st;

  std::string qbuf;
  SerializeQueryGraph(qbuf, q);
  st = bin::WriteSection(out, kSectionQuery, qbuf);
  if (!st.ok()) return st;

  std::string tbuf;
  bin::PutU32(tbuf, tree_.root());
  for (QVertexId u = 0; u < q.VertexCount(); ++u) {
    const QueryTree::ParentEdge& pe = tree_.parent_edge(u);
    bin::PutU32(tbuf, pe.parent);
    bin::PutU32(tbuf, pe.label);
    bin::PutU8(tbuf, pe.forward ? 1 : 0);
    bin::PutU32(tbuf, pe.qedge);
  }
  st = bin::WriteSection(out, kSectionTree, tbuf);
  if (!st.ok()) return st;

  // In a QuerySet snapshot the container persists the shared graph once in
  // its own section; each engine's state then omits the graph entirely.
  if (include_graph) {
    std::string gbuf;
    G().Serialize(gbuf);
    st = bin::WriteSection(out, kSectionGraph, gbuf);
    if (!st.ok()) return st;
  }

  std::string dbuf;
  dcg_.Serialize(dbuf);
  st = bin::WriteSection(out, kSectionDcg, dbuf);
  if (!st.ok()) return st;

  std::string ebuf;
  bin::PutU32(ebuf, static_cast<uint32_t>(mo_.size()));
  for (QVertexId u : mo_) bin::PutU32(ebuf, u);
  bin::PutU32(ebuf, static_cast<uint32_t>(order_counts_snapshot_.size()));
  for (uint64_t c : order_counts_snapshot_) bin::PutU64(ebuf, c);
  bin::PutU64(ebuf, ops_since_adjust_check_);
  bin::PutU64(ebuf, order_recomputes_);
  st = bin::WriteSection(out, kSectionEngine, ebuf);
  if (!st.ok()) return st;
  if (!out) return Status::IoError("state section stream write failed");
  return Status::Ok();
}

Status TurboFluxEngine::Restore(std::istream& in) {
  Stopwatch watch;
  const std::streampos start_pos = in.tellg();

  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    dead_ = true;
    return Status::Corruption("bad checkpoint magic");
  }
  char vbytes[4];
  in.read(vbytes, sizeof(vbytes));
  if (in.gcount() != sizeof(vbytes)) {
    dead_ = true;
    return Status::Corruption("truncated checkpoint header");
  }
  uint32_t version = 0;
  bin::Reader vr(std::string_view(vbytes, sizeof(vbytes)));
  vr.GetU32(&version);
  if (version != kFormatVersion) {
    dead_ = true;
    return Status::UnsupportedVersion(
        "checkpoint format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        ")");
  }

  Status st = ReadStateSections(in, /*shared_graph=*/nullptr);
  if (!st.ok()) return st;  // ReadStateSections left the engine dead

  stats_.restores.Inc();
  stats_.restore_seconds.RecordSeconds(watch.ElapsedSeconds());
  if (const std::streampos end_pos = in.tellg();
      start_pos != std::streampos(-1) && end_pos != std::streampos(-1)) {
    stats_.restore_bytes.Inc(static_cast<uint64_t>(end_pos - start_pos));
  }
  return Status::Ok();
}

Status TurboFluxEngine::ReadStateSections(std::istream& in,
                                          const Graph* shared_graph) {
  // Any failure past this point may leave partially-overwritten state, so
  // the engine is marked dead — the caller either retries with an intact
  // snapshot or discards the engine.
  auto fail = [this](Status st) {
    dead_ = true;
    return st;
  };

  std::string meta, qbuf, tbuf, gbuf, dbuf, ebuf;
  Status st;
  if (!(st = bin::ReadSection(in, kSectionMeta, &meta)).ok() ||
      !(st = bin::ReadSection(in, kSectionQuery, &qbuf)).ok() ||
      !(st = bin::ReadSection(in, kSectionTree, &tbuf)).ok() ||
      (shared_graph == nullptr &&
       !(st = bin::ReadSection(in, kSectionGraph, &gbuf)).ok()) ||
      !(st = bin::ReadSection(in, kSectionDcg, &dbuf)).ok() ||
      !(st = bin::ReadSection(in, kSectionEngine, &ebuf)).ok()) {
    return fail(st);
  }

  // Meta: stream position + the options the snapshot was taken under.
  bin::Reader mr(meta);
  uint64_t applied = 0;
  uint8_t sem = 0, pol = 0;
  if (!mr.GetU64(&applied) || !mr.GetU8(&sem) || !mr.GetU8(&pol) ||
      sem > 1 || pol > 1 || !mr.exhausted()) {
    return fail(Status::Corruption("malformed meta section"));
  }
  MatchSemantics semantics =
      sem ? MatchSemantics::kIsomorphism : MatchSemantics::kHomomorphism;
  TurboFluxOptions::OrderPolicy policy =
      pol ? TurboFluxOptions::OrderPolicy::kBfs
          : TurboFluxOptions::OrderPolicy::kCostBased;
  if (semantics != options_.semantics || policy != options_.order_policy) {
    return fail(Status::FailedPrecondition(
        "snapshot semantics/order policy do not match this engine's "
        "options"));
  }

  // Query graph, into engine-owned storage so the restored engine does not
  // depend on any caller-provided QueryGraph staying alive.
  bin::Reader qr(qbuf);
  auto q = std::make_unique<QueryGraph>();
  if (!(st = DeserializeQueryGraph(qr, q.get())).ok()) return fail(st);
  const uint32_t nq = static_cast<uint32_t>(q->VertexCount());

  // Spanning tree, validated structurally by FromParentEdges.
  bin::Reader tr(tbuf);
  uint32_t root = 0;
  if (!tr.GetU32(&root) || root >= nq) {
    return fail(Status::Corruption("bad tree root"));
  }
  std::vector<QueryTree::ParentEdge> parents(nq);
  for (QVertexId u = 0; u < nq; ++u) {
    uint32_t parent = 0, label = 0, qedge = 0;
    uint8_t fwd = 0;
    if (!tr.GetU32(&parent) || !tr.GetU32(&label) || !tr.GetU8(&fwd) ||
        fwd > 1 || !tr.GetU32(&qedge)) {
      return fail(Status::Corruption("truncated tree parent edge"));
    }
    parents[u] = {parent, label, fwd == 1, qedge};
  }
  if (!tr.exhausted()) {
    return fail(Status::Corruption("trailing bytes in tree section"));
  }
  QueryTree tree;
  if (!QueryTree::FromParentEdges(*q, root, parents, &tree)) {
    return fail(
        Status::Corruption("parent edges do not form a spanning tree"));
  }

  // Data graph: deserialized from the snapshot in standalone mode
  // (self-validating: mirrors cross-checked, ids bounded), or bound to the
  // caller's shared graph, which must already hold the state the snapshot
  // was taken against.
  Graph g;
  if (shared_graph == nullptr) {
    bin::Reader gr(gbuf);
    if (!(st = g.Deserialize(gr)).ok()) return fail(st);
    if (!gr.exhausted()) {
      return fail(Status::Corruption("trailing bytes in graph section"));
    }
  }

  // Commit the engine's identity, then decode the DCG bound to the
  // now-final tree_ member (the Dcg keeps a pointer to it).
  owned_q_ = std::move(q);
  q_ = owned_q_.get();
  g_ = std::move(g);
  shared_g_ = shared_graph;
  tree_ = std::move(tree);
  bin::Reader dr(dbuf);
  if (!(st = dcg_.Deserialize(dr, G().VertexCount(), tree_)).ok()) {
    return fail(st);
  }
  if (!dr.exhausted()) {
    return fail(Status::Corruption("trailing bytes in DCG section"));
  }

  // Matching-order state. The order must be a permutation in which every
  // vertex follows its tree parent, or SubgraphSearch would dereference an
  // unmapped parent.
  bin::Reader er(ebuf);
  uint32_t nmo = 0;
  if (!er.GetU32(&nmo) || nmo != nq) {
    return fail(Status::Corruption("bad matching-order length"));
  }
  std::vector<QVertexId> mo(nmo);
  uint64_t seen = 0;
  std::vector<size_t> pos(nq, 0);
  for (uint32_t i = 0; i < nmo; ++i) {
    if (!er.GetU32(&mo[i]) || mo[i] >= nq || (seen & (uint64_t{1} << mo[i]))) {
      return fail(Status::Corruption("matching order is not a permutation"));
    }
    seen |= uint64_t{1} << mo[i];
    pos[mo[i]] = i;
  }
  for (QVertexId u = 0; u < nq; ++u) {
    if (u != root && pos[tree_.Parent(u)] >= pos[u]) {
      return fail(Status::Corruption(
          "matching order places a vertex before its tree parent"));
    }
  }
  uint32_t ncnt = 0;
  if (!er.GetU32(&ncnt) || ncnt != nq) {
    return fail(Status::Corruption("bad order-counts length"));
  }
  std::vector<uint64_t> counts(ncnt);
  for (uint32_t i = 0; i < ncnt; ++i) {
    if (!er.GetU64(&counts[i])) {
      return fail(Status::Corruption("truncated order counts"));
    }
  }
  uint64_t since_check = 0, recomputes = 0;
  if (!er.GetU64(&since_check) || !er.GetU64(&recomputes) ||
      !er.exhausted()) {
    return fail(Status::Corruption("malformed engine-state section"));
  }

  mo_ = std::move(mo);
  order_counts_snapshot_ = std::move(counts);
  ops_since_adjust_check_ = static_cast<size_t>(since_check);
  order_recomputes_ = static_cast<size_t>(recomputes);

  RebuildDerivedIndexes();

  applied_ops_ = applied;
  // Quarantine reports at or past the snapshot position will be re-issued
  // by replay; drop them so each consumed op is reported exactly once.
  std::erase_if(quarantine_, [this](const QuarantinedOp& e) {
    return e.index >= applied_ops_;
  });

  has_updated_edge_ = false;
  deadline_ = nullptr;
  search_enabled_ = true;
  suppress_adjust_ = false;
  dead_ = false;

  // The parallel runtime is bound to the pre-restore query/graph; rebuild
  // it lazily on the next batch.
  replicas_.clear();
  scheduler_.reset();
  state_version_ = 0;
  replica_version_ = 0;

  // Restore is not an op-stream event: engine counters keep accumulating
  // across it (replayed ops are re-counted; DESIGN.md §3.8), only the
  // gauges are re-pointed at the restored structure.
  stats_.intermediate_size.Set(dcg_.EdgeCount());
  stats_.peak_intermediate.SetMax(dcg_.EdgeCount());
  NotePeakIntermediate();
  return Status::Ok();
}

}  // namespace turboflux
