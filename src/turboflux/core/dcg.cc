#include "turboflux/core/dcg.h"

#include <algorithm>
#include <cassert>

namespace turboflux {

namespace {
const std::vector<Dcg::InEdge> kNoInEdges;
const std::vector<Dcg::OutEdge> kNoOutEdges;
}  // namespace

char DcgStateChar(DcgState s) {
  switch (s) {
    case DcgState::kNull:
      return 'N';
    case DcgState::kImplicit:
      return 'I';
    case DcgState::kExplicit:
      return 'E';
  }
  return '?';
}

void Dcg::Reset(size_t num_data_vertices, const QueryTree& tree) {
  tree_ = &tree;
  num_qv_ = tree.VertexCount();
  slot_of_.assign(num_data_vertices, kNoSlot);
  pool_.clear();
  edge_count_ = 0;
  explicit_count_ = 0;
  explicit_per_qv_.assign(num_qv_, 0);
}

void Dcg::CopyFrom(const Dcg& other, const QueryTree& tree) {
  assert(tree.VertexCount() == other.num_qv_);
  tree_ = &tree;
  num_qv_ = other.num_qv_;
  slot_of_ = other.slot_of_;
  pool_ = other.pool_;
  edge_count_ = other.edge_count_;
  explicit_count_ = other.explicit_count_;
  explicit_per_qv_ = other.explicit_per_qv_;
}

uint32_t Dcg::EnsureSlot(VertexId v) {
  assert(v < slot_of_.size());
  if (slot_of_[v] == kNoSlot) {
    slot_of_[v] = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back(num_qv_);
  }
  return slot_of_[v];
}

DcgState Dcg::GetState(VertexId from, QVertexId u, VertexId to) const {
  const Node* node = GetNode(to);
  if (node == nullptr) return DcgState::kNull;
  for (const InEdge& e : node->in[u]) {
    if (e.from == from) return e.state;
  }
  return DcgState::kNull;
}

const std::vector<Dcg::InEdge>& Dcg::InEdgesOf(VertexId v, QVertexId u) const {
  const Node* node = GetNode(v);
  return node == nullptr ? kNoInEdges : node->in[u];
}

const std::vector<Dcg::OutEdge>& Dcg::OutEdgesOf(VertexId v,
                                                 QVertexId u) const {
  const Node* node = GetNode(v);
  return node == nullptr ? kNoOutEdges : node->out[u];
}

size_t Dcg::ExplicitOutCount(VertexId v, QVertexId u) const {
  const Node* node = GetNode(v);
  return node == nullptr ? 0 : node->explicit_out[u];
}

bool Dcg::HasInEdge(VertexId v, QVertexId u) const {
  const Node* node = GetNode(v);
  return node != nullptr && (node->in_bits >> u) & 1;
}

bool Dcg::MatchAllChildren(VertexId v, QVertexId u) const {
  uint64_t mask = tree_->ChildrenMask(u);
  if (mask == 0) return true;  // u is a leaf of the query tree
  const Node* node = GetNode(v);
  if (node == nullptr) return false;
  return (node->explicit_out_bits & mask) == mask;
}

void Dcg::SetState(VertexId from, QVertexId u, VertexId to, DcgState next) {
  const uint32_t to_slot = EnsureSlot(to);
  // Look up the edge by index, not reference: EnsureSlot(from) below can
  // grow the pool and move every Node, which would dangle a held
  // reference to to's in-list (the vector object moves with its Node).
  size_t in_idx;
  DcgState prev = DcgState::kNull;
  {
    const std::vector<InEdge>& in = pool_[to_slot].in[u];
    in_idx = in.size();
    for (size_t i = 0; i < in.size(); ++i) {
      if (in[i].from == from) {
        in_idx = i;
        prev = in[i].state;
        break;
      }
    }
  }
  if (prev == next) {
    assert(prev == DcgState::kNull);  // only NULL->NULL is an idempotent call
    return;
  }
  // Legal transitions (Figure 5): 1: N->I, 2: I->E, 3: E->N, 4: E->I,
  // 5: I->N.
  assert(prev != DcgState::kNull || next == DcgState::kImplicit);

  if (stats_ != nullptr) {
    stats_->transitions.Inc();
    if (prev == DcgState::kNull) {
      stats_->null_to_implicit.Inc();
    } else if (prev == DcgState::kImplicit) {
      (next == DcgState::kExplicit ? stats_->implicit_to_explicit
                                   : stats_->implicit_to_null)
          .Inc();
    } else {
      (next == DcgState::kImplicit ? stats_->explicit_to_implicit
                                   : stats_->explicit_to_null)
          .Inc();
    }
  }

  const bool has_out_mirror = from != kArtificialVertex;
  // Ensure the mirror's slot BEFORE taking any Node reference: this is
  // the only call left that can grow the pool and move nodes. It stays
  // behind the early NULL->NULL return above — a no-op call must not
  // newly populate `from`'s node (the populated set is serialized).
  const uint32_t from_slot = has_out_mirror ? EnsureSlot(from) : kNoSlot;
  Node& to_node = pool_[to_slot];
  std::vector<InEdge>& in = to_node.in[u];

  // Maintain the in-list.
  if (prev == DcgState::kNull) {
    in.push_back({from, next});
    to_node.in_bits |= (uint64_t{1} << u);
    ++edge_count_;
  } else if (next == DcgState::kNull) {
    in[in_idx] = in.back();
    in.pop_back();
    if (in.empty()) to_node.in_bits &= ~(uint64_t{1} << u);
    --edge_count_;
  } else {
    in[in_idx].state = next;
  }

  // Maintain the out-mirror.
  if (has_out_mirror) {
    Node& from_node = pool_[from_slot];
    std::vector<OutEdge>& out = from_node.out[u];
    if (prev == DcgState::kNull) {
      out.push_back({to, next});
    } else {
      auto out_it =
          std::find_if(out.begin(), out.end(),
                       [&](const OutEdge& e) { return e.to == to; });
      assert(out_it != out.end());
      if (next == DcgState::kNull) {
        *out_it = out.back();
        out.pop_back();
      } else {
        out_it->state = next;
      }
    }
    // Maintain explicit-out counters and the MatchAllChildren bitmap.
    if (next == DcgState::kExplicit) {
      if (++from_node.explicit_out[u] == 1) {
        from_node.explicit_out_bits |= (uint64_t{1} << u);
      }
    } else if (prev == DcgState::kExplicit) {
      assert(from_node.explicit_out[u] > 0);
      if (--from_node.explicit_out[u] == 0) {
        from_node.explicit_out_bits &= ~(uint64_t{1} << u);
      }
    }
  }

  // Maintain global explicit counters (artificial edges included).
  if (next == DcgState::kExplicit) {
    ++explicit_count_;
    ++explicit_per_qv_[u];
  } else if (prev == DcgState::kExplicit) {
    --explicit_count_;
    --explicit_per_qv_[u];
  }
}

void Dcg::Serialize(std::string& out) const {
  bin::PutU64(out, slot_of_.size());
  bin::PutU32(out, static_cast<uint32_t>(num_qv_));
  bin::PutU64(out, pool_.size());
  // Iteration is by vertex id, not slot order, so the bytes are
  // independent of pool allocation order.
  for (VertexId v = 0; v < slot_of_.size(); ++v) {
    const Node* node = GetNode(v);
    if (node == nullptr) continue;
    bin::PutU32(out, v);
    for (QVertexId u = 0; u < num_qv_; ++u) {
      bin::PutU32(out, static_cast<uint32_t>(node->in[u].size()));
      for (const InEdge& e : node->in[u]) {
        bin::PutU32(out, e.from);
        bin::PutU8(out, static_cast<uint8_t>(e.state));
      }
      bin::PutU32(out, static_cast<uint32_t>(node->out[u].size()));
      for (const OutEdge& e : node->out[u]) {
        bin::PutU32(out, e.to);
        bin::PutU8(out, static_cast<uint8_t>(e.state));
      }
    }
  }
}

Status Dcg::Deserialize(bin::Reader& in, size_t num_data_vertices,
                        const QueryTree& tree) {
  Reset(num_data_vertices, tree);
  auto fail = [this](const std::string& what) {
    slot_of_.clear();
    pool_.clear();
    edge_count_ = 0;
    explicit_count_ = 0;
    explicit_per_qv_.assign(num_qv_, 0);
    return Status::Corruption("dcg: " + what);
  };
  uint64_t nv = 0;
  uint32_t nq = 0;
  uint64_t populated = 0;
  if (!in.GetU64(&nv) || !in.GetU32(&nq) || !in.GetU64(&populated)) {
    return fail("truncated header");
  }
  if (nv != num_data_vertices || nq != num_qv_ || populated > nv) {
    return fail("header disagrees with bound universe");
  }
  auto decode_state = [](uint8_t raw, DcgState* out_state) {
    if (raw != static_cast<uint8_t>(DcgState::kImplicit) &&
        raw != static_cast<uint8_t>(DcgState::kExplicit)) {
      return false;  // stored edges are never NULL
    }
    *out_state = static_cast<DcgState>(raw);
    return true;
  };
  for (uint64_t i = 0; i < populated; ++i) {
    uint32_t v = 0;
    if (!in.GetU32(&v) || v >= slot_of_.size()) return fail("bad node id");
    if (slot_of_[v] != kNoSlot) return fail("duplicate node");
    // Safe to hold across the body: EnsureSlot is not called again until
    // the next loop iteration re-takes the reference.
    Node& node = pool_[EnsureSlot(v)];
    for (QVertexId u = 0; u < num_qv_; ++u) {
      uint32_t n_in = 0;
      if (!in.GetLength(&n_in, in.remaining() / 5)) {
        return fail("bad in-list length");
      }
      node.in[u].resize(n_in);
      for (uint32_t k = 0; k < n_in; ++k) {
        InEdge& e = node.in[u][k];
        uint8_t raw = 0;
        if (!in.GetU32(&e.from) || !in.GetU8(&raw) ||
            !decode_state(raw, &e.state)) {
          return fail("bad in edge");
        }
        if (e.from != kArtificialVertex && e.from >= slot_of_.size()) {
          return fail("in edge source out of range");
        }
        ++edge_count_;
        if (e.state == DcgState::kExplicit) {
          ++explicit_count_;
          ++explicit_per_qv_[u];
        }
      }
      if (n_in > 0) node.in_bits |= (uint64_t{1} << u);
      uint32_t n_out = 0;
      if (!in.GetLength(&n_out, in.remaining() / 5)) {
        return fail("bad out-list length");
      }
      node.out[u].resize(n_out);
      for (uint32_t k = 0; k < n_out; ++k) {
        OutEdge& e = node.out[u][k];
        uint8_t raw = 0;
        if (!in.GetU32(&e.to) || !in.GetU8(&raw) ||
            !decode_state(raw, &e.state)) {
          return fail("bad out edge");
        }
        if (e.to >= slot_of_.size()) {
          return fail("out edge target out of range");
        }
        if (e.state == DcgState::kExplicit) {
          if (++node.explicit_out[u] == 1) {
            node.explicit_out_bits |= (uint64_t{1} << u);
          }
        }
      }
    }
  }
  // The decoded lists must form a mutually consistent DCG (in/out mirrors
  // agree edge-for-edge); Validate also recounts every counter.
  std::string violation = Validate();
  if (!violation.empty()) return fail(violation);
  return Status::Ok();
}

std::vector<Dcg::EdgeTuple> Dcg::Snapshot() const {
  std::vector<EdgeTuple> edges;
  edges.reserve(edge_count_);
  for (VertexId v = 0; v < slot_of_.size(); ++v) {
    const Node* node = GetNode(v);
    if (node == nullptr) continue;
    for (QVertexId u = 0; u < num_qv_; ++u) {
      for (const InEdge& e : node->in[u]) {
        edges.emplace_back(e.from, u, v, e.state);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::string Dcg::Validate() const {
  auto describe = [](VertexId from, QVertexId u, VertexId to) {
    std::string s = "edge (";
    if (from == kArtificialVertex) {
      s += "v*";
    } else {
      s += "v";
      s += std::to_string(from);
    }
    s += ",u";
    s += std::to_string(u);
    s += ",v";
    s += std::to_string(to);
    s += ")";
    return s;
  };

  size_t edges = 0;
  size_t explicit_edges = 0;
  std::vector<uint64_t> explicit_per_qv(num_qv_, 0);

  for (VertexId v = 0; v < slot_of_.size(); ++v) {
    const Node* node = GetNode(v);
    if (node == nullptr) continue;
    for (QVertexId u = 0; u < num_qv_; ++u) {
      // in_bits bit u <=> in[u] non-empty.
      bool bit = (node->in_bits >> u) & 1;
      if (bit != !node->in[u].empty()) {
        {
          std::string msg = "in_bits bit ";
          msg += std::to_string(u);
          msg += " wrong at v";
          msg += std::to_string(v);
          return msg;
        }
      }
      for (const InEdge& e : node->in[u]) {
        if (e.state == DcgState::kNull) {
          return describe(e.from, u, v) + " stored with NULL state";
        }
        ++edges;
        if (e.state == DcgState::kExplicit) {
          ++explicit_edges;
          ++explicit_per_qv[u];
        }
        // The out mirror must hold the same edge with the same state.
        if (e.from != kArtificialVertex) {
          const Node* from_node = GetNode(e.from);
          if (from_node == nullptr) {
            return describe(e.from, u, v) + " missing source node";
          }
          bool found = false;
          for (const OutEdge& o : from_node->out[u]) {
            if (o.to == v) {
              if (o.state != e.state) {
                return describe(e.from, u, v) + " state mismatch in mirror";
              }
              found = true;
              break;
            }
          }
          if (!found) return describe(e.from, u, v) + " missing out mirror";
        }
      }
      // Explicit-out counter and bitmap.
      uint32_t explicit_out = 0;
      for (const OutEdge& o : node->out[u]) {
        // Every out edge must have an in mirror.
        const Node* to_node = GetNode(o.to);
        bool found = false;
        if (to_node != nullptr) {
          for (const InEdge& e : to_node->in[u]) {
            if (e.from == v) {
              found = e.state == o.state;
              break;
            }
          }
        }
        if (!found) return describe(v, u, o.to) + " missing in mirror";
        if (o.state == DcgState::kExplicit) ++explicit_out;
      }
      if (node->explicit_out[u] != explicit_out) {
        std::string msg = "explicit_out count wrong at v";
        msg += std::to_string(v);
        msg += " u";
        msg += std::to_string(u);
        return msg;
      }
      bool ebit = (node->explicit_out_bits >> u) & 1;
      if (ebit != (explicit_out > 0)) {
        std::string msg = "explicit_out_bits wrong at v";
        msg += std::to_string(v);
        msg += " u";
        msg += std::to_string(u);
        return msg;
      }
    }
  }
  if (edges != edge_count_) return "edge_count_ mismatch";
  if (explicit_edges != explicit_count_) return "explicit_count_ mismatch";
  for (QVertexId u = 0; u < num_qv_; ++u) {
    if (explicit_per_qv[u] != explicit_per_qv_[u]) {
      std::string msg = "explicit_per_qv_ mismatch at u";
      msg += std::to_string(u);
      return msg;
    }
  }
  return "";
}

std::string Dcg::ToString() const {
  std::string out;
  for (const EdgeTuple& e : Snapshot()) {
    VertexId from = std::get<0>(e);
    out += "(";
    if (from == kArtificialVertex) {
      out += "v*";
    } else {
      out += "v";
      out += std::to_string(from);
    }
    out += ",u";
    out += std::to_string(std::get<1>(e));
    out += ",v";
    out += std::to_string(std::get<2>(e));
    out += ")=";
    out += DcgStateChar(std::get<3>(e));
    out += " ";
  }
  return out;
}

}  // namespace turboflux
