#ifndef TURBOFLUX_CORE_DCG_H_
#define TURBOFLUX_CORE_DCG_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "turboflux/common/serialize.h"
#include "turboflux/common/status.h"
#include "turboflux/common/types.h"
#include "turboflux/obs/engine_stats.h"
#include "turboflux/query/query_tree.h"

namespace turboflux {

/// State of a DCG edge (Section 3.1). NULL edges are hypothetical and never
/// stored; a stored edge is IMPLICIT or EXPLICIT.
enum class DcgState : uint8_t {
  kNull = 0,
  kImplicit = 1,
  kExplicit = 2,
};

char DcgStateChar(DcgState s);

/// The data-centric graph (DCG): the paper's concise representation of
/// intermediate results. A DCG edge (v, u', v') records the candidate query
/// vertex u' for data vertex v' reached from parent data vertex v:
///
///  * IMPLICIT — a data path v_s ~> v.v' matches u_s ~> P(u').u', but some
///    subtree of u' is not yet matched under v' (Definition 5);
///  * EXPLICIT — additionally every subtree of u' matches under v'
///    (Definition 4).
///
/// Stored per data vertex (lazily allocated) as incoming and outgoing
/// adjacency keyed by the query vertex label, plus bitmaps that make
/// MatchAllChildren (Algorithm 4) a single mask test. The artificial start
/// vertex v_s* appears only as kArtificialVertex in the in-lists of start
/// vertices.
///
/// All mutations go through SetState, which keeps the in/out mirrors,
/// counters, and bitmaps consistent.
class Dcg {
 public:
  struct InEdge {
    VertexId from;
    DcgState state;
  };
  struct OutEdge {
    VertexId to;
    DcgState state;
  };

  /// One stored DCG edge, used for snapshots and tests.
  using EdgeTuple = std::tuple<VertexId, QVertexId, VertexId, DcgState>;

  Dcg() = default;

  /// Clears all state and binds the DCG to a query tree and a data-vertex
  /// universe of the given size.
  void Reset(size_t num_data_vertices, const QueryTree& tree);

  /// Deep copy of `other`, bound to `tree` instead of other's tree. `tree`
  /// must describe the same query tree (typically the copying engine's own
  /// QueryTree instance); used to clone engine replicas for the parallel
  /// batch executor.
  void CopyFrom(const Dcg& other, const QueryTree& tree);

  /// Current state of the DCG edge (from, u, to); kNull if not stored.
  DcgState GetState(VertexId from, QVertexId u, VertexId to) const;

  /// Transitions edge (from, u, to) to `next`. kNull removes the edge;
  /// transitioning an absent edge to kNull is a no-op. Asserts that the
  /// transition is one of the legal ones in the edge transition diagram
  /// (Figure 5).
  void SetState(VertexId from, QVertexId u, VertexId to, DcgState next);

  /// Incoming DCG edges of v labeled u (both IMPLICIT and EXPLICIT) —
  /// GetImplAndExplEdges(v, u, in) in the paper's pseudocode.
  const std::vector<InEdge>& InEdgesOf(VertexId v, QVertexId u) const;

  /// Outgoing DCG edges of v labeled u (both states).
  const std::vector<OutEdge>& OutEdgesOf(VertexId v, QVertexId u) const;

  size_t InCount(VertexId v, QVertexId u) const {
    return InEdgesOf(v, u).size();
  }

  /// Number of outgoing EXPLICIT edges of v labeled u —
  /// |GetExplEdges(v, u, out)|.
  size_t ExplicitOutCount(VertexId v, QVertexId u) const;

  /// True iff v has any incoming (IMPLICIT or EXPLICIT) edge labeled u.
  bool HasInEdge(VertexId v, QVertexId u) const;

  /// O(1) MatchAllChildren(v, u) (Algorithm 4): v has at least one
  /// outgoing EXPLICIT edge for every child of u in the query tree.
  bool MatchAllChildren(VertexId v, QVertexId u) const;

  /// Total stored edges (IMPLICIT + EXPLICIT, including artificial start
  /// edges) — the paper's intermediate-result size for TurboFlux.
  size_t EdgeCount() const { return edge_count_; }
  size_t ExplicitEdgeCount() const { return explicit_count_; }

  /// Number of EXPLICIT edges labeled u, maintained incrementally; used by
  /// AdjustMatchingOrder's drift detection.
  uint64_t ExplicitCountFor(QVertexId u) const {
    return explicit_per_qv_[u];
  }

  /// Sorted list of every stored edge; equality of snapshots is the
  /// "incrementally maintained DCG == rebuilt-from-scratch DCG" oracle.
  std::vector<EdgeTuple> Snapshot() const;

  /// Appends a binary encoding of the DCG to `out`. The per-node in/out
  /// adjacency *orders* are preserved exactly (they determine match
  /// enumeration order), so a deserialized DCG reproduces the original's
  /// subsequent match stream byte-for-byte, not just its edge set.
  void Serialize(std::string& out) const;

  /// Rebuilds the DCG from `in`, bound to `tree` over a data-vertex
  /// universe of `num_data_vertices`. Bitmaps and counters are recomputed
  /// from the decoded lists and the result is cross-checked with
  /// Validate(), so corrupted input yields a kCorruption status (with the
  /// DCG left empty), never a crash or an inconsistent structure.
  Status Deserialize(bin::Reader& in, size_t num_data_vertices,
                     const QueryTree& tree);

  /// Exhaustive internal-consistency check: the in/out mirrors agree
  /// edge-for-edge and state-for-state, every bitmap bit reflects its
  /// list, and every counter equals a recount. Returns an empty string
  /// when consistent, else a description of the first violation. O(size
  /// of the DCG); meant for tests and debug assertions.
  std::string Validate() const;

  std::string ToString() const;

  /// Binds transition counters bumped by SetState (nullptr detaches). The
  /// binding is an observer, not state: Reset/CopyFrom/Deserialize leave
  /// it untouched, and Deserialize's direct list rebuild is not counted —
  /// the counters track logical transitions only.
  void set_stats(obs::DcgStats* stats) { stats_ = stats; }

  /// Number of data vertices that ever had a node allocated (a node is
  /// never freed once allocated, even when all its edges are removed —
  /// the populated set is part of the serialized format).
  size_t PopulatedNodeCount() const { return pool_.size(); }

 private:
  struct Node {
    explicit Node(size_t nq)
        : in(nq), out(nq), explicit_out(nq, 0) {}

    std::vector<std::vector<InEdge>> in;
    std::vector<std::vector<OutEdge>> out;
    std::vector<uint32_t> explicit_out;
    uint64_t in_bits = 0;            // bit u: in[u] non-empty
    uint64_t explicit_out_bits = 0;  // bit u: explicit_out[u] > 0
  };

  // Nodes live in one contiguous pool (DESIGN.md §3.11), indexed through
  // slot_of_ (kNoSlot = not populated), replacing a unique_ptr per vertex:
  // the lookup is an index load instead of a pointer chase, and nodes
  // touched together sit near each other. Slot assignment order is an
  // allocation detail — Serialize/Snapshot iterate by vertex id — so it
  // is not observable.
  //
  // Lifetime rule: pool growth (EnsureSlot) moves Node objects, so Node
  // references must be re-taken after any EnsureSlot call. Iterators into
  // a node's INNER lists survive growth (vector move keeps heap buffers),
  // but plain `Node&`/`Node*` do not.
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  Node* GetNode(VertexId v) const {
    if (v >= slot_of_.size() || slot_of_[v] == kNoSlot) return nullptr;
    return const_cast<Node*>(&pool_[slot_of_[v]]);
  }
  uint32_t EnsureSlot(VertexId v);

  const QueryTree* tree_ = nullptr;
  size_t num_qv_ = 0;
  std::vector<uint32_t> slot_of_;
  std::vector<Node> pool_;
  size_t edge_count_ = 0;
  size_t explicit_count_ = 0;
  std::vector<uint64_t> explicit_per_qv_;
  obs::DcgStats* stats_ = nullptr;  // not owned; see set_stats
};

}  // namespace turboflux

#endif  // TURBOFLUX_CORE_DCG_H_
