#include "turboflux/core/matching_order.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>  // tfx-lint: allow(hot-path-map)

namespace turboflux {

std::vector<double> ExplicitPathCounts(const QueryTree& tree, const Dcg& dcg,
                                       const std::vector<VertexId>& starts) {
  const size_t nq = tree.VertexCount();
  std::vector<double> counts(nq, 0.0);
  // frontier[u]: data vertex -> number of explicit paths spelling
  // u_s ~> u that end at it. Per-recompute scratch, not per-op probe
  // state. tfx-lint: allow(hot-path-map)
  std::vector<std::unordered_map<VertexId, double>> frontier(nq);

  QVertexId root = tree.root();
  for (VertexId v : starts) {
    if (dcg.GetState(kArtificialVertex, root, v) == DcgState::kExplicit) {
      frontier[root][v] = 1.0;
      counts[root] += 1.0;
    }
  }
  for (QVertexId u : tree.BfsOrder()) {
    for (QVertexId c : tree.Children(u)) {
      for (const auto& [v, paths] : frontier[u]) {
        for (const Dcg::OutEdge& e : dcg.OutEdgesOf(v, c)) {
          if (e.state != DcgState::kExplicit) continue;
          frontier[c][e.to] += paths;
          counts[c] += paths;
        }
      }
    }
  }
  return counts;
}

std::vector<QVertexId> DetermineMatchingOrder(
    const QueryTree& tree, const Dcg& dcg,
    const std::vector<VertexId>& starts) {
  const size_t nq = tree.VertexCount();
  std::vector<double> counts = ExplicitPathCounts(tree, dcg, starts);

  // Estimated fan-out of each non-root tree edge: how many extensions a
  // partial solution gains, on average, when its child query vertex is
  // matched. Zero-count trees (no explicit paths yet) fall back to a
  // neutral fan-out so the order is still a valid BFS-compatible order.
  //
  // Query vertices with incident non-tree edges get their fan-out
  // discounted so they are matched *early*: once both endpoints of a
  // non-tree edge are bound, IsJoinable prunes with an O(1) edge probe,
  // which is the cheapest filter available (TurboISO applies the same
  // bias when ordering candidate regions). Without the discount, cyclic
  // queries on non-selective data defer the cycle check until the
  // pattern's heaviest part is already enumerated.
  std::vector<double> fanout(nq, 1.0);
  for (QVertexId u = 0; u < nq; ++u) {
    if (tree.IsRoot(u)) continue;
    double parent = counts[tree.Parent(u)];
    fanout[u] = parent > 0.0 ? counts[u] / parent : 1.0;
    for (size_t i = 0; i < tree.IncidentNonTreeEdges(u).size(); ++i) {
      fanout[u] *= 0.25;
    }
  }

  // Shrink the tree: repeatedly remove the current leaf with the largest
  // fan-out (removing it shrinks the estimated partial-solution count the
  // most); ties broken by smaller id for determinism.
  std::vector<size_t> live_children(nq, 0);
  for (QVertexId u = 0; u < nq; ++u) live_children[u] = tree.Children(u).size();
  std::vector<bool> removed(nq, false);
  std::vector<QVertexId> removal_order;
  for (size_t step = 0; step + 1 < nq; ++step) {
    QVertexId best = kNullQVertex;
    for (QVertexId u = 0; u < nq; ++u) {
      if (removed[u] || tree.IsRoot(u) || live_children[u] != 0) continue;
      if (best == kNullQVertex || fanout[u] > fanout[best] ||
          (fanout[u] == fanout[best] && u < best)) {
        best = u;
      }
    }
    assert(best != kNullQVertex);
    removed[best] = true;
    --live_children[tree.Parent(best)];
    removal_order.push_back(best);
  }

  std::vector<QVertexId> order;
  order.reserve(nq);
  order.push_back(tree.root());
  for (auto it = removal_order.rbegin(); it != removal_order.rend(); ++it) {
    order.push_back(*it);
  }
  assert(order.size() == nq);
  return order;
}

}  // namespace turboflux
