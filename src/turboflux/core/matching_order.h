#ifndef TURBOFLUX_CORE_MATCHING_ORDER_H_
#define TURBOFLUX_CORE_MATCHING_ORDER_H_

#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/core/dcg.h"
#include "turboflux/query/query_tree.h"

namespace turboflux {

/// Number of explicit data paths ending at each query vertex: C(u) is the
/// count of distinct DCG paths v_s* ~> v whose edges are all EXPLICIT and
/// whose labels spell the query-tree path u_s ~> u. Computed by dynamic
/// programming down the query tree (Section 4.1 uses these counts to
/// estimate partial-solution cardinalities).
std::vector<double> ExplicitPathCounts(const QueryTree& tree, const Dcg& dcg,
                                       const std::vector<VertexId>& starts);

/// Determines the matching order (Section 4.1): starting from the full
/// query tree, greedily shrink it by removing one leaf at a time, choosing
/// the removal that most reduces the estimated partial-solution count of
/// the remaining tree (i.e., the leaf with the largest estimated fan-out);
/// the reverse removal order is the matching order. Parents always precede
/// children, and the root (the start query vertex) is always first.
std::vector<QVertexId> DetermineMatchingOrder(const QueryTree& tree,
                                              const Dcg& dcg,
                                              const std::vector<VertexId>&
                                                  starts);

}  // namespace turboflux

#endif  // TURBOFLUX_CORE_MATCHING_ORDER_H_
