#include "turboflux/core/multi_query.h"

#include <cassert>

namespace turboflux {

/// Adapts the per-engine MatchSink interface to the tagged Sink.
class MultiQueryEngine::TaggingSink : public MatchSink {
 public:
  TaggingSink(QueryId query, Sink& sink) : query_(query), sink_(sink) {}

  void OnMatch(bool positive, const Mapping& m) override {
    sink_.OnMatch(query_, positive, m);
  }

 private:
  QueryId query_;
  Sink& sink_;
};

MultiQueryEngine::MultiQueryEngine(TurboFluxOptions options)
    : options_(options) {}

QueryId MultiQueryEngine::AddQuery(QueryGraph query) {
  assert(!initialized_);
  QueryId id = static_cast<QueryId>(queries_.size());
  queries_.push_back(std::make_unique<QueryGraph>(std::move(query)));
  engines_.push_back(std::make_unique<TurboFluxEngine>(options_));
  return id;
}

bool MultiQueryEngine::Init(const Graph& g0, Sink& sink, Deadline deadline) {
  assert(!initialized_);
  initialized_ = true;
  for (QueryId id = 0; id < engines_.size(); ++id) {
    TaggingSink tagged(id, sink);
    if (!engines_[id]->Init(*queries_[id], g0, tagged, deadline)) {
      return false;
    }
  }
  return true;
}

bool MultiQueryEngine::ApplyUpdate(const UpdateOp& op, Sink& sink,
                                   Deadline deadline) {
  return ApplyUpdateReporting(op, sink, deadline, nullptr);
}

bool MultiQueryEngine::ApplyUpdateReporting(const UpdateOp& op, Sink& sink,
                                            Deadline deadline,
                                            std::vector<QueryId>* applied) {
  assert(initialized_);
  for (QueryId id = 0; id < engines_.size(); ++id) {
    TaggingSink tagged(id, sink);
    if (!engines_[id]->ApplyUpdate(op, tagged, deadline)) return false;
    if (applied != nullptr) applied->push_back(id);
  }
  return true;
}

size_t MultiQueryEngine::IntermediateSize() const {
  size_t total = 0;
  for (const auto& engine : engines_) total += engine->IntermediateSize();
  return total;
}

}  // namespace turboflux
