#ifndef TURBOFLUX_CORE_MULTI_QUERY_H_
#define TURBOFLUX_CORE_MULTI_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "turboflux/core/turboflux.h"

namespace turboflux {

/// Identifier of a registered query within a MultiQueryEngine.
using QueryId = uint32_t;

/// DEPRECATED — use multi::QuerySet (DESIGN.md §3.10) for new code: it
/// shares one data graph across queries, routes each update to only the
/// queries it can affect, supports online Register/Deregister, and has a
/// whole-set checkpoint. This class is kept as the naive fan-out baseline
/// (per-query graph copies, every query evaluated on every update) for
/// the multi-query scaling bench and as a correctness reference.
///
/// Monitors many query patterns over one update stream — the deployment
/// shape of the paper's motivating applications (a fraud team or SOC
/// registers dozens of patterns, not one). Each registered query runs its
/// own TurboFlux engine; ApplyUpdate fans the update out and tags every
/// reported match with the originating query.
class MultiQueryEngine {
 public:
  /// Receives (query id, sign, mapping) callbacks.
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void OnMatch(QueryId query, bool positive, const Mapping& m) = 0;
  };

  explicit MultiQueryEngine(TurboFluxOptions options = {});

  /// Registers a query before Init. Returns its id (dense from 0).
  QueryId AddQuery(QueryGraph query);

  size_t QueryCount() const { return queries_.size(); }
  const QueryGraph& query(QueryId id) const { return *queries_[id]; }

  /// Initializes every registered query over g0, reporting each query's
  /// initial matches. Returns false on deadline expiry.
  bool Init(const Graph& g0, Sink& sink, Deadline deadline);

  /// Applies one update to every engine. Returns false if any engine hit
  /// the deadline (remaining engines are skipped; the MultiQueryEngine is
  /// then unusable).
  bool ApplyUpdate(const UpdateOp& op, Sink& sink, Deadline deadline);

  /// ApplyUpdate that reports the partial-fan-out hazard instead of hiding
  /// it: appends to `applied` the id of every query whose engine fully
  /// applied the op. On a mid-loop deadline expiry the result is a strict
  /// prefix of the registered queries — the caller can see exactly which
  /// engines are desynchronized (the failed engine and every skipped one),
  /// rather than inferring it from a bare false. A false return still
  /// leaves this MultiQueryEngine unusable; there is no recovery path —
  /// that is inherent to the per-query-copy design and one of the reasons
  /// it is deprecated in favor of multi::QuerySet, which keeps the op
  /// un-consumed and restores the whole set from one snapshot.
  bool ApplyUpdateReporting(const UpdateOp& op, Sink& sink, Deadline deadline,
                            std::vector<QueryId>* applied);

  /// Sum of the per-query DCG sizes.
  size_t IntermediateSize() const;

  const TurboFluxEngine& engine(QueryId id) const { return *engines_[id]; }

 private:
  class TaggingSink;

  TurboFluxOptions options_;
  std::vector<std::unique_ptr<QueryGraph>> queries_;
  std::vector<std::unique_ptr<TurboFluxEngine>> engines_;
  bool initialized_ = false;
};

}  // namespace turboflux

#endif  // TURBOFLUX_CORE_MULTI_QUERY_H_
