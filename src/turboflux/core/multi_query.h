#ifndef TURBOFLUX_CORE_MULTI_QUERY_H_
#define TURBOFLUX_CORE_MULTI_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "turboflux/core/turboflux.h"

namespace turboflux {

/// Identifier of a registered query within a MultiQueryEngine.
using QueryId = uint32_t;

/// Monitors many query patterns over one update stream — the deployment
/// shape of the paper's motivating applications (a fraud team or SOC
/// registers dozens of patterns, not one). Each registered query runs its
/// own TurboFlux engine; ApplyUpdate fans the update out and tags every
/// reported match with the originating query.
///
/// Each engine keeps a private copy of the data graph (the per-query DCGs
/// are independent anyway); sharing one graph across engines is a
/// possible future optimization and would not change any result.
class MultiQueryEngine {
 public:
  /// Receives (query id, sign, mapping) callbacks.
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void OnMatch(QueryId query, bool positive, const Mapping& m) = 0;
  };

  explicit MultiQueryEngine(TurboFluxOptions options = {});

  /// Registers a query before Init. Returns its id (dense from 0).
  QueryId AddQuery(QueryGraph query);

  size_t QueryCount() const { return queries_.size(); }
  const QueryGraph& query(QueryId id) const { return *queries_[id]; }

  /// Initializes every registered query over g0, reporting each query's
  /// initial matches. Returns false on deadline expiry.
  bool Init(const Graph& g0, Sink& sink, Deadline deadline);

  /// Applies one update to every engine. Returns false if any engine hit
  /// the deadline (remaining engines are skipped; the MultiQueryEngine is
  /// then unusable).
  bool ApplyUpdate(const UpdateOp& op, Sink& sink, Deadline deadline);

  /// Sum of the per-query DCG sizes.
  size_t IntermediateSize() const;

  const TurboFluxEngine& engine(QueryId id) const { return *engines_[id]; }

 private:
  class TaggingSink;

  TurboFluxOptions options_;
  std::vector<std::unique_ptr<QueryGraph>> queries_;
  std::vector<std::unique_ptr<TurboFluxEngine>> engines_;
  bool initialized_ = false;
};

}  // namespace turboflux

#endif  // TURBOFLUX_CORE_MULTI_QUERY_H_
