#include "turboflux/core/recovery.h"

// tfx-lint: allow-file(hot-path-purity) -- the resilient-run driver is the
// durability layer around the engine, not the per-op eval path: BufferSink
// locks by contract (MatchSink makes no single-threaded promise), and
// checkpoint save/load is file I/O by definition.

#include <algorithm>
#include <fstream>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"

namespace turboflux {

namespace {

/// Holds matches back until the surrounding run commits them. A failed op
/// or batch drops the buffer wholesale, which is what turns the engine's
/// at-least-once replay into the sink's exactly-once delivery.
///
/// mu_ guards the pending buffer: today the engine flushes batch matches
/// to the sink on the primary thread, but MatchSink makes no
/// single-threaded promise under parallel ApplyBatch, and the commit path
/// must never interleave with a late append. FlushTo forwards to the
/// downstream sink with mu_ released — the sink is user code and may
/// block or re-enter.
class BufferSink : public MatchSink {
 public:
  void OnMatch(bool positive, const Mapping& m) override EXCLUDES(mu_) {
    MutexLock lock(mu_);
    matches_.emplace_back(positive, m);
  }

  void FlushTo(MatchSink& sink) EXCLUDES(mu_) {
    std::vector<std::pair<bool, Mapping>> drained;
    {
      MutexLock lock(mu_);
      drained.swap(matches_);
    }
    for (const auto& [positive, m] : drained) sink.OnMatch(positive, m);
  }

  void Drop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    matches_.clear();
  }

 private:
  Mutex mu_;
  std::vector<std::pair<bool, Mapping>> matches_ GUARDED_BY(mu_);
};

}  // namespace

ResilientResult RunResilient(EngineInterface& engine, const QueryGraph& q,
                             const Graph& g0, const UpdateStream& stream,
                             MatchSink& sink,
                             const ResilientOptions& options) {
  ResilientResult result;
  Stopwatch watch;
  Deadline deadline = options.timeout_ms > 0
                          ? Deadline::AfterMillis(options.timeout_ms)
                          : Deadline::Infinite();
  engine.set_fault_injector(options.injector);

  BufferSink pending;
  std::string snapshot;    // last committed snapshot bytes
  uint64_t committed = 0;  // stream position of that snapshot

  auto finish = [&](bool ok, Status st) {
    engine.set_fault_injector(nullptr);
    result.ok = ok;
    result.status = std::move(st);
    result.ops_consumed = ok ? engine.applied_ops() : committed;
    result.quarantined = engine.quarantine().size();
    result.seconds = watch.ElapsedSeconds();
    if (options.collect_stats) {
      obs::StatsSnapshot s;
      s.AddCounter("run.ops_consumed", result.ops_consumed);
      s.AddCounter("run.initial_matches", result.initial_matches);
      s.AddCounter("run.recoveries", result.recoveries);
      s.AddCounter("run.checkpoints", result.checkpoints);
      s.AddCounter("run.quarantined", result.quarantined);
      if (const obs::EngineStats* es = engine.engine_stats()) {
        es->AppendTo(s, "engine.");
      }
      result.stats = std::move(s);
    }
    return result;
  };

  auto commit = [&]() -> Status {
    std::ostringstream os;
    Status st = engine.Checkpoint(os);
    if (!st.ok()) return st;
    snapshot = os.str();
    if (!options.checkpoint_path.empty()) {
      std::ofstream f(options.checkpoint_path,
                      std::ios::binary | std::ios::trunc);
      f.write(snapshot.data(),
              static_cast<std::streamsize>(snapshot.size()));
      f.flush();
      if (!f) {
        return Status::IoError("failed to write checkpoint file " +
                               options.checkpoint_path);
      }
    }
    pending.FlushTo(sink);
    committed = engine.applied_ops();
    ++result.checkpoints;
    return Status::Ok();
  };

  if (!options.restore_from.empty()) {
    std::ifstream f(options.restore_from, std::ios::binary);
    std::ostringstream contents;
    contents << f.rdbuf();
    if (!f) {
      return finish(false, Status::IoError("cannot read snapshot file " +
                                           options.restore_from));
    }
    snapshot = contents.str();
    std::istringstream is(snapshot);
    Status st = engine.Restore(is);
    if (!st.ok()) return finish(false, std::move(st));
    committed = engine.applied_ops();
  } else {
    // Initial matches are counted, not forwarded — the same convention as
    // RunContinuous, so the stream of matches delivered to `sink` is
    // identical across the plain and resilient runners.
    CountingSink initial;
    if (!engine.Init(q, g0, initial, deadline)) {
      return finish(false, Status::DeadlineExceeded(
                               "Init exceeded the time budget"));
    }
    result.initial_matches = initial.positive();
  }
  Status st = commit();
  if (!st.ok()) return finish(false, std::move(st));

  while (engine.applied_ops() < stream.size()) {
    const size_t pos = static_cast<size_t>(engine.applied_ops());
    const size_t n =
        options.batch_size > 1
            ? std::min(static_cast<size_t>(options.batch_size),
                       stream.size() - pos)
            : 1;
    Status step =
        n > 1 ? engine.TryApplyBatch(
                    std::span<const UpdateOp>(stream.data() + pos, n),
                    pending, deadline)
              : engine.TryApplyUpdate(stream[pos], pending, deadline);
    if (engine.dead()) {
      // Crash path: the partial matches in the buffer are unreliable.
      // Recover only when the real budget still has room (an injected
      // fault leaves the caller's deadline untouched).
      if (deadline.ExpiredNow()) {
        return finish(false, std::move(step));
      }
      if (++result.recoveries > options.max_recoveries) {
        return finish(false,
                      Status::FailedPrecondition(
                          "gave up after " +
                          std::to_string(options.max_recoveries) +
                          " recoveries"));
      }
      pending.Drop();
      std::istringstream is(snapshot);
      Status rst = engine.Restore(is);
      if (!rst.ok()) return finish(false, std::move(rst));
      continue;
    }
    // step is OK or an informational quarantine/no-op status; either way
    // the op(s) were consumed.
    bool timer_fired =
        options.checkpoint_request != nullptr &&
        options.checkpoint_request->exchange(false, std::memory_order_acq_rel);
    if (timer_fired ||
        (options.checkpoint_every > 0 &&
         engine.applied_ops() - committed >= options.checkpoint_every)) {
      st = commit();
      if (!st.ok()) return finish(false, std::move(st));
    }
  }

  st = commit();  // final flush (and final on-disk snapshot, if enabled)
  if (!st.ok()) return finish(false, std::move(st));
  return finish(true, Status::Ok());
}

}  // namespace turboflux
