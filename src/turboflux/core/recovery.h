#ifndef TURBOFLUX_CORE_RECOVERY_H_
#define TURBOFLUX_CORE_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "turboflux/common/status.h"
#include "turboflux/harness/engine.h"
#include "turboflux/harness/fault_injection.h"
#include "turboflux/obs/stats.h"

namespace turboflux {

/// Options for RunResilient (DESIGN.md §3.7).
struct ResilientOptions {
  /// Whole-run wall-clock budget (Init + stream + recoveries); <= 0 means
  /// unlimited. A run abandoned by a *real* expiry is not recovered — the
  /// committed prefix is the result.
  int64_t timeout_ms = 0;

  /// Take a checkpoint (and commit buffered matches) every N consumed ops;
  /// 0 checkpoints only after Init and at end-of-stream. Smaller N bounds
  /// replay work after a failure at the cost of more snapshot writes.
  size_t checkpoint_every = 0;

  /// Ops per engine call: 1 uses TryApplyUpdate, > 1 uses TryApplyBatch
  /// (parallel when the engine's `threads` option is > 1).
  int64_t batch_size = 1;

  /// Give up after this many restore-and-replay cycles.
  size_t max_recoveries = 8;

  /// When non-empty, every committed snapshot is also written to this file
  /// (latest wins), so a later process can resume via `restore_from`.
  std::string checkpoint_path;

  /// When non-empty, skip Init and resume from this snapshot file: the
  /// engine restarts at the snapshot's stream position and `stream` must
  /// be the same full stream the snapshot was taken against.
  std::string restore_from;

  /// Optional fault injector threaded through the engine for the run
  /// (tests); nullptr injects nothing.
  FaultInjector* injector = nullptr;

  /// Optional externally-driven checkpoint trigger (a timer thread in the
  /// ingestion service, a test's race probe). When non-null, the runner
  /// polls it between engine calls; if set, it commits immediately —
  /// exactly as if checkpoint_every had just elapsed — and clears the
  /// flag. The poll point is deliberately *between* ops, never inside
  /// one: a commit can land between an op's journal append (the engine
  /// consuming it) and its match flush, which is the race the concurrent-
  /// checkpoint property test pins as exactly-once-safe.
  std::atomic<bool>* checkpoint_request = nullptr;

  /// Export the engine's hot-path counters (plus run.* bookkeeping) into
  /// ResilientResult::stats. Note that engine counters accumulate across
  /// restore-and-replay cycles, so after a recovery they over-count the
  /// logical stream (DESIGN.md §3.8).
  bool collect_stats = false;
};

struct ResilientResult {
  bool ok = false;
  /// First fatal status when !ok (recovery limit, unrecoverable snapshot,
  /// real deadline expiry, I/O failure).
  Status status = Status::Ok();
  /// Stream position durably committed (matches up to here were delivered).
  uint64_t ops_consumed = 0;
  /// Positive matches of the initial graph, counted during Init but (as in
  /// RunContinuous) not forwarded to the sink. 0 when resuming a snapshot.
  uint64_t initial_matches = 0;
  size_t recoveries = 0;
  size_t quarantined = 0;
  size_t checkpoints = 0;
  double seconds = 0.0;
  /// Populated when ResilientOptions::collect_stats is set.
  std::optional<obs::StatsSnapshot> stats;
};

/// Runs `engine` over `stream` with crash-consistent recovery: matches are
/// buffered and only released to `sink` at checkpoint commit points, so a
/// mid-op failure (deadline expiry or injected fault) is handled by
/// dropping the buffer, restoring the last snapshot, and replaying the
/// journal suffix — the sink observes exactly the match stream of an
/// uninterrupted run, each match exactly once, in order.
ResilientResult RunResilient(EngineInterface& engine, const QueryGraph& q,
                             const Graph& g0, const UpdateStream& stream,
                             MatchSink& sink, const ResilientOptions& options);

}  // namespace turboflux

#endif  // TURBOFLUX_CORE_RECOVERY_H_
