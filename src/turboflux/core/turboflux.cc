#include "turboflux/core/turboflux.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <functional>
#include <utility>

#include "turboflux/core/matching_order.h"
#include "turboflux/query/query_stats.h"

namespace turboflux {

namespace {

/// Buffers one op's matches so the batch executor can merge per-op
/// buffers in stream order after the parallel phase. Matches are stored
/// flattened (sign + the mapping's vertex ids appended to one growing
/// array): a heap allocation per match would dominate the parallel
/// path's cost on match-dense streams.
class FlatMatchBuffer : public MatchSink {
 public:
  void OnMatch(bool positive, const Mapping& m) override {
    signs_.push_back(positive ? 1 : 0);
    sizes_.push_back(static_cast<uint32_t>(m.size()));
    flat_.insert(flat_.end(), m.begin(), m.end());
  }

  void Flush(MatchSink& sink, Mapping& scratch) const {
    size_t pos = 0;
    for (size_t i = 0; i < signs_.size(); ++i) {
      scratch.assign(flat_.begin() + static_cast<ptrdiff_t>(pos),
                     flat_.begin() + static_cast<ptrdiff_t>(pos + sizes_[i]));
      pos += sizes_[i];
      sink.OnMatch(signs_[i] != 0, scratch);
    }
  }

 private:
  std::vector<char> signs_;
  std::vector<uint32_t> sizes_;
  std::vector<VertexId> flat_;
};

}  // namespace

TurboFluxEngine::TurboFluxEngine(TurboFluxOptions options)
    : options_(options) {}

std::string TurboFluxEngine::name() const {
  return options_.semantics == MatchSemantics::kIsomorphism ? "TurboFlux-iso"
                                                            : "TurboFlux";
}

bool TurboFluxEngine::Init(const QueryGraph& q, const Graph& g0,
                           MatchSink& sink, Deadline deadline) {
  q_ = &q;
  owned_q_.reset();
  shared_g_ = nullptr;
  g_ = g0;
  return InitCommon(sink, deadline);
}

bool TurboFluxEngine::InitShared(const QueryGraph& q, const Graph* shared,
                                 MatchSink& sink, Deadline deadline) {
  assert(shared != nullptr);
  q_ = &q;
  owned_q_.reset();
  g_ = Graph();  // reads go through *shared; keep no private copy
  shared_g_ = shared;
  return InitCommon(sink, deadline);
}

bool TurboFluxEngine::InitCommon(MatchSink& sink, Deadline deadline) {
  assert(q_->VertexCount() > 0 && q_->EdgeCount() > 0 && q_->IsConnected());
  deadline_ = &deadline;
  dead_ = false;
  has_updated_edge_ = false;
  applied_ops_ = 0;
  quarantine_.clear();
  stats_.Reset();

  // Any previous parallel runtime is bound to the old query/graph.
  replicas_.clear();
  scheduler_.reset();
  state_version_ = 0;
  replica_version_ = 0;

  QueryStats stats = ComputeQueryStats(*q_, G());
  QVertexId root = ChooseStartQVertex(*q_, stats);
  tree_ = QueryTree::Build(*q_, root, stats);

  RebuildDerivedIndexes();
  dcg_.Reset(G().VertexCount(), tree_);

  for (VertexId v : start_vertices_) {
    BuildDcg(dcg_, root, kArtificialVertex, v);
    if (Expired()) {
      dead_ = true;
      return false;
    }
  }

  RecomputeMatchingOrder();

  // Report the solutions of the initial data graph g0.
  for (VertexId v : start_vertices_) {
    if (dcg_.GetState(kArtificialVertex, root, v) != DcgState::kExplicit) {
      continue;
    }
    m_[root] = v;
    RunSearch(kNullQEdge, /*positive=*/true, sink);
    m_[root] = kNullVertex;
    if (Expired()) {
      dead_ = true;
      return false;
    }
  }
  deadline_ = nullptr;
  if (deadline.ExpiredNow()) {
    dead_ = true;
    return false;
  }
  stats_.intermediate_size.Set(dcg_.EdgeCount());
  stats_.peak_intermediate.SetMax(dcg_.EdgeCount());
  ResetPeakIntermediate();
  NoteGraphGauges();
  return true;
}

void TurboFluxEngine::NoteGraphGauges() {
  const Graph& g = G();
  stats_.graph.adj_bytes.Set(g.AdjacencyMemoryBytes());
  stats_.graph.adj_dead_slots.Set(g.AdjacencyDeadSlots());
  stats_.graph.pair_table_bytes.Set(g.PairTableMemoryBytes());
  stats_.graph.compactions.Set(g.CompactionEpochs());
  stats_.graph.rehashes.Set(g.PairTableRehashes());
}

void TurboFluxEngine::RebuildDerivedIndexes() {
  const QueryGraph& q = *q_;
  const QVertexId root = tree_.root();

  // Duplicate-elimination rank: tree edges (by id) before non-tree edges.
  dedup_rank_.assign(q.EdgeCount(), 0);
  for (QEdgeId e = 0; e < q.EdgeCount(); ++e) {
    dedup_rank_[e] =
        e + (tree_.IsTreeEdge(e) ? 0 : static_cast<uint32_t>(q.EdgeCount()));
  }

  // Label-indexed seed lists, ascending dedup rank (tree edges are
  // visited in query-edge-id order, which is ascending rank). Appending
  // preserves per-label order; only the spine is sorted, for the binary
  // search in the ForLabel accessors.
  tree_children_by_label_.clear();
  non_tree_by_label_.clear();
  auto list_for = [](auto& index, EdgeLabel l) -> auto& {
    for (auto& entry : index) {
      if (entry.first == l) return entry.second;
    }
    index.emplace_back();
    index.back().first = l;
    return index.back().second;
  };
  for (QEdgeId e = 0; e < q.EdgeCount(); ++e) {
    const QEdge& qe = q.edge(e);
    if (tree_.IsTreeEdge(e)) {
      QVertexId child =
          tree_.parent_edge(qe.from).qedge == e ? qe.from : qe.to;
      list_for(tree_children_by_label_, qe.label).push_back(child);
    } else {
      list_for(non_tree_by_label_, qe.label).push_back(e);
    }
  }
  auto by_label = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(tree_children_by_label_.begin(), tree_children_by_label_.end(),
            by_label);
  std::sort(non_tree_by_label_.begin(), non_tree_by_label_.end(), by_label);

  m_.assign(q.VertexCount(), kNullVertex);

  // (Re)bind DCG transition counters: shared by Init and Restore, and the
  // binding must survive dcg_.Reset/Deserialize.
  dcg_.set_stats(&stats_.dcg);

  start_vertices_.clear();
  for (VertexId v = 0; v < G().VertexCount(); ++v) {
    if (q.VertexMatches(root, G(), v)) start_vertices_.push_back(v);
  }
}

bool TurboFluxEngine::ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                  Deadline deadline) {
  assert(q_ != nullptr);
  assert(!shared_mode());  // the graph owner drives EvalSharedUpdate instead
  if (dead_) return false;
  ++state_version_;
  scratch_.Reset();
  // Crash simulation: on the op the fault plan marks, evaluate against an
  // already-expired deadline. The amortized expiry check trips partway
  // through the op's transitions, abandoning it at a genuine
  // partial-progress point — exactly what a crash mid-op leaves behind.
  // The caller's deadline is untouched, so harnesses can distinguish an
  // injected fault (deadline.ExpiredNow() == false) from a real expiry.
  Deadline poison = Deadline::AfterMillis(0);
  const bool injected = injector_ != nullptr && injector_->ShouldFailOp();
  deadline_ = injected ? &poison : &deadline;
  has_updated_edge_ = true;
  upd_from_ = op.from;
  upd_label_ = op.label;
  upd_to_ = op.to;

  if (op.IsInsert()) {
    stats_.ops_insert.Inc();
    // Line 15-16 of Algorithm 2: insert into g first, then evaluate.
    if (g_.AddEdge(op.from, op.label, op.to)) {
      stats_.insert_evals.Inc();
      InsertEdgeAndEval(op.from, op.label, op.to, sink);
    }
  } else {
    stats_.ops_delete.Inc();
    // Line 18-19: evaluate first (negative matches need the edge), then
    // delete from g.
    if (g_.HasEdge(op.from, op.label, op.to)) {
      stats_.delete_evals.Inc();
      DeleteEdgeAndEval(op.from, op.label, op.to, sink);
      g_.RemoveEdge(op.from, op.label, op.to);
    }
  }

  has_updated_edge_ = false;
  deadline_ = nullptr;
  if (deadline.ExpiredNow() || injected || dead_) {
    dead_ = true;
    return false;
  }
  ++applied_ops_;
  stats_.intermediate_size.Set(dcg_.EdgeCount());
  stats_.peak_intermediate.SetMax(dcg_.EdgeCount());
  NotePeakIntermediate();
  NoteGraphGauges();
  // In batched mode the primary runs the drift check once per batch and
  // pushes the result to its replicas; per-op checks would let replicas
  // diverge (they see the sub-batch in a different application order).
  if (!suppress_adjust_) MaybeAdjustMatchingOrder();
  return true;
}

bool TurboFluxEngine::EvalSharedUpdate(const UpdateOp& op, MatchSink& sink,
                                       Deadline deadline) {
  assert(q_ != nullptr && shared_mode());
  if (dead_) return false;
  ++state_version_;
  scratch_.Reset();
  deadline_ = &deadline;
  has_updated_edge_ = true;
  upd_from_ = op.from;
  upd_label_ = op.label;
  upd_to_ = op.to;

  // The owner already screened no-ops and applied the graph mutation
  // protocol (insert before, delete after), so both branches evaluate
  // unconditionally against a graph that contains op's edge.
  if (op.IsInsert()) {
    stats_.ops_insert.Inc();
    stats_.insert_evals.Inc();
    InsertEdgeAndEval(op.from, op.label, op.to, sink);
  } else {
    stats_.ops_delete.Inc();
    stats_.delete_evals.Inc();
    DeleteEdgeAndEval(op.from, op.label, op.to, sink);
  }

  has_updated_edge_ = false;
  deadline_ = nullptr;
  if (deadline.ExpiredNow() || dead_) {
    dead_ = true;
    return false;
  }
  ++applied_ops_;
  stats_.intermediate_size.Set(dcg_.EdgeCount());
  stats_.peak_intermediate.SetMax(dcg_.EdgeCount());
  NotePeakIntermediate();
  NoteGraphGauges();
  MaybeAdjustMatchingOrder();
  return true;
}

Status TurboFluxEngine::TryApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                       Deadline deadline) {
  assert(q_ != nullptr);
  if (dead_) {
    return Status::FailedPrecondition("engine is dead; Restore() it first");
  }
  Status v = ValidateOp(G(), op);
  if (v.code() == StatusCode::kOutOfRange) {
    // Applying this op would index past the adjacency arrays: quarantine
    // it and consume it from the stream as a no-op.
    quarantine_.push_back({applied_ops_, op, v});
    ++applied_ops_;
    return v;
  }
  // kNotFound (deleting an absent edge) and kFailedPrecondition (duplicate
  // insertion) are legal no-ops; ApplyUpdate handles them without state
  // damage and the informational status is passed through.
  if (!ApplyUpdate(op, sink, deadline)) {
    return Status::DeadlineExceeded("update " + op.ToString() +
                                    " abandoned mid-evaluation");
  }
  return v;
}

Status TurboFluxEngine::TryApplyBatch(std::span<const UpdateOp> ops,
                                      MatchSink& sink, Deadline deadline) {
  assert(q_ != nullptr);
  if (dead_) {
    return Status::FailedPrecondition("engine is dead; Restore() it first");
  }
  // The data-vertex universe is fixed (updates are edge-only), so the
  // out-of-range screen is order-independent and can run up front.
  std::vector<UpdateOp> clean;
  clean.reserve(ops.size());
  size_t rejected = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (!G().IsValidVertex(op.from) || !G().IsValidVertex(op.to)) {
      quarantine_.push_back(
          {applied_ops_ + i,  // stream position once the batch commits
           op,
           Status::OutOfRange("op " + op.ToString() +
                              " references unseen vertex")});
      ++rejected;
    } else {
      clean.push_back(op);
    }
  }
  if (!ApplyBatch(clean, sink, deadline)) {
    return Status::DeadlineExceeded("batch abandoned mid-evaluation");
  }
  applied_ops_ += rejected;  // ApplyBatch already counted the clean ops
  return Status::Ok();
}

bool TurboFluxEngine::EnumerateCurrentMatches(MatchSink& sink,
                                              Deadline deadline) {
  assert(q_ != nullptr && !dead_);
  deadline_ = &deadline;
  has_updated_edge_ = false;
  QVertexId root = tree_.root();
  for (VertexId v : start_vertices_) {
    if (dcg_.GetState(kArtificialVertex, root, v) != DcgState::kExplicit) {
      continue;
    }
    m_[root] = v;
    RunSearch(kNullQEdge, /*positive=*/true, sink);
    m_[root] = kNullVertex;
    if (Expired()) break;
  }
  deadline_ = nullptr;
  return !deadline.ExpiredNow();
}

// --- DCG construction (Algorithm 3) ---

void TurboFluxEngine::BuildDcg(Dcg& dcg, QVertexId child, VertexId pv,
                               VertexId cv) const {
  if (deadline_ != nullptr && deadline_->Expired()) return;
  // Case 1 (non-recursive call) or Case 2 (recursive) of Transition 1.
  dcg.SetState(pv, child, cv, DcgState::kImplicit);
  // Check-and-avoid: if cv already had another incoming edge labeled
  // `child`, its subtrees are already built.
  if (dcg.InCount(cv, child) == 1) {
    for (QVertexId cc : tree_.Children(child)) {
      const QueryTree::ParentEdge& pe = tree_.parent_edge(cc);
      const Graph::AdjView adj =
          pe.forward ? G().OutEdges(cv) : G().InEdges(cv);
      for (const AdjEntry& e : adj) {
        if (e.label != pe.label) continue;
        if (!q_->VertexMatches(cc, G(), e.other)) continue;
        BuildDcg(dcg, cc, cv, e.other);
      }
    }
  }
  // Case 1 or 2 of Transition 2.
  if (dcg.MatchAllChildren(cv, child)) {
    dcg.SetState(pv, child, cv, DcgState::kExplicit);
  }
}

Dcg TurboFluxEngine::RebuildDcgFromScratch() const {
  Dcg fresh;
  fresh.Reset(G().VertexCount(), tree_);
  QVertexId root = tree_.root();
  for (VertexId v = 0; v < G().VertexCount(); ++v) {
    if (q_->VertexMatches(root, G(), v)) {
      BuildDcg(fresh, root, kArtificialVertex, v);
    }
  }
  return fresh;
}

// --- Seeds ---

namespace {
const std::vector<QVertexId> kNoChildren;
const std::vector<QEdgeId> kNoEdges;
}  // namespace

namespace {
/// Binary search over a label-sorted spine (RebuildDerivedIndexes sorts).
template <typename Index>
const typename Index::value_type::second_type* FindLabel(const Index& index,
                                                         EdgeLabel l) {
  auto it = std::lower_bound(
      index.begin(), index.end(), l,
      [](const typename Index::value_type& e, EdgeLabel key) {
        return e.first < key;
      });
  if (it == index.end() || it->first != l) return nullptr;
  return &it->second;
}
}  // namespace

const std::vector<QVertexId>& TurboFluxEngine::TreeChildrenForLabel(
    EdgeLabel l) const {
  const std::vector<QVertexId>* found = FindLabel(tree_children_by_label_, l);
  return found != nullptr ? *found : kNoChildren;
}

const std::vector<QEdgeId>& TurboFluxEngine::NonTreeEdgesForLabel(
    EdgeLabel l) const {
  const std::vector<QEdgeId>* found = FindLabel(non_tree_by_label_, l);
  return found != nullptr ? *found : kNoEdges;
}

// --- Edge insertion (Algorithm 5) ---

void TurboFluxEngine::InsertEdgeAndEval(VertexId v, EdgeLabel l, VertexId v2,
                                        MatchSink& sink) {
  // Tree query edges matching the inserted data edge, ascending rank.
  for (QVertexId child : TreeChildrenForLabel(l)) {
    if (Expired()) return;
    const QueryTree::ParentEdge& pe = tree_.parent_edge(child);
    VertexId pv = pe.forward ? v : v2;
    VertexId cv = pe.forward ? v2 : v;
    QVertexId u = pe.parent;
    // Case 2 of Transition 0: no incoming edge labeled u at pv.
    if (!dcg_.HasInEdge(pv, u)) continue;
    // Case 1 of Transition 0: endpoint labels must match.
    if (!q_->VertexMatches(child, G(), cv)) continue;
    // Build downwards unless a concurrent seed's cascade already did.
    if (dcg_.GetState(pv, child, cv) == DcgState::kNull) {
      BuildDcg(dcg_, child, pv, cv);
    }
    if (dcg_.GetState(pv, child, cv) == DcgState::kExplicit &&
        dcg_.MatchAllChildren(pv, u)) {
      m_[child] = cv;
      BuildUpwardsAndEval(u, pv, pe.qedge, /*transit=*/true, sink);
      m_[child] = kNullVertex;
    }
  }

  // Non-tree query edges: no DCG modification, traverse upwards only.
  for (QEdgeId e : NonTreeEdgesForLabel(l)) {
    if (Expired()) return;
    const QEdge& qe = q_->edge(e);
    if (qe.from == qe.to && v != v2) continue;  // self-loop query edge
    if (!dcg_.HasInEdge(v, qe.from) || !dcg_.HasInEdge(v2, qe.to)) continue;
    if (!dcg_.MatchAllChildren(v, qe.from) ||
        !dcg_.MatchAllChildren(v2, qe.to)) {
      continue;
    }
    VertexId prev = m_[qe.to];
    if (prev != kNullVertex && prev != v2) continue;
    m_[qe.to] = v2;
    BuildUpwardsAndEval(qe.from, v, e, /*transit=*/false, sink);
    m_[qe.to] = prev;
  }
}

// --- Upward walk on insertion (Algorithm 6) ---

void TurboFluxEngine::BuildUpwardsAndEval(QVertexId u, VertexId v, QEdgeId eq,
                                          bool transit, MatchSink& sink) {
  if (Expired()) return;
  VertexId prev = m_[u];
  if (prev != kNullVertex && prev != v) return;  // conflicting fixed mapping
  m_[u] = v;
  // In-list membership is stable during the upward phase (only states
  // change), so indexed iteration is safe.
  const size_t n = dcg_.InEdgesOf(v, u).size();
  for (size_t i = 0; i < n; ++i) {
    const Dcg::InEdge& in = dcg_.InEdgesOf(v, u)[i];
    VertexId vp = in.from;
    if (in.state == DcgState::kImplicit) {
      if (!transit) continue;  // non-tree walk follows explicit edges only
      // Case 2 of Transition 2: v now has an explicit outgoing edge for
      // every child of u (guaranteed by the caller's MatchAllChildren).
      dcg_.SetState(vp, u, v, DcgState::kExplicit);
    }
    if (tree_.IsRoot(u)) {
      RunSearch(eq, /*positive=*/true, sink);
    } else {
      QVertexId up = tree_.Parent(u);
      if (dcg_.MatchAllChildren(vp, up)) {
        BuildUpwardsAndEval(up, vp, eq, transit, sink);
      }
    }
    if (Expired()) break;
  }
  m_[u] = prev;
}

// --- Edge deletion (Algorithm 8) ---

void TurboFluxEngine::DeleteEdgeAndEval(VertexId v, EdgeLabel l, VertexId v2,
                                        MatchSink& sink) {
  for (QVertexId child : TreeChildrenForLabel(l)) {
    if (Expired()) return;
    const QueryTree::ParentEdge& pe = tree_.parent_edge(child);
    VertexId pv = pe.forward ? v : v2;
    VertexId cv = pe.forward ? v2 : v;
    QVertexId u = pe.parent;
    if (!dcg_.HasInEdge(pv, u)) continue;
    if (!q_->VertexMatches(child, G(), cv)) continue;
    DcgState st = dcg_.GetState(pv, child, cv);
    if (st == DcgState::kNull) continue;  // cleared by an earlier cascade
    if (st == DcgState::kExplicit && dcg_.MatchAllChildren(pv, u)) {
      // Report negative matches before any state is cleared.
      m_[child] = cv;
      ClearUpwardsAndEval(u, pv, child, pe.qedge, /*transit=*/true, sink);
      m_[child] = kNullVertex;
    }
    ClearDcg(child, pv, cv);
  }

  for (QEdgeId e : NonTreeEdgesForLabel(l)) {
    if (Expired()) return;
    const QEdge& qe = q_->edge(e);
    if (qe.from == qe.to && v != v2) continue;
    if (!dcg_.HasInEdge(v, qe.from) || !dcg_.HasInEdge(v2, qe.to)) continue;
    if (!dcg_.MatchAllChildren(v, qe.from) ||
        !dcg_.MatchAllChildren(v2, qe.to)) {
      continue;
    }
    VertexId prev = m_[qe.to];
    if (prev != kNullVertex && prev != v2) continue;
    m_[qe.to] = v2;
    ClearUpwardsAndEval(qe.from, v, kNullQVertex, e, /*transit=*/false, sink);
    m_[qe.to] = prev;
  }
}

// --- Upward walk on deletion (Algorithm 9) ---

void TurboFluxEngine::ClearUpwardsAndEval(QVertexId u, VertexId v,
                                          QVertexId child_u, QEdgeId eq,
                                          bool transit, MatchSink& sink) {
  if (Expired()) return;
  VertexId prev = m_[u];
  if (prev != kNullVertex && prev != v) return;
  m_[u] = v;
  // Precondition of Case 1 of Transition 4: the edge about to disappear is
  // v's last outgoing explicit edge labeled child_u (counted while it is
  // still present).
  const bool precondition = transit && child_u != kNullQVertex &&
                            dcg_.ExplicitOutCount(v, child_u) == 1;
  const size_t n = dcg_.InEdgesOf(v, u).size();
  for (size_t i = 0; i < n; ++i) {
    const Dcg::InEdge& in = dcg_.InEdgesOf(v, u)[i];
    if (in.state != DcgState::kExplicit) continue;
    VertexId vp = in.from;
    if (tree_.IsRoot(u)) {
      RunSearch(eq, /*positive=*/false, sink);
    } else {
      QVertexId up = tree_.Parent(u);
      if (dcg_.MatchAllChildren(vp, up)) {
        ClearUpwardsAndEval(up, vp, u, eq, precondition, sink);
      }
    }
    // Case 1 of Transition 4, applied after the recursion so negative
    // matches are enumerated against the pre-deletion explicit state.
    if (precondition) {
      dcg_.SetState(vp, u, v, DcgState::kImplicit);
    }
    if (Expired()) break;
  }
  m_[u] = prev;
}

// --- Downward clearing (Algorithm 10) ---

void TurboFluxEngine::ClearDcg(QVertexId child, VertexId pv, VertexId cv) {
  if (dcg_.GetState(pv, child, cv) == DcgState::kNull) return;
  // Case 1 or 2 of Transition 3 (explicit) or 5 (implicit).
  dcg_.SetState(pv, child, cv, DcgState::kNull);
  // If cv lost its last incoming edge labeled `child`, its subtree no
  // longer has path support: clear it recursively.
  if (dcg_.InCount(cv, child) == 0) {
    for (QVertexId cc : tree_.Children(child)) {
      // The recursion mutates dcg_'s out-list, so the targets are copied
      // out first — into arena scratch (reset once per update), not a
      // per-level heap vector.
      const std::vector<Dcg::OutEdge>& out = dcg_.OutEdgesOf(cv, cc);
      const size_t n = out.size();
      VertexId* targets = scratch_.AllocateArray<VertexId>(n);
      for (size_t i = 0; i < n; ++i) targets[i] = out[i].to;
      for (size_t i = 0; i < n; ++i) ClearDcg(cc, cv, targets[i]);
    }
  }
}

// --- Subgraph search (Algorithm 7) ---

void TurboFluxEngine::RunSearch(QEdgeId eq, bool positive, MatchSink& sink) {
  // State-only replay: all DCG transitions driving this call already
  // happened in the caller; the search itself never mutates the DCG.
  if (!search_enabled_) return;
  stats_.search_seeds.Inc();
  if (options_.semantics == MatchSemantics::kIsomorphism) {
    // The fixed seed path must itself be injective.
    for (size_t i = 0; i < m_.size(); ++i) {
      if (m_[i] == kNullVertex) continue;
      for (size_t j = i + 1; j < m_.size(); ++j) {
        if (m_[j] == m_[i]) return;
      }
    }
  }
  SubgraphSearch(0, eq, positive, sink);
}

void TurboFluxEngine::SubgraphSearch(size_t depth, QEdgeId eq, bool positive,
                                     MatchSink& sink) {
  if (Expired()) return;
  stats_.search_states.Inc();
  if (depth == mo_.size()) {
    Report(eq, positive, sink);
    return;
  }
  QVertexId u = mo_[depth];
  VertexId vp =
      tree_.IsRoot(u) ? kArtificialVertex : m_[tree_.Parent(u)];
  assert(tree_.IsRoot(u) || vp != kNullVertex);

  if (m_[u] != kNullVertex) {
    // Already fixed by the seed path (or a non-tree endpoint): verify its
    // tree edge is explicit and its non-tree edges are satisfied.
    if (dcg_.GetState(vp, u, m_[u]) != DcgState::kExplicit) return;
    if (!IsJoinable(u, m_[u], eq, positive)) return;
    SubgraphSearch(depth + 1, eq, positive, sink);
    return;
  }

  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  const size_t n = dcg_.OutEdgesOf(vp, u).size();
  for (size_t i = 0; i < n; ++i) {
    const Dcg::OutEdge& out = dcg_.OutEdgesOf(vp, u)[i];
    if (out.state != DcgState::kExplicit) continue;
    VertexId x = out.to;
    if (iso && MappingContains(m_, x)) continue;
    if (!IsJoinable(u, x, eq, positive)) continue;
    m_[u] = x;
    SubgraphSearch(depth + 1, eq, positive, sink);
    m_[u] = kNullVertex;
    if (Expired()) return;
  }
}

bool TurboFluxEngine::IsJoinable(QVertexId u, VertexId v, QEdgeId eq,
                                 bool positive) const {
  for (QEdgeId e : tree_.IncidentNonTreeEdges(u)) {
    const QEdge& qe = q_->edge(e);
    VertexId sv = qe.from == u ? v : m_[qe.from];
    VertexId dv = qe.to == u ? v : m_[qe.to];
    if (sv == kNullVertex || dv == kNullVertex) continue;  // not yet mapped
    if (!G().HasEdge(sv, qe.label, dv)) return false;
    // Total-order duplicate elimination (Algorithm 7, IsJoinable lines
    // 5-11): when another query edge also maps onto the updated data edge,
    // only the maximum-rank seed reports on insertion (minimum on
    // deletion).
    if (eq != kNullQEdge && e != eq && has_updated_edge_ &&
        sv == upd_from_ && qe.label == upd_label_ && dv == upd_to_) {
      if (positive && DedupRank(e) > DedupRank(eq)) return false;
      if (!positive && DedupRank(e) < DedupRank(eq)) return false;
    }
  }
  return true;
}

void TurboFluxEngine::Report(QEdgeId eq, bool positive, MatchSink& sink) {
  if (eq != kNullQEdge && has_updated_edge_) {
    // Full duplicate-elimination check, covering tree edges too: report
    // only from the maximum-rank (insertion) / minimum-rank (deletion)
    // query edge mapped onto the updated data edge.
    for (const QEdge& qe : q_->edges()) {
      if (qe.id == eq) continue;
      if (m_[qe.from] == upd_from_ && qe.label == upd_label_ &&
          m_[qe.to] == upd_to_) {
        if (positive && DedupRank(qe.id) > DedupRank(eq)) return;
        if (!positive && DedupRank(qe.id) < DedupRank(eq)) return;
      }
    }
  }
  (positive ? stats_.matches_positive : stats_.matches_negative).Inc();
  sink.OnMatch(positive, m_);
}

// --- Parallel batched evaluation ---

std::unique_ptr<TurboFluxEngine> TurboFluxEngine::CloneReplica() const {
  // Replica builds run per state-version change, not per op.
  // tfx-lint: allow(hot-path-purity)
  auto r = std::make_unique<TurboFluxEngine>(options_);
  r->options_.threads = 1;  // replicas never nest parallelism
  r->q_ = q_;
  r->g_ = g_;
  r->shared_g_ = shared_g_;
  r->tree_ = tree_;
  r->dcg_.CopyFrom(dcg_, r->tree_);
  // CopyFrom leaves the stats binding alone; point the replica's DCG at its
  // own counters (fresh zeros) so phase-1 search work is attributable.
  r->dcg_.set_stats(&r->stats_.dcg);
  r->mo_ = mo_;
  r->start_vertices_ = start_vertices_;
  r->dedup_rank_ = dedup_rank_;
  r->tree_children_by_label_ = tree_children_by_label_;
  r->non_tree_by_label_ = non_tree_by_label_;
  r->m_ = m_;
  r->order_counts_snapshot_ = order_counts_snapshot_;
  r->ops_since_adjust_check_ = ops_since_adjust_check_;
  r->order_recomputes_ = order_recomputes_;
  r->suppress_adjust_ = true;  // the primary pushes order updates instead
  return r;
}

bool TurboFluxEngine::ApplyUpdateStateOnly(const UpdateOp& op,
                                           Deadline deadline) {
  DiscardSink sink;
  search_enabled_ = false;
  bool ok = ApplyUpdate(op, sink, deadline);
  search_enabled_ = true;
  return ok;
}

void TurboFluxEngine::EnsureParallelRuntime() {
  const size_t workers = options_.threads - 1;
  if (!pool_ || pool_->size() != workers) {
    // One-time lazy init; amortized across every later batch.
    // tfx-lint: allow(hot-path-purity)
    pool_ = std::make_unique<parallel::ThreadPool>(workers);
  }
  if (!scheduler_) {
    // tfx-lint: allow(hot-path-purity)
    scheduler_ = std::make_unique<parallel::BatchScheduler>(
        *q_, options_.scheduler);
    scheduler_->set_stats(&stats_.scheduler);
  }
  if (replicas_.size() != workers || replica_version_ != state_version_) {
    replicas_.clear();
    replicas_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) replicas_.push_back(CloneReplica());
    replica_version_ = state_version_;
  }
}

bool TurboFluxEngine::ApplyBatch(std::span<const UpdateOp> ops,
                                 MatchSink& sink, Deadline deadline) {
  assert(q_ != nullptr);
  if (dead_) return false;
  stats_.batches.Inc();
  const size_t nthreads = std::max<size_t>(1, options_.threads);
  if (nthreads == 1 || ops.size() <= 1) {
    return ContinuousEngine::ApplyBatch(ops, sink, deadline);
  }
  EnsureParallelRuntime();
  stats_.parallel_batches.Inc();
  if (stats_.worker_ops.size() < nthreads) stats_.worker_ops.resize(nthreads);
  const std::vector<std::vector<size_t>> sub_batches =
      scheduler_->Partition(G(), ops);

  // Per-op match buffers, merged into `sink` in stream order at the end so
  // the output is independent of worker interleaving. `completed[i]` is
  // written by exactly one worker (distinct element per op — no race).
  std::vector<FlatMatchBuffer> buffers(ops.size());
  std::vector<char> completed(ops.size(), 0);
  std::atomic<bool> failed{false};

  suppress_adjust_ = true;
  for (const std::vector<size_t>& sub : sub_batches) {
    if (failed.load(std::memory_order_relaxed)) break;

    // Phase 1: worker w fully evaluates its round-robin share of the
    // sub-batch. Ops within a sub-batch are conflict-free, so every DCG
    // node an evaluation reads is untouched by the sibling ops and the
    // per-op matches equal sequential ApplyUpdate's.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(nthreads);
    FaultInjector* inj = injector_;  // replicas never carry an injector
    for (size_t w = 0; w < nthreads; ++w) {
      TurboFluxEngine* eng = w == 0 ? this : replicas_[w - 1].get();
      tasks.push_back([&, w, eng, inj] {
        for (size_t k = w; k < sub.size(); k += nthreads) {
          if (deadline.Expired() ||  // shared deadline, thread-safe poll
              failed.load(std::memory_order_relaxed) ||
              // Injected phase-1 fault: abandon the batch as a deadline
              // expiry here would, leaving some ops evaluated and others
              // not — the partial-batch recovery path.
              (inj != nullptr && inj->ShouldFailBatchEval())) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          const size_t idx = sub[k];
          if (!eng->ApplyUpdate(ops[idx], buffers[idx], deadline)) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          completed[idx] = 1;
          stats_.worker_ops[w].Inc();  // counter w written only by worker w
        }
      });
    }
    Stopwatch phase1_watch;
    pool_->RunAll(std::move(tasks));
    stats_.phase1_seconds.RecordSeconds(phase1_watch.ElapsedSeconds());
    if (failed.load(std::memory_order_relaxed)) break;

    // Phase 2: resynchronize — every engine replays the ops the other
    // workers evaluated, state-only. Conflict-freedom makes the state
    // changes commute, so all engines land on the same post-sub-batch
    // state regardless of per-worker application order.
    tasks.clear();
    for (size_t w = 0; w < nthreads; ++w) {
      TurboFluxEngine* eng = w == 0 ? this : replicas_[w - 1].get();
      tasks.push_back([&, w, eng] {
        for (size_t k = 0; k < sub.size(); ++k) {
          if (k % nthreads == w) continue;
          if (!eng->ApplyUpdateStateOnly(ops[sub[k]], deadline)) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    Stopwatch phase2_watch;
    pool_->RunAll(std::move(tasks));
    stats_.phase2_seconds.RecordSeconds(phase2_watch.ElapsedSeconds());
    if (failed.load(std::memory_order_relaxed)) break;
  }
  suppress_adjust_ = false;

  // Replica search/match counters merge into the primary's here, at a
  // single-threaded point, so engine_stats() totals are exact regardless
  // of which worker evaluated each op.
  for (const std::unique_ptr<TurboFluxEngine>& r : replicas_) {
    stats_.DrainSearchCountersFrom(r->stats_);
  }

  // Deterministic merge. When the batch was cut short, flush only the
  // longest prefix of ops that fully evaluated: the matches delivered then
  // equal sequential execution of exactly ops[0..limit).
  size_t limit = ops.size();
  if (failed.load(std::memory_order_relaxed)) {
    limit = 0;
    while (limit < ops.size() && completed[limit]) ++limit;
  }
  Mapping scratch;
  for (size_t i = 0; i < limit; ++i) buffers[i].Flush(sink, scratch);
  if (failed.load(std::memory_order_relaxed)) {
    dead_ = true;  // replicas may be mid-sub-batch; the engine is unusable
    return false;
  }

  // Batch-boundary matching-order maintenance, pushed to the replicas so
  // every engine enters the next batch with an identical order.
  for (size_t i = 0; i < ops.size(); ++i) MaybeAdjustMatchingOrder();
  for (const std::unique_ptr<TurboFluxEngine>& r : replicas_) {
    r->mo_ = mo_;
    r->order_counts_snapshot_ = order_counts_snapshot_;
    r->ops_since_adjust_check_ = ops_since_adjust_check_;
    r->order_recomputes_ = order_recomputes_;
  }
  replica_version_ = state_version_;
  return true;
}

// --- Matching order maintenance ---

void TurboFluxEngine::RecomputeMatchingOrder() {
  mo_ = options_.order_policy == TurboFluxOptions::OrderPolicy::kBfs
            ? tree_.BfsOrder()
            : DetermineMatchingOrder(tree_, dcg_, start_vertices_);
  order_counts_snapshot_.assign(q_->VertexCount(), 0);
  for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
    order_counts_snapshot_[u] = dcg_.ExplicitCountFor(u);
  }
  ops_since_adjust_check_ = 0;
}

void TurboFluxEngine::MaybeAdjustMatchingOrder() {
  if (++ops_since_adjust_check_ < options_.adjust_interval) return;
  ops_since_adjust_check_ = 0;
  for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
    uint64_t then = order_counts_snapshot_[u];
    uint64_t now = dcg_.ExplicitCountFor(u);
    uint64_t lo = std::min(then, now);
    uint64_t hi = std::max(then, now);
    if (hi > 16 &&
        static_cast<double>(hi) >
            options_.adjust_drift * static_cast<double>(std::max<uint64_t>(
                                        lo, 1))) {
      RecomputeMatchingOrder();
      ++order_recomputes_;
      stats_.order_recomputes.Inc();
      return;
    }
  }
}

}  // namespace turboflux
