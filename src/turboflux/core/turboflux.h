#ifndef TURBOFLUX_CORE_TURBOFLUX_H_
#define TURBOFLUX_CORE_TURBOFLUX_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "turboflux/common/arena.h"
#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/common/status.h"
#include "turboflux/common/types.h"
#include "turboflux/core/dcg.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/harness/engine.h"
#include "turboflux/harness/fault_injection.h"
#include "turboflux/parallel/batch.h"
#include "turboflux/parallel/thread_pool.h"
#include "turboflux/query/query_graph.h"
#include "turboflux/query/query_tree.h"

namespace turboflux {

struct TurboFluxOptions {
  MatchSemantics semantics = MatchSemantics::kHomomorphism;

  /// Matching-order policy: the paper's cost-based greedy order derived
  /// from explicit-DCG path counts, or a plain BFS order of the query
  /// tree (ablation baseline).
  enum class OrderPolicy { kCostBased, kBfs };
  OrderPolicy order_policy = OrderPolicy::kCostBased;

  /// Worker threads used by ApplyBatch (1 = sequential; N > 1 runs the
  /// calling thread plus N-1 pool workers over conflict-free sub-batches).
  size_t threads = 1;

  /// Conflict-region size cap handed to the batch scheduler.
  parallel::BatchSchedulerOptions scheduler;

  /// Updates between AdjustMatchingOrder drift checks.
  size_t adjust_interval = 1024;
  /// Recompute the matching order when some per-query-vertex explicit-edge
  /// count drifted by more than this factor since the order was computed.
  double adjust_drift = 2.0;
};

/// The TurboFlux continuous subgraph matching engine (Algorithm 2):
/// maintains the DCG under the edge transition model and reports
/// positive/negative matches per update without set differences.
///
///  * Init: ChooseStartQVertex + TransformToTree, BuildDCG for g0
///    (Algorithm 3), DetermineMatchingOrder, and the initial-solution
///    report;
///  * insertion: InsertEdgeAndEval (Algorithm 5) — BuildDCG downwards,
///    BuildUpwardsAndEval (Algorithm 6) to the start vertices with
///    Transition 1/2, then SubgraphSearch (Algorithm 7);
///  * deletion: DeleteEdgeAndEval (Algorithm 8) — ClearUpwardsAndEval
///    (Algorithm 9) first so explicit edges survive until negative matches
///    are reported, then ClearDCG (Algorithm 10) with Transition 3/4/5.
///
/// Duplicate elimination uses the paper's total order over query edges
/// (maximum-order seed reports on insertion, minimum on deletion), applied
/// both inline in IsJoinable and at report time, which also covers
/// solutions mapping several *tree* edges onto the updated data edge.
class TurboFluxEngine : public EngineInterface {
 public:
  explicit TurboFluxEngine(TurboFluxOptions options = {});

  bool Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
            Deadline deadline) override;
  bool ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                   Deadline deadline) override;

  // --- Shared-graph mode (the QuerySet serving layer, DESIGN.md §3.10) ---
  //
  // A shared-mode engine reads the data graph through a caller-owned
  // pointer instead of its private copy, so N co-registered queries share
  // one graph while keeping per-query DCG/matching-order state. The owner
  // (QuerySet) is the only graph mutator and follows the engine's own
  // update protocol: on insertion it adds the edge *before* any engine
  // evaluates; on deletion it removes the edge only *after* every engine
  // evaluated (negative matches need the edge present). The graph is
  // therefore constant during evaluation, which also makes concurrent
  // EvalSharedUpdate calls on distinct engines safe.

  /// Init against a caller-owned graph: identical bootstrap (tree choice,
  /// DCG build, matching order, initial-solution report) without copying
  /// `*shared`. Both `q` and `*shared` must outlive the engine's use; the
  /// vertex universe of `*shared` must stay fixed (updates are edge-only).
  bool InitShared(const QueryGraph& q, const Graph* shared, MatchSink& sink,
                  Deadline deadline);

  /// Shared-mode counterpart of ApplyUpdate: evaluates the op's DCG
  /// transitions and match delta assuming the owner already applied the
  /// protocol above, i.e. the shared graph currently *contains* op's edge
  /// (for both insertion and deletion). Must only be called for effective
  /// ops — the owner skips duplicate insertions / absent deletions.
  bool EvalSharedUpdate(const UpdateOp& op, MatchSink& sink,
                        Deadline deadline);

  bool shared_mode() const { return shared_g_ != nullptr; }

  /// Parallel batched evaluation (DESIGN.md "Parallel batch evaluation"):
  /// partitions `ops` into conflict-free sub-batches, evaluates each
  /// sub-batch's ops concurrently on engine replicas with per-op match
  /// buffers, resynchronizes every replica by replaying the other workers'
  /// ops state-only, and flushes the buffers to `sink` in stream order —
  /// the reported matches per op equal sequential ApplyUpdate's and the
  /// final DCG is identical. Falls back to the sequential loop when
  /// options.threads <= 1. On deadline expiry, flushes only the longest
  /// fully-evaluated op prefix and leaves the engine dead.
  bool ApplyBatch(std::span<const UpdateOp> ops, MatchSink& sink,
                  Deadline deadline) override;

  size_t IntermediateSize() const override { return dcg_.EdgeCount(); }
  std::string name() const override;
  const obs::EngineStats* engine_stats() const override { return &stats_; }

  // --- Fault tolerance (DESIGN.md §3.7) ---

  /// An update op rejected before evaluation: applying it would have
  /// corrupted the engine (e.g. it references a vertex outside the data
  /// universe). The op was consumed from the stream as a no-op.
  using QuarantinedOp = ::turboflux::QuarantinedOp;

  /// Writes a crash-consistent snapshot of the full engine state: format
  /// header (magic + version), then per-section CRC32-framed payloads for
  /// the query, spanning tree, data graph, DCG, and matching-order state.
  /// Adjacency and DCG list *orders* are preserved exactly, so an engine
  /// restored from the snapshot reproduces the original's subsequent match
  /// stream byte-for-byte. Requires Init to have succeeded and the engine
  /// to be alive.
  [[nodiscard]] Status Checkpoint(std::ostream& out) const override;

  /// Rebuilds the engine from a Checkpoint snapshot, replacing all current
  /// state (the query graph is deserialized into engine-owned storage, so
  /// the snapshot outlives any QueryGraph passed to Init). Every section is
  /// checksum- and structure-validated; a corrupted or truncated snapshot
  /// yields a non-OK status and never crashes. On success the engine is
  /// alive and `applied_ops()` reports the snapshot's stream position — the
  /// caller resumes by replaying the update stream from that index. On
  /// failure the engine is left dead (its state may be partially
  /// overwritten).
  [[nodiscard]] Status Restore(std::istream& in) override;

  /// Writes only the CRC32-framed state sections (no format header): meta,
  /// query, tree, optionally the data graph, DCG, matching-order state.
  /// Multi-engine containers (QuerySet) call this with
  /// `include_graph=false` to persist N engines against one shared graph
  /// section of their own; Checkpoint is exactly header +
  /// WriteStateSections(out, true).
  [[nodiscard]] Status WriteStateSections(std::ostream& out,
                                          bool include_graph) const override;

  /// Reads back what WriteStateSections wrote and commits it, validating
  /// every section. With `shared_graph == nullptr` the snapshot must
  /// contain a graph section, which is restored into the engine's private
  /// copy (standalone mode). With a non-null `shared_graph` the snapshot
  /// must lack the graph section and the engine comes up in shared mode
  /// bound to `*shared_graph` (which must already hold the graph state the
  /// snapshot was taken against). On failure the engine is left dead.
  [[nodiscard]] Status ReadStateSections(std::istream& in,
                                         const Graph* shared_graph) override;

  /// ApplyUpdate with graceful degradation: ops that would corrupt the
  /// engine (out-of-range endpoints) are quarantined and consumed as
  /// no-ops (kOutOfRange); legal no-ops are applied and reported
  /// (kNotFound for deleting an absent edge, kFailedPrecondition for a
  /// duplicate insertion); deadline expiry returns kDeadlineExceeded and
  /// leaves the engine dead *without* consuming the op — Restore() and
  /// replay from applied_ops().
  [[nodiscard]] Status TryApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                      Deadline deadline) override;

  /// Batch counterpart of TryApplyUpdate: quarantines out-of-range ops up
  /// front and evaluates the rest via ApplyBatch. On kDeadlineExceeded
  /// only a stream-order prefix of the batch's matches was flushed and the
  /// engine is dead; applied_ops() is only meaningful again after
  /// Restore().
  [[nodiscard]] Status TryApplyBatch(std::span<const UpdateOp> ops,
                                     MatchSink& sink,
                                     Deadline deadline) override;

  /// Number of stream ops consumed so far (applied + quarantined) — the
  /// journal position persisted by Checkpoint.
  uint64_t applied_ops() const override { return applied_ops_; }

  /// True once an op or batch was abandoned (deadline expiry or injected
  /// fault); a dead engine rejects further updates until Restore().
  bool dead() const override { return dead_; }

  /// Ops quarantined since Init (pruned on Restore to positions before the
  /// snapshot, so replay re-reports exactly the re-consumed ones).
  const std::vector<QuarantinedOp>& quarantine() const override {
    return quarantine_;
  }

  /// Installs a test-only fault injector (nullptr to disarm). Not owned;
  /// replicas never inherit it.
  void set_fault_injector(FaultInjector* injector) override {
    injector_ = injector;
  }

  // --- Introspection (tests, benches, examples) ---

  const Dcg& dcg() const { return dcg_; }
  const QueryTree& tree() const { return tree_; }
  const QueryGraph& query() const { return *q_; }
  const Graph& graph() const { return G(); }
  const std::vector<QVertexId>& matching_order() const { return mo_; }
  QVertexId start_query_vertex() const { return tree_.root(); }
  size_t matching_order_recomputations() const { return order_recomputes_; }

  /// Builds a fresh DCG from the *current* data graph, exactly as Init
  /// would. Property tests assert Snapshot equality with the incrementally
  /// maintained DCG after every update.
  Dcg RebuildDcgFromScratch() const;

  /// Enumerates every match of the query in the *current* data graph into
  /// `sink` (reported as positive) by searching the maintained DCG — no
  /// recomputation. Returns false on deadline expiry.
  bool EnumerateCurrentMatches(MatchSink& sink,
                               Deadline deadline = Deadline::Infinite());

 private:
  /// Everything Init does after the query/graph bindings are in place;
  /// shared by Init and InitShared.
  bool InitCommon(MatchSink& sink, Deadline deadline);

  /// The data graph all read paths go through: the shared graph in shared
  /// mode, the engine's private copy otherwise. Writes never use this —
  /// only ApplyUpdate mutates, and only in standalone mode.
  const Graph& G() const { return shared_g_ != nullptr ? *shared_g_ : g_; }

  // Algorithm 3: builds the DCG for the subtree of `child` hanging off the
  // data edge (pv, cv), applying Transition 1 and 2. Operates on `dcg` so
  // RebuildDcgFromScratch can share it.
  void BuildDcg(Dcg& dcg, QVertexId child, VertexId pv, VertexId cv) const;

  // Algorithm 5 / 8.
  void InsertEdgeAndEval(VertexId v, EdgeLabel l, VertexId v2,
                         MatchSink& sink);
  void DeleteEdgeAndEval(VertexId v, EdgeLabel l, VertexId v2,
                         MatchSink& sink);

  // Algorithm 6: walks the DCG upwards from (u, v) applying Transition 2
  // Case 2 when `transit` is set, and runs SubgraphSearch at every start
  // vertex reached.
  void BuildUpwardsAndEval(QVertexId u, VertexId v, QEdgeId eq, bool transit,
                           MatchSink& sink);

  // Algorithm 9: the deletion counterpart; Transition 4 is applied *after*
  // the upward recursion so negative matches see the pre-deletion state.
  void ClearUpwardsAndEval(QVertexId u, VertexId v, QVertexId child_u,
                           QEdgeId eq, bool transit, MatchSink& sink);

  // Algorithm 10: Transition 3/5 downwards.
  void ClearDcg(QVertexId child, VertexId pv, VertexId cv);

  // Algorithm 7.
  void RunSearch(QEdgeId eq, bool positive, MatchSink& sink);
  void SubgraphSearch(size_t depth, QEdgeId eq, bool positive,
                      MatchSink& sink);
  bool IsJoinable(QVertexId u, VertexId v, QEdgeId eq, bool positive) const;
  void Report(QEdgeId eq, bool positive, MatchSink& sink);

  // Seed lookup shared by insert and delete: tree children whose parent
  // edge carries the label, and non-tree edges with the label, both
  // pre-sorted ascending by duplicate-elimination rank at Init so the hot
  // path allocates nothing.
  const std::vector<QVertexId>& TreeChildrenForLabel(EdgeLabel l) const;
  const std::vector<QEdgeId>& NonTreeEdgesForLabel(EdgeLabel l) const;

  // Duplicate-elimination total order: tree edges (by id) before non-tree
  // edges (by id).
  uint32_t DedupRank(QEdgeId e) const { return dedup_rank_[e]; }

  void MaybeAdjustMatchingOrder();
  void RecomputeMatchingOrder();

  /// Refreshes the graph memory-layout gauges (adjacency slab bytes, dead
  /// slots, pair-table bytes, compaction/rehash counts) from G().
  void NoteGraphGauges();

  /// Rebuilds everything derivable from (q_, tree_, g_): dedup ranks,
  /// label-indexed seed lists, the mapping scratch, and start_vertices_.
  /// Shared by Init and Restore.
  void RebuildDerivedIndexes();

  // --- Parallel batch machinery ---

  /// Deep copy of the engine's matching state (graph, tree, DCG, orders);
  /// the replica suppresses matching-order self-adjustment — the primary
  /// pushes order updates to replicas at batch boundaries.
  std::unique_ptr<TurboFluxEngine> CloneReplica() const;

  /// ApplyUpdate with search/reporting disabled: performs exactly the same
  /// graph and DCG maintenance (SubgraphSearch never mutates the DCG), so
  /// the post-state is identical to a full ApplyUpdate.
  bool ApplyUpdateStateOnly(const UpdateOp& op, Deadline deadline);

  /// Lazily builds/refreshes the pool, scheduler, and replicas; replicas
  /// are rebuilt when interleaved single-op updates made them stale.
  void EnsureParallelRuntime();

  bool Expired() { return deadline_ != nullptr && deadline_->Expired(); }

  TurboFluxOptions options_;
  const QueryGraph* q_ = nullptr;
  // After Restore, q_ points at this engine-owned deserialized copy
  // instead of a caller-provided graph.
  std::unique_ptr<QueryGraph> owned_q_;
  Graph g_;
  // Non-null in shared-graph mode; then g_ stays empty and all graph reads
  // resolve through G(). Not owned — the QuerySet keeps it alive and is the
  // sole mutator (see the shared-mode protocol above).
  const Graph* shared_g_ = nullptr;
  QueryTree tree_;
  Dcg dcg_;
  std::vector<QVertexId> mo_;
  std::vector<VertexId> start_vertices_;
  std::vector<uint32_t> dedup_rank_;
  // Flat label→seed-list indexes (DESIGN.md §3.11): a short spine sorted
  // by label, binary-searched by the ForLabel accessors — queries carry a
  // handful of distinct labels, so this beats hashing and keeps the spine
  // in one cache line. Per-label lists stay in ascending dedup rank.
  std::vector<std::pair<EdgeLabel, std::vector<QVertexId>>>
      tree_children_by_label_;
  std::vector<std::pair<EdgeLabel, std::vector<QEdgeId>>> non_tree_by_label_;

  Mapping m_;
  // Per-op scratch (DESIGN.md §3.11): bump-allocated worklists (ClearDcg
  // recursion targets) reset at the top of every update, so a warm engine
  // performs no heap allocation on the delete hot path. Replicas own their
  // own arena (CloneReplica constructs a fresh engine).
  Arena scratch_;
  bool has_updated_edge_ = false;
  VertexId upd_from_ = kNullVertex;
  EdgeLabel upd_label_ = 0;
  VertexId upd_to_ = kNullVertex;

  Deadline* deadline_ = nullptr;
  bool dead_ = false;

  // Hot-path counters (reset on Init; see obs/engine_stats.h for the
  // parallel-mode accounting). Mutable because the const Checkpoint path
  // records bytes/durations too.
  mutable obs::EngineStats stats_;

  // Fault-tolerance state (see TryApplyUpdate / Checkpoint).
  uint64_t applied_ops_ = 0;
  std::vector<QuarantinedOp> quarantine_;
  FaultInjector* injector_ = nullptr;  // not owned; never copied to replicas

  std::vector<uint64_t> order_counts_snapshot_;
  size_t ops_since_adjust_check_ = 0;
  size_t order_recomputes_ = 0;

  // Parallel batch state. `state_version_` counts applied updates on this
  // instance; replicas are in sync iff replica_version_ == state_version_.
  // `search_enabled_`/`suppress_adjust_` gate the state-only replay path
  // and batch-boundary order adjustment (see ApplyBatch).
  bool search_enabled_ = true;
  bool suppress_adjust_ = false;
  uint64_t state_version_ = 0;
  uint64_t replica_version_ = 0;
  std::vector<std::unique_ptr<TurboFluxEngine>> replicas_;
  std::unique_ptr<parallel::ThreadPool> pool_;
  std::unique_ptr<parallel::BatchScheduler> scheduler_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_CORE_TURBOFLUX_H_
