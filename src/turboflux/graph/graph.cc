#include "turboflux/graph/graph.h"

#include <algorithm>
#include <unordered_map>  // tfx-lint: allow(hot-path-map)
#include <utility>

namespace turboflux {

VertexId Graph::AddVertex(LabelSet labels) {
  VertexId id = static_cast<VertexId>(vertex_labels_.size());
  vertex_labels_.push_back(std::move(labels));
  out_adj_.AddList();
  in_adj_.AddList();
  return id;
}

bool Graph::AddEdge(VertexId from, EdgeLabel label, VertexId to) {
  if (!IsValidVertex(from) || !IsValidVertex(to)) return false;
  if (!pair_index_.Add(FlatPairTable::MakeKey(from, to), label)) return false;
  out_adj_.PushBack(from, {to, label});
  in_adj_.PushBack(to, {from, label});
  ++edge_count_;
  return true;
}

bool Graph::RemoveEdge(VertexId from, EdgeLabel label, VertexId to) {
  if (!IsValidVertex(from) || !IsValidVertex(to)) return false;
  if (!pair_index_.Remove(FlatPairTable::MakeKey(from, to), label)) {
    return false;
  }
  // Swap-with-last, exactly the old RemoveAdjEntry semantics (entry order
  // after deletion is observable through Serialize).
  out_adj_.SwapRemove(from, [&](const AdjEntry& e) {
    return e.other == to && e.label == label;
  });
  in_adj_.SwapRemove(to, [&](const AdjEntry& e) {
    return e.other == from && e.label == label;
  });
  --edge_count_;
  return true;
}

bool Graph::HasEdge(VertexId from, EdgeLabel label, VertexId to) const {
  if (!IsValidVertex(from) || !IsValidVertex(to)) return false;
  return pair_index_.Contains(FlatPairTable::MakeKey(from, to), label);
}

namespace {

void SerializeAdjacency(const AdjPool<AdjEntry>& adj, std::string& out) {
  for (size_t v = 0; v < adj.ListCount(); ++v) {
    Span<AdjEntry> entries = adj.View(v);
    bin::PutU32(out, static_cast<uint32_t>(entries.size()));
    for (const AdjEntry& e : entries) {
      bin::PutU32(out, e.other);
      bin::PutU32(out, e.label);
    }
  }
}

}  // namespace

void Graph::Serialize(std::string& out) const {
  bin::PutU64(out, vertex_labels_.size());
  for (const LabelSet& ls : vertex_labels_) {
    bin::PutU32(out, static_cast<uint32_t>(ls.size()));
    for (Label l : ls.labels()) bin::PutU32(out, l);
  }
  SerializeAdjacency(out_adj_, out);
  SerializeAdjacency(in_adj_, out);
}

Status Graph::Deserialize(bin::Reader& in) {
  *this = Graph();
  uint64_t nv = 0;
  if (!in.GetU64(&nv) || nv >= kNullVertex) {
    return Status::Corruption("graph: bad vertex count");
  }
  vertex_labels_.reserve(nv);
  for (uint64_t v = 0; v < nv; ++v) {
    uint32_t nl = 0;
    if (!in.GetLength(&nl, in.remaining() / 4)) {
      *this = Graph();
      return Status::Corruption("graph: bad label count");
    }
    std::vector<Label> labels(nl);
    for (uint32_t i = 0; i < nl; ++i) {
      if (!in.GetU32(&labels[i])) {
        *this = Graph();
        return Status::Corruption("graph: truncated vertex labels");
      }
    }
    vertex_labels_.emplace_back(std::move(labels));
  }
  // Both adjacency directions are stored verbatim; out-adjacency also
  // rebuilds the (from, to) -> labels index and the edge count.
  auto read_adj = [&](AdjPool<AdjEntry>& adj) -> Status {
    adj.Clear();
    for (uint64_t v = 0; v < nv; ++v) adj.AddList();
    for (uint64_t v = 0; v < nv; ++v) {
      uint32_t deg = 0;
      if (!in.GetLength(&deg, in.remaining() / 8)) {
        return Status::Corruption("graph: bad adjacency length");
      }
      for (uint32_t i = 0; i < deg; ++i) {
        AdjEntry e;
        if (!in.GetU32(&e.other) || !in.GetU32(&e.label)) {
          return Status::Corruption("graph: truncated adjacency entry");
        }
        if (e.other >= nv) {
          *this = Graph();
          return Status::Corruption("graph: adjacency vertex out of range");
        }
        adj.PushBack(v, e);
      }
    }
    return Status::Ok();
  };
  Status s = read_adj(out_adj_);
  if (!s.ok()) {
    *this = Graph();
    return s;
  }
  s = read_adj(in_adj_);
  if (!s.ok()) {
    *this = Graph();
    return s;
  }
  for (VertexId v = 0; v < vertex_labels_.size(); ++v) {
    for (const AdjEntry& e : out_adj_.View(v)) {
      if (!pair_index_.Add(FlatPairTable::MakeKey(v, e.other), e.label)) {
        *this = Graph();
        return Status::Corruption("graph: duplicate edge in out-adjacency");
      }
      ++edge_count_;
    }
  }
  std::string violation = CheckConsistency();
  if (!violation.empty()) {
    *this = Graph();
    return Status::Corruption("graph: " + violation);
  }
  return Status::Ok();
}

std::string Graph::CheckConsistency() const {
  if (out_adj_.ListCount() != vertex_labels_.size() ||
      in_adj_.ListCount() != vertex_labels_.size()) {
    return "adjacency/vertex size mismatch";
  }
  std::string pool = out_adj_.CheckConsistency();
  if (pool.empty()) pool = in_adj_.CheckConsistency();
  if (pool.empty()) pool = pair_index_.CheckConsistency();
  if (!pool.empty()) return pool;
  // Every in-adjacency entry must consume exactly one out-adjacency edge.
  // Validation-only scratch, not a probe path (the probe path is
  // pair_index_); a std map keyed by the packed pair is fine here.
  // tfx-lint: allow(hot-path-map)
  std::unordered_map<uint64_t, std::vector<std::pair<EdgeLabel, int>>>
      counts;
  size_t out_total = 0;
  for (VertexId v = 0; v < out_adj_.ListCount(); ++v) {
    for (const AdjEntry& e : out_adj_.View(v)) {
      std::vector<std::pair<EdgeLabel, int>>& slot =
          counts[FlatPairTable::MakeKey(v, e.other)];
      for (const std::pair<EdgeLabel, int>& p : slot) {
        if (p.first == e.label) return "duplicate (from,label,to) edge";
      }
      slot.emplace_back(e.label, 1);
      ++out_total;
    }
  }
  for (VertexId v = 0; v < in_adj_.ListCount(); ++v) {
    for (const AdjEntry& e : in_adj_.View(v)) {
      auto it = counts.find(FlatPairTable::MakeKey(e.other, v));
      if (it == counts.end()) return "in-adjacency entry without out mirror";
      bool matched = false;
      for (std::pair<EdgeLabel, int>& p : it->second) {
        if (p.first == e.label && p.second > 0) {
          --p.second;
          matched = true;
          break;
        }
      }
      if (!matched) return "in-adjacency entry without out mirror";
    }
  }
  size_t in_total = in_adj_.LiveEntries();
  if (in_total != out_total) return "in/out adjacency totals differ";
  if (out_total != edge_count_) return "edge_count_ mismatch";
  // The pair index must cover exactly the out-adjacency.
  size_t indexed = 0;
  std::string index_violation;
  pair_index_.ForEach([&](uint64_t key, FlatPairTable::LabelView labels) {
    if (!index_violation.empty()) return;
    VertexId from = FlatPairTable::KeyFrom(key);
    VertexId to = FlatPairTable::KeyTo(key);
    if (from >= out_adj_.ListCount() || to >= out_adj_.ListCount()) {
      index_violation = "pair index key out of range";
      return;
    }
    if (labels.empty()) {
      index_violation = "empty label list in pair index";
      return;
    }
    for (EdgeLabel l : labels) {
      bool found = false;
      for (const AdjEntry& e : out_adj_.View(from)) {
        if (e.other == to && e.label == l) {
          found = true;
          break;
        }
      }
      if (!found) {
        index_violation = "pair index entry without out-adjacency edge";
        return;
      }
      ++indexed;
    }
  });
  if (!index_violation.empty()) return index_violation;
  if (indexed != out_total) return "pair index size mismatch";
  return "";
}

}  // namespace turboflux
