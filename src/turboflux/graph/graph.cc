#include "turboflux/graph/graph.h"

#include <algorithm>

namespace turboflux {

namespace {
const std::vector<EdgeLabel> kNoLabels;
}  // namespace

VertexId Graph::AddVertex(LabelSet labels) {
  VertexId id = static_cast<VertexId>(vertex_labels_.size());
  vertex_labels_.push_back(std::move(labels));
  out_adj_.emplace_back();
  in_adj_.emplace_back();
  return id;
}

bool Graph::AddEdge(VertexId from, EdgeLabel label, VertexId to) {
  if (!IsValidVertex(from) || !IsValidVertex(to)) return false;
  std::vector<EdgeLabel>& labels = edge_labels_[PairKey(from, to)];
  if (std::find(labels.begin(), labels.end(), label) != labels.end()) {
    return false;
  }
  labels.push_back(label);
  out_adj_[from].push_back({to, label});
  in_adj_[to].push_back({from, label});
  ++edge_count_;
  return true;
}

bool Graph::RemoveEdge(VertexId from, EdgeLabel label, VertexId to) {
  if (!HasEdge(from, label, to)) return false;
  auto it = edge_labels_.find(PairKey(from, to));
  std::vector<EdgeLabel>& labels = it->second;
  labels.erase(std::find(labels.begin(), labels.end(), label));
  if (labels.empty()) edge_labels_.erase(it);
  RemoveAdjEntry(out_adj_[from], to, label);
  RemoveAdjEntry(in_adj_[to], from, label);
  --edge_count_;
  return true;
}

bool Graph::HasEdge(VertexId from, EdgeLabel label, VertexId to) const {
  if (!IsValidVertex(from) || !IsValidVertex(to)) return false;
  auto it = edge_labels_.find(PairKey(from, to));
  if (it == edge_labels_.end()) return false;
  const std::vector<EdgeLabel>& labels = it->second;
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

const std::vector<EdgeLabel>& Graph::EdgeLabelsBetween(VertexId from,
                                                       VertexId to) const {
  auto it = edge_labels_.find(PairKey(from, to));
  return it == edge_labels_.end() ? kNoLabels : it->second;
}

void Graph::RemoveAdjEntry(std::vector<AdjEntry>& adj, VertexId other,
                           EdgeLabel label) {
  for (size_t i = 0; i < adj.size(); ++i) {
    if (adj[i].other == other && adj[i].label == label) {
      adj[i] = adj.back();
      adj.pop_back();
      return;
    }
  }
}

}  // namespace turboflux
