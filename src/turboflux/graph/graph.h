#ifndef TURBOFLUX_GRAPH_GRAPH_H_
#define TURBOFLUX_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "turboflux/common/label_set.h"
#include "turboflux/common/serialize.h"
#include "turboflux/common/status.h"
#include "turboflux/common/types.h"

namespace turboflux {

/// An adjacency entry: the neighbouring vertex and the edge label.
/// For out-adjacency `other` is the edge target; for in-adjacency it is the
/// edge source.
struct AdjEntry {
  VertexId other;
  EdgeLabel label;

  friend bool operator==(const AdjEntry& a, const AdjEntry& b) {
    return a.other == b.other && a.label == b.label;
  }
};

/// A dynamic, directed, labeled graph: the data-graph substrate shared by
/// TurboFlux and all baselines.
///
/// * vertices carry label *sets* (L(v)); a query vertex u matches v when
///   L(u) is a subset of L(v);
/// * edges carry exactly one label; at most one edge per
///   (source, label, target) triple (parallel edges with distinct labels
///   are allowed);
/// * edge insertion is O(1) amortized, deletion O(deg), existence O(1)
///   expected (hash probe);
/// * both out- and in-adjacency are maintained, since query-tree edges may
///   be traversed against their direction.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Adds a vertex with the given label set; returns its id. Ids are dense,
  /// starting at 0.
  VertexId AddVertex(LabelSet labels);

  /// Adds a directed edge. Returns false (and leaves the graph unchanged)
  /// if either endpoint does not exist or the identical (from, label, to)
  /// edge is already present.
  bool AddEdge(VertexId from, EdgeLabel label, VertexId to);

  /// Removes a directed edge. Returns false if it was not present.
  bool RemoveEdge(VertexId from, EdgeLabel label, VertexId to);

  /// O(1) expected edge-existence probe.
  bool HasEdge(VertexId from, EdgeLabel label, VertexId to) const;

  size_t VertexCount() const { return vertex_labels_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  bool IsValidVertex(VertexId v) const { return v < vertex_labels_.size(); }

  const LabelSet& labels(VertexId v) const { return vertex_labels_[v]; }

  const std::vector<AdjEntry>& OutEdges(VertexId v) const {
    return out_adj_[v];
  }
  const std::vector<AdjEntry>& InEdges(VertexId v) const { return in_adj_[v]; }

  size_t OutDegree(VertexId v) const { return out_adj_[v].size(); }
  size_t InDegree(VertexId v) const { return in_adj_[v].size(); }
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// All labels of edges from `from` to `to` (unsorted view).
  /// Returns an empty vector reference when there is no such pair.
  const std::vector<EdgeLabel>& EdgeLabelsBetween(VertexId from,
                                                  VertexId to) const;

  /// Appends a binary encoding of the graph to `out`. The encoding
  /// preserves the exact order of both adjacency lists (observable through
  /// OutEdges/InEdges and hence through match enumeration order), so a
  /// deserialized graph is behaviorally byte-identical, not merely
  /// isomorphic. Used by the engine checkpoint (DESIGN.md §3.7).
  void Serialize(std::string& out) const;

  /// Rebuilds the graph from `in` (replacing all current state). Every id
  /// is bounds-checked and the in/out adjacency mirrors are
  /// cross-validated, so corrupted input yields a kCorruption status
  /// (with the graph left empty), never a crash or an inconsistent graph.
  Status Deserialize(bin::Reader& in);

  /// Exhaustive internal-consistency check: the in-adjacency mirrors the
  /// out-adjacency edge-for-edge, the (from, to) -> labels index matches
  /// both, and edge_count_ equals a recount. Returns an empty string when
  /// consistent, else a description of the first violation. O(|E|);
  /// meant for tests and snapshot validation.
  std::string CheckConsistency() const;

 private:
  static uint64_t PairKey(VertexId from, VertexId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  static void RemoveAdjEntry(std::vector<AdjEntry>& adj, VertexId other,
                             EdgeLabel label);

  std::vector<LabelSet> vertex_labels_;
  std::vector<std::vector<AdjEntry>> out_adj_;
  std::vector<std::vector<AdjEntry>> in_adj_;
  // (from, to) -> labels of parallel edges between them. Supports the O(1)
  // HasEdge probe and duplicate-insert detection.
  std::unordered_map<uint64_t, std::vector<EdgeLabel>> edge_labels_;
  size_t edge_count_ = 0;
};

}  // namespace turboflux

#endif  // TURBOFLUX_GRAPH_GRAPH_H_
