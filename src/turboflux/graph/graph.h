#ifndef TURBOFLUX_GRAPH_GRAPH_H_
#define TURBOFLUX_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "turboflux/common/adj_pool.h"
#include "turboflux/common/flat_table.h"
#include "turboflux/common/label_set.h"
#include "turboflux/common/serialize.h"
#include "turboflux/common/status.h"
#include "turboflux/common/types.h"

namespace turboflux {

/// An adjacency entry: the neighbouring vertex and the edge label.
/// For out-adjacency `other` is the edge target; for in-adjacency it is the
/// edge source.
struct AdjEntry {
  VertexId other;
  EdgeLabel label;

  friend bool operator==(const AdjEntry& a, const AdjEntry& b) {
    return a.other == b.other && a.label == b.label;
  }
};

/// A dynamic, directed, labeled graph: the data-graph substrate shared by
/// TurboFlux and all baselines.
///
/// * vertices carry label *sets* (L(v)); a query vertex u matches v when
///   L(u) is a subset of L(v);
/// * edges carry exactly one label; at most one edge per
///   (source, label, target) triple (parallel edges with distinct labels
///   are allowed);
/// * edge insertion is O(1) amortized, deletion O(deg), existence O(1)
///   expected (one flat-table probe);
/// * both out- and in-adjacency are maintained, since query-tree edges may
///   be traversed against their direction.
///
/// Memory layout (DESIGN.md §3.11): adjacency lives in two contiguous
/// AdjPool slabs (CSR-style spans with epoch-based compaction), and the
/// (from, to) -> labels index is a flat open-addressing FlatPairTable —
/// both bounded under delete-heavy streams. Observable behavior (entry
/// orders, serialized bytes) is identical to the node-based layout the
/// pools replaced, which `legacy::NodeGraph` preserves as the
/// differential-test oracle.
///
/// Read-API lifetime rule: the spans returned by OutEdges/InEdges/
/// EdgeLabelsBetween are invalidated by ANY graph mutation (growth can
/// relocate a list; compaction moves all of them). The engine honors this
/// for free — the data graph is only mutated at update-op boundaries,
/// never during an evaluation that holds a view.
class Graph {
 public:
  /// Read-only view of one vertex's adjacency; see the lifetime rule above.
  using AdjView = Span<AdjEntry>;
  /// Read-only view of one pair's parallel-edge labels.
  using LabelView = Span<EdgeLabel>;

  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Adds a vertex with the given label set; returns its id. Ids are dense,
  /// starting at 0.
  VertexId AddVertex(LabelSet labels);

  /// Adds a directed edge. Returns false (and leaves the graph unchanged)
  /// if either endpoint does not exist or the identical (from, label, to)
  /// edge is already present.
  bool AddEdge(VertexId from, EdgeLabel label, VertexId to);

  /// Removes a directed edge. Returns false if it was not present.
  bool RemoveEdge(VertexId from, EdgeLabel label, VertexId to);

  /// O(1) expected edge-existence probe.
  bool HasEdge(VertexId from, EdgeLabel label, VertexId to) const;

  size_t VertexCount() const { return vertex_labels_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  bool IsValidVertex(VertexId v) const { return v < vertex_labels_.size(); }

  const LabelSet& labels(VertexId v) const { return vertex_labels_[v]; }

  AdjView OutEdges(VertexId v) const { return out_adj_.View(v); }
  AdjView InEdges(VertexId v) const { return in_adj_.View(v); }

  size_t OutDegree(VertexId v) const { return out_adj_.Size(v); }
  size_t InDegree(VertexId v) const { return in_adj_.Size(v); }
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// All labels of edges from `from` to `to`, in insertion order (minus
  /// order-preserving erases). Empty view when there is no such pair.
  LabelView EdgeLabelsBetween(VertexId from, VertexId to) const {
    return pair_index_.Find(FlatPairTable::MakeKey(from, to));
  }

  /// Appends a binary encoding of the graph to `out`. The encoding
  /// preserves the exact order of both adjacency lists (observable through
  /// OutEdges/InEdges and hence through match enumeration order), so a
  /// deserialized graph is behaviorally byte-identical, not merely
  /// isomorphic. Used by the engine checkpoint (DESIGN.md §3.7). The
  /// bytes are independent of slab/table geometry — layout is rebuilt on
  /// Deserialize — so snapshots cross memory-layout generations.
  void Serialize(std::string& out) const;

  /// Rebuilds the graph from `in` (replacing all current state). Every id
  /// is bounds-checked and the in/out adjacency mirrors are
  /// cross-validated, so corrupted input yields a kCorruption status
  /// (with the graph left empty), never a crash or an inconsistent graph.
  Status Deserialize(bin::Reader& in);

  /// Exhaustive internal-consistency check: the in-adjacency mirrors the
  /// out-adjacency edge-for-edge, the (from, to) -> labels index matches
  /// both, edge_count_ equals a recount, and the pool/table internals
  /// self-validate. Returns an empty string when consistent, else a
  /// description of the first violation. O(|E|); meant for tests and
  /// snapshot validation.
  std::string CheckConsistency() const;

  /// Memory introspection for the engine's graph gauges (DESIGN.md §3.11):
  /// heap bytes held by the adjacency slabs and the pair table, slab slots
  /// not holding a live entry, and how many compactions/rehashes have run.
  size_t AdjacencyMemoryBytes() const {
    return out_adj_.MemoryBytes() + in_adj_.MemoryBytes();
  }
  size_t AdjacencyDeadSlots() const {
    return out_adj_.DeadSlots() + in_adj_.DeadSlots();
  }
  size_t PairTableMemoryBytes() const { return pair_index_.MemoryBytes(); }
  uint64_t CompactionEpochs() const {
    return out_adj_.Epoch() + in_adj_.Epoch();
  }
  uint64_t PairTableRehashes() const { return pair_index_.RehashCount(); }

 private:
  std::vector<LabelSet> vertex_labels_;
  AdjPool<AdjEntry> out_adj_;
  AdjPool<AdjEntry> in_adj_;
  // (from, to) -> labels of parallel edges between them. Supports the O(1)
  // HasEdge probe and duplicate-insert detection.
  FlatPairTable pair_index_;
  size_t edge_count_ = 0;
};

}  // namespace turboflux

#endif  // TURBOFLUX_GRAPH_GRAPH_H_
