#include "turboflux/graph/graph_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace turboflux {

namespace {

bool IsSkippable(const std::string& line) {
  return line.empty() || line[0] == '#';
}

/// Splits on spaces/tabs (multiple separators collapse, like istream>>).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Strict uint32 parse: digits only (no sign, no trailing junk, no
/// overflow wrap — `std::istream >> uint32_t` silently wraps "-5", which
/// is exactly the silent acceptance this parser exists to reject).
bool ParseU32(const std::string& token, uint32_t* out) {
  if (token.empty() || token.size() > 10) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<uint32_t>::max()) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

/// Shared skip-or-fail policy: in strict mode the first bad record aborts
/// with `error` at `line_no`; in lenient mode it is counted and skipped.
bool HandleBadRecord(const IoOptions& options, IoStats* stats, size_t line_no,
                     const Status& error, Status* out_status) {
  if (stats != nullptr) {
    ++stats->skipped;
    if (stats->first_bad_line == 0) stats->first_bad_line = line_no;
  }
  if (options.lenient) return true;  // keep going
  *out_status = error.AtLine(line_no);
  return false;
}

}  // namespace

Status ReadGraph(std::istream& in, Graph* out, const IoOptions& options,
                 IoStats* stats) {
  *out = Graph();
  IoStats local_stats;
  IoStats* st = stats != nullptr ? stats : &local_stats;
  *st = IoStats();
  std::string line;
  size_t line_no = 0;
  Status status;
  while (std::getline(in, line)) {
    ++line_no;
    ++st->lines;
    if (IsSkippable(line)) continue;
    std::vector<std::string> tok = Tokenize(line);
    if (tok.empty()) continue;
    Status bad;
    if (tok[0] == "v") {
      uint32_t id = 0;
      if (tok.size() < 2 || !ParseU32(tok[1], &id)) {
        bad = Status::InvalidArgument("unparsable vertex id");
      } else if (id != out->VertexCount()) {
        bad = Status::InvalidArgument(
            "vertex ids must be dense and in order (got " + tok[1] +
            ", expected " + std::to_string(out->VertexCount()) + ")");
      } else if (id >= options.max_vertices) {
        bad = Status::OutOfRange("vertex id " + tok[1] + " exceeds limit");
      } else {
        std::vector<Label> labels;
        labels.reserve(tok.size() - 2);
        for (size_t i = 2; i < tok.size() && bad.ok(); ++i) {
          Label l = 0;
          if (!ParseU32(tok[i], &l)) {
            bad = Status::InvalidArgument("unparsable vertex label '" +
                                          tok[i] + "'");
          } else if (l >= options.vertex_label_limit) {
            bad = Status::OutOfRange("unknown vertex label " + tok[i]);
          } else {
            labels.push_back(l);
          }
        }
        if (bad.ok()) {
          out->AddVertex(LabelSet(std::move(labels)));
          ++st->records;
          continue;
        }
      }
    } else if (tok[0] == "e") {
      uint32_t from = 0, label = 0, to = 0;
      if (tok.size() != 4 || !ParseU32(tok[1], &from) ||
          !ParseU32(tok[2], &label) || !ParseU32(tok[3], &to)) {
        bad = Status::InvalidArgument(
            "edge record must be `e <from> <label> <to>`");
      } else if (!out->IsValidVertex(from) || !out->IsValidVertex(to)) {
        bad = Status::OutOfRange("edge endpoint references unseen vertex");
      } else if (label >= options.edge_label_limit) {
        bad = Status::OutOfRange("unknown edge label " + tok[2]);
      } else {
        if (out->AddEdge(from, label, to)) {
          ++st->records;
        } else {
          ++st->duplicates;  // duplicate (from,label,to): accepted no-op
        }
        continue;
      }
    } else {
      bad = Status::InvalidArgument("unknown record kind '" + tok[0] + "'");
    }
    if (!HandleBadRecord(options, st, line_no, bad, &status)) {
      *out = Graph();
      return status;
    }
  }
  if (in.bad()) {
    *out = Graph();
    return Status::IoError("read failure");
  }
  return Status::Ok();
}

Status ReadGraphFromFile(const std::string& path, Graph* out,
                         const IoOptions& options, IoStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadGraph(in, out, options, stats);
}

Status ReadStream(std::istream& in, UpdateStream* out,
                  const IoOptions& options, IoStats* stats) {
  out->clear();
  IoStats local_stats;
  IoStats* st = stats != nullptr ? stats : &local_stats;
  *st = IoStats();
  std::string line;
  size_t line_no = 0;
  Status status;
  while (std::getline(in, line)) {
    ++line_no;
    ++st->lines;
    if (IsSkippable(line)) continue;
    std::vector<std::string> tok = Tokenize(line);
    if (tok.empty()) continue;
    Status bad;
    uint32_t from = 0, label = 0, to = 0;
    if (tok[0] != "+" && tok[0] != "-") {
      bad = Status::InvalidArgument("unknown op kind '" + tok[0] + "'");
    } else if (tok.size() != 4 || !ParseU32(tok[1], &from) ||
               !ParseU32(tok[2], &label) || !ParseU32(tok[3], &to)) {
      bad = Status::InvalidArgument(
          "op record must be `+|- <from> <label> <to>`");
    } else if (from >= options.max_vertices || to >= options.max_vertices) {
      bad = Status::OutOfRange("op endpoint references unseen vertex");
    } else if (label >= options.edge_label_limit) {
      bad = Status::OutOfRange("unknown edge label " + tok[2]);
    } else {
      out->push_back(tok[0] == "+" ? UpdateOp::Insert(from, label, to)
                                   : UpdateOp::Delete(from, label, to));
      ++st->records;
      continue;
    }
    if (!HandleBadRecord(options, st, line_no, bad, &status)) {
      out->clear();
      return status;
    }
  }
  if (in.bad()) {
    out->clear();
    return Status::IoError("read failure");
  }
  return Status::Ok();
}

Status ReadStreamFromFile(const std::string& path, UpdateStream* out,
                          const IoOptions& options, IoStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadStream(in, out, options, stats);
}

std::optional<Graph> ReadGraph(std::istream& in) {
  Graph g;
  if (!ReadGraph(in, &g).ok()) return std::nullopt;
  return g;
}

std::optional<Graph> ReadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadGraph(in);
}

std::optional<UpdateStream> ReadStream(std::istream& in) {
  UpdateStream stream;
  if (!ReadStream(in, &stream).ok()) return std::nullopt;
  return stream;
}

std::optional<UpdateStream> ReadStreamFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadStream(in);
}

void WriteGraph(const Graph& g, std::ostream& out) {
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    out << "v " << v;
    for (Label l : g.labels(v).labels()) out << " " << l;
    out << "\n";
  }
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    for (const AdjEntry& e : g.OutEdges(v)) {
      out << "e " << v << " " << e.label << " " << e.other << "\n";
    }
  }
}

bool WriteGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteGraph(g, out);
  return static_cast<bool>(out);
}

void WriteStream(const UpdateStream& stream, std::ostream& out) {
  for (const UpdateOp& op : stream) {
    out << (op.IsInsert() ? "+" : "-") << " " << op.from << " " << op.label
        << " " << op.to << "\n";
  }
}

bool WriteStreamToFile(const UpdateStream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteStream(stream, out);
  return static_cast<bool>(out);
}

}  // namespace turboflux
