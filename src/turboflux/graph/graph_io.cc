#include "turboflux/graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace turboflux {

namespace {

bool IsSkippable(const std::string& line) {
  return line.empty() || line[0] == '#';
}

}  // namespace

std::optional<Graph> ReadGraph(std::istream& in) {
  Graph g;
  std::string line;
  while (std::getline(in, line)) {
    if (IsSkippable(line)) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "v") {
      VertexId id;
      if (!(ls >> id)) return std::nullopt;
      if (id != g.VertexCount()) return std::nullopt;  // ids must be dense
      std::vector<Label> labels;
      Label l;
      while (ls >> l) labels.push_back(l);
      g.AddVertex(LabelSet(std::move(labels)));
    } else if (kind == "e") {
      VertexId from, to;
      EdgeLabel label;
      if (!(ls >> from >> label >> to)) return std::nullopt;
      if (!g.IsValidVertex(from) || !g.IsValidVertex(to)) return std::nullopt;
      g.AddEdge(from, label, to);
    } else {
      return std::nullopt;
    }
  }
  return g;
}

std::optional<Graph> ReadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadGraph(in);
}

void WriteGraph(const Graph& g, std::ostream& out) {
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    out << "v " << v;
    for (Label l : g.labels(v).labels()) out << " " << l;
    out << "\n";
  }
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    for (const AdjEntry& e : g.OutEdges(v)) {
      out << "e " << v << " " << e.label << " " << e.other << "\n";
    }
  }
}

bool WriteGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteGraph(g, out);
  return static_cast<bool>(out);
}

std::optional<UpdateStream> ReadStream(std::istream& in) {
  UpdateStream stream;
  std::string line;
  while (std::getline(in, line)) {
    if (IsSkippable(line)) continue;
    std::istringstream ls(line);
    std::string kind;
    VertexId from, to;
    EdgeLabel label;
    if (!(ls >> kind >> from >> label >> to)) return std::nullopt;
    if (kind == "+") {
      stream.push_back(UpdateOp::Insert(from, label, to));
    } else if (kind == "-") {
      stream.push_back(UpdateOp::Delete(from, label, to));
    } else {
      return std::nullopt;
    }
  }
  return stream;
}

std::optional<UpdateStream> ReadStreamFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadStream(in);
}

void WriteStream(const UpdateStream& stream, std::ostream& out) {
  for (const UpdateOp& op : stream) {
    out << (op.IsInsert() ? "+" : "-") << " " << op.from << " " << op.label
        << " " << op.to << "\n";
  }
}

bool WriteStreamToFile(const UpdateStream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteStream(stream, out);
  return static_cast<bool>(out);
}

}  // namespace turboflux
