#ifndef TURBOFLUX_GRAPH_GRAPH_IO_H_
#define TURBOFLUX_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"

namespace turboflux {

/// Text format for graphs and streams so examples and experiments can be
/// persisted and replayed:
///
///   graph file:  `v <id> [label...]` lines (ids must be dense and in
///                order), then `e <from> <label> <to>` lines;
///   stream file: `+ <from> <label> <to>` / `- <from> <label> <to>` lines.
///
/// Blank lines and lines starting with `#` are ignored.
///
/// All readers return std::nullopt on malformed input (no exceptions).

std::optional<Graph> ReadGraph(std::istream& in);
std::optional<Graph> ReadGraphFromFile(const std::string& path);
void WriteGraph(const Graph& g, std::ostream& out);
bool WriteGraphToFile(const Graph& g, const std::string& path);

std::optional<UpdateStream> ReadStream(std::istream& in);
std::optional<UpdateStream> ReadStreamFromFile(const std::string& path);
void WriteStream(const UpdateStream& stream, std::ostream& out);
bool WriteStreamToFile(const UpdateStream& stream, const std::string& path);

}  // namespace turboflux

#endif  // TURBOFLUX_GRAPH_GRAPH_IO_H_
