#ifndef TURBOFLUX_GRAPH_GRAPH_IO_H_
#define TURBOFLUX_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>

#include "turboflux/common/status.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"

namespace turboflux {

/// Text format for graphs and streams so examples and experiments can be
/// persisted and replayed:
///
///   graph file:  `v <id> [label...]` lines (ids must be dense and in
///                order), then `e <from> <label> <to>` lines;
///   stream file: `+ <from> <label> <to>` / `- <from> <label> <to>` lines.
///
/// Blank lines and lines starting with `#` are ignored.
///
/// The Status-returning readers are the primary API: every malformed
/// record — unknown record kind, missing/extra fields, unparsable or
/// out-of-range numbers, non-dense vertex ids, edge endpoints referencing
/// undeclared vertices, labels outside a declared alphabet — is rejected
/// with a Status carrying the offending 1-based line number. In lenient
/// mode bad records are skipped and counted instead (stats report how
/// many and where the first one was). A re-inserted duplicate
/// (from, label, to) edge is not malformed; it is accepted as a no-op and
/// counted in `IoStats::duplicates` in either mode.
///
/// The std::optional wrappers are legacy shims over strict mode.

/// Sentinel for "no limit" in IoOptions.
inline constexpr uint64_t kNoIoLimit = std::numeric_limits<uint64_t>::max();

struct IoOptions {
  /// Strict (default): the first malformed record aborts the read with an
  /// error Status. Lenient: malformed records are skipped and counted.
  bool lenient = false;

  /// Exclusive upper bound on vertex ids. For graphs this caps the number
  /// of `v` records; for streams it bounds endpoint ids (pass
  /// g.VertexCount() to reject ops referencing unseen vertices).
  uint64_t max_vertices = kNoIoLimit;

  /// Exclusive upper bound on vertex labels (`v` records).
  uint64_t vertex_label_limit = kNoIoLimit;

  /// Exclusive upper bound on edge labels (`e` and stream records).
  uint64_t edge_label_limit = kNoIoLimit;
};

struct IoStats {
  size_t lines = 0;           ///< lines scanned (including blank/comment)
  size_t records = 0;         ///< records accepted
  size_t skipped = 0;         ///< malformed records skipped (lenient mode)
  size_t duplicates = 0;      ///< duplicate edge insertions (accepted no-ops)
  size_t first_bad_line = 0;  ///< 1-based line of the first bad record; 0 = none
};

Status ReadGraph(std::istream& in, Graph* out, const IoOptions& options = {},
                 IoStats* stats = nullptr);
Status ReadGraphFromFile(const std::string& path, Graph* out,
                         const IoOptions& options = {},
                         IoStats* stats = nullptr);

Status ReadStream(std::istream& in, UpdateStream* out,
                  const IoOptions& options = {}, IoStats* stats = nullptr);
Status ReadStreamFromFile(const std::string& path, UpdateStream* out,
                          const IoOptions& options = {},
                          IoStats* stats = nullptr);

// Legacy shims: strict mode, no limits; std::nullopt on any error.
std::optional<Graph> ReadGraph(std::istream& in);
std::optional<Graph> ReadGraphFromFile(const std::string& path);
std::optional<UpdateStream> ReadStream(std::istream& in);
std::optional<UpdateStream> ReadStreamFromFile(const std::string& path);

void WriteGraph(const Graph& g, std::ostream& out);
bool WriteGraphToFile(const Graph& g, const std::string& path);
void WriteStream(const UpdateStream& stream, std::ostream& out);
bool WriteStreamToFile(const UpdateStream& stream, const std::string& path);

}  // namespace turboflux

#endif  // TURBOFLUX_GRAPH_GRAPH_IO_H_
