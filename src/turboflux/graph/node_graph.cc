#include "turboflux/graph/node_graph.h"

#include <algorithm>
#include <utility>

namespace turboflux {
namespace legacy {

namespace {
const std::vector<EdgeLabel> kNoLabels;
}  // namespace

VertexId NodeGraph::AddVertex(LabelSet labels) {
  VertexId id = static_cast<VertexId>(vertex_labels_.size());
  vertex_labels_.push_back(std::move(labels));
  out_adj_.emplace_back();
  in_adj_.emplace_back();
  return id;
}

bool NodeGraph::AddEdge(VertexId from, EdgeLabel label, VertexId to) {
  if (!IsValidVertex(from) || !IsValidVertex(to)) return false;
  std::vector<EdgeLabel>& labels = edge_labels_[PairKey(from, to)];
  if (std::find(labels.begin(), labels.end(), label) != labels.end()) {
    return false;
  }
  labels.push_back(label);
  out_adj_[from].push_back({to, label});
  in_adj_[to].push_back({from, label});
  ++edge_count_;
  return true;
}

bool NodeGraph::RemoveEdge(VertexId from, EdgeLabel label, VertexId to) {
  if (!HasEdge(from, label, to)) return false;
  auto it = edge_labels_.find(PairKey(from, to));
  std::vector<EdgeLabel>& labels = it->second;
  labels.erase(std::find(labels.begin(), labels.end(), label));
  if (labels.empty()) edge_labels_.erase(it);
  RemoveAdjEntry(out_adj_[from], to, label);
  RemoveAdjEntry(in_adj_[to], from, label);
  --edge_count_;
  return true;
}

bool NodeGraph::HasEdge(VertexId from, EdgeLabel label, VertexId to) const {
  if (!IsValidVertex(from) || !IsValidVertex(to)) return false;
  auto it = edge_labels_.find(PairKey(from, to));
  if (it == edge_labels_.end()) return false;
  const std::vector<EdgeLabel>& labels = it->second;
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

const std::vector<EdgeLabel>& NodeGraph::EdgeLabelsBetween(VertexId from,
                                                           VertexId to) const {
  auto it = edge_labels_.find(PairKey(from, to));
  return it == edge_labels_.end() ? kNoLabels : it->second;
}

void NodeGraph::RemoveAdjEntry(std::vector<AdjEntry>& adj, VertexId other,
                               EdgeLabel label) {
  for (size_t i = 0; i < adj.size(); ++i) {
    if (adj[i].other == other && adj[i].label == label) {
      adj[i] = adj.back();
      adj.pop_back();
      return;
    }
  }
}

namespace {

void SerializeAdjacency(const std::vector<std::vector<AdjEntry>>& adj,
                        std::string& out) {
  for (const std::vector<AdjEntry>& entries : adj) {
    bin::PutU32(out, static_cast<uint32_t>(entries.size()));
    for (const AdjEntry& e : entries) {
      bin::PutU32(out, e.other);
      bin::PutU32(out, e.label);
    }
  }
}

}  // namespace

void NodeGraph::Serialize(std::string& out) const {
  bin::PutU64(out, vertex_labels_.size());
  for (const LabelSet& ls : vertex_labels_) {
    bin::PutU32(out, static_cast<uint32_t>(ls.size()));
    for (Label l : ls.labels()) bin::PutU32(out, l);
  }
  SerializeAdjacency(out_adj_, out);
  SerializeAdjacency(in_adj_, out);
}

Status NodeGraph::Deserialize(bin::Reader& in) {
  *this = NodeGraph();
  uint64_t nv = 0;
  if (!in.GetU64(&nv) || nv >= kNullVertex) {
    return Status::Corruption("graph: bad vertex count");
  }
  vertex_labels_.reserve(nv);
  for (uint64_t v = 0; v < nv; ++v) {
    uint32_t nl = 0;
    if (!in.GetLength(&nl, in.remaining() / 4)) {
      *this = NodeGraph();
      return Status::Corruption("graph: bad label count");
    }
    std::vector<Label> labels(nl);
    for (uint32_t i = 0; i < nl; ++i) {
      if (!in.GetU32(&labels[i])) {
        *this = NodeGraph();
        return Status::Corruption("graph: truncated vertex labels");
      }
    }
    vertex_labels_.emplace_back(std::move(labels));
  }
  auto read_adj = [&](std::vector<std::vector<AdjEntry>>& adj) -> Status {
    adj.assign(nv, {});
    for (uint64_t v = 0; v < nv; ++v) {
      uint32_t deg = 0;
      if (!in.GetLength(&deg, in.remaining() / 8)) {
        return Status::Corruption("graph: bad adjacency length");
      }
      adj[v].resize(deg);
      for (uint32_t i = 0; i < deg; ++i) {
        AdjEntry& e = adj[v][i];
        if (!in.GetU32(&e.other) || !in.GetU32(&e.label)) {
          return Status::Corruption("graph: truncated adjacency entry");
        }
        if (e.other >= nv) {
          *this = NodeGraph();
          return Status::Corruption("graph: adjacency vertex out of range");
        }
      }
    }
    return Status::Ok();
  };
  Status s = read_adj(out_adj_);
  if (!s.ok()) {
    *this = NodeGraph();
    return s;
  }
  s = read_adj(in_adj_);
  if (!s.ok()) {
    *this = NodeGraph();
    return s;
  }
  for (VertexId v = 0; v < vertex_labels_.size(); ++v) {
    for (const AdjEntry& e : out_adj_[v]) {
      std::vector<EdgeLabel>& labels = edge_labels_[PairKey(v, e.other)];
      if (std::find(labels.begin(), labels.end(), e.label) != labels.end()) {
        *this = NodeGraph();
        return Status::Corruption("graph: duplicate edge in out-adjacency");
      }
      labels.push_back(e.label);
      ++edge_count_;
    }
  }
  std::string violation = CheckConsistency();
  if (!violation.empty()) {
    *this = NodeGraph();
    return Status::Corruption("graph: " + violation);
  }
  return Status::Ok();
}

std::string NodeGraph::CheckConsistency() const {
  if (out_adj_.size() != vertex_labels_.size() ||
      in_adj_.size() != vertex_labels_.size()) {
    return "adjacency/vertex size mismatch";
  }
  // Validation-only recount scratch. tfx-lint: allow(hot-path-map)
  std::unordered_map<uint64_t, std::vector<std::pair<EdgeLabel, int>>> counts;
  size_t out_total = 0;
  for (VertexId v = 0; v < out_adj_.size(); ++v) {
    for (const AdjEntry& e : out_adj_[v]) {
      std::vector<std::pair<EdgeLabel, int>>& slot =
          counts[PairKey(v, e.other)];
      for (const std::pair<EdgeLabel, int>& p : slot) {
        if (p.first == e.label) return "duplicate (from,label,to) edge";
      }
      slot.emplace_back(e.label, 1);
      ++out_total;
    }
  }
  for (VertexId v = 0; v < in_adj_.size(); ++v) {
    for (const AdjEntry& e : in_adj_[v]) {
      auto it = counts.find(PairKey(e.other, v));
      if (it == counts.end()) return "in-adjacency entry without out mirror";
      bool matched = false;
      for (std::pair<EdgeLabel, int>& p : it->second) {
        if (p.first == e.label && p.second > 0) {
          --p.second;
          matched = true;
          break;
        }
      }
      if (!matched) return "in-adjacency entry without out mirror";
    }
  }
  size_t in_total = 0;
  for (VertexId v = 0; v < in_adj_.size(); ++v) in_total += in_adj_[v].size();
  if (in_total != out_total) return "in/out adjacency totals differ";
  if (out_total != edge_count_) return "edge_count_ mismatch";
  size_t indexed = 0;
  for (const auto& [key, labels] : edge_labels_) {
    VertexId from = static_cast<VertexId>(key >> 32);
    VertexId to = static_cast<VertexId>(key & 0xffffffffu);
    if (from >= out_adj_.size() || to >= out_adj_.size()) {
      return "pair index key out of range";
    }
    if (labels.empty()) return "empty label list in pair index";
    for (EdgeLabel l : labels) {
      bool found = false;
      for (const AdjEntry& e : out_adj_[from]) {
        if (e.other == to && e.label == l) {
          found = true;
          break;
        }
      }
      if (!found) return "pair index entry without out-adjacency edge";
      ++indexed;
    }
  }
  if (indexed != out_total) return "pair index size mismatch";
  return "";
}

}  // namespace legacy
}  // namespace turboflux
