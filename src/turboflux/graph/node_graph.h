#ifndef TURBOFLUX_GRAPH_NODE_GRAPH_H_
#define TURBOFLUX_GRAPH_NODE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>  // tfx-lint: allow(hot-path-map)
#include <vector>

#include "turboflux/common/label_set.h"
#include "turboflux/common/serialize.h"
#include "turboflux/common/status.h"
#include "turboflux/common/types.h"
#include "turboflux/graph/graph.h"

namespace turboflux {
namespace legacy {

/// The pre-§3.11 node-based data graph, preserved verbatim: adjacency as
/// vector-of-vectors, edge labels in a std::unordered_map. It is NOT used
/// by any engine — it exists as (a) the oracle for the layout-differential
/// tests, which pin the CSR `Graph` to the exact observable behavior
/// (entry orders, serialized bytes) this implementation defines, and
/// (b) the "before" side of the `micro_ops` layout A/B benchmarks.
///
/// Mutation/read API and semantics are identical to `Graph`'s; see
/// graph.h for documentation. Keep the two in behavioral lockstep — the
/// differential suite fails otherwise.
class NodeGraph {
 public:
  NodeGraph() = default;

  VertexId AddVertex(LabelSet labels);
  bool AddEdge(VertexId from, EdgeLabel label, VertexId to);
  bool RemoveEdge(VertexId from, EdgeLabel label, VertexId to);
  bool HasEdge(VertexId from, EdgeLabel label, VertexId to) const;

  size_t VertexCount() const { return vertex_labels_.size(); }
  size_t EdgeCount() const { return edge_count_; }
  bool IsValidVertex(VertexId v) const { return v < vertex_labels_.size(); }
  const LabelSet& labels(VertexId v) const { return vertex_labels_[v]; }

  const std::vector<AdjEntry>& OutEdges(VertexId v) const {
    return out_adj_[v];
  }
  const std::vector<AdjEntry>& InEdges(VertexId v) const { return in_adj_[v]; }

  size_t OutDegree(VertexId v) const { return out_adj_[v].size(); }
  size_t InDegree(VertexId v) const { return in_adj_[v].size(); }
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  const std::vector<EdgeLabel>& EdgeLabelsBetween(VertexId from,
                                                  VertexId to) const;

  void Serialize(std::string& out) const;
  Status Deserialize(bin::Reader& in);
  std::string CheckConsistency() const;

 private:
  static uint64_t PairKey(VertexId from, VertexId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  static void RemoveAdjEntry(std::vector<AdjEntry>& adj, VertexId other,
                             EdgeLabel label);

  std::vector<LabelSet> vertex_labels_;
  std::vector<std::vector<AdjEntry>> out_adj_;
  std::vector<std::vector<AdjEntry>> in_adj_;
  // tfx-lint: allow(hot-path-map): this IS the frozen pre-rework layout.
  std::unordered_map<uint64_t, std::vector<EdgeLabel>>
      edge_labels_;
  size_t edge_count_ = 0;
};

}  // namespace legacy
}  // namespace turboflux

#endif  // TURBOFLUX_GRAPH_NODE_GRAPH_H_
