#include "turboflux/graph/update_stream.h"

#include "turboflux/graph/graph.h"

namespace turboflux {

std::string UpdateOp::ToString() const {
  std::string out = IsInsert() ? "+" : "-";
  out += "(";
  out += std::to_string(from);
  out += ",";
  out += std::to_string(label);
  out += ",";
  out += std::to_string(to);
  out += ")";
  return out;
}

Status ValidateOp(const Graph& g, const UpdateOp& op) {
  if (!g.IsValidVertex(op.from) || !g.IsValidVertex(op.to)) {
    return Status::OutOfRange("op " + op.ToString() +
                              " references unseen vertex");
  }
  const bool present = g.HasEdge(op.from, op.label, op.to);
  if (op.IsInsert() && present) {
    return Status::FailedPrecondition("duplicate insertion " + op.ToString());
  }
  if (!op.IsInsert() && !present) {
    return Status::NotFound("deletion of absent edge " + op.ToString());
  }
  return Status::Ok();
}

bool ApplyUpdate(Graph& g, const UpdateOp& op) {
  if (op.IsInsert()) return g.AddEdge(op.from, op.label, op.to);
  return g.RemoveEdge(op.from, op.label, op.to);
}

size_t ApplyStream(Graph& g, const UpdateStream& stream) {
  size_t changed = 0;
  for (const UpdateOp& op : stream) {
    if (ApplyUpdate(g, op)) ++changed;
  }
  return changed;
}

}  // namespace turboflux
