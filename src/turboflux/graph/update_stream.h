#ifndef TURBOFLUX_GRAPH_UPDATE_STREAM_H_
#define TURBOFLUX_GRAPH_UPDATE_STREAM_H_

#include <string>
#include <vector>

#include "turboflux/common/status.h"
#include "turboflux/common/types.h"

namespace turboflux {

/// A single update operation Δo = (op, v, l, v') (Definition 2, extended
/// with the edge label which the actual TurboFlux implementation supports).
struct UpdateOp {
  enum class Type : uint8_t { kInsert, kDelete };

  Type type;
  VertexId from;
  EdgeLabel label;
  VertexId to;

  static UpdateOp Insert(VertexId from, EdgeLabel label, VertexId to) {
    return {Type::kInsert, from, label, to};
  }
  static UpdateOp Delete(VertexId from, EdgeLabel label, VertexId to) {
    return {Type::kDelete, from, label, to};
  }

  bool IsInsert() const { return type == Type::kInsert; }

  friend bool operator==(const UpdateOp& a, const UpdateOp& b) {
    return a.type == b.type && a.from == b.from && a.label == b.label &&
           a.to == b.to;
  }

  std::string ToString() const;
};

/// A graph update stream Δg = (Δo1, Δo2, ...).
using UpdateStream = std::vector<UpdateOp>;

/// Classifies `op` against the current state of `g` without applying it:
///
///  * kOutOfRange  — an endpoint id is not a vertex of g (malformed op;
///                   applying it is guaranteed to be a no-op, and resilient
///                   callers quarantine it);
///  * kNotFound    — deletion of an edge that does not exist (a legal
///                   stream no-op under Definition 2, reported so callers
///                   can count dangling deletions);
///  * kFailedPrecondition — insertion of an already-present edge (likewise
///                   a legal no-op);
///  * OK           — the op will change the graph.
Status ValidateOp(const class Graph& g, const UpdateOp& op);

/// Applies `op` to `g`; returns true if the graph changed (i.e., the
/// inserted edge was new / the deleted edge existed).
bool ApplyUpdate(class Graph& g, const UpdateOp& op);

/// Applies every op in the stream; returns how many changed the graph.
size_t ApplyStream(class Graph& g, const UpdateStream& stream);

}  // namespace turboflux

#endif  // TURBOFLUX_GRAPH_UPDATE_STREAM_H_
