#ifndef TURBOFLUX_HARNESS_ENGINE_H_
#define TURBOFLUX_HARNESS_ENGINE_H_

#include <algorithm>
#include <span>
#include <string>

#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/obs/engine_stats.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

/// Common interface of every continuous subgraph matching engine in this
/// repository (TurboFlux, SJ-Tree, Graphflow, IncIsoMat). An engine owns
/// its copy of the evolving data graph: Init seeds it with g0, and each
/// ApplyUpdate both applies the update to the internal graph and reports
/// the update's positive/negative matches to the sink.
class ContinuousEngine {
 public:
  virtual ~ContinuousEngine() = default;

  /// Prepares the engine for query `q` over initial graph `g0` and reports
  /// all matches of the initial graph as positive matches. Returns false
  /// if the deadline expired (engine state is then unusable).
  virtual bool Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
                    Deadline deadline) = 0;

  /// Applies one update operation and reports the positive (insertion) or
  /// negative (deletion) matches it causes. Returns false if the deadline
  /// expired mid-operation (reported matches may then be incomplete and
  /// the engine must not be used further — except TurboFlux, which can be
  /// brought back with TurboFluxEngine::Restore; see DESIGN.md §3.7).
  virtual bool ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                           Deadline deadline) = 0;

  /// Applies a window of consecutive update operations, reporting matches
  /// exactly as the equivalent sequence of ApplyUpdate calls would (same
  /// per-op match sets, ops reported in stream order). The default is the
  /// sequential loop; engines with a parallel path override this. Returns
  /// false if the deadline expired mid-batch — the matches reported by
  /// then correspond to a consistent prefix of the batch, and the engine
  /// must not be used further (TurboFlux again excepted via Restore).
  virtual bool ApplyBatch(std::span<const UpdateOp> ops, MatchSink& sink,
                          Deadline deadline) {
    for (const UpdateOp& op : ops) {
      if (!ApplyUpdate(op, sink, deadline)) return false;
      NotePeakIntermediate();
    }
    return true;
  }

  /// Current size of maintained intermediate results, in the engine's
  /// natural unit: DCG edges for TurboFlux, stored partial-solution vertex
  /// slots for SJ-Tree, 0 for the stateless engines.
  virtual size_t IntermediateSize() const = 0;

  /// True if the engine supports edge deletions. (The original SJ-Tree
  /// does not; see Appendix B.2.)
  virtual bool SupportsDeletion() const { return true; }

  virtual std::string name() const = 0;

  /// The engine's hot-path counters (obs/engine_stats.h); nullptr when the
  /// engine is not instrumented. Values reset on Init.
  virtual const obs::EngineStats* engine_stats() const { return nullptr; }

  /// Largest IntermediateSize() observed after any individual op since the
  /// last ResetPeakIntermediate(), never less than the current size.
  /// Instrumented engines (and the default ApplyBatch loop) note the peak
  /// after every op, so batch-mode peaks inside a window are not missed.
  size_t PeakIntermediateSize() const {
    return std::max(peak_intermediate_, IntermediateSize());
  }

  /// Restarts the watermark at the current size (the harness calls this
  /// right after Init so the initial structure is the baseline).
  void ResetPeakIntermediate() { peak_intermediate_ = IntermediateSize(); }

 protected:
  void NotePeakIntermediate() {
    peak_intermediate_ = std::max(peak_intermediate_, IntermediateSize());
  }

 private:
  size_t peak_intermediate_ = 0;
};

}  // namespace turboflux

#endif  // TURBOFLUX_HARNESS_ENGINE_H_
