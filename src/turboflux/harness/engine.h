#ifndef TURBOFLUX_HARNESS_ENGINE_H_
#define TURBOFLUX_HARNESS_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/common/status.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/harness/fault_injection.h"
#include "turboflux/obs/engine_stats.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

/// Common interface of every continuous subgraph matching engine in this
/// repository (TurboFlux, SJ-Tree, Graphflow, IncIsoMat). An engine owns
/// its copy of the evolving data graph: Init seeds it with g0, and each
/// ApplyUpdate both applies the update to the internal graph and reports
/// the update's positive/negative matches to the sink.
class ContinuousEngine {
 public:
  virtual ~ContinuousEngine() = default;

  /// Prepares the engine for query `q` over initial graph `g0` and reports
  /// all matches of the initial graph as positive matches. Returns false
  /// if the deadline expired (engine state is then unusable).
  virtual bool Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
                    Deadline deadline) = 0;

  /// Applies one update operation and reports the positive (insertion) or
  /// negative (deletion) matches it causes. Returns false if the deadline
  /// expired mid-operation (reported matches may then be incomplete and
  /// the engine must not be used further — except TurboFlux, which can be
  /// brought back with TurboFluxEngine::Restore; see DESIGN.md §3.7).
  virtual bool ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                           Deadline deadline) = 0;

  /// Applies a window of consecutive update operations, reporting matches
  /// exactly as the equivalent sequence of ApplyUpdate calls would (same
  /// per-op match sets, ops reported in stream order). The default is the
  /// sequential loop; engines with a parallel path override this. Returns
  /// false if the deadline expired mid-batch — the matches reported by
  /// then correspond to a consistent prefix of the batch, and the engine
  /// must not be used further (TurboFlux again excepted via Restore).
  virtual bool ApplyBatch(std::span<const UpdateOp> ops, MatchSink& sink,
                          Deadline deadline) {
    for (const UpdateOp& op : ops) {
      if (!ApplyUpdate(op, sink, deadline)) return false;
      NotePeakIntermediate();
    }
    return true;
  }

  /// Current size of maintained intermediate results, in the engine's
  /// natural unit: DCG edges for TurboFlux, stored partial-solution vertex
  /// slots for SJ-Tree, 0 for the stateless engines.
  virtual size_t IntermediateSize() const = 0;

  /// True if the engine supports edge deletions. (The original SJ-Tree
  /// does not; see Appendix B.2.)
  virtual bool SupportsDeletion() const { return true; }

  virtual std::string name() const = 0;

  /// The engine's hot-path counters (obs/engine_stats.h); nullptr when the
  /// engine is not instrumented. Values reset on Init.
  virtual const obs::EngineStats* engine_stats() const { return nullptr; }

  /// Largest IntermediateSize() observed after any individual op since the
  /// last ResetPeakIntermediate(), never less than the current size.
  /// Instrumented engines (and the default ApplyBatch loop) note the peak
  /// after every op, so batch-mode peaks inside a window are not missed.
  size_t PeakIntermediateSize() const {
    return std::max(peak_intermediate_, IntermediateSize());
  }

  /// Restarts the watermark at the current size (the harness calls this
  /// right after Init so the initial structure is the baseline).
  void ResetPeakIntermediate() { peak_intermediate_ = IntermediateSize(); }

 protected:
  void NotePeakIntermediate() {
    peak_intermediate_ = std::max(peak_intermediate_, IntermediateSize());
  }

 private:
  size_t peak_intermediate_ = 0;
};

/// An update op rejected before evaluation: applying it would have
/// corrupted the engine (e.g. it references a vertex outside the data
/// universe). The op was consumed from the stream as a no-op.
struct QuarantinedOp {
  uint64_t index;  ///< 0-based stream position at which the op arrived
  UpdateOp op;
  Status status;
};

/// The full production engine contract (DESIGN.md §3.13): everything a
/// ContinuousEngine does, plus graceful-degradation updates, crash-
/// consistent checkpointing, and stream-position accounting — the surface
/// RunResilient and the serving layer drive. TurboFlux and SymBi implement
/// it; the paper baselines (SJ-Tree, Graphflow, IncIsoMat) stay plain
/// ContinuousEngines.
///
/// Contract notes shared by all implementations:
///  * TryApplyUpdate consumes exactly one op: out-of-range endpoints are
///    quarantined as no-ops (kOutOfRange), legal no-ops pass their
///    informational status through (kNotFound / kFailedPrecondition), and
///    deadline expiry returns kDeadlineExceeded leaving the engine dead
///    *without* consuming the op — Restore() and replay from
///    applied_ops().
///  * Checkpoint is exactly a format header + WriteStateSections(out,
///    /*include_graph=*/true); multi-engine containers persist the shared
///    graph once themselves and call WriteStateSections(out, false).
///  * A restored engine reproduces the original's subsequent match stream
///    byte-for-byte (adjacency and enumeration orders are preserved or
///    deterministically rebuilt).
class EngineInterface : public ContinuousEngine {
 public:
  /// ApplyUpdate with graceful degradation; see the contract notes above.
  [[nodiscard]] virtual Status TryApplyUpdate(const UpdateOp& op,
                                              MatchSink& sink,
                                              Deadline deadline) = 0;

  /// Batch counterpart of TryApplyUpdate: quarantines out-of-range ops up
  /// front and evaluates the rest via ApplyBatch. On kDeadlineExceeded
  /// only a stream-order prefix of the batch's matches was flushed and
  /// the engine is dead; applied_ops() is only meaningful again after
  /// Restore().
  [[nodiscard]] virtual Status TryApplyBatch(std::span<const UpdateOp> ops,
                                             MatchSink& sink,
                                             Deadline deadline) = 0;

  /// Writes a crash-consistent snapshot of the full engine state (format
  /// header + CRC32-framed sections). Requires Init to have succeeded and
  /// the engine to be alive.
  [[nodiscard]] virtual Status Checkpoint(std::ostream& out) const = 0;

  /// Rebuilds the engine from a Checkpoint snapshot, replacing all current
  /// state. Corrupted or truncated snapshots yield a non-OK status and
  /// never crash; on failure the engine is left dead.
  [[nodiscard]] virtual Status Restore(std::istream& in) = 0;

  /// Writes only the CRC32-framed state sections (no format header);
  /// `include_graph=false` omits the data-graph section for containers
  /// that persist one shared graph themselves.
  [[nodiscard]] virtual Status WriteStateSections(std::ostream& out,
                                                  bool include_graph)
      const = 0;

  /// Reads back what WriteStateSections wrote and commits it, validating
  /// every section. Engines without a shared-graph mode reject a non-null
  /// `shared_graph` with kFailedPrecondition.
  [[nodiscard]] virtual Status ReadStateSections(std::istream& in,
                                                 const Graph* shared_graph)
      = 0;

  /// Number of stream ops consumed so far (applied + quarantined) — the
  /// journal position persisted by Checkpoint.
  virtual uint64_t applied_ops() const = 0;

  /// True once an op or batch was abandoned (deadline expiry or injected
  /// fault); a dead engine rejects further updates until Restore().
  virtual bool dead() const = 0;

  /// Ops quarantined since Init (pruned on Restore to positions before the
  /// snapshot, so replay re-reports exactly the re-consumed ones).
  virtual const std::vector<QuarantinedOp>& quarantine() const = 0;

  /// Installs a test-only fault injector (nullptr to disarm). Not owned.
  virtual void set_fault_injector(FaultInjector* injector) = 0;
};

}  // namespace turboflux

#endif  // TURBOFLUX_HARNESS_ENGINE_H_
