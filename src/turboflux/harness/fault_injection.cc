#include "turboflux/harness/fault_injection.h"

namespace turboflux {

bool CorruptSnapshot(std::string& snapshot, size_t byte_index) {
  if (byte_index >= snapshot.size()) return false;
  snapshot[byte_index] = static_cast<char>(snapshot[byte_index] ^ 0x01);
  return true;
}

}  // namespace turboflux
