#ifndef TURBOFLUX_HARNESS_FAULT_INJECTION_H_
#define TURBOFLUX_HARNESS_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace turboflux {

/// Declarative description of the single fault a test run should inject.
/// All triggers are one-shot and independently optional; a default plan
/// injects nothing. Counters are 1-based ("fail the Nth"); 0 disables.
struct FaultPlan {
  /// Fail the Nth update op applied through the engine (counted across
  /// ApplyUpdate and ApplyBatch). The engine simulates a crash mid-op by
  /// swapping in an already-expired deadline, so the op is abandoned at a
  /// genuine partial-progress point.
  uint64_t fail_at_op = 0;

  /// Expire the deadline inside phase 1 of the Nth parallel ApplyBatch
  /// evaluation step, exercising the partial-batch recovery path.
  uint64_t batch_phase1_fail_after = 0;

  /// Bit-flip byte K of a snapshot before restoring it (applied by the
  /// test via CorruptSnapshot, not by the engine). SIZE_MAX disables.
  size_t corrupt_snapshot_byte = SIZE_MAX;

  // --- Service-level faults (src/turboflux/serve/, DESIGN.md §3.12).
  // Polled by the ingestion service's durability and consumer paths; each
  // is one-shot like the engine-level triggers above.

  /// Tear the Nth WAL record append: only a prefix of the record's bytes
  /// reaches the file and the server dies mid-write (the torn tail must be
  /// discarded by the next recovery's journal load).
  uint64_t wal_torn_at_record = 0;

  /// Tear the Nth match-log commit: the commit block is cut short of its
  /// COMMIT marker and the server dies — recovery must truncate back to
  /// the previous marker and regenerate the lost matches by replay.
  uint64_t matchlog_torn_at_commit = 0;

  /// Kill the server during the Nth checkpoint, after the temp snapshot is
  /// written but before the atomic rename commits it.
  uint64_t die_before_snapshot_rename = 0;

  /// Kill the server during the Nth checkpoint, immediately after the
  /// rename (snapshot is newer than everything that follows it).
  uint64_t die_after_snapshot_rename = 0;

  /// Checkpoint-timer race: make the timer "fire" while the consumer is
  /// mid-way through its Nth drained batch, forcing a commit at an
  /// arbitrary point between journal append and sink flush.
  uint64_t force_checkpoint_at_batch = 0;

  /// Slow-consumer stall: the ingest loop sleeps `stall_ms` before
  /// processing its Nth drained batch (backpressure must absorb it).
  uint64_t stall_consumer_at_batch = 0;
  uint32_t stall_ms = 50;

  /// TCP tests: the client tears down its connection after sending only a
  /// prefix of the Nth frame (server must discard the partial frame).
  uint64_t drop_connection_at_frame = 0;
};

/// Thread-safe one-shot trigger shared between a test harness and the
/// engine under test. The engine polls ShouldFailOp / ShouldFailBatchEval
/// at its injection points; each fires at most once per injector.
///
/// Lock-free by design (DESIGN.md §3.9): the triggers are polled from
/// every batch worker on the op hot path, so the counters are relaxed
/// atomics and `plan_` is immutable after construction — there is no
/// guarded state, hence no Mutex. Re-arming means constructing a fresh
/// injector.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Called once per applied update op; true on the op the plan marks.
  [[nodiscard]] bool ShouldFailOp() {
    if (plan_.fail_at_op == 0) return false;
    return ops_seen_.fetch_add(1, std::memory_order_relaxed) + 1 ==
           plan_.fail_at_op;
  }

  /// Called per evaluation step in ApplyBatch phase 1 (any worker thread).
  [[nodiscard]] bool ShouldFailBatchEval() {
    if (plan_.batch_phase1_fail_after == 0) return false;
    return evals_seen_.fetch_add(1, std::memory_order_relaxed) + 1 ==
           plan_.batch_phase1_fail_after;
  }

  // --- Service-level triggers (one-shot, same relaxed-counter scheme) ---

  /// Called once per WAL record about to be appended.
  [[nodiscard]] bool ShouldTearWalRecord() {
    return Trips(wal_records_seen_, plan_.wal_torn_at_record);
  }

  /// Called once per match-log commit block about to be written.
  [[nodiscard]] bool ShouldTearMatchLogCommit() {
    return Trips(matchlog_commits_seen_, plan_.matchlog_torn_at_commit);
  }

  /// Called once per server checkpoint, before the snapshot rename.
  [[nodiscard]] bool ShouldDieBeforeSnapshotRename() {
    return Trips(pre_rename_seen_, plan_.die_before_snapshot_rename);
  }

  /// Called once per server checkpoint, right after the snapshot rename.
  [[nodiscard]] bool ShouldDieAfterSnapshotRename() {
    return Trips(post_rename_seen_, plan_.die_after_snapshot_rename);
  }

  /// Called once per drained consumer batch; true forces the checkpoint
  /// timer to fire mid-batch.
  [[nodiscard]] bool ShouldForceCheckpoint() {
    return Trips(batches_seen_ckpt_, plan_.force_checkpoint_at_batch);
  }

  /// Called once per drained consumer batch; true asks the consumer to
  /// stall for plan().stall_ms.
  [[nodiscard]] bool ShouldStallConsumer() {
    return Trips(batches_seen_stall_, plan_.stall_consumer_at_batch);
  }

  /// Called once per client frame send (TCP tests).
  [[nodiscard]] bool ShouldDropConnection() {
    return Trips(frames_seen_, plan_.drop_connection_at_frame);
  }

  const FaultPlan& plan() const { return plan_; }
  uint64_t ops_seen() const { return ops_seen_.load(std::memory_order_relaxed); }
  bool fired() const {
    return (plan_.fail_at_op != 0 && ops_seen() >= plan_.fail_at_op) ||
           (plan_.batch_phase1_fail_after != 0 &&
            evals_seen_.load(std::memory_order_relaxed) >=
                plan_.batch_phase1_fail_after);
  }

 private:
  /// Shared one-shot scheme: increments `seen` and fires exactly on the
  /// configured 1-based trigger count (0 disables).
  [[nodiscard]] static bool Trips(std::atomic<uint64_t>& seen,
                                  uint64_t trigger) {
    if (trigger == 0) return false;
    return seen.fetch_add(1, std::memory_order_relaxed) + 1 == trigger;
  }

  FaultPlan plan_;
  std::atomic<uint64_t> ops_seen_{0};
  std::atomic<uint64_t> evals_seen_{0};
  std::atomic<uint64_t> wal_records_seen_{0};
  std::atomic<uint64_t> matchlog_commits_seen_{0};
  std::atomic<uint64_t> pre_rename_seen_{0};
  std::atomic<uint64_t> post_rename_seen_{0};
  std::atomic<uint64_t> batches_seen_ckpt_{0};
  std::atomic<uint64_t> batches_seen_stall_{0};
  std::atomic<uint64_t> frames_seen_{0};
};

/// Flips one bit of `snapshot` (byte `byte_index`, bit 0). Out-of-range
/// indexes are a no-op so fuzz loops can sweep past the end harmlessly.
/// Returns true iff a byte was modified — callers must branch on this
/// (a test that "corrupted" nothing would silently assert on clean data).
[[nodiscard]] bool CorruptSnapshot(std::string& snapshot, size_t byte_index);

}  // namespace turboflux

#endif  // TURBOFLUX_HARNESS_FAULT_INJECTION_H_
