#ifndef TURBOFLUX_HARNESS_FAULT_INJECTION_H_
#define TURBOFLUX_HARNESS_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace turboflux {

/// Declarative description of the single fault a test run should inject.
/// All triggers are one-shot and independently optional; a default plan
/// injects nothing. Counters are 1-based ("fail the Nth"); 0 disables.
struct FaultPlan {
  /// Fail the Nth update op applied through the engine (counted across
  /// ApplyUpdate and ApplyBatch). The engine simulates a crash mid-op by
  /// swapping in an already-expired deadline, so the op is abandoned at a
  /// genuine partial-progress point.
  uint64_t fail_at_op = 0;

  /// Expire the deadline inside phase 1 of the Nth parallel ApplyBatch
  /// evaluation step, exercising the partial-batch recovery path.
  uint64_t batch_phase1_fail_after = 0;

  /// Bit-flip byte K of a snapshot before restoring it (applied by the
  /// test via CorruptSnapshot, not by the engine). SIZE_MAX disables.
  size_t corrupt_snapshot_byte = SIZE_MAX;
};

/// Thread-safe one-shot trigger shared between a test harness and the
/// engine under test. The engine polls ShouldFailOp / ShouldFailBatchEval
/// at its injection points; each fires at most once per injector.
///
/// Lock-free by design (DESIGN.md §3.9): the triggers are polled from
/// every batch worker on the op hot path, so the counters are relaxed
/// atomics and `plan_` is immutable after construction — there is no
/// guarded state, hence no Mutex. Re-arming means constructing a fresh
/// injector.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Called once per applied update op; true on the op the plan marks.
  [[nodiscard]] bool ShouldFailOp() {
    if (plan_.fail_at_op == 0) return false;
    return ops_seen_.fetch_add(1, std::memory_order_relaxed) + 1 ==
           plan_.fail_at_op;
  }

  /// Called per evaluation step in ApplyBatch phase 1 (any worker thread).
  [[nodiscard]] bool ShouldFailBatchEval() {
    if (plan_.batch_phase1_fail_after == 0) return false;
    return evals_seen_.fetch_add(1, std::memory_order_relaxed) + 1 ==
           plan_.batch_phase1_fail_after;
  }

  const FaultPlan& plan() const { return plan_; }
  uint64_t ops_seen() const { return ops_seen_.load(std::memory_order_relaxed); }
  bool fired() const {
    return (plan_.fail_at_op != 0 && ops_seen() >= plan_.fail_at_op) ||
           (plan_.batch_phase1_fail_after != 0 &&
            evals_seen_.load(std::memory_order_relaxed) >=
                plan_.batch_phase1_fail_after);
  }

 private:
  FaultPlan plan_;
  std::atomic<uint64_t> ops_seen_{0};
  std::atomic<uint64_t> evals_seen_{0};
};

/// Flips one bit of `snapshot` (byte `byte_index`, bit 0). Out-of-range
/// indexes are a no-op so fuzz loops can sweep past the end harmlessly.
/// Returns true iff a byte was modified — callers must branch on this
/// (a test that "corrupted" nothing would silently assert on clean data).
[[nodiscard]] bool CorruptSnapshot(std::string& snapshot, size_t byte_index);

}  // namespace turboflux

#endif  // TURBOFLUX_HARNESS_FAULT_INJECTION_H_
