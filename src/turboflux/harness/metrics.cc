#include "turboflux/harness/metrics.h"

#include <cmath>

namespace turboflux {

Aggregate Aggregate0(const std::string& engine) {
  Aggregate agg;
  agg.engine = engine;
  return agg;
}

void Accumulate(Aggregate& agg, const RunResult& r) {
  if (r.unsupported) {
    ++agg.unsupported;
    return;
  }
  if (r.timed_out) {
    ++agg.timed_out;
    return;
  }
  ++agg.completed;
  const double n = static_cast<double>(agg.completed);
  agg.mean_stream_seconds += (r.stream_seconds - agg.mean_stream_seconds) / n;
  agg.mean_peak_intermediate +=
      (static_cast<double>(r.peak_intermediate) - agg.mean_peak_intermediate) /
      n;
  agg.total_positive += r.positive_matches;
  agg.total_negative += r.negative_matches;
}

double MeanRatio(const std::vector<double>& numer,
                 const std::vector<double>& denom) {
  double log_sum = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < numer.size() && i < denom.size(); ++i) {
    if (numer[i] <= 0.0 || denom[i] <= 0.0) continue;
    log_sum += std::log(numer[i] / denom[i]);
    ++n;
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

}  // namespace turboflux
