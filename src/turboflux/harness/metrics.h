#ifndef TURBOFLUX_HARNESS_METRICS_H_
#define TURBOFLUX_HARNESS_METRICS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "turboflux/obs/stats.h"

namespace turboflux {

/// Result of running one engine over one (g0, Δg, q) workload.
struct RunResult {
  bool timed_out = false;
  bool unsupported = false;  // e.g., deletions on SJ-Tree

  double init_seconds = 0.0;
  /// Time spent in ApplyUpdate across the whole stream, *minus* the time a
  /// bare graph update pass takes — the paper's cost(M(Δg, q)) excludes the
  /// data-graph update cost (Section 5.1).
  double stream_seconds = 0.0;
  /// Raw ApplyUpdate time, before subtracting the graph-update baseline.
  double raw_stream_seconds = 0.0;

  uint64_t initial_matches = 0;
  uint64_t positive_matches = 0;
  uint64_t negative_matches = 0;
  uint64_t processed_ops = 0;

  size_t peak_intermediate = 0;
  size_t final_intermediate = 0;

  /// Populated when RunOptions::collect_stats is set: run-level counters
  /// and latency histograms under "run.*" plus the engine's own hot-path
  /// counters under "engine.*" (engines without engine_stats() contribute
  /// only the run.* entries).
  std::optional<obs::StatsSnapshot> stats;
};

/// Aggregate over a query set, mirroring how the paper reports averages
/// per query-set (timed-out queries are excluded from averages and counted
/// separately).
struct Aggregate {
  std::string engine;
  size_t completed = 0;
  size_t timed_out = 0;
  size_t unsupported = 0;
  double mean_stream_seconds = 0.0;
  double mean_peak_intermediate = 0.0;
  uint64_t total_positive = 0;
  uint64_t total_negative = 0;
};

Aggregate Aggregate0(const std::string& engine);

/// Folds `r` into `agg` (running mean over completed runs).
void Accumulate(Aggregate& agg, const RunResult& r);

/// Geometric-mean speedup of `a` over `b` across pairwise-completed runs.
double MeanRatio(const std::vector<double>& numer,
                 const std::vector<double>& denom);

}  // namespace turboflux

#endif  // TURBOFLUX_HARNESS_METRICS_H_
