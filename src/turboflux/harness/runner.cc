#include "turboflux/harness/runner.h"

#include <algorithm>
#include <ostream>
#include <span>

#include "turboflux/common/deadline.h"

namespace turboflux {

namespace {

/// Splits the initial matches (reported during Init) from stream matches:
/// counts initial positives separately.
class PhaseSink : public MatchSink {
 public:
  explicit PhaseSink(MatchSink& inner) : inner_(inner) {}

  void OnMatch(bool positive, const Mapping& m) override {
    if (init_phase_) {
      ++initial_;
      return;  // initial matches are counted, not forwarded
    }
    if (positive) {
      ++positive_;
    } else {
      ++negative_;
    }
    inner_.OnMatch(positive, m);
  }

  void EndInitPhase() { init_phase_ = false; }

  uint64_t initial() const { return initial_; }
  uint64_t positive() const { return positive_; }
  uint64_t negative() const { return negative_; }

 private:
  MatchSink& inner_;
  bool init_phase_ = true;
  uint64_t initial_ = 0;
  uint64_t positive_ = 0;
  uint64_t negative_ = 0;
};

}  // namespace

double MeasureGraphUpdateSeconds(const Graph& g0, const UpdateStream& stream) {
  Graph g = g0;
  Stopwatch watch;
  ApplyStream(g, stream);
  return watch.ElapsedSeconds();
}

RunResult RunContinuous(ContinuousEngine& engine, const QueryGraph& q,
                        const Graph& g0, const UpdateStream& stream,
                        MatchSink& sink, const RunOptions& options) {
  RunResult result;

  bool has_deletion = false;
  for (const UpdateOp& op : stream) has_deletion |= !op.IsInsert();
  if (has_deletion && !engine.SupportsDeletion()) {
    result.unsupported = true;
    return result;
  }

  Deadline deadline = options.timeout_ms > 0
                          ? Deadline::AfterMillis(options.timeout_ms)
                          : Deadline::Infinite();

  PhaseSink phase_sink(sink);

  Stopwatch init_watch;
  if (!engine.Init(q, g0, phase_sink, deadline)) {
    result.timed_out = true;
    result.init_seconds = init_watch.ElapsedSeconds();
    return result;
  }
  result.init_seconds = init_watch.ElapsedSeconds();
  result.initial_matches = phase_sink.initial();
  phase_sink.EndInitPhase();
  engine.ResetPeakIntermediate();
  result.peak_intermediate = engine.IntermediateSize();

  // Run-level latency distributions, recorded directly into HistogramData:
  // this loop is not an engine hot path, so collection is a runtime choice
  // (works the same in TFX_STATS=0 builds).
  const bool collect = options.collect_stats;
  obs::HistogramData op_latency;
  obs::HistogramData batch_latency;

  auto build_snapshot = [&]() {
    obs::StatsSnapshot s;
    s.AddCounter("run.processed_ops", result.processed_ops);
    s.AddCounter("run.initial_matches", result.initial_matches);
    s.AddCounter("run.positive_matches", phase_sink.positive());
    s.AddCounter("run.negative_matches", phase_sink.negative());
    s.AddCounter("run.peak_intermediate", result.peak_intermediate);
    s.AddCounter("run.current_intermediate", engine.IntermediateSize());
    if (op_latency.count > 0) s.AddHistogram("run.op_latency_ns", op_latency);
    if (batch_latency.count > 0) {
      s.AddHistogram("run.batch_latency_ns", batch_latency);
    }
    if (const obs::EngineStats* es = engine.engine_stats()) {
      es->AppendTo(s, "engine.");
    }
    return s;
  };
  const uint64_t every =
      options.stats_every > 0 && options.stats_sink != nullptr && collect
          ? static_cast<uint64_t>(options.stats_every)
          : 0;
  uint64_t next_emit = every;
  auto maybe_emit = [&]() {
    if (every == 0 || result.processed_ops < next_emit) return;
    *options.stats_sink << build_snapshot().ToJson() << "\n";
    while (next_emit <= result.processed_ops) next_emit += every;
  };

  Stopwatch stream_watch;
  if (options.batch_size <= 1) {
    for (const UpdateOp& op : stream) {
      Stopwatch op_watch;
      if (!engine.ApplyUpdate(op, phase_sink, deadline)) {
        result.timed_out = true;
        break;
      }
      if (collect) op_latency.RecordSeconds(op_watch.ElapsedSeconds());
      ++result.processed_ops;
      result.peak_intermediate =
          std::max(result.peak_intermediate, engine.IntermediateSize());
      maybe_emit();
    }
  } else {
    const size_t batch = static_cast<size_t>(options.batch_size);
    for (size_t i = 0; i < stream.size(); i += batch) {
      const size_t n = std::min(batch, stream.size() - i);
      std::span<const UpdateOp> window(stream.data() + i, n);
      Stopwatch batch_watch;
      if (!engine.ApplyBatch(window, phase_sink, deadline)) {
        result.timed_out = true;
        break;
      }
      if (collect) batch_latency.RecordSeconds(batch_watch.ElapsedSeconds());
      result.processed_ops += n;
      result.peak_intermediate =
          std::max(result.peak_intermediate, engine.IntermediateSize());
      maybe_emit();
    }
  }
  result.raw_stream_seconds = stream_watch.ElapsedSeconds();
  result.positive_matches = phase_sink.positive();
  result.negative_matches = phase_sink.negative();
  result.final_intermediate = engine.IntermediateSize();
  // Batched runs only sample IntermediateSize() at window boundaries; the
  // engine-side watermark (noted after every op) recovers peaks hit
  // mid-window.
  result.peak_intermediate =
      std::max(result.peak_intermediate, engine.PeakIntermediateSize());

  result.stream_seconds = result.raw_stream_seconds;
  if (!result.timed_out && options.subtract_graph_update_cost) {
    double base = MeasureGraphUpdateSeconds(g0, stream);
    result.stream_seconds = std::max(0.0, result.raw_stream_seconds - base);
  }
  if (collect) result.stats = build_snapshot();
  return result;
}

}  // namespace turboflux
