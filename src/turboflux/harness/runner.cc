#include "turboflux/harness/runner.h"

#include <algorithm>
#include <span>

#include "turboflux/common/deadline.h"

namespace turboflux {

namespace {

/// Splits the initial matches (reported during Init) from stream matches:
/// counts initial positives separately.
class PhaseSink : public MatchSink {
 public:
  explicit PhaseSink(MatchSink& inner) : inner_(inner) {}

  void OnMatch(bool positive, const Mapping& m) override {
    if (init_phase_) {
      ++initial_;
      return;  // initial matches are counted, not forwarded
    }
    if (positive) {
      ++positive_;
    } else {
      ++negative_;
    }
    inner_.OnMatch(positive, m);
  }

  void EndInitPhase() { init_phase_ = false; }

  uint64_t initial() const { return initial_; }
  uint64_t positive() const { return positive_; }
  uint64_t negative() const { return negative_; }

 private:
  MatchSink& inner_;
  bool init_phase_ = true;
  uint64_t initial_ = 0;
  uint64_t positive_ = 0;
  uint64_t negative_ = 0;
};

}  // namespace

double MeasureGraphUpdateSeconds(const Graph& g0, const UpdateStream& stream) {
  Graph g = g0;
  Stopwatch watch;
  ApplyStream(g, stream);
  return watch.ElapsedSeconds();
}

RunResult RunContinuous(ContinuousEngine& engine, const QueryGraph& q,
                        const Graph& g0, const UpdateStream& stream,
                        MatchSink& sink, const RunOptions& options) {
  RunResult result;

  bool has_deletion = false;
  for (const UpdateOp& op : stream) has_deletion |= !op.IsInsert();
  if (has_deletion && !engine.SupportsDeletion()) {
    result.unsupported = true;
    return result;
  }

  Deadline deadline = options.timeout_ms > 0
                          ? Deadline::AfterMillis(options.timeout_ms)
                          : Deadline::Infinite();

  PhaseSink phase_sink(sink);

  Stopwatch init_watch;
  if (!engine.Init(q, g0, phase_sink, deadline)) {
    result.timed_out = true;
    result.init_seconds = init_watch.ElapsedSeconds();
    return result;
  }
  result.init_seconds = init_watch.ElapsedSeconds();
  result.initial_matches = phase_sink.initial();
  phase_sink.EndInitPhase();
  result.peak_intermediate = engine.IntermediateSize();

  Stopwatch stream_watch;
  if (options.batch_size <= 1) {
    for (const UpdateOp& op : stream) {
      if (!engine.ApplyUpdate(op, phase_sink, deadline)) {
        result.timed_out = true;
        break;
      }
      ++result.processed_ops;
      result.peak_intermediate =
          std::max(result.peak_intermediate, engine.IntermediateSize());
    }
  } else {
    const size_t batch = static_cast<size_t>(options.batch_size);
    for (size_t i = 0; i < stream.size(); i += batch) {
      const size_t n = std::min(batch, stream.size() - i);
      std::span<const UpdateOp> window(stream.data() + i, n);
      if (!engine.ApplyBatch(window, phase_sink, deadline)) {
        result.timed_out = true;
        break;
      }
      result.processed_ops += n;
      result.peak_intermediate =
          std::max(result.peak_intermediate, engine.IntermediateSize());
    }
  }
  result.raw_stream_seconds = stream_watch.ElapsedSeconds();
  result.positive_matches = phase_sink.positive();
  result.negative_matches = phase_sink.negative();
  result.final_intermediate = engine.IntermediateSize();

  result.stream_seconds = result.raw_stream_seconds;
  if (!result.timed_out && options.subtract_graph_update_cost) {
    double base = MeasureGraphUpdateSeconds(g0, stream);
    result.stream_seconds = std::max(0.0, result.raw_stream_seconds - base);
  }
  return result;
}

}  // namespace turboflux
