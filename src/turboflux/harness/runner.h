#ifndef TURBOFLUX_HARNESS_RUNNER_H_
#define TURBOFLUX_HARNESS_RUNNER_H_

#include <cstdint>
#include <iosfwd>

#include "turboflux/harness/engine.h"
#include "turboflux/harness/metrics.h"

namespace turboflux {

struct RunOptions {
  /// Per-query wall-clock budget covering Init plus the whole stream;
  /// <= 0 means unlimited. (The paper used a 2-hour timeout; our scaled
  /// experiments default to a few seconds.)
  int64_t timeout_ms = 0;

  /// When true, stream_seconds subtracts the time of a bare graph-update
  /// pass over the same stream, mirroring the paper's cost(M(Δg, q)).
  bool subtract_graph_update_cost = true;

  /// Updates handed to the engine per ApplyBatch call. 1 feeds the stream
  /// one ApplyUpdate at a time (the paper's model); larger values enable
  /// the engine's batched path (parallel for TurboFlux when its `threads`
  /// option is > 1). Output is equivalent either way.
  int64_t batch_size = 1;

  /// Collect per-op/per-batch latency histograms and export the engine's
  /// hot-path counters into RunResult::stats. Runtime-gated: works (and
  /// records the run.* metrics) even in TFX_STATS=0 builds, where the
  /// engine.* entries are absent.
  bool collect_stats = false;

  /// With collect_stats: every N processed ops, write an intermediate
  /// snapshot as one JSON line to *stats_sink (ignored when either is
  /// unset). Lines are self-contained — a poor man's time series.
  int64_t stats_every = 0;
  std::ostream* stats_sink = nullptr;
};

/// Runs `engine` on query `q`: initializes with `g0`, then feeds `stream`
/// one operation at a time, reporting matches into `sink`.
RunResult RunContinuous(ContinuousEngine& engine, const QueryGraph& q,
                        const Graph& g0, const UpdateStream& stream,
                        MatchSink& sink, const RunOptions& options);

/// Measures how long applying `stream` to a copy of `g0` takes with no
/// matching at all — the baseline subtracted to obtain cost(M(Δg, q)).
double MeasureGraphUpdateSeconds(const Graph& g0, const UpdateStream& stream);

}  // namespace turboflux

#endif  // TURBOFLUX_HARNESS_RUNNER_H_
