#include "turboflux/harness/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace turboflux {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  print_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0) return "n/a";
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

std::string Table::FormatCount(double count) {
  char buf[64];
  if (count < 0) return "n/a";
  if (count >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", count / 1e6);
  } else if (count >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fK", count / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", count);
  }
  return buf;
}

std::string Table::FormatRatio(double ratio) {
  char buf[64];
  if (ratio <= 0 || std::isnan(ratio) || std::isinf(ratio)) return "n/a";
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

}  // namespace turboflux
