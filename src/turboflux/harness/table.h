#ifndef TURBOFLUX_HARNESS_TABLE_H_
#define TURBOFLUX_HARNESS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace turboflux {

/// A fixed-width text table, used by the benchmark binaries to print the
/// rows/series of each paper figure.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  void Print(std::ostream& out) const;

  static std::string FormatSeconds(double seconds);
  static std::string FormatCount(double count);
  static std::string FormatRatio(double ratio);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_HARNESS_TABLE_H_
