#include "turboflux/match/static_matcher.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace turboflux {

namespace {

/// Number of data vertices each query vertex matches (label filter only).
std::vector<uint64_t> CandidateCounts(const Graph& g, const QueryGraph& q) {
  std::vector<uint64_t> counts(q.VertexCount(), 0);
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    for (QVertexId u = 0; u < q.VertexCount(); ++u) {
      if (q.VertexMatches(u, g, v)) ++counts[u];
    }
  }
  return counts;
}

}  // namespace

StaticMatcher::StaticMatcher(const Graph& g, const QueryGraph& q,
                             StaticMatchOptions options)
    : g_(g), q_(q), options_(options) {
  assert(q.VertexCount() > 0);
  std::vector<uint64_t> counts = CandidateCounts(g, q);

  // Start vertex: fewest candidates; tie-break by larger degree.
  QVertexId start = 0;
  for (QVertexId u = 1; u < q.VertexCount(); ++u) {
    if (counts[u] < counts[start] ||
        (counts[u] == counts[start] && q.Degree(u) > q.Degree(start))) {
      start = u;
    }
  }

  // BFS order over the undirected query from the start vertex.
  std::vector<bool> placed(q.VertexCount(), false);
  std::deque<QVertexId> queue = {start};
  placed[start] = true;
  while (!queue.empty()) {
    QVertexId u = queue.front();
    queue.pop_front();
    order_.push_back(u);
    auto visit = [&](QVertexId w) {
      if (!placed[w]) {
        placed[w] = true;
        queue.push_back(w);
      }
    };
    for (QEdgeId e : q.OutEdgeIds(u)) visit(q.edge(e).to);
    for (QEdgeId e : q.InEdgeIds(u)) visit(q.edge(e).from);
  }
  assert(order_.size() == q.VertexCount());  // query must be connected

  // Constraints: for order position i, every query edge between order_[i]
  // and an earlier vertex. The anchor (constraint 0) is the one whose
  // earlier endpoint appears earliest, which BFS guarantees to exist.
  std::vector<size_t> position(q.VertexCount());
  for (size_t i = 0; i < order_.size(); ++i) position[order_[i]] = i;
  constraints_.resize(order_.size());
  // Self-loops on the start vertex are its only depth-0 constraints.
  for (QEdgeId e : q.OutEdgeIds(start)) {
    const QEdge& qe = q.edge(e);
    if (qe.to == start) constraints_[0].push_back({start, qe.label, false});
  }
  for (size_t i = 1; i < order_.size(); ++i) {
    QVertexId u = order_[i];
    std::vector<Constraint>& cons = constraints_[i];
    for (QEdgeId e : q.InEdgeIds(u)) {
      const QEdge& qe = q.edge(e);
      if (qe.from != u && position[qe.from] < i) {
        cons.push_back({qe.from, qe.label, true});
      }
    }
    for (QEdgeId e : q.OutEdgeIds(u)) {
      const QEdge& qe = q.edge(e);
      if (position[qe.to] < i || qe.to == u) {
        // Self-loops (qe.to == u) are verified as a constraint against u
        // itself once u is mapped; they never serve as the anchor.
        cons.push_back({qe.to, qe.label, false});
      }
    }
    std::sort(cons.begin(), cons.end(),
              [&](const Constraint& a, const Constraint& b) {
                bool a_self = a.earlier == u;
                bool b_self = b.earlier == u;
                if (a_self != b_self) return b_self;  // self-loops last
                return position[a.earlier] < position[b.earlier];
              });
    assert(!cons.empty() && cons.front().earlier != u);
  }
}

bool StaticMatcher::Backtrack(size_t depth, Mapping& m, MatchSink& sink,
                              Deadline& deadline) {
  if (deadline.Expired()) return false;
  if (depth == order_.size()) {
    sink.OnMatch(true, m);
    ++reported_;
    if (options_.limit != 0 && reported_ >= options_.limit) hit_limit_ = true;
    return true;
  }
  QVertexId u = order_[depth];
  const std::vector<Constraint>& cons = constraints_[depth];
  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;

  auto try_candidate = [&](VertexId v) -> bool {
    if (!q_.VertexMatches(u, g_, v)) return true;
    if (iso && MappingContains(m, v)) return true;
    // Verify the remaining constraints (at depth > 0 the anchor is
    // already satisfied by construction of the candidate enumeration; at
    // depth 0 every constraint is a self-loop and must be checked).
    for (size_t c = depth == 0 ? 0 : 1; c < cons.size(); ++c) {
      VertexId w = cons[c].earlier == u ? v : m[cons[c].earlier];
      bool ok = cons[c].out ? g_.HasEdge(w, cons[c].label, v)
                            : g_.HasEdge(v, cons[c].label, w);
      if (!ok) return true;
    }
    m[u] = v;
    bool alive = Backtrack(depth + 1, m, sink, deadline);
    m[u] = kNullVertex;
    return alive && !hit_limit_;
  };

  if (depth == 0) {
    for (VertexId v = 0; v < g_.VertexCount(); ++v) {
      if (!try_candidate(v)) return !deadline.ExpiredNow();
    }
    return true;
  }

  const Constraint& anchor = cons.front();
  VertexId base = m[anchor.earlier];
  const Graph::AdjView adj =
      anchor.out ? g_.OutEdges(base) : g_.InEdges(base);
  for (const AdjEntry& e : adj) {
    if (e.label != anchor.label) continue;
    if (!try_candidate(e.other)) return !deadline.ExpiredNow();
  }
  return true;
}

bool StaticMatcher::FindAll(MatchSink& sink, Deadline deadline) {
  reported_ = 0;
  hit_limit_ = false;
  Mapping m(q_.VertexCount(), kNullVertex);
  Backtrack(0, m, sink, deadline);
  return !deadline.ExpiredNow();
}

uint64_t StaticMatcher::CountAll(Deadline deadline) {
  CountingSink sink;
  FindAll(sink, deadline);
  return sink.positive();
}

uint64_t BruteForceCount(const Graph& g, const QueryGraph& q,
                         MatchSemantics semantics) {
  const size_t qn = q.VertexCount();
  const size_t gn = g.VertexCount();
  if (qn == 0 || gn == 0) return 0;
  Mapping m(qn, 0);
  uint64_t count = 0;
  for (;;) {
    bool ok = true;
    for (QVertexId u = 0; u < qn && ok; ++u) {
      ok = q.VertexMatches(u, g, m[u]);
      if (ok && semantics == MatchSemantics::kIsomorphism) {
        for (QVertexId w = 0; w < u; ++w) {
          if (m[w] == m[u]) {
            ok = false;
            break;
          }
        }
      }
    }
    for (const QEdge& e : q.edges()) {
      if (!ok) break;
      ok = g.HasEdge(m[e.from], e.label, m[e.to]);
    }
    if (ok) ++count;
    // Next mapping in lexicographic order.
    size_t i = 0;
    while (i < qn && ++m[i] == gn) m[i++] = 0;
    if (i == qn) break;
  }
  return count;
}

bool MappedEdgesSatisfied(const QueryGraph& q, const Graph& g,
                          const Mapping& m, QEdgeId skip) {
  for (const QEdge& e : q.edges()) {
    if (e.id == skip) continue;
    if (m[e.from] == kNullVertex || m[e.to] == kNullVertex) continue;
    if (!g.HasEdge(m[e.from], e.label, m[e.to])) return false;
  }
  return true;
}

}  // namespace turboflux
