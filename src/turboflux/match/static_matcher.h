#ifndef TURBOFLUX_MATCH_STATIC_MATCHER_H_
#define TURBOFLUX_MATCH_STATIC_MATCHER_H_

#include <cstdint>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/common/types.h"
#include "turboflux/graph/graph.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

struct StaticMatchOptions {
  MatchSemantics semantics = MatchSemantics::kHomomorphism;
  /// Stop after this many matches (0 = unlimited).
  uint64_t limit = 0;
};

/// A TurboHom++-style backtracking matcher over a *static* data graph:
/// candidate vertices are filtered by label containment, the matching
/// order is a BFS of the query from its most selective vertex, and each
/// extension enumerates the adjacency of the already-matched neighbour
/// with the smallest degree while verifying every other incident
/// constraint with O(1) edge probes.
///
/// This is the repository's reference matcher: IncIsoMat runs it on the
/// affected subgraph, tests use it as the ground-truth oracle, and it
/// reports the initial-graph matches for engines that need one.
class StaticMatcher {
 public:
  StaticMatcher(const Graph& g, const QueryGraph& q,
                StaticMatchOptions options);

  /// Enumerates all matches into `sink` (reported as positive). Returns
  /// false iff the deadline expired before enumeration finished.
  bool FindAll(MatchSink& sink, Deadline deadline);

  /// Convenience: count matches.
  uint64_t CountAll(Deadline deadline = Deadline::Infinite());

 private:
  struct Constraint {
    QVertexId earlier;  // query vertex already matched at this depth
    EdgeLabel label;
    bool out;  // true: query edge earlier->u; false: u->earlier
  };

  bool Backtrack(size_t depth, Mapping& m, MatchSink& sink,
                 Deadline& deadline);

  const Graph& g_;
  const QueryGraph& q_;
  StaticMatchOptions options_;
  std::vector<QVertexId> order_;
  // Constraints per order position; constraint 0 is the anchor used for
  // candidate enumeration (absent for the start vertex).
  std::vector<std::vector<Constraint>> constraints_;
  uint64_t reported_ = 0;
  bool hit_limit_ = false;
};

/// Counts all matches of q in g by brute-force enumeration of every
/// |V(g)|^|V(q)| mapping. Exponential — only for validating StaticMatcher
/// on tiny inputs in tests.
uint64_t BruteForceCount(const Graph& g, const QueryGraph& q,
                         MatchSemantics semantics);

/// True iff every query edge with *both* endpoints mapped in `m` is
/// satisfied in `g` (O(1) probes). `skip` names one edge assumed already
/// checked — the seed edge of an update evaluation — or kNullQEdge to
/// check all. Shared by the incremental engines' seed verification: a seed
/// mapping fixes two query vertices, and every reverse, parallel and
/// self-loop edge between them must hold before extension starts.
bool MappedEdgesSatisfied(const QueryGraph& q, const Graph& g,
                          const Mapping& m, QEdgeId skip);

}  // namespace turboflux

#endif  // TURBOFLUX_MATCH_STATIC_MATCHER_H_
