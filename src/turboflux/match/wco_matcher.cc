#include "turboflux/match/wco_matcher.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace turboflux {

WcoMatcher::WcoMatcher(const Graph& g, const QueryGraph& q,
                       MatchSemantics semantics)
    : g_(g), q_(q), semantics_(semantics) {
  assert(q.VertexCount() > 0 && q.IsConnected());

  // Global vertex order: start from the vertex with the largest degree
  // (most constrained joins first), then repeatedly append the unplaced
  // vertex with the most placed neighbours (ties: larger degree). This is
  // the standard Generic Join attribute order heuristic.
  const size_t n = q.VertexCount();
  std::vector<bool> placed(n, false);
  auto undirected_neighbors = [&](QVertexId u) {
    std::vector<QVertexId> out;
    for (QEdgeId e : q.OutEdgeIds(u)) out.push_back(q.edge(e).to);
    for (QEdgeId e : q.InEdgeIds(u)) out.push_back(q.edge(e).from);
    return out;
  };

  QVertexId first = 0;
  for (QVertexId u = 1; u < n; ++u) {
    if (q.Degree(u) > q.Degree(first)) first = u;
  }
  order_.push_back(first);
  placed[first] = true;
  while (order_.size() < n) {
    QVertexId best = kNullQVertex;
    size_t best_placed = 0;
    for (QVertexId u = 0; u < n; ++u) {
      if (placed[u]) continue;
      size_t placed_neighbors = 0;
      for (QVertexId w : undirected_neighbors(u)) {
        placed_neighbors += placed[w] ? 1 : 0;
      }
      if (best == kNullQVertex || placed_neighbors > best_placed ||
          (placed_neighbors == best_placed &&
           q.Degree(u) > q.Degree(best))) {
        best = u;
        best_placed = placed_neighbors;
      }
    }
    // Connectivity guarantees every later vertex has a placed neighbour.
    assert(best_placed > 0);
    order_.push_back(best);
    placed[best] = true;
  }

  std::vector<size_t> position(n);
  for (size_t i = 0; i < order_.size(); ++i) position[order_[i]] = i;
  constraints_.resize(n);
  for (size_t i = 0; i < order_.size(); ++i) {
    QVertexId u = order_[i];
    for (QEdgeId e : q.InEdgeIds(u)) {
      const QEdge& qe = q.edge(e);
      if (qe.from == u || position[qe.from] < i) {
        constraints_[i].push_back({qe.from, qe.label, true});
      }
    }
    for (QEdgeId e : q.OutEdgeIds(u)) {
      const QEdge& qe = q.edge(e);
      if (qe.to == u) continue;  // self-loop already added from InEdgeIds
      if (position[qe.to] < i) {
        constraints_[i].push_back({qe.to, qe.label, false});
      }
    }
  }
}

bool WcoMatcher::Extend(size_t depth, Mapping& m, MatchSink& sink,
                        Deadline& deadline) {
  if (deadline.Expired()) return false;
  if (depth == order_.size()) {
    sink.OnMatch(true, m);
    return true;
  }
  QVertexId u = order_[depth];
  const std::vector<NeighborConstraint>& cons = constraints_[depth];
  const bool iso = semantics_ == MatchSemantics::kIsomorphism;

  auto satisfies = [&](VertexId v) {
    if (!q_.VertexMatches(u, g_, v)) return false;
    if (iso && MappingContains(m, v)) return false;
    for (const NeighborConstraint& c : cons) {
      VertexId w = c.other == u ? v : m[c.other];
      bool ok = c.out ? g_.HasEdge(w, c.label, v) : g_.HasEdge(v, c.label, w);
      if (!ok) return false;
    }
    return true;
  };

  if (depth == 0) {
    // No matched neighbours yet: the candidate set is all of V(g).
    for (VertexId v = 0; v < g_.VertexCount(); ++v) {
      if (!satisfies(v)) continue;
      m[u] = v;
      if (!Extend(depth + 1, m, sink, deadline)) return false;
      m[u] = kNullVertex;
    }
    return true;
  }

  // Generic Join: scan the smallest adjacency list among the matched
  // neighbours; `satisfies` performs the residual intersection via O(1)
  // probes. Self-loop constraints never anchor the scan.
  Graph::AdjView smallest;
  bool have_anchor = false;
  EdgeLabel anchor_label = 0;
  for (const NeighborConstraint& c : cons) {
    if (c.other == u) continue;
    Graph::AdjView adj =
        c.out ? g_.OutEdges(m[c.other]) : g_.InEdges(m[c.other]);
    if (!have_anchor || adj.size() < smallest.size()) {
      smallest = adj;
      anchor_label = c.label;
      have_anchor = true;
    }
  }
  assert(have_anchor);  // order construction guarantees an anchor
  for (const AdjEntry& e : smallest) {
    if (e.label != anchor_label) continue;
    if (!satisfies(e.other)) continue;
    m[u] = e.other;
    if (!Extend(depth + 1, m, sink, deadline)) return false;
    m[u] = kNullVertex;
  }
  return true;
}

bool WcoMatcher::FindAll(MatchSink& sink, Deadline deadline) {
  Mapping m(q_.VertexCount(), kNullVertex);
  Extend(0, m, sink, deadline);
  return !deadline.ExpiredNow();
}

uint64_t WcoMatcher::CountAll(Deadline deadline) {
  CountingSink sink;
  FindAll(sink, deadline);
  return sink.positive();
}

}  // namespace turboflux
