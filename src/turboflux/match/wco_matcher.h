#ifndef TURBOFLUX_MATCH_WCO_MATCHER_H_
#define TURBOFLUX_MATCH_WCO_MATCHER_H_

#include <cstdint>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/common/types.h"
#include "turboflux/graph/graph.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

/// A worst-case-optimal (Generic Join) static matcher, in the style of
/// [22] (Ngo et al.) / EmptyHeaded [2], which Section 4.3 discusses as an
/// alternative SubgraphSearch backend: query vertices are matched one at
/// a time in a fixed global order, and the candidate set of each vertex
/// is the intersection of the adjacency lists of all its already-matched
/// neighbours, always scanning the smallest list.
///
/// Functionally equivalent to StaticMatcher (the repository's default
/// backtracking matcher); tests cross-check the two and brute force. The
/// practical trade-off matches the paper's observation: for labeled
/// real-world graphs the label-filtered backtracking matcher usually
/// wins, while Generic Join is robust on skewed unlabeled inputs.
class WcoMatcher {
 public:
  WcoMatcher(const Graph& g, const QueryGraph& q,
             MatchSemantics semantics = MatchSemantics::kHomomorphism);

  /// Enumerates all matches into `sink` (reported as positive). Returns
  /// false iff the deadline expired first.
  bool FindAll(MatchSink& sink, Deadline deadline);

  uint64_t CountAll(Deadline deadline = Deadline::Infinite());

 private:
  struct NeighborConstraint {
    QVertexId other;  // already matched when this vertex is extended
    EdgeLabel label;
    bool out;  // true: query edge other -> this; false: this -> other
  };

  bool Extend(size_t depth, Mapping& m, MatchSink& sink, Deadline& deadline);

  const Graph& g_;
  const QueryGraph& q_;
  MatchSemantics semantics_;
  std::vector<QVertexId> order_;
  // Per order position: all constraints against earlier vertices
  // (self-loops included, expressed against the vertex itself).
  std::vector<std::vector<NeighborConstraint>> constraints_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_MATCH_WCO_MATCHER_H_
