// QuerySet::Checkpoint/Restore — whole-set crash-consistent snapshots
// (DESIGN.md §3.10), reusing the PR 2 CRC32-framed section format.
//
// Layout: magic "TFXQ", format version (u32), then framed sections —
//   QMET  set meta: applied ops, op/registration counters, next query id
//   GRPH  the shared data graph, serialized ONCE for the whole set
//   QREG  the registry: per live query (id, dense runtime index, costs)
// followed by each live runtime's engine state via
// TurboFluxEngine::WriteStateSections(include_graph=false), in dense
// (ascending slot) order. Runtime signatures, the routing index, and the
// shared-prefix groups are all derivable and recomputed on restore;
// per-engine section framing and validation is the engine's own.

#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "turboflux/common/serialize.h"
#include "turboflux/multi/query_set.h"

namespace turboflux {
namespace multi {

namespace {

constexpr char kMagic[4] = {'T', 'F', 'X', 'Q'};
constexpr uint32_t kFormatVersion = 1;

enum SectionTag : uint32_t {
  kSectionSetMeta = 0x54454d51,   // "QMET"
  kSectionGraph = 0x48505247,     // "GRPH" (same tag as the engine's)
  kSectionRegistry = 0x47455251,  // "QREG"
};

constexpr uint64_t kMaxElems = uint64_t{1} << 32;

}  // namespace

Status QuerySet::Checkpoint(std::ostream& out) const {
  MutexLock lock(mu_);
  if (!bound_) {
    return Status::FailedPrecondition("Checkpoint before Bind/Restore");
  }
  if (dead_) {
    return Status::FailedPrecondition(
        "query set is dead; a snapshot would capture partial state");
  }

  out.write(kMagic, sizeof(kMagic));
  std::string hdr;
  bin::PutU32(hdr, kFormatVersion);
  out.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));

  // Dense runtime numbering: slot order with holes squeezed out.
  std::vector<uint32_t> dense_slots;
  for (uint32_t slot = 0; slot < runtimes_.size(); ++slot) {
    if (runtimes_[slot]) dense_slots.push_back(slot);
  }
  std::vector<uint32_t> slot_to_dense(runtimes_.size(), 0);
  for (uint32_t i = 0; i < dense_slots.size(); ++i) {
    slot_to_dense[dense_slots[i]] = i;
  }

  std::string meta;
  bin::PutU64(meta, applied_ops_);
  bin::PutU64(meta, ops_evaluated_);
  bin::PutU64(meta, ops_noop_);
  bin::PutU64(meta, ops_quarantined_);
  bin::PutU64(meta, consulted_evals_);
  bin::PutU64(meta, registrations_);
  bin::PutU64(meta, registrations_shared_);
  bin::PutU64(meta, deregistrations_);
  bin::PutU32(meta, static_cast<uint32_t>(records_.size()));  // next id
  bin::PutU32(meta, static_cast<uint32_t>(dense_slots.size()));
  Status st = bin::WriteSection(out, kSectionSetMeta, meta);
  if (!st.ok()) return st;

  std::string gbuf;
  g_.Serialize(gbuf);
  st = bin::WriteSection(out, kSectionGraph, gbuf);
  if (!st.ok()) return st;

  std::string reg;
  uint32_t live = 0;
  for (const QueryRecord& r : records_) live += r.live ? 1 : 0;
  bin::PutU32(reg, live);
  for (uint32_t id = 0; id < records_.size(); ++id) {
    const QueryRecord& r = records_[id];
    if (!r.live) continue;
    bin::PutU32(reg, id);
    bin::PutU32(reg, slot_to_dense[r.slot]);
    bin::PutU64(reg, r.costs.routed_ops);
    bin::PutU64(reg, r.costs.matches_positive);
    bin::PutU64(reg, r.costs.matches_negative);
  }
  st = bin::WriteSection(out, kSectionRegistry, reg);
  if (!st.ok()) return st;

  for (uint32_t slot : dense_slots) {
    st = runtimes_[slot]->engine->WriteStateSections(out,
                                                     /*include_graph=*/false);
    if (!st.ok()) return st;
  }

  out.flush();
  if (!out) return Status::IoError("query-set checkpoint write failed");
  ++checkpoints_;
  return Status::Ok();
}

Status QuerySet::Restore(std::istream& in) {
  MutexLock lock(mu_);
  // Any failure past the header may leave partially-overwritten state;
  // the set is then dead until a successful Restore.
  auto fail = [this](Status st) {
    dead_ = true;
    return st;
  };

  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(Status::Corruption("bad query-set checkpoint magic"));
  }
  char vbytes[4];
  in.read(vbytes, sizeof(vbytes));
  if (in.gcount() != sizeof(vbytes)) {
    return fail(Status::Corruption("truncated query-set checkpoint header"));
  }
  uint32_t version = 0;
  bin::Reader vr(std::string_view(vbytes, sizeof(vbytes)));
  vr.GetU32(&version);
  if (version != kFormatVersion) {
    return fail(Status::UnsupportedVersion(
        "query-set checkpoint version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        ")"));
  }

  std::string meta, gbuf, reg;
  Status st;
  if (!(st = bin::ReadSection(in, kSectionSetMeta, &meta)).ok() ||
      !(st = bin::ReadSection(in, kSectionGraph, &gbuf)).ok() ||
      !(st = bin::ReadSection(in, kSectionRegistry, &reg)).ok()) {
    return fail(st);
  }

  bin::Reader mr(meta);
  uint64_t applied = 0, evaluated = 0, noop = 0, quarantined = 0;
  uint64_t consulted = 0, regs = 0, regs_shared = 0, deregs = 0;
  uint32_t next_id = 0, num_runtimes = 0;
  if (!mr.GetU64(&applied) || !mr.GetU64(&evaluated) || !mr.GetU64(&noop) ||
      !mr.GetU64(&quarantined) || !mr.GetU64(&consulted) ||
      !mr.GetU64(&regs) || !mr.GetU64(&regs_shared) || !mr.GetU64(&deregs) ||
      !mr.GetU32(&next_id) || !mr.GetU32(&num_runtimes) || !mr.exhausted() ||
      num_runtimes > next_id) {
    return fail(Status::Corruption("malformed query-set meta section"));
  }

  Graph g;
  bin::Reader gr(gbuf);
  if (!(st = g.Deserialize(gr)).ok()) return fail(st);
  if (!gr.exhausted()) {
    return fail(Status::Corruption("trailing bytes in graph section"));
  }

  // Registry: (id, dense runtime index, costs) per live query; ids
  // strictly ascending and runtime indexes within range.
  bin::Reader rr(reg);
  uint32_t live = 0;
  if (!rr.GetLength(&live, kMaxElems) || live > next_id) {
    return fail(Status::Corruption("bad registry entry count"));
  }
  struct RegistryEntry {
    uint32_t id;
    uint32_t dense;
    QueryCosts costs;
  };
  std::vector<RegistryEntry> entries(live);
  uint32_t prev_id = 0;
  for (uint32_t i = 0; i < live; ++i) {
    RegistryEntry& e = entries[i];
    if (!rr.GetU32(&e.id) || !rr.GetU32(&e.dense) ||
        !rr.GetU64(&e.costs.routed_ops) ||
        !rr.GetU64(&e.costs.matches_positive) ||
        !rr.GetU64(&e.costs.matches_negative)) {
      return fail(Status::Corruption("truncated registry entry"));
    }
    if (e.id >= next_id || e.dense >= num_runtimes ||
        (i > 0 && e.id <= prev_id)) {
      return fail(Status::Corruption("registry ids/runtimes inconsistent"));
    }
    prev_id = e.id;
  }
  if (!rr.exhausted()) {
    return fail(Status::Corruption("trailing bytes in registry section"));
  }

  // Commit the shared graph first — every restored engine binds to &g_,
  // whose address is stable (member storage).
  ResetStateLocked();
  g_ = std::move(g);
  bound_ = true;

  // Restore the runtimes in dense order. Slots come out dense (no holes)
  // regardless of the pre-checkpoint slot layout.
  std::vector<uint32_t> member_count(num_runtimes, 0);
  for (const RegistryEntry& e : entries) ++member_count[e.dense];
  for (uint32_t dense = 0; dense < num_runtimes; ++dense) {
    if (member_count[dense] == 0) {
      return fail(
          Status::Corruption("snapshot contains a memberless runtime"));
    }
    auto rt = std::make_unique<Runtime>();
    rt->engine = std::make_unique<TurboFluxEngine>(options_.engine);
    if (!(st = rt->engine->ReadStateSections(in, &g_)).ok()) {
      return fail(st);
    }
    // The engine now owns its restored query; re-derive the bookkeeping
    // the snapshot elides (signatures, routing keys, prefix groups).
    rt->query = std::make_unique<QueryGraph>(rt->engine->query());
    rt->signature = QuerySignature(*rt->query);
    rt->prefix_sig = TreePrefixSignature(rt->engine->tree(), *rt->query,
                                         options_.prefix_depth);
    uint32_t slot = AllocSlot();
    if (slot != dense) {
      return fail(Status::Corruption("non-dense runtime restore"));
    }
    runtimes_[slot] = std::move(rt);
    IndexRuntime(slot);
  }

  records_.assign(next_id, QueryRecord{});
  for (const RegistryEntry& e : entries) {
    records_[e.id] = QueryRecord{e.dense, true, e.costs};
    runtimes_[e.dense]->members.push_back(e.id);
  }

  applied_ops_ = applied;
  ops_evaluated_ = evaluated;
  ops_noop_ = noop;
  ops_quarantined_ = quarantined;
  consulted_evals_ = consulted;
  registrations_ = regs;
  registrations_shared_ = regs_shared;
  deregistrations_ = deregs;
  dead_ = false;
  ++restores_;
  return Status::Ok();
}

}  // namespace multi
}  // namespace turboflux
