#include "turboflux/multi/query_set.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <functional>
#include <utility>

#include "turboflux/common/serialize.h"

namespace turboflux {
namespace multi {

namespace {

/// Tags a single query's match stream with its id.
class TagSink : public MatchSink {
 public:
  TagSink(QueryId id, QuerySet::Sink& sink) : id_(id), sink_(sink) {}

  void OnMatch(bool positive, const Mapping& m) override {
    sink_.OnMatch(id_, positive, m);
  }

 private:
  QueryId id_;
  QuerySet::Sink& sink_;
};

/// Buffers one runtime's matches for an op so routed runtimes can be
/// evaluated concurrently and flushed deterministically afterwards.
/// Matches are stored flattened (no per-match heap allocation).
class RuntimeMatchBuffer : public MatchSink {
 public:
  void OnMatch(bool positive, const Mapping& m) override {
    positive ? ++positive_ : ++negative_;
    signs_.push_back(positive ? 1 : 0);
    sizes_.push_back(static_cast<uint32_t>(m.size()));
    flat_.insert(flat_.end(), m.begin(), m.end());
  }

  uint64_t positive() const { return positive_; }
  uint64_t negative() const { return negative_; }

  void FlushTo(QuerySet::Sink& sink, QueryId id, Mapping& scratch) const {
    size_t pos = 0;
    for (size_t i = 0; i < signs_.size(); ++i) {
      scratch.assign(flat_.begin() + static_cast<ptrdiff_t>(pos),
                     flat_.begin() + static_cast<ptrdiff_t>(pos + sizes_[i]));
      pos += sizes_[i];
      sink.OnMatch(id, signs_[i] != 0, scratch);
    }
  }

 private:
  uint64_t positive_ = 0;
  uint64_t negative_ = 0;
  std::vector<char> signs_;
  std::vector<uint32_t> sizes_;
  std::vector<VertexId> flat_;
};

QuerySetOptions Sanitize(QuerySetOptions options) {
  // Parallelism is cross-query only; a runtime engine never batches.
  options.engine.threads = 1;
  if (options.threads == 0) options.threads = 1;
  return options;
}

}  // namespace

std::string QuerySignature(const QueryGraph& q) {
  std::string s;
  bin::PutU32(s, static_cast<uint32_t>(q.VertexCount()));
  for (QVertexId u = 0; u < q.VertexCount(); ++u) {
    const std::vector<Label>& ls = q.labels(u).labels();
    bin::PutU32(s, static_cast<uint32_t>(ls.size()));
    for (Label l : ls) bin::PutU32(s, l);
  }
  bin::PutU32(s, static_cast<uint32_t>(q.EdgeCount()));
  for (const QEdge& e : q.edges()) {
    bin::PutU32(s, e.from);
    bin::PutU32(s, e.label);
    bin::PutU32(s, e.to);
  }
  return s;
}

std::string TreePrefixSignature(const QueryTree& tree, const QueryGraph& q,
                                size_t max_depth) {
  // BFS order visits parents before children, so one forward pass
  // computes depths; the prefix is the order-preserved sub-sequence of
  // vertices within `max_depth` of the root (their parents are always in
  // the prefix too — depth is monotone along tree paths).
  const std::vector<QVertexId>& bfs = tree.BfsOrder();
  std::vector<uint32_t> depth(q.VertexCount(), 0);
  std::vector<uint32_t> prefix_pos(q.VertexCount(), 0);
  std::string s;
  uint32_t included = 0;
  for (QVertexId u : bfs) {
    if (!tree.IsRoot(u)) depth[u] = depth[tree.Parent(u)] + 1;
    if (depth[u] > max_depth) continue;
    prefix_pos[u] = included++;
    bin::PutU32(s, depth[u]);
    if (!tree.IsRoot(u)) {
      const QueryTree::ParentEdge& pe = tree.parent_edge(u);
      bin::PutU32(s, prefix_pos[pe.parent]);
      bin::PutU32(s, pe.label);
      bin::PutU8(s, pe.forward ? 1 : 0);
    }
    const std::vector<Label>& ls = q.labels(u).labels();
    bin::PutU32(s, static_cast<uint32_t>(ls.size()));
    for (Label l : ls) bin::PutU32(s, l);
  }
  return s;
}

QuerySet::QuerySet(QuerySetOptions options) : options_(Sanitize(options)) {}

QuerySet::~QuerySet() = default;

void QuerySet::ResetStateLocked() {
  runtimes_.clear();
  free_slots_.clear();
  records_.clear();
  by_signature_.clear();
  prefix_groups_.clear();
  routing_ = RoutingIndex();
  applied_ops_ = 0;
  ops_evaluated_ = 0;
  ops_noop_ = 0;
  ops_quarantined_ = 0;
  consulted_evals_ = 0;
  registrations_ = 0;
  registrations_shared_ = 0;
  deregistrations_ = 0;
  dead_ = false;
}

void QuerySet::Bind(const Graph& g0) {
  MutexLock lock(mu_);
  ResetStateLocked();
  g_ = g0;
  bound_ = true;
}

uint32_t QuerySet::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  runtimes_.emplace_back();
  return static_cast<uint32_t>(runtimes_.size() - 1);
}

void QuerySet::IndexRuntime(uint32_t slot) {
  Runtime& rt = *runtimes_[slot];
  routing_.Add(slot, *rt.query);
  by_signature_[rt.signature] = slot;
  prefix_groups_[rt.prefix_sig].push_back(slot);
}

void QuerySet::DropRuntime(uint32_t slot) {
  Runtime& rt = *runtimes_[slot];
  routing_.Remove(slot, *rt.query);
  by_signature_.erase(rt.signature);
  auto git = prefix_groups_.find(rt.prefix_sig);
  if (git != prefix_groups_.end()) {
    std::erase(git->second, slot);
    if (git->second.empty()) prefix_groups_.erase(git);
  }
  runtimes_[slot].reset();
  free_slots_.push_back(slot);
}

Status QuerySet::Register(const QueryGraph& q, Sink& sink, Deadline deadline,
                          QueryId* id) {
  MutexLock lock(mu_);
  if (!bound_) {
    return Status::FailedPrecondition("Bind() or Restore() the set first");
  }
  if (dead_) {
    return Status::FailedPrecondition("query set is dead; Restore() first");
  }
  if (q.VertexCount() == 0 || q.EdgeCount() == 0 || !q.IsConnected()) {
    return Status::InvalidArgument("query must be non-empty and connected");
  }
  if (q.VertexCount() > kMaxQueryVertices) {
    return Status::InvalidArgument("query exceeds kMaxQueryVertices");
  }

  const QueryId new_id = static_cast<QueryId>(records_.size());
  std::string sig = QuerySignature(q);

  if (options_.share_identical) {
    auto it = by_signature_.find(sig);
    if (it != by_signature_.end()) {
      // A signature-identical query is already served: its runtime's DCG
      // holds exactly the new query's match set, so the bootstrap is one
      // read-only enumeration instead of a full DCG build.
      Runtime& rt = *runtimes_[it->second];
      TagSink tagged(new_id, sink);
      if (!rt.engine->EnumerateCurrentMatches(tagged, deadline)) {
        return Status::DeadlineExceeded(
            "registration bootstrap abandoned (shared runtime)");
      }
      rt.members.push_back(new_id);
      records_.push_back(QueryRecord{it->second, true, {}});
      ++registrations_;
      ++registrations_shared_;
      if (id != nullptr) *id = new_id;
      return Status::Ok();
    }
  }

  // Fresh runtime: bootstrap the DCG against the current shared graph.
  // Until the runtime is committed below, nothing shared is mutated, so a
  // mid-bootstrap deadline expiry leaves the set fully usable.
  auto rt = std::make_unique<Runtime>();
  rt->query = std::make_unique<QueryGraph>(q);
  rt->engine = std::make_unique<TurboFluxEngine>(options_.engine);
  TagSink tagged(new_id, sink);
  if (!rt->engine->InitShared(*rt->query, &g_, tagged, deadline)) {
    return Status::DeadlineExceeded("registration bootstrap abandoned");
  }
  rt->signature = std::move(sig);
  rt->prefix_sig =
      TreePrefixSignature(rt->engine->tree(), *rt->query,
                          options_.prefix_depth);
  rt->members.push_back(new_id);

  uint32_t slot = AllocSlot();
  runtimes_[slot] = std::move(rt);
  IndexRuntime(slot);
  records_.push_back(QueryRecord{slot, true, {}});
  ++registrations_;
  if (id != nullptr) *id = new_id;
  return Status::Ok();
}

Status QuerySet::Deregister(QueryId id) {
  MutexLock lock(mu_);
  if (id >= records_.size() || !records_[id].live) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not registered");
  }
  records_[id].live = false;
  ++deregistrations_;
  const uint32_t slot = records_[id].slot;
  Runtime& rt = *runtimes_[slot];
  std::erase(rt.members, id);
  if (rt.members.empty()) DropRuntime(slot);
  return Status::Ok();
}

Status QuerySet::ApplyUpdate(const UpdateOp& op, Sink& sink,
                             Deadline deadline) {
  MutexLock lock(mu_);
  if (!bound_) {
    return Status::FailedPrecondition("Bind() or Restore() the set first");
  }
  if (dead_) {
    return Status::FailedPrecondition("query set is dead; Restore() first");
  }
  Status v = ValidateOp(g_, op);
  if (v.code() == StatusCode::kOutOfRange) {
    // Applying would index past the adjacency arrays of every engine:
    // quarantine set-wide, consume as a no-op.
    ++ops_quarantined_;
    ++applied_ops_;
    return v;
  }
  if (!v.ok()) {
    // Legal stream no-op (duplicate insertion / absent deletion): the
    // graph doesn't change, so no engine's DCG or match set can either.
    ++ops_noop_;
    ++applied_ops_;
    return v;
  }

  // Route before mutating: the index is over static vertex labels, so the
  // result is the same either way, but routing first keeps "the graph
  // only changes around evaluation" easy to see.
  routing_.Route(op.label, g_.labels(op.from), g_.labels(op.to),
                 &route_scratch_);
  consulted_evals_ += route_scratch_.size();
  ++ops_evaluated_;

  // Shared-graph update protocol (see class comment): insert before any
  // engine evaluates; delete only after every engine evaluated.
  if (op.IsInsert()) g_.AddEdge(op.from, op.label, op.to);
  if (!EvalRouted(op, route_scratch_, sink, deadline)) {
    // No matches of this op were flushed and it was not consumed; the
    // graph may already hold an inserted edge, but the set is dead and
    // only Restore() revives it.
    dead_ = true;
    return Status::DeadlineExceeded("update " + op.ToString() +
                                    " abandoned mid-evaluation");
  }
  if (!op.IsInsert()) g_.RemoveEdge(op.from, op.label, op.to);
  ++applied_ops_;
  return Status::Ok();
}

bool QuerySet::EvalRouted(const UpdateOp& op,
                          const std::vector<uint32_t>& routed, Sink& sink,
                          Deadline deadline) {
  if (routed.empty()) return true;
  std::vector<RuntimeMatchBuffer> buffers(routed.size());
  const size_t nthreads = std::min(options_.threads, routed.size());

  if (nthreads <= 1) {
    for (size_t i = 0; i < routed.size(); ++i) {
      if (!runtimes_[routed[i]]->engine->EvalSharedUpdate(op, buffers[i],
                                                          deadline)) {
        return false;
      }
    }
  } else {
    // Engine pointers are snapshotted under mu_ (held by the caller); the
    // workers then touch only their disjoint engines and buffers, plus
    // the thread-safe deadline poll and the shared (constant) graph.
    std::vector<TurboFluxEngine*> engines;
    engines.reserve(routed.size());
    for (uint32_t slot : routed) {
      engines.push_back(runtimes_[slot]->engine.get());
    }
    if (!pool_ || pool_->size() != nthreads - 1) {
      pool_ = std::make_unique<parallel::ThreadPool>(nthreads - 1);
    }
    std::atomic<bool> failed{false};
    std::vector<std::function<void()>> tasks;
    tasks.reserve(nthreads);
    for (size_t w = 0; w < nthreads; ++w) {
      tasks.push_back([&engines, &buffers, &failed, &op, &deadline, w,
                       nthreads] {
        for (size_t i = w; i < engines.size(); i += nthreads) {
          if (failed.load(std::memory_order_relaxed)) return;
          if (!engines[i]->EvalSharedUpdate(op, buffers[i], deadline)) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    pool_->RunAll(std::move(tasks));
    if (failed.load(std::memory_order_relaxed)) return false;
  }

  // Deterministic flush: runtimes in ascending slot order (Route sorts),
  // members ascending within a runtime. Per-query attribution lands here,
  // once per member — a shared runtime's work is billed to every query it
  // serves, since each would have paid it alone.
  Mapping scratch;
  for (size_t i = 0; i < routed.size(); ++i) {
    const Runtime& rt = *runtimes_[routed[i]];
    for (QueryId member : rt.members) {
      QueryCosts& costs = records_[member].costs;
      ++costs.routed_ops;
      costs.matches_positive += buffers[i].positive();
      costs.matches_negative += buffers[i].negative();
      buffers[i].FlushTo(sink, member, scratch);
    }
  }
  return true;
}

Status QuerySet::ApplyBatch(std::span<const UpdateOp> ops, Sink& sink,
                            Deadline deadline) {
  // Check liveness once up front: per-op kFailedPrecondition is a LEGAL
  // duplicate-insertion no-op and must not abandon the window. Only a
  // deadline expiry can kill the set mid-batch.
  {
    MutexLock lock(mu_);
    if (!bound_) {
      return Status::FailedPrecondition("Bind() or Restore() the set first");
    }
    if (dead_) {
      return Status::FailedPrecondition("query set is dead; Restore() first");
    }
  }
  for (const UpdateOp& op : ops) {
    Status st = ApplyUpdate(op, sink, deadline);
    if (st.code() == StatusCode::kDeadlineExceeded) return st;
    // Quarantined and legal-no-op statuses are informational; the op was
    // consumed and the batch continues.
  }
  return Status::Ok();
}

size_t QuerySet::QueryCount() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const QueryRecord& r : records_) n += r.live ? 1 : 0;
  return n;
}

size_t QuerySet::RuntimeCount() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const std::unique_ptr<Runtime>& rt : runtimes_) n += rt ? 1 : 0;
  return n;
}

size_t QuerySet::IntermediateSize() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const std::unique_ptr<Runtime>& rt : runtimes_) {
    if (rt) total += rt->engine->IntermediateSize();
  }
  return total;
}

std::vector<QueryId> QuerySet::LiveQueries() const {
  MutexLock lock(mu_);
  std::vector<QueryId> out;
  for (QueryId id = 0; id < records_.size(); ++id) {
    if (records_[id].live) out.push_back(id);
  }
  return out;
}

bool QuerySet::IsLive(QueryId id) const {
  MutexLock lock(mu_);
  return id < records_.size() && records_[id].live;
}

uint64_t QuerySet::applied_ops() const {
  MutexLock lock(mu_);
  return applied_ops_;
}

bool QuerySet::dead() const {
  MutexLock lock(mu_);
  return dead_;
}

const Graph& QuerySet::graph() const {
  MutexLock lock(mu_);
  return g_;
}

QuerySet::QueryCosts QuerySet::Costs(QueryId id) const {
  MutexLock lock(mu_);
  return id < records_.size() ? records_[id].costs : QueryCosts{};
}

uint64_t QuerySet::ConsultedEvals() const {
  MutexLock lock(mu_);
  return consulted_evals_;
}

std::pair<size_t, size_t> QuerySet::PrefixGroupShape() const {
  MutexLock lock(mu_);
  size_t largest = 0;
  for (const auto& [sig, slots] : prefix_groups_) {
    largest = std::max(largest, slots.size());
  }
  return {prefix_groups_.size(), largest};
}

void QuerySet::AppendStats(obs::StatsSnapshot& out) const {
  MutexLock lock(mu_);
  out.AddCounter("queryset.ops", applied_ops_);
  out.AddCounter("queryset.ops_evaluated", ops_evaluated_);
  out.AddCounter("queryset.ops_noop", ops_noop_);
  out.AddCounter("queryset.ops_quarantined", ops_quarantined_);
  out.AddCounter("queryset.consulted_evals", consulted_evals_);
  out.AddCounter("queryset.registrations", registrations_);
  out.AddCounter("queryset.registrations_shared", registrations_shared_);
  out.AddCounter("queryset.deregistrations", deregistrations_);
  out.AddCounter("queryset.checkpoints", checkpoints_);
  out.AddCounter("queryset.restores", restores_);
  out.AddCounter("queryset.routing_keys", routing_.KeyCount());
  size_t live = 0, rts = 0;
  for (const QueryRecord& r : records_) live += r.live ? 1 : 0;
  for (const std::unique_ptr<Runtime>& rt : runtimes_) rts += rt ? 1 : 0;
  out.AddCounter("queryset.queries_live", live);
  out.AddCounter("queryset.runtimes_live", rts);
  size_t largest_group = 0;
  for (const auto& [sig, slots] : prefix_groups_) {
    largest_group = std::max(largest_group, slots.size());
  }
  out.AddCounter("queryset.prefix_groups", prefix_groups_.size());
  out.AddCounter("queryset.prefix_group_max", largest_group);

  // Per-query attribution, live queries only, then each runtime's engine
  // counters under its lowest (first-registered) live member.
  for (QueryId id = 0; id < records_.size(); ++id) {
    if (!records_[id].live) continue;
    const std::string prefix = "queryset.q" + std::to_string(id) + ".";
    out.AddCounter(prefix + "routed_ops", records_[id].costs.routed_ops);
    out.AddCounter(prefix + "matches_positive",
                   records_[id].costs.matches_positive);
    out.AddCounter(prefix + "matches_negative",
                   records_[id].costs.matches_negative);
  }
  for (const std::unique_ptr<Runtime>& rt : runtimes_) {
    if (!rt || rt->members.empty()) continue;
    rt->engine->engine_stats()->AppendTo(
        out, "queryset.q" + std::to_string(rt->members.front()) + ".engine.");
  }
}

}  // namespace multi
}  // namespace turboflux
