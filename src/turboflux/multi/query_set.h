#ifndef TURBOFLUX_MULTI_QUERY_SET_H_
#define TURBOFLUX_MULTI_QUERY_SET_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/common/status.h"
#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/multi/routing_index.h"
#include "turboflux/obs/stats.h"
#include "turboflux/parallel/thread_pool.h"
#include "turboflux/query/query_graph.h"
#include "turboflux/query/query_tree.h"

namespace turboflux {
namespace multi {

/// Identifier of a registered query within a QuerySet: dense from 0 in
/// registration order, never reused after Deregister. Structurally the
/// monotonically assigned by the owning set, never reused.
using QueryId = uint32_t;

/// Byte-exact structural identity of a query graph (vertex labels in id
/// order + edge triples in id order). Two queries with equal signatures
/// have identical match sets over any data graph, so the QuerySet serves
/// them from one runtime. This is *structural* identity, not isomorphism —
/// a relabeled-vertex duplicate gets its own runtime, which is only a
/// missed sharing opportunity, never a correctness issue.
std::string QuerySignature(const QueryGraph& q);

/// Signature of the spanning tree's top `max_depth` BFS levels (labels,
/// edge labels, directions, shape). Queries in the same prefix group share
/// their initial DCG transition work pattern; the QuerySet uses the groups
/// for shared-prefix bookkeeping and stats (DESIGN.md §3.10), and they are
/// the hook for future cross-query DCG-prefix sharing.
std::string TreePrefixSignature(const QueryTree& tree, const QueryGraph& q,
                                size_t max_depth);

struct QuerySetOptions {
  /// Per-runtime engine options. `engine.threads` is forced to 1 — the
  /// QuerySet parallelizes *across* queries, never inside one.
  TurboFluxOptions engine;

  /// Worker threads for cross-query evaluation (1 = sequential; N > 1
  /// evaluates routed runtimes on the calling thread plus N-1 pool
  /// workers, with per-runtime match buffers flushed deterministically).
  size_t threads = 1;

  /// Serve signature-identical queries from one shared runtime (engine +
  /// DCG); registration of a duplicate then costs one DCG enumeration
  /// instead of a full bootstrap, and every update is evaluated once per
  /// *distinct* query instead of once per registered query.
  bool share_identical = true;

  /// BFS depth of the spanning-tree prefix used for shared-prefix
  /// grouping.
  size_t prefix_depth = 2;
};

/// The multi-query serving layer (DESIGN.md §3.10): N standing queries
/// over ONE shared data graph, with per-query DCG state, online
/// Register/Deregister while the stream runs, and per-update routing
/// through an inverted (edge-label, src-label, dst-label) index so each
/// update only touches the queries it can affect.
///
/// Replaces a naive per-query engine fan-out (one private graph copy per
/// query, every query evaluated on every update). Per-query match streams
/// are exactly those of N independent TurboFluxEngine runs — the
/// differential suite (test_query_set_differential.cc) pins this per
/// query, per op, under registration churn.
///
/// Update protocol (what makes one shared graph sound): the QuerySet is
/// the graph's only mutator. On insertion it applies the edge *before*
/// any engine evaluates; on deletion it removes the edge only *after*
/// every routed engine evaluated. The graph is constant during
/// evaluation, so routed runtimes evaluate concurrently without
/// synchronizing on it.
///
/// Thread safety: all public methods are mutually exclusive via an
/// internal mutex — Register/Deregister may race ApplyUpdate from other
/// threads and serialize cleanly (the TSan stress test exercises this).
/// Sinks are invoked with the mutex held and must not call back into the
/// QuerySet.
class QuerySet {
 public:
  /// Receives (query id, sign, mapping) callbacks.
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void OnMatch(QueryId query, bool positive, const Mapping& m) = 0;
  };

  /// Per-query cost attribution, maintained unconditionally (plain
  /// uint64 adds on the serving layer, not an engine hot path).
  struct QueryCosts {
    uint64_t routed_ops = 0;  ///< ops the routing index sent to this query
    uint64_t matches_positive = 0;
    uint64_t matches_negative = 0;
  };

  explicit QuerySet(QuerySetOptions options = {});
  ~QuerySet();

  QuerySet(const QuerySet&) = delete;
  QuerySet& operator=(const QuerySet&) = delete;

  /// Binds the initial data graph (copied). Must be called once before the
  /// first Register; Restore() is the only other way to bind.
  void Bind(const Graph& g0) EXCLUDES(mu_);

  /// Registers a query against the *current* graph: bootstraps its DCG
  /// (or joins a signature-identical runtime), reports its initial
  /// matches to `sink` tagged with the new id, and indexes it for
  /// routing. Ids are dense from 0 and never reused. On deadline expiry
  /// nothing shared was mutated — the set stays fully usable.
  [[nodiscard]] Status Register(const QueryGraph& q, Sink& sink,
                                Deadline deadline, QueryId* id) EXCLUDES(mu_);

  /// Removes a query. Its runtime (engine + DCG) is reclaimed when the
  /// last signature-sharing member leaves; routing keys are dropped with
  /// the runtime.
  [[nodiscard]] Status Deregister(QueryId id) EXCLUDES(mu_);

  /// Applies one update: validates it, routes it through the inverted
  /// index, mutates the shared graph per the update protocol, evaluates
  /// the routed runtimes (in parallel when options.threads > 1), and
  /// reports every match tagged with its query id — members ascending
  /// within a runtime, runtimes in slot order, so output is deterministic.
  ///
  /// Returns kOutOfRange (op quarantined, consumed as a no-op),
  /// kNotFound / kFailedPrecondition (legal no-op, consumed), OK
  /// (evaluated), or kDeadlineExceeded — the set is then dead: no matches
  /// of the abandoned op were flushed and the op was NOT consumed;
  /// Restore() from a snapshot and replay from applied_ops().
  [[nodiscard]] Status ApplyUpdate(const UpdateOp& op, Sink& sink,
                                   Deadline deadline) EXCLUDES(mu_);

  /// Sequential convenience loop over ApplyUpdate; stops at the first
  /// deadline expiry. No-op statuses are consumed silently.
  [[nodiscard]] Status ApplyBatch(std::span<const UpdateOp> ops, Sink& sink,
                                  Deadline deadline) EXCLUDES(mu_);

  // --- Whole-set checkpoint (DESIGN.md §3.7/§3.10) ---

  /// Snapshots the whole set: magic "TFXQ" + version, then CRC32-framed
  /// sections — set meta, the shared graph (once), the query registry
  /// (ids, runtime assignments, per-query cost counters), and each live
  /// runtime's engine state via WriteStateSections(include_graph=false).
  [[nodiscard]] Status Checkpoint(std::ostream& out) const EXCLUDES(mu_);

  /// Rebuilds the set from a Checkpoint snapshot, replacing all current
  /// state; every runtime is re-bound to the restored shared graph and
  /// the routing index and signature/prefix maps are recomputed. On
  /// success applied_ops() is the snapshot's stream position. On failure
  /// the set is left dead.
  [[nodiscard]] Status Restore(std::istream& in) EXCLUDES(mu_);

  // --- Introspection ---

  /// Live (registered, not deregistered) query count.
  size_t QueryCount() const EXCLUDES(mu_);
  /// Distinct runtimes serving them (== QueryCount unless sharing).
  size_t RuntimeCount() const EXCLUDES(mu_);
  /// Sum of the per-runtime DCG sizes.
  size_t IntermediateSize() const EXCLUDES(mu_);
  /// Ids of all live queries, ascending.
  std::vector<QueryId> LiveQueries() const EXCLUDES(mu_);
  bool IsLive(QueryId id) const EXCLUDES(mu_);

  uint64_t applied_ops() const EXCLUDES(mu_);
  bool dead() const EXCLUDES(mu_);
  const Graph& graph() const EXCLUDES(mu_);

  /// Per-query attribution; zeros for unknown/deregistered ids.
  QueryCosts Costs(QueryId id) const EXCLUDES(mu_);
  /// Total runtime evaluations across all ops — the "queries consulted"
  /// figure the naive fan-out pays QueryCount() per op for.
  uint64_t ConsultedEvals() const EXCLUDES(mu_);

  /// Appends set counters ("queryset.*"), per-query attribution
  /// ("queryset.q<ID>.*"), and each runtime's engine counters (under its
  /// lowest live member id) to `out`.
  void AppendStats(obs::StatsSnapshot& out) const EXCLUDES(mu_);

  /// Number of shared-prefix groups and the size of the largest one —
  /// cheap observability for generated-workload sanity checks.
  std::pair<size_t, size_t> PrefixGroupShape() const EXCLUDES(mu_);

 private:
  /// One engine serving every registered query with an identical
  /// signature.
  struct Runtime {
    std::unique_ptr<QueryGraph> query;  // stable address for the engine
    std::unique_ptr<TurboFluxEngine> engine;
    std::vector<QueryId> members;  // live member ids, ascending
    std::string signature;
    std::string prefix_sig;
  };

  struct QueryRecord {
    uint32_t slot = 0;
    bool live = false;
    QueryCosts costs;
  };

  uint32_t AllocSlot() REQUIRES(mu_);
  void IndexRuntime(uint32_t slot) REQUIRES(mu_);
  void DropRuntime(uint32_t slot) REQUIRES(mu_);
  void ResetStateLocked() REQUIRES(mu_);
  bool EvalRouted(const UpdateOp& op, const std::vector<uint32_t>& routed,
                  Sink& sink, Deadline deadline) REQUIRES(mu_);

  const QuerySetOptions options_;

  mutable Mutex mu_;
  bool bound_ GUARDED_BY(mu_) = false;
  bool dead_ GUARDED_BY(mu_) = false;
  Graph g_ GUARDED_BY(mu_);

  // Slot vector with free-list reuse; nullptr = free slot. QueryIds are
  // monotonic and never reused; slots are.
  std::vector<std::unique_ptr<Runtime>> runtimes_ GUARDED_BY(mu_);
  std::vector<uint32_t> free_slots_ GUARDED_BY(mu_);
  std::vector<QueryRecord> records_ GUARDED_BY(mu_);  // indexed by QueryId

  std::unordered_map<std::string, uint32_t> by_signature_ GUARDED_BY(mu_);
  // Ordered so stats/shape reporting is deterministic.
  std::map<std::string, std::vector<uint32_t>> prefix_groups_
      GUARDED_BY(mu_);
  RoutingIndex routing_ GUARDED_BY(mu_);
  std::vector<uint32_t> route_scratch_ GUARDED_BY(mu_);

  uint64_t applied_ops_ GUARDED_BY(mu_) = 0;

  // Set-level counters (always maintained; exported by AppendStats).
  uint64_t ops_evaluated_ GUARDED_BY(mu_) = 0;
  uint64_t ops_noop_ GUARDED_BY(mu_) = 0;
  uint64_t ops_quarantined_ GUARDED_BY(mu_) = 0;
  uint64_t consulted_evals_ GUARDED_BY(mu_) = 0;
  uint64_t registrations_ GUARDED_BY(mu_) = 0;
  uint64_t registrations_shared_ GUARDED_BY(mu_) = 0;
  uint64_t deregistrations_ GUARDED_BY(mu_) = 0;
  // Mutable: Checkpoint is logically const but counts itself.
  mutable uint64_t checkpoints_ GUARDED_BY(mu_) = 0;
  uint64_t restores_ GUARDED_BY(mu_) = 0;

  std::unique_ptr<parallel::ThreadPool> pool_ GUARDED_BY(mu_);
};

}  // namespace multi
}  // namespace turboflux

#endif  // TURBOFLUX_MULTI_QUERY_SET_H_
