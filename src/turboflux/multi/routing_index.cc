#include "turboflux/multi/routing_index.h"

#include <algorithm>

namespace turboflux {
namespace multi {

RoutingIndex::Key RoutingIndex::KeyFor(const QueryGraph& q, QEdgeId e) {
  const QEdge& qe = q.edge(e);
  return Key{qe.label, q.labels(qe.from).FirstOr(kAnyRoutingLabel),
             q.labels(qe.to).FirstOr(kAnyRoutingLabel)};
}

void RoutingIndex::Add(uint32_t target, const QueryGraph& q) {
  for (QEdgeId e = 0; e < q.EdgeCount(); ++e) {
    std::vector<uint32_t>& targets = index_[KeyFor(q, e)];
    // A query with several same-key edges registers once per key.
    if (targets.empty() || targets.back() != target) {
      targets.push_back(target);
    }
  }
}

void RoutingIndex::Remove(uint32_t target, const QueryGraph& q) {
  for (QEdgeId e = 0; e < q.EdgeCount(); ++e) {
    auto it = index_.find(KeyFor(q, e));
    if (it == index_.end()) continue;
    std::erase(it->second, target);
    if (it->second.empty()) index_.erase(it);
  }
}

void RoutingIndex::Probe(EdgeLabel l, Label s, Label d,
                         std::vector<uint32_t>* out) {
  auto it = index_.find(Key{l, s, d});
  if (it == index_.end()) return;
  for (uint32_t t : it->second) {
    if (t >= stamp_.size()) stamp_.resize(t + 1, 0);
    if (stamp_[t] == epoch_) continue;
    stamp_[t] = epoch_;
    out->push_back(t);
  }
}

void RoutingIndex::Route(EdgeLabel l, const LabelSet& src,
                         const LabelSet& dst, std::vector<uint32_t>* out) {
  out->clear();
  if (++epoch_ == 0) {  // epoch wrapped: invalidate all stamps
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  // The probe fan: every concrete/wildcard combination of the endpoints'
  // labels. See the class comment for why this cannot miss a target.
  Probe(l, kAnyRoutingLabel, kAnyRoutingLabel, out);
  for (Label d : dst.labels()) Probe(l, kAnyRoutingLabel, d, out);
  for (Label s : src.labels()) {
    Probe(l, s, kAnyRoutingLabel, out);
    for (Label d : dst.labels()) Probe(l, s, d, out);
  }
  std::sort(out->begin(), out->end());
}

}  // namespace multi
}  // namespace turboflux
