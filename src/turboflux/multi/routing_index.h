#ifndef TURBOFLUX_MULTI_ROUTING_INDEX_H_
#define TURBOFLUX_MULTI_ROUTING_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "turboflux/common/label_set.h"
#include "turboflux/common/types.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {
namespace multi {

/// Wildcard sentinel in routing keys: the endpoint's label set is empty
/// (unconstrained), so the key matches updates touching any vertex.
inline constexpr Label kAnyRoutingLabel = 0xFFFFFFFFu;

/// The (edge-label, src-label, dst-label) -> targets inverted index that
/// makes multi-query serving sublinear in query count (DESIGN.md §3.10):
/// an update only reaches the runtimes whose query edges can possibly
/// match it; everything else is provably a no-op and is never consulted.
///
/// Key derivation: every query edge e contributes one key
/// (e.label, s*, d*) where s* is the *first* label of L(e.from) — or the
/// wildcard sentinel when the set is empty — and d* likewise for e.to.
/// Soundness: a query is affected by update (v, l, v2) only if it has an
/// edge e with e.label == l, L(e.from) ⊆ L(v) and L(e.to) ⊆ L(v2)
/// (Transition 0 / non-tree seed preconditions). When L(e.from) ⊆ L(v)
/// and is non-empty, its first label is one of v's labels; so probing
/// every (l, s, d) with s ∈ L(v) ∪ {any} and d ∈ L(v2) ∪ {any} — a
/// (|L(v)|+1)·(|L(v2)|+1) probe fan, typically 4 — can never miss an
/// affected query. It may over-approximate (the subset test is not fully
/// encoded in one label), which only costs a wasted no-op evaluation.
///
/// Targets are small dense integers (runtime slots). Route() deduplicates
/// across keys with an epoch-stamped scratch vector, so the hot path
/// allocates nothing once warmed up.
class RoutingIndex {
 public:
  /// Registers `target` under one key per edge of `q`.
  void Add(uint32_t target, const QueryGraph& q);

  /// Removes `target` from every key `q` hashed it under. The same `q`
  /// that was passed to Add must be used (keys are recomputed from it).
  void Remove(uint32_t target, const QueryGraph& q);

  /// Appends every target with at least one key compatible with an update
  /// of label `l` between endpoints labeled `src` / `dst`. Output is
  /// sorted ascending and duplicate-free; `out` is cleared first.
  void Route(EdgeLabel l, const LabelSet& src, const LabelSet& dst,
             std::vector<uint32_t>* out);

  size_t KeyCount() const { return index_.size(); }

 private:
  // (edge label, src label, dst label) packed for hashing.
  struct Key {
    EdgeLabel l;
    Label s;
    Label d;
    friend bool operator==(const Key& a, const Key& b) {
      return a.l == b.l && a.s == b.s && a.d == b.d;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (uint64_t{k.l} << 32) ^ (uint64_t{k.s} << 16) ^ k.d;
      h *= 0x9e3779b97f4a7c15ull;  // Fibonacci mix
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  static Key KeyFor(const QueryGraph& q, QEdgeId e);

  void Probe(EdgeLabel l, Label s, Label d, std::vector<uint32_t>* out);

  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> index_;

  // Per-target dedup stamps for Route: stamp_[t] == epoch_ means target t
  // is already in the current output.
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

}  // namespace multi
}  // namespace turboflux

#endif  // TURBOFLUX_MULTI_ROUTING_INDEX_H_
