#include "turboflux/obs/engine_stats.h"

namespace turboflux {
namespace obs {

void DcgStats::Reset() {
  transitions.Reset();
  null_to_implicit.Reset();
  implicit_to_explicit.Reset();
  explicit_to_null.Reset();
  explicit_to_implicit.Reset();
  implicit_to_null.Reset();
}

void DcgStats::AppendTo(StatsSnapshot& out, const std::string& prefix) const {
  out.AddCounter(prefix + "transitions", transitions.value());
  out.AddCounter(prefix + "null_to_implicit", null_to_implicit.value());
  out.AddCounter(prefix + "implicit_to_explicit",
                 implicit_to_explicit.value());
  out.AddCounter(prefix + "explicit_to_null", explicit_to_null.value());
  out.AddCounter(prefix + "explicit_to_implicit",
                 explicit_to_implicit.value());
  out.AddCounter(prefix + "implicit_to_null", implicit_to_null.value());
}

void DcsStats::Reset() {
  transitions.Reset();
  d1_set.Reset();
  d1_cleared.Reset();
  d2_set.Reset();
  d2_cleared.Reset();
  isolated_groups.Reset();
}

void DcsStats::AppendTo(StatsSnapshot& out, const std::string& prefix) const {
  out.AddCounter(prefix + "transitions", transitions.value());
  out.AddCounter(prefix + "d1_set", d1_set.value());
  out.AddCounter(prefix + "d1_cleared", d1_cleared.value());
  out.AddCounter(prefix + "d2_set", d2_set.value());
  out.AddCounter(prefix + "d2_cleared", d2_cleared.value());
  out.AddCounter(prefix + "isolated_groups", isolated_groups.value());
}

void GraphLayoutStats::Reset() {
  adj_bytes.Reset();
  adj_dead_slots.Reset();
  pair_table_bytes.Reset();
  compactions.Reset();
  rehashes.Reset();
}

void GraphLayoutStats::AppendTo(StatsSnapshot& out,
                                const std::string& prefix) const {
  out.AddCounter(prefix + "adj_bytes", adj_bytes.value());
  out.AddCounter(prefix + "adj_dead_slots", adj_dead_slots.value());
  out.AddCounter(prefix + "pair_table_bytes", pair_table_bytes.value());
  out.AddCounter(prefix + "compactions", compactions.value());
  out.AddCounter(prefix + "rehashes", rehashes.value());
}

void SchedulerStats::Reset() {
  partitions.Reset();
  scheduled_ops.Reset();
  sub_batches.Reset();
  global_region_ops.Reset();
}

void SchedulerStats::AppendTo(StatsSnapshot& out,
                              const std::string& prefix) const {
  out.AddCounter(prefix + "partitions", partitions.value());
  out.AddCounter(prefix + "scheduled_ops", scheduled_ops.value());
  out.AddCounter(prefix + "sub_batches", sub_batches.value());
  out.AddCounter(prefix + "global_region_ops", global_region_ops.value());
}

void EngineStats::Reset() {
  ops_insert.Reset();
  ops_delete.Reset();
  insert_evals.Reset();
  delete_evals.Reset();
  search_seeds.Reset();
  search_states.Reset();
  matches_positive.Reset();
  matches_negative.Reset();
  order_recomputes.Reset();
  intermediate_size.Reset();
  peak_intermediate.Reset();
  batches.Reset();
  parallel_batches.Reset();
  phase1_seconds.Reset();
  phase2_seconds.Reset();
  for (Counter& c : worker_ops) c.Reset();
  checkpoints.Reset();
  restores.Reset();
  checkpoint_bytes.Reset();
  restore_bytes.Reset();
  checkpoint_seconds.Reset();
  restore_seconds.Reset();
  dcg.Reset();
  dcs.Reset();
  graph.Reset();
  scheduler.Reset();
}

void EngineStats::DrainSearchCountersFrom(EngineStats& worker) {
  search_seeds.Inc(worker.search_seeds.value());
  search_states.Inc(worker.search_states.value());
  matches_positive.Inc(worker.matches_positive.value());
  matches_negative.Inc(worker.matches_negative.value());
  worker.search_seeds.Reset();
  worker.search_states.Reset();
  worker.matches_positive.Reset();
  worker.matches_negative.Reset();
}

void EngineStats::AppendTo(StatsSnapshot& out,
                           const std::string& prefix) const {
  out.AddCounter(prefix + "ops_insert", ops_insert.value());
  out.AddCounter(prefix + "ops_delete", ops_delete.value());
  out.AddCounter(prefix + "insert_evals", insert_evals.value());
  out.AddCounter(prefix + "delete_evals", delete_evals.value());
  out.AddCounter(prefix + "search_seeds", search_seeds.value());
  out.AddCounter(prefix + "search_states", search_states.value());
  out.AddCounter(prefix + "matches_positive", matches_positive.value());
  out.AddCounter(prefix + "matches_negative", matches_negative.value());
  out.AddCounter(prefix + "order_recomputes", order_recomputes.value());
  out.AddCounter(prefix + "intermediate_size", intermediate_size.value());
  out.AddCounter(prefix + "peak_intermediate", peak_intermediate.value());
  out.AddCounter(prefix + "batches", batches.value());
  out.AddCounter(prefix + "parallel_batches", parallel_batches.value());
  for (size_t w = 0; w < worker_ops.size(); ++w) {
    out.AddCounter(prefix + "worker_ops." + std::to_string(w),
                   worker_ops[w].value());
  }
  out.AddCounter(prefix + "checkpoints", checkpoints.value());
  out.AddCounter(prefix + "restores", restores.value());
  out.AddCounter(prefix + "checkpoint_bytes", checkpoint_bytes.value());
  out.AddCounter(prefix + "restore_bytes", restore_bytes.value());
  if (phase1_seconds.data().count > 0) {
    out.AddHistogram(prefix + "phase1_ns", phase1_seconds.data());
  }
  if (phase2_seconds.data().count > 0) {
    out.AddHistogram(prefix + "phase2_ns", phase2_seconds.data());
  }
  if (checkpoint_seconds.data().count > 0) {
    out.AddHistogram(prefix + "checkpoint_ns", checkpoint_seconds.data());
  }
  if (restore_seconds.data().count > 0) {
    out.AddHistogram(prefix + "restore_ns", restore_seconds.data());
  }
  dcg.AppendTo(out, prefix + "dcg.");
  dcs.AppendTo(out, prefix + "dcs.");
  graph.AppendTo(out, prefix + "graph.");
  scheduler.AppendTo(out, prefix + "scheduler.");
}

}  // namespace obs
}  // namespace turboflux
