#ifndef TURBOFLUX_OBS_ENGINE_STATS_H_
#define TURBOFLUX_OBS_ENGINE_STATS_H_

#include <string>
#include <vector>

#include "turboflux/obs/stats.h"

// Typed hot-path counters (DESIGN.md §3.8). Engines own one EngineStats
// each and bump named members directly — no string lookup or registry
// indirection on a path executed per DCG transition. The structs compile
// to (nearly) empty shells when TFX_STATS=0; every increment site
// disappears entirely.

namespace turboflux {
namespace obs {

/// Per-DCG counters, bumped inside Dcg::SetState — the single funnel all
/// DCG mutations go through. The transition taxonomy is the paper's
/// Figure 5; candidate-list churn is derivable: list appends equal
/// null_to_implicit (Transition 1 is the only way an edge materializes),
/// list removals equal explicit_to_null + implicit_to_null, and in-place
/// state flips equal implicit_to_explicit + explicit_to_implicit.
struct DcgStats {
  Counter transitions;           ///< every legal state change
  Counter null_to_implicit;      ///< Transition 1 (edge stored)
  Counter implicit_to_explicit;  ///< Transition 2
  Counter explicit_to_null;      ///< Transition 3 (edge removed)
  Counter explicit_to_implicit;  ///< Transition 4
  Counter implicit_to_null;      ///< Transition 5 (edge removed)

  void Reset();
  void AppendTo(StatsSnapshot& out, const std::string& prefix) const;
};

/// Per-DCS counters (the SymBi engine, DESIGN.md §3.13), bumped inside the
/// Dcs flag funnels — one increment per D1/D2 flag flip, which is the
/// bidirectional-DP analogue of the DCG transition taxonomy above.
/// `transitions` totals all four flip kinds; `isolated_groups` counts
/// enumeration steps that took the isolated-vertex fast path (every
/// remaining query vertex had all neighbours mapped, so candidates were
/// produced once per vertex instead of once per backtracking state).
struct DcsStats {
  Counter transitions;      ///< every D1/D2 flag flip
  Counter d1_set;           ///< top-down flag 0 -> 1
  Counter d1_cleared;       ///< top-down flag 1 -> 0
  Counter d2_set;           ///< bottom-up flag 0 -> 1
  Counter d2_cleared;       ///< bottom-up flag 1 -> 0
  Counter isolated_groups;  ///< isolated-vertex enumeration activations

  void Reset();
  void AppendTo(StatsSnapshot& out, const std::string& prefix) const;
};

/// Data-graph memory-layout gauges (DESIGN.md §3.11), sampled from the
/// Graph accessors after every applied update. `adj_dead_slots` vs the
/// live entry count is the signal the tombstone/compaction regression
/// tests watch; `compactions`/`rehashes` are monotonic event counts
/// surfaced as gauges because the Graph owns the authoritative tally.
struct GraphLayoutStats {
  Gauge adj_bytes;         ///< adjacency slab + span bytes (out + in)
  Gauge adj_dead_slots;    ///< relocation holes awaiting compaction
  Gauge pair_table_bytes;  ///< flat edge-label pair-table bytes
  Gauge compactions;       ///< adjacency compaction epochs (out + in)
  Gauge rehashes;          ///< pair-table rehashes (grow/shrink/purge)

  void Reset();
  void AppendTo(StatsSnapshot& out, const std::string& prefix) const;
};

/// Batch-scheduler counters (parallel/batch.cc).
struct SchedulerStats {
  Counter partitions;         ///< Partition() calls
  Counter scheduled_ops;      ///< ops partitioned in total
  Counter sub_batches;        ///< conflict-free sub-batches produced
  Counter global_region_ops;  ///< ops whose influence region overflowed

  void Reset();
  void AppendTo(StatsSnapshot& out, const std::string& prefix) const;
};

/// Counters shared by every ContinuousEngine implementation (exposed via
/// ContinuousEngine::engine_stats()). TurboFlux populates all of them; the
/// baselines populate the subset that applies (ops, search, matches).
///
/// Parallel-mode accounting (TurboFlux): the primary engine performs every
/// op's graph/DCG maintenance exactly once (phase-1 own share in full,
/// phase-2 replay of the rest state-only), so op and DCG counters on the
/// primary match a sequential run exactly. Search and match counters fire
/// only on the phase-1 owner of each op, so the primary drains them from
/// its replicas at each batch boundary (DrainSearchCountersFrom) — again
/// landing on the sequential totals.
struct EngineStats {
  Counter ops_insert;    ///< insertion ops evaluated (incl. no-op dups)
  Counter ops_delete;    ///< deletion ops evaluated (incl. absent-edge)
  Counter insert_evals;  ///< insertions that changed the graph
  Counter delete_evals;  ///< deletions that changed the graph
  Counter search_seeds;  ///< RunSearch invocations (seed paths reached)
  Counter search_states; ///< backtracking states explored (SubgraphSearch)
  Counter matches_positive;  ///< positive matches emitted (incl. initial)
  Counter matches_negative;
  Counter order_recomputes;    ///< matching-order drift recomputations
  Gauge intermediate_size;     ///< IntermediateSize() after the last op
  Gauge peak_intermediate;     ///< high-water IntermediateSize()

  Counter batches;           ///< ApplyBatch calls
  Counter parallel_batches;  ///< ... that took the parallel path
  Histogram phase1_seconds;  ///< per-sub-batch parallel evaluation time
  Histogram phase2_seconds;  ///< per-sub-batch state-only resync time
  std::vector<Counter> worker_ops;  ///< phase-1 ops evaluated per worker

  Counter checkpoints;       ///< successful Checkpoint() calls
  Counter restores;          ///< successful Restore() calls
  Counter checkpoint_bytes;  ///< total snapshot bytes written
  Counter restore_bytes;     ///< total snapshot bytes read
  Histogram checkpoint_seconds;
  Histogram restore_seconds;

  DcgStats dcg;
  DcsStats dcs;
  GraphLayoutStats graph;
  SchedulerStats scheduler;

  void Reset();

  /// Batch-boundary merge: adds `worker`'s search/match counters
  /// (search_seeds, search_states, matches_positive/negative) into this
  /// and zeroes them on `worker`, so replica counters are never double
  /// counted across batches.
  void DrainSearchCountersFrom(EngineStats& worker);

  /// Exports every metric as prefix + member name ("engine." yields
  /// "engine.search_states", "engine.dcg.transitions", ...). Histograms
  /// get a "_ns" suffix and are recorded in nanoseconds.
  void AppendTo(StatsSnapshot& out, const std::string& prefix) const;
};

}  // namespace obs
}  // namespace turboflux

#endif  // TURBOFLUX_OBS_ENGINE_STATS_H_
