#include "turboflux/obs/stats.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace turboflux {
namespace obs {

const HistogramData NoopHistogram::kEmpty{};

uint64_t HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return std::clamp(BucketUpperBound(i), min, max);
    }
  }
  return max;  // unreachable when counters are consistent
}

bool StatsSnapshot::Has(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return true;
  }
  return FindHistogram(name) != nullptr;
}

uint64_t StatsSnapshot::Value(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* StatsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

void StatsSnapshot::MergeFrom(const StatsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    bool found = false;
    for (auto& [n, v] : counters) {
      if (n == name) {
        v += value;
        found = true;
        break;
      }
    }
    if (!found) counters.emplace_back(name, value);
  }
  for (const auto& [name, h] : other.histograms) {
    bool found = false;
    for (auto& [n, mine] : histograms) {
      if (n == name) {
        mine.Merge(h);
        found = true;
        break;
      }
    }
    if (!found) histograms.emplace_back(name, h);
  }
}

namespace {

void AppendJsonNumber(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendHistogramJson(std::string& out, const HistogramData& h) {
  out += "{\"count\": ";
  AppendU64(out, h.count);
  out += ", \"sum\": ";
  AppendU64(out, h.sum);
  out += ", \"min\": ";
  AppendU64(out, h.count == 0 ? 0 : h.min);
  out += ", \"max\": ";
  AppendU64(out, h.max);
  out += ", \"mean\": ";
  AppendJsonNumber(out, h.Mean());
  out += ", \"p50\": ";
  AppendU64(out, h.Percentile(0.50));
  out += ", \"p95\": ";
  AppendU64(out, h.Percentile(0.95));
  out += ", \"p99\": ";
  AppendU64(out, h.Percentile(0.99));
  out += "}";
}

}  // namespace

std::string StatsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": ";
    AppendU64(out, value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": ";
    AppendHistogramJson(out, h);
  }
  out += "}}";
  return out;
}

std::string StatsSnapshot::ToCsv() const {
  std::string out = "metric,value\n";
  for (const auto& [name, value] : counters) {
    out += name + ",";
    AppendU64(out, value);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name + ".count,";
    AppendU64(out, h.count);
    out += "\n" + name + ".mean,";
    AppendJsonNumber(out, h.Mean());
    out += "\n" + name + ".p50,";
    AppendU64(out, h.Percentile(0.50));
    out += "\n" + name + ".p95,";
    AppendU64(out, h.Percentile(0.95));
    out += "\n" + name + ".p99,";
    AppendU64(out, h.Percentile(0.99));
    out += "\n" + name + ".max,";
    AppendU64(out, h.max);
    out += "\n";
  }
  return out;
}

std::string StatsRegistry::Key(std::string_view scope,
                               std::string_view name) {
  if (scope.empty()) return std::string(name);
  std::string key(scope);
  key += '.';
  key += name;
  return key;
}

Counter& StatsRegistry::GetCounter(std::string_view scope,
                                   std::string_view name) {
  MutexLock lock(mu_);
  if (!enabled_) return scratch_counter_;
  return counters_[Key(scope, name)];
}

Gauge& StatsRegistry::GetGauge(std::string_view scope,
                               std::string_view name) {
  MutexLock lock(mu_);
  if (!enabled_) return scratch_gauge_;
  return gauges_[Key(scope, name)];
}

Histogram& StatsRegistry::GetHistogram(std::string_view scope,
                                       std::string_view name) {
  MutexLock lock(mu_);
  if (!enabled_) return scratch_histogram_;
  return histograms_[Key(scope, name)];
}

StatsSnapshot StatsRegistry::Snapshot() const {
  StatsSnapshot out;
  MutexLock lock(mu_);
  if (!enabled_) return out;
  for (const auto& [name, c] : counters_) out.AddCounter(name, c.value());
  for (const auto& [name, g] : gauges_) out.AddCounter(name, g.value());
  for (const auto& [name, h] : histograms_) {
    out.AddHistogram(name, h.data());
  }
  return out;
}

void StatsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

}  // namespace obs
}  // namespace turboflux
