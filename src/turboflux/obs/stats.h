#ifndef TURBOFLUX_OBS_STATS_H_
#define TURBOFLUX_OBS_STATS_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"

// Low-overhead observability primitives (DESIGN.md §3.8).
//
// Two implementations of each metric type exist unconditionally:
//
//  * Enabled* — a real counter/gauge/log-bucketed histogram. A Counter
//    increment is a single unsynchronized word add; metrics are owned by
//    exactly one engine instance (replicas carry their own), so no atomics
//    are needed on the hot path.
//  * Noop*    — an empty type whose every member compiles away. The
//    disabled build's instrumentation sites cost zero bytes and zero
//    cycles; tests static_assert this (test_stats_overhead.cc).
//
// The build-wide aliases Counter/Gauge/Histogram select between them via
// TFX_STATS_ENABLED (set by the TFX_STATS CMake option, default ON). Both
// variants are always *defined* so the zero-cost properties of the Noop
// types are testable from any build.
//
// HistogramData — the raw bucket array — is independent of the build flag:
// StatsSnapshot uses it for export, and the harness records run-level
// latencies into it directly (gated by a runtime flag, not the compile
// flag, since the runner loop is not an engine hot path).

#ifndef TFX_STATS_ENABLED
#define TFX_STATS_ENABLED 1
#endif

namespace turboflux {
namespace obs {

inline constexpr bool kStatsCompiled = TFX_STATS_ENABLED != 0;

/// Log2-bucketed distribution of uint64 samples (latencies in nanoseconds
/// by convention; any nonnegative quantity works). Bucket 0 holds the
/// value 0; bucket i >= 1 holds [2^(i-1), 2^i). 65 buckets cover the full
/// uint64 range, so Record never clamps.
struct HistogramData {
  static constexpr size_t kNumBuckets = 65;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // valid only when count > 0
  uint64_t max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  static constexpr size_t BucketIndex(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

  /// Largest value bucket i can hold.
  static constexpr uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~uint64_t{0};
    return (uint64_t{1} << i) - 1;
  }

  void Record(uint64_t value) {
    if (count == 0 || value < min) min = value;
    if (value > max) max = value;
    ++count;
    sum += value;
    ++buckets[BucketIndex(value)];
  }

  /// Records a duration in the nanosecond convention.
  void RecordSeconds(double seconds) {
    Record(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }

  void Merge(const HistogramData& other) {
    if (other.count == 0) return;
    if (count == 0 || other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    count += other.count;
    sum += other.sum;
    for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Value at quantile p in [0, 1]: the upper bound of the bucket holding
  /// the rank-ceil(p*count) sample, clamped to the observed [min, max].
  /// 0 when empty. Bucketing makes this an over-estimate by at most 2x.
  uint64_t Percentile(double p) const;
};

class EnabledCounter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class EnabledGauge {
 public:
  void Set(uint64_t v) { value_ = v; }
  void SetMax(uint64_t v) {
    if (v > value_) value_ = v;
  }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class EnabledHistogram {
 public:
  void Record(uint64_t value) { data_.Record(value); }
  void RecordSeconds(double seconds) { data_.RecordSeconds(seconds); }
  const HistogramData& data() const { return data_; }
  void Reset() { data_ = HistogramData{}; }

 private:
  HistogramData data_;
};

class NoopCounter {
 public:
  constexpr void Inc(uint64_t = 1) {}
  constexpr uint64_t value() const { return 0; }
  constexpr void Reset() {}
};

class NoopGauge {
 public:
  constexpr void Set(uint64_t) {}
  constexpr void SetMax(uint64_t) {}
  constexpr uint64_t value() const { return 0; }
  constexpr void Reset() {}
};

class NoopHistogram {
 public:
  constexpr void Record(uint64_t) {}
  constexpr void RecordSeconds(double) {}
  const HistogramData& data() const { return kEmpty; }
  constexpr void Reset() {}

 private:
  static const HistogramData kEmpty;  // shared all-zero data
};

#if TFX_STATS_ENABLED
using Counter = EnabledCounter;
using Gauge = EnabledGauge;
using Histogram = EnabledHistogram;
#else
using Counter = NoopCounter;
using Gauge = NoopGauge;
using Histogram = NoopHistogram;
#endif

/// A point-in-time export of named metrics: flat (name, value) pairs for
/// counters/gauges and (name, HistogramData) pairs for distributions.
/// Names are dotted scopes ("engine.dcg.transitions"). Snapshots are plain
/// data — merging, JSON/CSV rendering, and lookups all work the same in
/// stats-disabled builds (values are then zero).
struct StatsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  void AddCounter(std::string name, uint64_t value) {
    counters.emplace_back(std::move(name), value);
  }
  void AddHistogram(std::string name, const HistogramData& h) {
    histograms.emplace_back(std::move(name), h);
  }

  bool Has(std::string_view name) const;
  /// Counter/gauge value by exact name; 0 when absent.
  uint64_t Value(std::string_view name) const;
  /// Histogram by exact name; nullptr when absent.
  const HistogramData* FindHistogram(std::string_view name) const;

  /// Sums counters and bucket-merges histograms by name; names only in
  /// `other` are appended.
  void MergeFrom(const StatsSnapshot& other);

  /// {"counters": {...}, "histograms": {name: {count, sum, min, max, mean,
  /// p50, p95, p99}}} — one self-contained JSON object.
  std::string ToJson() const;
  /// "metric,value" rows; histograms are exploded into name.count,
  /// name.p50, name.p95, name.p99, name.max, name.mean rows.
  std::string ToCsv() const;
};

/// Name-addressed metric store for harness-level metrics that are not on
/// an engine hot path (engines use the typed structs in engine_stats.h
/// instead — no string lookups per op). References returned by the
/// accessors stay valid for the registry's lifetime. When disabled at
/// runtime, accessors hand out shared scratch metrics whose contents are
/// meaningless and Snapshot() is empty.
///
/// Thread safety (DESIGN.md §3.9): registration, lookup, Snapshot, and
/// Reset may be called concurrently — mu_ guards the maps and the enabled
/// flag. Mutating a *metric* through a returned reference is NOT
/// synchronized by the registry (a Counter increment stays a bare word
/// add); by convention each metric is mutated from a single thread, and
/// Snapshot/Reset only run at quiescent points (batch boundaries).
class StatsRegistry {
 public:
  explicit StatsRegistry(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return enabled_;
  }
  void set_enabled(bool enabled) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    enabled_ = enabled;
  }

  Counter& GetCounter(std::string_view scope, std::string_view name)
      EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view scope, std::string_view name)
      EXCLUDES(mu_);
  Histogram& GetHistogram(std::string_view scope, std::string_view name)
      EXCLUDES(mu_);

  /// All registered metrics as "scope.name" entries, in name order.
  StatsSnapshot Snapshot() const EXCLUDES(mu_);

  void Reset() EXCLUDES(mu_);

 private:
  static std::string Key(std::string_view scope, std::string_view name);

  mutable Mutex mu_;
  bool enabled_ GUARDED_BY(mu_);
  // std::map: node-based, so references survive later insertions and can
  // safely escape the registration lock.
  std::map<std::string, Counter, std::less<>> counters_ GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_ GUARDED_BY(mu_);
  Counter scratch_counter_;
  Gauge scratch_gauge_;
  Histogram scratch_histogram_;
};

}  // namespace obs
}  // namespace turboflux

#endif  // TURBOFLUX_OBS_STATS_H_
