#include "turboflux/parallel/batch.h"

#include <algorithm>
#include <queue>

namespace turboflux {
namespace parallel {

BatchScheduler::BatchScheduler(const QueryGraph& q,
                               BatchSchedulerOptions options)
    : q_(&q), options_(options) {
  for (const QEdge& qe : q.edges()) query_edge_labels_.insert(qe.label);
  // Ball radius covering both DCG maintenance (≤ tree height hops) and
  // match enumeration (≤ query diameter hops): |V(q)| bounds both.
  radius_ = q.VertexCount();
}

BatchScheduler::Region BatchScheduler::ComputeRegion(
    const Graph& g, const UpdateOp& op,
    // tfx-lint: allow(hot-path-map)
    const std::unordered_map<VertexId, std::vector<VertexId>>& overlay)
    const {
  Region region;
  std::queue<std::pair<VertexId, size_t>> frontier;
  auto push = [&](VertexId v, size_t depth) {
    if (region.global) return;
    if (!region.vertices.insert(v).second) return;
    if (region.vertices.size() > options_.max_region_size) {
      region.global = true;
      return;
    }
    if (depth < radius_) frontier.push({v, depth});
  };
  push(op.from, 0);
  push(op.to, 0);
  while (!frontier.empty() && !region.global) {
    auto [v, depth] = frontier.front();
    frontier.pop();
    if (g.IsValidVertex(v)) {
      for (const AdjEntry& e : g.OutEdges(v)) {
        if (query_edge_labels_.count(e.label)) push(e.other, depth + 1);
      }
      for (const AdjEntry& e : g.InEdges(v)) {
        if (query_edge_labels_.count(e.label)) push(e.other, depth + 1);
      }
    }
    auto it = overlay.find(v);
    if (it != overlay.end()) {
      for (VertexId other : it->second) push(other, depth + 1);
    }
  }
  return region;
}

bool BatchScheduler::Conflicts(const Region& a, const Region& b) {
  if (a.global || b.global) return true;
  const Region& small = a.vertices.size() <= b.vertices.size() ? a : b;
  const Region& large = (&small == &a) ? b : a;
  for (VertexId v : small.vertices) {
    if (large.vertices.count(v)) return true;
  }
  return false;
}

std::vector<std::vector<size_t>> BatchScheduler::Partition(
    const Graph& g, std::span<const UpdateOp> ops) const {
  // Overlay adjacency of every edge the batch touches (inserts may not be
  // in g yet; regions must see them to stay conservative across the whole
  // window). Only query-labeled edges can influence the DCG, so the rest
  // are skipped. Per-batch scratch. tfx-lint: allow(hot-path-map)
  std::unordered_map<VertexId, std::vector<VertexId>> overlay;
  for (const UpdateOp& op : ops) {
    if (!query_edge_labels_.count(op.label)) continue;
    overlay[op.from].push_back(op.to);
    overlay[op.to].push_back(op.from);
  }

  std::vector<Region> regions;
  regions.reserve(ops.size());
  for (const UpdateOp& op : ops) {
    regions.push_back(ComputeRegion(g, op, overlay));
  }

  // Greedy chain scheduling: op j goes one sub-batch past the last earlier
  // op it conflicts with. Conflicting pairs therefore never share a
  // sub-batch and keep their stream order across sub-batches.
  std::vector<size_t> level(ops.size(), 0);
  size_t max_level = 0;
  for (size_t j = 0; j < ops.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (level[i] >= level[j] && Conflicts(regions[i], regions[j])) {
        level[j] = level[i] + 1;
      }
    }
    max_level = std::max(max_level, level[j]);
  }

  std::vector<std::vector<size_t>> sub_batches(ops.empty() ? 0
                                                           : max_level + 1);
  for (size_t j = 0; j < ops.size(); ++j) {
    sub_batches[level[j]].push_back(j);
  }
  if (stats_ != nullptr) {
    stats_->partitions.Inc();
    stats_->scheduled_ops.Inc(ops.size());
    stats_->sub_batches.Inc(sub_batches.size());
    for (const Region& r : regions) {
      if (r.global) stats_->global_region_ops.Inc();
    }
  }
  return sub_batches;
}

}  // namespace parallel
}  // namespace turboflux
