#ifndef TURBOFLUX_PARALLEL_BATCH_H_
#define TURBOFLUX_PARALLEL_BATCH_H_

#include <cstddef>
#include <span>
#include <unordered_map>  // tfx-lint: allow(hot-path-map): per-batch scratch
#include <unordered_set>
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/obs/engine_stats.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {
namespace parallel {

struct BatchSchedulerOptions {
  /// Influence regions larger than this are not materialized; the op is
  /// treated as conflicting with every other op (it runs in a sub-batch
  /// ordered against everything), trading parallelism for bounded
  /// scheduling cost on hub-heavy graphs.
  size_t max_region_size = 4096;
};

/// Groups a window of consecutive update operations into conflict-free
/// sub-batches for the parallel executor.
///
/// The influence region of an update (v, l, v') is every data vertex the
/// engine can read or write while applying it: DCG maintenance walks at
/// most tree-height hops up/down from the endpoints and SubgraphSearch
/// enumerates matches spanning at most the query diameter, so a ball of
/// radius |V(q)| around {v, v'} over edges whose label occurs in the query
/// (the query's label index) covers both. The BFS runs on the pre-batch
/// graph plus an overlay of every edge mentioned by the batch, which is an
/// adjacency superset of every intermediate graph state — deletions only
/// shrink reachability — so regions are conservative.
///
/// Two ops conflict iff their regions intersect (ops sharing an endpoint
/// vertex always conflict). Scheduling preserves stream order between
/// conflicting ops: an op lands in the sub-batch right after the last
/// earlier op it conflicts with, so e.g. a deletion of an edge inserted
/// earlier in the window is ordered after that insertion. Within a
/// sub-batch no two ops conflict, hence they commute: applying them in any
/// order yields the same DCG state and the same per-op match sets.
class BatchScheduler {
 public:
  explicit BatchScheduler(const QueryGraph& q,
                          BatchSchedulerOptions options = {});

  /// Partitions ops[0..n) into ordered sub-batches of indices. Every index
  /// appears exactly once; within a sub-batch indices ascend; conflicting
  /// ops are always in distinct sub-batches with the earlier op first.
  ///
  /// Thread safety (DESIGN.md §3.9): Partition is logically const and
  /// holds no lock; it is called from the primary thread only, before the
  /// workers start. The bound SchedulerStats pointer is the one mutable
  /// path — set_stats must not race with Partition.
  [[nodiscard]] std::vector<std::vector<size_t>> Partition(
      const Graph& g, std::span<const UpdateOp> ops) const;

  /// Binds scheduling counters bumped by Partition (nullptr detaches). An
  /// observer binding like Dcg::set_stats; Partition stays const.
  void set_stats(obs::SchedulerStats* stats) { stats_ = stats; }

 private:
  struct Region {
    std::unordered_set<VertexId> vertices;
    bool global = false;  // region exceeded max_region_size
  };

  Region ComputeRegion(const Graph& g, const UpdateOp& op,
                       // tfx-lint: allow(hot-path-map)
                       const std::unordered_map<VertexId,
                                                std::vector<VertexId>>&
                           overlay) const;

  static bool Conflicts(const Region& a, const Region& b);

  const QueryGraph* q_;
  BatchSchedulerOptions options_;
  std::unordered_set<EdgeLabel> query_edge_labels_;
  size_t radius_;
  obs::SchedulerStats* stats_ = nullptr;  // not owned; see set_stats
};

}  // namespace parallel
}  // namespace turboflux

#endif  // TURBOFLUX_PARALLEL_BATCH_H_
