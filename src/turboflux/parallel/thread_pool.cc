#include "turboflux/parallel/thread_pool.h"

#include <exception>
#include <utility>

namespace turboflux {
namespace parallel {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
  // Workers drain the queue before exiting; with zero workers any task
  // still queued was already run inline by Submit.
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // inline execution for the degenerate pool
    return future;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size() - 1);
  for (size_t i = 1; i < tasks.size(); ++i) {
    futures.push_back(Submit(std::move(tasks[i])));
  }
  std::exception_ptr first_error;
  try {
    tasks[0]();
  } catch (...) {
    first_error = std::current_exception();
  }
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace parallel
}  // namespace turboflux
