#ifndef TURBOFLUX_PARALLEL_THREAD_POOL_H_
#define TURBOFLUX_PARALLEL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"

namespace turboflux {
namespace parallel {

/// A small fixed-size thread pool for the parallel batch executor.
///
///  * Submit enqueues a task and returns a future; exceptions thrown by the
///    task are captured and rethrown from future.get().
///  * RunAll runs task[0] on the calling thread and the rest on workers,
///    waits for every task, and rethrows the first captured exception —
///    the batch executor's one-barrier-per-phase primitive.
///  * The destructor finishes every already-queued task before joining
///    (shutdown never drops work).
///
/// A pool of size 0 is valid: Submit and RunAll then execute inline on the
/// calling thread, which keeps `--threads=1` free of any thread machinery.
///
/// Lock discipline (verified by -Wthread-safety, DESIGN.md §3.9): mu_
/// guards the task queue and the stop flag; tasks themselves always run
/// with mu_ released, so a task may Submit recursively without deadlock.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  std::future<void> Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Runs all tasks to completion (task[0] inline on the caller when the
  /// pool has workers to run the rest). Rethrows the first exception.
  void RunAll(std::vector<std::function<void()>> tasks) EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  // Immutable after the constructor returns; joined by the destructor.
  std::vector<std::thread> workers_;
};

}  // namespace parallel
}  // namespace turboflux

#endif  // TURBOFLUX_PARALLEL_THREAD_POOL_H_
