#include "turboflux/query/nec.h"

#include <map>
#include <tuple>

namespace turboflux {

size_t NecAnalysis::RemovableVertices() const {
  size_t removable = 0;
  for (const NecClass& c : classes) removable += c.members.size() - 1;
  return removable;
}

NecAnalysis ComputeNec(const QueryGraph& q) {
  NecAnalysis out;
  // Key of a degree-one vertex: (neighbour, edge label, direction,
  // label-set). Vertices sharing a key are interchangeable.
  using Key = std::tuple<QVertexId, EdgeLabel, bool, std::vector<Label>>;
  std::map<Key, std::vector<QVertexId>> groups;

  for (QVertexId u = 0; u < q.VertexCount(); ++u) {
    if (q.Degree(u) != 1) continue;
    QVertexId neighbor;
    EdgeLabel label;
    bool incoming;
    if (!q.InEdgeIds(u).empty()) {
      const QEdge& e = q.edge(q.InEdgeIds(u)[0]);
      if (e.from == u) continue;  // self-loop: degree 1 but not a leaf
      neighbor = e.from;
      label = e.label;
      incoming = true;
    } else {
      const QEdge& e = q.edge(q.OutEdgeIds(u)[0]);
      if (e.to == u) continue;
      neighbor = e.to;
      label = e.label;
      incoming = false;
    }
    groups[{neighbor, label, incoming, q.labels(u).labels()}].push_back(u);
  }
  for (auto& [key, members] : groups) {
    if (members.size() >= 2) out.classes.push_back({std::move(members)});
  }
  return out;
}

CompressedQuery CompressQuery(const QueryGraph& q, const NecAnalysis& nec) {
  // drop[u] = true for non-representative class members.
  std::vector<bool> drop(q.VertexCount(), false);
  std::vector<uint32_t> mult(q.VertexCount(), 1);
  for (const NecClass& c : nec.classes) {
    QVertexId rep = c.members.front();
    mult[rep] = static_cast<uint32_t>(c.members.size());
    for (size_t i = 1; i < c.members.size(); ++i) drop[c.members[i]] = true;
  }

  CompressedQuery out;
  std::vector<QVertexId> new_id(q.VertexCount(), kNullQVertex);
  for (QVertexId u = 0; u < q.VertexCount(); ++u) {
    if (drop[u]) continue;
    new_id[u] = out.query.AddVertex(q.labels(u));
    out.multiplicity.push_back(mult[u]);
    out.original_of.push_back(u);
  }
  for (const QEdge& e : q.edges()) {
    if (drop[e.from] || drop[e.to]) continue;
    out.query.AddEdge(new_id[e.from], e.label, new_id[e.to]);
  }
  return out;
}

}  // namespace turboflux
