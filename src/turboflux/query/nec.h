#ifndef TURBOFLUX_QUERY_NEC_H_
#define TURBOFLUX_QUERY_NEC_H_

#include <cstdint>
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

/// Neighbour equivalence classes (NEC) of a query graph, the query
/// compression of TurboISO [14] that Appendix B.5 applies to SJ-Tree.
/// Two *degree-one* query vertices are equivalent when they have the same
/// label set and are attached to the same neighbour by an edge of the
/// same label and direction; the members of a class are interchangeable
/// in any match. (TurboISO generalizes this beyond leaves; the leaf form
/// captures almost all compression that real query sets admit, which is
/// also what Appendix B.5 observes — only ~9.5% of tree queries compress
/// at all.)
struct NecClass {
  /// Equivalent query vertices, at least 2 of them.
  std::vector<QVertexId> members;
};

struct NecAnalysis {
  std::vector<NecClass> classes;

  /// True iff at least one class has >= 2 members (the query compresses).
  bool compressible() const { return !classes.empty(); }

  /// Query vertices removable by compression: sum over classes of
  /// (|class| - 1).
  size_t RemovableVertices() const;
};

/// Computes the leaf NEC classes of q.
NecAnalysis ComputeNec(const QueryGraph& q);

/// Builds the compressed query: one representative per NEC class, other
/// members dropped. `multiplicity[u]` (indexed by *compressed* vertex id)
/// gives how many original vertices the compressed vertex stands for.
/// Under graph homomorphism, every match of the compressed query
/// corresponds to a set of matches of the original query; for a match
/// that binds representative r to data vertex v with c(v) candidate
/// bindings, the expansion factor of that class is c(v)^(multiplicity-1).
struct CompressedQuery {
  QueryGraph query;
  std::vector<uint32_t> multiplicity;        // per compressed vertex
  std::vector<QVertexId> original_of;        // compressed id -> original id
};

CompressedQuery CompressQuery(const QueryGraph& q, const NecAnalysis& nec);

}  // namespace turboflux

#endif  // TURBOFLUX_QUERY_NEC_H_
