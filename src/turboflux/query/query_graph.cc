#include "turboflux/query/query_graph.h"

#include <cassert>
#include <deque>

namespace turboflux {

QVertexId QueryGraph::AddVertex(LabelSet labels) {
  assert(vertex_labels_.size() < kMaxQueryVertices);
  QVertexId id = static_cast<QVertexId>(vertex_labels_.size());
  vertex_labels_.push_back(std::move(labels));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

QEdgeId QueryGraph::AddEdge(QVertexId from, EdgeLabel label, QVertexId to) {
  assert(from < VertexCount() && to < VertexCount());
  for (QEdgeId e : out_edges_[from]) {
    if (edges_[e].to == to && edges_[e].label == label) return kNullQEdge;
  }
  QEdgeId id = static_cast<QEdgeId>(edges_.size());
  edges_.push_back({id, from, label, to});
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  return id;
}

bool QueryGraph::IsConnected() const {
  if (VertexCount() == 0) return false;
  std::vector<bool> seen(VertexCount(), false);
  std::deque<QVertexId> queue = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!queue.empty()) {
    QVertexId u = queue.front();
    queue.pop_front();
    auto visit = [&](QVertexId w) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        queue.push_back(w);
      }
    };
    for (QEdgeId e : out_edges_[u]) visit(edges_[e].to);
    for (QEdgeId e : in_edges_[u]) visit(edges_[e].from);
  }
  return visited == VertexCount();
}

size_t QueryGraph::UndirectedDiameter() const {
  size_t diameter = 0;
  const size_t n = VertexCount();
  for (QVertexId s = 0; s < n; ++s) {
    std::vector<size_t> dist(n, SIZE_MAX);
    std::deque<QVertexId> queue = {s};
    dist[s] = 0;
    while (!queue.empty()) {
      QVertexId u = queue.front();
      queue.pop_front();
      auto visit = [&](QVertexId w) {
        if (dist[w] == SIZE_MAX) {
          dist[w] = dist[u] + 1;
          if (dist[w] > diameter) diameter = dist[w];
          queue.push_back(w);
        }
      };
      for (QEdgeId e : out_edges_[u]) visit(edges_[e].to);
      for (QEdgeId e : in_edges_[u]) visit(edges_[e].from);
    }
  }
  return diameter;
}

std::string QueryGraph::ToString() const {
  std::string out;
  for (QVertexId u = 0; u < VertexCount(); ++u) {
    out += "u";
    out += std::to_string(u);
    out += vertex_labels_[u].ToString();
    out += " ";
  }
  for (const QEdge& e : edges_) {
    out += "(u";
    out += std::to_string(e.from);
    out += "-";
    out += std::to_string(e.label);
    out += "->u";
    out += std::to_string(e.to);
    out += ") ";
  }
  return out;
}

void SerializeQueryGraph(std::string& out, const QueryGraph& q) {
  bin::PutU32(out, static_cast<uint32_t>(q.VertexCount()));
  for (QVertexId u = 0; u < q.VertexCount(); ++u) {
    const std::vector<Label>& ls = q.labels(u).labels();
    bin::PutU32(out, static_cast<uint32_t>(ls.size()));
    for (Label l : ls) bin::PutU32(out, l);
  }
  bin::PutU32(out, static_cast<uint32_t>(q.EdgeCount()));
  for (const QEdge& e : q.edges()) {
    bin::PutU32(out, e.from);
    bin::PutU32(out, e.label);
    bin::PutU32(out, e.to);
  }
}

Status DeserializeQueryGraph(bin::Reader& in, QueryGraph* q) {
  // Generous element cap: rejecting early keeps corrupted length fields
  // from driving large allocations.
  constexpr uint64_t kMaxElems = uint64_t{1} << 32;
  uint32_t nq = 0;
  if (!in.GetU32(&nq) || nq == 0 || nq > kMaxQueryVertices) {
    return Status::Corruption("bad query vertex count");
  }
  for (QVertexId u = 0; u < nq; ++u) {
    uint32_t nl = 0;
    if (!in.GetLength(&nl, kMaxElems)) {
      return Status::Corruption("bad query vertex label count");
    }
    std::vector<Label> ls(nl);
    for (uint32_t i = 0; i < nl; ++i) {
      if (!in.GetU32(&ls[i])) {
        return Status::Corruption("truncated query vertex labels");
      }
    }
    q->AddVertex(LabelSet(std::move(ls)));
  }
  uint32_t ne = 0;
  if (!in.GetLength(&ne, kMaxElems)) {
    return Status::Corruption("bad query edge count");
  }
  for (QEdgeId e = 0; e < ne; ++e) {
    uint32_t from = 0, label = 0, to = 0;
    if (!in.GetU32(&from) || !in.GetU32(&label) || !in.GetU32(&to)) {
      return Status::Corruption("truncated query edge");
    }
    if (from >= nq || to >= nq || q->AddEdge(from, label, to) != e) {
      return Status::Corruption("invalid or duplicate query edge");
    }
  }
  if (!in.exhausted() || q->EdgeCount() == 0 || !q->IsConnected()) {
    return Status::Corruption("malformed query section");
  }
  return Status::Ok();
}

}  // namespace turboflux
