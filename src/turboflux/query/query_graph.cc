#include "turboflux/query/query_graph.h"

#include <cassert>
#include <deque>

namespace turboflux {

QVertexId QueryGraph::AddVertex(LabelSet labels) {
  assert(vertex_labels_.size() < kMaxQueryVertices);
  QVertexId id = static_cast<QVertexId>(vertex_labels_.size());
  vertex_labels_.push_back(std::move(labels));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

QEdgeId QueryGraph::AddEdge(QVertexId from, EdgeLabel label, QVertexId to) {
  assert(from < VertexCount() && to < VertexCount());
  for (QEdgeId e : out_edges_[from]) {
    if (edges_[e].to == to && edges_[e].label == label) return kNullQEdge;
  }
  QEdgeId id = static_cast<QEdgeId>(edges_.size());
  edges_.push_back({id, from, label, to});
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  return id;
}

bool QueryGraph::IsConnected() const {
  if (VertexCount() == 0) return false;
  std::vector<bool> seen(VertexCount(), false);
  std::deque<QVertexId> queue = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!queue.empty()) {
    QVertexId u = queue.front();
    queue.pop_front();
    auto visit = [&](QVertexId w) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        queue.push_back(w);
      }
    };
    for (QEdgeId e : out_edges_[u]) visit(edges_[e].to);
    for (QEdgeId e : in_edges_[u]) visit(edges_[e].from);
  }
  return visited == VertexCount();
}

size_t QueryGraph::UndirectedDiameter() const {
  size_t diameter = 0;
  const size_t n = VertexCount();
  for (QVertexId s = 0; s < n; ++s) {
    std::vector<size_t> dist(n, SIZE_MAX);
    std::deque<QVertexId> queue = {s};
    dist[s] = 0;
    while (!queue.empty()) {
      QVertexId u = queue.front();
      queue.pop_front();
      auto visit = [&](QVertexId w) {
        if (dist[w] == SIZE_MAX) {
          dist[w] = dist[u] + 1;
          if (dist[w] > diameter) diameter = dist[w];
          queue.push_back(w);
        }
      };
      for (QEdgeId e : out_edges_[u]) visit(edges_[e].to);
      for (QEdgeId e : in_edges_[u]) visit(edges_[e].from);
    }
  }
  return diameter;
}

std::string QueryGraph::ToString() const {
  std::string out;
  for (QVertexId u = 0; u < VertexCount(); ++u) {
    out += "u";
    out += std::to_string(u);
    out += vertex_labels_[u].ToString();
    out += " ";
  }
  for (const QEdge& e : edges_) {
    out += "(u";
    out += std::to_string(e.from);
    out += "-";
    out += std::to_string(e.label);
    out += "->u";
    out += std::to_string(e.to);
    out += ") ";
  }
  return out;
}

}  // namespace turboflux
