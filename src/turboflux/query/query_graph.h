#ifndef TURBOFLUX_QUERY_QUERY_GRAPH_H_
#define TURBOFLUX_QUERY_QUERY_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "turboflux/common/label_set.h"
#include "turboflux/common/types.h"
#include "turboflux/graph/graph.h"

namespace turboflux {

/// A directed, labeled query edge. `id` doubles as the total order used for
/// duplicate elimination (Algorithm 7, IsJoinable).
struct QEdge {
  QEdgeId id;
  QVertexId from;
  EdgeLabel label;
  QVertexId to;
};

/// A query graph q (at most kMaxQueryVertices vertices). Query vertices
/// carry label sets; an empty label set is a wildcard (matches every data
/// vertex), which is how the unlabeled Netflow queries are expressed.
class QueryGraph {
 public:
  QueryGraph() = default;

  /// Adds a query vertex; returns its id. Asserts below kMaxQueryVertices.
  QVertexId AddVertex(LabelSet labels);

  /// Adds a directed query edge; returns its id. Duplicate
  /// (from, label, to) edges are rejected (returns kNullQEdge).
  QEdgeId AddEdge(QVertexId from, EdgeLabel label, QVertexId to);

  size_t VertexCount() const { return vertex_labels_.size(); }
  size_t EdgeCount() const { return edges_.size(); }

  const LabelSet& labels(QVertexId u) const { return vertex_labels_[u]; }
  const QEdge& edge(QEdgeId e) const { return edges_[e]; }
  const std::vector<QEdge>& edges() const { return edges_; }

  /// Ids of edges leaving / entering u.
  const std::vector<QEdgeId>& OutEdgeIds(QVertexId u) const {
    return out_edges_[u];
  }
  const std::vector<QEdgeId>& InEdgeIds(QVertexId u) const {
    return in_edges_[u];
  }

  /// Undirected degree of u.
  size_t Degree(QVertexId u) const {
    return out_edges_[u].size() + in_edges_[u].size();
  }

  /// True iff the query is weakly connected (every continuous-matching
  /// engine in this repository requires a connected query).
  bool IsConnected() const;

  /// Length of the longest shortest path between any two query vertices,
  /// treating q as undirected. IncIsoMat bounds its affected subgraph by
  /// this (Section 2.2).
  size_t UndirectedDiameter() const;

  /// True iff query vertex u matches data vertex v: L(u) ⊆ L(v)
  /// (Definition 1).
  bool VertexMatches(QVertexId u, const Graph& g, VertexId v) const {
    return vertex_labels_[u].IsSubsetOf(g.labels(v));
  }

  /// True iff query edge e matches the data edge (v, l, v'):
  /// label equality plus both endpoint label-subset tests.
  bool EdgeMatches(const QEdge& e, const Graph& g, VertexId v, EdgeLabel l,
                   VertexId v2) const {
    return e.label == l && VertexMatches(e.from, g, v) &&
           VertexMatches(e.to, g, v2);
  }

  std::string ToString() const;

 private:
  std::vector<LabelSet> vertex_labels_;
  std::vector<QEdge> edges_;
  std::vector<std::vector<QEdgeId>> out_edges_;
  std::vector<std::vector<QEdgeId>> in_edges_;
};

/// Appends the checkpoint binary encoding of `q` to `out`: vertex count,
/// per-vertex label lists, edge count, per-edge (from, label, to) triples —
/// exactly the bytes the engine snapshots have always used for their query
/// section (shared by the TurboFlux and SymBi checkpoints).
void SerializeQueryGraph(std::string& out, const QueryGraph& q);

/// Decodes what SerializeQueryGraph wrote into `*q` (which must be empty),
/// consuming `in` to exhaustion. Every id is bounds-checked and the result
/// must be a connected query with at least one edge; malformed input yields
/// kCorruption with `*q` in an unspecified state.
[[nodiscard]] Status DeserializeQueryGraph(bin::Reader& in, QueryGraph* q);

}  // namespace turboflux

#endif  // TURBOFLUX_QUERY_QUERY_GRAPH_H_
