#include "turboflux/query/query_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace turboflux {

std::optional<QueryGraph> ReadQuery(std::istream& in) {
  QueryGraph q;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "v") {
      QVertexId id;
      if (!(ls >> id)) return std::nullopt;
      if (id != q.VertexCount()) return std::nullopt;  // ids must be dense
      std::vector<Label> labels;
      Label l;
      while (ls >> l) labels.push_back(l);
      q.AddVertex(LabelSet(std::move(labels)));
    } else if (kind == "e") {
      QVertexId from, to;
      EdgeLabel label;
      if (!(ls >> from >> label >> to)) return std::nullopt;
      if (from >= q.VertexCount() || to >= q.VertexCount()) {
        return std::nullopt;
      }
      q.AddEdge(from, label, to);
    } else {
      return std::nullopt;
    }
  }
  return q;
}

std::optional<QueryGraph> ReadQueryFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadQuery(in);
}

void WriteQuery(const QueryGraph& q, std::ostream& out) {
  for (QVertexId u = 0; u < q.VertexCount(); ++u) {
    out << "v " << u;
    for (Label l : q.labels(u).labels()) out << " " << l;
    out << "\n";
  }
  for (const QEdge& e : q.edges()) {
    out << "e " << e.from << " " << e.label << " " << e.to << "\n";
  }
}

bool WriteQueryToFile(const QueryGraph& q, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteQuery(q, out);
  return static_cast<bool>(out);
}

}  // namespace turboflux
