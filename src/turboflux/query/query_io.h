#ifndef TURBOFLUX_QUERY_QUERY_IO_H_
#define TURBOFLUX_QUERY_QUERY_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "turboflux/query/query_graph.h"

namespace turboflux {

/// Text format for query graphs, identical to the data-graph format
/// (`v <id> [label...]` then `e <from> <label> <to>`); a query vertex
/// with no labels is a wildcard. Blank lines and `#` comments are
/// ignored. Readers return std::nullopt on malformed input.

std::optional<QueryGraph> ReadQuery(std::istream& in);
std::optional<QueryGraph> ReadQueryFromFile(const std::string& path);
void WriteQuery(const QueryGraph& q, std::ostream& out);
bool WriteQueryToFile(const QueryGraph& q, const std::string& path);

}  // namespace turboflux

#endif  // TURBOFLUX_QUERY_QUERY_IO_H_
