#include "turboflux/query/query_stats.h"

#include <cassert>

namespace turboflux {

QueryStats ComputeQueryStats(const QueryGraph& q, const Graph& g) {
  QueryStats stats;
  stats.edge_matches.assign(q.EdgeCount(), 0);
  stats.vertex_matches.assign(q.VertexCount(), 0);
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    for (QVertexId u = 0; u < q.VertexCount(); ++u) {
      if (q.VertexMatches(u, g, v)) ++stats.vertex_matches[u];
    }
    for (const AdjEntry& e : g.OutEdges(v)) {
      for (const QEdge& qe : q.edges()) {
        if (q.EdgeMatches(qe, g, v, e.label, e.other)) {
          ++stats.edge_matches[qe.id];
        }
      }
    }
  }
  return stats;
}

QVertexId ChooseStartQVertex(const QueryGraph& q, const QueryStats& stats) {
  assert(q.EdgeCount() > 0);
  // 1. Query edge with the smallest number of matching data edges.
  QEdgeId best_edge = 0;
  for (QEdgeId e = 1; e < q.EdgeCount(); ++e) {
    if (stats.edge_matches[e] < stats.edge_matches[best_edge]) best_edge = e;
  }
  const QEdge& qe = q.edge(best_edge);
  QVertexId a = qe.from;
  QVertexId b = qe.to;
  if (a == b) return a;  // self-loop query edge
  // 2. Endpoint with fewer matching data vertices.
  if (stats.vertex_matches[a] != stats.vertex_matches[b]) {
    return stats.vertex_matches[a] < stats.vertex_matches[b] ? a : b;
  }
  // 3. Tie: larger query degree, then smaller id for determinism.
  if (q.Degree(a) != q.Degree(b)) return q.Degree(a) > q.Degree(b) ? a : b;
  return a < b ? a : b;
}

}  // namespace turboflux
