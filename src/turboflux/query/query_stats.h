#ifndef TURBOFLUX_QUERY_QUERY_STATS_H_
#define TURBOFLUX_QUERY_QUERY_STATS_H_

#include <cstdint>
#include <vector>

#include "turboflux/graph/graph.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {

/// Cardinality statistics of a query against a data graph, computed with a
/// single scan of the data graph: for each query edge, how many data edges
/// match it; for each query vertex, how many data vertices match it.
/// Used by ChooseStartQVertex and TransformToTree (Section 4.1) and by the
/// SJ-Tree decomposition order.
struct QueryStats {
  std::vector<uint64_t> edge_matches;    // indexed by QEdgeId
  std::vector<uint64_t> vertex_matches;  // indexed by QVertexId
};

QueryStats ComputeQueryStats(const QueryGraph& q, const Graph& g);

/// Selects the starting query vertex u_s (Section 4.1): pick the query
/// edge with the fewest matching data edges; between its endpoints, pick
/// the vertex with fewer matching data vertices; break ties by larger
/// query degree, then by smaller id.
QVertexId ChooseStartQVertex(const QueryGraph& q, const QueryStats& stats);

}  // namespace turboflux

#endif  // TURBOFLUX_QUERY_QUERY_STATS_H_
