#include "turboflux/query/query_tree.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace turboflux {

QueryTree QueryTree::Build(const QueryGraph& q, QVertexId root,
                           const QueryStats& stats) {
  assert(root < q.VertexCount());
  assert(q.IsConnected());
  const size_t n = q.VertexCount();

  QueryTree t;
  t.q_ = &q;
  t.root_ = root;
  t.parent_.assign(n, ParentEdge{});
  t.children_.assign(n, {});
  t.children_mask_.assign(n, 0);
  t.is_tree_edge_.assign(q.EdgeCount(), false);
  t.incident_non_tree_.assign(n, {});
  t.depth_.assign(n, 0);

  std::vector<bool> in_tree(n, false);
  in_tree[root] = true;
  size_t tree_size = 1;

  // Greedily grow the most selective tree: repeatedly pick the query edge
  // with the fewest matching data edges that connects the tree to a new
  // vertex (Section 4.1, TransformToTree).
  while (tree_size < n) {
    QEdgeId best = kNullQEdge;
    for (const QEdge& e : q.edges()) {
      bool connects = in_tree[e.from] != in_tree[e.to];
      if (!connects) continue;
      if (best == kNullQEdge ||
          stats.edge_matches[e.id] < stats.edge_matches[best]) {
        best = e.id;
      }
    }
    assert(best != kNullQEdge);  // guaranteed by connectivity
    const QEdge& e = q.edge(best);
    bool forward = in_tree[e.from];  // parent is the endpoint already in tree
    QVertexId parent = forward ? e.from : e.to;
    QVertexId child = forward ? e.to : e.from;
    t.parent_[child] = {parent, e.label, forward, e.id};
    t.children_[parent].push_back(child);
    t.children_mask_[parent] |= (uint64_t{1} << child);
    t.depth_[child] = t.depth_[parent] + 1;
    t.is_tree_edge_[e.id] = true;
    in_tree[child] = true;
    ++tree_size;
  }

  for (const QEdge& e : q.edges()) {
    if (!t.is_tree_edge_[e.id]) {
      t.non_tree_edges_.push_back(e.id);
      t.incident_non_tree_[e.from].push_back(e.id);
      if (e.to != e.from) t.incident_non_tree_[e.to].push_back(e.id);
    }
  }

  // BFS order (parents before children) for matching-order construction.
  std::deque<QVertexId> queue = {root};
  while (!queue.empty()) {
    QVertexId u = queue.front();
    queue.pop_front();
    t.bfs_order_.push_back(u);
    for (QVertexId c : t.children_[u]) queue.push_back(c);
  }
  return t;
}

std::string QueryTree::ToString() const {
  std::string out = "root=u";
  out += std::to_string(root_);
  out += " ";
  for (QVertexId u = 0; u < VertexCount(); ++u) {
    if (IsRoot(u)) continue;
    const ParentEdge& pe = parent_[u];
    out += "u";
    out += std::to_string(pe.parent);
    out += pe.forward ? "-" : "<-";
    out += std::to_string(pe.label);
    out += pe.forward ? "->" : "-";
    out += "u";
    out += std::to_string(u);
    out += " ";
  }
  if (!non_tree_edges_.empty()) {
    out += "nontree:";
    for (QEdgeId e : non_tree_edges_) {
      out += " e";
      out += std::to_string(e);
    }
  }
  return out;
}

}  // namespace turboflux
