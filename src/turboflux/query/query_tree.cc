#include "turboflux/query/query_tree.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace turboflux {

namespace {

/// Derives everything a QueryTree holds beyond (q, root, parent edges):
/// children lists/masks, depths, BFS order, and non-tree edge indexes.
/// Returns false unless the parent edges describe a spanning tree (every
/// vertex reaches the root, no cycles).
bool FinalizeTree(QueryTree& t, const QueryGraph& q, QVertexId root,
                  std::vector<QueryTree::ParentEdge> parents,
                  // private-member accessors, filled by the caller
                  std::vector<QueryTree::ParentEdge>& parent_out,
                  std::vector<std::vector<QVertexId>>& children,
                  std::vector<uint64_t>& children_mask,
                  std::vector<QVertexId>& bfs_order,
                  std::vector<QEdgeId>& non_tree_edges,
                  std::vector<bool>& is_tree_edge,
                  std::vector<std::vector<QEdgeId>>& incident_non_tree,
                  std::vector<size_t>& depth) {
  const size_t n = q.VertexCount();
  parent_out = std::move(parents);
  children.assign(n, {});
  children_mask.assign(n, 0);
  is_tree_edge.assign(q.EdgeCount(), false);
  incident_non_tree.assign(n, {});
  depth.assign(n, 0);
  bfs_order.clear();
  non_tree_edges.clear();

  for (QVertexId u = 0; u < n; ++u) {
    if (u == root) continue;
    const QueryTree::ParentEdge& pe = parent_out[u];
    if (pe.parent >= n || pe.qedge >= q.EdgeCount()) return false;
    children[pe.parent].push_back(u);
    children_mask[pe.parent] |= (uint64_t{1} << u);
    is_tree_edge[pe.qedge] = true;
  }

  // BFS order (parents before children); also validates reachability —
  // visiting all n vertices from the root proves the parent relation is a
  // spanning tree.
  std::deque<QVertexId> queue = {root};
  while (!queue.empty()) {
    QVertexId u = queue.front();
    queue.pop_front();
    bfs_order.push_back(u);
    for (QVertexId c : children[u]) {
      depth[c] = depth[u] + 1;
      queue.push_back(c);
    }
  }
  if (bfs_order.size() != n) return false;

  for (const QEdge& e : q.edges()) {
    if (!is_tree_edge[e.id]) {
      non_tree_edges.push_back(e.id);
      incident_non_tree[e.from].push_back(e.id);
      if (e.to != e.from) incident_non_tree[e.to].push_back(e.id);
    }
  }
  (void)t;
  return true;
}

}  // namespace

QueryTree QueryTree::Build(const QueryGraph& q, QVertexId root,
                           const QueryStats& stats) {
  assert(root < q.VertexCount());
  assert(q.IsConnected());
  const size_t n = q.VertexCount();

  std::vector<ParentEdge> parents(n);
  std::vector<bool> in_tree(n, false);
  in_tree[root] = true;
  size_t tree_size = 1;

  // Greedily grow the most selective tree: repeatedly pick the query edge
  // with the fewest matching data edges that connects the tree to a new
  // vertex (Section 4.1, TransformToTree).
  while (tree_size < n) {
    QEdgeId best = kNullQEdge;
    for (const QEdge& e : q.edges()) {
      bool connects = in_tree[e.from] != in_tree[e.to];
      if (!connects) continue;
      if (best == kNullQEdge ||
          stats.edge_matches[e.id] < stats.edge_matches[best]) {
        best = e.id;
      }
    }
    assert(best != kNullQEdge);  // guaranteed by connectivity
    const QEdge& e = q.edge(best);
    bool forward = in_tree[e.from];  // parent is the endpoint already in tree
    QVertexId parent = forward ? e.from : e.to;
    QVertexId child = forward ? e.to : e.from;
    parents[child] = {parent, e.label, forward, e.id};
    in_tree[child] = true;
    ++tree_size;
  }

  QueryTree t;
  t.q_ = &q;
  t.root_ = root;
  bool ok = FinalizeTree(t, q, root, std::move(parents), t.parent_,
                         t.children_, t.children_mask_, t.bfs_order_,
                         t.non_tree_edges_, t.is_tree_edge_,
                         t.incident_non_tree_, t.depth_);
  assert(ok);
  (void)ok;
  return t;
}

bool QueryTree::FromParentEdges(const QueryGraph& q, QVertexId root,
                                const std::vector<ParentEdge>& parents,
                                QueryTree* out) {
  const size_t n = q.VertexCount();
  if (root >= n || parents.size() != n) return false;
  // Every non-root parent edge must be a real query edge with the
  // recorded endpoints, label, and orientation.
  for (QVertexId u = 0; u < n; ++u) {
    if (u == root) continue;
    const ParentEdge& pe = parents[u];
    if (pe.parent >= n || pe.qedge >= q.EdgeCount()) return false;
    const QEdge& e = q.edge(pe.qedge);
    QVertexId expect_from = pe.forward ? pe.parent : u;
    QVertexId expect_to = pe.forward ? u : pe.parent;
    if (e.from != expect_from || e.to != expect_to || e.label != pe.label) {
      return false;
    }
  }
  QueryTree t;
  t.q_ = &q;
  t.root_ = root;
  if (!FinalizeTree(t, q, root, parents, t.parent_, t.children_,
                    t.children_mask_, t.bfs_order_, t.non_tree_edges_,
                    t.is_tree_edge_, t.incident_non_tree_, t.depth_)) {
    return false;
  }
  *out = std::move(t);
  return true;
}

std::string QueryTree::ToString() const {
  std::string out = "root=u";
  out += std::to_string(root_);
  out += " ";
  for (QVertexId u = 0; u < VertexCount(); ++u) {
    if (IsRoot(u)) continue;
    const ParentEdge& pe = parent_[u];
    out += "u";
    out += std::to_string(pe.parent);
    out += pe.forward ? "-" : "<-";
    out += std::to_string(pe.label);
    out += pe.forward ? "->" : "-";
    out += "u";
    out += std::to_string(u);
    out += " ";
  }
  if (!non_tree_edges_.empty()) {
    out += "nontree:";
    for (QEdgeId e : non_tree_edges_) {
      out += " e";
      out += std::to_string(e);
    }
  }
  return out;
}

}  // namespace turboflux
