#ifndef TURBOFLUX_QUERY_QUERY_TREE_H_
#define TURBOFLUX_QUERY_QUERY_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/query/query_graph.h"
#include "turboflux/query/query_stats.h"

namespace turboflux {

/// A spanning query tree q' of a query graph q rooted at the start query
/// vertex u_s (Section 3.1 / TransformToTree in Section 4.1). Tree edges
/// keep their original direction: a child's parent edge is either *forward*
/// (P(c) -> c in q) or *reversed* (c -> P(c) in q). The query edges not
/// selected for the tree are the non-tree edges, handled separately during
/// matching (Section 4).
class QueryTree {
 public:
  /// Parent-edge record of a non-root query vertex.
  struct ParentEdge {
    QVertexId parent = kNullQVertex;
    EdgeLabel label = 0;
    bool forward = true;  // true: (parent -> child) in q; false: reversed
    QEdgeId qedge = kNullQEdge;
  };

  /// Builds the spanning tree greedily: starting from {root}, repeatedly
  /// attach the query edge with the smallest matching-data-edge count
  /// (from `stats`) that connects a tree vertex to a non-tree vertex.
  /// Requires q connected and root < q.VertexCount().
  static QueryTree Build(const QueryGraph& q, QVertexId root,
                         const QueryStats& stats);

  /// Reconstructs a tree from explicit parent edges (one entry per query
  /// vertex; the root's entry is ignored) — the checkpoint-restore path,
  /// where the original greedy Build cannot be replayed because its
  /// data-graph statistics have since evolved. Returns false (leaving
  /// `out` unspecified) unless the entries describe a spanning tree of q
  /// rooted at `root` whose every parent edge is a real query edge with
  /// the recorded label and orientation.
  static bool FromParentEdges(const QueryGraph& q, QVertexId root,
                              const std::vector<ParentEdge>& parents,
                              QueryTree* out);

  const QueryGraph& query() const { return *q_; }
  QVertexId root() const { return root_; }
  size_t VertexCount() const { return parent_.size(); }

  bool IsRoot(QVertexId u) const { return u == root_; }
  QVertexId Parent(QVertexId u) const { return parent_[u].parent; }
  const ParentEdge& parent_edge(QVertexId u) const { return parent_[u]; }
  const std::vector<QVertexId>& Children(QVertexId u) const {
    return children_[u];
  }
  bool IsLeaf(QVertexId u) const { return children_[u].empty(); }

  /// Bitmask over query vertex ids with one bit per child of u. The DCG's
  /// O(1) MatchAllChildren is a mask test against this.
  uint64_t ChildrenMask(QVertexId u) const { return children_mask_[u]; }

  /// Query vertices in a BFS order from the root (parents precede
  /// children).
  const std::vector<QVertexId>& BfsOrder() const { return bfs_order_; }

  /// Query edges of q that are not tree edges.
  const std::vector<QEdgeId>& NonTreeEdges() const { return non_tree_edges_; }

  /// True iff query edge e is a tree edge.
  bool IsTreeEdge(QEdgeId e) const { return is_tree_edge_[e]; }

  /// Non-tree query edges incident to u (either endpoint), used by
  /// IsJoinable.
  const std::vector<QEdgeId>& IncidentNonTreeEdges(QVertexId u) const {
    return incident_non_tree_[u];
  }

  /// Depth of u (root has depth 0).
  size_t Depth(QVertexId u) const { return depth_[u]; }

  std::string ToString() const;

 private:
  const QueryGraph* q_ = nullptr;
  QVertexId root_ = kNullQVertex;
  std::vector<ParentEdge> parent_;
  std::vector<std::vector<QVertexId>> children_;
  std::vector<uint64_t> children_mask_;
  std::vector<QVertexId> bfs_order_;
  std::vector<QEdgeId> non_tree_edges_;
  std::vector<bool> is_tree_edge_;
  std::vector<std::vector<QEdgeId>> incident_non_tree_;
  std::vector<size_t> depth_;
};

}  // namespace turboflux

#endif  // TURBOFLUX_QUERY_QUERY_TREE_H_
