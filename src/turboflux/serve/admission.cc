#include "turboflux/serve/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace turboflux {
namespace serve {

uint32_t AdmissionQueue::BackoffHintLocked() {
  uint32_t shift = std::min<uint32_t>(consecutive_rejects_, 16);
  uint64_t hint = static_cast<uint64_t>(config_.retry_base_ms) << shift;
  return static_cast<uint32_t>(
      std::min<uint64_t>(hint, config_.retry_max_ms));
}

AdmitResult AdmissionQueue::TryPush(std::span<const PendingOp> ops) {
  AdmitResult result;
  bool admitted = false;
  {
    MutexLock lock(mu_);
    result.depth = queue_.size();
    if (closed_) {
      result.retry_after_ms = 0;  // shutdown: retrying is pointless
      return result;
    }
    if (queue_.size() + ops.size() > config_.queue_cap) {
      ++consecutive_rejects_;
      ++rejected_batches_;
      result.retry_after_ms = BackoffHintLocked();
      return result;
    }
    queue_.insert(queue_.end(), ops.begin(), ops.end());
    consecutive_rejects_ = 0;
    accepted_ops_ += ops.size();
    result.accepted = true;
    result.depth = queue_.size();
    admitted = true;
  }
  if (admitted) cv_.NotifyAll();
  return result;
}

size_t AdmissionQueue::Drain(size_t max, uint32_t wait_ms,
                             std::vector<PendingOp>* out) {
  MutexLock lock(mu_);
  if (queue_.empty() && !closed_ && wait_ms > 0) {
    // One bounded wait; spurious wakeups and timeouts both fall through
    // to the snapshot below — the caller loops anyway.
    (void)cv_.WaitFor(mu_, std::chrono::milliseconds(wait_ms));
  }
  size_t n = std::min(max, queue_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(queue_.front());
    queue_.pop_front();
  }
  return n;
}

void AdmissionQueue::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

size_t AdmissionQueue::Depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

uint64_t AdmissionQueue::accepted_ops() const {
  MutexLock lock(mu_);
  return accepted_ops_;
}

uint64_t AdmissionQueue::rejected_batches() const {
  MutexLock lock(mu_);
  return rejected_batches_;
}

bool TokenBucket::TryAcquire(double n, int64_t now_us,
                             uint32_t* retry_after_ms) {
  *retry_after_ms = 0;
  if (rate_ <= 0) return true;
  if (!primed_) {
    primed_ = true;
    last_us_ = now_us;
  }
  if (now_us > last_us_) {
    tokens_ = std::min(
        burst_, tokens_ + rate_ * static_cast<double>(now_us - last_us_) / 1e6);
    last_us_ = now_us;
  }
  if (tokens_ >= n) {
    tokens_ -= n;
    return true;
  }
  double deficit = n - tokens_;
  double wait_ms = std::ceil(deficit / rate_ * 1e3);
  *retry_after_ms = static_cast<uint32_t>(std::max(1.0, wait_ms));
  return false;
}

}  // namespace serve
}  // namespace turboflux
