#ifndef TURBOFLUX_SERVE_ADMISSION_H_
#define TURBOFLUX_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"
#include "turboflux/graph/update_stream.h"

namespace turboflux {
namespace serve {

/// One admitted update op, tagged with its producer channel and the
/// channel-local sequence number (used for exactly-once ack bookkeeping).
struct PendingOp {
  uint64_t channel = 0;
  uint64_t seq = 0;
  UpdateOp op{UpdateOp::Type::kInsert, 0, 0, 0};
};

struct AdmissionConfig {
  /// Maximum ops buffered between producers and the ingest thread. This
  /// is the server's memory bound under overload: nothing past the WAL
  /// grows with arrival rate.
  size_t queue_cap = 4096;

  /// Exponential-backoff hint schedule for RETRY responses:
  /// min(retry_max_ms, retry_base_ms << min(consecutive_rejects, 16)).
  uint32_t retry_base_ms = 1;
  uint32_t retry_max_ms = 1000;
};

/// Outcome of an admission attempt.
struct AdmitResult {
  bool accepted = false;
  /// When rejected: how long the producer should wait before retrying.
  uint32_t retry_after_ms = 0;
  /// Queue depth observed at decision time (diagnostics for RETRY).
  size_t depth = 0;
};

/// Bounded MPSC hand-off between connection threads and the single ingest
/// thread. Admission is all-or-nothing per submit batch — a partially
/// admitted batch would force the producer to split its exactly-once
/// sequence range. Rejection is explicit (AdmitResult with a backoff
/// hint), never a silent drop; the backoff hint grows exponentially with
/// consecutive rejections so a spinning producer self-paces.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionConfig& config)
      : config_(config) {}

  /// Producer side. Admits all of `ops` or none. Never blocks.
  AdmitResult TryPush(std::span<const PendingOp> ops) EXCLUDES(mu_);

  /// Consumer side: moves up to `max` ops into `out` (appended). Blocks
  /// up to `wait_ms` for the first op; returns the number moved (0 on
  /// timeout or when closed and drained).
  size_t Drain(size_t max, uint32_t wait_ms, std::vector<PendingOp>* out)
      EXCLUDES(mu_);

  /// Wakes the consumer and makes every later TryPush reject immediately
  /// with retry_after_ms = 0 (shutdown, not backpressure).
  void Close() EXCLUDES(mu_);

  size_t Depth() const EXCLUDES(mu_);
  size_t Capacity() const { return config_.queue_cap; }

  /// Totals since construction (observability).
  uint64_t accepted_ops() const EXCLUDES(mu_);
  uint64_t rejected_batches() const EXCLUDES(mu_);

 private:
  uint32_t BackoffHintLocked() REQUIRES(mu_);

  const AdmissionConfig config_;

  mutable Mutex mu_;
  CondVar cv_;  // paired with mu_; notified outside the lock
  std::deque<PendingOp> queue_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  uint32_t consecutive_rejects_ GUARDED_BY(mu_) = 0;
  uint64_t accepted_ops_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_batches_ GUARDED_BY(mu_) = 0;
};

/// Deterministic token bucket for per-connection rate limiting. The
/// caller supplies the clock (microseconds, any monotone origin), which
/// keeps the policy unit-testable without sleeping and lets the TCP layer
/// share one steady_clock read across checks.
class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per second up to `burst`. A rate of 0
  /// disables limiting entirely.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Takes `n` tokens if available. On refusal returns false and sets
  /// *retry_after_ms to the time until `n` tokens will have accrued.
  bool TryAcquire(double n, int64_t now_us, uint32_t* retry_after_ms);

 private:
  const double rate_;
  const double burst_;
  double tokens_;
  int64_t last_us_ = 0;
  bool primed_ = false;
};

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_ADMISSION_H_
