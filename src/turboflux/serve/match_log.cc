#include "turboflux/serve/match_log.h"

#include <filesystem>
#include <fstream>

#include "turboflux/common/serialize.h"

namespace turboflux {
namespace serve {

namespace {

constexpr uint8_t kBlockMatches = 0;
constexpr uint8_t kBlockCommit = 1;
constexpr uint32_t kMaxBlockBytes = 1u << 26;  // 64 MiB corruption guard

void EncodeMatchesBlock(std::span<const MatchRecord> records,
                        std::string& out) {
  std::string payload;
  bin::PutU8(payload, kBlockMatches);
  bin::PutU32(payload, static_cast<uint32_t>(records.size()));
  for (const MatchRecord& m : records) {
    bin::PutU64(payload, m.op_index);
    bin::PutU32(payload, m.query);
    bin::PutU8(payload, m.positive);
    bin::PutU32(payload, static_cast<uint32_t>(m.mapping.size()));
    for (VertexId v : m.mapping) bin::PutU32(payload, v);
  }
  bin::PutU32(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  bin::PutU32(out, bin::Crc32(payload));
}

void EncodeCommitBlock(uint64_t through_op, std::string& out) {
  std::string payload;
  bin::PutU8(payload, kBlockCommit);
  bin::PutU64(payload, through_op);
  bin::PutU32(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  bin::PutU32(out, bin::Crc32(payload));
}

bool ReadAll(const std::string& path, std::string* out, bool* exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *exists = false;
    return true;
  }
  *exists = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return false;
  *out = std::move(data);
  return true;
}

}  // namespace

MatchLog::~MatchLog() { Close(); }

Status MatchLog::Load(const std::string& path,
                      std::vector<MatchRecord>* records, uint64_t* watermark,
                      uint64_t* valid_bytes) {
  records->clear();
  *watermark = 0;
  *valid_bytes = 0;
  std::string data;
  bool exists = false;
  if (!ReadAll(path, &data, &exists)) {
    return Status::IoError("cannot read match log: " + path);
  }
  if (!exists) return Status::Ok();

  // Records seen since the last commit marker; discarded unless a
  // complete COMMIT block follows them.
  std::vector<MatchRecord> uncommitted;
  size_t pos = 0;
  size_t committed_records = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 4) break;
    bin::Reader len_reader(std::string_view(data).substr(pos, 4));
    uint32_t len = 0;
    (void)len_reader.GetU32(&len);
    if (len > kMaxBlockBytes || data.size() - pos - 4 < len + 4u) break;
    std::string_view payload = std::string_view(data).substr(pos + 4, len);
    bin::Reader crc_reader(std::string_view(data).substr(pos + 4 + len, 4));
    uint32_t crc = 0;
    (void)crc_reader.GetU32(&crc);
    if (crc != bin::Crc32(payload)) break;

    bin::Reader r(payload);
    uint8_t kind = 0;
    if (!r.GetU8(&kind)) break;
    if (kind == kBlockMatches) {
      uint32_t count = 0;
      bool bad = !r.GetLength(&count, 1u << 24);
      for (uint32_t i = 0; !bad && i < count; ++i) {
        MatchRecord m;
        uint32_t map_len = 0;
        if (!r.GetU64(&m.op_index) || !r.GetU32(&m.query) ||
            !r.GetU8(&m.positive) || !r.GetLength(&map_len, 1u << 20)) {
          bad = true;
          break;
        }
        m.mapping.resize(map_len);
        for (uint32_t j = 0; j < map_len; ++j) {
          if (!r.GetU32(&m.mapping[j])) {
            bad = true;
            break;
          }
        }
        if (!bad) uncommitted.push_back(std::move(m));
      }
      if (bad || !r.exhausted()) break;
    } else if (kind == kBlockCommit) {
      uint64_t through = 0;
      if (!r.GetU64(&through) || !r.exhausted()) break;
      records->insert(records->end(),
                      std::make_move_iterator(uncommitted.begin()),
                      std::make_move_iterator(uncommitted.end()));
      uncommitted.clear();
      committed_records = records->size();
      *watermark = through;
      *valid_bytes = pos + 4 + len + 4;
    } else {
      break;
    }
    pos += 4 + len + 4;
  }
  records->resize(committed_records);
  return Status::Ok();
}

Status MatchLog::Open(const std::string& path, uint64_t valid_bytes) {
  Close();
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    uint64_t size = std::filesystem::file_size(path, ec);
    if (!ec && size > valid_bytes) {
      std::filesystem::resize_file(path, valid_bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate match log tail: " + path);
      }
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open match log for append: " + path);
  }
  return Status::Ok();
}

Status MatchLog::AppendCommit(std::span<const MatchRecord> records,
                              uint64_t through_op, FaultInjector* injector) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("match log is not open");
  }
  std::string block;
  if (!records.empty()) EncodeMatchesBlock(records, block);
  size_t before_commit = block.size();
  EncodeCommitBlock(through_op, block);

  size_t write_len = block.size();
  bool torn = injector != nullptr && injector->ShouldTearMatchLogCommit();
  if (torn) {
    // Cut inside the commit marker (or, if there were matches, right
    // before it) so the commit is incomplete but bytes did land.
    write_len = before_commit + (block.size() - before_commit) / 2;
  }
  if (std::fwrite(block.data(), 1, write_len, file_) != write_len) {
    return Status::IoError("match log append failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("match log flush failed");
  }
  if (torn) return Status::IoError("injected torn match-log commit");
  return Status::Ok();
}

void MatchLog::Close() {
  if (file_ != nullptr) {
    (void)std::fclose(file_);
    file_ = nullptr;
  }
}

std::string MatchLog::CanonicalMatchStream(
    std::span<const MatchRecord> records) {
  std::string out;
  bin::PutU64(out, records.size());
  for (const MatchRecord& m : records) {
    bin::PutU64(out, m.op_index);
    bin::PutU32(out, m.query);
    bin::PutU8(out, m.positive);
    bin::PutU32(out, static_cast<uint32_t>(m.mapping.size()));
    for (VertexId v : m.mapping) bin::PutU32(out, v);
  }
  return out;
}

}  // namespace serve
}  // namespace turboflux
