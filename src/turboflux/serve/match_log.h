#ifndef TURBOFLUX_SERVE_MATCH_LOG_H_
#define TURBOFLUX_SERVE_MATCH_LOG_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "turboflux/common/match.h"
#include "turboflux/common/status.h"
#include "turboflux/harness/fault_injection.h"

namespace turboflux {
namespace serve {

/// One emitted match, tagged with the journal op index that produced it.
/// The op index is what makes recovery exactly-once: replayed evaluation
/// regenerates the same matches deterministically, and the tag says which
/// of them are already durable here.
struct MatchRecord {
  uint64_t op_index = 0;  ///< 0-based WAL record index of the causing op
  uint32_t query = 0;     ///< multi::QueryId
  uint8_t positive = 1;   ///< 1 = new match, 0 = retracted match
  Mapping mapping;

  friend bool operator==(const MatchRecord& a, const MatchRecord& b) {
    return a.op_index == b.op_index && a.query == b.query &&
           a.positive == b.positive && a.mapping == b.mapping;
  }
};

// Durable match stream (DESIGN.md §3.12). An append-only file of
// CRC-framed blocks:
//
//   u32 payload_len | payload | u32 crc32(payload)
//   payload := u8 kind (0 = matches, 1 = commit)
//     kind 0: u32 count, count × (u64 op_index, u32 query, u8 positive,
//                                 u32 mapping_len, mapping_len × u32)
//     kind 1: u64 through_op
//
// Only matches at or below the last COMMIT marker's `through_op` are
// considered delivered. Load() discards everything after the last
// complete commit — a torn commit block rolls the stream back to the
// previous marker, and replay regenerates the lost matches. Commit
// ordering vs. the engine snapshot is the server's job: the match log
// must be flushed BEFORE the snapshot rename (invariant S ≤ W ≤ J),
// otherwise a crash between the two loses matches the snapshot already
// skipped past.
class MatchLog {
 public:
  MatchLog() = default;
  ~MatchLog();
  MatchLog(const MatchLog&) = delete;
  MatchLog& operator=(const MatchLog&) = delete;

  /// Parses `path` (missing = empty). Returns the records covered by
  /// complete commits, the watermark W (= last commit's through_op; 0 if
  /// no commit), and the byte offset of the last complete commit block.
  [[nodiscard]] static Status Load(const std::string& path,
                                   std::vector<MatchRecord>* records,
                                   uint64_t* watermark,
                                   uint64_t* valid_bytes);

  /// Truncates past the last complete commit and opens for appends.
  [[nodiscard]] Status Open(const std::string& path, uint64_t valid_bytes);

  /// Appends `records` plus a COMMIT(through_op) marker and flushes.
  /// If `injector` trips ShouldTearMatchLogCommit, the write is cut
  /// short of the commit marker and kIoError("injected...") is returned —
  /// the server treats that as a crash.
  [[nodiscard]] Status AppendCommit(std::span<const MatchRecord> records,
                                    uint64_t through_op,
                                    FaultInjector* injector);

  void Close();

  /// Canonical byte serialization of a match stream, independent of how
  /// the records were grouped into commit blocks — the chaos suite
  /// compares this against a single-process oracle byte-for-byte.
  static std::string CanonicalMatchStream(
      std::span<const MatchRecord> records);

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_MATCH_LOG_H_
