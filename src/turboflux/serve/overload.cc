#include "turboflux/serve/overload.h"

namespace turboflux {
namespace serve {

Tier OverloadController::TargetFor(double frac) const {
  if (frac >= config_.reject_frac) return Tier::kReject;
  if (frac >= config_.widen_frac) return Tier::kWiden;
  if (frac >= config_.shed_frac) return Tier::kShed;
  if (frac <= config_.recover_frac) return Tier::kNormal;
  // Between recover and shed: no pressure either way, hold current tier.
  return tier_;
}

Tier OverloadController::Observe(size_t depth, size_t cap, int64_t now_us) {
  double frac = cap == 0 ? 0.0
                         : static_cast<double>(depth) / static_cast<double>(cap);
  Tier target = TargetFor(frac);
  if (target == tier_) {
    pending_active_ = false;
    return tier_;
  }
  if (!pending_active_ || pending_ != target) {
    pending_ = target;
    pending_since_us_ = now_us;
    pending_active_ = true;
  }
  // Escalation and recovery use different dwell times: get out of the
  // way quickly under pressure, come back conservatively.
  int64_t dwell = static_cast<uint8_t>(target) > static_cast<uint8_t>(tier_)
                      ? config_.sustain_us
                      : config_.recover_us;
  if (now_us - pending_since_us_ >= dwell) {
    tier_ = target;
    pending_active_ = false;
  }
  return tier_;
}

}  // namespace serve
}  // namespace turboflux
