#ifndef TURBOFLUX_SERVE_OVERLOAD_H_
#define TURBOFLUX_SERVE_OVERLOAD_H_

#include <cstdint>

#include "turboflux/serve/protocol.h"

namespace turboflux {
namespace serve {

/// Degradation policy (DESIGN.md §3.12). Tiers escalate on sustained
/// admission-queue pressure and de-escalate only after the queue has
/// stayed comfortably drained — hysteresis on both edges so a bursty
/// arrival pattern does not flap the service between modes:
///
///   kNormal → kShed   deregister lowest-priority standing queries
///   kShed   → kWiden  additionally widen the consumer's batch window
///   kWiden  → kReject additionally reject all new work with diagnostics
///
/// Thresholds are fractions of queue capacity; escalation requires the
/// fraction to hold for `sustain_us`, recovery requires depth below
/// `recover_frac` for `recover_us`.
struct OverloadConfig {
  double shed_frac = 0.50;
  double widen_frac = 0.75;
  double reject_frac = 0.90;
  double recover_frac = 0.25;
  int64_t sustain_us = 2000;
  int64_t recover_us = 10000;
};

/// Pure state machine: the caller feeds (queue depth, now). Time is
/// injected, so tier transitions are deterministic in tests. Not thread
/// safe — only the ingest thread calls Observe; the resulting tier is
/// published through an atomic on the server.
class OverloadController {
 public:
  explicit OverloadController(const OverloadConfig& config)
      : config_(config) {}

  /// Ingests one observation and returns the (possibly new) tier.
  Tier Observe(size_t depth, size_t cap, int64_t now_us);

  Tier tier() const { return tier_; }

 private:
  /// The tier `frac` alone calls for, ignoring hysteresis.
  Tier TargetFor(double frac) const;

  const OverloadConfig config_;
  Tier tier_ = Tier::kNormal;
  /// Pending transition the depth has been arguing for, and since when.
  Tier pending_ = Tier::kNormal;
  int64_t pending_since_us_ = 0;
  bool pending_active_ = false;
};

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_OVERLOAD_H_
