#ifndef TURBOFLUX_SERVE_PAUSE_DETECTOR_H_
#define TURBOFLUX_SERVE_PAUSE_DETECTOR_H_

#include <chrono>
#include <thread>

#include "turboflux/common/deadline.h"
#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"

namespace turboflux {
namespace serve {

/// Detects wall-clock pauses of the whole process (SIGSTOP, container
/// freeze, VM suspend, debugger) and reports them to Deadline::NotePause
/// so in-flight deadlines are not mass-expired the instant the process
/// resumes (DESIGN.md §3.12, ISSUE 8 satellite 3).
///
/// Mechanism: a heartbeat thread sleeps `interval` and measures how long
/// the sleep actually took. Scheduling jitter is tolerated up to
/// `threshold`; anything beyond that is attributed to a pause, and the
/// excess over the intended interval becomes pause credit. The detector
/// can only run *after* resume, so a deadline polled between resume and
/// the next heartbeat may still latch expired — the interval bounds that
/// window (see Deadline::NotePause).
class PauseDetector {
 public:
  explicit PauseDetector(
      std::chrono::milliseconds interval = std::chrono::milliseconds(100),
      std::chrono::milliseconds threshold = std::chrono::milliseconds(250))
      : interval_(interval), threshold_(threshold) {
    thread_ = std::thread([this] { Run(); });
  }

  ~PauseDetector() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

  PauseDetector(const PauseDetector&) = delete;
  PauseDetector& operator=(const PauseDetector&) = delete;

  /// Pauses detected so far (observability/tests).
  uint64_t pauses_detected() const {
    MutexLock lock(mu_);
    return pauses_;
  }

 private:
  void Run() EXCLUDES(mu_) {
    using Clock = Deadline::Clock;
    Clock::time_point before = Clock::now();
    MutexLock lock(mu_);
    while (!stop_) {
      (void)cv_.WaitFor(mu_, interval_);
      Clock::time_point after = Clock::now();
      auto slept = after - before;
      before = after;
      if (slept > interval_ + threshold_) {
        Deadline::NotePause(
            std::chrono::duration_cast<std::chrono::nanoseconds>(slept -
                                                                 interval_));
        ++pauses_;
      }
    }
  }

  const std::chrono::milliseconds interval_;
  const std::chrono::milliseconds threshold_;

  mutable Mutex mu_;
  CondVar cv_;  // paired with mu_; notified outside the lock
  bool stop_ GUARDED_BY(mu_) = false;
  uint64_t pauses_ GUARDED_BY(mu_) = 0;
  std::thread thread_;
};

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_PAUSE_DETECTOR_H_
