#include "turboflux/serve/protocol.h"

#include <charconv>
#include <cstring>

namespace turboflux {
namespace serve {

namespace {

void PutU32Le(uint32_t v, std::string& out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

/// Whitespace-splitting cursor over one payload line.
class Tokens {
 public:
  explicit Tokens(std::string_view s) : s_(s) {}

  bool Next(std::string_view* tok) {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
    if (pos_ >= s_.size()) return false;
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ') ++pos_;
    *tok = s_.substr(start, pos_ - start);
    return true;
  }

  bool AtEnd() {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
    return pos_ >= s_.size();
  }

  /// Everything after the current position, leading spaces stripped —
  /// used for free-text tails (ERR messages, STATS JSON).
  std::string_view Rest() {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
    std::string_view r = s_.substr(pos_);
    pos_ = s_.size();
    return r;
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

template <typename T>
bool ParseNum(std::string_view tok, T* out) {
  auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return ec == std::errc() && ptr == tok.data() + tok.size();
}

template <typename T>
Status NeedNum(Tokens& toks, const char* what, T* out) {
  std::string_view tok;
  if (!toks.Next(&tok) || !ParseNum(tok, out)) {
    return Status::InvalidArgument(std::string("expected ") + what);
  }
  return Status::Ok();
}

void AppendNum(uint64_t v, std::string& out) {
  out += std::to_string(v);
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kNormal: return "normal";
    case Tier::kShed: return "shed";
    case Tier::kWiden: return "widen";
    case Tier::kReject: return "reject";
  }
  return "?";
}

void EncodeFrame(std::string_view payload, std::string& out) {
  PutU32Le(static_cast<uint32_t>(payload.size()), out);
  out.append(payload.data(), payload.size());
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (!status_.ok()) return;
  // Compact before the buffer doubles in dead prefix.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

bool FrameDecoder::Next(std::string* payload) {
  if (!status_.ok()) return false;
  if (buf_.size() - pos_ < 4) return false;
  uint32_t len = GetU32Le(buf_.data() + pos_);
  if (len > kMaxFrameBytes) {
    status_ = Status::InvalidArgument(
        "frame length " + std::to_string(len) + " exceeds limit " +
        std::to_string(kMaxFrameBytes));
    return false;
  }
  if (buf_.size() - pos_ - 4 < len) return false;
  payload->assign(buf_, pos_ + 4, len);
  pos_ += 4 + static_cast<size_t>(len);
  return true;
}

Request MakeSubmit(uint64_t channel, uint64_t seq,
                   std::span<const UpdateOp> ops) {
  Request r;
  r.kind = Request::Kind::kSubmit;
  r.channel = channel;
  r.seq = seq;
  r.ops.assign(ops.begin(), ops.end());
  return r;
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  switch (request.kind) {
    case Request::Kind::kSubmit: {
      out += "U ";
      AppendNum(request.channel, out);
      out += ' ';
      AppendNum(request.seq, out);
      out += ' ';
      AppendNum(request.ops.size(), out);
      for (const UpdateOp& op : request.ops) {
        out += op.IsInsert() ? " I " : " D ";
        AppendNum(op.from, out);
        out += ' ';
        AppendNum(op.label, out);
        out += ' ';
        AppendNum(op.to, out);
      }
      break;
    }
    case Request::Kind::kPos:
      out += "POS ";
      AppendNum(request.channel, out);
      break;
    case Request::Kind::kMatches:
      out += "MATCHES ";
      AppendNum(request.start, out);
      out += ' ';
      AppendNum(request.limit, out);
      break;
    case Request::Kind::kHealth:
      out = "HEALTH";
      break;
    case Request::Kind::kStats:
      out = "STATS";
      break;
    case Request::Kind::kPing:
      out = "PING";
      break;
  }
  return out;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  switch (response.kind) {
    case Response::Kind::kOk:
      out += "OK ";
      AppendNum(response.seq, out);
      break;
    case Response::Kind::kDup:
      out += "DUP ";
      AppendNum(response.seq, out);
      break;
    case Response::Kind::kRetry:
      out += "RETRY ";
      AppendNum(response.retry_after_ms, out);
      out += ' ';
      AppendNum(response.queue_depth, out);
      out += ' ';
      AppendNum(response.queue_cap, out);
      out += ' ';
      out += TierName(response.tier);
      break;
    case Response::Kind::kErr:
      out += "ERR ";
      out += StatusCodeName(response.code);
      out += ' ';
      out += response.text;
      break;
    case Response::Kind::kHealth:
      out += "HEALTH ";
      out += TierName(response.tier);
      out += ' ';
      AppendNum(response.queue_depth, out);
      out += ' ';
      AppendNum(response.queue_cap, out);
      out += ' ';
      AppendNum(response.accepted, out);
      out += ' ';
      AppendNum(response.committed, out);
      break;
    case Response::Kind::kPos:
      out += "POS ";
      AppendNum(response.seq, out);
      break;
    case Response::Kind::kStats:
      out += "STATS ";
      out += response.text;
      break;
    case Response::Kind::kMatches:
      out += "MATCHES ";
      AppendNum(response.matches.size(), out);
      for (const MatchRecord& m : response.matches) {
        out += ' ';
        AppendNum(m.op_index, out);
        out += ' ';
        AppendNum(m.query, out);
        out += m.positive != 0 ? " + " : " - ";
        AppendNum(m.mapping.size(), out);
        for (VertexId v : m.mapping) {
          out += ' ';
          AppendNum(v, out);
        }
      }
      break;
    case Response::Kind::kPong:
      out = "PONG";
      break;
  }
  return out;
}

Status ParseRequest(std::string_view payload, Request* out) {
  *out = Request{};
  Tokens toks(payload);
  std::string_view verb;
  if (!toks.Next(&verb)) {
    return Status::InvalidArgument("empty request");
  }
  if (verb == "U") {
    out->kind = Request::Kind::kSubmit;
    Status s = NeedNum(toks, "channel", &out->channel);
    if (!s.ok()) return s;
    s = NeedNum(toks, "seq", &out->seq);
    if (!s.ok()) return s;
    if (out->seq == 0) {
      return Status::InvalidArgument("seq must be >= 1");
    }
    uint64_t n = 0;
    s = NeedNum(toks, "op count", &n);
    if (!s.ok()) return s;
    if (n == 0) return Status::InvalidArgument("empty submit batch");
    if (n > kMaxFrameBytes / 8) {
      return Status::InvalidArgument("op count exceeds frame capacity");
    }
    out->ops.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      std::string_view kind;
      if (!toks.Next(&kind) || (kind != "I" && kind != "D")) {
        return Status::InvalidArgument("expected op kind I|D");
      }
      UpdateOp op;
      op.type = kind == "I" ? UpdateOp::Type::kInsert : UpdateOp::Type::kDelete;
      s = NeedNum(toks, "from", &op.from);
      if (!s.ok()) return s;
      s = NeedNum(toks, "label", &op.label);
      if (!s.ok()) return s;
      s = NeedNum(toks, "to", &op.to);
      if (!s.ok()) return s;
      out->ops.push_back(op);
    }
  } else if (verb == "POS") {
    out->kind = Request::Kind::kPos;
    Status s = NeedNum(toks, "channel", &out->channel);
    if (!s.ok()) return s;
  } else if (verb == "MATCHES") {
    out->kind = Request::Kind::kMatches;
    Status s = NeedNum(toks, "start", &out->start);
    if (!s.ok()) return s;
    s = NeedNum(toks, "limit", &out->limit);
    if (!s.ok()) return s;
  } else if (verb == "HEALTH") {
    out->kind = Request::Kind::kHealth;
  } else if (verb == "STATS") {
    out->kind = Request::Kind::kStats;
  } else if (verb == "PING") {
    out->kind = Request::Kind::kPing;
  } else {
    return Status::InvalidArgument("unknown request verb: " +
                                   std::string(verb));
  }
  if (!toks.AtEnd()) {
    return Status::InvalidArgument("trailing garbage after request");
  }
  return Status::Ok();
}

namespace {

bool ParseTier(std::string_view tok, Tier* out) {
  if (tok == "normal") *out = Tier::kNormal;
  else if (tok == "shed") *out = Tier::kShed;
  else if (tok == "widen") *out = Tier::kWiden;
  else if (tok == "reject") *out = Tier::kReject;
  else return false;
  return true;
}

bool ParseCode(std::string_view tok, StatusCode* out) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(StatusCode::kUnsupportedVersion);
       ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    if (tok == StatusCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

}  // namespace

Status ParseResponse(std::string_view payload, Response* out) {
  *out = Response{};
  Tokens toks(payload);
  std::string_view verb;
  if (!toks.Next(&verb)) {
    return Status::InvalidArgument("empty response");
  }
  std::string_view tok;
  if (verb == "OK" || verb == "DUP" || verb == "POS") {
    out->kind = verb == "OK" ? Response::Kind::kOk
                : verb == "DUP" ? Response::Kind::kDup
                                : Response::Kind::kPos;
    Status s = NeedNum(toks, "seq", &out->seq);
    if (!s.ok()) return s;
  } else if (verb == "RETRY") {
    out->kind = Response::Kind::kRetry;
    Status s = NeedNum(toks, "retry-after ms", &out->retry_after_ms);
    if (!s.ok()) return s;
    s = NeedNum(toks, "queue depth", &out->queue_depth);
    if (!s.ok()) return s;
    s = NeedNum(toks, "queue cap", &out->queue_cap);
    if (!s.ok()) return s;
    if (!toks.Next(&tok) || !ParseTier(tok, &out->tier)) {
      return Status::InvalidArgument("expected overload tier");
    }
  } else if (verb == "ERR") {
    out->kind = Response::Kind::kErr;
    if (!toks.Next(&tok) || !ParseCode(tok, &out->code)) {
      return Status::InvalidArgument("expected status code name");
    }
    out->text = std::string(toks.Rest());
    return Status::Ok();  // message is free text; no trailing check
  } else if (verb == "HEALTH") {
    out->kind = Response::Kind::kHealth;
    if (!toks.Next(&tok) || !ParseTier(tok, &out->tier)) {
      return Status::InvalidArgument("expected overload tier");
    }
    Status s = NeedNum(toks, "queue depth", &out->queue_depth);
    if (!s.ok()) return s;
    s = NeedNum(toks, "queue cap", &out->queue_cap);
    if (!s.ok()) return s;
    s = NeedNum(toks, "accepted", &out->accepted);
    if (!s.ok()) return s;
    s = NeedNum(toks, "committed", &out->committed);
    if (!s.ok()) return s;
  } else if (verb == "STATS") {
    out->kind = Response::Kind::kStats;
    out->text = std::string(toks.Rest());
    return Status::Ok();  // JSON tail; no trailing check
  } else if (verb == "MATCHES") {
    out->kind = Response::Kind::kMatches;
    uint64_t count = 0;
    Status s = NeedNum(toks, "match count", &count);
    if (!s.ok()) return s;
    if (count > kMaxFrameBytes / 8) {
      return Status::InvalidArgument("match count exceeds frame capacity");
    }
    out->matches.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      MatchRecord m;
      s = NeedNum(toks, "op index", &m.op_index);
      if (!s.ok()) return s;
      s = NeedNum(toks, "query id", &m.query);
      if (!s.ok()) return s;
      if (!toks.Next(&tok) || (tok != "+" && tok != "-")) {
        return Status::InvalidArgument("expected match sign +|-");
      }
      m.positive = tok == "+" ? 1 : 0;
      uint64_t k = 0;
      s = NeedNum(toks, "mapping size", &k);
      if (!s.ok()) return s;
      if (k > kMaxFrameBytes / 8) {
        return Status::InvalidArgument("mapping size exceeds frame capacity");
      }
      m.mapping.resize(static_cast<size_t>(k));
      for (uint64_t j = 0; j < k; ++j) {
        s = NeedNum(toks, "mapping vertex", &m.mapping[j]);
        if (!s.ok()) return s;
      }
      out->matches.push_back(std::move(m));
    }
  } else if (verb == "PONG") {
    out->kind = Response::Kind::kPong;
  } else {
    return Status::InvalidArgument("unknown response verb: " +
                                   std::string(verb));
  }
  if (!toks.AtEnd()) {
    return Status::InvalidArgument("trailing garbage after response");
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace turboflux
