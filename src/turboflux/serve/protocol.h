#ifndef TURBOFLUX_SERVE_PROTOCOL_H_
#define TURBOFLUX_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "turboflux/common/status.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/serve/match_log.h"

namespace turboflux {
namespace serve {

// Wire protocol of the tfx_serve ingestion service (DESIGN.md §3.12).
//
// Transport framing: every message is a length-prefixed frame — a u32
// little-endian payload size followed by that many payload bytes. The
// payload is a single ASCII command (request) or result (response) line;
// binary framing keeps torn-write detection trivial while text payloads
// keep client sessions debuggable with a hex dump.
//
// Requests:
//   U <channel> <seq> <n> {I|D <from> <label> <to>} x n
//       Submit n consecutive update ops. `channel` identifies a logical
//       producer (64-bit, client-chosen); `seq` is the 1-based sequence
//       number of the FIRST op. Retrying a frame is always safe: ops at or
//       below the channel's durable high-water mark are acknowledged as
//       duplicates without re-ingesting.
//   POS <channel>    Durable high-water sequence of the channel (0 = none);
//                    a reconnecting producer resumes from POS + 1.
//   MATCHES <start> <limit>
//                    Up to `limit` committed match records starting at
//                    0-based record index `start` (paging cursor).
//   HEALTH           Liveness + overload state; served from atomics, never
//                    blocked behind evaluation.
//   STATS            Full obs::StatsSnapshot as one JSON document.
//   PING             Round-trip no-op.
//
// Responses:
//   OK <seq>                         ops through `seq` are durable
//   DUP <seq>                        everything submitted was already durable
//   RETRY <ms> <depth> <cap> <tier>  backpressure: retry after `ms`
//                                    milliseconds; queue-depth diagnostics
//   ERR <code> <message>             protocol or state error
//   HEALTH <tier> <depth> <cap> <accepted> <committed>
//   POS <seq>
//   STATS <json>
//   MATCHES <count> {<op_index> <query> +|- <k> <v> x k} x count
//   PONG

/// Hard cap on one frame's payload; a corrupted length field larger than
/// this is a protocol error, not an allocation attempt.
inline constexpr uint32_t kMaxFrameBytes = 1u << 22;  // 4 MiB

/// Appends the 4-byte length prefix + payload to `out`.
void EncodeFrame(std::string_view payload, std::string& out);

/// Incremental frame decoder: Feed() bytes as they arrive, Next() pops
/// complete payloads. A malformed length field poisons the decoder (the
/// stream cannot be resynchronized); bytes of an incomplete trailing
/// frame simply stay buffered.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);

  /// True when a complete frame was popped into *payload.
  bool Next(std::string* payload);

  /// Non-OK once a frame declared a payload above kMaxFrameBytes.
  const Status& status() const { return status_; }

  /// Bytes buffered but not yet returned (partial frame).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  Status status_;
};

struct Request {
  enum class Kind : uint8_t {
    kSubmit,
    kPos,
    kHealth,
    kStats,
    kMatches,
    kPing,
  };

  Kind kind = Kind::kPing;
  uint64_t channel = 0;
  uint64_t seq = 0;    ///< kSubmit: sequence of ops.front()
  uint64_t start = 0;  ///< kMatches: first record index
  uint64_t limit = 0;  ///< kMatches: max records returned
  std::vector<UpdateOp> ops;
};

/// Overload tiers, least to most degraded (DESIGN.md §3.12). Declared
/// here so responses can carry the tier without depending on overload.h.
enum class Tier : uint8_t { kNormal = 0, kShed = 1, kWiden = 2, kReject = 3 };
const char* TierName(Tier tier);

struct Response {
  enum class Kind : uint8_t {
    kOk,
    kDup,
    kRetry,
    kErr,
    kHealth,
    kPos,
    kStats,
    kMatches,
    kPong,
  };

  Kind kind = Kind::kErr;
  uint64_t seq = 0;            ///< kOk / kDup / kPos
  uint32_t retry_after_ms = 0; ///< kRetry
  uint64_t queue_depth = 0;    ///< kRetry / kHealth
  uint64_t queue_cap = 0;      ///< kRetry / kHealth
  Tier tier = Tier::kNormal;   ///< kRetry / kHealth
  uint64_t accepted = 0;       ///< kHealth: ops durable in the WAL
  uint64_t committed = 0;      ///< kHealth: ops covered by the last commit
  StatusCode code = StatusCode::kOk;  ///< kErr
  std::string text;            ///< kErr message / kStats JSON
  std::vector<MatchRecord> matches;  ///< kMatches
};

std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// Parses one payload line. Unknown verbs, malformed numbers, op-count
/// mismatches, and trailing garbage all fail with kInvalidArgument.
[[nodiscard]] Status ParseRequest(std::string_view payload, Request* out);
[[nodiscard]] Status ParseResponse(std::string_view payload, Response* out);

/// Convenience: a submit request for `ops` starting at `seq`.
Request MakeSubmit(uint64_t channel, uint64_t seq,
                   std::span<const UpdateOp> ops);

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_PROTOCOL_H_
