#include "turboflux/serve/server.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "turboflux/common/deadline.h"
#include "turboflux/obs/stats.h"

namespace turboflux {
namespace serve {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Deadline::Clock::now().time_since_epoch())
      .count();
}

void SleepMs(uint32_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Response ErrResponse(StatusCode code, std::string text) {
  Response r;
  r.kind = Response::Kind::kErr;
  r.code = code;
  r.text = std::move(text);
  return r;
}

/// Collects QuerySet callbacks into MatchRecords tagged with one op index.
class TaggingSink : public multi::QuerySet::Sink {
 public:
  TaggingSink(uint64_t op_index, std::vector<MatchRecord>* out)
      : op_index_(op_index), out_(out) {}

  void OnMatch(multi::QueryId query, bool positive,
               const Mapping& m) override {
    MatchRecord rec;
    rec.op_index = op_index_;
    rec.query = query;
    rec.positive = positive ? 1 : 0;
    rec.mapping = m;
    out_->push_back(std::move(rec));
  }

 private:
  uint64_t op_index_;
  std::vector<MatchRecord>* out_;
};

/// Swallows callbacks — used when replay regenerates matches that are
/// already durable below the match-log watermark.
class NullSink : public multi::QuerySet::Sink {
 public:
  void OnMatch(multi::QueryId, bool, const Mapping&) override {}
};

/// True when the status means "op consumed" (evaluated or a legal/
/// quarantined no-op); false only for deadline death.
bool Consumed(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
      return true;
    default:
      return false;
  }
}

}  // namespace

Server::Server(const ServeOptions& options)
    : options_(options),
      set_(options.set),
      overload_(options.overload),
      queue_(options.admission) {}

Server::~Server() {
  if (started_ && !killed_.load(std::memory_order_acquire) &&
      !stopping_.load(std::memory_order_acquire)) {
    Shutdown();
  } else if (started_ && ingest_.joinable()) {
    ingest_.join();
  }
}

Status Server::Create(const ServeOptions& options, const Graph* g0,
                      std::unique_ptr<Server>* out) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("ServeOptions.data_dir is required");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::IoError("cannot create data dir: " + options.data_dir);
  }
  std::unique_ptr<Server> server(new Server(options));
  Status s = server->Recover(g0);
  if (!s.ok()) return s;
  *out = std::move(server);
  return Status::Ok();
}

Status Server::Recover(const Graph* g0) {
  MutexLock reg_lock(reg_mu_);

  // 1. Journal: valid prefix J defines the op index space.
  std::vector<PendingOp> wal_records;
  uint64_t wal_bytes = 0;
  Status s = OpJournal::Load(WalPath(), &wal_records, &wal_bytes);
  if (!s.ok()) return s;

  // 2. Match log: records below watermark W are already delivered.
  std::vector<MatchRecord> durable_matches;
  uint64_t watermark = 0;
  uint64_t match_bytes = 0;
  s = MatchLog::Load(MatchLogPath(), &durable_matches, &watermark,
                     &match_bytes);
  if (!s.ok()) return s;

  // 3. Engine state: snapshot (position S) or fresh graph.
  bool have_snapshot = std::filesystem::exists(SnapshotPath());
  if (have_snapshot) {
    std::ifstream in(SnapshotPath(), std::ios::binary);
    if (!in) {
      return Status::IoError("cannot open snapshot: " + SnapshotPath());
    }
    s = set_.Restore(in);
    if (!s.ok()) return s;
  } else {
    if (g0 == nullptr) {
      return Status::InvalidArgument(
          "fresh data dir needs an initial graph (g0)");
    }
    set_.Bind(*g0);
  }
  uint64_t snapshot_pos = set_.applied_ops();  // S
  uint64_t journal_len = wal_records.size();   // J

  // Invariant S <= W <= J must hold on any disk state our own commit
  // protocol produced. A snapshot ahead of the journal means the journal
  // was torn further back than the snapshot covers — unrecoverable
  // without re-acking unknown ops, so refuse loudly.
  if (snapshot_pos > journal_len) {
    return Status::Corruption(
        "snapshot is ahead of the op journal (S=" +
        std::to_string(snapshot_pos) + " > J=" + std::to_string(journal_len) +
        "); data dir is inconsistent");
  }
  if (watermark > journal_len) {
    return Status::Corruption("match watermark ahead of journal");
  }
  // A torn match-log tail can leave W < S (commit died between the two
  // writes)... no: the match log commits BEFORE the snapshot renames, so
  // W >= S always. W < S means external tampering.
  if (watermark < snapshot_pos) {
    return Status::Corruption(
        "match watermark behind snapshot (W=" + std::to_string(watermark) +
        " < S=" + std::to_string(snapshot_pos) + ")");
  }

  // 4. Truncate torn tails and reopen for append.
  s = journal_.Open(WalPath(), wal_bytes, journal_len);
  if (!s.ok()) return s;
  s = match_log_.Open(MatchLogPath(), match_bytes);
  if (!s.ok()) return s;

  // 5. Replay WAL[S, J). Matches from ops below W are regenerated into a
  // NullSink (already durable); from W on they join pending_matches_ and
  // become durable at the post-recovery commit below.
  NullSink null_sink;
  for (uint64_t i = snapshot_pos; i < journal_len; ++i) {
    uint64_t op_index = set_.applied_ops();
    TaggingSink tagged(op_index, &pending_matches_);
    multi::QuerySet::Sink& sink =
        op_index < watermark ? static_cast<multi::QuerySet::Sink&>(null_sink)
                             : tagged;
    Status apply = set_.ApplyUpdate(wal_records[i].op, sink,
                                    Deadline::Infinite());
    if (!Consumed(apply)) {
      return Status::Error(apply.code(),
                           "replay failed at op " + std::to_string(i) + ": " +
                               apply.message());
    }
  }

  // 6. Rebuild per-channel durable high-water marks from the full
  // journal (acked == journaled).
  {
    MutexLock lock(state_mu_);
    for (const PendingOp& rec : wal_records) {
      uint64_t& hw = durable_hw_[rec.channel];
      hw = std::max(hw, rec.seq);
    }
  }
  accepted_ops_.store(journal_len, std::memory_order_relaxed);
  committed_ops_.store(watermark, std::memory_order_relaxed);
  last_commit_us_ = NowMicros();

  // 7. Re-establish S = W = J so the next crash owes no replay for this
  // prefix. Skipped when already clean (fresh dir or graceful shutdown).
  if (journal_len > watermark || !pending_matches_.empty() ||
      snapshot_pos < journal_len) {
    s = Commit();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Server::RegisterQuery(const QueryGraph& q, int priority,
                             multi::QueryId* id) {
  if (died_.load(std::memory_order_acquire) ||
      killed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server is down");
  }
  MutexLock reg_lock(reg_mu_);
  // Initial matches are tagged with the current op index: they depend on
  // every op evaluated so far and none after.
  TaggingSink sink(set_.applied_ops(), &pending_matches_);
  Status s = set_.Register(q, sink, Deadline::Infinite(), id);
  if (!s.ok()) return s;
  {
    MutexLock lock(state_mu_);
    queries_[*id] = StandingQuery{q, priority, false};
  }
  // Commit so the registration (snapshot) and its initial-match report
  // (match log) are both durable before the caller proceeds.
  return Commit();
}

void Server::Start() {
  if (started_) return;
  started_ = true;
  ingest_ = std::thread([this] { IngestLoop(); });
}

void Server::Shutdown() {
  if (stopping_.exchange(true)) return;
  queue_.Close();
  if (ingest_.joinable()) ingest_.join();
  if (!died_.load(std::memory_order_acquire) &&
      !killed_.load(std::memory_order_acquire)) {
    MutexLock reg_lock(reg_mu_);
    // Final commit so a later restart owes no replay. Failure here is
    // not fatal to the data: recovery replays from the last good commit.
    Status s = Commit();
    if (!s.ok()) {
      died_.store(true, std::memory_order_release);
    }
    journal_.Close();
    match_log_.Close();
  }
  ack_cv_.NotifyAll();
}

void Server::Kill() {
  if (killed_.exchange(true)) return;
  queue_.Close();
  if (ingest_.joinable()) ingest_.join();
  // No commit, no flush beyond what acks already forced: uncommitted
  // matches die with the process and are regenerated by recovery.
  {
    MutexLock reg_lock(reg_mu_);
    journal_.Close();
    match_log_.Close();
  }
  ack_cv_.NotifyAll();
}

void Server::Die(const std::string& reason) {
  (void)reason;
  died_.store(true, std::memory_order_release);
  killed_.store(true, std::memory_order_release);
  queue_.Close();
  ack_cv_.NotifyAll();
}

void Server::ApplyTierActions(Tier t) {
  // Shed everything below the top priority class on kShed+; restore on
  // return to kNormal. Deregistration drops the query's DCG (memory) and
  // its routing keys (work); re-registration re-bootstraps and re-reports
  // initial matches — degradation is lossy for shed queries by design.
  std::vector<std::pair<multi::QueryId, QueryGraph>> to_restore;
  std::vector<multi::QueryId> to_shed;
  {
    MutexLock lock(state_mu_);
    if (t >= Tier::kShed) {
      int top = 0;
      bool first = true;
      for (const auto& [id, sq] : queries_) {
        if (sq.shed) continue;
        top = first ? sq.priority : std::max(top, sq.priority);
        first = false;
      }
      for (auto& [id, sq] : queries_) {
        if (!sq.shed && sq.priority < top) to_shed.push_back(id);
      }
    } else if (t == Tier::kNormal) {
      for (auto& [id, sq] : queries_) {
        if (sq.shed) to_restore.emplace_back(id, sq.query);
      }
    }
  }
  for (multi::QueryId id : to_shed) {
    Status s = set_.Deregister(id);
    if (s.ok()) {
      MutexLock lock(state_mu_);
      queries_[id].shed = true;
      sheds_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (auto& [old_id, q] : to_restore) {
    MutexLock reg_lock(reg_mu_);
    TaggingSink sink(set_.applied_ops(), &pending_matches_);
    multi::QueryId new_id = 0;
    Status s = set_.Register(q, sink, Deadline::Infinite(), &new_id);
    if (!s.ok()) continue;
    MutexLock lock(state_mu_);
    int priority = queries_[old_id].priority;
    queries_.erase(old_id);
    queries_[new_id] = StandingQuery{std::move(q), priority, false};
    shed_restores_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status Server::EvalOp(const PendingOp& op) {
  uint64_t op_index = set_.applied_ops();
  TaggingSink sink(op_index, &pending_matches_);
  Status s = set_.ApplyUpdate(op.op, sink, Deadline::Infinite());
  if (!Consumed(s)) return s;
  if (options_.eval_throttle_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.eval_throttle_us));
  }
  return Status::Ok();
}

Status Server::Commit() {
  uint64_t through = set_.applied_ops();
  // 1. Match log first (W advances to `through`).
  Status s =
      match_log_.AppendCommit(pending_matches_, through, options_.injector);
  if (!s.ok()) {
    Die("match log commit: " + s.message());
    return s;
  }
  // 2. Snapshot to a temp file, then atomic rename (S advances).
  std::string tmp = SnapshotPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      Die("cannot open snapshot temp file");
      return Status::IoError("cannot open snapshot temp file: " + tmp);
    }
    s = set_.Checkpoint(out);
    out.flush();
    if (!s.ok() || !out) {
      Die("snapshot write failed");
      return s.ok() ? Status::IoError("snapshot write failed") : s;
    }
  }
  if (options_.injector != nullptr &&
      options_.injector->ShouldDieBeforeSnapshotRename()) {
    Die("injected death before snapshot rename");
    return Status::IoError("injected death before snapshot rename");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, SnapshotPath(), ec);
  if (ec) {
    Die("snapshot rename failed");
    return Status::IoError("snapshot rename failed: " + ec.message());
  }
  if (options_.injector != nullptr &&
      options_.injector->ShouldDieAfterSnapshotRename()) {
    Die("injected death after snapshot rename");
    return Status::IoError("injected death after snapshot rename");
  }
  pending_matches_.clear();
  ops_since_commit_ = 0;
  last_commit_us_ = NowMicros();
  committed_ops_.store(through, std::memory_order_relaxed);
  return Status::Ok();
}

void Server::IngestLoop() {
  std::vector<PendingOp> batch;
  while (true) {
    if (killed_.load(std::memory_order_acquire) ||
        died_.load(std::memory_order_acquire)) {
      return;
    }
    Tier t = tier();
    size_t window =
        t >= Tier::kWiden ? options_.widen_batch_window : options_.batch_window;
    batch.clear();
    size_t n = queue_.Drain(window, options_.drain_wait_ms, &batch);

    int64_t now = NowMicros();
    Tier observed =
        overload_.Observe(queue_.Depth(), queue_.Capacity(), now);
    if (observed != t) {
      PublishTier(observed);
      ApplyTierActions(observed);
    }

    if (n == 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      MutexLock reg_lock(reg_mu_);
      if (ops_since_commit_ > 0 &&
          now - last_commit_us_ >=
              int64_t{options_.checkpoint_interval_ms} * 1000) {
        if (!Commit().ok()) return;
      }
      continue;
    }

    FaultInjector* inj = options_.injector;
    if (inj != nullptr && inj->ShouldStallConsumer()) {
      SleepMs(inj->plan().stall_ms);
    }

    MutexLock reg_lock(reg_mu_);

    // Durability: append + flush every drained op, then ack.
    for (const PendingOp& op : batch) {
      Status s = journal_.Append(op, inj);
      if (!s.ok()) {
        Die("journal append: " + s.message());
        return;
      }
    }
    if (Status s = journal_.Flush(); !s.ok()) {
      Die("journal flush: " + s.message());
      return;
    }
    accepted_ops_.store(journal_.record_count(), std::memory_order_relaxed);
    {
      MutexLock lock(state_mu_);
      for (const PendingOp& op : batch) {
        uint64_t& hw = durable_hw_[op.channel];
        hw = std::max(hw, op.seq);
      }
    }
    ack_cv_.NotifyAll();

    // Evaluation + commit policy. An injected force-checkpoint commits
    // mid-batch, between an op's journal append and its match flush —
    // exactly the timer race the chaos suite probes.
    for (const PendingOp& op : batch) {
      Status s = EvalOp(op);
      if (!s.ok()) {
        Die("evaluation: " + s.message());
        return;
      }
      ++ops_since_commit_;
      bool forced = inj != nullptr && inj->ShouldForceCheckpoint();
      if (forced || ops_since_commit_ >= options_.checkpoint_every_ops) {
        if (!Commit().ok()) return;
      }
    }
    now = NowMicros();
    if (ops_since_commit_ > 0 &&
        now - last_commit_us_ >=
            int64_t{options_.checkpoint_interval_ms} * 1000) {
      if (!Commit().ok()) return;
    }
  }

  // Graceful exit: stopping_ and the queue is drained.
  MutexLock reg_lock(reg_mu_);
  (void)Commit();
}

Response Server::Submit(uint64_t channel, uint64_t seq,
                        std::span<const UpdateOp> ops) {
  if (killed_.load(std::memory_order_acquire) ||
      died_.load(std::memory_order_acquire)) {
    return ErrResponse(StatusCode::kFailedPrecondition, "server is down");
  }
  if (seq == 0 || ops.empty()) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "seq must be >= 1 and ops non-empty");
  }
  uint64_t last = seq + ops.size() - 1;
  size_t skip = 0;
  {
    MutexLock lock(state_mu_);
    auto it = durable_hw_.find(channel);
    uint64_t hw = it == durable_hw_.end() ? 0 : it->second;
    if (last <= hw) {
      Response r;
      r.kind = Response::Kind::kDup;
      r.seq = hw;
      return r;
    }
    if (seq > hw + 1) {
      return ErrResponse(StatusCode::kFailedPrecondition,
                         "sequence gap: durable high-water is " +
                             std::to_string(hw) + ", got seq " +
                             std::to_string(seq));
    }
    skip = static_cast<size_t>(hw + 1 - seq);  // resend overlap
  }

  Tier t = tier();
  if (t == Tier::kReject) {
    Response r;
    r.kind = Response::Kind::kRetry;
    r.retry_after_ms = options_.admission.retry_max_ms;
    r.queue_depth = queue_.Depth();
    r.queue_cap = queue_.Capacity();
    r.tier = t;
    return r;
  }

  std::vector<PendingOp> pending;
  pending.reserve(ops.size() - skip);
  for (size_t i = skip; i < ops.size(); ++i) {
    pending.push_back(PendingOp{channel, seq + i, ops[i]});
  }
  AdmitResult admit = queue_.TryPush(pending);
  if (!admit.accepted) {
    if (killed_.load(std::memory_order_acquire)) {
      return ErrResponse(StatusCode::kFailedPrecondition, "server is down");
    }
    Response r;
    r.kind = Response::Kind::kRetry;
    r.retry_after_ms = admit.retry_after_ms;
    r.queue_depth = admit.depth;
    r.queue_cap = queue_.Capacity();
    r.tier = t;
    return r;
  }

  // Wait (bounded) until the ingest thread journals our last op.
  int64_t deadline_us = NowMicros() + int64_t{options_.ack_timeout_ms} * 1000;
  MutexLock lock(state_mu_);
  while (true) {
    auto it = durable_hw_.find(channel);
    if (it != durable_hw_.end() && it->second >= last) {
      Response r;
      r.kind = Response::Kind::kOk;
      r.seq = last;
      return r;
    }
    if (killed_.load(std::memory_order_acquire) ||
        died_.load(std::memory_order_acquire)) {
      return ErrResponse(StatusCode::kFailedPrecondition,
                         "server went down before the ack");
    }
    if (NowMicros() >= deadline_us) {
      return ErrResponse(StatusCode::kDeadlineExceeded,
                         "ack wait timed out; resubmit after POS");
    }
    (void)ack_cv_.WaitFor(state_mu_, std::chrono::milliseconds(20));
  }
}

Response Server::Pos(uint64_t channel) {
  Response r;
  r.kind = Response::Kind::kPos;
  MutexLock lock(state_mu_);
  auto it = durable_hw_.find(channel);
  r.seq = it == durable_hw_.end() ? 0 : it->second;
  return r;
}

Response Server::Health() {
  Response r;
  r.kind = Response::Kind::kHealth;
  r.tier = tier();
  r.queue_depth = queue_.Depth();
  r.queue_cap = queue_.Capacity();
  r.accepted = accepted_ops_.load(std::memory_order_relaxed);
  r.committed = committed_ops_.load(std::memory_order_relaxed);
  return r;
}

Response Server::Stats() {
  obs::StatsSnapshot snap;
  set_.AppendStats(snap);
  snap.AddCounter("serve.ops_accepted",
                  accepted_ops_.load(std::memory_order_relaxed));
  snap.AddCounter("serve.ops_committed",
                  committed_ops_.load(std::memory_order_relaxed));
  snap.AddCounter("serve.queue_depth", queue_.Depth());
  snap.AddCounter("serve.queue_cap", queue_.Capacity());
  snap.AddCounter("serve.admitted_ops", queue_.accepted_ops());
  snap.AddCounter("serve.rejected_batches", queue_.rejected_batches());
  snap.AddCounter("serve.tier", tier_.load(std::memory_order_relaxed));
  snap.AddCounter("serve.sheds", sheds_.load(std::memory_order_relaxed));
  snap.AddCounter("serve.shed_restores",
                  shed_restores_.load(std::memory_order_relaxed));
  Response r;
  r.kind = Response::Kind::kStats;
  r.text = snap.ToJson();
  return r;
}

Response Server::Matches(uint64_t start, uint64_t limit) {
  std::vector<MatchRecord> all;
  Status s = CommittedMatches(&all);
  if (!s.ok()) return ErrResponse(s.code(), s.message());
  Response r;
  r.kind = Response::Kind::kMatches;
  for (uint64_t i = start; i < all.size() && r.matches.size() < limit; ++i) {
    r.matches.push_back(std::move(all[i]));
  }
  return r;
}

Status Server::CommittedMatches(std::vector<MatchRecord>* out) const {
  uint64_t watermark = 0;
  uint64_t valid_bytes = 0;
  return MatchLog::Load(MatchLogPath(), out, &watermark, &valid_bytes);
}

size_t Server::LiveQueryCount() { return set_.QueryCount(); }

ServerHandle::ServerHandle(Server& server, uint64_t channel)
    : server_(server),
      channel_(channel),
      bucket_(server.options().rate_limit_per_sec,
              server.options().rate_limit_burst) {
  next_seq_ = server_.Pos(channel_).seq + 1;
}

Response ServerHandle::TrySubmit(std::span<const UpdateOp> ops) {
  uint32_t retry_ms = 0;
  if (!bucket_.TryAcquire(static_cast<double>(ops.size()), NowMicros(),
                          &retry_ms)) {
    ++retries_observed_;
    Response r;
    r.kind = Response::Kind::kRetry;
    r.retry_after_ms = retry_ms;
    r.tier = server_.tier();
    return r;
  }
  Response r = server_.Submit(channel_, next_seq_, ops);
  if (r.kind == Response::Kind::kOk) {
    next_seq_ = r.seq + 1;
  } else if (r.kind == Response::Kind::kDup) {
    next_seq_ = std::max(next_seq_, r.seq + 1);
  } else if (r.kind == Response::Kind::kRetry) {
    ++retries_observed_;
  }
  return r;
}

Response ServerHandle::Submit(std::span<const UpdateOp> ops,
                              int max_attempts) {
  Response r;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    r = TrySubmit(ops);
    if (r.kind != Response::Kind::kRetry) return r;
    SleepMs(std::max<uint32_t>(1, r.retry_after_ms));
  }
  return r;
}

uint64_t ServerHandle::Resync() {
  uint64_t hw = server_.Pos(channel_).seq;
  next_seq_ = hw + 1;
  return hw;
}

}  // namespace serve
}  // namespace turboflux
