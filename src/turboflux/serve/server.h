#ifndef TURBOFLUX_SERVE_SERVER_H_
#define TURBOFLUX_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "turboflux/common/status.h"
#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"
#include "turboflux/graph/graph.h"
#include "turboflux/harness/fault_injection.h"
#include "turboflux/multi/query_set.h"
#include "turboflux/query/query_graph.h"
#include "turboflux/serve/admission.h"
#include "turboflux/serve/match_log.h"
#include "turboflux/serve/overload.h"
#include "turboflux/serve/protocol.h"
#include "turboflux/serve/wal.h"

namespace turboflux {
namespace serve {

/// Configuration of one server instance. Everything is deterministic
/// given the same inputs except thread interleaving; the chaos suite
/// relies on the durability protocol (not scheduling) for its
/// byte-equality guarantee.
struct ServeOptions {
  /// Directory holding ops.wal, matches.log, snapshot.tfxq. Created if
  /// missing. Restarting a server on the same data_dir resumes it.
  std::string data_dir;

  /// Admission queue (bounded hand-off producers → ingest thread).
  AdmissionConfig admission;

  /// Overload degradation thresholds (fractions of the admission cap).
  OverloadConfig overload;

  /// Max ops drained and evaluated per ingest iteration...
  size_t batch_window = 64;
  /// ...and the widened window used at Tier::kWiden and above, trading
  /// per-op latency for fewer WAL flushes and commits per op.
  size_t widen_batch_window = 512;

  /// Commit (match-log COMMIT + engine snapshot) at least every this many
  /// evaluated ops and at least this often in wall time — together they
  /// bound checkpoint lag, and with it the replay work a restart can owe.
  uint64_t checkpoint_every_ops = 512;
  uint32_t checkpoint_interval_ms = 200;

  /// Per-connection token-bucket rate limit (ops/sec; 0 disables) used by
  /// ServerHandle and the TCP layer.
  double rate_limit_per_sec = 0;
  double rate_limit_burst = 256;

  /// How long the ingest thread waits for work per iteration (also the
  /// resolution of the checkpoint timer) and how long a producer waits
  /// for its durability ack before giving up.
  uint32_t drain_wait_ms = 5;
  uint32_t ack_timeout_ms = 10000;

  /// Synthetic per-op evaluation cost (busy time, microseconds). Test
  /// hook: pins the sustainable throughput so overload tests can submit
  /// at a known multiple of it. 0 in production.
  uint32_t eval_throttle_us = 0;

  /// Multi-query engine configuration.
  multi::QuerySetOptions set;

  /// Optional service-level fault injection (chaos tests). Not owned.
  FaultInjector* injector = nullptr;
};

/// The tfx_serve ingestion daemon core (DESIGN.md §3.12): a
/// multi::QuerySet fronted by a bounded admission queue, an op journal
/// (WAL), and a durable match log, with timer-driven checkpoints and
/// tiered overload degradation.
///
/// Durability protocol (exactly-once under kill -9):
///   * An op is acked only after its WAL record is flushed. Producers
///     key ops with (channel, seq); the server acks `OK seq`, answers
///     resends below the durable high-water mark with `DUP`, and rejects
///     sequence gaps — so any number of retries lands each op once.
///   * Matches are buffered in memory, tagged with the 0-based WAL index
///     of the op that produced them, and become durable at commit:
///     match-log block + COMMIT marker flushed FIRST, engine snapshot
///     written and atomically renamed SECOND. The order is load-bearing:
///     a snapshot ahead of the match log would skip replaying ops whose
///     matches were never persisted (invariant S <= W <= J for snapshot
///     position, match watermark, journal length).
///   * Recovery: restore the snapshot (or bind g0), truncate the WAL's
///     torn tail and the match log past its last complete COMMIT, replay
///     WAL[S, J) — matches from ops below W are regenerated and
///     discarded (already durable), matches at or above W are committed
///     fresh. Deterministic evaluation makes the regenerated stream
///     identical, which is what the chaos suite's byte-equality check
///     pins.
///
/// Known non-atomicity: RegisterQuery's initial-match report commits
/// durably before the call returns, but a crash *inside* the call can
/// leave the registration itself unrecorded; the caller must treat a
/// missing id on restart as "re-register". Stream ops are exactly-once
/// regardless.
class Server {
 public:
  /// Builds a server over `options.data_dir`, running crash recovery if
  /// the directory holds prior state. `g0` is required for a fresh
  /// directory (it seeds the graph) and ignored when a snapshot exists.
  [[nodiscard]] static Status Create(const ServeOptions& options,
                                     const Graph* g0,
                                     std::unique_ptr<Server>* out);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a standing query. Higher `priority` survives longer under
  /// overload shedding (ties shed together). Reports the query's matches
  /// against the current graph into the durable match stream and commits
  /// before returning. Only valid while the ingest thread is stopped or
  /// between its iterations — internally serialized with evaluation.
  [[nodiscard]] Status RegisterQuery(const QueryGraph& q, int priority,
                                     multi::QueryId* id) EXCLUDES(state_mu_);

  /// Starts the ingest thread. Call after initial RegisterQuery calls.
  void Start();

  /// Graceful stop: drains the admission queue, evaluates everything,
  /// runs a final commit, closes files. Idempotent.
  void Shutdown();

  /// Chaos stop: abandons queued and in-flight work without committing,
  /// as a kill -9 would. Acked ops stay durable in the WAL; uncommitted
  /// matches are regenerated by the next recovery. Idempotent.
  void Kill();

  // --- Client surface (thread-safe; called from connection threads) ---

  /// Submits ops with consecutive sequence numbers starting at `seq` on
  /// `channel`. Blocks until the ops are durable (OK), known-duplicate
  /// (DUP), refused by backpressure (RETRY), or failed (ERR).
  Response Submit(uint64_t channel, uint64_t seq,
                  std::span<const UpdateOp> ops) EXCLUDES(state_mu_);

  /// Durable high-water sequence for `channel` (POS).
  Response Pos(uint64_t channel) EXCLUDES(state_mu_);

  /// Overload tier + queue depth + op counters. Served from atomics and
  /// one short queue lock — never waits on evaluation (the < 100 ms
  /// overload guarantee rests on this).
  Response Health();

  /// Full StatsSnapshot JSON (takes the QuerySet mutex; may wait).
  Response Stats() EXCLUDES(state_mu_);

  /// Committed match records [start, start+limit) from the durable match
  /// log (prefix-consistent read of the on-disk file).
  Response Matches(uint64_t start, uint64_t limit);

  // --- Introspection (tests) ---

  /// All committed match records (loads the match log from disk).
  [[nodiscard]] Status CommittedMatches(std::vector<MatchRecord>* out) const;

  bool died() const { return died_.load(std::memory_order_acquire); }
  Tier tier() const {
    return static_cast<Tier>(tier_.load(std::memory_order_relaxed));
  }
  size_t LiveQueryCount() EXCLUDES(state_mu_);
  uint64_t accepted_ops() const {
    return accepted_ops_.load(std::memory_order_relaxed);
  }
  uint64_t committed_ops() const {
    return committed_ops_.load(std::memory_order_relaxed);
  }
  const ServeOptions& options() const { return options_; }

 private:
  explicit Server(const ServeOptions& options);

  Status Recover(const Graph* g0) EXCLUDES(reg_mu_);
  void IngestLoop() EXCLUDES(reg_mu_);
  /// Evaluates one admitted op; matches land in pending_matches_.
  Status EvalOp(const PendingOp& op) REQUIRES(reg_mu_);
  /// The commit described in the class comment. Ingest thread only.
  Status Commit() REQUIRES(reg_mu_);
  /// Marks the server dead after an (injected or real) IO fault, as if
  /// the process had been killed at that exact write.
  void Die(const std::string& reason);
  void PublishTier(Tier t) { tier_.store(static_cast<uint8_t>(t), std::memory_order_relaxed); }
  /// Applies shed/restore actions on tier change. Ingest thread only.
  void ApplyTierActions(Tier t) EXCLUDES(reg_mu_, state_mu_);

  std::string WalPath() const { return options_.data_dir + "/ops.wal"; }
  std::string MatchLogPath() const { return options_.data_dir + "/matches.log"; }
  std::string SnapshotPath() const { return options_.data_dir + "/snapshot.tfxq"; }

  const ServeOptions options_;

  // Engine + durable structures: ingest thread only after Start() (the
  // registration path is serialized against the loop via reg_mu_).
  Mutex reg_mu_;  ///< serializes RegisterQuery/shed against ingest iterations
  multi::QuerySet set_;
  OpJournal journal_ GUARDED_BY(reg_mu_);
  MatchLog match_log_ GUARDED_BY(reg_mu_);
  std::vector<MatchRecord> pending_matches_ GUARDED_BY(reg_mu_);
  OverloadController overload_{OverloadConfig{}};
  int64_t last_commit_us_ GUARDED_BY(reg_mu_) = 0;
  uint64_t ops_since_commit_ GUARDED_BY(reg_mu_) = 0;

  AdmissionQueue queue_;

  /// Standing-query bookkeeping for shedding. std::map keeps shed order
  /// deterministic (ascending id within a priority scan).
  struct StandingQuery {
    QueryGraph query;
    int priority = 0;
    bool shed = false;
  };

  mutable Mutex state_mu_;
  CondVar ack_cv_;  // paired with state_mu_; notified outside the lock
  std::map<uint64_t, uint64_t> durable_hw_ GUARDED_BY(state_mu_);
  std::map<multi::QueryId, StandingQuery> queries_ GUARDED_BY(state_mu_);

  std::atomic<uint8_t> tier_{0};
  std::atomic<uint64_t> accepted_ops_{0};   ///< WAL-durable op count (J)
  std::atomic<uint64_t> committed_ops_{0};  ///< last commit position (S=W)
  std::atomic<bool> stopping_{false};
  std::atomic<bool> killed_{false};
  std::atomic<bool> died_{false};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> shed_restores_{0};

  std::thread ingest_;
  bool started_ = false;
};

/// In-process client: owns a channel, tracks its next sequence number,
/// and applies the per-connection token bucket exactly like a TCP
/// connection would. The test harness's window onto the server.
class ServerHandle {
 public:
  ServerHandle(Server& server, uint64_t channel);

  /// One submit attempt (rate-limited). Returns the raw response.
  Response TrySubmit(std::span<const UpdateOp> ops);

  /// Submits with retry: honors RETRY/rate-limit hints by sleeping, up
  /// to `max_attempts`. Returns the final response (OK/DUP on success).
  Response Submit(std::span<const UpdateOp> ops, int max_attempts = 64);

  /// Re-syncs next_seq from the server's durable position — the
  /// reconnect dance a remote producer performs after a crash. Returns
  /// the durable high-water mark.
  uint64_t Resync();

  uint64_t next_seq() const { return next_seq_; }
  uint64_t channel() const { return channel_; }
  /// RETRY responses observed (backpressure visibility for tests).
  uint64_t retries_observed() const { return retries_observed_; }

 private:
  Server& server_;
  const uint64_t channel_;
  uint64_t next_seq_ = 1;
  TokenBucket bucket_;
  uint64_t retries_observed_ = 0;
};

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_SERVER_H_
