#include "turboflux/serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "turboflux/common/deadline.h"
#include "turboflux/serve/admission.h"

namespace turboflux {
namespace serve {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Deadline::Clock::now().time_since_epoch())
      .count();
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SendResponse(int fd, const Response& response) {
  std::string frame;
  EncodeFrame(EncodeResponse(response), frame);
  (void)SendAll(fd, frame.data(), frame.size());
}

}  // namespace

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Listen(Server& server, uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind() failed: " + std::string(strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  accept_thread_ = std::thread([this, &server] { AcceptLoop(&server); });
  return Status::Ok();
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    MutexLock lock(conn_mu_);
    for (int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    MutexLock lock(conn_mu_);
    for (int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
}

void TcpServer::AcceptLoop(Server* server) {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal
    }
    MutexLock lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(
        [this, server, fd] { HandleConnection(server, fd); });
  }
}

void TcpServer::HandleConnection(Server* server, int fd) {
  // Each connection is an independent producer: its own frame decoder,
  // its own rate-limit bucket. The channel id arrives in each request.
  TokenBucket bucket(server->options().rate_limit_per_sec,
                     server->options().rate_limit_burst);
  FrameDecoder decoder;
  char buf[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // disconnect: any buffered partial frame is discarded
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    std::string payload;
    while (decoder.Next(&payload)) {
      Request request;
      Status parse = ParseRequest(payload, &request);
      if (!parse.ok()) {
        Response err;
        err.kind = Response::Kind::kErr;
        err.code = parse.code();
        err.text = parse.message();
        SendResponse(fd, err);
        continue;
      }
      Response response;
      switch (request.kind) {
        case Request::Kind::kSubmit: {
          uint32_t retry_ms = 0;
          if (!bucket.TryAcquire(static_cast<double>(request.ops.size()),
                                 NowMicros(), &retry_ms)) {
            response.kind = Response::Kind::kRetry;
            response.retry_after_ms = retry_ms;
            response.tier = server->tier();
            break;
          }
          response = server->Submit(request.channel, request.seq,
                                    request.ops);
          break;
        }
        case Request::Kind::kPos:
          response = server->Pos(request.channel);
          break;
        case Request::Kind::kHealth:
          response = server->Health();
          break;
        case Request::Kind::kStats:
          response = server->Stats();
          break;
        case Request::Kind::kMatches:
          response = server->Matches(request.start, request.limit);
          break;
        case Request::Kind::kPing:
          response.kind = Response::Kind::kPong;
          break;
      }
      SendResponse(fd, response);
    }
    if (!decoder.status().ok()) {
      Response err;
      err.kind = Response::Kind::kErr;
      err.code = decoder.status().code();
      err.text = decoder.status().message();
      SendResponse(fd, err);
      break;  // the stream cannot be resynchronized
    }
  }
  ::shutdown(fd, SHUT_RDWR);
}

TcpClient::~TcpClient() { Close(); }

Status TcpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    return Status::IoError("connect() failed: " + std::string(strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  decoder_ = FrameDecoder();
  return Status::Ok();
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpClient::Call(const Request& request, Response* response,
                       FaultInjector* injector) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string frame;
  EncodeFrame(EncodeRequest(request), frame);
  size_t send_len = frame.size();
  bool drop = injector != nullptr && injector->ShouldDropConnection();
  if (drop) send_len = frame.size() > 1 ? frame.size() / 2 : 0;
  if (!SendAll(fd_, frame.data(), send_len)) {
    Close();
    return Status::IoError("send failed");
  }
  if (drop) {
    // Tear the connection mid-frame: the server must drop the partial
    // frame without dispatching it.
    Close();
    return Status::IoError("injected connection drop mid-frame");
  }
  std::string payload;
  char buf[4096];
  while (!decoder_.Next(&payload)) {
    if (!decoder_.status().ok()) {
      Close();
      return decoder_.status();
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Close();
      return Status::IoError("connection closed mid-response");
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  return ParseResponse(payload, response);
}

}  // namespace serve
}  // namespace turboflux
