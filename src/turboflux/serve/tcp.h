#ifndef TURBOFLUX_SERVE_TCP_H_
#define TURBOFLUX_SERVE_TCP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "turboflux/common/status.h"
#include "turboflux/common/synchronization.h"
#include "turboflux/common/thread_annotations.h"
#include "turboflux/harness/fault_injection.h"
#include "turboflux/serve/protocol.h"
#include "turboflux/serve/server.h"

namespace turboflux {
namespace serve {

/// TCP frontend: accepts connections on a loopback/any port, decodes
/// length-prefixed frames, dispatches requests to a Server, and writes
/// one response frame per request. One handler thread per connection —
/// the expected fan-in is a handful of producers, and the admission
/// queue (not the socket layer) is the concurrency bottleneck by design.
///
/// Each connection gets its own token bucket (ServeOptions.rate_limit_*),
/// so one hot producer cannot starve the rest of the admission window; a
/// refused acquire answers RETRY with the bucket's refill hint.
///
/// Robustness: a half-frame followed by disconnect is discarded (never
/// dispatched); a malformed frame or oversized length poisons only that
/// connection, which is answered with ERR where possible and closed.
class TcpServer {
 public:
  TcpServer() = default;
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the accept loop.
  [[nodiscard]] Status Listen(Server& server, uint16_t port);

  /// Stops accepting, closes all connections, joins all threads.
  void Stop();

  /// The bound port (valid after Listen).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop(Server* server);
  void HandleConnection(Server* server, int fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  Mutex conn_mu_;
  std::vector<std::thread> conn_threads_ GUARDED_BY(conn_mu_);
  std::vector<int> conn_fds_ GUARDED_BY(conn_mu_);
};

/// Minimal blocking client for tests and the example session in the
/// README: sends one request frame, reads one response frame.
class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  [[nodiscard]] Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Round-trips `request`. With an injector whose plan sets
  /// drop_connection_at_frame, the marked frame is torn mid-send and the
  /// connection closed (the server must discard the partial frame).
  [[nodiscard]] Status Call(const Request& request, Response* response,
                            FaultInjector* injector = nullptr);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_TCP_H_
