#include "turboflux/serve/wal.h"

#include <filesystem>
#include <fstream>

#include "turboflux/common/serialize.h"

namespace turboflux {
namespace serve {

namespace {

bool ReadAll(const std::string& path, std::string* out, bool* exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *exists = false;
    return true;
  }
  *exists = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return false;
  *out = std::move(data);
  return true;
}

}  // namespace

OpJournal::~OpJournal() { Close(); }

void OpJournal::EncodeRecord(const PendingOp& record, std::string& out) {
  std::string payload;
  bin::PutU64(payload, record.channel);
  bin::PutU64(payload, record.seq);
  bin::PutU8(payload, static_cast<uint8_t>(record.op.type));
  bin::PutU32(payload, record.op.from);
  bin::PutU32(payload, record.op.label);
  bin::PutU32(payload, record.op.to);
  bin::PutU32(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  bin::PutU32(out, bin::Crc32(payload));
}

Status OpJournal::Load(const std::string& path,
                       std::vector<PendingOp>* records,
                       uint64_t* valid_bytes) {
  records->clear();
  *valid_bytes = 0;
  std::string data;
  bool exists = false;
  if (!ReadAll(path, &data, &exists)) {
    return Status::IoError("cannot read journal: " + path);
  }
  if (!exists) return Status::Ok();

  size_t pos = 0;
  while (pos < data.size()) {
    // Anything short of a complete, checksum-valid record is a torn
    // tail: stop, report the prefix, and let Open() truncate.
    if (data.size() - pos < 4) break;
    bin::Reader len_reader(std::string_view(data).substr(pos, 4));
    uint32_t len = 0;
    (void)len_reader.GetU32(&len);
    if (len > (1u << 16) || data.size() - pos - 4 < len + 4u) break;
    std::string_view payload = std::string_view(data).substr(pos + 4, len);
    bin::Reader crc_reader(std::string_view(data).substr(pos + 4 + len, 4));
    uint32_t crc = 0;
    (void)crc_reader.GetU32(&crc);
    if (crc != bin::Crc32(payload)) break;

    bin::Reader r(payload);
    PendingOp rec;
    uint8_t type = 0;
    if (!r.GetU64(&rec.channel) || !r.GetU64(&rec.seq) || !r.GetU8(&type) ||
        !r.GetU32(&rec.op.from) || !r.GetU32(&rec.op.label) ||
        !r.GetU32(&rec.op.to) || !r.exhausted() || type > 1) {
      break;
    }
    rec.op.type = static_cast<UpdateOp::Type>(type);
    records->push_back(rec);
    pos += 4 + len + 4;
  }
  *valid_bytes = pos;
  return Status::Ok();
}

Status OpJournal::Open(const std::string& path, uint64_t valid_bytes,
                       uint64_t record_count) {
  Close();
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    uint64_t size = std::filesystem::file_size(path, ec);
    if (!ec && size > valid_bytes) {
      std::filesystem::resize_file(path, valid_bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate torn journal tail: " + path);
      }
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open journal for append: " + path);
  }
  record_count_ = record_count;
  return Status::Ok();
}

Status OpJournal::Append(const PendingOp& record, FaultInjector* injector) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is not open");
  }
  std::string encoded;
  EncodeRecord(record, encoded);
  size_t write_len = encoded.size();
  bool torn = injector != nullptr && injector->ShouldTearWalRecord();
  if (torn) write_len = encoded.size() / 2;
  if (std::fwrite(encoded.data(), 1, write_len, file_) != write_len) {
    return Status::IoError("journal append failed");
  }
  if (torn) {
    // Make the torn bytes visible to the next recovery, like a real
    // crash after a partial page write.
    (void)std::fflush(file_);
    return Status::IoError("injected torn journal write");
  }
  ++record_count_;
  return Status::Ok();
}

Status OpJournal::Flush() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is not open");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("journal flush failed");
  }
  return Status::Ok();
}

void OpJournal::Close() {
  if (file_ != nullptr) {
    (void)std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace serve
}  // namespace turboflux
