#ifndef TURBOFLUX_SERVE_WAL_H_
#define TURBOFLUX_SERVE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "turboflux/common/status.h"
#include "turboflux/harness/fault_injection.h"
#include "turboflux/serve/admission.h"

namespace turboflux {
namespace serve {

// Operation journal (WAL) of the ingestion service (DESIGN.md §3.12).
//
// An append-only file of CRC-framed records, one per admitted update op:
//
//   u32 payload_len | payload | u32 crc32(payload)
//   payload := u64 channel, u64 seq, u8 type, u32 from, u32 label, u32 to
//
// Durability contract: an op is acknowledged to its producer only after
// its record is appended AND flushed. The journal therefore defines the
// service's op index space — record i (0-based) is "op index i" in every
// other durable structure (match log watermarks, snapshot positions).
//
// Torn tails are expected: a crash mid-append leaves a record with a bad
// length/CRC at the end of the file. Load() stops at the first invalid
// record and reports the byte offset of the valid prefix; Open()
// truncates the file there, so the torn bytes never survive a restart.
// Ops lost to a torn tail were never acked, so producers resend them.

class OpJournal {
 public:
  OpJournal() = default;
  ~OpJournal();
  OpJournal(const OpJournal&) = delete;
  OpJournal& operator=(const OpJournal&) = delete;

  /// Parses `path` (missing file = zero records), tolerating a torn tail.
  /// *valid_bytes is the offset of the valid prefix — the caller (or
  /// Open) truncates there. Corruption *before* the tail (a bad record
  /// followed by a good one) is indistinguishable from a tear and is
  /// likewise treated as end-of-journal.
  [[nodiscard]] static Status Load(const std::string& path,
                                   std::vector<PendingOp>* records,
                                   uint64_t* valid_bytes);

  /// Truncates the file to its valid prefix and opens it for appends.
  /// `record_count` must be the size of the vector Load produced (it
  /// seeds the op-index counter).
  [[nodiscard]] Status Open(const std::string& path, uint64_t valid_bytes,
                            uint64_t record_count);

  /// Appends one record. If `injector` trips ShouldTearWalRecord, only a
  /// prefix of the record reaches the file and the returned status is
  /// kIoError ("injected torn write") — the server treats that as a
  /// crash. No flush is implied; call Flush() before acking.
  [[nodiscard]] Status Append(const PendingOp& record,
                              FaultInjector* injector);

  /// Flushes appended records to the OS. Acks may be sent after this.
  [[nodiscard]] Status Flush();

  void Close();

  /// Total records durable in the journal == the next op index.
  uint64_t record_count() const { return record_count_; }

  static void EncodeRecord(const PendingOp& record, std::string& out);

 private:
  std::FILE* file_ = nullptr;
  uint64_t record_count_ = 0;
};

}  // namespace serve
}  // namespace turboflux

#endif  // TURBOFLUX_SERVE_WAL_H_
