// SymBi Checkpoint/Restore (DESIGN.md §3.13). Same framing discipline as
// the TurboFlux snapshot (magic + version, then CRC32-framed sections in
// fixed order), different magic and payload: meta (stream position +
// semantics), query graph, DAG vertex order, data graph, D1/D2 bitsets.
//
// The DCS is a pure function of (graph, query, DAG), so Restore recomputes
// it from the restored graph instead of decoding counters — and then
// cross-validates the recomputed flags against the snapshot's bitsets,
// a structural corruption check on top of the per-section CRCs. Enumeration
// order is fully determined by graph adjacency order (preserved verbatim by
// Graph::Serialize) plus the DAG order, so a restored engine reproduces the
// original's subsequent match stream byte-for-byte.

#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/serialize.h"
#include "turboflux/symbi/symbi.h"

namespace turboflux {
namespace symbi {

namespace {

constexpr char kMagic[4] = {'T', 'F', 'X', 'S'};
constexpr uint32_t kFormatVersion = 1;

// Section tags (arbitrary distinct constants), in write order.
enum SectionTag : uint32_t {
  kSectionMeta = 0x4154454d,   // "META"
  kSectionQuery = 0x47595251,  // "QRYG"
  kSectionDag = 0x31474144,    // "DAG1"
  kSectionGraph = 0x48505247,  // "GRPH"
  kSectionDcs = 0x31534344,    // "DCS1"
};

}  // namespace

Status SymBiEngine::Checkpoint(std::ostream& out) const {
  if (q_ == nullptr) {
    return Status::FailedPrecondition("Checkpoint before Init");
  }
  if (dead_) {
    return Status::FailedPrecondition(
        "engine is dead; a snapshot would capture partial state");
  }
  Stopwatch watch;
  const std::streampos start_pos = out.tellp();

  out.write(kMagic, sizeof(kMagic));
  std::string hdr;
  bin::PutU32(hdr, kFormatVersion);
  out.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));

  Status st = WriteStateSections(out, /*include_graph=*/true);
  if (!st.ok()) return st;

  out.flush();
  if (!out) return Status::IoError("checkpoint stream write failed");
  stats_.checkpoints.Inc();
  stats_.checkpoint_seconds.RecordSeconds(watch.ElapsedSeconds());
  if (const std::streampos end_pos = out.tellp();
      start_pos != std::streampos(-1) && end_pos != std::streampos(-1)) {
    stats_.checkpoint_bytes.Inc(static_cast<uint64_t>(end_pos - start_pos));
  }
  return Status::Ok();
}

Status SymBiEngine::WriteStateSections(std::ostream& out,
                                       bool include_graph) const {
  if (q_ == nullptr) {
    return Status::FailedPrecondition("WriteStateSections before Init");
  }
  const QueryGraph& q = *q_;

  std::string meta;
  bin::PutU64(meta, applied_ops_);
  bin::PutU8(meta,
             options_.semantics == MatchSemantics::kIsomorphism ? 1 : 0);
  Status st = bin::WriteSection(out, kSectionMeta, meta);
  if (!st.ok()) return st;

  std::string qbuf;
  SerializeQueryGraph(qbuf, q);
  st = bin::WriteSection(out, kSectionQuery, qbuf);
  if (!st.ok()) return st;

  // The DAG is determined by its vertex order; persisting the order (not
  // the root-selection heuristic's inputs) keeps a restored engine on the
  // DAG its stream history was evaluated under even if the heuristic
  // would pick a different root for the current graph.
  std::string dagbuf;
  bin::PutU32(dagbuf, static_cast<uint32_t>(dag_.order().size()));
  for (QVertexId u : dag_.order()) bin::PutU32(dagbuf, u);
  st = bin::WriteSection(out, kSectionDag, dagbuf);
  if (!st.ok()) return st;

  if (include_graph) {
    std::string gbuf;
    g_.Serialize(gbuf);
    st = bin::WriteSection(out, kSectionGraph, gbuf);
    if (!st.ok()) return st;
  }

  std::string dbuf;
  dcs_.SerializeFlags(dbuf);
  st = bin::WriteSection(out, kSectionDcs, dbuf);
  if (!st.ok()) return st;
  if (!out) return Status::IoError("state section stream write failed");
  return Status::Ok();
}

Status SymBiEngine::Restore(std::istream& in) {
  Stopwatch watch;
  const std::streampos start_pos = in.tellg();

  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    dead_ = true;
    return Status::Corruption("bad checkpoint magic");
  }
  char vbytes[4];
  in.read(vbytes, sizeof(vbytes));
  if (in.gcount() != sizeof(vbytes)) {
    dead_ = true;
    return Status::Corruption("truncated checkpoint header");
  }
  uint32_t version = 0;
  bin::Reader vr(std::string_view(vbytes, sizeof(vbytes)));
  vr.GetU32(&version);
  if (version != kFormatVersion) {
    dead_ = true;
    return Status::UnsupportedVersion(
        "checkpoint format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        ")");
  }

  Status st = ReadStateSections(in, /*shared_graph=*/nullptr);
  if (!st.ok()) return st;  // ReadStateSections left the engine dead

  stats_.restores.Inc();
  stats_.restore_seconds.RecordSeconds(watch.ElapsedSeconds());
  if (const std::streampos end_pos = in.tellg();
      start_pos != std::streampos(-1) && end_pos != std::streampos(-1)) {
    stats_.restore_bytes.Inc(static_cast<uint64_t>(end_pos - start_pos));
  }
  return Status::Ok();
}

Status SymBiEngine::ReadStateSections(std::istream& in,
                                      const Graph* shared_graph) {
  // Any failure past this point may leave partially-overwritten state, so
  // the engine is marked dead — the caller either retries with an intact
  // snapshot or discards the engine.
  auto fail = [this](Status st) {
    dead_ = true;
    return st;
  };

  if (shared_graph != nullptr) {
    return fail(Status::FailedPrecondition(
        "the SymBi engine has no shared-graph mode"));
  }

  std::string meta, qbuf, dagbuf, gbuf, dbuf;
  Status st;
  if (!(st = bin::ReadSection(in, kSectionMeta, &meta)).ok() ||
      !(st = bin::ReadSection(in, kSectionQuery, &qbuf)).ok() ||
      !(st = bin::ReadSection(in, kSectionDag, &dagbuf)).ok() ||
      !(st = bin::ReadSection(in, kSectionGraph, &gbuf)).ok() ||
      !(st = bin::ReadSection(in, kSectionDcs, &dbuf)).ok()) {
    return fail(st);
  }

  // Meta: stream position + the semantics the snapshot was taken under.
  bin::Reader mr(meta);
  uint64_t applied = 0;
  uint8_t sem = 0;
  if (!mr.GetU64(&applied) || !mr.GetU8(&sem) || sem > 1 ||
      !mr.exhausted()) {
    return fail(Status::Corruption("malformed meta section"));
  }
  MatchSemantics semantics =
      sem ? MatchSemantics::kIsomorphism : MatchSemantics::kHomomorphism;
  if (semantics != options_.semantics) {
    return fail(Status::FailedPrecondition(
        "snapshot semantics do not match this engine's options"));
  }

  // Query graph, into engine-owned storage so the restored engine does not
  // depend on any caller-provided QueryGraph staying alive.
  bin::Reader qr(qbuf);
  auto q = std::make_unique<QueryGraph>();
  if (!(st = DeserializeQueryGraph(qr, q.get())).ok()) return fail(st);
  const uint32_t nq = static_cast<uint32_t>(q->VertexCount());

  // DAG vertex order, validated structurally by FromOrder.
  bin::Reader dagr(dagbuf);
  uint32_t norder = 0;
  if (!dagr.GetU32(&norder) || norder != nq) {
    return fail(Status::Corruption("bad DAG order length"));
  }
  std::vector<QVertexId> order(norder);
  for (uint32_t i = 0; i < norder; ++i) {
    if (!dagr.GetU32(&order[i])) {
      return fail(Status::Corruption("truncated DAG order"));
    }
  }
  if (!dagr.exhausted()) {
    return fail(Status::Corruption("trailing bytes in DAG section"));
  }
  QueryDag dag;
  if (!QueryDag::FromOrder(*q, order, &dag)) {
    return fail(Status::Corruption(
        "DAG order is not a connected BFS-style permutation"));
  }

  // Data graph (self-validating: mirrors cross-checked, ids bounded).
  Graph g;
  bin::Reader gr(gbuf);
  if (!(st = g.Deserialize(gr)).ok()) return fail(st);
  if (!gr.exhausted()) {
    return fail(Status::Corruption("trailing bytes in graph section"));
  }

  // Commit the engine's identity, then recompute the DCS bound to the
  // now-final members and cross-validate it against the snapshot's flags:
  // a mismatch means graph/query/DAG/DCS sections from different snapshots
  // were spliced together (each section's own CRC would still pass).
  owned_q_ = std::move(q);
  q_ = owned_q_.get();
  g_ = std::move(g);
  dag_ = std::move(dag);
  dcs_.Build(*q_, dag_, g_, &stats_.dcs);
  std::string recomputed;
  dcs_.SerializeFlags(recomputed);
  if (recomputed != dbuf) {
    return fail(Status::Corruption(
        "DCS flag bitsets do not match the restored graph"));
  }

  m_.assign(q_->VertexCount(), kNullVertex);
  mapped_.assign(q_->VertexCount(), false);
  iso_cands_.assign(q_->VertexCount(), {});
  isolated_.clear();
  has_updated_edge_ = false;
  deadline_ = nullptr;

  applied_ops_ = applied;
  // Quarantine reports at or past the snapshot position will be re-issued
  // by replay; drop them so each consumed op is reported exactly once.
  std::erase_if(quarantine_, [this](const QuarantinedOp& e) {
    return e.index >= applied_ops_;
  });
  dead_ = false;

  // Restore is not an op-stream event: engine counters keep accumulating
  // across it (replayed ops are re-counted; DESIGN.md §3.8), only the
  // gauges are re-pointed at the restored structure.
  stats_.intermediate_size.Set(dcs_.D1Count());
  stats_.peak_intermediate.SetMax(dcs_.D1Count());
  NotePeakIntermediate();
  return Status::Ok();
}

}  // namespace symbi
}  // namespace turboflux
