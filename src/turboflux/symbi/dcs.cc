#include "turboflux/symbi/dcs.h"

#include <cassert>
#include <cstdint>

#include "turboflux/common/serialize.h"

namespace turboflux {
namespace symbi {

void Dcs::Build(const QueryGraph& q, const QueryDag& dag, const Graph& g,
                obs::DcsStats* stats) {
  q_ = &q;
  dag_ = &dag;
  stats_ = stats;
  nv_ = g.VertexCount();
  const size_t nq = q.VertexCount();
  cand_.assign(nq, {});
  d1_.assign(nq, {});
  d2_.assign(nq, {});
  n1_.assign(nq, {});
  n2_.assign(nq, {});
  parent_slot_of_.assign(q.EdgeCount(), SIZE_MAX);
  child_slot_of_.assign(q.EdgeCount(), SIZE_MAX);
  d1_count_ = d2_count_ = 0;
  for (QVertexId u = 0; u < nq; ++u) {
    cand_[u].assign(nv_, 0);
    d1_[u].assign(nv_, 0);
    d2_[u].assign(nv_, 0);
    n1_[u].assign(dag.parents(u).size() * nv_, 0);
    n2_[u].assign(dag.children(u).size() * nv_, 0);
    for (VertexId v = 0; v < nv_; ++v) {
      cand_[u][v] = q.VertexMatches(u, g, v) ? 1 : 0;
    }
    for (size_t i = 0; i < dag.parents(u).size(); ++i) {
      parent_slot_of_[dag.parents(u)[i].qedge] = i;
    }
    for (size_t j = 0; j < dag.children(u).size(); ++j) {
      child_slot_of_[dag.children(u)[j].qedge] = j;
    }
  }

  // Top-down sweep in DAG order: every parent's D1 column is final before
  // any of its children is processed.
  for (QVertexId u : dag.order()) {
    for (size_t s = 0; s < dag.parents(u).size(); ++s) {
      const DagEdge& pe = dag.parents(u)[s];
      const EdgeLabel l = q.edge(pe.qedge).label;
      for (VertexId w = 0; w < nv_; ++w) {
        if (!d1_[pe.other][w]) continue;
        for (const AdjEntry& a : pe.forward ? g.OutEdges(w) : g.InEdges(w)) {
          if (a.label == l && cand_[u][a.other] != 0) {
            ++n1_[u][s * nv_ + a.other];
          }
        }
      }
    }
    for (VertexId v = 0; v < nv_; ++v) {
      if (cand_[u][v] != 0 && AllN1Positive(u, v)) {
        d1_[u][v] = 1;
        ++d1_count_;
      }
    }
  }

  // Bottom-up sweep in reverse DAG order.
  for (size_t i = dag.order().size(); i-- > 0;) {
    const QVertexId u = dag.order()[i];
    for (size_t s = 0; s < dag.children(u).size(); ++s) {
      const DagEdge& ce = dag.children(u)[s];
      const EdgeLabel l = q.edge(ce.qedge).label;
      for (VertexId w = 0; w < nv_; ++w) {
        if (!d2_[ce.other][w]) continue;
        // ce.forward: the query edge runs u -> child, so the data edge runs
        // parent-side vertex -> w and u's candidates are w's in-neighbours.
        for (const AdjEntry& a : ce.forward ? g.InEdges(w) : g.OutEdges(w)) {
          if (a.label == l && cand_[u][a.other] != 0) {
            ++n2_[u][s * nv_ + a.other];
          }
        }
      }
    }
    for (VertexId v = 0; v < nv_; ++v) {
      if (d1_[u][v] != 0 && AllN2Positive(u, v)) {
        d2_[u][v] = 1;
        ++d2_count_;
      }
    }
  }
}

bool Dcs::AllN1Positive(QVertexId u, VertexId v) const {
  const size_t slots = dag_->parents(u).size();
  for (size_t s = 0; s < slots; ++s) {
    if (n1_[u][s * nv_ + v] == 0) return false;
  }
  return true;
}

bool Dcs::AllN2Positive(QVertexId u, VertexId v) const {
  const size_t slots = dag_->children(u).size();
  for (size_t s = 0; s < slots; ++s) {
    if (n2_[u][s * nv_ + v] == 0) return false;
  }
  return true;
}

void Dcs::IncN1(QVertexId u, size_t slot, VertexId v) {
  if (++n1_[u][slot * nv_ + v] == 1 && d1_[u][v] == 0) {
    queue_.emplace_back(u, v);
  }
}

void Dcs::DecN1(QVertexId u, size_t slot, VertexId v) {
  assert(n1_[u][slot * nv_ + v] > 0);
  if (--n1_[u][slot * nv_ + v] == 0 && d1_[u][v] != 0) {
    queue_.emplace_back(u, v);
  }
}

void Dcs::IncN2(QVertexId u, size_t slot, VertexId v) {
  if (++n2_[u][slot * nv_ + v] == 1 && d2_[u][v] == 0) {
    queue2_.emplace_back(u, v);
  }
}

void Dcs::DecN2(QVertexId u, size_t slot, VertexId v) {
  assert(n2_[u][slot * nv_ + v] > 0);
  if (--n2_[u][slot * nv_ + v] == 0 && d2_[u][v] != 0) {
    queue2_.emplace_back(u, v);
  }
}

void Dcs::DrainD1Set(const Graph& g) {
  while (!queue_.empty()) {
    const auto [u, v] = queue_.back();
    queue_.pop_back();
    if (d1_[u][v] != 0 || cand_[u][v] == 0 || !AllN1Positive(u, v)) continue;
    d1_[u][v] = 1;
    ++d1_count_;
    d1_flips_.emplace_back(u, v);
    if (stats_ != nullptr) {
      stats_->transitions.Inc();
      stats_->d1_set.Inc();
    }
    for (const DagEdge& ce : dag_->children(u)) {
      const EdgeLabel l = q_->edge(ce.qedge).label;
      for (const AdjEntry& a : ce.forward ? g.OutEdges(v) : g.InEdges(v)) {
        if (a.label == l && cand_[ce.other][a.other] != 0) {
          IncN1(ce.other, ce.peer_slot, a.other);
        }
      }
    }
  }
}

void Dcs::DrainD1Clear(const Graph& g) {
  while (!queue_.empty()) {
    const auto [u, v] = queue_.back();
    queue_.pop_back();
    if (d1_[u][v] == 0 || AllN1Positive(u, v)) continue;
    d1_[u][v] = 0;
    --d1_count_;
    d1_flips_.emplace_back(u, v);
    if (stats_ != nullptr) {
      stats_->transitions.Inc();
      stats_->d1_cleared.Inc();
    }
    for (const DagEdge& ce : dag_->children(u)) {
      const EdgeLabel l = q_->edge(ce.qedge).label;
      for (const AdjEntry& a : ce.forward ? g.OutEdges(v) : g.InEdges(v)) {
        if (a.label == l && cand_[ce.other][a.other] != 0) {
          DecN1(ce.other, ce.peer_slot, a.other);
        }
      }
    }
  }
}

void Dcs::DrainD2Set(const Graph& g) {
  while (!queue2_.empty()) {
    const auto [u, v] = queue2_.back();
    queue2_.pop_back();
    if (d2_[u][v] != 0 || d1_[u][v] == 0 || !AllN2Positive(u, v)) continue;
    d2_[u][v] = 1;
    ++d2_count_;
    if (stats_ != nullptr) {
      stats_->transitions.Inc();
      stats_->d2_set.Inc();
    }
    for (const DagEdge& pe : dag_->parents(u)) {
      const EdgeLabel l = q_->edge(pe.qedge).label;
      // pe.forward: the query edge runs parent -> u, so the parent-side
      // data candidates are v's in-neighbours.
      for (const AdjEntry& a : pe.forward ? g.InEdges(v) : g.OutEdges(v)) {
        if (a.label == l && cand_[pe.other][a.other] != 0) {
          IncN2(pe.other, pe.peer_slot, a.other);
        }
      }
    }
  }
}

void Dcs::DrainD2Clear(const Graph& g) {
  while (!queue2_.empty()) {
    const auto [u, v] = queue2_.back();
    queue2_.pop_back();
    if (d2_[u][v] == 0) continue;
    if (d1_[u][v] != 0 && AllN2Positive(u, v)) continue;
    d2_[u][v] = 0;
    --d2_count_;
    if (stats_ != nullptr) {
      stats_->transitions.Inc();
      stats_->d2_cleared.Inc();
    }
    for (const DagEdge& pe : dag_->parents(u)) {
      const EdgeLabel l = q_->edge(pe.qedge).label;
      for (const AdjEntry& a : pe.forward ? g.InEdges(v) : g.OutEdges(v)) {
        if (a.label == l && cand_[pe.other][a.other] != 0) {
          DecN2(pe.other, pe.peer_slot, a.other);
        }
      }
    }
  }
}

void Dcs::ApplyInsert(const Graph& g, VertexId from, EdgeLabel label,
                      VertexId to) {
  assert(from < nv_ && to < nv_);
  d1_flips_.clear();
  queue_.clear();
  queue2_.clear();
  // Phase A (top-down): the new edge's direct N1 contributions — counted
  // only where the parent-side flag was already set *before* this op; a
  // parent pair that flips below contributes through its drain walk, which
  // sees the new edge in the graph. Flag flips are deferred to the drain,
  // so no flag moves during this scan.
  for (const QEdge& e : q_->edges()) {
    if (e.label != label || e.from == e.to) continue;
    if (cand_[e.from][from] == 0 || cand_[e.to][to] == 0) continue;
    const bool from_is_parent = dag_->rank(e.from) < dag_->rank(e.to);
    const QVertexId uc = from_is_parent ? e.to : e.from;
    const VertexId vp = from_is_parent ? from : to;
    const VertexId vc = from_is_parent ? to : from;
    if (d1_[from_is_parent ? e.from : e.to][vp] != 0) {
      IncN1(uc, parent_slot_of_[e.id], vc);
    }
  }
  DrainD1Set(g);
  // Phase B (bottom-up): direct N2 contributions against the pre-op D2
  // flags (still untouched), then D2 rechecks for every pair that gained
  // D1 in phase A.
  for (const QEdge& e : q_->edges()) {
    if (e.label != label || e.from == e.to) continue;
    if (cand_[e.from][from] == 0 || cand_[e.to][to] == 0) continue;
    const bool from_is_parent = dag_->rank(e.from) < dag_->rank(e.to);
    const QVertexId up = from_is_parent ? e.from : e.to;
    const QVertexId uc = from_is_parent ? e.to : e.from;
    const VertexId vp = from_is_parent ? from : to;
    const VertexId vc = from_is_parent ? to : from;
    if (d2_[uc][vc] != 0) IncN2(up, child_slot_of_[e.id], vp);
  }
  for (const auto& [u, v] : d1_flips_) queue2_.emplace_back(u, v);
  DrainD2Set(g);
}

void Dcs::ApplyDelete(const Graph& g, VertexId from, EdgeLabel label,
                      VertexId to) {
  assert(from < nv_ && to < nv_);
  d1_flips_.clear();
  queue_.clear();
  queue2_.clear();
  // Phase A: remove the deleted edge's direct N1 contributions (they
  // existed iff the parent-side flag is still set — pre-op value, since
  // clears are deferred to the drain). Drain walks see the post-removal
  // adjacency, so a cascading clear never double-decrements the deleted
  // edge's contribution.
  for (const QEdge& e : q_->edges()) {
    if (e.label != label || e.from == e.to) continue;
    if (cand_[e.from][from] == 0 || cand_[e.to][to] == 0) continue;
    const bool from_is_parent = dag_->rank(e.from) < dag_->rank(e.to);
    const QVertexId uc = from_is_parent ? e.to : e.from;
    const VertexId vp = from_is_parent ? from : to;
    const VertexId vc = from_is_parent ? to : from;
    if (d1_[from_is_parent ? e.from : e.to][vp] != 0) {
      DecN1(uc, parent_slot_of_[e.id], vc);
    }
  }
  DrainD1Clear(g);
  // Phase B: direct N2 removals against the pre-op D2 flags, plus D2
  // rechecks wherever D1 was lost (D2 requires D1).
  for (const QEdge& e : q_->edges()) {
    if (e.label != label || e.from == e.to) continue;
    if (cand_[e.from][from] == 0 || cand_[e.to][to] == 0) continue;
    const bool from_is_parent = dag_->rank(e.from) < dag_->rank(e.to);
    const QVertexId up = from_is_parent ? e.from : e.to;
    const QVertexId uc = from_is_parent ? e.to : e.from;
    const VertexId vp = from_is_parent ? from : to;
    const VertexId vc = from_is_parent ? to : from;
    if (d2_[uc][vc] != 0) DecN2(up, child_slot_of_[e.id], vp);
  }
  for (const auto& [u, v] : d1_flips_) queue2_.emplace_back(u, v);
  DrainD2Clear(g);
}

std::string Dcs::Compare(const Dcs& other) const {
  auto at = [](QVertexId u, VertexId v) {
    return "(" + std::to_string(u) + ", " + std::to_string(v) + ")";
  };
  if (d1_.size() != other.d1_.size() || nv_ != other.nv_) {
    return "universe mismatch";
  }
  if (d1_count_ != other.d1_count_ || d2_count_ != other.d2_count_) {
    return "flag tallies differ: d1 " + std::to_string(d1_count_) + " vs " +
           std::to_string(other.d1_count_) + ", d2 " +
           std::to_string(d2_count_) + " vs " +
           std::to_string(other.d2_count_);
  }
  for (QVertexId u = 0; u < d1_.size(); ++u) {
    for (VertexId v = 0; v < nv_; ++v) {
      if (cand_[u][v] != other.cand_[u][v]) {
        return "cand differs at " + at(u, v);
      }
      if (d1_[u][v] != other.d1_[u][v]) return "D1 differs at " + at(u, v);
      if (d2_[u][v] != other.d2_[u][v]) return "D2 differs at " + at(u, v);
    }
    if (n1_[u] != other.n1_[u]) return "N1 table differs at u=" +
                                       std::to_string(u);
    if (n2_[u] != other.n2_[u]) return "N2 table differs at u=" +
                                       std::to_string(u);
  }
  return "";
}

void Dcs::SerializeFlags(std::string& out) const {
  bin::PutU32(out, static_cast<uint32_t>(d1_.size()));
  bin::PutU32(out, static_cast<uint32_t>(nv_));
  auto pack = [&out, this](const std::vector<std::vector<uint8_t>>& flags) {
    for (const std::vector<uint8_t>& row : flags) {
      uint8_t byte = 0;
      for (VertexId v = 0; v < nv_; ++v) {
        if (row[v] != 0) byte |= static_cast<uint8_t>(1u << (v % 8));
        if (v % 8 == 7) {
          bin::PutU8(out, byte);
          byte = 0;
        }
      }
      if (nv_ % 8 != 0) bin::PutU8(out, byte);
    }
  };
  pack(d1_);
  pack(d2_);
}

}  // namespace symbi
}  // namespace turboflux
