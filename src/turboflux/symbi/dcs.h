#ifndef TURBOFLUX_SYMBI_DCS_H_
#define TURBOFLUX_SYMBI_DCS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/graph/graph.h"
#include "turboflux/obs/engine_stats.h"
#include "turboflux/query/query_graph.h"
#include "turboflux/symbi/query_dag.h"

namespace turboflux {
namespace symbi {

/// The SymBi dynamic candidate space (DESIGN.md §3.13): for every
/// (query vertex u, data vertex v) pair, two flags maintained by
/// bidirectional dynamic programming over the query DAG —
///
///   D1(u, v)  (top-down):  cand(u, v) and, for every DAG parent edge of u,
///             v has at least one data neighbour w along that query edge
///             with D1(parent, w) = 1 (roots: D1 = cand);
///   D2(u, v)  (bottom-up): D1(u, v) and, for every DAG child edge of u,
///             v has at least one data neighbour w along that query edge
///             with D2(child, w) = 1 (leaves: D2 = D1);
///
/// where cand(u, v) is the static label test L(u) ⊆ L(v). D2 = 1 is a
/// necessary condition for v to appear in any homomorphism at u, so match
/// enumeration is restricted to D2 candidates — the pruning that replaces
/// the DCG's tree-only implicit/explicit states.
///
/// Incremental maintenance is counter-based: N1[u][i][v] counts the D1
/// witnesses behind parent-edge slot i of u at v, N2[u][j][v] the D2
/// witnesses behind child-edge slot j, so an edge update only walks the
/// pairs whose flags actually flip. Counters are kept only for cand pairs
/// (a non-cand pair can never gain a flag). Flag flips are deferred to a
/// work queue and committed with a full recheck at pop time, which makes
/// every (data edge, witness pair) contribution count exactly once:
/// during the direct-increment scan over the updated edge no flag moves,
/// and a pair that flips later re-walks its *current* adjacency — which
/// contains the new edge on insert and no longer contains it on delete.
class Dcs {
 public:
  Dcs() = default;

  /// Binds to (q, dag) and computes all flags/counters from scratch over
  /// `g` (one topological sweep for D1, one reverse sweep for D2). The
  /// bound structures must outlive the Dcs; `stats` (optional) receives a
  /// bump per flag flip in the incremental paths — Build itself does not
  /// count, so counters measure stream-driven churn only.
  void Build(const QueryGraph& q, const QueryDag& dag, const Graph& g,
             obs::DcsStats* stats = nullptr);

  /// Incremental update for the data edge (from, label, to), called
  /// *after* g.AddEdge / g.RemoveEdge respectively. Phase A propagates D1
  /// top-down, phase B propagates D2 bottom-up (deletes additionally clear
  /// D2 wherever D1 was lost).
  void ApplyInsert(const Graph& g, VertexId from, EdgeLabel label,
                   VertexId to);
  void ApplyDelete(const Graph& g, VertexId from, EdgeLabel label,
                   VertexId to);

  bool Cand(QVertexId u, VertexId v) const { return cand_[u][v] != 0; }
  bool D1(QVertexId u, VertexId v) const { return d1_[u][v] != 0; }
  bool D2(QVertexId u, VertexId v) const { return d2_[u][v] != 0; }

  /// Maintained tallies of set flags (the engine's IntermediateSize).
  size_t D1Count() const { return d1_count_; }
  size_t D2Count() const { return d2_count_; }

  size_t VertexUniverse() const { return nv_; }

  /// Witness counters, for the invariant tests: slot `i` indexes
  /// dag.parents(u) / dag.children(u).
  uint32_t N1(QVertexId u, size_t i, VertexId v) const {
    return n1_[u][i * nv_ + v];
  }
  uint32_t N2(QVertexId u, size_t j, VertexId v) const {
    return n2_[u][j * nv_ + v];
  }

  /// Deep equality against `other` (flags, counters, tallies); returns an
  /// empty string when equal, else a description of the first divergence.
  /// The property tests compare the incrementally maintained Dcs against a
  /// fresh Build after every op.
  std::string Compare(const Dcs& other) const;

  /// Appends a compact encoding of the D1/D2 bitsets (checkpoint
  /// cross-validation: a restored engine recomputes the DCS from the
  /// restored graph and requires bit equality with the snapshot).
  void SerializeFlags(std::string& out) const;

 private:
  void IncN1(QVertexId u, size_t slot, VertexId v);
  void DecN1(QVertexId u, size_t slot, VertexId v);
  void IncN2(QVertexId u, size_t slot, VertexId v);
  void DecN2(QVertexId u, size_t slot, VertexId v);
  bool AllN1Positive(QVertexId u, VertexId v) const;
  bool AllN2Positive(QVertexId u, VertexId v) const;
  void DrainD1Set(const Graph& g);
  void DrainD1Clear(const Graph& g);
  void DrainD2Set(const Graph& g);
  void DrainD2Clear(const Graph& g);

  const QueryGraph* q_ = nullptr;
  const QueryDag* dag_ = nullptr;
  obs::DcsStats* stats_ = nullptr;
  size_t nv_ = 0;

  // Per query vertex u, arrays indexed by data vertex id.
  std::vector<std::vector<uint8_t>> cand_, d1_, d2_;
  // Flattened counter tables: slot-major, n1_[u][slot * nv_ + v].
  std::vector<std::vector<uint32_t>> n1_, n2_;
  // For each non-self-loop query edge: its slot in the DAG child's
  // parents() list and in the DAG parent's children() list.
  std::vector<size_t> parent_slot_of_, child_slot_of_;
  size_t d1_count_ = 0, d2_count_ = 0;

  // Scratch (member-owned so steady-state ops do not allocate).
  std::vector<std::pair<QVertexId, VertexId>> queue_;    // D1 rechecks
  std::vector<std::pair<QVertexId, VertexId>> queue2_;   // D2 rechecks
  std::vector<std::pair<QVertexId, VertexId>> d1_flips_; // phase-A flips
};

}  // namespace symbi
}  // namespace turboflux

#endif  // TURBOFLUX_SYMBI_DCS_H_
