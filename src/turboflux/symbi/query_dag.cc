#include "turboflux/symbi/query_dag.h"

#include <cassert>
#include <deque>

namespace turboflux {
namespace symbi {

QueryDag QueryDag::Build(const QueryGraph& q, QVertexId root) {
  assert(root < q.VertexCount() && q.IsConnected());
  QueryDag dag;
  dag.order_.reserve(q.VertexCount());
  std::vector<bool> seen(q.VertexCount(), false);
  std::deque<QVertexId> frontier;
  frontier.push_back(root);
  seen[root] = true;
  while (!frontier.empty()) {
    const QVertexId u = frontier.front();
    frontier.pop_front();
    dag.order_.push_back(u);
    // Expand in query-edge-id order so the BFS order — and with it every
    // DCS counter slot — is a pure function of (q, root).
    for (QEdgeId e : q.OutEdgeIds(u)) {
      const QVertexId w = q.edge(e).to;
      if (!seen[w]) {
        seen[w] = true;
        frontier.push_back(w);
      }
    }
    for (QEdgeId e : q.InEdgeIds(u)) {
      const QVertexId w = q.edge(e).from;
      if (!seen[w]) {
        seen[w] = true;
        frontier.push_back(w);
      }
    }
  }
  assert(dag.order_.size() == q.VertexCount());  // connected
  dag.Finish(q);
  return dag;
}

bool QueryDag::FromOrder(const QueryGraph& q,
                         const std::vector<QVertexId>& order, QueryDag* out) {
  if (order.size() != q.VertexCount() || order.empty()) return false;
  std::vector<size_t> rank(q.VertexCount(), SIZE_MAX);
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= q.VertexCount() || rank[order[i]] != SIZE_MAX) {
      return false;  // out of range or not a permutation
    }
    rank[order[i]] = i;
  }
  // Every non-root vertex needs an earlier neighbour, or the earlier->later
  // orientation would leave it parentless (a disconnected DAG).
  for (size_t i = 1; i < order.size(); ++i) {
    const QVertexId u = order[i];
    bool has_earlier = false;
    for (QEdgeId e : q.OutEdgeIds(u)) {
      const QVertexId w = q.edge(e).to;
      if (w != u && rank[w] < i) has_earlier = true;
    }
    for (QEdgeId e : q.InEdgeIds(u)) {
      const QVertexId w = q.edge(e).from;
      if (w != u && rank[w] < i) has_earlier = true;
    }
    if (!has_earlier) return false;
  }
  out->order_ = order;
  out->Finish(q);
  return true;
}

void QueryDag::Finish(const QueryGraph& q) {
  const size_t n = q.VertexCount();
  rank_.assign(n, 0);
  for (size_t i = 0; i < order_.size(); ++i) rank_[order_[i]] = i;
  parents_.assign(n, {});
  children_.assign(n, {});
  self_loops_.assign(n, {});
  for (const QEdge& e : q.edges()) {
    if (e.from == e.to) {
      self_loops_[e.from].push_back(e.id);
      continue;
    }
    const bool forward = rank_[e.from] < rank_[e.to];
    const QVertexId parent = forward ? e.from : e.to;
    const QVertexId child = forward ? e.to : e.from;
    const size_t child_slot = children_[parent].size();
    const size_t parent_slot = parents_[child].size();
    children_[parent].push_back({child, e.id, forward, parent_slot});
    parents_[child].push_back({parent, e.id, forward, child_slot});
  }
}

}  // namespace symbi
}  // namespace turboflux
