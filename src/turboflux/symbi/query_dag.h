#ifndef TURBOFLUX_SYMBI_QUERY_DAG_H_
#define TURBOFLUX_SYMBI_QUERY_DAG_H_

#include <cstddef>
#include <vector>

#include "turboflux/common/types.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {
namespace symbi {

/// One query-DAG edge as seen from one of its endpoints. The DAG directs
/// every non-self-loop query edge from the endpoint that comes earlier in
/// the BFS order (the DAG parent) to the later one (the DAG child); the
/// underlying query edge keeps its own direction, recorded in `forward`.
struct DagEdge {
  QVertexId other;  ///< the neighbour query vertex (parent or child)
  QEdgeId qedge;    ///< underlying query edge
  /// True iff q.edge(qedge).from is the DAG *parent* — i.e. the data edge
  /// matching this query edge runs parent-side data vertex -> child-side.
  bool forward;
  /// Index of this DAG edge in the *other* endpoint's mirror list: for a
  /// children() entry, the slot in the child's parents(); for a parents()
  /// entry, the slot in the parent's children(). The DCS keys its N1/N2
  /// counter tables by these slots.
  size_t peer_slot;
};

/// The SymBi query DAG (DESIGN.md §3.13): a total BFS order over the query
/// vertices rooted at a chosen start vertex, with every non-self-loop query
/// edge directed earlier -> later. Self-loop query edges cannot be directed
/// between distinct levels; they are kept aside per vertex and enforced at
/// enumeration time (exactly like the Graphflow baseline's SelfLoopsOk).
///
/// Construction is deterministic given (q, root): the BFS expands
/// neighbours in query-edge-id order, and the parents()/children() lists
/// enumerate query edges in id order — so a DAG rebuilt from its serialized
/// order is behaviorally identical, not merely isomorphic.
class QueryDag {
 public:
  QueryDag() = default;

  /// Builds the DAG for connected query `q` rooted at `root`.
  static QueryDag Build(const QueryGraph& q, QVertexId root);

  /// Rebuilds a DAG from an explicit vertex order (checkpoint restore).
  /// Returns false unless `order` is a permutation of q's vertices in which
  /// every vertex after the first has at least one earlier query neighbour
  /// (the property that makes the earlier->later edge orientation a
  /// connected DAG).
  static bool FromOrder(const QueryGraph& q,
                        const std::vector<QVertexId>& order, QueryDag* out);

  QVertexId root() const { return order_.empty() ? kNullQVertex : order_[0]; }
  /// The vertex order; order()[0] is the root.
  const std::vector<QVertexId>& order() const { return order_; }
  /// Position of u in order() (0 = root).
  size_t rank(QVertexId u) const { return rank_[u]; }

  /// DAG edges arriving at u from earlier vertices (empty for the root).
  const std::vector<DagEdge>& parents(QVertexId u) const {
    return parents_[u];
  }
  /// DAG edges leaving u towards later vertices.
  const std::vector<DagEdge>& children(QVertexId u) const {
    return children_[u];
  }
  /// Self-loop query edges on u, excluded from the DAG.
  const std::vector<QEdgeId>& self_loops(QVertexId u) const {
    return self_loops_[u];
  }

 private:
  /// Shared tail of Build/FromOrder: derives ranks and the edge lists from
  /// a committed vertex order.
  void Finish(const QueryGraph& q);

  std::vector<QVertexId> order_;
  std::vector<size_t> rank_;
  std::vector<std::vector<DagEdge>> parents_;
  std::vector<std::vector<DagEdge>> children_;
  std::vector<std::vector<QEdgeId>> self_loops_;
};

}  // namespace symbi
}  // namespace turboflux

#endif  // TURBOFLUX_SYMBI_QUERY_DAG_H_
