#include "turboflux/symbi/symbi.h"

#include <cassert>
#include <limits>

#include "turboflux/match/static_matcher.h"

namespace turboflux {
namespace symbi {

SymBiEngine::SymBiEngine(SymBiOptions options) : options_(options) {}

std::string SymBiEngine::name() const {
  return options_.semantics == MatchSemantics::kIsomorphism ? "SymBi-iso"
                                                            : "SymBi";
}

bool SymBiEngine::Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
                       Deadline deadline) {
  assert(q.VertexCount() > 0 && q.EdgeCount() > 0 && q.IsConnected());
  q_ = &q;
  owned_q_.reset();
  g_ = g0;
  stats_.Reset();

  // Root: minimize |initial candidates| / degree (the paper's C_ini rule),
  // ties to the smallest id; compared by cross-multiplication to stay in
  // integers. Checkpointed via the DAG order, so a restored engine keeps
  // the root its stream history was evaluated under.
  QVertexId root = 0;
  uint64_t best_num = 0, best_den = 1;
  for (QVertexId u = 0; u < q.VertexCount(); ++u) {
    uint64_t c = 0;
    for (VertexId v = 0; v < g_.VertexCount(); ++v) {
      if (q.VertexMatches(u, g_, v)) ++c;
    }
    const uint64_t deg = q.Degree(u);
    assert(deg > 0);  // connected with >= 1 edge
    if (u == 0 || c * best_den < best_num * deg) {
      best_num = c;
      best_den = deg;
      root = u;
    }
  }
  dag_ = QueryDag::Build(q, root);
  dcs_.Build(q, dag_, g_, &stats_.dcs);

  m_.assign(q.VertexCount(), kNullVertex);
  mapped_.assign(q.VertexCount(), false);
  iso_cands_.assign(q.VertexCount(), {});
  isolated_.clear();
  has_updated_edge_ = false;
  applied_ops_ = 0;
  quarantine_.clear();
  dead_ = false;

  if (!EnumerateCurrentMatches(sink, deadline)) {
    dead_ = true;
    return false;
  }
  NoteOpGauges();
  return true;
}

void SymBiEngine::NoteOpGauges() {
  stats_.intermediate_size.Set(dcs_.D1Count());
  stats_.peak_intermediate.SetMax(dcs_.D1Count());
  NotePeakIntermediate();
}

bool SymBiEngine::ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                              Deadline deadline) {
  assert(q_ != nullptr && !dead_);
  // Crash simulation, as in TurboFlux: evaluate the marked op against an
  // already-expired deadline so it is abandoned at a genuine
  // partial-progress point; the caller's deadline stays untouched.
  Deadline poison = Deadline::AfterMillis(0);
  const bool injected = injector_ != nullptr && injector_->ShouldFailOp();
  deadline_ = injected ? &poison : &deadline;

  if (op.IsInsert()) {
    stats_.ops_insert.Inc();
    // Graph first, then the DCS (its insert protocol walks the new edge),
    // then positive matches from the updated candidate space.
    if (g_.AddEdge(op.from, op.label, op.to)) {
      stats_.insert_evals.Inc();
      dcs_.ApplyInsert(g_, op.from, op.label, op.to);
      EvalUpdate(op.from, op.label, op.to, /*positive=*/true, sink);
    }
  } else {
    stats_.ops_delete.Inc();
    // Negative matches need the edge present in both the graph and the
    // DCS; evaluate first, then remove and downgrade.
    if (g_.HasEdge(op.from, op.label, op.to)) {
      stats_.delete_evals.Inc();
      EvalUpdate(op.from, op.label, op.to, /*positive=*/false, sink);
      g_.RemoveEdge(op.from, op.label, op.to);
      dcs_.ApplyDelete(g_, op.from, op.label, op.to);
    }
  }

  deadline_ = nullptr;
  if (deadline.ExpiredNow() || injected) {
    dead_ = true;
    return false;
  }
  ++applied_ops_;
  NoteOpGauges();
  return true;
}

void SymBiEngine::EvalUpdate(VertexId v, EdgeLabel l, VertexId v2,
                             bool positive, MatchSink& sink) {
  has_updated_edge_ = true;
  upd_from_ = v;
  upd_label_ = l;
  upd_to_ = v2;
  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  for (const QEdge& qe : q_->edges()) {
    if (qe.label != l) continue;
    if (qe.from == qe.to && v != v2) continue;
    if (iso && qe.from != qe.to && v == v2) continue;
    // The D2 restriction: a data vertex outside the bottom-up candidate
    // space cannot appear in any match, so the whole seed is pruned before
    // a single backtracking state is explored. (D2 implies the label
    // subset test, so no separate EdgeMatches probe is needed.)
    if (!dcs_.D2(qe.from, v) || !dcs_.D2(qe.to, v2)) continue;
    m_[qe.from] = v;
    m_[qe.to] = v2;
    mapped_[qe.from] = mapped_[qe.to] = true;
    // Every other query edge already fixed by the seed mapping (reverse,
    // parallel, and self-loop edges between the endpoints) must hold.
    if (MappedEdgesSatisfied(*q_, g_, m_, qe.id)) {
      stats_.search_seeds.Inc();
      Extend(qe.from == qe.to ? 1 : 2, qe.id, positive, sink);
    }
    m_[qe.from] = m_[qe.to] = kNullVertex;
    mapped_[qe.from] = mapped_[qe.to] = false;
    if (deadline_->Expired()) break;
  }
  has_updated_edge_ = false;
}

bool SymBiEngine::SelfLoopsOk(QVertexId u, VertexId v) const {
  for (QEdgeId e : dag_.self_loops(u)) {
    if (!g_.HasEdge(v, q_->edge(e).label, v)) return false;
  }
  return true;
}

bool SymBiEngine::IsIsolated(QVertexId u) const {
  for (QEdgeId e : q_->OutEdgeIds(u)) {
    const QEdge& qe = q_->edge(e);
    if (qe.to != u && !mapped_[qe.to]) return false;
  }
  for (QEdgeId e : q_->InEdgeIds(u)) {
    const QEdge& qe = q_->edge(e);
    if (qe.from != u && !mapped_[qe.from]) return false;
  }
  return true;
}

void SymBiEngine::Extend(size_t matched_count, QEdgeId eq, bool positive,
                         MatchSink& sink) {
  if (deadline_->Expired()) return;
  stats_.search_states.Inc();
  if (matched_count == q_->VertexCount()) {
    Report(eq, positive, sink);
    return;
  }

  // Pick the next vertex among unmapped vertices that still have an
  // unmapped neighbour (non-isolated), anchored at the mapped neighbour
  // with the smallest adjacency. Isolated vertices — every query
  // neighbour mapped, candidate set fully determined — are deferred: once
  // only they remain, each list is produced once and combined as a
  // product instead of re-derived per backtracking state.
  QVertexId best_u = kNullQVertex;
  QEdgeId best_e = kNullQEdge;
  size_t best_size = std::numeric_limits<size_t>::max();
  bool best_out = true;
  VertexId best_base = kNullVertex;
  EdgeLabel best_label = 0;
  for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
    if (mapped_[u] || IsIsolated(u)) continue;
    for (QEdgeId e : q_->InEdgeIds(u)) {
      const QEdge& qe = q_->edge(e);
      if (qe.from == u || !mapped_[qe.from]) continue;
      const size_t size = g_.OutDegree(m_[qe.from]);
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_e = e;
        best_out = true;
        best_base = m_[qe.from];
        best_label = qe.label;
      }
    }
    for (QEdgeId e : q_->OutEdgeIds(u)) {
      const QEdge& qe = q_->edge(e);
      if (qe.to == u || !mapped_[qe.to]) continue;
      const size_t size = g_.InDegree(m_[qe.to]);
      if (size < best_size) {
        best_size = size;
        best_u = u;
        best_e = e;
        best_out = false;
        best_base = m_[qe.to];
        best_label = qe.label;
      }
    }
  }

  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  if (best_u == kNullQVertex) {
    // Every remaining vertex is isolated (the connected query guarantees
    // each has a mapped neighbour to anchor at).
    isolated_.clear();
    for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
      if (!mapped_[u]) isolated_.push_back(u);
    }
    assert(!isolated_.empty());
    stats_.dcs.isolated_groups.Inc();
    for (size_t i = 0; i < isolated_.size(); ++i) {
      const QVertexId u = isolated_[i];
      // Anchor: the incident edge whose mapped endpoint has the smallest
      // adjacency span.
      QEdgeId anchor = kNullQEdge;
      size_t anchor_size = std::numeric_limits<size_t>::max();
      bool anchor_out = true;
      for (QEdgeId e : q_->InEdgeIds(u)) {
        const QEdge& qe = q_->edge(e);
        if (qe.from == u) continue;
        const size_t size = g_.OutDegree(m_[qe.from]);
        if (size < anchor_size) {
          anchor_size = size;
          anchor = e;
          anchor_out = true;
        }
      }
      for (QEdgeId e : q_->OutEdgeIds(u)) {
        const QEdge& qe = q_->edge(e);
        if (qe.to == u) continue;
        const size_t size = g_.InDegree(m_[qe.to]);
        if (size < anchor_size) {
          anchor_size = size;
          anchor = e;
          anchor_out = false;
        }
      }
      assert(anchor != kNullQEdge);
      const QEdge& ae = q_->edge(anchor);
      const VertexId base = anchor_out ? m_[ae.from] : m_[ae.to];
      std::vector<VertexId>& cands = iso_cands_[i];
      cands.clear();
      for (const AdjEntry& a :
           anchor_out ? g_.OutEdges(base) : g_.InEdges(base)) {
        if (a.label != ae.label) continue;
        const VertexId x = a.other;
        if (!dcs_.D2(u, x)) continue;
        bool ok = SelfLoopsOk(u, x);
        for (QEdgeId e : q_->InEdgeIds(u)) {
          if (!ok) break;
          const QEdge& qe = q_->edge(e);
          if (e == anchor || qe.from == u) continue;
          ok = g_.HasEdge(m_[qe.from], qe.label, x);
        }
        for (QEdgeId e : q_->OutEdgeIds(u)) {
          if (!ok) break;
          const QEdge& qe = q_->edge(e);
          if (e == anchor || qe.to == u) continue;
          ok = g_.HasEdge(x, qe.label, m_[qe.to]);
        }
        if (ok) cands.push_back(x);
      }
    }
    EnumerateIsolated(0, eq, positive, sink);
    return;
  }

  for (const AdjEntry& a :
       best_out ? g_.OutEdges(best_base) : g_.InEdges(best_base)) {
    if (a.label != best_label) continue;
    const VertexId x = a.other;
    if (!dcs_.D2(best_u, x)) continue;
    if (iso && MappingContains(m_, x)) continue;
    bool ok = SelfLoopsOk(best_u, x);
    for (QEdgeId e : q_->InEdgeIds(best_u)) {
      if (!ok) break;
      const QEdge& qe = q_->edge(e);
      if (e == best_e || qe.from == best_u || !mapped_[qe.from]) continue;
      ok = g_.HasEdge(m_[qe.from], qe.label, x);
    }
    for (QEdgeId e : q_->OutEdgeIds(best_u)) {
      if (!ok) break;
      const QEdge& qe = q_->edge(e);
      if (e == best_e || qe.to == best_u || !mapped_[qe.to]) continue;
      ok = g_.HasEdge(x, qe.label, m_[qe.to]);
    }
    if (!ok) continue;
    m_[best_u] = x;
    mapped_[best_u] = true;
    Extend(matched_count + 1, eq, positive, sink);
    m_[best_u] = kNullVertex;
    mapped_[best_u] = false;
    if (deadline_->Expired()) return;
  }
}

void SymBiEngine::EnumerateIsolated(size_t idx, QEdgeId eq, bool positive,
                                    MatchSink& sink) {
  if (deadline_->Expired()) return;
  stats_.search_states.Inc();
  if (idx == isolated_.size()) {
    Report(eq, positive, sink);
    return;
  }
  const bool iso = options_.semantics == MatchSemantics::kIsomorphism;
  const QVertexId u = isolated_[idx];
  for (VertexId x : iso_cands_[idx]) {
    if (iso && MappingContains(m_, x)) continue;
    m_[u] = x;
    mapped_[u] = true;
    EnumerateIsolated(idx + 1, eq, positive, sink);
    m_[u] = kNullVertex;
    mapped_[u] = false;
    if (deadline_->Expired()) return;
  }
}

void SymBiEngine::Report(QEdgeId eq, bool positive, MatchSink& sink) {
  // Total-order duplicate elimination: among all query edges this solution
  // maps onto the updated data edge, only the maximum (insertion) /
  // minimum (deletion) one reports.
  if (has_updated_edge_) {
    for (const QEdge& qe : q_->edges()) {
      if (qe.id == eq) continue;
      if (m_[qe.from] == upd_from_ && qe.label == upd_label_ &&
          m_[qe.to] == upd_to_) {
        if (positive && qe.id > eq) return;
        if (!positive && qe.id < eq) return;
      }
    }
  }
  (positive ? stats_.matches_positive : stats_.matches_negative).Inc();
  sink.OnMatch(positive, m_);
}

bool SymBiEngine::EnumerateCurrentMatches(MatchSink& sink,
                                          Deadline deadline) {
  assert(q_ != nullptr);
  deadline_ = &deadline;
  has_updated_edge_ = false;
  std::fill(m_.begin(), m_.end(), kNullVertex);
  std::fill(mapped_.begin(), mapped_.end(), false);
  // Start at the query vertex with the fewest D2 candidates (ties: the
  // smallest id) — deterministic, so a restored engine enumerates in the
  // original's order.
  QVertexId u0 = 0;
  size_t best = std::numeric_limits<size_t>::max();
  for (QVertexId u = 0; u < q_->VertexCount(); ++u) {
    size_t count = 0;
    for (VertexId v = 0; v < g_.VertexCount(); ++v) {
      if (dcs_.D2(u, v)) ++count;
    }
    if (count < best) {
      best = count;
      u0 = u;
    }
  }
  for (VertexId v = 0; v < g_.VertexCount(); ++v) {
    if (!dcs_.D2(u0, v) || !SelfLoopsOk(u0, v)) continue;
    m_[u0] = v;
    mapped_[u0] = true;
    stats_.search_seeds.Inc();
    Extend(1, kNullQEdge, /*positive=*/true, sink);
    m_[u0] = kNullVertex;
    mapped_[u0] = false;
    if (deadline_->Expired()) break;
  }
  deadline_ = nullptr;
  return !deadline.ExpiredNow();
}

Dcs SymBiEngine::RebuildDcsFromScratch() const {
  Dcs fresh;
  fresh.Build(*q_, dag_, g_, nullptr);
  return fresh;
}

Status SymBiEngine::TryApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                   Deadline deadline) {
  assert(q_ != nullptr);
  if (dead_) {
    return Status::FailedPrecondition("engine is dead; Restore() it first");
  }
  Status v = ValidateOp(g_, op);
  if (v.code() == StatusCode::kOutOfRange) {
    quarantine_.push_back({applied_ops_, op, v});
    ++applied_ops_;
    return v;
  }
  // kNotFound / kFailedPrecondition are legal no-ops; ApplyUpdate handles
  // them without state damage and the informational status passes through.
  if (!ApplyUpdate(op, sink, deadline)) {
    return Status::DeadlineExceeded("update " + op.ToString() +
                                    " abandoned mid-evaluation");
  }
  return v;
}

Status SymBiEngine::TryApplyBatch(std::span<const UpdateOp> ops,
                                  MatchSink& sink, Deadline deadline) {
  assert(q_ != nullptr);
  if (dead_) {
    return Status::FailedPrecondition("engine is dead; Restore() it first");
  }
  // Sequential evaluation (SymBi has no parallel path yet); informational
  // per-op statuses are swallowed exactly as TurboFlux's batch does.
  for (const UpdateOp& op : ops) {
    Status st = TryApplyUpdate(op, sink, deadline);
    if (st.code() == StatusCode::kDeadlineExceeded) return st;
    NotePeakIntermediate();
  }
  return Status::Ok();
}

}  // namespace symbi
}  // namespace turboflux
