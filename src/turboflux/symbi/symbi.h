#ifndef TURBOFLUX_SYMBI_SYMBI_H_
#define TURBOFLUX_SYMBI_SYMBI_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "turboflux/common/deadline.h"
#include "turboflux/common/match.h"
#include "turboflux/common/status.h"
#include "turboflux/common/types.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/harness/engine.h"
#include "turboflux/harness/fault_injection.h"
#include "turboflux/obs/engine_stats.h"
#include "turboflux/query/query_graph.h"
#include "turboflux/symbi/dcs.h"
#include "turboflux/symbi/query_dag.h"

namespace turboflux {
namespace symbi {

struct SymBiOptions {
  MatchSemantics semantics = MatchSemantics::kHomomorphism;
};

/// The SymBi continuous subgraph matching engine (DESIGN.md §3.13),
/// after "Symmetric Continuous Subgraph Matching with Bidirectional
/// Dynamic Programming" (PAPERS.md): a sibling of TurboFlux behind the
/// same EngineInterface.
///
///  * Init: root selection (minimum initial-candidates/degree ratio),
///    QueryDag construction, Dcs build, and the initial-solution report
///    enumerated from the DCS;
///  * insertion: graph first, then Dcs::ApplyInsert, then positive-match
///    enumeration seeded at every query edge matching the new data edge
///    and restricted to D2 candidates;
///  * deletion: negative matches are enumerated against the intact
///    DCS/graph first, then the edge is removed and Dcs::ApplyDelete runs.
///
/// Where TurboFlux's DCG encodes only the spanning tree (non-tree edges
/// checked late, in SubgraphSearch), the DCS constrains every query edge
/// in both directions before enumeration starts — the per-op
/// `search_states` counter is the A/B comparison the bench records.
///
/// Duplicate elimination is the same total order over query edges the
/// other engines use: among all query edges a solution maps onto the
/// updated data edge, only the maximum-id one reports on insertion and
/// the minimum-id one on deletion.
///
/// Enumeration defers *isolated* query vertices — unmapped vertices whose
/// query neighbours are all mapped — to the end of the search: their
/// candidate sets are fully determined, so they are produced once and
/// combined as a product instead of being re-derived per backtracking
/// state (the paper's isolated-vertex optimization; counted by
/// obs dcs.isolated_groups).
class SymBiEngine : public EngineInterface {
 public:
  explicit SymBiEngine(SymBiOptions options = {});

  bool Init(const QueryGraph& q, const Graph& g0, MatchSink& sink,
            Deadline deadline) override;
  bool ApplyUpdate(const UpdateOp& op, MatchSink& sink,
                   Deadline deadline) override;

  /// DCS size: maintained (query vertex, data vertex) pairs with the
  /// top-down flag set (every D2 pair is also a D1 pair, so this is the
  /// structure's full footprint in flag entries).
  size_t IntermediateSize() const override { return dcs_.D1Count(); }
  std::string name() const override;
  const obs::EngineStats* engine_stats() const override { return &stats_; }

  // --- EngineInterface fault tolerance (contract in harness/engine.h) ---

  [[nodiscard]] Status TryApplyUpdate(const UpdateOp& op, MatchSink& sink,
                                      Deadline deadline) override;
  [[nodiscard]] Status TryApplyBatch(std::span<const UpdateOp> ops,
                                     MatchSink& sink,
                                     Deadline deadline) override;

  /// Snapshot format: magic "TFXS" + version, then CRC32-framed sections —
  /// meta (stream position + semantics), query graph, DAG vertex order,
  /// data graph, and the D1/D2 bitsets. The DCS itself is a pure function
  /// of (graph, query, DAG), so Restore recomputes it and cross-validates
  /// the recomputed flags against the snapshot's bitsets (a corruption
  /// check on top of the per-section CRCs).
  [[nodiscard]] Status Checkpoint(std::ostream& out) const override;
  [[nodiscard]] Status Restore(std::istream& in) override;
  [[nodiscard]] Status WriteStateSections(std::ostream& out,
                                          bool include_graph) const override;
  /// SymBi has no shared-graph mode: a non-null `shared_graph` is rejected
  /// with kFailedPrecondition.
  [[nodiscard]] Status ReadStateSections(std::istream& in,
                                         const Graph* shared_graph) override;

  uint64_t applied_ops() const override { return applied_ops_; }
  bool dead() const override { return dead_; }
  const std::vector<QuarantinedOp>& quarantine() const override {
    return quarantine_;
  }
  void set_fault_injector(FaultInjector* injector) override {
    injector_ = injector;
  }

  // --- Introspection (tests, benches) ---

  const QueryDag& dag() const { return dag_; }
  const Dcs& dcs() const { return dcs_; }
  const QueryGraph& query() const { return *q_; }
  const Graph& graph() const { return g_; }

  /// Builds a fresh DCS from the *current* data graph, exactly as Init
  /// would. Property tests assert Compare-equality with the incrementally
  /// maintained DCS after every update.
  Dcs RebuildDcsFromScratch() const;

  /// Enumerates every match of the query in the *current* data graph into
  /// `sink` (reported as positive) by searching the maintained DCS.
  /// Returns false on deadline expiry.
  bool EnumerateCurrentMatches(MatchSink& sink,
                               Deadline deadline = Deadline::Infinite());

 private:
  void EvalUpdate(VertexId v, EdgeLabel l, VertexId v2, bool positive,
                  MatchSink& sink);
  void Extend(size_t matched_count, QEdgeId eq, bool positive,
              MatchSink& sink);
  /// Tail of the search once every unmapped query vertex is isolated.
  void EnumerateIsolated(size_t idx, QEdgeId eq, bool positive,
                         MatchSink& sink);
  void Report(QEdgeId eq, bool positive, MatchSink& sink);
  bool SelfLoopsOk(QVertexId u, VertexId v) const;
  /// True iff u is unmapped and all its query neighbours are mapped.
  bool IsIsolated(QVertexId u) const;
  void NoteOpGauges();

  SymBiOptions options_;
  const QueryGraph* q_ = nullptr;
  /// Engine-owned query storage after Restore (q_ then points here).
  std::unique_ptr<QueryGraph> owned_q_;
  Graph g_;
  QueryDag dag_;
  Dcs dcs_;

  // Search scratch.
  Mapping m_;
  std::vector<bool> mapped_;
  std::vector<QVertexId> isolated_;  // deferred vertices, current search
  std::vector<std::vector<VertexId>> iso_cands_;
  bool has_updated_edge_ = false;
  VertexId upd_from_ = kNullVertex;
  EdgeLabel upd_label_ = 0;
  VertexId upd_to_ = kNullVertex;
  Deadline* deadline_ = nullptr;

  bool dead_ = false;
  uint64_t applied_ops_ = 0;
  std::vector<QuarantinedOp> quarantine_;
  FaultInjector* injector_ = nullptr;
  mutable obs::EngineStats stats_;
};

}  // namespace symbi
}  // namespace turboflux

#endif  // TURBOFLUX_SYMBI_SYMBI_H_
