#include "turboflux/workload/lsbench.h"

#include <algorithm>
#include <vector>

#include "turboflux/common/rng.h"

namespace turboflux {
namespace workload {

LsBenchVocabulary MakeLsBenchVocabulary() {
  LsBenchVocabulary v;
  v.user = v.schema.AddVertexType("User");
  v.post = v.schema.AddVertexType("Post");
  v.comment = v.schema.AddVertexType("Comment");
  v.photo = v.schema.AddVertexType("Photo");
  v.tag = v.schema.AddVertexType("Tag");
  v.channel = v.schema.AddVertexType("Channel");
  v.gps = v.schema.AddVertexType("Gps");
  v.company = v.schema.AddVertexType("Company");

  v.knows = v.schema.AddEdgeType(v.user, "knows", v.user);
  v.follows = v.schema.AddEdgeType(v.user, "follows", v.user);
  v.creates_post = v.schema.AddEdgeType(v.user, "createsPost", v.post);
  v.creates_comment =
      v.schema.AddEdgeType(v.user, "createsComment", v.comment);
  v.likes = v.schema.AddEdgeType(v.user, "likes", v.post);
  v.reply_of = v.schema.AddEdgeType(v.comment, "replyOf", v.post);
  v.has_tag = v.schema.AddEdgeType(v.post, "hasTag", v.tag);
  v.uploads = v.schema.AddEdgeType(v.user, "uploads", v.photo);
  v.photo_tag = v.schema.AddEdgeType(v.photo, "photoTag", v.tag);
  v.located_at = v.schema.AddEdgeType(v.photo, "locatedAt", v.gps);
  v.subscribes = v.schema.AddEdgeType(v.user, "subscribes", v.channel);
  v.posted_in = v.schema.AddEdgeType(v.post, "postedIn", v.channel);
  v.works_at = v.schema.AddEdgeType(v.user, "worksAt", v.company);
  v.based_in = v.schema.AddEdgeType(v.company, "basedIn", v.gps);
  v.mentions = v.schema.AddEdgeType(v.post, "mentions", v.user);
  v.reshares = v.schema.AddEdgeType(v.post, "reshares", v.post);
  return v;
}

TemporalGraph GenerateLsBench(const LsBenchConfig& config) {
  LsBenchVocabulary voc = MakeLsBenchVocabulary();
  Rng rng(config.seed);
  TemporalGraph out;

  const uint64_t users = std::max<uint64_t>(config.num_users, 10);
  const uint64_t posts =
      static_cast<uint64_t>(config.posts_per_user * users) + 1;
  const uint64_t comments =
      static_cast<uint64_t>(config.comments_per_user * users) + 1;
  const uint64_t photos =
      static_cast<uint64_t>(config.photos_per_user * users) + 1;
  const uint64_t tags = std::max<uint64_t>(20, users / 10);
  const uint64_t channels = std::max<uint64_t>(10, users / 20);
  const uint64_t gps = std::max<uint64_t>(10, users / 5);
  const uint64_t companies = std::max<uint64_t>(5, users / 50);

  // Vertex universe: dense id ranges per type, ids assigned in rank order
  // (rank 0 of a Zipf sampler is the most popular entity). Each vertex
  // also carries a fine-grained subtype label (see LsBenchConfig).
  auto add_range = [&](uint64_t count, Label type) {
    VertexId first = static_cast<VertexId>(out.vertices.VertexCount());
    for (uint64_t i = 0; i < count; ++i) {
      LabelSet labels{type};
      if (config.subtypes_per_type > 0) {
        Label subtype = kSubtypeLabelBase + type * 64 +
                        static_cast<Label>(
                            rng.NextBounded(config.subtypes_per_type));
        labels.Insert(subtype);
      }
      out.vertices.AddVertex(std::move(labels));
    }
    return first;
  };
  VertexId user0 = add_range(users, voc.user);
  VertexId post0 = add_range(posts, voc.post);
  VertexId comment0 = add_range(comments, voc.comment);
  VertexId photo0 = add_range(photos, voc.photo);
  VertexId tag0 = add_range(tags, voc.tag);
  VertexId channel0 = add_range(channels, voc.channel);
  VertexId gps0 = add_range(gps, voc.gps);
  VertexId company0 = add_range(companies, voc.company);

  ZipfSampler user_pop(users, config.zipf_exponent);
  ZipfSampler post_pop(posts, config.zipf_exponent);
  ZipfSampler tag_pop(tags, config.zipf_exponent);
  ZipfSampler channel_pop(channels, config.zipf_exponent);

  auto emit = [&](VertexId from, EdgeLabel label, VertexId to) {
    out.edges.push_back({from, label, to});
  };
  // Fanout around an average: uniform in [1, 2*avg-1].
  auto fanout = [&](double avg) -> uint64_t {
    uint64_t hi = std::max<uint64_t>(1, static_cast<uint64_t>(2 * avg));
    return 1 + rng.NextBounded(hi);
  };

  // --- Static structure (lands in g0) ---
  for (uint64_t c = 0; c < companies; ++c) {
    emit(company0 + c, voc.based_in, gps0 + rng.NextBounded(gps));
  }
  for (uint64_t u = 0; u < users; ++u) {
    if (rng.NextBool(0.5)) {
      emit(user0 + u, voc.works_at, company0 + rng.NextBounded(companies));
    }
  }

  // Social edges with triadic closure: closing a friend-of-a-friend path
  // plants triangles for the cyclic query sets.
  std::vector<std::vector<VertexId>> knows_adj(users);
  for (uint64_t u = 0; u < users; ++u) {
    uint64_t k = fanout(config.knows_per_user);
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t target;
      if (rng.NextBool(config.triadic_closure) && !knows_adj[u].empty()) {
        VertexId mid = knows_adj[u][rng.NextIndex(knows_adj[u].size())];
        const std::vector<VertexId>& mid_adj = knows_adj[mid - user0];
        if (mid_adj.empty()) continue;
        target = mid_adj[rng.NextIndex(mid_adj.size())] - user0;
      } else {
        target = user_pop.Sample(rng);
      }
      if (target == u) continue;
      emit(user0 + u, voc.knows, user0 + static_cast<VertexId>(target));
      knows_adj[u].push_back(user0 + static_cast<VertexId>(target));
    }
    uint64_t f = fanout(config.follows_per_user);
    for (uint64_t i = 0; i < f; ++i) {
      uint64_t target = user_pop.Sample(rng);
      if (target == u) continue;
      emit(user0 + u, voc.follows, user0 + static_cast<VertexId>(target));
    }
    uint64_t s = fanout(config.subscriptions_per_user);
    for (uint64_t i = 0; i < s; ++i) {
      emit(user0 + u, voc.subscribes,
           channel0 + static_cast<VertexId>(channel_pop.Sample(rng)));
    }
  }

  // --- Activity stream (posts / comments / likes / photos interleave) ---
  enum class Event : uint8_t { kPost, kComment, kLike, kPhoto };
  std::vector<Event> events;
  events.insert(events.end(), posts, Event::kPost);
  events.insert(events.end(), comments, Event::kComment);
  events.insert(events.end(),
                static_cast<size_t>(config.likes_per_user * users),
                Event::kLike);
  events.insert(events.end(), photos, Event::kPhoto);
  // Deterministic Fisher-Yates shuffle.
  for (size_t i = events.size(); i > 1; --i) {
    std::swap(events[i - 1], events[rng.NextIndex(i)]);
  }

  uint64_t created_posts = 0;
  uint64_t created_comments = 0;
  uint64_t created_photos = 0;
  auto existing_post = [&]() -> VertexId {
    // Popularity-skewed pick among already-created posts.
    return post0 +
           static_cast<VertexId>(post_pop.Sample(rng) % created_posts);
  };
  for (Event ev : events) {
    switch (ev) {
      case Event::kPost: {
        if (created_posts == posts) break;
        VertexId p = post0 + static_cast<VertexId>(created_posts++);
        VertexId author =
            user0 + static_cast<VertexId>(user_pop.Sample(rng));
        emit(author, voc.creates_post, p);
        uint64_t ntags = rng.NextBounded(3);
        for (uint64_t i = 0; i < ntags; ++i) {
          emit(p, voc.has_tag,
               tag0 + static_cast<VertexId>(tag_pop.Sample(rng)));
        }
        if (rng.NextBool(0.5)) {
          emit(p, voc.posted_in,
               channel0 + static_cast<VertexId>(channel_pop.Sample(rng)));
        }
        if (rng.NextBool(0.3)) {
          emit(p, voc.mentions,
               user0 + static_cast<VertexId>(user_pop.Sample(rng)));
        }
        if (rng.NextBool(0.2) && created_posts > 1) {
          emit(p, voc.reshares, existing_post());
        }
        break;
      }
      case Event::kComment: {
        if (created_comments == comments || created_posts == 0) break;
        VertexId c = comment0 + static_cast<VertexId>(created_comments++);
        VertexId author =
            user0 + static_cast<VertexId>(user_pop.Sample(rng));
        emit(author, voc.creates_comment, c);
        emit(c, voc.reply_of, existing_post());
        break;
      }
      case Event::kLike: {
        if (created_posts == 0) break;
        VertexId fan = user0 + static_cast<VertexId>(user_pop.Sample(rng));
        emit(fan, voc.likes, existing_post());
        break;
      }
      case Event::kPhoto: {
        if (created_photos == photos) break;
        VertexId ph = photo0 + static_cast<VertexId>(created_photos++);
        VertexId owner =
            user0 + static_cast<VertexId>(user_pop.Sample(rng));
        emit(owner, voc.uploads, ph);
        if (rng.NextBool(0.6)) {
          emit(ph, voc.photo_tag,
               tag0 + static_cast<VertexId>(tag_pop.Sample(rng)));
        }
        if (rng.NextBool(0.5)) {
          emit(ph, voc.located_at, gps0 + rng.NextBounded(gps));
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace workload
}  // namespace turboflux
