#ifndef TURBOFLUX_WORKLOAD_LSBENCH_H_
#define TURBOFLUX_WORKLOAD_LSBENCH_H_

#include <cstdint>

#include "turboflux/workload/schema.h"
#include "turboflux/workload/stream_builder.h"

namespace turboflux {
namespace workload {

/// Configuration of the LSBench-like social-media stream generator. The
/// paper scales LSBench by the number of users (0.1M / 1M / 10M users,
/// ~210 triples per user); this generator preserves the *shape* — a
/// schema-driven labeled multigraph with heavy-tailed popularity — at a
/// configurable scale.
struct LsBenchConfig {
  uint64_t num_users = 1000;
  uint64_t seed = 42;

  /// Average out-fanouts per entity (tuned so total triples per user is
  /// roughly 35-40, giving ~100k-edge datasets at num_users=2500).
  double knows_per_user = 6.0;
  double follows_per_user = 3.0;
  double posts_per_user = 4.0;
  double comments_per_user = 6.0;
  double likes_per_user = 8.0;
  double photos_per_user = 1.5;
  double subscriptions_per_user = 1.5;

  /// Zipf exponent of target popularity (users, posts, tags, channels).
  double zipf_exponent = 0.8;

  /// Probability that a `knows` edge closes a triangle (triadic closure),
  /// which plants the cycles that the graph-query sets (Figure 7) need.
  double triadic_closure = 0.3;

  /// Number of fine-grained subtype labels per vertex type. Every vertex
  /// carries {type, subtype} where the subtype label partitions its type;
  /// RDF datasets like LSBench are rich in such distinguishing
  /// properties, and they are what gives query sets the paper's wide
  /// selectivity range (Figure 17a). Set to 0 to disable.
  uint32_t subtypes_per_type = 24;
};

/// First label id used for subtype labels: subtype s of type t is label
/// kSubtypeLabelBase + t * 64 + s.
inline constexpr Label kSubtypeLabelBase = 100;

/// Vertex-type and edge-type vocabulary of the LSBench-like dataset.
struct LsBenchVocabulary {
  Schema schema;
  Label user, post, comment, photo, tag, channel, gps, company;
  EdgeLabel knows, follows, creates_post, creates_comment, likes, reply_of,
      has_tag, uploads, photo_tag, located_at, subscribes, posted_in,
      works_at, based_in, mentions, reshares;
};

LsBenchVocabulary MakeLsBenchVocabulary();

/// Generates the dataset in temporal order (posts, comments, likes and
/// social edges interleave over time, as in a real stream). Deterministic
/// given the config seed.
TemporalGraph GenerateLsBench(const LsBenchConfig& config);

}  // namespace workload
}  // namespace turboflux

#endif  // TURBOFLUX_WORKLOAD_LSBENCH_H_
