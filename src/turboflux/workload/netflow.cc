#include "turboflux/workload/netflow.h"

#include <algorithm>

#include "turboflux/common/rng.h"

namespace turboflux {
namespace workload {

TemporalGraph GenerateNetflow(const NetflowConfig& config) {
  Rng rng(config.seed);
  TemporalGraph out;
  const uint64_t hosts = std::max<uint64_t>(config.num_hosts, 4);

  for (uint64_t h = 0; h < hosts; ++h) {
    out.vertices.AddVertex(LabelSet{});  // unlabeled, like the paper's IPs
  }

  ZipfSampler src_pop(hosts, config.src_zipf);
  ZipfSampler dst_pop(hosts, config.dst_zipf);

  for (uint64_t f = 0; f < config.num_flows; ++f) {
    VertexId src = static_cast<VertexId>(src_pop.Sample(rng));
    VertexId dst = static_cast<VertexId>(dst_pop.Sample(rng));
    if (src == dst) dst = static_cast<VertexId>((dst + 1) % hosts);
    EdgeLabel label =
        static_cast<EdgeLabel>(rng.NextBounded(config.num_edge_labels));
    out.edges.push_back({src, label, dst});
  }
  return out;
}

}  // namespace workload
}  // namespace turboflux
