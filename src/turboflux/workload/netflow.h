#ifndef TURBOFLUX_WORKLOAD_NETFLOW_H_
#define TURBOFLUX_WORKLOAD_NETFLOW_H_

#include <cstdint>

#include "turboflux/workload/stream_builder.h"

namespace turboflux {
namespace workload {

/// Configuration of the Netflow-like traffic generator. The paper's
/// Netflow dataset (anonymized backbone traces) has exactly the two
/// properties this generator reproduces: *eight edge labels and no vertex
/// labels* (Appendix B.4), which makes queries non-selective and blows up
/// the baselines' intermediate results, plus heavy-tailed endpoint
/// popularity.
struct NetflowConfig {
  uint64_t num_hosts = 2000;
  uint64_t num_flows = 60000;
  uint64_t seed = 7;

  /// The paper's Netflow has 8 edge labels (protocol/traffic classes).
  uint32_t num_edge_labels = 8;

  /// Zipf exponents for source/destination popularity (hubs create the
  /// triangles and hourglass patterns the cyclic queries need). Kept
  /// moderate by default: with no vertex labels, match counts grow with
  /// the product of hub degrees along a query, and laptop-scale runs must
  /// still be able to *enumerate* the matches.
  double src_zipf = 0.6;
  double dst_zipf = 0.6;
};

/// Generates the flow stream in temporal order. Vertices carry *no*
/// labels (empty label sets), exactly like the paper's Netflow.
TemporalGraph GenerateNetflow(const NetflowConfig& config);

}  // namespace workload
}  // namespace turboflux

#endif  // TURBOFLUX_WORKLOAD_NETFLOW_H_
