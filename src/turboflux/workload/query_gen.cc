#include "turboflux/workload/query_gen.h"

#include <algorithm>
#include <unordered_map>

#include "turboflux/common/rng.h"

namespace turboflux {
namespace workload {

namespace {

/// A sampled connected subgraph of the data graph: the instance that will
/// be abstracted into a query. Instance vertices are distinct data
/// vertices; each becomes one query vertex.
struct Instance {
  std::vector<VertexId> vertices;
  struct Edge {
    VertexId from;
    EdgeLabel label;
    VertexId to;
  };
  std::vector<Edge> edges;
  std::unordered_map<VertexId, size_t> index;  // data vertex -> position

  bool Contains(VertexId v) const { return index.count(v) != 0; }

  size_t Add(VertexId v) {
    auto [it, inserted] = index.emplace(v, vertices.size());
    if (inserted) vertices.push_back(v);
    return it->second;
  }

  bool HasEdge(VertexId from, EdgeLabel label, VertexId to) const {
    for (const Edge& e : edges) {
      if (e.from == from && e.label == label && e.to == to) return true;
    }
    return false;
  }
};

/// Picks a uniformly random incident data edge of `v` (either direction).
/// Returns false if v has no incident edges.
bool RandomIncident(const Graph& g, Rng& rng, VertexId v, bool& outgoing,
                    AdjEntry& entry) {
  size_t out_deg = g.OutDegree(v);
  size_t in_deg = g.InDegree(v);
  if (out_deg + in_deg == 0) return false;
  size_t pick = rng.NextIndex(out_deg + in_deg);
  if (pick < out_deg) {
    outgoing = true;
    entry = g.OutEdges(v)[pick];
  } else {
    outgoing = false;
    entry = g.InEdges(v)[pick - out_deg];
  }
  return true;
}

/// Grows the instance by one tree edge (the new endpoint is not yet in the
/// instance). `frontier` restricts which instance vertices may sprout.
bool GrowTreeEdge(const Graph& g, Rng& rng, Instance& inst,
                  const std::vector<VertexId>& frontier, VertexId* added) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    VertexId base = frontier[rng.NextIndex(frontier.size())];
    bool outgoing;
    AdjEntry e;
    if (!RandomIncident(g, rng, base, outgoing, e)) continue;
    if (inst.Contains(e.other)) continue;
    inst.Add(e.other);
    if (outgoing) {
      inst.edges.push_back({base, e.label, e.other});
    } else {
      inst.edges.push_back({e.other, e.label, base});
    }
    if (added != nullptr) *added = e.other;
    return true;
  }
  return false;
}

/// DFS for an undirected simple path of exactly `remaining` edges from
/// `cur` back to `target`, avoiding vertices in `inst`; appends the cycle
/// edges to the instance on success.
bool FindClosingPath(const Graph& g, Rng& rng, Instance& inst, VertexId cur,
                     VertexId target, size_t remaining, int& budget) {
  if (--budget < 0) return false;
  if (remaining == 1) {
    // Need a direct data edge between cur and target, either direction.
    Graph::LabelView fwd = g.EdgeLabelsBetween(cur, target);
    if (!fwd.empty()) {
      inst.edges.push_back({cur, fwd[rng.NextIndex(fwd.size())], target});
      return true;
    }
    Graph::LabelView rev = g.EdgeLabelsBetween(target, cur);
    if (!rev.empty()) {
      inst.edges.push_back({target, rev[rng.NextIndex(rev.size())], cur});
      return true;
    }
    return false;
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool outgoing;
    AdjEntry e;
    if (!RandomIncident(g, rng, cur, outgoing, e)) return false;
    if (e.other == target || inst.Contains(e.other)) continue;
    size_t pos = inst.vertices.size();
    inst.Add(e.other);
    if (outgoing) {
      inst.edges.push_back({cur, e.label, e.other});
    } else {
      inst.edges.push_back({e.other, e.label, cur});
    }
    if (FindClosingPath(g, rng, inst, e.other, target, remaining - 1,
                        budget)) {
      return true;
    }
    inst.edges.pop_back();
    inst.index.erase(e.other);
    inst.vertices.resize(pos);
  }
  return false;
}

/// Label choice for one abstracted vertex: the data vertex's full label
/// set or only its primary label (see QueryGenConfig::keep_full_labels).
LabelSet AbstractLabels(const Graph& g, Rng& rng, VertexId v,
                        double keep_full_labels) {
  const LabelSet& full = g.labels(v);
  if (full.size() <= 1 || rng.NextBool(keep_full_labels)) return full;
  return LabelSet{full.FirstOr(0)};
}

/// Turns an instance into a query graph. Each distinct data vertex becomes
/// a query vertex. When `fixed_prefix` is non-null its entries are used
/// verbatim for the leading vertices (shared-prefix group generation needs
/// byte-identical prefixes across group members); the rest draw fresh
/// label choices.
QueryGraph AbstractInstance(const Graph& g, const Instance& inst, Rng& rng,
                            double keep_full_labels,
                            const std::vector<LabelSet>* fixed_prefix) {
  QueryGraph q;
  for (size_t i = 0; i < inst.vertices.size(); ++i) {
    if (fixed_prefix != nullptr && i < fixed_prefix->size()) {
      q.AddVertex((*fixed_prefix)[i]);
    } else {
      q.AddVertex(AbstractLabels(g, rng, inst.vertices[i], keep_full_labels));
    }
  }
  for (const Instance::Edge& e : inst.edges) {
    q.AddEdge(static_cast<QVertexId>(inst.index.at(e.from)), e.label,
              static_cast<QVertexId>(inst.index.at(e.to)));
  }
  return q;
}

/// Grows a seeded instance to config.num_edges edges following
/// config.shape. Returns true iff the instance reached the target size.
bool GrowToShape(const Graph& g, Rng& rng, Instance& inst,
                 const QueryGenConfig& config, VertexId seed_from,
                 VertexId seed_to) {
  bool ok = true;
  switch (config.shape) {
    case QueryShape::kTree: {
      while (ok && inst.edges.size() < config.num_edges) {
        ok = GrowTreeEdge(g, rng, inst, inst.vertices, nullptr);
      }
      break;
    }
    case QueryShape::kPath: {
      VertexId head = seed_from;
      VertexId tail = seed_to;
      while (ok && inst.edges.size() < config.num_edges) {
        bool extend_tail = rng.NextBool(0.5);
        VertexId end = extend_tail ? tail : head;
        VertexId added = kNullVertex;
        ok = GrowTreeEdge(g, rng, inst, {end}, &added);
        if (ok) {
          (extend_tail ? tail : head) = added;
        }
      }
      break;
    }
    case QueryShape::kBinaryTree: {
      // BFS growth with at most two sprouts per vertex.
      std::vector<VertexId> frontier = {seed_from, seed_to};
      std::unordered_map<VertexId, int> sprouts;
      sprouts[seed_from] = 1;  // the seed edge counts as one
      while (ok && inst.edges.size() < config.num_edges) {
        std::vector<VertexId> eligible;
        for (VertexId v : frontier) {
          if (sprouts[v] < 2) eligible.push_back(v);
        }
        if (eligible.empty()) {
          ok = false;
          break;
        }
        VertexId added = kNullVertex;
        VertexId base = eligible[rng.NextIndex(eligible.size())];
        ok = GrowTreeEdge(g, rng, inst, {base}, &added);
        if (ok) {
          ++sprouts[base];
          frontier.push_back(added);
        } else if (eligible.size() > 1) {
          // This vertex may be a dead end; poison it and keep trying.
          sprouts[base] = 2;
          ok = true;
        }
      }
      break;
    }
    case QueryShape::kGraph: {
      size_t cycle = config.cycle_length != 0 ? config.cycle_length
                                              : 3 + rng.NextBounded(3);
      if (cycle > config.num_edges) cycle = config.num_edges;
      int budget = 4096;
      ok = cycle >= 3 && FindClosingPath(g, rng, inst, seed_to, seed_from,
                                         cycle - 1, budget);
      while (ok && inst.edges.size() < config.num_edges) {
        ok = GrowTreeEdge(g, rng, inst, inst.vertices, nullptr);
      }
      break;
    }
  }
  return ok && inst.edges.size() == config.num_edges;
}

/// Most frequent edge label among the stream's insertions (smallest label
/// wins ties, so the choice is independent of hash iteration order).
EdgeLabel ModalInsertionLabel(const Dataset& dataset) {
  std::unordered_map<EdgeLabel, size_t> freq;
  for (const UpdateOp& op : dataset.stream_insertions) ++freq[op.label];
  EdgeLabel best = 0;
  size_t best_count = 0;
  for (const auto& [label, count] : freq) {
    if (count > best_count || (count == best_count && label < best)) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

/// Samples a usable seed edge (a stream insertion surviving to the final
/// graph, not a self-loop). When `want_hot` is set only edges carrying
/// `hot_label` qualify. Returns nullptr if sampling keeps missing.
const UpdateOp* PickSeed(const Dataset& dataset, const Graph& g, Rng& rng,
                         bool want_hot, EdgeLabel hot_label) {
  for (int attempt = 0; attempt < 128; ++attempt) {
    const UpdateOp& seed = dataset.stream_insertions[rng.NextIndex(
        dataset.stream_insertions.size())];
    if (!g.HasEdge(seed.from, seed.label, seed.to)) continue;
    if (seed.from == seed.to) continue;
    if (want_hot && seed.label != hot_label) continue;
    return &seed;
  }
  return nullptr;
}

double Clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

}  // namespace

std::vector<QueryGraph> GenerateQueries(const Dataset& dataset,
                                        const QueryGenConfig& config) {
  std::vector<QueryGraph> queries;
  const Graph& g = dataset.final_graph;
  Rng rng(config.seed);
  if (dataset.stream_insertions.empty() || config.num_edges == 0) {
    return queries;
  }

  const int kSeedAttempts = 400;
  int attempts = 0;
  while (queries.size() < config.count && attempts < kSeedAttempts) {
    ++attempts;
    // Seed edge: a stream insertion that survives to the final graph, so
    // the query is guaranteed a positive match during the stream.
    const UpdateOp& seed = dataset.stream_insertions[rng.NextIndex(
        dataset.stream_insertions.size())];
    if (!g.HasEdge(seed.from, seed.label, seed.to)) continue;
    if (seed.from == seed.to) continue;

    Instance inst;
    inst.Add(seed.from);
    inst.Add(seed.to);
    inst.edges.push_back({seed.from, seed.label, seed.to});
    if (!GrowToShape(g, rng, inst, config, seed.from, seed.to)) continue;

    QueryGraph q = AbstractInstance(g, inst, rng, config.keep_full_labels,
                                    /*fixed_prefix=*/nullptr);
    if (q.EdgeCount() != config.num_edges || !q.IsConnected()) continue;
    queries.push_back(std::move(q));
    attempts = 0;  // reset the budget after every success
  }
  return queries;
}

std::vector<QueryGraph> GenerateQuerySet(const Dataset& dataset,
                                         const QuerySetGenConfig& config) {
  std::vector<QueryGraph> out;
  const Graph& g = dataset.final_graph;
  const QueryGenConfig& base = config.base;
  if (dataset.stream_insertions.empty() || base.num_edges == 0 ||
      base.count == 0) {
    return out;
  }
  Rng rng(base.seed);

  const double overlap = Clamp01(config.prefix_overlap);
  const double dup_fraction = Clamp01(config.duplicate_fraction);
  const double skew = Clamp01(config.label_skew);
  const size_t group_size = std::max<size_t>(2, config.prefix_group_size);
  size_t prefix_edges = config.prefix_edges;
  if (prefix_edges == 0) prefix_edges = 1;
  if (base.num_edges > 1 && prefix_edges > base.num_edges - 1) {
    prefix_edges = base.num_edges - 1;
  }

  // Partition the budget: duplicates come out of the total, groups out of
  // the distinct share (rounded down to whole groups).
  size_t num_dup = static_cast<size_t>(
      static_cast<double>(base.count) * dup_fraction);
  if (num_dup >= base.count) num_dup = base.count - 1;
  const size_t num_distinct = base.count - num_dup;
  size_t num_grouped = static_cast<size_t>(
      static_cast<double>(num_distinct) * overlap);
  const size_t num_groups = num_grouped / group_size;
  num_grouped = num_groups * group_size;
  const size_t num_single = num_distinct - num_grouped;

  const EdgeLabel hot_label = ModalInsertionLabel(dataset);

  // Shared-prefix groups: one prefix instance abstracted once (fixed
  // labels), then a different tree completion per member. Because the
  // instance only ever appends, every member's leading vertices/edges are
  // byte-identical to the group prefix.
  const int kGroupAttempts = 400;
  int attempts = 0;
  for (size_t done = 0; done < num_groups && attempts < kGroupAttempts;) {
    ++attempts;
    const bool want_hot = skew > 0.0 && rng.NextBool(skew);
    const UpdateOp* seed = PickSeed(dataset, g, rng, want_hot, hot_label);
    if (seed == nullptr) continue;

    Instance prefix;
    prefix.Add(seed->from);
    prefix.Add(seed->to);
    prefix.edges.push_back({seed->from, seed->label, seed->to});
    bool ok = true;
    while (ok && prefix.edges.size() < prefix_edges) {
      ok = GrowTreeEdge(g, rng, prefix, prefix.vertices, nullptr);
    }
    if (!ok || prefix.edges.size() != prefix_edges) continue;

    std::vector<LabelSet> prefix_labels;
    for (VertexId v : prefix.vertices) {
      prefix_labels.push_back(
          AbstractLabels(g, rng, v, base.keep_full_labels));
    }

    std::vector<QueryGraph> members;
    for (size_t m = 0; m < group_size; ++m) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        Instance inst = prefix;
        bool grown = true;
        while (grown && inst.edges.size() < base.num_edges) {
          grown = GrowTreeEdge(g, rng, inst, inst.vertices, nullptr);
        }
        if (!grown || inst.edges.size() != base.num_edges) continue;
        QueryGraph q = AbstractInstance(g, inst, rng, base.keep_full_labels,
                                        &prefix_labels);
        if (q.EdgeCount() != base.num_edges || !q.IsConnected()) continue;
        members.push_back(std::move(q));
        break;
      }
      if (members.size() != m + 1) break;  // this prefix is a dead end
    }
    if (members.size() != group_size) continue;
    for (QueryGraph& q : members) out.push_back(std::move(q));
    ++done;
    attempts = 0;
  }

  // Independent queries: the base recipe's shape, with skewed seeds.
  const int kSingleAttempts = 400;
  attempts = 0;
  for (size_t done = 0; done < num_single && attempts < kSingleAttempts;) {
    ++attempts;
    const bool want_hot = skew > 0.0 && rng.NextBool(skew);
    const UpdateOp* seed = PickSeed(dataset, g, rng, want_hot, hot_label);
    if (seed == nullptr) continue;

    Instance inst;
    inst.Add(seed->from);
    inst.Add(seed->to);
    inst.edges.push_back({seed->from, seed->label, seed->to});
    if (!GrowToShape(g, rng, inst, base, seed->from, seed->to)) continue;
    QueryGraph q = AbstractInstance(g, inst, rng, base.keep_full_labels,
                                    /*fixed_prefix=*/nullptr);
    if (q.EdgeCount() != base.num_edges || !q.IsConnected()) continue;
    out.push_back(std::move(q));
    ++done;
    attempts = 0;
  }

  // Byte-identical duplicates of random earlier queries, appended last —
  // the QuerySet should serve each from its original's runtime.
  if (!out.empty()) {
    const size_t distinct = out.size();
    for (size_t i = 0; i < num_dup; ++i) {
      out.push_back(out[rng.NextIndex(distinct)]);
    }
  }
  return out;
}

}  // namespace workload
}  // namespace turboflux
