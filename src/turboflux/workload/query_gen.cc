#include "turboflux/workload/query_gen.h"

#include <algorithm>
#include <unordered_map>

#include "turboflux/common/rng.h"

namespace turboflux {
namespace workload {

namespace {

/// A sampled connected subgraph of the data graph: the instance that will
/// be abstracted into a query. Instance vertices are distinct data
/// vertices; each becomes one query vertex.
struct Instance {
  std::vector<VertexId> vertices;
  struct Edge {
    VertexId from;
    EdgeLabel label;
    VertexId to;
  };
  std::vector<Edge> edges;
  std::unordered_map<VertexId, size_t> index;  // data vertex -> position

  bool Contains(VertexId v) const { return index.count(v) != 0; }

  size_t Add(VertexId v) {
    auto [it, inserted] = index.emplace(v, vertices.size());
    if (inserted) vertices.push_back(v);
    return it->second;
  }

  bool HasEdge(VertexId from, EdgeLabel label, VertexId to) const {
    for (const Edge& e : edges) {
      if (e.from == from && e.label == label && e.to == to) return true;
    }
    return false;
  }
};

/// Picks a uniformly random incident data edge of `v` (either direction).
/// Returns false if v has no incident edges.
bool RandomIncident(const Graph& g, Rng& rng, VertexId v, bool& outgoing,
                    AdjEntry& entry) {
  size_t out_deg = g.OutDegree(v);
  size_t in_deg = g.InDegree(v);
  if (out_deg + in_deg == 0) return false;
  size_t pick = rng.NextIndex(out_deg + in_deg);
  if (pick < out_deg) {
    outgoing = true;
    entry = g.OutEdges(v)[pick];
  } else {
    outgoing = false;
    entry = g.InEdges(v)[pick - out_deg];
  }
  return true;
}

/// Grows the instance by one tree edge (the new endpoint is not yet in the
/// instance). `frontier` restricts which instance vertices may sprout.
bool GrowTreeEdge(const Graph& g, Rng& rng, Instance& inst,
                  const std::vector<VertexId>& frontier, VertexId* added) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    VertexId base = frontier[rng.NextIndex(frontier.size())];
    bool outgoing;
    AdjEntry e;
    if (!RandomIncident(g, rng, base, outgoing, e)) continue;
    if (inst.Contains(e.other)) continue;
    inst.Add(e.other);
    if (outgoing) {
      inst.edges.push_back({base, e.label, e.other});
    } else {
      inst.edges.push_back({e.other, e.label, base});
    }
    if (added != nullptr) *added = e.other;
    return true;
  }
  return false;
}

/// DFS for an undirected simple path of exactly `remaining` edges from
/// `cur` back to `target`, avoiding vertices in `inst`; appends the cycle
/// edges to the instance on success.
bool FindClosingPath(const Graph& g, Rng& rng, Instance& inst, VertexId cur,
                     VertexId target, size_t remaining, int& budget) {
  if (--budget < 0) return false;
  if (remaining == 1) {
    // Need a direct data edge between cur and target, either direction.
    const std::vector<EdgeLabel>& fwd = g.EdgeLabelsBetween(cur, target);
    if (!fwd.empty()) {
      inst.edges.push_back({cur, fwd[rng.NextIndex(fwd.size())], target});
      return true;
    }
    const std::vector<EdgeLabel>& rev = g.EdgeLabelsBetween(target, cur);
    if (!rev.empty()) {
      inst.edges.push_back({target, rev[rng.NextIndex(rev.size())], cur});
      return true;
    }
    return false;
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool outgoing;
    AdjEntry e;
    if (!RandomIncident(g, rng, cur, outgoing, e)) return false;
    if (e.other == target || inst.Contains(e.other)) continue;
    size_t pos = inst.vertices.size();
    inst.Add(e.other);
    if (outgoing) {
      inst.edges.push_back({cur, e.label, e.other});
    } else {
      inst.edges.push_back({e.other, e.label, cur});
    }
    if (FindClosingPath(g, rng, inst, e.other, target, remaining - 1,
                        budget)) {
      return true;
    }
    inst.edges.pop_back();
    inst.index.erase(e.other);
    inst.vertices.resize(pos);
  }
  return false;
}

/// Turns an instance into a query graph. Each distinct data vertex becomes
/// a query vertex carrying either the data vertex's full label set or only
/// its primary label (see QueryGenConfig::keep_full_labels).
QueryGraph AbstractInstance(const Graph& g, const Instance& inst, Rng& rng,
                            double keep_full_labels) {
  QueryGraph q;
  for (VertexId v : inst.vertices) {
    const LabelSet& full = g.labels(v);
    if (full.size() <= 1 || rng.NextBool(keep_full_labels)) {
      q.AddVertex(full);
    } else {
      q.AddVertex(LabelSet{full.FirstOr(0)});
    }
  }
  for (const Instance::Edge& e : inst.edges) {
    q.AddEdge(static_cast<QVertexId>(inst.index.at(e.from)), e.label,
              static_cast<QVertexId>(inst.index.at(e.to)));
  }
  return q;
}

}  // namespace

std::vector<QueryGraph> GenerateQueries(const Dataset& dataset,
                                        const QueryGenConfig& config) {
  std::vector<QueryGraph> queries;
  const Graph& g = dataset.final_graph;
  Rng rng(config.seed);
  if (dataset.stream_insertions.empty() || config.num_edges == 0) {
    return queries;
  }

  const int kSeedAttempts = 400;
  int attempts = 0;
  while (queries.size() < config.count && attempts < kSeedAttempts) {
    ++attempts;
    // Seed edge: a stream insertion that survives to the final graph, so
    // the query is guaranteed a positive match during the stream.
    const UpdateOp& seed = dataset.stream_insertions[rng.NextIndex(
        dataset.stream_insertions.size())];
    if (!g.HasEdge(seed.from, seed.label, seed.to)) continue;
    if (seed.from == seed.to) continue;

    Instance inst;
    inst.Add(seed.from);
    inst.Add(seed.to);
    inst.edges.push_back({seed.from, seed.label, seed.to});

    bool ok = true;
    switch (config.shape) {
      case QueryShape::kTree: {
        while (ok && inst.edges.size() < config.num_edges) {
          ok = GrowTreeEdge(g, rng, inst, inst.vertices, nullptr);
        }
        break;
      }
      case QueryShape::kPath: {
        VertexId head = seed.from;
        VertexId tail = seed.to;
        while (ok && inst.edges.size() < config.num_edges) {
          bool extend_tail = rng.NextBool(0.5);
          VertexId end = extend_tail ? tail : head;
          VertexId added = kNullVertex;
          ok = GrowTreeEdge(g, rng, inst, {end}, &added);
          if (ok) {
            (extend_tail ? tail : head) = added;
          }
        }
        break;
      }
      case QueryShape::kBinaryTree: {
        // BFS growth with at most two sprouts per vertex.
        std::vector<VertexId> frontier = {seed.from, seed.to};
        std::unordered_map<VertexId, int> sprouts;
        sprouts[seed.from] = 1;  // the seed edge counts as one
        while (ok && inst.edges.size() < config.num_edges) {
          std::vector<VertexId> eligible;
          for (VertexId v : frontier) {
            if (sprouts[v] < 2) eligible.push_back(v);
          }
          if (eligible.empty()) {
            ok = false;
            break;
          }
          VertexId added = kNullVertex;
          VertexId base = eligible[rng.NextIndex(eligible.size())];
          ok = GrowTreeEdge(g, rng, inst, {base}, &added);
          if (ok) {
            ++sprouts[base];
            frontier.push_back(added);
          } else if (eligible.size() > 1) {
            // This vertex may be a dead end; poison it and keep trying.
            sprouts[base] = 2;
            ok = true;
          }
        }
        break;
      }
      case QueryShape::kGraph: {
        size_t cycle = config.cycle_length != 0
                           ? config.cycle_length
                           : 3 + rng.NextBounded(3);
        if (cycle > config.num_edges) cycle = config.num_edges;
        int budget = 4096;
        ok = cycle >= 3 &&
             FindClosingPath(g, rng, inst, seed.to, seed.from, cycle - 1,
                             budget);
        while (ok && inst.edges.size() < config.num_edges) {
          ok = GrowTreeEdge(g, rng, inst, inst.vertices, nullptr);
        }
        break;
      }
    }
    if (!ok || inst.edges.size() != config.num_edges) continue;

    QueryGraph q =
        AbstractInstance(g, inst, rng, config.keep_full_labels);
    if (q.EdgeCount() != config.num_edges || !q.IsConnected()) continue;
    queries.push_back(std::move(q));
    attempts = 0;  // reset the budget after every success
  }
  return queries;
}

}  // namespace workload
}  // namespace turboflux
