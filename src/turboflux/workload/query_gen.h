#ifndef TURBOFLUX_WORKLOAD_QUERY_GEN_H_
#define TURBOFLUX_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "turboflux/query/query_graph.h"
#include "turboflux/workload/stream_builder.h"

namespace turboflux {
namespace workload {

/// Query shapes used across the paper's experiments: general trees and
/// cyclic "graph" queries (Section 5.1), plus the path and binary-tree
/// shapes of the SJ-Tree paper's Netflow query set (Appendix B.6).
enum class QueryShape {
  kTree,
  kGraph,  // contains at least one cycle
  kPath,
  kBinaryTree,
};

struct QueryGenConfig {
  QueryShape shape = QueryShape::kTree;
  /// Query size, defined as the number of triples/edges (Section 5.1).
  size_t num_edges = 6;
  size_t count = 20;
  uint64_t seed = 99;
  /// kGraph only: length of the planted cycle (0 = random in {3,4,5},
  /// mirroring the paper's triangle/square/pentagon starters).
  size_t cycle_length = 0;

  /// Per query vertex, the probability of keeping the sampled data
  /// vertex's *full* label set (type + fine-grained subtype) rather than
  /// just its primary type. Mixing the two yields the paper's wide
  /// selectivity spectrum (Figure 17): full labels give highly selective
  /// queries, type-only labels give heavy ones.
  double keep_full_labels = 0.6;
};

/// Generates queries by *instance sampling*: each query is the abstraction
/// of a connected subgraph of the dataset's final graph whose seed edge
/// arrives during the update stream. This guarantees the paper's property
/// that every query has at least one positive match over the insertion
/// stream, while the random growth yields a wide selectivity range.
/// Returns up to config.count queries (fewer if the dataset cannot support
/// the requested shape/size). Deterministic given config.seed.
std::vector<QueryGraph> GenerateQueries(const Dataset& dataset,
                                        const QueryGenConfig& config);

}  // namespace workload
}  // namespace turboflux

#endif  // TURBOFLUX_WORKLOAD_QUERY_GEN_H_
