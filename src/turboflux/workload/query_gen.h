#ifndef TURBOFLUX_WORKLOAD_QUERY_GEN_H_
#define TURBOFLUX_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "turboflux/query/query_graph.h"
#include "turboflux/workload/stream_builder.h"

namespace turboflux {
namespace workload {

/// Query shapes used across the paper's experiments: general trees and
/// cyclic "graph" queries (Section 5.1), plus the path and binary-tree
/// shapes of the SJ-Tree paper's Netflow query set (Appendix B.6).
enum class QueryShape {
  kTree,
  kGraph,  // contains at least one cycle
  kPath,
  kBinaryTree,
};

struct QueryGenConfig {
  QueryShape shape = QueryShape::kTree;
  /// Query size, defined as the number of triples/edges (Section 5.1).
  size_t num_edges = 6;
  size_t count = 20;
  uint64_t seed = 99;
  /// kGraph only: length of the planted cycle (0 = random in {3,4,5},
  /// mirroring the paper's triangle/square/pentagon starters).
  size_t cycle_length = 0;

  /// Per query vertex, the probability of keeping the sampled data
  /// vertex's *full* label set (type + fine-grained subtype) rather than
  /// just its primary type. Mixing the two yields the paper's wide
  /// selectivity spectrum (Figure 17): full labels give highly selective
  /// queries, type-only labels give heavy ones.
  double keep_full_labels = 0.6;
};

/// Generates queries by *instance sampling*: each query is the abstraction
/// of a connected subgraph of the dataset's final graph whose seed edge
/// arrives during the update stream. This guarantees the paper's property
/// that every query has at least one positive match over the insertion
/// stream, while the random growth yields a wide selectivity range.
/// Returns up to config.count queries (fewer if the dataset cannot support
/// the requested shape/size). Deterministic given config.seed.
std::vector<QueryGraph> GenerateQueries(const Dataset& dataset,
                                        const QueryGenConfig& config);

/// Workload knobs for multi-query serving experiments (multi::QuerySet):
/// a base single-query recipe plus controllable shared-prefix overlap,
/// byte-identical duplicates, and seed-label skew.
struct QuerySetGenConfig {
  /// Base recipe: size, count, labels, seed. `base.shape` applies to the
  /// independent (non-grouped) queries; shared-prefix groups always grow
  /// tree completions from their common prefix.
  QueryGenConfig base;

  /// Fraction of the distinct queries generated in shared-prefix groups:
  /// each group abstracts ONE sampled prefix instance with fixed label
  /// sets, so group members' leading `prefix_edges` edges (and the
  /// vertices they touch) are byte-identical, then grows a different
  /// completion per member. 0 disables grouping.
  double prefix_overlap = 0.0;

  /// Edges in the shared prefix (clamped to [1, base.num_edges - 1]).
  size_t prefix_edges = 2;

  /// Queries per shared-prefix group (min 2).
  size_t prefix_group_size = 4;

  /// Fraction of the emitted set that are byte-identical copies of
  /// earlier queries — exercises the QuerySet's signature-sharing path.
  /// Duplicates are appended after the distinct queries.
  double duplicate_fraction = 0.0;

  /// Probability that a query's seed edge is forced onto the stream's
  /// modal (most frequent) insertion label. 0 = uniform seed sampling;
  /// 1 = every seed carries the hot label, concentrating the routing
  /// index on few keys (the adversarial case for per-update routing).
  double label_skew = 0.0;
};

/// Generates a query set for multi-query experiments. Output order:
/// shared-prefix groups (members adjacent), then independent queries,
/// then duplicates. Returns up to base.count queries (fewer if the
/// dataset cannot support the recipe). Deterministic given base.seed.
std::vector<QueryGraph> GenerateQuerySet(const Dataset& dataset,
                                         const QuerySetGenConfig& config);

}  // namespace workload
}  // namespace turboflux

#endif  // TURBOFLUX_WORKLOAD_QUERY_GEN_H_
