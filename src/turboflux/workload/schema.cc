#include "turboflux/workload/schema.h"

namespace turboflux {
namespace workload {

Label Schema::AddVertexType(std::string name) {
  Label id = static_cast<Label>(vertex_type_names_.size());
  vertex_type_names_.push_back(std::move(name));
  return id;
}

EdgeLabel Schema::AddEdgeType(Label src_type, std::string name,
                              Label dst_type) {
  EdgeLabel id = static_cast<EdgeLabel>(edges_.size());
  edges_.push_back({src_type, id, dst_type, std::move(name)});
  return id;
}

}  // namespace workload
}  // namespace turboflux
