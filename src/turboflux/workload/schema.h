#ifndef TURBOFLUX_WORKLOAD_SCHEMA_H_
#define TURBOFLUX_WORKLOAD_SCHEMA_H_

#include <string>
#include <vector>

#include "turboflux/common/types.h"

namespace turboflux {
namespace workload {

/// One allowed edge type of a schema graph: (source vertex type, edge
/// label, target vertex type).
struct SchemaEdge {
  Label src_type;
  EdgeLabel label;
  Label dst_type;
  std::string name;
};

/// A schema graph: the vocabulary of vertex types and typed edges a
/// generated dataset draws from. Query generators walk the *instance*
/// graph, so a schema also documents which patterns are expressible.
class Schema {
 public:
  Label AddVertexType(std::string name);
  EdgeLabel AddEdgeType(Label src_type, std::string name, Label dst_type);

  size_t VertexTypeCount() const { return vertex_type_names_.size(); }
  size_t EdgeTypeCount() const { return edges_.size(); }

  const std::string& VertexTypeName(Label type) const {
    return vertex_type_names_[type];
  }
  const SchemaEdge& edge_type(EdgeLabel label) const { return edges_[label]; }
  const std::vector<SchemaEdge>& edge_types() const { return edges_; }

 private:
  std::vector<std::string> vertex_type_names_;
  std::vector<SchemaEdge> edges_;
};

}  // namespace workload
}  // namespace turboflux

#endif  // TURBOFLUX_WORKLOAD_SCHEMA_H_
