#include "turboflux/workload/stream_builder.h"

#include <algorithm>
#include <cassert>

#include "turboflux/common/rng.h"

namespace turboflux {
namespace workload {

Dataset BuildDataset(const TemporalGraph& temporal,
                     const StreamConfig& config) {
  assert(config.stream_fraction >= 0.0 && config.stream_fraction <= 1.0);
  Dataset out;
  out.initial = temporal.vertices;
  out.final_graph = temporal.vertices;

  const size_t total = temporal.edges.size();
  const size_t stream_count =
      static_cast<size_t>(static_cast<double>(total) *
                          config.stream_fraction);
  const size_t initial_count = total - stream_count;

  // Edges present so far (candidates for deletion), deduplicated by what
  // the graph actually accepted.
  std::vector<UpdateOp> live;
  Rng rng(config.seed ^ 0x5f3759df);

  for (size_t i = 0; i < initial_count; ++i) {
    const TemporalGraph::TimedEdge& e = temporal.edges[i];
    if (out.initial.AddEdge(e.from, e.label, e.to)) {
      out.final_graph.AddEdge(e.from, e.label, e.to);
      live.push_back(UpdateOp::Insert(e.from, e.label, e.to));
    }
  }

  double deletion_debt = 0.0;
  for (size_t i = initial_count; i < total; ++i) {
    const TemporalGraph::TimedEdge& e = temporal.edges[i];
    if (!out.final_graph.AddEdge(e.from, e.label, e.to)) continue;  // dup
    UpdateOp ins = UpdateOp::Insert(e.from, e.label, e.to);
    out.stream.push_back(ins);
    out.stream_insertions.push_back(ins);
    live.push_back(ins);

    // Inject deletion_rate deletions per insertion, paid as accumulated
    // debt so fractional rates work.
    deletion_debt += config.deletion_rate;
    while (deletion_debt >= 1.0 && !live.empty()) {
      deletion_debt -= 1.0;
      size_t pick = rng.NextIndex(live.size());
      UpdateOp victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      out.stream.push_back(
          UpdateOp::Delete(victim.from, victim.label, victim.to));
      out.final_graph.RemoveEdge(victim.from, victim.label, victim.to);
    }
  }
  return out;
}

}  // namespace workload
}  // namespace turboflux
