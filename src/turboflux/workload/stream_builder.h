#ifndef TURBOFLUX_WORKLOAD_STREAM_BUILDER_H_
#define TURBOFLUX_WORKLOAD_STREAM_BUILDER_H_

#include <cstdint>
#include <vector>

#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"

namespace turboflux {
namespace workload {

/// A generated dataset before being split into (g0, Δg): the vertex
/// universe with labels, and the edges in temporal order.
struct TemporalGraph {
  Graph vertices;  // vertices + labels only; no edges
  struct TimedEdge {
    VertexId from;
    EdgeLabel label;
    VertexId to;
  };
  std::vector<TimedEdge> edges;
};

struct StreamConfig {
  /// Fraction of edges (by temporal suffix) that form the update stream;
  /// the rest are the initial graph g0. The paper's LSBench default has
  /// |Δg| ≈ 11% of |g0| (Section 5.1), i.e. fraction ≈ 0.10.
  double stream_fraction = 0.10;

  /// Number of edge deletions per edge insertion in the stream (the
  /// paper's deletion rate, Appendix B.2). Deletions target random edges
  /// already present at that point in the stream.
  double deletion_rate = 0.0;

  uint64_t seed = 1;
};

/// A ready-to-run continuous-matching dataset.
struct Dataset {
  Graph initial;        // g0
  UpdateStream stream;  // Δg
  Graph final_graph;    // g0 with the whole stream applied (query sampling)
  /// The insertion ops of the stream (used by query generators to seed
  /// queries that are guaranteed to match during the stream).
  std::vector<UpdateOp> stream_insertions;
};

/// Splits a temporal graph into g0 and Δg and optionally injects
/// deletions. Deterministic given config.seed.
Dataset BuildDataset(const TemporalGraph& temporal,
                     const StreamConfig& config);

}  // namespace workload
}  // namespace turboflux

#endif  // TURBOFLUX_WORKLOAD_STREAM_BUILDER_H_
