#include "turboflux/workload/traffic.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace turboflux {
namespace workload {

std::vector<uint64_t> GenerateArrivalTimes(size_t n,
                                           const ArrivalConfig& config) {
  std::vector<uint64_t> arrivals;
  arrivals.reserve(n);
  if (n == 0) return arrivals;
  Rng rng(config.seed);
  uint64_t t = 0;
  switch (config.shape) {
    case ArrivalShape::kUniform: {
      for (size_t i = 0; i < n; ++i) {
        arrivals.push_back(t);
        t += config.mean_gap_us;
      }
      break;
    }
    case ArrivalShape::kBurst: {
      // A train of burst_len ops arrives back-to-back, then the stream
      // idles long enough that the long-run rate matches mean_gap_us:
      // one train spans burst_len ops, so each idle gap averages
      // burst_len * mean_gap_us (jittered ±50% to avoid lockstep).
      size_t len = std::max<size_t>(1, config.burst_len);
      uint64_t idle_mean = config.mean_gap_us * len;
      size_t in_train = 0;
      for (size_t i = 0; i < n; ++i) {
        arrivals.push_back(t);
        if (++in_train >= len) {
          in_train = 0;
          uint64_t lo = idle_mean / 2;
          t += lo + rng.NextBounded(idle_mean + 1);
        } else {
          t += 1;  // back-to-back within the train
        }
      }
      break;
    }
    case ArrivalShape::kPowerLaw: {
      // Pareto with tail index alpha has mean xm * alpha / (alpha - 1);
      // choose the scale xm so the mean equals mean_gap_us.
      double alpha = std::max(1.0001, config.alpha);
      double xm = static_cast<double>(config.mean_gap_us) * (alpha - 1.0) /
                  alpha;
      for (size_t i = 0; i < n; ++i) {
        arrivals.push_back(t);
        double u = rng.NextDouble();
        if (u >= 1.0) u = std::nextafter(1.0, 0.0);
        double gap = xm / std::pow(1.0 - u, 1.0 / alpha);
        // Clamp the tail at 10^4 mean gaps so one astronomically rare
        // draw cannot make a replay run effectively hang.
        double cap = static_cast<double>(config.mean_gap_us) * 1e4;
        t += static_cast<uint64_t>(std::min(gap, cap));
      }
      break;
    }
  }
  return arrivals;
}

double ArrivalGapCv(const std::vector<uint64_t>& arrivals) {
  if (arrivals.size() < 2) return 0.0;
  std::vector<double> gaps;
  gaps.reserve(arrivals.size() - 1);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(static_cast<double>(arrivals[i] - arrivals[i - 1]));
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  return std::sqrt(var) / mean;
}

UpdateStream MakeHotspotStream(const Graph& g, const HotspotConfig& config) {
  UpdateStream stream;
  if (g.VertexCount() == 0 || config.ops == 0) return stream;
  Rng rng(config.seed);

  // Label alphabet: what the graph actually uses (so every op is legal
  // for the standing queries' label universe); label 0 if edgeless.
  std::set<EdgeLabel> label_set;
  for (VertexId v = 0; v < g.VertexCount() && label_set.size() < 16; ++v) {
    for (const AdjEntry& e : g.OutEdges(v)) label_set.insert(e.label);
  }
  std::vector<EdgeLabel> labels(label_set.begin(), label_set.end());
  if (labels.empty()) labels.push_back(0);

  // Hot centers: the highest-degree vertices — the DCG's worst case is
  // churn on exactly the vertices with the most incident state.
  std::vector<VertexId> by_degree(g.VertexCount());
  for (VertexId v = 0; v < g.VertexCount(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&g](VertexId a, VertexId b) {
    size_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });
  size_t hot_n = std::min(std::max<size_t>(1, config.hot_vertices),
                          by_degree.size());
  std::vector<VertexId> hot(by_degree.begin(), by_degree.begin() + hot_n);
  ZipfSampler hot_rank(hot_n, config.zipf_exponent);

  // Storm edges inserted so far — the pool churn deletions draw from.
  std::vector<UpdateOp> inserted;
  while (stream.size() < config.ops) {
    bool churn = !inserted.empty() && rng.NextBool(config.churn_fraction);
    if (churn) {
      size_t i = rng.NextIndex(inserted.size());
      UpdateOp del = inserted[i];
      del.type = UpdateOp::Type::kDelete;
      stream.push_back(del);
      inserted[i] = inserted.back();
      inserted.pop_back();
      continue;
    }
    VertexId from, to;
    if (rng.NextBool(config.hot_fraction)) {
      // Hot op: one endpoint is a Zipf-ranked hot center.
      VertexId center = hot[hot_rank.Sample(rng)];
      VertexId other =
          static_cast<VertexId>(rng.NextBounded(g.VertexCount()));
      if (rng.NextBool(0.5)) {
        from = center;
        to = other;
      } else {
        from = other;
        to = center;
      }
    } else {
      from = static_cast<VertexId>(rng.NextBounded(g.VertexCount()));
      to = static_cast<VertexId>(rng.NextBounded(g.VertexCount()));
    }
    EdgeLabel label = labels[rng.NextIndex(labels.size())];
    UpdateOp ins = UpdateOp::Insert(from, label, to);
    stream.push_back(ins);
    inserted.push_back(ins);
  }
  return stream;
}

}  // namespace workload
}  // namespace turboflux
