#ifndef TURBOFLUX_WORKLOAD_TRAFFIC_H_
#define TURBOFLUX_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "turboflux/common/rng.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"

namespace turboflux {
namespace workload {

// Traffic shaping for the ingestion service tests (ROADMAP item 5,
// ISSUE 8 satellite): the chaos and backpressure suites need load that
// looks like production streams — bursts, heavy-tailed gaps, and
// adversarial hot spots — not a uniform drip. Everything here is
// deterministic from the config seed.

/// Inter-arrival models for a replayed update stream.
enum class ArrivalShape : uint8_t {
  /// Constant gap `mean_gap_us` (smooth replay).
  kUniform,
  /// Trains of `burst_len` back-to-back ops (gap ~0) separated by idle
  /// gaps sized so the overall mean rate still matches mean_gap_us.
  kBurst,
  /// Pareto (power-law) inter-arrivals with tail index `alpha`, scaled
  /// to mean mean_gap_us: most gaps are tiny, occasional gaps are huge —
  /// the classic self-similar traffic model.
  kPowerLaw,
};

struct ArrivalConfig {
  ArrivalShape shape = ArrivalShape::kUniform;
  /// Mean inter-arrival gap in microseconds (the target average rate).
  uint64_t mean_gap_us = 100;
  /// kBurst: ops per train.
  size_t burst_len = 32;
  /// kPowerLaw: Pareto tail index; must be > 1 for a finite mean.
  double alpha = 1.5;
  uint64_t seed = 1;
};

/// Monotone arrival timestamps (microseconds from 0) for `n` ops under
/// `config`. arrivals[i] is when op i should be submitted; a replayer
/// sleeps the gaps to reproduce the shape in real time, or feeds the
/// timestamps to a deterministic token-bucket/overload simulation.
std::vector<uint64_t> GenerateArrivalTimes(size_t n,
                                           const ArrivalConfig& config);

/// Sample coefficient of variation (stddev / mean) of the inter-arrival
/// gaps — the burstiness measure the tests assert on (uniform CV = 0,
/// bursty/power-law CV >> 0).
double ArrivalGapCv(const std::vector<uint64_t>& arrivals);

struct HotspotConfig {
  /// Ops in the generated storm.
  size_t ops = 1024;
  /// Number of hot vertices the storm centers on.
  size_t hot_vertices = 4;
  /// Fraction of ops that touch a hot vertex (the rest are uniform
  /// background noise).
  double hot_fraction = 0.9;
  /// Zipf exponent ranking the hot vertices among themselves.
  double zipf_exponent = 1.2;
  /// Fraction of storm ops that are deletions of previously inserted
  /// storm edges (insert/delete churn on the same hot neighborhood).
  double churn_fraction = 0.25;
  uint64_t seed = 1;
};

/// An adversarial hot-vertex edge storm over the vertices of `g`: a
/// stream whose edges concentrate on a few high-degree centers, the
/// worst case for a DCG built around those vertices (every op routes to
/// the same engines, and deletions force contraction work). Ops are
/// well-formed for `g`'s vertex universe and label alphabet; edges may
/// duplicate (legal no-op churn for the service path).
UpdateStream MakeHotspotStream(const Graph& g, const HotspotConfig& config);

}  // namespace workload
}  // namespace turboflux

#endif  // TURBOFLUX_WORKLOAD_TRAFFIC_H_
