// Property/fuzz suite for AdjPool (DESIGN.md §3.11): every operation is
// mirrored against a std::vector<std::vector<T>> oracle and the pool must
// stay observation-equivalent — identical per-list contents in identical
// order — through relocations and compactions. Runs under the sanitizer
// CI jobs, so span arithmetic and slab reuse get ASan/UBSan coverage too.

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "turboflux/common/adj_pool.h"

namespace turboflux {
namespace {

bool LongTests() {
  const char* env = std::getenv("TFX_LONG_TESTS");
  return env != nullptr && env[0] == '1';
}

using Oracle = std::vector<std::vector<uint32_t>>;

void ExpectSameState(const AdjPool<uint32_t>& pool, const Oracle& oracle,
                     const std::string& context) {
  ASSERT_EQ(pool.ListCount(), oracle.size()) << context;
  size_t live = 0;
  for (size_t l = 0; l < oracle.size(); ++l) {
    ASSERT_EQ(pool.Size(l), oracle[l].size()) << context << " list " << l;
    EXPECT_TRUE(pool.View(l) == Span<uint32_t>(oracle[l]))
        << context << " list " << l;
    live += oracle[l].size();
  }
  EXPECT_EQ(pool.LiveEntries(), live) << context;
  EXPECT_EQ(pool.CheckConsistency(), "") << context;
}

TEST(AdjPool, BasicAppendAndView) {
  AdjPool<uint32_t> pool;
  size_t a = pool.AddList();
  size_t b = pool.AddList();
  EXPECT_TRUE(pool.Empty(a));
  for (uint32_t i = 0; i < 10; ++i) pool.PushBack(a, i);
  pool.PushBack(b, 99);
  EXPECT_EQ(pool.Size(a), 10u);
  EXPECT_EQ(pool.At(a, 3), 3u);
  EXPECT_EQ(pool.View(b).front(), 99u);
  EXPECT_EQ(pool.LiveEntries(), 11u);
  EXPECT_EQ(pool.CheckConsistency(), "");
}

TEST(AdjPool, SwapRemoveMatchesVectorSemantics) {
  AdjPool<uint32_t> pool;
  Oracle oracle(1);
  pool.AddList();
  for (uint32_t i = 0; i < 8; ++i) {
    pool.PushBack(0, i);
    oracle[0].push_back(i);
  }
  // Swap-with-last on both sides: overwrite the match with the tail.
  auto is_3 = [](uint32_t v) { return v == 3; };
  EXPECT_TRUE(pool.SwapRemove(0, is_3));
  oracle[0][3] = oracle[0].back();
  oracle[0].pop_back();
  ExpectSameState(pool, oracle, "after swap-remove");
  EXPECT_FALSE(pool.SwapRemove(0, is_3));  // already gone
}

TEST(AdjPool, ErasePreservingKeepsOrder) {
  AdjPool<uint32_t> pool;
  pool.AddList();
  for (uint32_t v : {5u, 1u, 7u, 1u, 9u}) pool.PushBack(0, v);
  EXPECT_TRUE(pool.ErasePreserving(0, [](uint32_t v) { return v == 1; }));
  std::vector<uint32_t> expected = {5, 7, 1, 9};  // first match only
  EXPECT_TRUE(pool.View(0) == Span<uint32_t>(expected));
  EXPECT_EQ(pool.CheckConsistency(), "");
}

TEST(AdjPool, RelocationPreservesOtherLists) {
  AdjPool<uint32_t> pool;
  Oracle oracle(3);
  for (int i = 0; i < 3; ++i) pool.AddList();
  // Interleave appends so lists relocate past each other repeatedly.
  for (uint32_t i = 0; i < 200; ++i) {
    size_t l = i % 3;
    pool.PushBack(l, i);
    oracle[l].push_back(i);
  }
  ExpectSameState(pool, oracle, "after interleaved growth");
}

TEST(AdjPool, CompactPreservesOrderAndBumpsEpoch) {
  AdjPool<uint32_t> pool;
  Oracle oracle(4);
  for (int i = 0; i < 4; ++i) pool.AddList();
  for (uint32_t i = 0; i < 100; ++i) {
    size_t l = i % 4;
    pool.PushBack(l, i * 7);
    oracle[l].push_back(i * 7);
  }
  const uint64_t before = pool.Epoch();
  pool.Compact();
  EXPECT_EQ(pool.Epoch(), before + 1);
  // Packed at exact capacity: no dead slots survive an explicit compaction.
  EXPECT_EQ(pool.DeadSlots(), 0u);
  ExpectSameState(pool, oracle, "after explicit compact");
}

TEST(AdjPool, CompactionTriggersUnderDeleteHeavyLoad) {
  AdjPool<uint32_t> pool;
  const size_t kLists = 64;
  for (size_t i = 0; i < kLists; ++i) pool.AddList();
  // Grow every list well past the 4096-slot compaction floor, then delete
  // ~95% of the entries: dead slots must overtake live entries and fire
  // the automatic compaction, keeping the slab bounded.
  for (uint32_t i = 0; i < 8192; ++i) pool.PushBack(i % kLists, i);
  std::mt19937_64 rng(7);
  size_t live = pool.LiveEntries();
  while (live > 8192 / 20) {
    size_t l = rng() % kLists;
    if (pool.SwapRemove(l, [](uint32_t) { return true; })) --live;
  }
  EXPECT_GT(pool.Epoch(), 0u) << "compaction never triggered";
  // Post-compaction invariant: dead space never exceeds live entries by
  // more than one pre-compaction overshoot (the trigger re-arms each op).
  EXPECT_LE(pool.DeadSlots(), pool.LiveEntries() + 4096);
  EXPECT_EQ(pool.CheckConsistency(), "");
}

TEST(AdjPool, ClearResetsEverything) {
  AdjPool<uint32_t> pool;
  pool.AddList();
  for (uint32_t i = 0; i < 50; ++i) pool.PushBack(0, i);
  pool.Compact();
  pool.Clear();
  EXPECT_EQ(pool.ListCount(), 0u);
  EXPECT_EQ(pool.LiveEntries(), 0u);
  EXPECT_EQ(pool.DeadSlots(), 0u);
  EXPECT_EQ(pool.Epoch(), 0u);
  EXPECT_EQ(pool.CheckConsistency(), "");
}

// The fuzz driver: a random op tape (append-heavy, delete-heavy, and
// mixed phases) applied to the pool and the oracle in lockstep, with a
// full-state comparison at every step boundary.
void FuzzSeed(uint64_t seed, size_t ops) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  AdjPool<uint32_t> pool;
  Oracle oracle;

  for (size_t step = 0; step < ops; ++step) {
    // Phase-dependent op mix: first third grows, middle third churns,
    // last third is delete-heavy so compaction paths get exercised.
    const int phase = static_cast<int>(3 * step / ops);
    const int roll = static_cast<int>(rng() % 100);
    const int add_list_cut = phase == 0 ? 10 : 2;
    const int push_cut = phase == 0 ? 85 : (phase == 1 ? 55 : 25);

    if (oracle.empty() || roll < add_list_cut) {
      pool.AddList();
      oracle.emplace_back();
    } else if (roll < push_cut) {
      size_t l = rng() % oracle.size();
      uint32_t v = static_cast<uint32_t>(rng() % 1000);
      pool.PushBack(l, v);
      oracle[l].push_back(v);
    } else if (roll < push_cut + (100 - push_cut) / 2) {
      size_t l = rng() % oracle.size();
      uint32_t v = static_cast<uint32_t>(rng() % 1000);
      auto pred = [v](uint32_t x) { return x == v; };
      bool removed = pool.SwapRemove(l, pred);
      bool oracle_removed = false;
      for (size_t i = 0; i < oracle[l].size(); ++i) {
        if (oracle[l][i] == v) {
          oracle[l][i] = oracle[l].back();
          oracle[l].pop_back();
          oracle_removed = true;
          break;
        }
      }
      ASSERT_EQ(removed, oracle_removed);
    } else {
      size_t l = rng() % oracle.size();
      uint32_t v = static_cast<uint32_t>(rng() % 1000);
      auto pred = [v](uint32_t x) { return x == v; };
      bool removed = pool.ErasePreserving(l, pred);
      bool oracle_removed = false;
      for (size_t i = 0; i < oracle[l].size(); ++i) {
        if (oracle[l][i] == v) {
          oracle[l].erase(oracle[l].begin() + static_cast<ptrdiff_t>(i));
          oracle_removed = true;
          break;
        }
      }
      ASSERT_EQ(removed, oracle_removed);
    }

    // Occasionally force a compaction mid-tape.
    if (rng() % 257 == 0) pool.Compact();
    if (step % 64 == 0 || step + 1 == ops) {
      ExpectSameState(pool, oracle, "step " + std::to_string(step));
    }
  }
}

TEST(AdjPoolFuzz, RandomOpTapesMatchVectorOracle) {
  const uint64_t seeds = LongTests() ? 50 : 12;
  for (uint64_t seed = 0; seed < seeds; ++seed) FuzzSeed(seed, 2000);
}

TEST(AdjPoolFuzz, LargeTapeCrossesCompactionThreshold) {
  // One long tape guaranteed to push the slab past kCompactMinSlots.
  FuzzSeed(9999, LongTests() ? 40000 : 12000);
}

}  // namespace
}  // namespace turboflux
