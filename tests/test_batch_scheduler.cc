// BatchScheduler unit tests: the partition must cover every op exactly
// once, never co-schedule ops whose influence regions overlap (in
// particular ops sharing an endpoint vertex, and a deletion of an edge
// inserted earlier in the same window), keep conflicting ops in stream
// order across sub-batches, and degrade to fully sequential singletons
// when regions blow past max_region_size.

#include <span>
#include <vector>

#include "gtest/gtest.h"
#include "turboflux/graph/graph.h"
#include "turboflux/graph/update_stream.h"
#include "turboflux/parallel/batch.h"
#include "turboflux/query/query_graph.h"

namespace turboflux {
namespace parallel {
namespace {

// Query: u0 -(label 0)-> u1 over vertex labels {0} -> {1}.
QueryGraph PairQuery() {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  q.AddEdge(u0, 0, u1);
  return q;
}

// `clusters` disconnected (source, sink) vertex pairs.
Graph ClusterGraph(size_t clusters) {
  Graph g;
  for (size_t i = 0; i < clusters; ++i) {
    g.AddVertex(LabelSet{0});
    g.AddVertex(LabelSet{1});
  }
  return g;
}

// Flattens a partition and checks it is a permutation of 0..n-1.
void ExpectCoversAll(const std::vector<std::vector<size_t>>& sub_batches,
                     size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& sub : sub_batches) {
    for (size_t idx : sub) {
      ASSERT_LT(idx, n);
      ++seen[idx];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], 1) << "op " << i << " scheduled " << seen[i]
                          << " times";
  }
}

// Sub-batch index each op landed in.
std::vector<size_t> LevelOf(const std::vector<std::vector<size_t>>& sub_batches,
                            size_t n) {
  std::vector<size_t> level(n, 0);
  for (size_t s = 0; s < sub_batches.size(); ++s) {
    for (size_t idx : sub_batches[s]) level[idx] = s;
  }
  return level;
}

TEST(BatchScheduler, DisjointOpsShareOneSubBatch) {
  QueryGraph q = PairQuery();
  Graph g = ClusterGraph(8);
  BatchScheduler scheduler(q);
  UpdateStream ops;
  for (VertexId i = 0; i < 8; ++i) {
    ops.push_back(UpdateOp::Insert(2 * i, 0, 2 * i + 1));
  }
  auto sub_batches = scheduler.Partition(g, ops);
  ExpectCoversAll(sub_batches, ops.size());
  EXPECT_EQ(sub_batches.size(), 1u);
  EXPECT_EQ(sub_batches[0].size(), ops.size());
}

TEST(BatchScheduler, SameVertexOpsNeverCoScheduled) {
  QueryGraph q = PairQuery();
  Graph g = ClusterGraph(4);
  BatchScheduler scheduler(q);
  // All four inserts share source vertex 0.
  UpdateStream ops;
  for (VertexId i = 0; i < 4; ++i) {
    ops.push_back(UpdateOp::Insert(0, 0, 2 * i + 1));
  }
  auto sub_batches = scheduler.Partition(g, ops);
  ExpectCoversAll(sub_batches, ops.size());
  for (const auto& sub : sub_batches) {
    EXPECT_EQ(sub.size(), 1u) << "ops sharing vertex 0 were co-scheduled";
  }
  // Stream order is preserved between conflicting ops.
  std::vector<size_t> level = LevelOf(sub_batches, ops.size());
  for (size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LT(level[i - 1], level[i]);
  }
}

TEST(BatchScheduler, DeleteOrderedAfterInsertOfSameEdge) {
  QueryGraph q = PairQuery();
  Graph g = ClusterGraph(2);
  BatchScheduler scheduler(q);
  UpdateStream ops;
  ops.push_back(UpdateOp::Insert(0, 0, 1));
  ops.push_back(UpdateOp::Delete(0, 0, 1));
  auto sub_batches = scheduler.Partition(g, ops);
  ExpectCoversAll(sub_batches, ops.size());
  std::vector<size_t> level = LevelOf(sub_batches, ops.size());
  EXPECT_LT(level[0], level[1])
      << "deletion must run after the insertion of the same edge";
}

TEST(BatchScheduler, OverlayConflictsSeenThroughPendingInserts) {
  QueryGraph q = PairQuery();
  // Three isolated vertices; no pre-existing edges at all.
  Graph g;
  g.AddVertex(LabelSet{0});  // 0
  g.AddVertex(LabelSet{1});  // 1
  g.AddVertex(LabelSet{0});  // 2
  BatchScheduler scheduler(q);
  // Op 0 inserts 0->1; op 1 inserts 2->1. They only meet through the
  // overlay (the pre-batch graph has no adjacency), yet both can reach
  // vertex 1, so they must not be co-scheduled.
  UpdateStream ops;
  ops.push_back(UpdateOp::Insert(0, 0, 1));
  ops.push_back(UpdateOp::Insert(2, 0, 1));
  auto sub_batches = scheduler.Partition(g, ops);
  ExpectCoversAll(sub_batches, ops.size());
  std::vector<size_t> level = LevelOf(sub_batches, ops.size());
  EXPECT_NE(level[0], level[1]);
  EXPECT_LT(level[0], level[1]);
}

TEST(BatchScheduler, ChainedConflictsStaySequential) {
  QueryGraph q = PairQuery();
  Graph g;
  for (unsigned i = 0; i < 5; ++i) g.AddVertex(LabelSet{i % 2});
  BatchScheduler scheduler(q);
  // 0->1, 1->2, 2->3, 3->4: each op conflicts with its neighbour.
  UpdateStream ops;
  for (VertexId i = 0; i + 1 < 5; ++i) {
    ops.push_back(UpdateOp::Insert(i, 0, i + 1));
  }
  auto sub_batches = scheduler.Partition(g, ops);
  ExpectCoversAll(sub_batches, ops.size());
  std::vector<size_t> level = LevelOf(sub_batches, ops.size());
  for (size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LT(level[i - 1], level[i]) << "chain link " << i;
  }
}

TEST(BatchScheduler, TinyRegionCapFallsBackToSequential) {
  QueryGraph q = PairQuery();
  Graph g = ClusterGraph(4);
  BatchSchedulerOptions options;
  options.max_region_size = 1;  // every region goes global
  BatchScheduler scheduler(q, options);
  UpdateStream ops;
  for (VertexId i = 0; i < 4; ++i) {
    ops.push_back(UpdateOp::Insert(2 * i, 0, 2 * i + 1));
  }
  auto sub_batches = scheduler.Partition(g, ops);
  ExpectCoversAll(sub_batches, ops.size());
  std::vector<size_t> level = LevelOf(sub_batches, ops.size());
  for (size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LT(level[i - 1], level[i])
        << "global regions must serialize in stream order";
  }
}

TEST(BatchScheduler, EmptyAndSingletonWindows) {
  QueryGraph q = PairQuery();
  Graph g = ClusterGraph(1);
  BatchScheduler scheduler(q);
  UpdateStream empty;
  EXPECT_TRUE(scheduler.Partition(g, empty).empty());
  UpdateStream one;
  one.push_back(UpdateOp::Insert(0, 0, 1));
  auto sub_batches = scheduler.Partition(g, one);
  ASSERT_EQ(sub_batches.size(), 1u);
  EXPECT_EQ(sub_batches[0], std::vector<size_t>{0});
}

}  // namespace
}  // namespace parallel
}  // namespace turboflux
