#include "common/flags.h"

#include "gtest/gtest.h"

namespace turboflux {
namespace bench {
namespace {

Flags Make(std::vector<const char*> args,
           std::vector<std::string> known) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Flags(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = Make({}, {"scale"});
  EXPECT_EQ(f.GetInt("scale", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("scale", true));
  EXPECT_EQ(f.GetString("scale", "x"), "x");
}

TEST(Flags, ParsesValues) {
  Flags f = Make({"--scale=2.5", "--queries=12", "--name=abc"},
                 {"scale", "queries", "name"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 0), 2.5);
  EXPECT_EQ(f.GetInt("queries", 0), 12);
  EXPECT_EQ(f.GetString("name", ""), "abc");
}

TEST(Flags, BareFlagIsTrue) {
  Flags f = Make({"--scatter"}, {"scatter"});
  EXPECT_TRUE(f.GetBool("scatter", false));
  Flags off = Make({"--scatter=0"}, {"scatter"});
  EXPECT_FALSE(off.GetBool("scatter", true));
  Flags off2 = Make({"--scatter=false"}, {"scatter"});
  EXPECT_FALSE(off2.GetBool("scatter", true));
}

TEST(Flags, IntList) {
  Flags f = Make({"--sizes=3,6,9,12"}, {"sizes"});
  EXPECT_EQ(f.GetIntList("sizes", {}),
            (std::vector<int64_t>{3, 6, 9, 12}));
  Flags d = Make({}, {"sizes"});
  EXPECT_EQ(d.GetIntList("sizes", {1, 2}), (std::vector<int64_t>{1, 2}));
  Flags one = Make({"--sizes=5"}, {"sizes"});
  EXPECT_EQ(one.GetIntList("sizes", {}), (std::vector<int64_t>{5}));
}

TEST(FlagsDeathTest, UnknownFlagAborts) {
  EXPECT_EXIT(Make({"--bogus=1"}, {"scale"}), ::testing::ExitedWithCode(2),
              "unknown flag --bogus");
}

TEST(FlagsDeathTest, NonFlagArgumentAborts) {
  EXPECT_EXIT(Make({"bare"}, {"scale"}), ::testing::ExitedWithCode(2),
              "unexpected argument");
}

}  // namespace
}  // namespace bench
}  // namespace turboflux
