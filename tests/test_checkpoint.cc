#include <cstdlib>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/harness/fault_injection.h"

namespace turboflux {
namespace {

std::string CheckpointToString(const TurboFluxEngine& engine) {
  std::ostringstream os;
  Status st = engine.Checkpoint(os);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return os.str();
}

Status RestoreFromString(TurboFluxEngine& engine, const std::string& bytes) {
  std::istringstream is(bytes);
  return engine.Restore(is);
}

/// Builds an engine mid-stream: Init on g0, then apply the first
/// `prefix_ops` stream ops.
void BuildEngine(TurboFluxEngine& engine, const testutil::RandomCase& c,
                 size_t prefix_ops, MatchSink& sink) {
  ASSERT_TRUE(engine.Init(c.query, c.g0, sink, Deadline::Infinite()));
  for (size_t i = 0; i < prefix_ops && i < c.stream.size(); ++i) {
    ASSERT_TRUE(engine.ApplyUpdate(c.stream[i], sink, Deadline::Infinite()));
  }
}

/// The core byte-identity property: a restored engine has the same DCG
/// dump, and produces the same subsequent match stream (same matches, same
/// order) and the same next checkpoint, as the original.
void ExpectByteIdenticalContinuation(uint64_t seed, size_t threads) {
  testutil::RandomCaseConfig cfg;
  cfg.stream_ops = 60;
  testutil::RandomCase c = testutil::MakeRandomCase(seed, cfg);
  const size_t half = c.stream.size() / 2;

  TurboFluxOptions opts;
  opts.threads = threads;
  TurboFluxEngine original(opts);
  DiscardSink discard;
  BuildEngine(original, c, half, discard);
  std::string snapshot = CheckpointToString(original);

  TurboFluxEngine restored(opts);
  Status st = RestoreFromString(restored, snapshot);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(restored.applied_ops(), original.applied_ops());
  EXPECT_EQ(restored.dcg().ToString(), original.dcg().ToString());
  EXPECT_EQ(restored.tree().ToString(), original.tree().ToString());
  EXPECT_EQ(restored.matching_order(), original.matching_order());
  EXPECT_TRUE(restored.dcg().Validate().empty());
  EXPECT_TRUE(restored.graph().CheckConsistency().empty());

  // Same checkpoint bytes from the restored engine.
  EXPECT_EQ(CheckpointToString(restored), snapshot);

  // Same subsequent match stream, record for record, via the parallel
  // batched path when threads > 1.
  CollectingSink a, b;
  std::span<const UpdateOp> rest(c.stream.data() + half,
                                 c.stream.size() - half);
  ASSERT_TRUE(original.ApplyBatch(rest, a, Deadline::Infinite()));
  ASSERT_TRUE(restored.ApplyBatch(rest, b, Deadline::Infinite()));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].positive, b.records()[i].positive) << "at " << i;
    EXPECT_EQ(a.records()[i].mapping, b.records()[i].mapping) << "at " << i;
  }
  EXPECT_EQ(original.dcg().ToString(), restored.dcg().ToString());
}

TEST(Checkpoint, RoundTripIsByteIdenticalSequential) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    ExpectByteIdenticalContinuation(seed, /*threads=*/1);
  }
}

TEST(Checkpoint, RoundTripIsByteIdenticalParallel) {
  for (uint64_t seed : {5u, 6u}) {
    ExpectByteIdenticalContinuation(seed, /*threads=*/4);
  }
}

TEST(Checkpoint, RoundTripWithIsomorphismSemantics) {
  testutil::RandomCase c = testutil::MakeRandomCase(9, {});
  TurboFluxOptions opts;
  opts.semantics = MatchSemantics::kIsomorphism;
  TurboFluxEngine original(opts);
  DiscardSink discard;
  BuildEngine(original, c, c.stream.size() / 2, discard);
  std::string snapshot = CheckpointToString(original);

  TurboFluxEngine restored(opts);
  ASSERT_TRUE(RestoreFromString(restored, snapshot).ok());
  EXPECT_EQ(restored.dcg().ToString(), original.dcg().ToString());

  // Mismatched semantics are rejected, not silently reinterpreted.
  TurboFluxEngine wrong;  // defaults to homomorphism
  Status st = RestoreFromString(wrong, snapshot);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(Checkpoint, CheckpointBeforeInitFails) {
  TurboFluxEngine engine;
  std::ostringstream os;
  EXPECT_EQ(engine.Checkpoint(os).code(), StatusCode::kFailedPrecondition);
}

TEST(Checkpoint, EmptyAndGarbageInputsRejected) {
  TurboFluxEngine engine;
  EXPECT_EQ(RestoreFromString(engine, "").code(), StatusCode::kCorruption);
  TurboFluxEngine engine2;
  EXPECT_EQ(RestoreFromString(engine2, "not a checkpoint at all").code(),
            StatusCode::kCorruption);
}

TEST(Checkpoint, WrongVersionRejected) {
  testutil::RandomCase c = testutil::MakeRandomCase(3, {});
  TurboFluxEngine engine;
  DiscardSink discard;
  BuildEngine(engine, c, 5, discard);
  std::string snapshot = CheckpointToString(engine);
  snapshot[4] = static_cast<char>(0x7f);  // first version byte
  TurboFluxEngine fresh;
  EXPECT_EQ(RestoreFromString(fresh, snapshot).code(),
            StatusCode::kUnsupportedVersion);
}

TEST(Checkpoint, EveryTruncationRejectedCleanly) {
  testutil::RandomCase c = testutil::MakeRandomCase(4, {});
  TurboFluxEngine engine;
  DiscardSink discard;
  BuildEngine(engine, c, 10, discard);
  std::string snapshot = CheckpointToString(engine);
  ASSERT_GT(snapshot.size(), 64u);
  // Step through prefix lengths (stride keeps the loop fast; the section
  // framing makes all truncations within a section equivalent anyway).
  for (size_t len = 0; len < snapshot.size(); len += 7) {
    TurboFluxEngine fresh;
    Status st = RestoreFromString(fresh, snapshot.substr(0, len));
    EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes accepted";
  }
}

// Fuzz: a single flipped bit anywhere in the snapshot must be rejected
// with a clean Status — CRC32 catches payload flips, framing checks catch
// the rest. Never a crash (the ASan/UBSan CI jobs give this test teeth).
TEST(Checkpoint, EveryBitFlipRejected) {
  testutil::RandomCase c = testutil::MakeRandomCase(5, {});
  TurboFluxEngine engine;
  DiscardSink discard;
  BuildEngine(engine, c, 10, discard);
  const std::string good = CheckpointToString(engine);

  const char* env = std::getenv("TFX_LONG_TESTS");
  const size_t stride = (env != nullptr && env[0] == '1') ? 1 : 13;
  for (size_t off = 0; off < good.size(); off += stride) {
    std::string bad = good;
    ASSERT_TRUE(CorruptSnapshot(bad, off));
    TurboFluxEngine fresh;
    Status st = RestoreFromString(fresh, bad);
    EXPECT_FALSE(st.ok()) << "bit flip at byte " << off << " accepted";
    EXPECT_TRUE(fresh.dead());
  }
}

TEST(Checkpoint, RestoredEngineSurvivesWithoutTheOriginalQuery) {
  // The snapshot must carry the query: restore into an engine whose
  // original QueryGraph has been destroyed, then keep matching.
  testutil::RandomCase c = testutil::MakeRandomCase(6, {});
  std::string snapshot;
  {
    TurboFluxEngine engine;
    DiscardSink discard;
    BuildEngine(engine, c, c.stream.size() / 2, discard);
    snapshot = CheckpointToString(engine);
  }
  auto query = std::make_unique<QueryGraph>(c.query);
  TurboFluxEngine engine;
  CollectingSink sink;
  ASSERT_TRUE(engine.Init(*query, c.g0, sink, Deadline::Infinite()));
  query.reset();  // restored state must not reference this
  ASSERT_TRUE(RestoreFromString(engine, snapshot).ok());
  for (size_t i = c.stream.size() / 2; i < c.stream.size(); ++i) {
    ASSERT_TRUE(engine.ApplyUpdate(c.stream[i], sink, Deadline::Infinite()));
  }
  EXPECT_TRUE(engine.dcg().Validate().empty());
}

}  // namespace
}  // namespace turboflux
