// Checkpoint cross-layout compatibility (ISSUE 7 satellite 3).
//
// tests/data/ckpt_node_layout.tfx was written by the pre-rework build,
// whose Graph stored adjacency as std::vector<std::vector<AdjEntry>> and
// edge labels in a std::unordered_map. The CSR/slab rework must (a)
// Restore that snapshot cleanly — the serialized TFX format is layout-
// independent — and (b) reproduce the *same bytes* when an engine built
// from scratch over the same deterministic scenario checkpoints at the
// same stream position. Together these guard the "format unchanged"
// claim: old snapshots keep working, and new snapshots are byte-equal to
// what the old layout would have written.
//
// Regenerating the fixture (only needed if the *scenario* changes, never
// for a layout change): build at the old layout and run with
// TFX_REGEN_FIXTURES=1, e.g.
//   TFX_REGEN_FIXTURES=1 ./turboflux_tests \
//       --gtest_filter=CheckpointCompat.RegenerateFixture

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/core/turboflux.h"

namespace turboflux {
namespace {

#ifndef TFX_TEST_DATA_DIR
#error "TFX_TEST_DATA_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

const char kFixturePath[] = TFX_TEST_DATA_DIR "/ckpt_node_layout.tfx";

// The pinned scenario. Everything here is deterministic and independent
// of graph memory layout: MakeRandomCase only uses the seeded Rng plus
// AddVertex/AddEdge, and the engine's evaluation order is pinned by the
// serialized adjacency/DCG list orders.
constexpr uint64_t kScenarioSeed = 4242;
constexpr size_t kScenarioOps = 80;

testutil::RandomCase MakeScenario() {
  testutil::RandomCaseConfig cfg;
  cfg.stream_ops = kScenarioOps;
  return testutil::MakeRandomCase(kScenarioSeed, cfg);
}

// Init + first half of the stream: the fixture's stream position.
void BuildToFixturePosition(TurboFluxEngine& engine,
                            const testutil::RandomCase& c, MatchSink& sink) {
  ASSERT_TRUE(engine.Init(c.query, c.g0, sink, Deadline::Infinite()));
  for (size_t i = 0; i < c.stream.size() / 2; ++i) {
    ASSERT_TRUE(engine.ApplyUpdate(c.stream[i], sink, Deadline::Infinite()));
  }
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CheckpointCompat, RegenerateFixture) {
  if (std::getenv("TFX_REGEN_FIXTURES") == nullptr) {
    GTEST_SKIP() << "set TFX_REGEN_FIXTURES=1 to (re)write " << kFixturePath;
  }
  testutil::RandomCase c = MakeScenario();
  TurboFluxEngine engine;
  DiscardSink discard;
  BuildToFixturePosition(engine, c, discard);
  std::ofstream out(kFixturePath, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << kFixturePath;
  Status st = engine.Checkpoint(out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  out.flush();
  ASSERT_TRUE(out.good());
}

TEST(CheckpointCompat, NodeLayoutFixtureRestoresCleanly) {
  std::string fixture = ReadFileOrEmpty(kFixturePath);
  ASSERT_FALSE(fixture.empty()) << "missing fixture " << kFixturePath;

  TurboFluxEngine restored;
  std::istringstream in(fixture);
  Status st = restored.Restore(in);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(restored.applied_ops(), kScenarioOps / 2);
  EXPECT_TRUE(restored.graph().CheckConsistency().empty());
  EXPECT_TRUE(restored.dcg().Validate().empty());
}

TEST(CheckpointCompat, CurrentLayoutWritesIdenticalBytes) {
  std::string fixture = ReadFileOrEmpty(kFixturePath);
  ASSERT_FALSE(fixture.empty()) << "missing fixture " << kFixturePath;

  // A from-scratch engine at the same stream position must checkpoint to
  // exactly the fixture's bytes, whatever its in-memory layout.
  testutil::RandomCase c = MakeScenario();
  TurboFluxEngine fresh;
  DiscardSink discard;
  BuildToFixturePosition(fresh, c, discard);
  std::ostringstream out;
  Status st = fresh.Checkpoint(out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out.str(), fixture);
}

TEST(CheckpointCompat, RestoredFixtureRoundTripsByteIdentically) {
  std::string fixture = ReadFileOrEmpty(kFixturePath);
  ASSERT_FALSE(fixture.empty()) << "missing fixture " << kFixturePath;

  TurboFluxEngine restored;
  std::istringstream in(fixture);
  ASSERT_TRUE(restored.Restore(in).ok());
  std::ostringstream out;
  ASSERT_TRUE(restored.Checkpoint(out).ok());
  EXPECT_EQ(out.str(), fixture);

  // And the continuation matches a from-scratch engine op for op.
  testutil::RandomCase c = MakeScenario();
  TurboFluxEngine fresh;
  DiscardSink discard;
  BuildToFixturePosition(fresh, c, discard);
  CollectingSink a, b;
  for (size_t i = c.stream.size() / 2; i < c.stream.size(); ++i) {
    ASSERT_TRUE(fresh.ApplyUpdate(c.stream[i], a, Deadline::Infinite()));
    ASSERT_TRUE(restored.ApplyUpdate(c.stream[i], b, Deadline::Infinite()));
  }
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].positive, b.records()[i].positive) << "at " << i;
    EXPECT_EQ(a.records()[i].mapping, b.records()[i].mapping) << "at " << i;
  }
}

}  // namespace
}  // namespace turboflux
