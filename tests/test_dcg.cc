#include "turboflux/core/dcg.h"

#include "gtest/gtest.h"
#include "turboflux/query/query_stats.h"

namespace turboflux {
namespace {

// Query path u0 -0-> u1 -1-> u2 used for most DCG unit tests.
struct PathFixture {
  QueryGraph q;
  QueryTree tree;

  PathFixture() {
    QVertexId u0 = q.AddVertex(LabelSet{0});
    QVertexId u1 = q.AddVertex(LabelSet{1});
    QVertexId u2 = q.AddVertex(LabelSet{2});
    q.AddEdge(u0, 0, u1);
    q.AddEdge(u1, 1, u2);
    QueryStats stats;
    stats.edge_matches.assign(q.EdgeCount(), 1);
    stats.vertex_matches.assign(q.VertexCount(), 1);
    tree = QueryTree::Build(q, u0, stats);
  }
};

TEST(Dcg, EmptyAfterReset) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  EXPECT_EQ(dcg.EdgeCount(), 0u);
  EXPECT_EQ(dcg.ExplicitEdgeCount(), 0u);
  EXPECT_EQ(dcg.GetState(0, 1, 2), DcgState::kNull);
  EXPECT_FALSE(dcg.HasInEdge(2, 1));
  EXPECT_TRUE(dcg.Snapshot().empty());
}

TEST(Dcg, InsertImplicitEdge) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  EXPECT_EQ(dcg.GetState(0, 1, 2), DcgState::kImplicit);
  EXPECT_EQ(dcg.EdgeCount(), 1u);
  EXPECT_EQ(dcg.ExplicitEdgeCount(), 0u);
  EXPECT_TRUE(dcg.HasInEdge(2, 1));
  EXPECT_EQ(dcg.InCount(2, 1), 1u);
  EXPECT_EQ(dcg.ExplicitOutCount(0, 1), 0u);
  ASSERT_EQ(dcg.OutEdgesOf(0, 1).size(), 1u);
  EXPECT_EQ(dcg.OutEdgesOf(0, 1)[0].to, 2u);
}

TEST(Dcg, PromoteToExplicit) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  dcg.SetState(0, 1, 2, DcgState::kExplicit);
  EXPECT_EQ(dcg.GetState(0, 1, 2), DcgState::kExplicit);
  EXPECT_EQ(dcg.ExplicitEdgeCount(), 1u);
  EXPECT_EQ(dcg.ExplicitOutCount(0, 1), 1u);
  EXPECT_EQ(dcg.ExplicitCountFor(1), 1u);
  // The in/out mirrors must agree.
  EXPECT_EQ(dcg.InEdgesOf(2, 1)[0].state, DcgState::kExplicit);
  EXPECT_EQ(dcg.OutEdgesOf(0, 1)[0].state, DcgState::kExplicit);
}

TEST(Dcg, DemoteToImplicit) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  dcg.SetState(0, 1, 2, DcgState::kExplicit);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);  // Transition 4
  EXPECT_EQ(dcg.GetState(0, 1, 2), DcgState::kImplicit);
  EXPECT_EQ(dcg.ExplicitEdgeCount(), 0u);
  EXPECT_EQ(dcg.ExplicitOutCount(0, 1), 0u);
  EXPECT_EQ(dcg.EdgeCount(), 1u);
}

TEST(Dcg, RemoveEdge) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  dcg.SetState(0, 1, 2, DcgState::kExplicit);
  dcg.SetState(0, 1, 2, DcgState::kNull);  // Transition 3
  EXPECT_EQ(dcg.GetState(0, 1, 2), DcgState::kNull);
  EXPECT_EQ(dcg.EdgeCount(), 0u);
  EXPECT_EQ(dcg.ExplicitEdgeCount(), 0u);
  EXPECT_FALSE(dcg.HasInEdge(2, 1));
  EXPECT_TRUE(dcg.OutEdgesOf(0, 1).empty());
}

TEST(Dcg, RemovingAbsentEdgeIsNoop) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(0, 1, 2, DcgState::kNull);
  EXPECT_EQ(dcg.EdgeCount(), 0u);
}

TEST(Dcg, MultipleParentsSameChild) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  dcg.SetState(1, 1, 2, DcgState::kImplicit);
  EXPECT_EQ(dcg.InCount(2, 1), 2u);
  dcg.SetState(0, 1, 2, DcgState::kNull);
  EXPECT_EQ(dcg.InCount(2, 1), 1u);
  EXPECT_TRUE(dcg.HasInEdge(2, 1));  // (1,1,2) remains
  EXPECT_EQ(dcg.GetState(1, 1, 2), DcgState::kImplicit);
}

TEST(Dcg, ArtificialVertexEdges) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(kArtificialVertex, 0, 3, DcgState::kImplicit);
  EXPECT_EQ(dcg.GetState(kArtificialVertex, 0, 3), DcgState::kImplicit);
  EXPECT_TRUE(dcg.HasInEdge(3, 0));
  EXPECT_EQ(dcg.EdgeCount(), 1u);
  dcg.SetState(kArtificialVertex, 0, 3, DcgState::kExplicit);
  EXPECT_EQ(dcg.ExplicitCountFor(0), 1u);
  dcg.SetState(kArtificialVertex, 0, 3, DcgState::kNull);
  EXPECT_EQ(dcg.EdgeCount(), 0u);
}

TEST(Dcg, MatchAllChildrenViaBitmap) {
  PathFixture f;
  // Tree: u0 -> u1 -> u2. u2 is a leaf, u1 has one child (u2).
  Dcg dcg;
  dcg.Reset(5, f.tree);
  EXPECT_TRUE(dcg.MatchAllChildren(4, 2));   // leaf: vacuously true
  EXPECT_FALSE(dcg.MatchAllChildren(2, 1));  // no explicit out yet
  dcg.SetState(2, 2, 3, DcgState::kImplicit);
  EXPECT_FALSE(dcg.MatchAllChildren(2, 1));  // implicit does not count
  dcg.SetState(2, 2, 3, DcgState::kExplicit);
  EXPECT_TRUE(dcg.MatchAllChildren(2, 1));
  dcg.SetState(2, 2, 3, DcgState::kImplicit);
  EXPECT_FALSE(dcg.MatchAllChildren(2, 1));
}

TEST(Dcg, SelfLoopDataEdge) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(2, 1, 2, DcgState::kImplicit);  // (v2, u1, v2)
  EXPECT_EQ(dcg.GetState(2, 1, 2), DcgState::kImplicit);
  EXPECT_EQ(dcg.InCount(2, 1), 1u);
  EXPECT_EQ(dcg.OutEdgesOf(2, 1).size(), 1u);
  dcg.SetState(2, 1, 2, DcgState::kExplicit);
  EXPECT_EQ(dcg.ExplicitOutCount(2, 1), 1u);
  dcg.SetState(2, 1, 2, DcgState::kNull);
  EXPECT_EQ(dcg.EdgeCount(), 0u);
  EXPECT_TRUE(dcg.OutEdgesOf(2, 1).empty());
}

TEST(Dcg, SnapshotSortedAndComplete) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(1, 1, 2, DcgState::kImplicit);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  dcg.SetState(0, 1, 2, DcgState::kExplicit);
  dcg.SetState(2, 2, 4, DcgState::kImplicit);
  auto snap = dcg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0],
            Dcg::EdgeTuple(0, 1, 2, DcgState::kExplicit));
  EXPECT_EQ(snap[1],
            Dcg::EdgeTuple(1, 1, 2, DcgState::kImplicit));
  EXPECT_EQ(snap[2],
            Dcg::EdgeTuple(2, 2, 4, DcgState::kImplicit));
}

TEST(Dcg, PerQueryVertexExplicitCounters) {
  PathFixture f;
  Dcg dcg;
  dcg.Reset(5, f.tree);
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  dcg.SetState(0, 1, 2, DcgState::kExplicit);
  dcg.SetState(2, 2, 3, DcgState::kImplicit);
  dcg.SetState(2, 2, 3, DcgState::kExplicit);
  dcg.SetState(2, 2, 4, DcgState::kImplicit);
  dcg.SetState(2, 2, 4, DcgState::kExplicit);
  EXPECT_EQ(dcg.ExplicitCountFor(1), 1u);
  EXPECT_EQ(dcg.ExplicitCountFor(2), 2u);
  dcg.SetState(2, 2, 4, DcgState::kNull);
  EXPECT_EQ(dcg.ExplicitCountFor(2), 1u);
}

}  // namespace
}  // namespace turboflux
