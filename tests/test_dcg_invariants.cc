// Invariant property tests of the DCG under the full engine:
//
//  I1 — internal consistency (Dcg::Validate): in/out mirrors, bitmaps,
//       and counters agree after every update;
//  I2 — semantic invariant of Definitions 4/5: a stored edge (v, u, v')
//       is EXPLICIT iff every subtree of u matches under v'
//       (MatchAllChildren), IMPLICIT otherwise;
//  I3 — the intermediate-result size metric equals the snapshot size.

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/core/turboflux.h"

namespace turboflux {
namespace {

using testutil::MakeRandomCase;
using testutil::RandomCase;
using testutil::RandomCaseConfig;

// Checks Definitions 4/5 on every stored edge.
::testing::AssertionResult StatesMatchDefinition(const TurboFluxEngine& e) {
  for (const Dcg::EdgeTuple& t : e.dcg().Snapshot()) {
    QVertexId u = std::get<1>(t);
    VertexId to = std::get<2>(t);
    DcgState state = std::get<3>(t);
    bool subtree_matched = e.dcg().MatchAllChildren(to, u);
    DcgState expected =
        subtree_matched ? DcgState::kExplicit : DcgState::kImplicit;
    if (state != expected) {
      return ::testing::AssertionFailure()
             << "edge (u" << u << ", v" << to << ") is "
             << DcgStateChar(state) << " but MatchAllChildren="
             << subtree_matched;
    }
  }
  return ::testing::AssertionSuccess();
}

class DcgInvariantProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DcgInvariantProperty, HoldAfterEveryUpdate) {
  RandomCaseConfig config;
  config.num_vertices = 10;
  config.initial_edges = 16;
  config.stream_ops = 50;
  config.query_vertices = 4;
  config.query_edges = 4;  // one non-tree edge
  RandomCase c = MakeRandomCase(GetParam(), config);

  TurboFluxEngine engine;
  CountingSink sink;
  ASSERT_TRUE(engine.Init(c.query, c.g0, sink, Deadline::Infinite()));
  ASSERT_EQ(engine.dcg().Validate(), "");
  ASSERT_TRUE(StatesMatchDefinition(engine));

  for (size_t i = 0; i < c.stream.size(); ++i) {
    ASSERT_TRUE(engine.ApplyUpdate(c.stream[i], sink, Deadline::Infinite()));
    ASSERT_EQ(engine.dcg().Validate(), "")
        << "seed=" << GetParam() << " op#" << i;
    ASSERT_TRUE(StatesMatchDefinition(engine))
        << "seed=" << GetParam() << " op#" << i << " "
        << c.stream[i].ToString();
    ASSERT_EQ(engine.IntermediateSize(), engine.dcg().Snapshot().size());
  }
}

TEST_P(DcgInvariantProperty, HoldUnderIsomorphismToo) {
  RandomCaseConfig config;
  config.num_vertices = 8;
  config.stream_ops = 30;
  config.query_vertices = 3;
  config.query_edges = 3;
  RandomCase c = MakeRandomCase(GetParam() + 7777, config);

  TurboFluxOptions options;
  options.semantics = MatchSemantics::kIsomorphism;
  TurboFluxEngine engine(options);
  CountingSink sink;
  ASSERT_TRUE(engine.Init(c.query, c.g0, sink, Deadline::Infinite()));
  for (const UpdateOp& op : c.stream) {
    ASSERT_TRUE(engine.ApplyUpdate(op, sink, Deadline::Infinite()));
    ASSERT_EQ(engine.dcg().Validate(), "") << "seed=" << GetParam();
    // The DCG itself is semantics-independent: it must equal the
    // homomorphism rebuild regardless of the match semantics.
    ASSERT_EQ(engine.dcg().Snapshot(),
              engine.RebuildDcgFromScratch().Snapshot());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcgInvariantProperty,
                         ::testing::Range<uint64_t>(500, 530));

TEST(DcgValidate, DetectsNothingOnEmpty) {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  q.AddEdge(u0, 0, u1);
  QueryStats stats;
  stats.edge_matches.assign(1, 1);
  stats.vertex_matches.assign(2, 1);
  QueryTree tree = QueryTree::Build(q, u0, stats);
  Dcg dcg;
  dcg.Reset(4, tree);
  EXPECT_EQ(dcg.Validate(), "");
  dcg.SetState(0, 1, 2, DcgState::kImplicit);
  dcg.SetState(0, 1, 2, DcgState::kExplicit);
  EXPECT_EQ(dcg.Validate(), "");
}

}  // namespace
}  // namespace turboflux
