#include "turboflux/common/deadline.h"

#include <thread>

#include "gtest/gtest.h"

namespace turboflux {
namespace {

TEST(Deadline, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Deadline, ZeroBudgetExpiresImmediatelyOnExactCheck) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, AmortizedCheckEventuallyFires) {
  Deadline d = Deadline::AfterMillis(0);
  bool expired = false;
  // The amortized check reads the clock every 256 calls at most.
  for (int i = 0; i < 1000 && !expired; ++i) expired = d.Expired();
  EXPECT_TRUE(expired);
}

TEST(Deadline, StaysExpired) {
  Deadline d = Deadline::AfterMillis(0);
  ASSERT_TRUE(d.ExpiredNow());
  EXPECT_TRUE(d.Expired());
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, GenerousBudgetDoesNotExpire) {
  Deadline d = Deadline::AfterMillis(60 * 1000);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Deadline, ExpiresAfterSleep) {
  Deadline d = Deadline::AfterMillis(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, RemainingReportsBudget) {
  EXPECT_EQ(Deadline::Infinite().Remaining(), std::chrono::milliseconds::max());

  Deadline generous = Deadline::AfterMillis(60'000);
  std::chrono::milliseconds left = generous.Remaining();
  EXPECT_GT(left.count(), 30'000);
  EXPECT_LE(left.count(), 60'000);

  Deadline spent = Deadline::AfterMillis(0);
  EXPECT_TRUE(spent.ExpiredNow());
  EXPECT_EQ(spent.Remaining(), std::chrono::milliseconds(0));
}

// Copying a deadline resets the amortization counter, so the copy's first
// Expired() consults the clock instead of inheriting up to kCheckInterval-1
// free passes from the original — a copy made after expiry must never
// report "not expired".
TEST(Deadline, CopyChecksClockImmediately) {
  Deadline d = Deadline::AfterMillis(0);
  Deadline copy = d;                       // copy-construct
  EXPECT_TRUE(copy.Expired());             // first call already fires

  Deadline assigned = Deadline::Infinite();
  assigned = d;                            // copy-assign
  EXPECT_TRUE(assigned.Expired());

  // The original still amortizes: a factory-made deadline's early Expired()
  // calls may return false before the interval elapses. (Behavioral anchor
  // for the fault-injection poison deadline, which relies on partial
  // progress before the amortized check fires.)
  Deadline fresh = Deadline::AfterMillis(0);
  EXPECT_FALSE(fresh.Expired());
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.010);
  EXPECT_LT(elapsed, 2.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 0.010);
}

}  // namespace
}  // namespace turboflux
