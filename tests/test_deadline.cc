#include "turboflux/common/deadline.h"

#include <chrono>
#include <thread>

#include "gtest/gtest.h"
#include "turboflux/serve/pause_detector.h"

namespace turboflux {
namespace {

TEST(Deadline, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Deadline, ZeroBudgetExpiresImmediatelyOnExactCheck) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, AmortizedCheckEventuallyFires) {
  Deadline d = Deadline::AfterMillis(0);
  bool expired = false;
  // The amortized check reads the clock every 256 calls at most.
  for (int i = 0; i < 1000 && !expired; ++i) expired = d.Expired();
  EXPECT_TRUE(expired);
}

TEST(Deadline, StaysExpired) {
  Deadline d = Deadline::AfterMillis(0);
  ASSERT_TRUE(d.ExpiredNow());
  EXPECT_TRUE(d.Expired());
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, GenerousBudgetDoesNotExpire) {
  Deadline d = Deadline::AfterMillis(60 * 1000);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Deadline, ExpiresAfterSleep) {
  Deadline d = Deadline::AfterMillis(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, RemainingReportsBudget) {
  EXPECT_EQ(Deadline::Infinite().Remaining(), std::chrono::milliseconds::max());

  Deadline generous = Deadline::AfterMillis(60'000);
  std::chrono::milliseconds left = generous.Remaining();
  EXPECT_GT(left.count(), 30'000);
  EXPECT_LE(left.count(), 60'000);

  Deadline spent = Deadline::AfterMillis(0);
  EXPECT_TRUE(spent.ExpiredNow());
  EXPECT_EQ(spent.Remaining(), std::chrono::milliseconds(0));
}

// Copying a deadline resets the amortization counter, so the copy's first
// Expired() consults the clock instead of inheriting up to kCheckInterval-1
// free passes from the original — a copy made after expiry must never
// report "not expired".
TEST(Deadline, CopyChecksClockImmediately) {
  Deadline d = Deadline::AfterMillis(0);
  Deadline copy = d;                       // copy-construct
  EXPECT_TRUE(copy.Expired());             // first call already fires

  Deadline assigned = Deadline::Infinite();
  assigned = d;                            // copy-assign
  EXPECT_TRUE(assigned.Expired());

  // The original still amortizes: a factory-made deadline's early Expired()
  // calls may return false before the interval elapses. (Behavioral anchor
  // for the fault-injection poison deadline, which relies on partial
  // progress before the amortized check fires.)
  Deadline fresh = Deadline::AfterMillis(0);
  EXPECT_FALSE(fresh.Expired());
}

// --- Wall-clock pause compensation (DESIGN.md §3.12) -----------------
// steady_clock keeps ticking through SIGSTOP / container freezes; the
// regression here is a long-suspended server mass-expiring every
// in-flight deadline the moment it resumes. Pause credit is global and
// monotone, but each deadline snapshots it at creation — so credit only
// extends deadlines that were alive when the pause was reported.

TEST(DeadlinePause, CreditExtendsInFlightDeadline) {
  Deadline d = Deadline::AfterMillis(30);
  // The process "was frozen" for 10 s while d was in flight.
  Deadline::NotePause(std::chrono::seconds(10));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Without the credit this would be 30 ms past expiry.
  EXPECT_FALSE(d.ExpiredNow());
  EXPECT_GT(d.Remaining(), std::chrono::milliseconds(1000));
}

TEST(DeadlinePause, CreditBeforeCreationDoesNotExtend) {
  Deadline::NotePause(std::chrono::seconds(10));
  Deadline d = Deadline::AfterMillis(20);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(DeadlinePause, StillExpiresOnceCreditIsSpent) {
  Deadline d = Deadline::AfterMillis(20);
  Deadline::NotePause(std::chrono::milliseconds(30));
  // 20 ms budget + 30 ms credit < 100 ms of real time: credit defers
  // expiry, it does not disable it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(DeadlinePause, CopyInheritsTheCreditSnapshot) {
  // Credit noted before the original existed extends neither it nor a
  // copy taken later (the copy stands in for the same logical op).
  Deadline::NotePause(std::chrono::seconds(5));
  Deadline original = Deadline::AfterMillis(20);
  Deadline copy = original;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(copy.ExpiredNow());

  // Credit noted while the original was in flight extends a copy taken
  // afterwards — the snapshot travels with the logical operation.
  Deadline extended = Deadline::AfterMillis(30);
  Deadline::NotePause(std::chrono::seconds(10));
  Deadline extended_copy = extended;
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(extended_copy.ExpiredNow());
}

TEST(DeadlinePause, DetectorHeartbeatReportsOversleeps) {
  // A zero tolerance threshold turns ordinary scheduler overshoot into
  // "pauses", which is exactly what the plumbing test needs: heartbeat
  // overshoot -> NotePause -> global credit grows.
  int64_t credit_before = Deadline::TotalPauseCreditNanos();
  {
    serve::PauseDetector detector(std::chrono::milliseconds(1),
                                  std::chrono::milliseconds(0));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (detector.pauses_detected() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(detector.pauses_detected(), 0u);
  }
  EXPECT_GT(Deadline::TotalPauseCreditNanos(), credit_before);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.010);
  EXPECT_LT(elapsed, 2.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 0.010);
}

}  // namespace
}  // namespace turboflux
