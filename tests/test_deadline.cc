#include "turboflux/common/deadline.h"

#include <thread>

#include "gtest/gtest.h"

namespace turboflux {
namespace {

TEST(Deadline, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Deadline, ZeroBudgetExpiresImmediatelyOnExactCheck) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, AmortizedCheckEventuallyFires) {
  Deadline d = Deadline::AfterMillis(0);
  bool expired = false;
  // The amortized check reads the clock every 256 calls at most.
  for (int i = 0; i < 1000 && !expired; ++i) expired = d.Expired();
  EXPECT_TRUE(expired);
}

TEST(Deadline, StaysExpired) {
  Deadline d = Deadline::AfterMillis(0);
  ASSERT_TRUE(d.ExpiredNow());
  EXPECT_TRUE(d.Expired());
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Deadline, GenerousBudgetDoesNotExpire) {
  Deadline d = Deadline::AfterMillis(60 * 1000);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.ExpiredNow());
}

TEST(Deadline, ExpiresAfterSleep) {
  Deadline d = Deadline::AfterMillis(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(d.ExpiredNow());
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.010);
  EXPECT_LT(elapsed, 2.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 0.010);
}

}  // namespace
}  // namespace turboflux
