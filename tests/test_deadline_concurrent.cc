// Deadline under concurrency (the parallel batch path polls one shared
// deadline from every worker) plus the engine's cut-short-batch
// semantics: when a deadline expires mid-batch, ApplyBatch must return
// false, report exactly the matches of some prefix of the window (whole
// ops, in stream order), and leave the engine dead to further updates.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/common/deadline.h"
#include "turboflux/core/turboflux.h"

namespace turboflux {
namespace {

using testutil::MakeRandomCase;
using testutil::RandomCase;
using testutil::RandomCaseConfig;

RandomCaseConfig TreeConfig() {
  RandomCaseConfig config;
  config.num_vertices = 9;
  config.num_vertex_labels = 3;
  config.num_edge_labels = 2;
  config.initial_edges = 14;
  config.stream_ops = 40;
  config.query_vertices = 4;
  config.query_edges = 3;
  return config;
}

TEST(DeadlineConcurrent, InfiniteNeverExpiresUnderContention) {
  Deadline d = Deadline::Infinite();
  std::vector<std::thread> threads;
  std::atomic<bool> any_expired{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100000; ++i) {
        if (d.Expired()) any_expired = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(any_expired.load());
}

TEST(DeadlineConcurrent, ExpiryIsObservedByAllPollersAndSticks) {
  Deadline d = Deadline::AfterMillis(20);
  std::vector<std::thread> threads;
  std::atomic<int> observed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      // Each poll increments the shared sample counter; the clock is
      // only consulted every kCheckInterval calls, so spin until the
      // expiry actually becomes visible to this thread.
      while (!d.Expired()) {
      }
      ++observed;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(observed.load(), 4);
  // Sticky: once expired, always expired — no clock re-check that could
  // flip the answer back.
  EXPECT_TRUE(d.Expired());
  EXPECT_TRUE(d.ExpiredNow());
  // Copies made after expiry inherit the flag immediately.
  Deadline copy = d;
  EXPECT_TRUE(copy.Expired());
}

using Records = std::vector<CollectingSink::Record>;

// Sequentially replays `stream` on a fresh engine, returning each op's
// match records separately (the reference for prefix checks).
std::vector<Records> SequentialPerOp(const RandomCase& c,
                                     const UpdateStream& stream) {
  TurboFluxEngine seq;
  CountingSink init;
  EXPECT_TRUE(seq.Init(c.query, c.g0, init, Deadline::Infinite()));
  std::vector<Records> out;
  for (const UpdateOp& op : stream) {
    CollectingSink sink;
    EXPECT_TRUE(seq.ApplyUpdate(op, sink, Deadline::Infinite()));
    out.push_back(sink.records());
  }
  return out;
}

bool SameRecord(const CollectingSink::Record& a,
                const CollectingSink::Record& b) {
  return a.positive == b.positive && a.mapping == b.mapping;
}

// True iff `got` equals the concatenation of per_op[0..k) for some k.
bool IsPerOpPrefix(const Records& got, const std::vector<Records>& per_op) {
  size_t pos = 0;
  if (got.empty()) return true;
  for (const Records& op_records : per_op) {
    for (const CollectingSink::Record& r : op_records) {
      if (pos == got.size()) return false;  // cut inside an op
      if (!SameRecord(got[pos], r)) return false;
      ++pos;
    }
    if (pos == got.size()) return true;
  }
  return pos == got.size();
}

TEST(DeadlineConcurrent, PreExpiredDeadlineCutsBatchToEmptyPrefix) {
  RandomCase c = MakeRandomCase(3, TreeConfig());
  TurboFluxOptions opt;
  opt.threads = 4;
  TurboFluxEngine engine(opt);
  CountingSink init;
  ASSERT_TRUE(engine.Init(c.query, c.g0, init, Deadline::Infinite()));

  Deadline d = Deadline::AfterMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  while (!d.Expired()) {
  }
  CollectingSink sink;
  EXPECT_FALSE(engine.ApplyBatch(c.stream, sink, d));
  EXPECT_EQ(sink.size(), 0u);
  // The engine is dead after a cut-short batch: further updates refuse.
  EXPECT_FALSE(
      engine.ApplyUpdate(c.stream[0], sink, Deadline::Infinite()));
  EXPECT_EQ(sink.size(), 0u);
}

TEST(DeadlineConcurrent, MidBatchExpiryReportsWholeOpPrefix) {
  RandomCase c = MakeRandomCase(5, TreeConfig());
  // Lengthen the window (repeats are legal: duplicate inserts and
  // deletes of absent edges are no-ops) so a short deadline can land
  // mid-batch rather than before or after it.
  UpdateStream stream;
  for (int r = 0; r < 8; ++r) {
    for (const UpdateOp& op : c.stream) stream.push_back(op);
  }
  std::vector<Records> per_op = SequentialPerOp(c, stream);

  // Whether the deadline fires before, during, or after the batch is
  // timing-dependent; all three outcomes must satisfy the contract.
  TurboFluxOptions opt;
  opt.threads = 4;
  TurboFluxEngine engine(opt);
  CountingSink init;
  ASSERT_TRUE(engine.Init(c.query, c.g0, init, Deadline::Infinite()));
  CollectingSink sink;
  bool ok = engine.ApplyBatch(stream, sink, Deadline::AfterMillis(2));
  if (ok) {
    size_t total = 0;
    for (const Records& r : per_op) total += r.size();
    EXPECT_EQ(sink.size(), total);
  } else {
    EXPECT_FALSE(
        engine.ApplyUpdate(stream[0], sink, Deadline::Infinite()));
  }
  EXPECT_TRUE(IsPerOpPrefix(sink.records(), per_op))
      << "reported " << sink.size()
      << " records, not a whole-op prefix of the sequential run";
}

}  // namespace
}  // namespace turboflux
