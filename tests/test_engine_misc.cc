// Engine lifecycle and edge-orientation corner cases shared by all
// engines: re-initialization, reversed tree edges, multi-label vertices,
// and parallel edges with distinct labels.

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/baseline/graphflow.h"
#include "turboflux/core/turboflux.h"

namespace turboflux {
namespace {

TEST(EngineReuse, InitRebindsToNewQueryAndGraph) {
  QueryGraph q1;
  QVertexId a = q1.AddVertex(LabelSet{0});
  QVertexId b = q1.AddVertex(LabelSet{1});
  q1.AddEdge(a, 0, b);
  Graph g1;
  g1.AddVertex(LabelSet{0});
  g1.AddVertex(LabelSet{1});
  g1.AddEdge(0, 0, 1);

  TurboFluxEngine engine;
  CountingSink s1;
  ASSERT_TRUE(engine.Init(q1, g1, s1, Deadline::Infinite()));
  EXPECT_EQ(s1.positive(), 1u);

  // Re-initialize the same engine with a different query and graph.
  QueryGraph q2;
  QVertexId x = q2.AddVertex(LabelSet{5});
  QVertexId y = q2.AddVertex(LabelSet{6});
  q2.AddEdge(x, 9, y);
  Graph g2;
  g2.AddVertex(LabelSet{5});
  g2.AddVertex(LabelSet{6});
  g2.AddVertex(LabelSet{6});

  CountingSink s2;
  ASSERT_TRUE(engine.Init(q2, g2, s2, Deadline::Infinite()));
  EXPECT_EQ(s2.positive(), 0u);
  CountingSink s3;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(0, 9, 2), s3,
                                 Deadline::Infinite()));
  EXPECT_EQ(s3.positive(), 1u);
  EXPECT_EQ(engine.dcg().Validate(), "");
  EXPECT_EQ(engine.dcg().Snapshot(), engine.RebuildDcgFromScratch().Snapshot());
}

TEST(Orientation, AllReversedTreeEdges) {
  // Query where every edge points *toward* what becomes the root:
  // u1 -> u0 and u2 -> u1. The tree from any root must traverse reversed
  // edges, and matching must still be exact.
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  QVertexId u2 = q.AddVertex(LabelSet{2});
  q.AddEdge(u1, 3, u0);
  q.AddEdge(u2, 4, u1);

  testutil::RandomCase c;
  c.g0.AddVertex(LabelSet{0});
  c.g0.AddVertex(LabelSet{1});
  c.g0.AddVertex(LabelSet{2});
  c.g0.AddVertex(LabelSet{1});
  c.query = q;
  c.stream = {UpdateOp::Insert(1, 3, 0), UpdateOp::Insert(2, 4, 1),
              UpdateOp::Insert(2, 4, 3), UpdateOp::Insert(3, 3, 0),
              UpdateOp::Delete(1, 3, 0)};

  TurboFluxEngine engine;
  testutil::OracleEngine oracle;
  CollectingSink got, want;
  ASSERT_TRUE(testutil::RunCase(engine, c, got, nullptr));
  ASSERT_TRUE(testutil::RunCase(oracle, c, want, nullptr));
  EXPECT_TRUE(testutil::SameMatches(got, want));
}

TEST(Orientation, MixedDirectionStar) {
  // Root with one out-child and one in-child of the same labels: the
  // inserted edge can match either orientation and must be disambiguated
  // by direction.
  QueryGraph q;
  QVertexId hub = q.AddVertex(LabelSet{0});
  QVertexId out_leaf = q.AddVertex(LabelSet{1});
  QVertexId in_leaf = q.AddVertex(LabelSet{1});
  q.AddEdge(hub, 7, out_leaf);
  q.AddEdge(in_leaf, 7, hub);

  testutil::RandomCase c;
  c.g0.AddVertex(LabelSet{0});
  c.g0.AddVertex(LabelSet{1});
  c.g0.AddVertex(LabelSet{1});
  c.query = q;
  c.stream = {UpdateOp::Insert(0, 7, 1), UpdateOp::Insert(2, 7, 0),
              UpdateOp::Insert(1, 7, 0), UpdateOp::Delete(2, 7, 0)};

  TurboFluxEngine engine;
  testutil::OracleEngine oracle;
  CollectingSink got, want;
  ASSERT_TRUE(testutil::RunCase(engine, c, got, nullptr));
  ASSERT_TRUE(testutil::RunCase(oracle, c, want, nullptr));
  EXPECT_TRUE(testutil::SameMatches(got, want));
}

TEST(Labels, MultiLabelVertexMatchesSubsets) {
  // Data vertex with labels {0, 1} matches query vertices labeled {0},
  // {1}, and {0, 1}, but not {2}.
  Graph g0;
  g0.AddVertex(LabelSet{0, 1});
  g0.AddVertex(LabelSet{0});
  for (Label want : {0u, 1u}) {
    QueryGraph q;
    QVertexId a = q.AddVertex(LabelSet{want});
    QVertexId b = q.AddVertex(LabelSet{0});
    q.AddEdge(a, 4, b);
    TurboFluxEngine engine;
    CountingSink init;
    ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
    CountingSink s;
    ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(0, 4, 1), s,
                                   Deadline::Infinite()));
    EXPECT_EQ(s.positive(), 1u) << "label " << want;
  }
  QueryGraph both;
  QVertexId a = both.AddVertex(LabelSet{0, 1});
  QVertexId b = both.AddVertex(LabelSet{0});
  both.AddEdge(a, 4, b);
  TurboFluxEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(both, g0, init, Deadline::Infinite()));
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(0, 4, 1), s,
                                 Deadline::Infinite()));
  // Only v0 carries both labels; v1 (plain {0}) cannot bind `a`.
  EXPECT_EQ(s.positive(), 1u);
}

TEST(Labels, ParallelEdgesDistinctLabels) {
  // Two data edges between the same vertices with different labels; the
  // query matches only one of them, and deleting the other must not
  // produce a negative match.
  QueryGraph q;
  QVertexId a = q.AddVertex(LabelSet{0});
  QVertexId b = q.AddVertex(LabelSet{1});
  q.AddEdge(a, 1, b);
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  g0.AddEdge(0, 1, 1);
  g0.AddEdge(0, 2, 1);  // parallel, different label

  TurboFluxEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  EXPECT_EQ(init.positive(), 1u);
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Delete(0, 2, 1), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.total(), 0u);
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Delete(0, 1, 1), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.negative(), 1u);
}

TEST(EngineNames, DistinguishSemantics) {
  TurboFluxOptions iso;
  iso.semantics = MatchSemantics::kIsomorphism;
  EXPECT_EQ(TurboFluxEngine().name(), "TurboFlux");
  EXPECT_EQ(TurboFluxEngine(iso).name(), "TurboFlux-iso");
  GraphflowOptions giso;
  giso.semantics = MatchSemantics::kIsomorphism;
  EXPECT_EQ(GraphflowEngine().name(), "Graphflow");
  EXPECT_EQ(GraphflowEngine(giso).name(), "Graphflow-iso");
}

TEST(Stress, HubHeavyInsertDeleteChurn) {
  // A hub gains and loses many spokes; the DCG must stay exactly in sync
  // through the churn.
  QueryGraph q;
  QVertexId hub = q.AddVertex(LabelSet{0});
  QVertexId spoke = q.AddVertex(LabelSet{1});
  QVertexId tail = q.AddVertex(LabelSet{2});
  q.AddEdge(hub, 0, spoke);
  q.AddEdge(spoke, 1, tail);

  Graph g0;
  g0.AddVertex(LabelSet{0});
  for (int i = 0; i < 30; ++i) g0.AddVertex(LabelSet{1});
  g0.AddVertex(LabelSet{2});

  TurboFluxEngine engine;
  CountingSink sink;
  ASSERT_TRUE(engine.Init(q, g0, sink, Deadline::Infinite()));
  for (int round = 0; round < 3; ++round) {
    for (VertexId s = 1; s <= 30; ++s) {
      ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(0, 0, s), sink,
                                     Deadline::Infinite()));
      ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(s, 1, 31), sink,
                                     Deadline::Infinite()));
    }
    for (VertexId s = 1; s <= 30; s += 2) {
      ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Delete(0, 0, s), sink,
                                     Deadline::Infinite()));
    }
    ASSERT_EQ(engine.dcg().Validate(), "") << "round " << round;
    ASSERT_EQ(engine.dcg().Snapshot(),
              engine.RebuildDcgFromScratch().Snapshot());
    for (VertexId s = 1; s <= 30; ++s) {
      ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Delete(0, 0, s), sink,
                                     Deadline::Infinite()));
      ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Delete(s, 1, 31), sink,
                                     Deadline::Infinite()));
    }
  }
  EXPECT_EQ(engine.dcg().Validate(), "");
  EXPECT_EQ(sink.positive(), sink.negative());  // everything churned away
}

TEST(EnumerateCurrentMatches, MatchesStaticCount) {
  testutil::RandomCaseConfig config;
  config.stream_ops = 20;
  for (uint64_t seed = 950; seed < 956; ++seed) {
    testutil::RandomCase c = testutil::MakeRandomCase(seed, config);
    TurboFluxEngine engine;
    CountingSink sink;
    ASSERT_TRUE(engine.Init(c.query, c.g0, sink, Deadline::Infinite()));
    for (const UpdateOp& op : c.stream) {
      ASSERT_TRUE(engine.ApplyUpdate(op, sink, Deadline::Infinite()));
    }
    CountingSink current;
    ASSERT_TRUE(engine.EnumerateCurrentMatches(current));
    // Oracle: full static enumeration over the engine's current graph.
    testutil::OracleEngine oracle;
    CollectingSink oracle_sink;
    ASSERT_TRUE(oracle.Init(c.query, engine.graph(), oracle_sink,
                            Deadline::Infinite()));
    EXPECT_EQ(current.positive(), oracle_sink.size()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace turboflux
