// Deterministic miniatures of the paper's evaluation *shapes* — the
// storage claims that do not depend on wall-clock timing:
//
//  * the DCG is far smaller than SJ-Tree's materialization on star-heavy
//    patterns (Figures 3, 6b, 7b);
//  * DCG size is bounded by |V(q)| * |E(g)| (Section 3.1);
//  * SJ-Tree's storage grows with partial-solution count even when the
//    complete-solution count stays zero (the Figure 1/2 pathology);
//  * deletions shrink the DCG back (no storage leak across churn).

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/baseline/sj_tree.h"
#include "turboflux/core/turboflux.h"

namespace turboflux {
namespace {

// Star-and-tail query: A -> B(x50 candidates) fan, plus A -> C -> D tail
// that never completes. SJ-Tree materializes the fan; the DCG stores one
// edge per data edge.
struct StarWorld {
  QueryGraph q;
  Graph g0;

  StarWorld() {
    QVertexId a = q.AddVertex(LabelSet{0});
    QVertexId b = q.AddVertex(LabelSet{1});
    QVertexId b2 = q.AddVertex(LabelSet{1});
    QVertexId c = q.AddVertex(LabelSet{2});
    QVertexId d = q.AddVertex(LabelSet{3});
    q.AddEdge(a, 0, b);
    q.AddEdge(a, 0, b2);
    q.AddEdge(a, 1, c);
    q.AddEdge(c, 2, d);

    VertexId hub = g0.AddVertex(LabelSet{0});
    for (int i = 0; i < 50; ++i) {
      VertexId leaf = g0.AddVertex(LabelSet{1});
      g0.AddEdge(hub, 0, leaf);
    }
    VertexId cc = g0.AddVertex(LabelSet{2});
    g0.AddEdge(hub, 1, cc);
    // No D vertex: the pattern never completes.
  }
};

TEST(ExperimentShapes, DcgFarSmallerThanSjTree) {
  StarWorld w;
  TurboFluxEngine tf;
  SjTreeEngine sj;
  CountingSink s1, s2;
  ASSERT_TRUE(tf.Init(w.q, w.g0, s1, Deadline::Infinite()));
  ASSERT_TRUE(sj.Init(w.q, w.g0, s2, Deadline::Infinite()));
  EXPECT_EQ(s1.positive(), 0u);
  EXPECT_EQ(s2.positive(), 0u);
  // SJ-Tree joins the two B-fans: ~50^2 partial solutions; the DCG holds
  // ~52 edges.
  EXPECT_GT(sj.IntermediateSize(), 20 * tf.IntermediateSize());
}

TEST(ExperimentShapes, DcgBoundedByVqTimesEg) {
  StarWorld w;
  TurboFluxEngine tf;
  CountingSink sink;
  ASSERT_TRUE(tf.Init(w.q, w.g0, sink, Deadline::Infinite()));
  // +|V(g)| covers the artificial start edges, which have no data edge.
  EXPECT_LE(tf.IntermediateSize(),
            w.q.VertexCount() * w.g0.EdgeCount() + w.g0.VertexCount());
}

TEST(ExperimentShapes, SjTreeGrowsWhileSolutionsStayZero) {
  // The Figure 1/2 pathology in miniature: every new fan edge adds a
  // batch of partial solutions to SJ-Tree although the complete-solution
  // count never leaves zero. (The world is built up edge by edge so the
  // growth per update is observable.)
  StarWorld w;
  Graph empty_fan = w.g0;
  for (VertexId leaf = 1; leaf <= 50; ++leaf) {
    empty_fan.RemoveEdge(0, 0, leaf);
  }
  SjTreeEngine sj;
  CountingSink sink;
  ASSERT_TRUE(sj.Init(w.q, empty_fan, sink, Deadline::Infinite()));
  size_t previous = sj.IntermediateSize();
  CountingSink s;
  for (VertexId leaf = 1; leaf <= 10; ++leaf) {
    ASSERT_TRUE(sj.ApplyUpdate(UpdateOp::Insert(0, 0, leaf), s,
                               Deadline::Infinite()));
    EXPECT_GT(sj.IntermediateSize(), previous) << "leaf " << leaf;
    previous = sj.IntermediateSize();
  }
  EXPECT_EQ(s.positive(), 0u);  // still no complete solution

  // Duplicate insert: generate-and-discard keeps storage flat.
  ASSERT_TRUE(sj.ApplyUpdate(UpdateOp::Insert(0, 0, 1), s,
                             Deadline::Infinite()));
  EXPECT_EQ(sj.IntermediateSize(), previous);
}

TEST(ExperimentShapes, DcgShrinksBackAfterChurn) {
  // Complete path world (the StarWorld query roots at its unmatchable D
  // vertex and keeps an empty DCG, so use a fixture with a live DCG).
  QueryGraph q;
  QVertexId a = q.AddVertex(LabelSet{0});
  QVertexId b = q.AddVertex(LabelSet{1});
  QVertexId c = q.AddVertex(LabelSet{2});
  q.AddEdge(a, 0, b);
  q.AddEdge(b, 1, c);
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  g0.AddVertex(LabelSet{2});
  g0.AddEdge(0, 0, 1);
  g0.AddEdge(1, 1, 2);

  TurboFluxEngine tf;
  CountingSink sink;
  ASSERT_TRUE(tf.Init(q, g0, sink, Deadline::Infinite()));
  size_t baseline = tf.IntermediateSize();
  ASSERT_GT(baseline, 0u);
  // Deleting an edge shrinks the DCG; re-inserting restores it exactly
  // (no storage leak across churn).
  CountingSink s;
  ASSERT_TRUE(tf.ApplyUpdate(UpdateOp::Delete(0, 0, 1), s,
                             Deadline::Infinite()));
  EXPECT_LT(tf.IntermediateSize(), baseline);
  ASSERT_TRUE(tf.ApplyUpdate(UpdateOp::Insert(0, 0, 1), s,
                             Deadline::Infinite()));
  EXPECT_EQ(tf.IntermediateSize(), baseline);
  EXPECT_EQ(tf.dcg().Snapshot(), tf.RebuildDcgFromScratch().Snapshot());
}

TEST(ExperimentShapes, IntermediateSizeScalesLinearlyInData) {
  // Double the fan, double the DCG — never square it (the
  // O(|V(q)|*|E(g)|) bound at work, vs SJ-Tree's exponent).
  std::vector<size_t> tf_sizes;
  for (int fan : {25, 50}) {
    QueryGraph q;
    QVertexId a = q.AddVertex(LabelSet{0});
    QVertexId b = q.AddVertex(LabelSet{1});
    QVertexId b2 = q.AddVertex(LabelSet{1});
    q.AddEdge(a, 0, b);
    q.AddEdge(a, 0, b2);
    Graph g0;
    VertexId hub = g0.AddVertex(LabelSet{0});
    for (int i = 0; i < fan; ++i) {
      VertexId leaf = g0.AddVertex(LabelSet{1});
      g0.AddEdge(hub, 0, leaf);
    }
    TurboFluxEngine tf;
    SjTreeEngine sj;
    CountingSink s1, s2;
    ASSERT_TRUE(tf.Init(q, g0, s1, Deadline::Infinite()));
    ASSERT_TRUE(sj.Init(q, g0, s2, Deadline::Infinite()));
    // DCG: two edges per fan edge (the fan matches both B query
    // vertices) plus the artificial start edge. SJ-Tree: fan^2-ish
    // tuples from joining the two fans.
    EXPECT_LE(tf.IntermediateSize(), 2 * static_cast<size_t>(fan) + 2);
    EXPECT_GE(sj.IntermediateSize(),
              static_cast<size_t>(fan) * static_cast<size_t>(fan));
    tf_sizes.push_back(tf.IntermediateSize());
  }
  // Linear growth: doubling |E(g)| at most doubles the DCG (+1 slack).
  ASSERT_EQ(tf_sizes.size(), 2u);
  EXPECT_LE(tf_sizes[1], 2 * tf_sizes[0] + 1);
}

}  // namespace
}  // namespace turboflux
