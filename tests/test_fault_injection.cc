#include "turboflux/harness/fault_injection.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/core/turboflux.h"

namespace turboflux {
namespace {

TEST(FaultInjector, DisabledPlanNeverFires) {
  FaultInjector inj(FaultPlan{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.ShouldFailOp());
    EXPECT_FALSE(inj.ShouldFailBatchEval());
  }
  EXPECT_FALSE(inj.fired());
}

TEST(FaultInjector, FiresExactlyOnceAtTheMarkedOp) {
  FaultPlan plan;
  plan.fail_at_op = 3;
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.ShouldFailOp());
  EXPECT_FALSE(inj.ShouldFailOp());
  EXPECT_TRUE(inj.ShouldFailOp());
  EXPECT_TRUE(inj.fired());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.ShouldFailOp());
}

TEST(FaultInjector, BatchTriggerIsIndependentAndThreadSafe) {
  FaultPlan plan;
  plan.batch_phase1_fail_after = 50;
  FaultInjector inj(plan);
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (inj.ShouldFailBatchEval()) ++fires;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fires.load(), 1);
  EXPECT_FALSE(inj.ShouldFailOp());  // op trigger disabled in this plan
}

TEST(CorruptSnapshot, FlipsOneBitInBounds) {
  std::string s = "abcd";
  EXPECT_TRUE(CorruptSnapshot(s, 2));
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[2], 'c' ^ 0x01);
  EXPECT_TRUE(CorruptSnapshot(s, 2));  // flipping again restores
  EXPECT_EQ(s, "abcd");
}

TEST(CorruptSnapshot, OutOfRangeIsANoOp) {
  std::string s = "ab";
  EXPECT_FALSE(CorruptSnapshot(s, 2));
  EXPECT_FALSE(CorruptSnapshot(s, 12345));
  EXPECT_EQ(s, "ab");
}

// An injected op fault kills the engine without expiring the caller's
// deadline — the signature recovery code uses to tell an injected crash
// from a genuine timeout.
TEST(FaultInjection, InjectedOpFaultKillsEngineButNotDeadline) {
  testutil::RandomCase c = testutil::MakeRandomCase(7, {});
  TurboFluxEngine engine;
  CollectingSink sink;
  ASSERT_TRUE(engine.Init(c.query, c.g0, sink, Deadline::Infinite()));

  FaultPlan plan;
  plan.fail_at_op = 2;
  FaultInjector inj(plan);
  engine.set_fault_injector(&inj);

  Deadline deadline = Deadline::AfterMillis(60'000);
  ASSERT_GE(c.stream.size(), 2u);
  EXPECT_TRUE(engine.ApplyUpdate(c.stream[0], sink, deadline));
  EXPECT_FALSE(engine.dead());
  EXPECT_FALSE(engine.ApplyUpdate(c.stream[1], sink, deadline));
  EXPECT_TRUE(engine.dead());
  EXPECT_TRUE(inj.fired());
  EXPECT_FALSE(deadline.ExpiredNow());

  // A dead engine refuses further work until restored.
  EXPECT_FALSE(engine.ApplyUpdate(c.stream[0], sink, deadline));
  Status st = engine.TryApplyUpdate(c.stream[0], sink, deadline);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(FaultInjection, QuarantineCatchesOutOfRangeOps) {
  testutil::RandomCase c = testutil::MakeRandomCase(11, {});
  TurboFluxEngine engine;
  CollectingSink sink;
  ASSERT_TRUE(engine.Init(c.query, c.g0, sink, Deadline::Infinite()));

  const VertexId bogus = static_cast<VertexId>(c.g0.VertexCount()) + 5;
  Status st = engine.TryApplyUpdate(UpdateOp::Insert(0, 0, bogus), sink,
                                    Deadline::Infinite());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(engine.dead());
  ASSERT_EQ(engine.quarantine().size(), 1u);
  EXPECT_EQ(engine.quarantine()[0].index, 0u);
  EXPECT_EQ(engine.quarantine()[0].op, UpdateOp::Insert(0, 0, bogus));
  EXPECT_EQ(engine.applied_ops(), 1u);  // consumed as a no-op

  // The engine keeps matching correctly after quarantining.
  for (const UpdateOp& op : c.stream) {
    Status s = engine.TryApplyUpdate(op, sink, Deadline::Infinite());
    EXPECT_FALSE(engine.dead()) << s.ToString();
  }
  EXPECT_EQ(engine.applied_ops(), 1u + c.stream.size());
  EXPECT_TRUE(engine.dcg().Validate().empty());
}

}  // namespace
}  // namespace turboflux
