// Property/fuzz suite for FlatPairTable (DESIGN.md §3.11): the open-
// addressing (from, to) → labels table is mirrored against a
// std::map<uint64_t, std::vector<EdgeLabel>> oracle. Covers the inline ↔
// overflow promotion path for parallel edges, tombstone accumulation and
// purge via same-capacity rehash, growth under load, and the shrink
// trigger that keeps delete-heavy streams from pinning peak memory. Runs
// under the sanitizer CI jobs for probe-arithmetic coverage.

#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "turboflux/common/flat_table.h"

namespace turboflux {
namespace {

bool LongTests() {
  const char* env = std::getenv("TFX_LONG_TESTS");
  return env != nullptr && env[0] == '1';
}

using Oracle = std::map<uint64_t, std::vector<EdgeLabel>>;

void ExpectSameState(const FlatPairTable& table, const Oracle& oracle,
                     const std::string& context) {
  ASSERT_EQ(table.PairCount(), oracle.size()) << context;
  for (const auto& [key, labels] : oracle) {
    FlatPairTable::LabelView view = table.Find(key);
    ASSERT_EQ(view.size(), labels.size()) << context << " key " << key;
    for (size_t i = 0; i < labels.size(); ++i) {
      EXPECT_EQ(view[i], labels[i])
          << context << " key " << key << " label index " << i;
    }
  }
  // ForEach must visit exactly the live pairs (order is unspecified).
  size_t visited = 0;
  table.ForEach([&](uint64_t key, FlatPairTable::LabelView view) {
    ++visited;
    auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end()) << context << " ForEach ghost key " << key;
    EXPECT_EQ(view.size(), it->second.size()) << context << " key " << key;
  });
  EXPECT_EQ(visited, oracle.size()) << context;
  EXPECT_EQ(table.CheckConsistency(), "") << context;
}

TEST(FlatPairTable, KeyPackingRoundTrips) {
  const uint64_t key = FlatPairTable::MakeKey(0x12345u, 0xabcdeu);
  EXPECT_EQ(FlatPairTable::KeyFrom(key), 0x12345u);
  EXPECT_EQ(FlatPairTable::KeyTo(key), 0xabcdeu);
  // Asymmetric: (a, b) and (b, a) are distinct pairs.
  EXPECT_NE(key, FlatPairTable::MakeKey(0xabcdeu, 0x12345u));
}

TEST(FlatPairTable, EmptyTableFindsNothing) {
  FlatPairTable table;
  EXPECT_TRUE(table.Find(FlatPairTable::MakeKey(1, 2)).empty());
  EXPECT_FALSE(table.Contains(FlatPairTable::MakeKey(1, 2), 0));
  EXPECT_FALSE(table.Remove(FlatPairTable::MakeKey(1, 2), 0));
  EXPECT_EQ(table.PairCount(), 0u);
  EXPECT_EQ(table.CheckConsistency(), "");
}

TEST(FlatPairTable, SingleLabelStaysInline) {
  FlatPairTable table;
  const uint64_t key = FlatPairTable::MakeKey(3, 9);
  EXPECT_TRUE(table.Add(key, 7));
  EXPECT_FALSE(table.Add(key, 7));  // duplicate (key, label) rejected
  FlatPairTable::LabelView view = table.Find(key);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 7);
  EXPECT_TRUE(table.Contains(key, 7));
  EXPECT_FALSE(table.Contains(key, 8));
  EXPECT_EQ(table.CheckConsistency(), "");
}

TEST(FlatPairTable, ParallelEdgeMultiLabelRoundTrip) {
  // The inline → overflow → inline promotion cycle: one pair accumulates
  // parallel-edge labels, sheds them order-preservingly, and demotes back
  // to the inline representation at exactly one remaining label.
  FlatPairTable table;
  const uint64_t key = FlatPairTable::MakeKey(5, 6);
  for (EdgeLabel l : {4, 1, 9, 2}) EXPECT_TRUE(table.Add(key, l));
  FlatPairTable::LabelView view = table.Find(key);
  ASSERT_EQ(view.size(), 4u);
  // Insertion order preserved through the overflow promotion.
  EXPECT_EQ(view[0], 4);
  EXPECT_EQ(view[1], 1);
  EXPECT_EQ(view[2], 9);
  EXPECT_EQ(view[3], 2);

  // Order-preserving erase from the middle.
  EXPECT_TRUE(table.Remove(key, 1));
  view = table.Find(key);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 4);
  EXPECT_EQ(view[1], 9);
  EXPECT_EQ(view[2], 2);

  // Down to one label: must demote to inline and free the overflow slot.
  EXPECT_TRUE(table.Remove(key, 4));
  EXPECT_TRUE(table.Remove(key, 2));
  view = table.Find(key);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 9);
  EXPECT_EQ(table.CheckConsistency(), "");

  // Removing the last label leaves a tombstone, not a live empty list.
  EXPECT_TRUE(table.Remove(key, 9));
  EXPECT_TRUE(table.Find(key).empty());
  EXPECT_EQ(table.PairCount(), 0u);
  EXPECT_EQ(table.CheckConsistency(), "");
}

TEST(FlatPairTable, OverflowSlotsAreRecycled) {
  FlatPairTable table;
  // Cycle many pairs through the overflow representation; the free list
  // must recycle slots instead of growing the side table monotonically.
  for (int round = 0; round < 50; ++round) {
    const uint64_t key = FlatPairTable::MakeKey(1, static_cast<VertexId>(round));
    EXPECT_TRUE(table.Add(key, 1));
    EXPECT_TRUE(table.Add(key, 2));  // promotes to overflow
    EXPECT_TRUE(table.Remove(key, 1));  // demotes, releases the slot
  }
  const size_t bytes_after_churn = table.MemoryBytes();
  for (int round = 0; round < 50; ++round) {
    const uint64_t key = FlatPairTable::MakeKey(2, static_cast<VertexId>(round));
    EXPECT_TRUE(table.Add(key, 1));
    EXPECT_TRUE(table.Add(key, 2));
    EXPECT_TRUE(table.Remove(key, 1));
  }
  // Second churn round reuses recycled slots: memory may grow for the new
  // keys but not proportionally to another 50 overflow lists.
  EXPECT_LE(table.MemoryBytes(), bytes_after_churn * 4);
  EXPECT_EQ(table.CheckConsistency(), "");
}

TEST(FlatPairTable, GrowthRehashesUnderLoad) {
  FlatPairTable table;
  Oracle oracle;
  for (uint32_t i = 0; i < 2000; ++i) {
    const uint64_t key = FlatPairTable::MakeKey(i / 50, i % 50);
    if (table.Add(key, static_cast<EdgeLabel>(i % 7))) {
      oracle[key].push_back(static_cast<EdgeLabel>(i % 7));
    }
  }
  EXPECT_GT(table.RehashCount(), 3u) << "table never grew under load";
  EXPECT_GE(table.BucketCapacity() * 7, table.PairCount() * 8)
      << "occupancy above the 7/8 growth threshold";
  ExpectSameState(table, oracle, "after growth");
}

TEST(FlatPairTable, TombstoneSaturationPurgesAtSameCapacity) {
  FlatPairTable table;
  // Insert/delete churn at a stable live size: tombstones accumulate until
  // the occupancy check fires a same-capacity rehash that purges them.
  for (uint32_t i = 0; i < 8; ++i) {
    table.Add(FlatPairTable::MakeKey(0, i), 1);
  }
  bool saw_purge = false;
  for (uint32_t round = 0; round < 400; ++round) {
    const uint64_t key = FlatPairTable::MakeKey(1, round);
    table.Add(key, 1);
    // A purge (rehash during some Add) leaves zero tombstones; sample
    // before the Remove below re-creates one.
    saw_purge = saw_purge || (round > 0 && table.TombstoneCount() == 0);
    table.Remove(key, 1);
    // Occupancy (live + tombstones) stays under the 7/8 growth threshold
    // between ops — tombstones are purged, not accumulated forever.
    ASSERT_LE((table.PairCount() + table.TombstoneCount()) * 8,
              table.BucketCapacity() * 7 + 8);
  }
  EXPECT_TRUE(saw_purge) << "tombstones were never purged";
  EXPECT_GT(table.RehashCount(), 0u);
  // Capacity stabilizes at a small multiple of the live size (the grow
  // policy doubles until live*4 < capacity, then purges in place), so a
  // pure churn workload cannot balloon it.
  EXPECT_LE(table.BucketCapacity(), (table.PairCount() + 1) * 8)
      << "tombstone churn must not balloon capacity";
  EXPECT_EQ(table.CheckConsistency(), "");
}

TEST(FlatPairTable, ShrinksAfterDeleteHeavyStream) {
  FlatPairTable table;
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < 4096; ++i) {
    const uint64_t key = FlatPairTable::MakeKey(i, i + 1);
    table.Add(key, 3);
    keys.push_back(key);
  }
  const size_t peak_capacity = table.BucketCapacity();
  const size_t peak_bytes = table.MemoryBytes();
  // Delete 99% of the keys — the shrink trigger must walk capacity back
  // down instead of pinning the high-water mark.
  for (size_t i = 0; i < keys.size() - 40; ++i) table.Remove(keys[i], 3);
  EXPECT_LT(table.BucketCapacity(), peak_capacity / 8);
  EXPECT_LT(table.MemoryBytes(), peak_bytes / 8);
  // Survivors still resolve.
  for (size_t i = keys.size() - 40; i < keys.size(); ++i) {
    EXPECT_TRUE(table.Contains(keys[i], 3));
  }
  EXPECT_EQ(table.CheckConsistency(), "");
}

TEST(FlatPairTable, ClearReleasesEverything) {
  FlatPairTable table;
  for (uint32_t i = 0; i < 100; ++i) {
    table.Add(FlatPairTable::MakeKey(i, i), 1);
    table.Add(FlatPairTable::MakeKey(i, i), 2);
  }
  table.Clear();
  EXPECT_EQ(table.PairCount(), 0u);
  EXPECT_EQ(table.TombstoneCount(), 0u);
  EXPECT_EQ(table.BucketCapacity(), 0u);
  EXPECT_TRUE(table.Find(FlatPairTable::MakeKey(3, 3)).empty());
  EXPECT_EQ(table.CheckConsistency(), "");
}

// Fuzz driver: random (key, label) op tape with a skewed key distribution
// (small vertex universe → frequent parallel-edge collisions) applied to
// the table and a std::map oracle in lockstep.
void FuzzSeed(uint64_t seed, size_t ops) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  FlatPairTable table;
  Oracle oracle;

  for (size_t step = 0; step < ops; ++step) {
    // Delete-heavy tail so the shrink path and tombstone purge both fire.
    const int phase = static_cast<int>(3 * step / ops);
    const int add_cut = phase == 0 ? 75 : (phase == 1 ? 50 : 20);
    const VertexId universe = phase == 0 ? 40 : 60;

    const VertexId from = static_cast<VertexId>(rng() % universe);
    const VertexId to = static_cast<VertexId>(rng() % universe);
    const uint64_t key = FlatPairTable::MakeKey(from, to);
    const EdgeLabel label = static_cast<EdgeLabel>(rng() % 5);

    if (static_cast<int>(rng() % 100) < add_cut) {
      const bool added = table.Add(key, label);
      std::vector<EdgeLabel>& labels = oracle[key];
      bool present = false;
      for (EdgeLabel l : labels) present = present || l == label;
      ASSERT_EQ(added, !present) << "step " << step;
      if (added) labels.push_back(label);
      if (labels.empty()) oracle.erase(key);
    } else {
      const bool removed = table.Remove(key, label);
      auto it = oracle.find(key);
      bool oracle_removed = false;
      if (it != oracle.end()) {
        std::vector<EdgeLabel>& labels = it->second;
        for (size_t i = 0; i < labels.size(); ++i) {
          if (labels[i] == label) {
            labels.erase(labels.begin() + static_cast<ptrdiff_t>(i));
            oracle_removed = true;
            break;
          }
        }
        if (labels.empty()) oracle.erase(it);
      }
      ASSERT_EQ(removed, oracle_removed) << "step " << step;
    }

    if (step % 64 == 0 || step + 1 == ops) {
      ExpectSameState(table, oracle, "step " + std::to_string(step));
    }
  }
}

TEST(FlatPairTableFuzz, RandomOpTapesMatchMapOracle) {
  const uint64_t seeds = LongTests() ? 50 : 12;
  for (uint64_t seed = 0; seed < seeds; ++seed) FuzzSeed(seed, 3000);
}

TEST(FlatPairTableFuzz, LargeTapeCrossesRehashAndShrink) {
  FuzzSeed(424242, LongTests() ? 60000 : 15000);
}

}  // namespace
}  // namespace turboflux
