#include "turboflux/graph/graph.h"

#include "gtest/gtest.h"

namespace turboflux {
namespace {

Graph ThreeVertexGraph() {
  Graph g;
  g.AddVertex(LabelSet{0});
  g.AddVertex(LabelSet{1});
  g.AddVertex(LabelSet{0, 2});
  return g;
}

TEST(Graph, AddVertexAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddVertex(LabelSet{0}), 0u);
  EXPECT_EQ(g.AddVertex(LabelSet{1}), 1u);
  EXPECT_EQ(g.VertexCount(), 2u);
  EXPECT_EQ(g.labels(1), LabelSet{1});
}

TEST(Graph, AddEdgeAndProbe) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(0, 5, 1));
  EXPECT_TRUE(g.HasEdge(0, 5, 1));
  EXPECT_FALSE(g.HasEdge(1, 5, 0));  // directed
  EXPECT_FALSE(g.HasEdge(0, 6, 1));  // label matters
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(Graph, DuplicateEdgeRejected) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(0, 5, 1));
  EXPECT_FALSE(g.AddEdge(0, 5, 1));
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(Graph, ParallelEdgesWithDistinctLabels) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(0, 1, 1));
  EXPECT_TRUE(g.AddEdge(0, 2, 1));
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_EQ(g.EdgeLabelsBetween(0, 1).size(), 2u);
}

TEST(Graph, InvalidVertexRejected) {
  Graph g = ThreeVertexGraph();
  EXPECT_FALSE(g.AddEdge(0, 1, 99));
  EXPECT_FALSE(g.AddEdge(99, 1, 0));
  EXPECT_FALSE(g.HasEdge(99, 1, 0));
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(Graph, SelfLoop) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(1, 3, 1));
  EXPECT_TRUE(g.HasEdge(1, 3, 1));
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(Graph, RemoveEdge) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 5, 1);
  g.AddEdge(0, 5, 2);
  EXPECT_TRUE(g.RemoveEdge(0, 5, 1));
  EXPECT_FALSE(g.HasEdge(0, 5, 1));
  EXPECT_TRUE(g.HasEdge(0, 5, 2));
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_FALSE(g.RemoveEdge(0, 5, 1));  // already gone
}

TEST(Graph, RemoveNonexistentEdgeIsNoop) {
  Graph g = ThreeVertexGraph();
  EXPECT_FALSE(g.RemoveEdge(0, 5, 1));
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(Graph, AdjacencyMirrors) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 5, 1);
  g.AddEdge(2, 5, 1);
  ASSERT_EQ(g.OutEdges(0).size(), 1u);
  EXPECT_EQ(g.OutEdges(0)[0].other, 1u);
  EXPECT_EQ(g.OutEdges(0)[0].label, 5u);
  ASSERT_EQ(g.InEdges(1).size(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(Graph, RemovePreservesOtherAdjacency) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 1);
  g.AddEdge(0, 1, 2);
  g.RemoveEdge(0, 1, 1);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_TRUE(g.HasEdge(0, 2, 1));
  EXPECT_TRUE(g.HasEdge(0, 1, 2));
}

TEST(Graph, ReinsertAfterRemove) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  g.RemoveEdge(0, 1, 1);
  EXPECT_TRUE(g.AddEdge(0, 1, 1));
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
}

TEST(Graph, CopyIsIndependent) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  Graph copy = g;
  copy.RemoveEdge(0, 1, 1);
  copy.AddEdge(1, 2, 2);
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
  EXPECT_FALSE(g.HasEdge(1, 2, 2));
}

TEST(Graph, EdgeLabelsBetweenEmptyForNoPair) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.EdgeLabelsBetween(0, 1).empty());
}

}  // namespace
}  // namespace turboflux
