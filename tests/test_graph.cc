#include "turboflux/graph/graph.h"

#include <string>

#include "gtest/gtest.h"

namespace turboflux {
namespace {

Graph ThreeVertexGraph() {
  Graph g;
  g.AddVertex(LabelSet{0});
  g.AddVertex(LabelSet{1});
  g.AddVertex(LabelSet{0, 2});
  return g;
}

TEST(Graph, AddVertexAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddVertex(LabelSet{0}), 0u);
  EXPECT_EQ(g.AddVertex(LabelSet{1}), 1u);
  EXPECT_EQ(g.VertexCount(), 2u);
  EXPECT_EQ(g.labels(1), LabelSet{1});
}

TEST(Graph, AddEdgeAndProbe) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(0, 5, 1));
  EXPECT_TRUE(g.HasEdge(0, 5, 1));
  EXPECT_FALSE(g.HasEdge(1, 5, 0));  // directed
  EXPECT_FALSE(g.HasEdge(0, 6, 1));  // label matters
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(Graph, DuplicateEdgeRejected) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(0, 5, 1));
  EXPECT_FALSE(g.AddEdge(0, 5, 1));
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(Graph, ParallelEdgesWithDistinctLabels) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(0, 1, 1));
  EXPECT_TRUE(g.AddEdge(0, 2, 1));
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_EQ(g.EdgeLabelsBetween(0, 1).size(), 2u);
}

TEST(Graph, InvalidVertexRejected) {
  Graph g = ThreeVertexGraph();
  EXPECT_FALSE(g.AddEdge(0, 1, 99));
  EXPECT_FALSE(g.AddEdge(99, 1, 0));
  EXPECT_FALSE(g.HasEdge(99, 1, 0));
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(Graph, SelfLoop) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.AddEdge(1, 3, 1));
  EXPECT_TRUE(g.HasEdge(1, 3, 1));
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(Graph, RemoveEdge) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 5, 1);
  g.AddEdge(0, 5, 2);
  EXPECT_TRUE(g.RemoveEdge(0, 5, 1));
  EXPECT_FALSE(g.HasEdge(0, 5, 1));
  EXPECT_TRUE(g.HasEdge(0, 5, 2));
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_FALSE(g.RemoveEdge(0, 5, 1));  // already gone
}

TEST(Graph, RemoveNonexistentEdgeIsNoop) {
  Graph g = ThreeVertexGraph();
  EXPECT_FALSE(g.RemoveEdge(0, 5, 1));
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(Graph, AdjacencyMirrors) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 5, 1);
  g.AddEdge(2, 5, 1);
  ASSERT_EQ(g.OutEdges(0).size(), 1u);
  EXPECT_EQ(g.OutEdges(0)[0].other, 1u);
  EXPECT_EQ(g.OutEdges(0)[0].label, 5u);
  ASSERT_EQ(g.InEdges(1).size(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(Graph, RemovePreservesOtherAdjacency) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 1);
  g.AddEdge(0, 1, 2);
  g.RemoveEdge(0, 1, 1);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_TRUE(g.HasEdge(0, 2, 1));
  EXPECT_TRUE(g.HasEdge(0, 1, 2));
}

TEST(Graph, ReinsertAfterRemove) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  g.RemoveEdge(0, 1, 1);
  EXPECT_TRUE(g.AddEdge(0, 1, 1));
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
}

TEST(Graph, CopyIsIndependent) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  Graph copy = g;
  copy.RemoveEdge(0, 1, 1);
  copy.AddEdge(1, 2, 2);
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
  EXPECT_FALSE(g.HasEdge(1, 2, 2));
}

TEST(Graph, EdgeLabelsBetweenEmptyForNoPair) {
  Graph g = ThreeVertexGraph();
  EXPECT_TRUE(g.EdgeLabelsBetween(0, 1).empty());
}

TEST(Graph, DanglingDeleteLeavesGraphConsistent) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  // Absent label, absent pair, reversed direction, self-loop: all no-ops.
  EXPECT_FALSE(g.RemoveEdge(0, 2, 1));
  EXPECT_FALSE(g.RemoveEdge(1, 1, 2));
  EXPECT_FALSE(g.RemoveEdge(1, 1, 0));
  EXPECT_FALSE(g.RemoveEdge(0, 1, 0));
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_TRUE(g.CheckConsistency().empty());
  // Deleting the real edge still works afterwards.
  EXPECT_TRUE(g.RemoveEdge(0, 1, 1));
  EXPECT_TRUE(g.CheckConsistency().empty());
}

TEST(Graph, SerializeRoundTripPreservesAdjacencyOrder) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 2);
  g.AddEdge(1, 3, 2);
  g.AddEdge(2, 1, 0);
  // Force swap-removal so adjacency order diverges from insertion order —
  // the part of the state a naive re-insert-based encoding would lose.
  g.RemoveEdge(0, 1, 1);
  g.AddEdge(0, 1, 1);

  std::string bytes;
  g.Serialize(bytes);
  bin::Reader r{std::string_view(bytes)};
  Graph back;
  Status st = back.Deserialize(r);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(back.CheckConsistency().empty());
  ASSERT_EQ(back.VertexCount(), g.VertexCount());
  ASSERT_EQ(back.EdgeCount(), g.EdgeCount());
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    EXPECT_EQ(back.labels(v).labels(), g.labels(v).labels()) << "vertex " << v;
    EXPECT_EQ(back.OutEdges(v), g.OutEdges(v)) << "vertex " << v;
    EXPECT_EQ(back.InEdges(v), g.InEdges(v)) << "vertex " << v;
  }
  // Same bytes again: the encoding is deterministic.
  std::string bytes2;
  back.Serialize(bytes2);
  EXPECT_EQ(bytes2, bytes);
}

TEST(Graph, DeserializeRejectsCorruptBytes) {
  Graph g = ThreeVertexGraph();
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 2);
  std::string bytes;
  g.Serialize(bytes);
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string bad = bytes;
    bad[off] = static_cast<char>(bad[off] ^ 0x20);
    bin::Reader r{std::string_view(bad)};
    Graph back;
    Status st = back.Deserialize(r);
    if (!st.ok()) {
      // Failure must leave the graph empty, not half-built.
      EXPECT_EQ(back.VertexCount(), 0u) << "offset " << off;
    } else {
      // Graph::Deserialize has no checksum of its own (the checkpoint
      // section CRC provides that); a flip that happens to decode must
      // still yield a self-consistent graph.
      EXPECT_TRUE(back.CheckConsistency().empty()) << "offset " << off;
    }
  }
}

}  // namespace
}  // namespace turboflux
