#include "turboflux/graph/graph_io.h"

#include <sstream>

#include "gtest/gtest.h"

namespace turboflux {
namespace {

TEST(GraphIo, RoundTripGraph) {
  Graph g;
  g.AddVertex(LabelSet{0, 3});
  g.AddVertex(LabelSet{});
  g.AddVertex(LabelSet{1});
  g.AddEdge(0, 2, 1);
  g.AddEdge(1, 0, 2);
  g.AddEdge(2, 2, 2);

  std::stringstream buf;
  WriteGraph(g, buf);
  std::optional<Graph> back = ReadGraph(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->VertexCount(), 3u);
  EXPECT_EQ(back->EdgeCount(), 3u);
  EXPECT_EQ(back->labels(0), LabelSet({0, 3}));
  EXPECT_TRUE(back->labels(1).empty());
  EXPECT_TRUE(back->HasEdge(0, 2, 1));
  EXPECT_TRUE(back->HasEdge(1, 0, 2));
  EXPECT_TRUE(back->HasEdge(2, 2, 2));
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buf("# a comment\n\nv 0 1\nv 1 2\n\ne 0 4 1\n");
  std::optional<Graph> g = ReadGraph(buf);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->VertexCount(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 4, 1));
}

TEST(GraphIo, MalformedGraphRejected) {
  std::stringstream bad_kind("x 0\n");
  EXPECT_FALSE(ReadGraph(bad_kind).has_value());
  std::stringstream sparse_ids("v 5\n");
  EXPECT_FALSE(ReadGraph(sparse_ids).has_value());
  std::stringstream bad_edge("v 0\ne 0 1\n");
  EXPECT_FALSE(ReadGraph(bad_edge).has_value());
  std::stringstream dangling("v 0\ne 0 1 7\n");
  EXPECT_FALSE(ReadGraph(dangling).has_value());
}

TEST(GraphIo, RoundTripStream) {
  UpdateStream s = {UpdateOp::Insert(0, 1, 2), UpdateOp::Delete(2, 3, 0)};
  std::stringstream buf;
  WriteStream(s, buf);
  std::optional<UpdateStream> back = ReadStream(buf);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], s[0]);
  EXPECT_EQ((*back)[1], s[1]);
}

TEST(GraphIo, MalformedStreamRejected) {
  std::stringstream bad("? 0 1 2\n");
  EXPECT_FALSE(ReadStream(bad).has_value());
  std::stringstream truncated("+ 0 1\n");
  EXPECT_FALSE(ReadStream(truncated).has_value());
}

TEST(GraphIo, FileRoundTrip) {
  Graph g;
  g.AddVertex(LabelSet{1});
  g.AddVertex(LabelSet{2});
  g.AddEdge(0, 9, 1);
  std::string path = ::testing::TempDir() + "/graph_io_test.txt";
  ASSERT_TRUE(WriteGraphToFile(g, path));
  std::optional<Graph> back = ReadGraphFromFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->HasEdge(0, 9, 1));
  EXPECT_FALSE(ReadGraphFromFile("/nonexistent/nowhere.txt").has_value());
}

// --- Status API: strict mode pinpoints the offending line. ---

TEST(GraphIo, StrictErrorsCarryLineNumbers) {
  {
    std::stringstream in("v 0 1\nv 1 2\nx 0 0 1\n");
    Graph g;
    Status st = ReadGraph(in, &g);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(st.line(), 3u);
  }
  {
    // Comments and blanks still count toward the line number.
    std::stringstream in("# header\n\nv 0\ne 0 not_a_number 0\n");
    Graph g;
    Status st = ReadGraph(in, &g);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.line(), 4u);
  }
  {
    std::stringstream in("+ 0 1 2\n- 0 1\n");
    UpdateStream s;
    Status st = ReadStream(in, &s);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.line(), 2u);
  }
  {
    // Numeric overflow of the id type is out-of-range, not a silent wrap.
    std::stringstream in("v 0\nv 1\ne 0 99999999999999999999 1\n");
    Graph g;
    Status st = ReadGraph(in, &g);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.line(), 3u);
  }
}

TEST(GraphIo, LenientModeSkipsAndCounts) {
  std::stringstream in(
      "v 0 1\n"
      "v 1 2\n"
      "bogus line\n"       // skipped
      "e 0 4 1\n"
      "e 0 4\n"            // skipped (missing field)
      "e 1 5 0\n"
      "e 0 4 1\n");        // duplicate: accepted no-op, counted
  IoOptions options;
  options.lenient = true;
  IoStats stats;
  Graph g;
  Status st = ReadGraph(in, &g, options, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.VertexCount(), 2u);
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_EQ(stats.lines, 7u);
  EXPECT_EQ(stats.records, 4u);  // 2 vertices + 2 new edges
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.first_bad_line, 3u);
}

TEST(GraphIo, LenientStreamSkipsMalformedOps) {
  std::stringstream in("+ 0 1 2\n? 9 9 9\n- 0 1 2\n+ 1 junk 2\n");
  IoOptions options;
  options.lenient = true;
  IoStats stats;
  UpdateStream s;
  Status st = ReadStream(in, &s, options, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], UpdateOp::Insert(0, 1, 2));
  EXPECT_EQ(s[1], UpdateOp::Delete(0, 1, 2));
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.first_bad_line, 2u);
}

TEST(GraphIo, LimitsRejectOutOfRangeIds) {
  {
    IoOptions options;
    options.max_vertices = 2;
    std::stringstream in("v 0\nv 1\nv 2\n");
    Graph g;
    Status st = ReadGraph(in, &g, options);
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
    EXPECT_EQ(st.line(), 3u);
  }
  {
    IoOptions options;
    options.vertex_label_limit = 4;
    std::stringstream in("v 0 3\nv 1 4\n");
    Graph g;
    EXPECT_EQ(ReadGraph(in, &g, options).code(), StatusCode::kOutOfRange);
  }
  {
    IoOptions options;
    options.edge_label_limit = 2;
    std::stringstream in("v 0\nv 1\ne 0 2 1\n");
    Graph g;
    EXPECT_EQ(ReadGraph(in, &g, options).code(), StatusCode::kOutOfRange);
  }
  {
    // Stream endpoint bound: reject ops referencing unseen vertices.
    IoOptions options;
    options.max_vertices = 3;
    std::stringstream in("+ 0 1 2\n+ 0 1 3\n");
    UpdateStream s;
    Status st = ReadStream(in, &s, options);
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
    EXPECT_EQ(st.line(), 2u);
  }
}

TEST(GraphIo, StrictStatusReaderStillCountsDuplicates) {
  std::stringstream in("v 0\nv 1\ne 0 1 1\ne 0 1 1\n");
  IoStats stats;
  Graph g;
  Status st = ReadGraph(in, &g, {}, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST(GraphIo, FileReaderReportsIoError) {
  Graph g;
  EXPECT_EQ(ReadGraphFromFile("/nonexistent/nowhere.txt", &g).code(),
            StatusCode::kIoError);
  UpdateStream s;
  EXPECT_EQ(ReadStreamFromFile("/nonexistent/nowhere.txt", &s).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace turboflux
