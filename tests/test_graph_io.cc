#include "turboflux/graph/graph_io.h"

#include <sstream>

#include "gtest/gtest.h"

namespace turboflux {
namespace {

TEST(GraphIo, RoundTripGraph) {
  Graph g;
  g.AddVertex(LabelSet{0, 3});
  g.AddVertex(LabelSet{});
  g.AddVertex(LabelSet{1});
  g.AddEdge(0, 2, 1);
  g.AddEdge(1, 0, 2);
  g.AddEdge(2, 2, 2);

  std::stringstream buf;
  WriteGraph(g, buf);
  std::optional<Graph> back = ReadGraph(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->VertexCount(), 3u);
  EXPECT_EQ(back->EdgeCount(), 3u);
  EXPECT_EQ(back->labels(0), LabelSet({0, 3}));
  EXPECT_TRUE(back->labels(1).empty());
  EXPECT_TRUE(back->HasEdge(0, 2, 1));
  EXPECT_TRUE(back->HasEdge(1, 0, 2));
  EXPECT_TRUE(back->HasEdge(2, 2, 2));
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buf("# a comment\n\nv 0 1\nv 1 2\n\ne 0 4 1\n");
  std::optional<Graph> g = ReadGraph(buf);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->VertexCount(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 4, 1));
}

TEST(GraphIo, MalformedGraphRejected) {
  std::stringstream bad_kind("x 0\n");
  EXPECT_FALSE(ReadGraph(bad_kind).has_value());
  std::stringstream sparse_ids("v 5\n");
  EXPECT_FALSE(ReadGraph(sparse_ids).has_value());
  std::stringstream bad_edge("v 0\ne 0 1\n");
  EXPECT_FALSE(ReadGraph(bad_edge).has_value());
  std::stringstream dangling("v 0\ne 0 1 7\n");
  EXPECT_FALSE(ReadGraph(dangling).has_value());
}

TEST(GraphIo, RoundTripStream) {
  UpdateStream s = {UpdateOp::Insert(0, 1, 2), UpdateOp::Delete(2, 3, 0)};
  std::stringstream buf;
  WriteStream(s, buf);
  std::optional<UpdateStream> back = ReadStream(buf);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], s[0]);
  EXPECT_EQ((*back)[1], s[1]);
}

TEST(GraphIo, MalformedStreamRejected) {
  std::stringstream bad("? 0 1 2\n");
  EXPECT_FALSE(ReadStream(bad).has_value());
  std::stringstream truncated("+ 0 1\n");
  EXPECT_FALSE(ReadStream(truncated).has_value());
}

TEST(GraphIo, FileRoundTrip) {
  Graph g;
  g.AddVertex(LabelSet{1});
  g.AddVertex(LabelSet{2});
  g.AddEdge(0, 9, 1);
  std::string path = ::testing::TempDir() + "/graph_io_test.txt";
  ASSERT_TRUE(WriteGraphToFile(g, path));
  std::optional<Graph> back = ReadGraphFromFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->HasEdge(0, 9, 1));
  EXPECT_FALSE(ReadGraphFromFile("/nonexistent/nowhere.txt").has_value());
}

}  // namespace
}  // namespace turboflux
