#include "turboflux/baseline/graphflow.h"

#include "gtest/gtest.h"
#include "testutil.h"

namespace turboflux {
namespace {

QueryGraph TriangleQuery() {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  QVertexId u2 = q.AddVertex(LabelSet{2});
  q.AddEdge(u0, 0, u1);
  q.AddEdge(u1, 0, u2);
  q.AddEdge(u2, 0, u0);
  return q;
}

TEST(Graphflow, StatelessIntermediateSize) {
  GraphflowEngine engine;
  EXPECT_EQ(engine.IntermediateSize(), 0u);
}

TEST(Graphflow, TriangleDelta) {
  QueryGraph q = TriangleQuery();
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  g0.AddVertex(LabelSet{2});
  g0.AddEdge(0, 0, 1);
  g0.AddEdge(1, 0, 2);
  GraphflowEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  EXPECT_EQ(init.positive(), 0u);
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(2, 0, 0), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.positive(), 1u);
}

TEST(Graphflow, DeletionProducesNegativeMatches) {
  QueryGraph q = TriangleQuery();
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  g0.AddVertex(LabelSet{2});
  g0.AddEdge(0, 0, 1);
  g0.AddEdge(1, 0, 2);
  g0.AddEdge(2, 0, 0);
  GraphflowEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  EXPECT_EQ(init.positive(), 1u);
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Delete(1, 0, 2), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.negative(), 1u);
  EXPECT_FALSE(engine.graph().HasEdge(1, 0, 2));
}

TEST(Graphflow, IrrelevantUpdateCheap) {
  QueryGraph q = TriangleQuery();
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  GraphflowEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(0, 9, 1), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.total(), 0u);
}

TEST(Graphflow, HomomorphicSquareCountsAllBindings) {
  // Square query u0->u1->u2->u3->u0 with all labels equal; data square
  // v0->v1->v2->v3->v0. Under homomorphism the inserted closing edge must
  // produce exactly the oracle's delta (cross-checked in property tests);
  // here: the final edge yields 4 rotations? No — each homomorphism must
  // map edges onto directed data edges; with unique vertex labels there
  // is exactly one. Use wildcard labels to allow rotations.
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{});
  QVertexId u1 = q.AddVertex(LabelSet{});
  QVertexId u2 = q.AddVertex(LabelSet{});
  QVertexId u3 = q.AddVertex(LabelSet{});
  q.AddEdge(u0, 0, u1);
  q.AddEdge(u1, 0, u2);
  q.AddEdge(u2, 0, u3);
  q.AddEdge(u3, 0, u0);

  Graph g0;
  for (int i = 0; i < 4; ++i) g0.AddVertex(LabelSet{});
  g0.AddEdge(0, 0, 1);
  g0.AddEdge(1, 0, 2);
  g0.AddEdge(2, 0, 3);
  GraphflowEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  EXPECT_EQ(init.positive(), 0u);
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(3, 0, 0), s,
                                 Deadline::Infinite()));
  // Four rotations of the square (u0 can map to any corner).
  EXPECT_EQ(s.positive(), 4u);
}

TEST(Graphflow, TimeoutReturnsFalse) {
  QueryGraph q = TriangleQuery();
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  g0.AddVertex(LabelSet{2});
  GraphflowEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  CountingSink s;
  EXPECT_FALSE(engine.ApplyUpdate(UpdateOp::Insert(0, 0, 1), s,
                                  Deadline::AfterMillis(0)));
}

}  // namespace
}  // namespace turboflux
