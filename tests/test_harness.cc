#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/baseline/sj_tree.h"
#include "turboflux/harness/metrics.h"
#include "turboflux/harness/runner.h"
#include "turboflux/harness/table.h"

namespace turboflux {
namespace {

struct Case {
  QueryGraph q;
  Graph g0;
  UpdateStream stream;
};

Case MakeCase() {
  Case c;
  QVertexId u0 = c.q.AddVertex(LabelSet{0});
  QVertexId u1 = c.q.AddVertex(LabelSet{1});
  c.q.AddEdge(u0, 0, u1);
  c.g0.AddVertex(LabelSet{0});
  c.g0.AddVertex(LabelSet{1});
  c.g0.AddVertex(LabelSet{1});
  c.g0.AddEdge(0, 0, 1);
  c.stream = {UpdateOp::Insert(0, 0, 2), UpdateOp::Delete(0, 0, 1)};
  return c;
}

TEST(Runner, CountsPhasesSeparately) {
  Case c = MakeCase();
  TurboFluxEngine engine;
  CountingSink sink;
  RunOptions options;
  options.subtract_graph_update_cost = false;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  EXPECT_FALSE(r.timed_out);
  EXPECT_FALSE(r.unsupported);
  EXPECT_EQ(r.initial_matches, 1u);
  EXPECT_EQ(r.positive_matches, 1u);
  EXPECT_EQ(r.negative_matches, 1u);
  EXPECT_EQ(r.processed_ops, 2u);
  EXPECT_GT(r.peak_intermediate, 0u);
  // The sink only sees stream matches.
  EXPECT_EQ(sink.positive(), 1u);
  EXPECT_EQ(sink.negative(), 1u);
}

TEST(Runner, UnsupportedDeletionFlagged) {
  Case c = MakeCase();
  SjTreeEngine engine;
  CountingSink sink;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, RunOptions{});
  EXPECT_TRUE(r.unsupported);
  EXPECT_EQ(r.processed_ops, 0u);
}

TEST(Runner, SubtractsGraphUpdateBaseline) {
  Case c = MakeCase();
  TurboFluxEngine engine;
  CountingSink sink;
  RunOptions options;
  options.subtract_graph_update_cost = true;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  EXPECT_GE(r.raw_stream_seconds, r.stream_seconds);
  EXPECT_GE(r.stream_seconds, 0.0);
}

TEST(Metrics, AccumulateSkipsTimeoutsAndUnsupported) {
  Aggregate agg = Aggregate0("X");
  RunResult ok;
  ok.stream_seconds = 2.0;
  ok.peak_intermediate = 10;
  ok.positive_matches = 5;
  RunResult timeout;
  timeout.timed_out = true;
  RunResult unsupported;
  unsupported.unsupported = true;
  Accumulate(agg, ok);
  Accumulate(agg, timeout);
  Accumulate(agg, unsupported);
  RunResult ok2;
  ok2.stream_seconds = 4.0;
  ok2.peak_intermediate = 30;
  ok2.negative_matches = 2;
  Accumulate(agg, ok2);
  EXPECT_EQ(agg.completed, 2u);
  EXPECT_EQ(agg.timed_out, 1u);
  EXPECT_EQ(agg.unsupported, 1u);
  EXPECT_DOUBLE_EQ(agg.mean_stream_seconds, 3.0);
  EXPECT_DOUBLE_EQ(agg.mean_peak_intermediate, 20.0);
  EXPECT_EQ(agg.total_positive, 5u);
  EXPECT_EQ(agg.total_negative, 2u);
}

TEST(Metrics, MeanRatioIsGeometric) {
  EXPECT_DOUBLE_EQ(MeanRatio({4.0, 1.0}, {1.0, 4.0}), 1.0);
  EXPECT_NEAR(MeanRatio({8.0}, {2.0}), 4.0, 1e-9);
  EXPECT_EQ(MeanRatio({}, {}), 0.0);
  EXPECT_EQ(MeanRatio({0.0}, {1.0}), 0.0);  // non-positive skipped
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"engine", "time"});
  t.AddRow({"TurboFlux", "1.00ms"});
  t.AddRow({"SJ-Tree", "170.00ms"});
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("| engine    | time     |"), std::string::npos);
  EXPECT_NE(s.find("| TurboFlux | 1.00ms   |"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::FormatSeconds(0.5e-4), "50.0us");
  EXPECT_EQ(Table::FormatSeconds(0.5), "500.00ms");
  EXPECT_EQ(Table::FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(Table::FormatCount(999), "999");
  EXPECT_EQ(Table::FormatCount(25000), "25.0K");
  EXPECT_EQ(Table::FormatCount(3.2e6), "3.20M");
  EXPECT_EQ(Table::FormatRatio(2.0), "2.00x");
  EXPECT_EQ(Table::FormatRatio(0.0), "n/a");
}

// Regression: a peak hit *inside* a batch window must not be missed.
// The batched runner only samples IntermediateSize() between windows, so
// an insert-spike-then-delete sequence within one window used to report
// the (smaller) end-of-window size; the engine-side watermark now catches
// it (harness/engine.h PeakIntermediateSize).
TEST(Runner, PeakIntermediateSeesMidBatchSpike) {
  Case c;
  QVertexId u0 = c.q.AddVertex(LabelSet{0});
  QVertexId u1 = c.q.AddVertex(LabelSet{1});
  c.q.AddEdge(u0, 0, u1);
  c.g0.AddVertex(LabelSet{0});
  for (int i = 0; i < 8; ++i) c.g0.AddVertex(LabelSet{1});
  // Spike: eight inserts grow the DCG, then eight deletes drain it —
  // all within a single 16-op batch window.
  for (VertexId v = 1; v <= 8; ++v) c.stream.push_back(UpdateOp::Insert(0, 0, v));
  for (VertexId v = 1; v <= 8; ++v) c.stream.push_back(UpdateOp::Delete(0, 0, v));

  RunOptions per_op;
  per_op.subtract_graph_update_cost = false;
  TurboFluxEngine seq;
  CountingSink seq_sink;
  RunResult r_seq = RunContinuous(seq, c.q, c.g0, c.stream, seq_sink, per_op);

  RunOptions batched = per_op;
  batched.batch_size = static_cast<int64_t>(c.stream.size());
  TurboFluxEngine bat;
  CountingSink bat_sink;
  RunResult r_bat = RunContinuous(bat, c.q, c.g0, c.stream, bat_sink, batched);

  EXPECT_FALSE(r_seq.timed_out);
  EXPECT_FALSE(r_bat.timed_out);
  // The spike grows the DCG by 8 edges above its final (drained) size;
  // the batched run must see the same peak as the per-op run, not the
  // end-of-window size.
  EXPECT_EQ(r_seq.peak_intermediate, r_seq.final_intermediate + 8);
  EXPECT_EQ(r_bat.peak_intermediate, r_seq.peak_intermediate);
  EXPECT_EQ(r_bat.final_intermediate, r_seq.final_intermediate);
}

TEST(Runner, StatsSnapshotCoversRunAndEngineScopes) {
  Case c = MakeCase();
  TurboFluxEngine engine;
  CountingSink sink;
  RunOptions options;
  options.subtract_graph_update_cost = false;
  options.collect_stats = true;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  ASSERT_TRUE(r.stats.has_value());
  const obs::StatsSnapshot& s = *r.stats;
  // run.* metrics mirror the RunResult fields and work in every build.
  EXPECT_EQ(s.Value("run.processed_ops"), r.processed_ops);
  EXPECT_EQ(s.Value("run.initial_matches"), r.initial_matches);
  EXPECT_EQ(s.Value("run.positive_matches"), r.positive_matches);
  EXPECT_EQ(s.Value("run.negative_matches"), r.negative_matches);
  EXPECT_EQ(s.Value("run.peak_intermediate"), r.peak_intermediate);
  const obs::HistogramData* lat = s.FindHistogram("run.op_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, r.processed_ops);
  // engine.* metrics exist whenever the counters are compiled in.
  if (obs::kStatsCompiled) {
    EXPECT_TRUE(s.Has("engine.ops_insert"));
    EXPECT_GT(s.Value("engine.dcg.transitions"), 0u);
    EXPECT_EQ(s.Value("engine.intermediate_size"), r.final_intermediate);
  }
}

TEST(Runner, PeriodicStatsEmitSelfContainedJsonLines) {
  Case c = MakeCase();
  TurboFluxEngine engine;
  CountingSink sink;
  std::ostringstream lines;
  RunOptions options;
  options.subtract_graph_update_cost = false;
  options.collect_stats = true;
  options.stats_every = 1;
  options.stats_sink = &lines;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  EXPECT_EQ(r.processed_ops, 2u);
  std::istringstream in(lines.str());
  std::string line;
  size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"run.processed_ops\": "), std::string::npos);
  }
  EXPECT_EQ(n, 2u);  // one line per op at stats_every=1
}

TEST(Runner, TimeoutProducesTimedOutResult) {
  Case c = MakeCase();
  // Enough work that a 0ms-ish deadline trips during Init or stream.
  for (int i = 0; i < 200; ++i) {
    c.g0.AddVertex(LabelSet{1});
  }
  TurboFluxEngine engine;
  CountingSink sink;
  RunOptions options;
  options.timeout_ms = -1;  // <=0 means unlimited, so this must pass
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  EXPECT_FALSE(r.timed_out);
}

}  // namespace
}  // namespace turboflux
