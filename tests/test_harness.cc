#include <sstream>

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/baseline/sj_tree.h"
#include "turboflux/harness/metrics.h"
#include "turboflux/harness/runner.h"
#include "turboflux/harness/table.h"

namespace turboflux {
namespace {

struct Case {
  QueryGraph q;
  Graph g0;
  UpdateStream stream;
};

Case MakeCase() {
  Case c;
  QVertexId u0 = c.q.AddVertex(LabelSet{0});
  QVertexId u1 = c.q.AddVertex(LabelSet{1});
  c.q.AddEdge(u0, 0, u1);
  c.g0.AddVertex(LabelSet{0});
  c.g0.AddVertex(LabelSet{1});
  c.g0.AddVertex(LabelSet{1});
  c.g0.AddEdge(0, 0, 1);
  c.stream = {UpdateOp::Insert(0, 0, 2), UpdateOp::Delete(0, 0, 1)};
  return c;
}

TEST(Runner, CountsPhasesSeparately) {
  Case c = MakeCase();
  TurboFluxEngine engine;
  CountingSink sink;
  RunOptions options;
  options.subtract_graph_update_cost = false;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  EXPECT_FALSE(r.timed_out);
  EXPECT_FALSE(r.unsupported);
  EXPECT_EQ(r.initial_matches, 1u);
  EXPECT_EQ(r.positive_matches, 1u);
  EXPECT_EQ(r.negative_matches, 1u);
  EXPECT_EQ(r.processed_ops, 2u);
  EXPECT_GT(r.peak_intermediate, 0u);
  // The sink only sees stream matches.
  EXPECT_EQ(sink.positive(), 1u);
  EXPECT_EQ(sink.negative(), 1u);
}

TEST(Runner, UnsupportedDeletionFlagged) {
  Case c = MakeCase();
  SjTreeEngine engine;
  CountingSink sink;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, RunOptions{});
  EXPECT_TRUE(r.unsupported);
  EXPECT_EQ(r.processed_ops, 0u);
}

TEST(Runner, SubtractsGraphUpdateBaseline) {
  Case c = MakeCase();
  TurboFluxEngine engine;
  CountingSink sink;
  RunOptions options;
  options.subtract_graph_update_cost = true;
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  EXPECT_GE(r.raw_stream_seconds, r.stream_seconds);
  EXPECT_GE(r.stream_seconds, 0.0);
}

TEST(Metrics, AccumulateSkipsTimeoutsAndUnsupported) {
  Aggregate agg = Aggregate0("X");
  RunResult ok;
  ok.stream_seconds = 2.0;
  ok.peak_intermediate = 10;
  ok.positive_matches = 5;
  RunResult timeout;
  timeout.timed_out = true;
  RunResult unsupported;
  unsupported.unsupported = true;
  Accumulate(agg, ok);
  Accumulate(agg, timeout);
  Accumulate(agg, unsupported);
  RunResult ok2;
  ok2.stream_seconds = 4.0;
  ok2.peak_intermediate = 30;
  ok2.negative_matches = 2;
  Accumulate(agg, ok2);
  EXPECT_EQ(agg.completed, 2u);
  EXPECT_EQ(agg.timed_out, 1u);
  EXPECT_EQ(agg.unsupported, 1u);
  EXPECT_DOUBLE_EQ(agg.mean_stream_seconds, 3.0);
  EXPECT_DOUBLE_EQ(agg.mean_peak_intermediate, 20.0);
  EXPECT_EQ(agg.total_positive, 5u);
  EXPECT_EQ(agg.total_negative, 2u);
}

TEST(Metrics, MeanRatioIsGeometric) {
  EXPECT_DOUBLE_EQ(MeanRatio({4.0, 1.0}, {1.0, 4.0}), 1.0);
  EXPECT_NEAR(MeanRatio({8.0}, {2.0}), 4.0, 1e-9);
  EXPECT_EQ(MeanRatio({}, {}), 0.0);
  EXPECT_EQ(MeanRatio({0.0}, {1.0}), 0.0);  // non-positive skipped
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"engine", "time"});
  t.AddRow({"TurboFlux", "1.00ms"});
  t.AddRow({"SJ-Tree", "170.00ms"});
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("| engine    | time     |"), std::string::npos);
  EXPECT_NE(s.find("| TurboFlux | 1.00ms   |"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::FormatSeconds(0.5e-4), "50.0us");
  EXPECT_EQ(Table::FormatSeconds(0.5), "500.00ms");
  EXPECT_EQ(Table::FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(Table::FormatCount(999), "999");
  EXPECT_EQ(Table::FormatCount(25000), "25.0K");
  EXPECT_EQ(Table::FormatCount(3.2e6), "3.20M");
  EXPECT_EQ(Table::FormatRatio(2.0), "2.00x");
  EXPECT_EQ(Table::FormatRatio(0.0), "n/a");
}

TEST(Runner, TimeoutProducesTimedOutResult) {
  Case c = MakeCase();
  // Enough work that a 0ms-ish deadline trips during Init or stream.
  for (int i = 0; i < 200; ++i) {
    c.g0.AddVertex(LabelSet{1});
  }
  TurboFluxEngine engine;
  CountingSink sink;
  RunOptions options;
  options.timeout_ms = -1;  // <=0 means unlimited, so this must pass
  RunResult r = RunContinuous(engine, c.q, c.g0, c.stream, sink, options);
  EXPECT_FALSE(r.timed_out);
}

}  // namespace
}  // namespace turboflux
