#include "turboflux/baseline/inc_iso_mat.h"

#include "gtest/gtest.h"
#include "testutil.h"

namespace turboflux {
namespace {

QueryGraph PathQuery() {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  QVertexId u2 = q.AddVertex(LabelSet{2});
  q.AddEdge(u0, 0, u1);
  q.AddEdge(u1, 1, u2);
  return q;
}

TEST(IncIsoMat, InsertionDelta) {
  QueryGraph q = PathQuery();
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  g0.AddVertex(LabelSet{2});
  g0.AddEdge(0, 0, 1);
  IncIsoMatEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  EXPECT_EQ(init.positive(), 0u);
  CollectingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(1, 1, 2), s,
                                 Deadline::Infinite()));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.records()[0].positive);
  EXPECT_EQ(s.records()[0].mapping, (Mapping{0, 1, 2}));
}

TEST(IncIsoMat, DeletionDelta) {
  QueryGraph q = PathQuery();
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  g0.AddVertex(LabelSet{2});
  g0.AddEdge(0, 0, 1);
  g0.AddEdge(1, 1, 2);
  IncIsoMatEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  EXPECT_EQ(init.positive(), 1u);
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Delete(0, 0, 1), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.negative(), 1u);
  EXPECT_FALSE(engine.graph().HasEdge(0, 0, 1));
}

TEST(IncIsoMat, MatchesOutsideDiameterUnaffected) {
  // Two disjoint copies of the pattern; updating one copy must not report
  // anything about the other (it is outside the affected subgraph).
  QueryGraph q = PathQuery();
  Graph g0;
  for (int copy = 0; copy < 2; ++copy) {
    g0.AddVertex(LabelSet{0});
    g0.AddVertex(LabelSet{1});
    g0.AddVertex(LabelSet{2});
  }
  g0.AddEdge(0, 0, 1);
  g0.AddEdge(1, 1, 2);
  g0.AddEdge(3, 0, 4);
  IncIsoMatEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  EXPECT_EQ(init.positive(), 1u);
  CollectingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(4, 1, 5), s,
                                 Deadline::Infinite()));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.records()[0].mapping, (Mapping{3, 4, 5}));
}

TEST(IncIsoMat, IrrelevantUpdateSkipsExtraction) {
  QueryGraph q = PathQuery();
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});
  IncIsoMatEngine engine;
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(0, 7, 1), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.total(), 0u);
  EXPECT_TRUE(engine.graph().HasEdge(0, 7, 1));  // graph still updated
}

TEST(IncIsoMat, IsomorphismSemantics) {
  QueryGraph q;
  QVertexId u0 = q.AddVertex(LabelSet{0});
  QVertexId u1 = q.AddVertex(LabelSet{1});
  QVertexId u2 = q.AddVertex(LabelSet{1});
  q.AddEdge(u0, 0, u1);
  q.AddEdge(u0, 0, u2);
  Graph g0;
  g0.AddVertex(LabelSet{0});
  g0.AddVertex(LabelSet{1});

  IncIsoMatOptions opts;
  opts.semantics = MatchSemantics::kIsomorphism;
  IncIsoMatEngine engine(opts);
  CountingSink init;
  ASSERT_TRUE(engine.Init(q, g0, init, Deadline::Infinite()));
  CountingSink s;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateOp::Insert(0, 0, 1), s,
                                 Deadline::Infinite()));
  EXPECT_EQ(s.positive(), 0u);  // u1 == u2 would need the same data vertex
}

}  // namespace
}  // namespace turboflux
