// End-to-end integration tests: engines processing real generated
// workloads (tiny LSBench-like and Netflow-like datasets) must agree
// with each other on every reported match, and TurboFlux's DCG must
// survive a full realistic stream.

#include "gtest/gtest.h"
#include "testutil.h"
#include "turboflux/baseline/graphflow.h"
#include "turboflux/core/turboflux.h"
#include "turboflux/workload/lsbench.h"
#include "turboflux/workload/netflow.h"
#include "turboflux/workload/query_gen.h"
#include "turboflux/workload/stream_builder.h"

namespace turboflux {
namespace {

using workload::BuildDataset;
using workload::Dataset;
using workload::GenerateLsBench;
using workload::GenerateNetflow;
using workload::GenerateQueries;
using workload::LsBenchConfig;
using workload::NetflowConfig;
using workload::QueryGenConfig;
using workload::QueryShape;
using workload::StreamConfig;

Dataset TinyLsBench(double deletion_rate) {
  LsBenchConfig config;
  config.num_users = 60;
  StreamConfig sc;
  sc.stream_fraction = 0.15;
  sc.deletion_rate = deletion_rate;
  return BuildDataset(GenerateLsBench(config), sc);
}

Dataset TinyNetflow() {
  NetflowConfig config;
  config.num_hosts = 300;
  config.num_flows = 1500;
  StreamConfig sc;
  sc.stream_fraction = 0.15;
  return BuildDataset(GenerateNetflow(config), sc);
}

void ExpectEnginesAgree(const Dataset& ds, const QueryGraph& q,
                        MatchSemantics semantics) {
  TurboFluxOptions tf_options;
  tf_options.semantics = semantics;
  TurboFluxEngine tf(tf_options);
  GraphflowOptions gf_options;
  gf_options.semantics = semantics;
  GraphflowEngine gf(gf_options);

  testutil::RandomCase c;
  c.g0 = ds.initial;
  c.stream = ds.stream;
  c.query = q;
  CollectingSink tf_sink, gf_sink;
  uint64_t tf_init = 0, gf_init = 0;
  ASSERT_TRUE(testutil::RunCase(tf, c, tf_sink, &tf_init));
  ASSERT_TRUE(testutil::RunCase(gf, c, gf_sink, &gf_init));
  EXPECT_EQ(tf_init, gf_init) << q.ToString();
  EXPECT_TRUE(testutil::SameMatches(tf_sink, gf_sink)) << q.ToString();
  // At least one positive match streams in (query-gen guarantee) for
  // insert-only streams.
  EXPECT_EQ(tf.dcg().Snapshot(), tf.RebuildDcgFromScratch().Snapshot());
}

TEST(IntegrationWorkload, LsBenchTreeQueriesInsertOnly) {
  Dataset ds = TinyLsBench(0.0);
  QueryGenConfig qc;
  qc.shape = QueryShape::kTree;
  qc.num_edges = 4;
  qc.count = 4;
  qc.seed = 3;
  for (const QueryGraph& q : GenerateQueries(ds, qc)) {
    ExpectEnginesAgree(ds, q, MatchSemantics::kHomomorphism);
  }
}

TEST(IntegrationWorkload, LsBenchCyclicQueriesWithDeletions) {
  Dataset ds = TinyLsBench(0.3);
  QueryGenConfig qc;
  qc.shape = QueryShape::kGraph;
  qc.num_edges = 5;
  qc.count = 3;
  qc.seed = 5;
  for (const QueryGraph& q : GenerateQueries(ds, qc)) {
    ExpectEnginesAgree(ds, q, MatchSemantics::kHomomorphism);
  }
}

TEST(IntegrationWorkload, LsBenchIsomorphism) {
  Dataset ds = TinyLsBench(0.2);
  QueryGenConfig qc;
  qc.shape = QueryShape::kTree;
  qc.num_edges = 4;
  qc.count = 3;
  qc.seed = 7;
  for (const QueryGraph& q : GenerateQueries(ds, qc)) {
    ExpectEnginesAgree(ds, q, MatchSemantics::kIsomorphism);
  }
}

TEST(IntegrationWorkload, NetflowPathQueries) {
  Dataset ds = TinyNetflow();
  QueryGenConfig qc;
  qc.shape = QueryShape::kPath;
  qc.num_edges = 3;
  qc.count = 3;
  qc.seed = 9;
  for (const QueryGraph& q : GenerateQueries(ds, qc)) {
    ExpectEnginesAgree(ds, q, MatchSemantics::kHomomorphism);
  }
}

TEST(IntegrationWorkload, PositiveMatchGuaranteeHolds) {
  Dataset ds = TinyLsBench(0.0);
  QueryGenConfig qc;
  qc.shape = QueryShape::kTree;
  qc.num_edges = 3;
  qc.count = 5;
  qc.seed = 11;
  std::vector<QueryGraph> queries = GenerateQueries(ds, qc);
  ASSERT_GE(queries.size(), 3u);
  for (const QueryGraph& q : queries) {
    TurboFluxEngine engine;
    CountingSink init;
    ASSERT_TRUE(engine.Init(q, ds.initial, init, Deadline::Infinite()));
    CountingSink stream_sink;
    for (const UpdateOp& op : ds.stream) {
      ASSERT_TRUE(engine.ApplyUpdate(op, stream_sink, Deadline::Infinite()));
    }
    EXPECT_GE(stream_sink.positive(), 1u) << q.ToString();
  }
}

TEST(IntegrationWorkload, LongMixedStreamKeepsDcgConsistent) {
  Dataset ds = TinyLsBench(0.5);
  QueryGenConfig qc;
  qc.shape = QueryShape::kTree;
  qc.num_edges = 5;
  qc.count = 1;
  qc.seed = 13;
  std::vector<QueryGraph> queries = GenerateQueries(ds, qc);
  ASSERT_GE(queries.size(), 1u);
  TurboFluxEngine engine;
  CountingSink sink;
  ASSERT_TRUE(engine.Init(queries[0], ds.initial, sink,
                          Deadline::Infinite()));
  for (const UpdateOp& op : ds.stream) {
    ASSERT_TRUE(engine.ApplyUpdate(op, sink, Deadline::Infinite()));
  }
  EXPECT_EQ(engine.dcg().Validate(), "");
  EXPECT_EQ(engine.dcg().Snapshot(),
            engine.RebuildDcgFromScratch().Snapshot());
}

}  // namespace
}  // namespace turboflux
