#include "turboflux/common/label_set.h"

#include "gtest/gtest.h"

namespace turboflux {
namespace {

TEST(LabelSet, EmptyIsSubsetOfEverything) {
  LabelSet empty;
  EXPECT_TRUE(empty.IsSubsetOf(LabelSet{}));
  EXPECT_TRUE(empty.IsSubsetOf(LabelSet{1, 2, 3}));
  EXPECT_TRUE(empty.empty());
}

TEST(LabelSet, SingleLabelSubset) {
  LabelSet a{1};
  EXPECT_TRUE(a.IsSubsetOf(LabelSet{1}));
  EXPECT_TRUE(a.IsSubsetOf(LabelSet{0, 1, 2}));
  EXPECT_FALSE(a.IsSubsetOf(LabelSet{0, 2}));
  EXPECT_FALSE(a.IsSubsetOf(LabelSet{}));
}

TEST(LabelSet, MultiLabelSubset) {
  LabelSet a{3, 1};
  EXPECT_TRUE(a.IsSubsetOf(LabelSet{1, 2, 3}));
  EXPECT_FALSE(a.IsSubsetOf(LabelSet{1, 2}));
  EXPECT_FALSE(a.IsSubsetOf(LabelSet{3}));
}

TEST(LabelSet, ConstructorSortsAndDeduplicates) {
  LabelSet a{5, 1, 5, 3, 1};
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.labels(), (std::vector<Label>{1, 3, 5}));
}

TEST(LabelSet, InsertKeepsSortedUnique) {
  LabelSet a;
  a.Insert(4);
  a.Insert(2);
  a.Insert(4);
  a.Insert(9);
  EXPECT_EQ(a.labels(), (std::vector<Label>{2, 4, 9}));
}

TEST(LabelSet, Contains) {
  LabelSet a{2, 4};
  EXPECT_TRUE(a.Contains(2));
  EXPECT_TRUE(a.Contains(4));
  EXPECT_FALSE(a.Contains(3));
}

TEST(LabelSet, Equality) {
  EXPECT_EQ(LabelSet({1, 2}), LabelSet({2, 1}));
  EXPECT_FALSE(LabelSet({1}) == LabelSet({1, 2}));
}

TEST(LabelSet, FirstOr) {
  EXPECT_EQ(LabelSet({7, 3}).FirstOr(0), 3u);
  EXPECT_EQ(LabelSet{}.FirstOr(42), 42u);
}

TEST(LabelSet, ToString) {
  EXPECT_EQ(LabelSet({2, 1}).ToString(), "{1,2}");
  EXPECT_EQ(LabelSet{}.ToString(), "{}");
}

}  // namespace
}  // namespace turboflux
